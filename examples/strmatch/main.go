// String-matching with run-time pattern updates — the workload the paper's
// introduction motivates (Sidhu et al., string matching on multicontext
// FPGAs using self-reconfiguration).
//
// A hardware string matcher scans a character stream for a pattern. Changing
// the pattern conventionally means a full re-implementation and a full
// reconfiguration; here the matcher region is swapped with a partial
// bitstream while the rest of the device stays configured.
//
//	go run ./examples/strmatch
package main

import (
	"context"
	"fmt"
	"log"

	jpg "repro"
)

const text = "partial reconfiguration moves patterns into hardware"

func main() {
	ctx := context.Background()
	part, err := jpg.PartByName("XCV100")
	if err != nil {
		log.Fatal(err)
	}

	// Base design: the matcher for "pattern" plus an unrelated scrambler
	// module that must keep working across reconfigurations.
	base, err := jpg.BuildBase(ctx, part, []jpg.Instance{
		{Prefix: "m/", Gen: jpg.StringMatcher{Pattern: "pattern"}},
		{Prefix: "x/", Gen: jpg.LFSR{Bits: 8, Taps: []int{7, 5, 4, 3}}},
	}, jpg.FlowOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	board := jpg.NewBoard(part)
	if _, err := board.Download(base.Bitstream); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matcher deployed on %s (%d-byte full bitstream)\n\n", part.Name, len(base.Bitstream))

	scan(board, base, "pattern")

	// Swap in a matcher for "hardware" — same 8-bit-in/1-bit-out interface,
	// so only the matcher's columns change.
	for _, pattern := range []string{"hardware", "into"} {
		variant, err := jpg.BuildVariant(ctx, base, "m/", jpg.StringMatcher{Pattern: pattern}, jpg.FlowOptions{Seed: 4})
		if err != nil {
			log.Fatal(err)
		}
		proj, err := jpg.NewProjectForPart(part, board.Readback())
		if err != nil {
			log.Fatal(err)
		}
		module, err := proj.AddModule("m_"+pattern, variant.XDL, variant.UCF)
		if err != nil {
			log.Fatal(err)
		}
		res, ds, err := proj.GenerateAndDownload(module, board, jpg.GenerateOptions{Strict: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("swapped pattern -> %q: %d-byte partial (%.1f%% of full), reconfig in %v\n",
			pattern, len(res.Bitstream),
			100*float64(len(res.Bitstream))/float64(len(base.Bitstream)), ds.ModelTime)
		scan(board, base, pattern)
	}
}

// scan streams the text through the device's matcher and prints match
// positions, verifying them against a software scan.
func scan(board *jpg.Board, base *jpg.BaseBuild, pattern string) {
	ex, err := jpg.ExtractDesign(board.Readback())
	if err != nil {
		log.Fatal(err)
	}
	s, err := jpg.SimulateExtracted(ex)
	if err != nil {
		log.Fatal(err)
	}
	var matches []int
	for pos := 0; pos < len(text); pos++ {
		for bit := 0; bit < 8; bit++ {
			if err := s.SetInput(base.Pads[fmt.Sprintf("m_in%d", bit)], text[pos]>>bit&1 == 1); err != nil {
				log.Fatal(err)
			}
		}
		s.Step()
		if hit, _ := s.Output(base.Pads["m_out0"]); hit {
			matches = append(matches, pos-len(pattern)+1)
		}
	}
	fmt.Printf("  device matches for %q at %v\n", pattern, matches)
	var want []int
	for i := 0; i+len(pattern) <= len(text); i++ {
		if text[i:i+len(pattern)] == pattern {
			want = append(want, i)
		}
	}
	if fmt.Sprint(matches) != fmt.Sprint(want) {
		log.Fatalf("device disagrees with software scan (want %v)", want)
	}
	fmt.Println("  verified against software scan")
}
