// The Figure 4 scenario: a device partitioned into three reconfigurable
// regions with 3, 3 and 4 interface-compatible module variants. Supporting
// all 36 module combinations needs 36 full CAD runs and 36 complete
// bitstreams under the conventional flow; with JPG it needs one base build
// plus 10 small variant runs and 10 partial bitstreams. This example builds
// the JPG side, then walks the device through a sequence of combinations by
// downloading partial bitstreams only.
//
//	go run ./examples/multiregion
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	jpg "repro"
)

func main() {
	ctx := context.Background()
	part, err := jpg.PartByName("XCV50")
	if err != nil {
		log.Fatal(err)
	}
	regions := []struct {
		prefix   string
		variants []jpg.Generator
	}{
		{"u1/", []jpg.Generator{
			jpg.Counter{Bits: 6},
			jpg.LFSR{Bits: 6, Taps: []int{5, 0}},
			jpg.LFSR{Bits: 6, Taps: []int{5, 2, 1, 0}},
		}},
		{"u2/", []jpg.Generator{
			jpg.SBoxBank{N: 8, Seed: 11},
			jpg.SBoxBank{N: 8, Seed: 22},
			jpg.SBoxBank{N: 8, Seed: 33},
		}},
		{"u3/", []jpg.Generator{
			jpg.BinaryFIR{Taps: 8, Coeff: 0xB7},
			jpg.BinaryFIR{Taps: 8, Coeff: 0x7E},
			jpg.BinaryFIR{Taps: 8, Coeff: 0xDB},
			jpg.BinaryFIR{Taps: 8, Coeff: 0xE7},
		}},
	}

	// One base build with the first variant of each region.
	insts := make([]jpg.Instance, len(regions))
	combos := 1
	for i, r := range regions {
		insts[i] = jpg.Instance{Prefix: r.prefix, Gen: r.variants[0]}
		combos *= len(r.variants)
	}
	t0 := time.Now()
	base, err := jpg.BuildBase(ctx, part, insts, jpg.FlowOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base design (%d combinations possible): %v CAD, %d-byte bitstream\n",
		combos, time.Since(t0).Round(time.Millisecond), len(base.Bitstream))

	// One partial bitstream per variant (3+3+4 = 10). The per-variant CAD
	// runs are independent, so they go through the concurrent farm; the
	// results (and bitstream bytes) are identical to a serial loop.
	var specs []jpg.VariantSpec
	var prefixes []string
	for _, r := range regions {
		for vi, gen := range r.variants {
			specs = append(specs, jpg.VariantSpec{
				Prefix: r.prefix, Gen: gen,
				Opts: jpg.FlowOptions{Seed: int64(10 + vi)},
			})
			prefixes = append(prefixes, r.prefix)
		}
	}
	variants, err := jpg.BuildVariants(ctx, base, specs)
	if err != nil {
		log.Fatal(err)
	}
	proj, err := jpg.NewProject(base.Bitstream)
	if err != nil {
		log.Fatal(err)
	}
	totalVariantCAD := time.Duration(0)
	mods := make([]*jpg.ProjectModule, len(variants))
	for i, va := range variants {
		totalVariantCAD += va.Times.Total()
		m, err := proj.AddModule(prefixes[i]+specs[i].Gen.Name(), va.XDL, va.UCF)
		if err != nil {
			log.Fatal(err)
		}
		mods[i] = m
	}
	results, err := proj.GeneratePartialAll(mods, jpg.GenerateOptions{Strict: true})
	if err != nil {
		log.Fatal(err)
	}
	partials := map[string][][]byte{}
	totalPartialBytes := 0
	for i, res := range results {
		partials[prefixes[i]] = append(partials[prefixes[i]], res.Bitstream)
		totalPartialBytes += len(res.Bitstream)
	}
	fmt.Printf("%d partial bitstreams: %d bytes total, variant CAD %v total\n",
		len(results), totalPartialBytes, totalVariantCAD.Round(time.Millisecond))
	fmt.Printf("conventional flow would need %d full runs and ~%d bytes of bitstreams\n\n",
		combos, combos*len(base.Bitstream))

	// Walk the running device through combinations: each step swaps one
	// region with a partial download.
	board := jpg.NewBoard(part)
	if _, err := board.Download(base.Bitstream); err != nil {
		log.Fatal(err)
	}
	walk := []struct {
		region  int
		variant int
	}{{0, 1}, {2, 3}, {1, 2}, {0, 2}, {2, 0}, {1, 0}}
	reconfigTime := time.Duration(0)
	for _, step := range walk {
		r := regions[step.region]
		bs := partials[r.prefix][step.variant]
		ds, err := board.Download(bs)
		if err != nil {
			log.Fatal(err)
		}
		reconfigTime += ds.ModelTime
		fmt.Printf("swapped %s -> %-14s %6d bytes, %v\n",
			r.prefix, r.variants[step.variant].Name(), ds.Bytes, ds.ModelTime)
	}
	fmt.Printf("\n%d context switches in %v of configuration traffic ", len(walk), reconfigTime)
	fullTime := time.Duration(float64(len(base.Bitstream)) / 50e6 * float64(time.Second) * float64(len(walk)))
	fmt.Printf("(full reconfigs would need %v)\n", fullTime)
}
