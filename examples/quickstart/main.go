// Quickstart: the paper's two-phase methodology end to end.
//
// Phase 1 builds a floorplanned base design (a counter and an S-box bank in
// their own column regions) and downloads its complete bitstream to a
// simulated board. Phase 2 implements an LFSR variant for the counter's
// region as its own project; the JPG tool turns the variant's XDL/UCF into a
// partial bitstream, which dynamically reconfigures the running board.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	jpg "repro"
)

func main() {
	ctx := context.Background()
	part, err := jpg.PartByName("XCV50")
	if err != nil {
		log.Fatal(err)
	}

	// ---- Phase 1: the base design ----
	base, err := jpg.BuildBase(ctx, part, []jpg.Instance{
		{Prefix: "u1/", Gen: jpg.Counter{Bits: 6}},
		{Prefix: "u2/", Gen: jpg.SBoxBank{N: 8, Seed: 3}},
	}, jpg.FlowOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base design on %s: %d bytes full bitstream, CAD %v\n",
		part.Name, len(base.Bitstream), base.Times.Total().Round(1000))
	for prefix, rg := range base.Regions {
		fmt.Printf("  region %s: columns %d..%d\n", prefix, rg.C1+1, rg.C2+1)
	}

	board := jpg.NewBoard(part)
	ds, err := board.Download(base.Bitstream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full download: %d bytes in %v (device running: %v)\n\n",
		ds.Bytes, ds.ModelTime, board.Running())

	// ---- Phase 2: a variant for region u1 ----
	variant, err := jpg.BuildVariant(ctx, base, "u1/", jpg.LFSR{Bits: 6, Taps: []int{5, 2}}, jpg.FlowOptions{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("variant %q: CAD %v (vs %v for the base design)\n",
		variant.Netlist.Name, variant.Times.Total().Round(1000), base.Times.Total().Round(1000))

	// ---- JPG: XDL + UCF -> partial bitstream ----
	proj, err := jpg.NewProject(base.Bitstream)
	if err != nil {
		log.Fatal(err)
	}
	module, err := proj.AddModule("u1_lfsr", variant.XDL, variant.UCF)
	if err != nil {
		log.Fatal(err)
	}
	res, dsPartial, err := proj.GenerateAndDownload(module, board, jpg.GenerateOptions{Strict: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partial bitstream: %d bytes (%.1f%% of full), %d frames, columns %d..%d\n",
		len(res.Bitstream), 100*float64(len(res.Bitstream))/float64(len(base.Bitstream)),
		len(res.FARs), res.Region.C1+1, res.Region.C2+1)
	fmt.Printf("partial download: %v (%.1fx faster than full)\n",
		dsPartial.ModelTime, float64(ds.ModelTime)/float64(dsPartial.ModelTime))

	// ---- Verify: the device now runs the LFSR, u2 is untouched ----
	ex, err := jpg.ExtractDesign(board.Readback())
	if err != nil {
		log.Fatal(err)
	}
	s, err := jpg.SimulateExtracted(ex)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nu1 outputs after reconfiguration (should follow the LFSR sequence):")
	for cyc := 0; cyc < 8; cyc++ {
		s.Step()
		v := 0
		for i := 0; i < 6; i++ {
			bit, err := s.Output(base.Pads[fmt.Sprintf("u1_out%d", i)])
			if err != nil {
				log.Fatal(err)
			}
			if bit {
				v |= 1 << i
			}
		}
		fmt.Printf("  cycle %d: %06b\n", cyc, v)
	}
}
