// Run-time FIR coefficient swap.
//
// A binary-coefficient FIR filter smooths a 1-bit input stream. Changing the
// coefficient set conventionally requires re-implementing and fully
// reconfiguring the device; here only the filter's region is rewritten. The
// example streams an impulse train through the device before and after the
// swap and prints both impulse responses, which directly expose the
// coefficient sets.
//
//	go run ./examples/firswap
package main

import (
	"context"
	"fmt"
	"log"

	jpg "repro"
)

const (
	oldCoeff = 0b10110111 // taps {0,1,2,4,5,7}
	newCoeff = 0b11100001 // taps {0,5,6,7}: same output width, new response
)

func main() {
	ctx := context.Background()
	part, err := jpg.PartByName("XCV50")
	if err != nil {
		log.Fatal(err)
	}
	base, err := jpg.BuildBase(ctx, part, []jpg.Instance{
		{Prefix: "fir/", Gen: jpg.BinaryFIR{Taps: 8, Coeff: oldCoeff}},
		{Prefix: "aux/", Gen: jpg.Counter{Bits: 4}},
	}, jpg.FlowOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	board := jpg.NewBoard(part)
	if _, err := board.Download(base.Bitstream); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("FIR filter on %s, coefficients %08b\n", part.Name, oldCoeff)
	fmt.Println("impulse response before swap:", impulseResponse(board, base))

	variant, err := jpg.BuildVariant(ctx, base, "fir/", jpg.BinaryFIR{Taps: 8, Coeff: newCoeff}, jpg.FlowOptions{Seed: 6})
	if err != nil {
		log.Fatal(err)
	}
	proj, err := jpg.NewProject(base.Bitstream)
	if err != nil {
		log.Fatal(err)
	}
	module, err := proj.AddModule("fir_new", variant.XDL, variant.UCF)
	if err != nil {
		log.Fatal(err)
	}
	res, ds, err := proj.GenerateAndDownload(module, board, jpg.GenerateOptions{Strict: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nswapped coefficients -> %08b with a %d-byte partial bitstream in %v\n",
		newCoeff, len(res.Bitstream), ds.ModelTime)
	fmt.Println("impulse response after swap: ", impulseResponse(board, base))

	// The impulse response of a binary FIR is its coefficient sequence.
	check(impulseResponse(board, base), newCoeff)
	fmt.Println("response matches the new coefficient set")
}

// impulseResponse feeds a single 1 followed by zeros and records the
// device filter's output.
func impulseResponse(board *jpg.Board, base *jpg.BaseBuild) []int {
	ex, err := jpg.ExtractDesign(board.Readback())
	if err != nil {
		log.Fatal(err)
	}
	s, err := jpg.SimulateExtracted(ex)
	if err != nil {
		log.Fatal(err)
	}
	var out []int
	for cyc := 0; cyc < 12; cyc++ {
		if err := s.SetInput(base.Pads["fir_in0"], cyc == 0); err != nil {
			log.Fatal(err)
		}
		s.Step()
		v := 0
		for i := 0; i < 3; i++ {
			if bit, _ := s.Output(base.Pads[fmt.Sprintf("fir_out%d", i)]); bit {
				v |= 1 << i
			}
		}
		out = append(out, v)
	}
	return out
}

// check verifies the tail of the impulse response equals the coefficient
// bits (the popcount output sees the impulse march down the delay line).
func check(resp []int, coeff int) {
	for i := 0; i < 8; i++ {
		want := coeff >> i & 1
		// The impulse reaches delay-line stage i after i+1 clock edges
		// (stage 0 and the output register capture on the same edge).
		if resp[i+1] != want {
			log.Fatalf("impulse response %v does not match coefficients %08b at tap %d", resp, coeff, i)
		}
	}
}
