// Block-RAM content reconfiguration: swapping a lookup table on a running
// device by rewriting only the BRAM content frames — the "efficient
// self-reconfigurable implementations using on-chip memory" pattern from the
// era's literature. The logic columns are never touched, so the partial
// bitstream is a fraction of even a module swap.
//
//	go run ./examples/bramswap
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	jpg "repro"
)

func main() {
	ctx := context.Background()
	part, err := jpg.PartByName("XCV50")
	if err != nil {
		log.Fatal(err)
	}
	// A base design occupies the logic fabric; its BRAM is free for tables.
	base, err := jpg.BuildBase(ctx, part, []jpg.Instance{
		{Prefix: "u1/", Gen: jpg.Counter{Bits: 6}},
	}, jpg.FlowOptions{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	board := jpg.NewBoard(part)
	if _, err := board.Download(base.Bitstream); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design running on %s (%d BRAM blocks available)\n\n",
		part.Name, part.NumBRAMBlocks())

	proj, err := jpg.NewProject(base.Bitstream)
	if err != nil {
		log.Fatal(err)
	}

	// Load a sine table into block (side 1, block 0).
	tables := map[string]func(i int) uint16{
		"sine":     func(i int) uint16 { return uint16(32767.5 + 32767.5*math.Sin(2*math.Pi*float64(i)/256)) },
		"sawtooth": func(i int) uint16 { return uint16(i * 257) },
	}
	for _, name := range []string{"sine", "sawtooth"} {
		gen := tables[name]
		var rom [jpg.BRAMWordsPerBlock]uint16
		for i := range rom {
			rom[i] = gen(i)
		}
		res, err := proj.UpdateBRAM(jpg.GenerateOptions{WriteBack: true, Compress: true},
			func(jb *jpg.JBits) error { return jb.SetBRAMContent(1, 0, &rom) })
		if err != nil {
			log.Fatal(err)
		}
		ds, err := board.Download(res.Bitstream)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %-8s table: %5d-byte partial (%.2f%% of full), %d frames, %v\n",
			name, len(res.Bitstream),
			100*float64(len(res.Bitstream))/float64(len(base.Bitstream)),
			len(res.FARs), ds.ModelTime)

		// Verify through readback.
		jb := jpg.NewJBits(board.Readback())
		for _, addr := range []int{0, 64, 128, 200, 255} {
			got, err := jb.GetBRAMWord(1, 0, addr)
			if err != nil {
				log.Fatal(err)
			}
			if got != gen(addr) {
				log.Fatalf("%s[%d] = %04x on device, want %04x", name, addr, got, gen(addr))
			}
		}
		fmt.Printf("  readback verified at sampled addresses\n")
	}

	// The logic kept running: extract and check the counter still counts.
	ex, err := jpg.ExtractDesign(board.Readback())
	if err != nil {
		log.Fatal(err)
	}
	s, err := jpg.SimulateExtracted(ex)
	if err != nil {
		log.Fatal(err)
	}
	var v0, v1 uint64
	s.Step()
	for i := 0; i < 6; i++ {
		if b, _ := s.Output(base.Pads[fmt.Sprintf("u1_out%d", i)]); b {
			v0 |= 1 << i
		}
	}
	s.Step()
	for i := 0; i < 6; i++ {
		if b, _ := s.Output(base.Pads[fmt.Sprintf("u1_out%d", i)]); b {
			v1 |= 1 << i
		}
	}
	fmt.Printf("\ncounter logic untouched: %d -> %d across one clock\n", v0, v1)
	if v1 != v0+1 {
		log.Fatal("logic disturbed by BRAM update")
	}
}
