// Run-time debug probe: route an internal signal to a spare pad on a
// running device — the classic JBits/JRoute use case. No CAD round trip:
// the probe wire is routed directly in the configuration state through free
// resources, and only the touched frames are downloaded.
//
//	go run ./examples/probe
package main

import (
	"context"
	"fmt"
	"log"

	jpg "repro"
)

func main() {
	ctx := context.Background()
	part, err := jpg.PartByName("XCV50")
	if err != nil {
		log.Fatal(err)
	}
	base, err := jpg.BuildBase(ctx, part, []jpg.Instance{
		{Prefix: "u1/", Gen: jpg.Counter{Bits: 6}},
	}, jpg.FlowOptions{Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	board := jpg.NewBoard(part)
	if _, err := board.Download(base.Bitstream); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counter running on %s; probing internal bit u1/q2\n", part.Name)

	// Patch a copy of the device state: route the internal FF output to a
	// spare pad with the run-time router, enable the pad, then download only
	// the frames the patch touched.
	patched := board.Readback()
	router, err := jpg.NewRuntimeRouter(patched)
	if err != nil {
		log.Fatal(err)
	}
	src, err := jpg.CellOutputNode(&base.Artifacts, "u1/q2")
	if err != nil {
		log.Fatal(err)
	}
	const probePad = "P_R8" // a free pad on the right edge
	dst, err := jpg.PadOutputNode(part, probePad)
	if err != nil {
		log.Fatal(err)
	}
	path, err := router.Connect(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	if err := jpg.EnableOutputPad(patched, probePad); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probe routed through %d free PIPs to pad %s\n", len(path), probePad)

	diff, err := jpg.DiffFrames(board.Readback(), patched)
	if err != nil {
		log.Fatal(err)
	}
	patch, err := jpg.WritePartialForFARs(patched, diff)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := board.Download(patch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("patch: %d frames, %d bytes, applied in %v without stopping the device\n",
		len(diff), len(patch), ds.ModelTime)

	// Observe: the probe pad must now follow counter bit 2 (toggling every
	// 4 cycles).
	ex, err := jpg.ExtractDesign(board.Readback())
	if err != nil {
		log.Fatal(err)
	}
	s, err := jpg.SimulateExtracted(ex)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncycle: q2 (design pad) vs probe pad")
	mismatches := 0
	for cyc := 1; cyc <= 16; cyc++ {
		s.Step()
		q2, err := s.Output(base.Pads["u1_out2"])
		if err != nil {
			log.Fatal(err)
		}
		probe, err := s.Output(probePad)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if q2 != probe {
			marker = "  <-- MISMATCH"
			mismatches++
		}
		fmt.Printf("  %2d:  %v vs %v%s\n", cyc, q2, probe, marker)
	}
	if mismatches > 0 {
		log.Fatalf("probe disagreed with the internal signal %d times", mismatches)
	}
	fmt.Println("probe tracks the internal signal exactly")
}
