// Package timing implements static timing analysis over placed-and-routed
// designs: per-sink routing delays are accumulated along each net's PIP
// tree, combinational arrival times propagate through the LUT network, and
// the worst register-to-register / pad-to-register path sets the design's
// minimum clock period. The delay model is synthetic but resource-aware
// (longer wires cost more, every switch costs), which is what the flow's
// optimisation claims need.
package timing

import (
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/netlist"
	"repro/internal/phys"
)

// Delay model constants, in nanoseconds.
const (
	DelayLUT     = 0.50 // LUT logic delay
	DelayFFClkQ  = 0.60 // flip-flop clock-to-out
	DelayFFSetup = 0.40 // flip-flop setup
	DelayPIP     = 0.30 // one programmable switch
	DelayPad     = 1.00 // pad buffer (either direction)

	// Wire RC by resource class (added when a signal enters the wire).
	DelaySingle = 0.35
	DelayHex    = 0.90
	DelayLong   = 1.60
	DelayLocal  = 0.20 // slice output stubs and input-pin taps
	DelayGlobal = 0.80 // global line (clock distribution, reported separately)
)

// PathPoint is one step of a reported critical path.
type PathPoint struct {
	What    string  // "pad", "cell", "net"
	Name    string  // port/cell/net name
	Arrival float64 // arrival time at this point, ns
}

// Analysis is the result of timing a design.
type Analysis struct {
	// CriticalNs is the worst path delay in nanoseconds (including source
	// clock-to-out and destination setup where applicable).
	CriticalNs float64
	// FMaxMHz is the implied maximum clock frequency.
	FMaxMHz float64
	// Critical is the worst path, source to endpoint.
	Critical []PathPoint
	// NetDelays maps each routed net to its worst sink delay (ns).
	NetDelays map[*netlist.Net]float64
	// Endpoints counted (FF data inputs and output pads).
	Endpoints int
}

// wireDelay classifies a routing node and returns the delay to enter it.
func wireDelay(p *device.Part, n device.NodeID) float64 {
	d := p.DescribeNode(n)
	switch d.Kind {
	case device.NodeWire:
		w := d.C
		switch {
		case w >= device.WireSingleBase && w < device.WireHexBase:
			return DelaySingle
		case w >= device.WireHexBase && w < device.WireInPinBase:
			return DelayHex
		default: // OUT stubs and input pins
			return DelayLocal
		}
	case device.NodeRowLong, device.NodeColLong:
		return DelayLong
	case device.NodeGlobal:
		return DelayGlobal
	case device.NodePadI, device.NodePadO:
		return DelayPad
	}
	return 0
}

// netSinkDelays walks a route tree and returns the accumulated delay at
// every node, keyed by node.
func netSinkDelays(d *phys.Design, r *phys.Route) map[device.NodeID]float64 {
	src := device.NodeID(-1)
	// Root: the tree's source is the one PIP source never driven in-tree.
	driven := map[device.NodeID]bool{}
	for _, pip := range r.PIPs {
		driven[pip.Dst] = true
	}
	delays := map[device.NodeID]float64{}
	// Iterate to fixpoint in tree order: repeatedly relax edges whose source
	// delay is known. Trees are tiny; two or three sweeps suffice.
	for _, pip := range r.PIPs {
		if !driven[pip.Src] {
			src = pip.Src
		}
	}
	if src >= 0 {
		delays[src] = 0
	}
	for changed := true; changed; {
		changed = false
		for _, pip := range r.PIPs {
			from, ok := delays[pip.Src]
			if !ok {
				continue
			}
			nd := from + DelayPIP + wireDelay(d.Part, pip.Dst)
			if cur, ok := delays[pip.Dst]; !ok || nd > cur {
				delays[pip.Dst] = nd
				changed = true
			}
		}
	}
	return delays
}

// Analyze runs static timing analysis on a routed design.
func Analyze(d *phys.Design) (*Analysis, error) {
	if err := d.CheckRoutes(); err != nil {
		return nil, err
	}
	a := &Analysis{NetDelays: map[*netlist.Net]float64{}}

	// Per-net, per-sink-node routing delays.
	netNode := map[*netlist.Net]map[device.NodeID]float64{}
	for n, r := range d.Routes {
		delays := netSinkDelays(d, r)
		netNode[n] = delays
		worst := 0.0
		for _, v := range delays {
			worst = math.Max(worst, v)
		}
		a.NetDelays[n] = worst
	}
	// sinkDelay returns the routing delay to a specific cell pin.
	sinkDelay := func(net *netlist.Net, pr netlist.PinRef) (float64, error) {
		node, internal, err := d.PinNode(pr)
		if err != nil {
			return 0, err
		}
		if internal {
			return 0, nil // LUT->FF inside one LE
		}
		delays, ok := netNode[net]
		if !ok {
			return 0, fmt.Errorf("timing: net %q unrouted", net.Name)
		}
		v, ok := delays[node]
		if !ok {
			return 0, fmt.Errorf("timing: net %q has no delay at %s", net.Name, d.Part.NodeName(node))
		}
		return v, nil
	}

	// Arrival times at cell outputs, computed over the combinational DAG.
	arrival := map[*netlist.Cell]float64{}
	from := map[*netlist.Cell]netlist.PinRef{} // critical fan-in per LUT
	var visit func(c *netlist.Cell) (float64, error)
	visiting := map[*netlist.Cell]bool{}
	netArrival := func(net *netlist.Net, pr netlist.PinRef) (float64, error) {
		rd, err := sinkDelay(net, pr)
		if err != nil {
			return 0, err
		}
		switch {
		case net.DriverPort != nil:
			return DelayPad + rd, nil
		case net.Driver.Cell != nil:
			av, err := visit(net.Driver.Cell)
			if err != nil {
				return 0, err
			}
			return av + rd, nil
		}
		return 0, fmt.Errorf("timing: net %q undriven", net.Name)
	}
	visit = func(c *netlist.Cell) (float64, error) {
		if v, ok := arrival[c]; ok {
			return v, nil
		}
		if c.Kind == netlist.KindDFF {
			arrival[c] = DelayFFClkQ
			return DelayFFClkQ, nil
		}
		if visiting[c] {
			return 0, fmt.Errorf("timing: combinational cycle through %q", c.Name)
		}
		visiting[c] = true
		defer delete(visiting, c)
		worst := 0.0
		for k, in := range c.Inputs {
			pr := netlist.PinRef{Cell: c, Pin: fmt.Sprintf("I%d", k)}
			av, err := netArrival(in, pr)
			if err != nil {
				return 0, err
			}
			if av > worst {
				worst = av
				from[c] = in.Driver
			}
		}
		v := worst + DelayLUT
		arrival[c] = v
		return v, nil
	}

	// Endpoints: FF data inputs (+setup) and output pads (+pad).
	type endpoint struct {
		name  string
		delay float64
		via   *netlist.Net
	}
	var worstEP endpoint
	consider := func(ep endpoint) {
		a.Endpoints++
		if ep.delay > worstEP.delay {
			worstEP = ep
		}
	}
	for _, c := range d.Netlist.SortedCells() {
		if c.Kind != netlist.KindDFF {
			continue
		}
		net := c.Inputs[0]
		av, err := netArrival(net, netlist.PinRef{Cell: c, Pin: "D"})
		if err != nil {
			return nil, err
		}
		consider(endpoint{name: c.Name + ".D", delay: av + DelayFFSetup, via: net})
	}
	for _, port := range d.Netlist.Ports {
		if port.Dir != netlist.Out {
			continue
		}
		net := port.Net
		delays, ok := netNode[net]
		if !ok {
			continue
		}
		pad, padOK := d.Ports[port]
		if !padOK {
			continue
		}
		rd, ok := delays[d.Part.PadNodeO(pad)]
		if !ok {
			continue
		}
		base := 0.0
		if net.Driver.Cell != nil {
			v, err := visit(net.Driver.Cell)
			if err != nil {
				return nil, err
			}
			base = v
		} else {
			base = DelayPad
		}
		consider(endpoint{name: "pad " + pad.Name(), delay: base + rd + DelayPad, via: net})
	}

	a.CriticalNs = worstEP.delay
	if a.CriticalNs > 0 {
		a.FMaxMHz = 1000 / a.CriticalNs
	}
	// Reconstruct the critical path backwards through `from`.
	if worstEP.via != nil {
		var rev []PathPoint
		rev = append(rev, PathPoint{What: "endpoint", Name: worstEP.name, Arrival: worstEP.delay})
		cur := worstEP.via.Driver
		for cur.Cell != nil {
			rev = append(rev, PathPoint{What: "cell", Name: cur.Cell.Name, Arrival: arrival[cur.Cell]})
			if cur.Cell.Kind == netlist.KindDFF {
				break
			}
			next, ok := from[cur.Cell]
			if !ok {
				break
			}
			cur = next
		}
		for i := len(rev) - 1; i >= 0; i-- {
			a.Critical = append(a.Critical, rev[i])
		}
	}
	return a, nil
}

// Report renders the analysis as text.
func (a *Analysis) Report() string {
	s := fmt.Sprintf("critical path: %.2f ns (fmax %.1f MHz) over %d endpoints\n",
		a.CriticalNs, a.FMaxMHz, a.Endpoints)
	for _, pp := range a.Critical {
		s += fmt.Sprintf("  %-8s %-24s @ %.2f ns\n", pp.What, pp.Name, pp.Arrival)
	}
	return s
}
