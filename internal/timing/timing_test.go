package timing

import (
	"strings"
	"testing"

	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/phys"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/ucf"
)

func routed(t *testing.T, gen designs.Generator, cons *ucf.Constraints, seed int64) *phys.Design {
	t.Helper()
	nl, err := designs.Standalone(gen, "d", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	d, err := place.Place(device.MustByName("XCV50"), nl, place.Options{Seed: seed, Constraints: cons})
	if err != nil {
		t.Fatal(err)
	}
	if err := route.Route(d, route.Options{}); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAnalyzeCounter(t *testing.T) {
	d := routed(t, designs.Counter{Bits: 8}, nil, 1)
	a, err := Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	if a.CriticalNs <= DelayFFClkQ+DelayLUT+DelayFFSetup {
		t.Fatalf("critical path %.2f ns implausibly short", a.CriticalNs)
	}
	if a.FMaxMHz <= 0 || a.FMaxMHz > 2000 {
		t.Fatalf("fmax %.1f MHz implausible", a.FMaxMHz)
	}
	if a.Endpoints == 0 {
		t.Fatal("no endpoints timed")
	}
	if len(a.Critical) < 2 {
		t.Fatalf("critical path report too short: %v", a.Critical)
	}
	rep := a.Report()
	if !strings.Contains(rep, "fmax") {
		t.Fatalf("report incomplete:\n%s", rep)
	}
	// Arrival times along the reported path must be non-decreasing.
	for i := 1; i < len(a.Critical); i++ {
		if a.Critical[i].Arrival < a.Critical[i-1].Arrival {
			t.Fatalf("critical path arrivals not monotone: %v", a.Critical)
		}
	}
}

func TestNetDelaysPositive(t *testing.T) {
	d := routed(t, designs.RippleAdder{Bits: 4}, nil, 2)
	a, err := Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	for n, v := range a.NetDelays {
		if len(d.Routes[n].PIPs) > 0 && v <= 0 {
			t.Fatalf("routed net %q has non-positive delay %f", n.Name, v)
		}
	}
}

// timeInverter places a single registered inverter at the given tile, with
// its pads pinned near the top-left corner, and returns the critical path.
func timeInverter(t *testing.T, row, col int) float64 {
	t.Helper()
	nl, err := designs.Standalone(designs.LFSR{Bits: 2, Taps: []int{1}}, "d", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	cons := ucf.New()
	cons.NetLocs["clk"] = "P_L1"
	cons.NetLocs["out0"] = "P_T1"
	cons.NetLocs["out1"] = "P_T2"
	cons.AddGroup("u1/*", "AG", frames.Region{R1: row, C1: col, R2: row + 1, C2: col + 1})
	d, err := place.Place(device.MustByName("XCV50"), nl, place.Options{Seed: 4, Constraints: cons})
	if err != nil {
		t.Fatal(err)
	}
	if err := route.Route(d, route.Options{}); err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	return a.CriticalNs
}

func TestPlacementDistanceShowsInTiming(t *testing.T) {
	// The same module placed next to its pads vs at the far corner of the
	// device: timing must reflect the longer interconnect.
	near := timeInverter(t, 0, 0)
	far := timeInverter(t, 13, 21)
	if far <= near {
		t.Fatalf("far placement (%.2f ns) not slower than near placement (%.2f ns)", far, near)
	}
}

func TestAnalyzeRejectsUnrouted(t *testing.T) {
	nl, err := designs.Standalone(designs.Counter{Bits: 3}, "d", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	d, err := place.Place(device.MustByName("XCV50"), nl, place.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(d); err == nil {
		t.Fatal("unrouted design timed")
	}
}
