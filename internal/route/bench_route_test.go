package route

import (
	"testing"

	"repro/internal/designs"
)

// TestRouteNetZeroAlloc pins the PathFinder inner loop at zero allocations
// per net reroute once the scratch is warm — the routing half of the flow's
// hot-path contract. Everything a reroute touches (A* frontier, visited
// stamps, path buffers, the net's own tree) must come from reused storage.
func TestRouteNetZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	nl, err := designs.Standalone(designs.SBoxBank{N: 16, Seed: 9}, "sb", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	d := placeDesign(t, "XCV50", nl, nil, 2)
	nb, err := NewNetBencher(d)
	if err != nil {
		t.Fatal(err)
	}
	defer nb.Close()
	for i := 0; i < 200; i++ {
		if err := nb.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(500, func() {
		if err := nb.Step(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("net reroute allocates %.2f objects per net, want 0", allocs)
	}
}

// TestNetBencherStepsStaySearchable sanity-checks the bench hook itself:
// thousands of rip-up/reroute rounds keep occupancy coherent (every tree
// node claimed exactly once per owning net) so benchmark numbers measure a
// live router, not a corrupted one.
func TestNetBencherStepsStaySearchable(t *testing.T) {
	nl, err := designs.Standalone(designs.Counter{Bits: 8}, "cnt", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	d := placeDesign(t, "XCV50", nl, nil, 1)
	nb, err := NewNetBencher(d)
	if err != nil {
		t.Fatal(err)
	}
	defer nb.Close()
	for i := 0; i < 2000; i++ {
		if err := nb.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	// Rebuild expected occupancy from the trees and compare.
	want := make(map[int64]int32)
	for _, fn := range nb.nets {
		for _, te := range fn.tree {
			want[int64(te.node)]++
		}
	}
	for node, occ := range nb.r.s.occ {
		if occ != want[int64(node)] {
			t.Fatalf("node %d occupancy %d, trees claim %d", node, occ, want[int64(node)])
		}
	}
}
