package route

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/phys"
)

// Benchmark surface. The PathFinder inner loop works on unexported router
// state, so the repository-level benchmarks and the allocation-regression
// tests drive it through this narrow exported hook. Not intended for
// production callers.

// NetBencher reroutes single nets of a placed design — one rip-up plus one
// tree of A* searches per Step, the unit of work PathFinder iterates.
type NetBencher struct {
	r    *router
	nets []*fabricNet
	idx  int
}

// NewNetBencher prepares a router over the placed design with default
// options and routes every net once, so Steps measure steady-state rerouting
// (warm scratch, stable tree capacities). Call Close when done to return the
// scratch to the pool.
func NewNetBencher(d *phys.Design) (*NetBencher, error) {
	r := &router{
		d:    d,
		g:    device.NewGraph(d.Part),
		opts: Options{MaxIters: 48, PresentFactor: 0.6, HistoryFactor: 0.35},
	}
	r.s = getScratch(d.Part.NumNodes())
	nets, err := r.collectNets()
	if err != nil {
		putScratch(r.s)
		return nil, err
	}
	if len(nets) == 0 {
		putScratch(r.s)
		return nil, fmt.Errorf("route: design has no fabric nets")
	}
	nb := &NetBencher{r: r, nets: nets}
	for _, fn := range nets {
		if err := r.routeNet(fn, r.opts.PresentFactor); err != nil {
			nb.Close()
			return nil, err
		}
	}
	return nb, nil
}

// Step rips up and reroutes the next net (round-robin over the design).
func (n *NetBencher) Step() error {
	fn := n.nets[n.idx]
	n.idx = (n.idx + 1) % len(n.nets)
	n.r.ripUp(fn)
	return n.r.routeNet(fn, n.r.opts.PresentFactor)
}

// Close returns the router scratch to the pool.
func (n *NetBencher) Close() {
	if n.r.s != nil {
		putScratch(n.r.s)
		n.r.s = nil
	}
}
