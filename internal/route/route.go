// Package route implements a PathFinder-style negotiated-congestion router
// over the device routing graph: nets are routed by repeated A* searches,
// sharing is permitted at first and then negotiated away through rising
// present-sharing and history costs until every routing node has a single
// owner — the role PAR routing plays in the Xilinx flow.
//
// Clock nets are not routed through the fabric: each distinct clock net is
// assigned a global line and taps it at every sink's CLK pin, as on the real
// device.
//
// The inner loop is allocation-free in steady state: the per-device A*
// scratch (distance/visited/predecessor arrays, the frontier heap, the path
// buffers) lives in a sync.Pool keyed by graph size, visited state is
// epoch-stamped instead of cleared, and searches are bounded to a window
// around the net before falling back to the full graph.
package route

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/phys"
)

// Options configures a routing run.
type Options struct {
	// MaxIters bounds PathFinder iterations (default 48).
	MaxIters int
	// PresentFactor and HistoryFactor tune congestion negotiation; zero
	// values select defaults (0.6, 0.35).
	PresentFactor, HistoryFactor float64
	// RegionForNet optionally constrains nets to floorplan regions (see
	// region.go); return nil for unconstrained nets. Clock nets are always
	// unconstrained (they ride global lines).
	RegionForNet func(n *netlist.Net) *frames.Region
}

// Router metrics (always on; see internal/obs): PathFinder convergence and
// A* search volume, the counters behind the route stage's share of the
// paper's C3 "CAD time" claim.
var (
	mNets       = obs.GetCounter("route.nets")
	mIters      = obs.GetCounter("route.iterations")
	mSearches   = obs.GetCounter("route.searches")
	mRetries    = obs.GetCounter("route.search_retries")
	mHeapPushes = obs.GetCounter("route.heap_pushes")
)

// Route routes every net of the placed design, filling d.Routes. On success
// the routes pass phys.(*Design).CheckRoutes.
func Route(d *phys.Design, opts Options) error {
	return RouteCtx(context.Background(), d, opts)
}

// RouteCtx is Route with a context for observability: each PathFinder
// iteration is a "route.iter" span carrying its overuse count.
func RouteCtx(ctx context.Context, d *phys.Design, opts Options) error {
	if opts.MaxIters <= 0 {
		opts.MaxIters = 48
	}
	if opts.PresentFactor <= 0 {
		opts.PresentFactor = 0.6
	}
	if opts.HistoryFactor <= 0 {
		opts.HistoryFactor = 0.35
	}
	r := &router{
		d:    d,
		g:    device.NewGraph(d.Part),
		opts: opts,
	}
	if err := r.routeClocks(); err != nil {
		return err
	}
	r.s = getScratch(d.Part.NumNodes())
	defer func() {
		putScratch(r.s)
		r.s = nil
	}()
	if err := r.routeFabric(ctx); err != nil {
		return err
	}
	mSearches.Add(r.searches)
	mRetries.Add(r.retries)
	mHeapPushes.Add(r.pushes)
	return d.CheckRoutes()
}

type router struct {
	d    *phys.Design
	g    *device.Graph
	opts Options
	s    *scratch

	// Inner-loop counters, flushed to the obs registry once per run.
	searches, retries, pushes int64
}

// scratch is the reusable per-run router state, sized to one device graph.
// Runs borrow it from a pool so repeated routing (variant fan-out, cached
// flows, benchmarks) allocates nothing per net: occupancy and history are
// memclr'd once per run, while the A* visited state is epoch-stamped — a
// search bumps the epoch instead of touching N nodes. The epoch survives
// pool round-trips, so stale stamps can never alias a live search.
type scratch struct {
	n    int
	occ  []int32   // present usage per node
	hist []float64 // accumulated history cost per node

	dist    []float64
	prevPIP []device.PIP // arriving pip per node; Row == -1 marks a tree root
	seen    []int32
	epoch   int32

	pq   pipHeap
	tree []device.NodeID
	rev  []treeEdge
}

var scratchPool sync.Pool

func getScratch(n int) *scratch {
	s, _ := scratchPool.Get().(*scratch)
	if s == nil || s.n != n {
		s = &scratch{
			n:       n,
			occ:     make([]int32, n),
			hist:    make([]float64, n),
			dist:    make([]float64, n),
			prevPIP: make([]device.PIP, n),
			seen:    make([]int32, n),
		}
	} else {
		clear(s.occ)
		clear(s.hist)
	}
	return s
}

func putScratch(s *scratch) { scratchPool.Put(s) }

// nextEpoch invalidates all visited stamps in O(1). On (rare) wrap the
// stamps are cleared for real, keeping old epochs from aliasing new ones.
func (s *scratch) nextEpoch() int32 {
	if s.epoch == math.MaxInt32 {
		s.epoch = 0
		clear(s.seen)
	}
	s.epoch++
	return s.epoch
}

// routeClocks assigns distinct clock nets to global lines and taps them.
func (r *router) routeClocks() error {
	var clocks []*netlist.Net
	for _, n := range r.d.Netlist.SortedNets() {
		if n.IsClock && n.Driven() {
			clocks = append(clocks, n)
		}
	}
	if len(clocks) > device.NumGlobals {
		return fmt.Errorf("route: %d clock nets exceed %d global lines", len(clocks), device.NumGlobals)
	}
	for gi, n := range clocks {
		if n.Driver.Cell != nil {
			return fmt.Errorf("route: clock net %q driven by logic; gated clocks are unsupported", n.Name)
		}
		sinks, err := r.d.SinkNodes(n)
		if err != nil {
			return err
		}
		route := &phys.Route{Net: n, Global: gi}
		src := r.d.Part.GlobalNode(gi)
		for _, sink := range sinks {
			row, col, _, ok := r.d.Part.NodeTile(sink)
			if !ok {
				return fmt.Errorf("route: clock net %q sink %s is not a pin", n.Name, r.d.Part.NodeName(sink))
			}
			pip, ok := r.d.Part.FindPIP(row, col, src, sink)
			if !ok {
				return fmt.Errorf("route: no global tap for %s", r.d.Part.NodeName(sink))
			}
			route.PIPs = append(route.PIPs, pip)
		}
		r.d.Routes[n] = route
	}
	return nil
}

// fabricNet is one net scheduled for PathFinder routing.
type fabricNet struct {
	net   *netlist.Net
	src   device.NodeID
	sinks []device.NodeID
	allow func(device.PIP) bool // nil = unconstrained
	tree  []treeEdge            // current routing
}

type treeEdge struct {
	pip  device.PIP
	node device.NodeID // == pip.Dst
}

// collectNets gathers the fabric-routable nets in deterministic order:
// sorted netlist order, then high-fanout first (stable), so the negotiation
// schedule never depends on map iteration.
func (r *router) collectNets() ([]*fabricNet, error) {
	part := r.d.Part
	var nets []*fabricNet
	for _, net := range r.d.Netlist.SortedNets() {
		if net.IsClock || !net.Driven() {
			continue
		}
		sinks, err := r.d.SinkNodes(net)
		if err != nil {
			return nil, err
		}
		if len(sinks) == 0 {
			continue
		}
		src, err := r.d.SourceNode(net)
		if err != nil {
			return nil, err
		}
		fn := &fabricNet{net: net, src: src, sinks: sinks}
		if r.opts.RegionForNet != nil {
			fn.allow = regionFilter(part, r.opts.RegionForNet(net))
		}
		nets = append(nets, fn)
	}
	// High-fanout first: they negotiate the scarce resources.
	sort.SliceStable(nets, func(i, j int) bool { return len(nets[i].sinks) > len(nets[j].sinks) })
	return nets, nil
}

func (r *router) routeFabric(ctx context.Context) error {
	nets, err := r.collectNets()
	if err != nil {
		return err
	}
	mNets.Add(int64(len(nets)))

	presentFac := r.opts.PresentFactor
	for iter := 0; iter < r.opts.MaxIters; iter++ {
		_, sp := obs.Start(ctx, "route.iter")
		sp.SetInt("iter", int64(iter))
		for _, fn := range nets {
			r.ripUp(fn)
			if err := r.routeNet(fn, presentFac); err != nil {
				sp.EndErr(err)
				return fmt.Errorf("route: iteration %d: %w", iter, err)
			}
		}
		over := r.overusedNodes()
		sp.SetInt("overused", int64(over))
		sp.EndErr(nil)
		mIters.Inc()
		if over == 0 {
			r.commit(nets)
			return nil
		}
		// Sharpen penalties and accumulate history on congested nodes.
		presentFac *= 1.7
		for i := range r.s.occ {
			if r.s.occ[i] > 1 {
				r.s.hist[i] += r.opts.HistoryFactor * float64(r.s.occ[i]-1)
			}
		}
	}
	return fmt.Errorf("route: congestion unresolved after %d iterations (%d overused nodes)",
		r.opts.MaxIters, r.overusedNodes())
}

func (r *router) overusedNodes() int {
	over := 0
	for _, u := range r.s.occ {
		if u > 1 {
			over++
		}
	}
	return over
}

func (r *router) ripUp(fn *fabricNet) {
	for _, te := range fn.tree {
		r.s.occ[te.node]--
	}
	fn.tree = fn.tree[:0]
}

// commit writes final routes into the design.
func (r *router) commit(nets []*fabricNet) {
	for _, fn := range nets {
		route := &phys.Route{Net: fn.net, Global: -1}
		for _, te := range fn.tree {
			route.PIPs = append(route.PIPs, te.pip)
		}
		r.d.Routes[fn.net] = route
	}
}

// nodeCost is the congestion-aware cost of claiming a node.
func (r *router) nodeCost(node device.NodeID, presentFac float64) float64 {
	base := 1.0 + r.s.hist[node]
	sharing := float64(r.s.occ[node]) // claims already held by others
	return base * (1 + presentFac*sharing)
}

// routeNet routes all sinks of one net, growing a tree.
func (r *router) routeNet(fn *fabricNet, presentFac float64) error {
	treeNodes := append(r.s.tree[:0], fn.src)
	for _, sink := range fn.sinks {
		path, err := r.search(treeNodes, sink, presentFac, fn.allow)
		if err != nil {
			return fmt.Errorf("net %q to %s: %w", fn.net.Name, r.d.Part.NodeName(sink), err)
		}
		for _, te := range path {
			fn.tree = append(fn.tree, te)
			r.s.occ[te.node]++
			treeNodes = append(treeNodes, te.node)
		}
	}
	r.s.tree = treeNodes[:0]
	return nil
}

// treeRootPIP marks tree roots in prevPIP.
var treeRootPIP = device.PIP{Row: -1}

// errNoPath reports a starved search. A sentinel, not fmt.Errorf: bounded
// searches fail routinely (the unbounded retry absorbs them) and the hot
// loop must not allocate for an expected outcome.
var errNoPath = errors.New("no path")

// searchMargin expands the A* window (in tiles) beyond the bounding box of
// the source tree and the target. Optimal detours under congestion stay
// local; anything the window cannot reach is caught by the unbounded retry.
const searchMargin = 3

// search finds a cheapest path from any tree node to the target using A*,
// returning the new edges in source-to-sink order. The first attempt
// restricts expansion to a window around the net (plus every off-fabric
// node: globals, long lines, pads); if the window starves it retries over
// the whole graph so completeness is never lost.
func (r *router) search(tree []device.NodeID, target device.NodeID, presentFac float64, allow func(device.PIP) bool) ([]treeEdge, error) {
	r.searches++
	path, err := r.searchWindow(tree, target, presentFac, allow, true)
	if err == nil {
		return path, nil
	}
	r.retries++
	return r.searchWindow(tree, target, presentFac, allow, false)
}

func (r *router) searchWindow(tree []device.NodeID, target device.NodeID, presentFac float64, allow func(device.PIP) bool, bounded bool) ([]treeEdge, error) {
	part := r.d.Part
	s := r.s
	epoch := s.nextEpoch()
	tRow, tCol, _, tIsTile := part.NodeTile(target)

	// The search window: tree ∪ target bounding box, expanded by the margin.
	// Off-fabric nodes carry no tile and are always admitted.
	minR, maxR, minC, maxC := 0, 0, 0, 0
	bounded = bounded && tIsTile
	if bounded {
		minR, maxR, minC, maxC = tRow, tRow, tCol, tCol
		for _, n := range tree {
			if row, col, _, ok := part.NodeTile(n); ok {
				minR, maxR = min(minR, row), max(maxR, row)
				minC, maxC = min(minC, col), max(maxC, col)
			}
		}
		minR, maxR = minR-searchMargin, maxR+searchMargin
		minC, maxC = minC-searchMargin, maxC+searchMargin
	}

	h := func(n device.NodeID) float64 {
		if !tIsTile {
			return 0
		}
		row, col, _, ok := part.NodeTile(n)
		if !ok {
			return 0
		}
		d := abs(row-tRow) + abs(col-tCol)
		return float64(d) / 6.0 // hex wires cover 6 tiles per node: keep admissible
	}

	pq := &s.pq
	pq.reset()
	for _, n := range tree {
		s.dist[n] = 0
		s.prevPIP[n] = treeRootPIP
		s.seen[n] = epoch
		pq.push(pqItem{node: n, prio: h(n)})
	}
	pushes := int64(len(tree))
	for pq.len() > 0 {
		cur := pq.pop()
		if cur.node == target {
			r.pushes += pushes
			return r.unwind(target), nil
		}
		if cur.cost > s.dist[cur.node] {
			continue // stale entry
		}
		for _, pip := range r.g.From(cur.node) {
			if allow != nil && !allow(pip) {
				continue
			}
			if bounded {
				if row, col, _, ok := part.NodeTile(pip.Dst); ok &&
					(row < minR || row > maxR || col < minC || col > maxC) {
					continue
				}
			}
			nd := cur.cost + r.nodeCost(pip.Dst, presentFac)
			if s.seen[pip.Dst] == epoch && nd >= s.dist[pip.Dst] {
				continue
			}
			s.seen[pip.Dst] = epoch
			s.dist[pip.Dst] = nd
			s.prevPIP[pip.Dst] = pip
			pq.push(pqItem{node: pip.Dst, cost: nd, prio: nd + h(pip.Dst)})
			pushes++
		}
	}
	r.pushes += pushes
	return nil, errNoPath
}

// unwind reconstructs the path, stopping at a tree root. The returned slice
// aliases the scratch path buffer; it is only valid until the next search.
func (r *router) unwind(target device.NodeID) []treeEdge {
	rev := r.s.rev[:0]
	node := target
	for {
		pip := r.s.prevPIP[node]
		if pip.Row < 0 {
			break
		}
		rev = append(rev, treeEdge{pip: pip, node: node})
		node = pip.Src
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	r.s.rev = rev
	return rev
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// pqItem is an A* frontier entry.
type pqItem struct {
	node device.NodeID
	cost float64 // g-cost at push time
	prio float64 // g + h
}

// pipHeap is a plain 4-ary min-heap on prio. The stdlib container/heap
// interface costs an allocation per push via the interface boundary, and a
// binary heap's pop walks twice the depth with one compare per level; with
// lazy deletion the A* loop is pop-dominated, so the wide shallow heap (four
// siblings share a cache line's worth of entries) is measurably faster.
type pipHeap struct {
	items []pqItem
}

func (h *pipHeap) len() int { return len(h.items) }

func (h *pipHeap) reset() { h.items = h.items[:0] }

func (h *pipHeap) push(it pqItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if h.items[parent].prio <= h.items[i].prio {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *pipHeap) pop() pqItem {
	top := h.items[0]
	last := len(h.items) - 1
	it := h.items[last]
	h.items = h.items[:last]
	if last == 0 {
		return top
	}
	// Sift the former tail down from the root.
	i := 0
	for {
		first := 4*i + 1
		if first >= last {
			break
		}
		end := first + 4
		if end > last {
			end = last
		}
		smallest, sp := first, h.items[first].prio
		for c := first + 1; c < end; c++ {
			if p := h.items[c].prio; p < sp {
				smallest, sp = c, p
			}
		}
		if it.prio <= sp {
			break
		}
		h.items[i] = h.items[smallest]
		i = smallest
	}
	h.items[i] = it
	return top
}
