// Package route implements a PathFinder-style negotiated-congestion router
// over the device routing graph: nets are routed by repeated A* searches,
// sharing is permitted at first and then negotiated away through rising
// present-sharing and history costs until every routing node has a single
// owner — the role PAR routing plays in the Xilinx flow.
//
// Clock nets are not routed through the fabric: each distinct clock net is
// assigned a global line and taps it at every sink's CLK pin, as on the real
// device.
package route

import (
	"fmt"
	"sort"

	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/netlist"
	"repro/internal/phys"
)

// Options configures a routing run.
type Options struct {
	// MaxIters bounds PathFinder iterations (default 48).
	MaxIters int
	// PresentFactor and HistoryFactor tune congestion negotiation; zero
	// values select defaults (0.6, 0.35).
	PresentFactor, HistoryFactor float64
	// RegionForNet optionally constrains nets to floorplan regions (see
	// region.go); return nil for unconstrained nets. Clock nets are always
	// unconstrained (they ride global lines).
	RegionForNet func(n *netlist.Net) *frames.Region
}

// Route routes every net of the placed design, filling d.Routes. On success
// the routes pass phys.(*Design).CheckRoutes.
func Route(d *phys.Design, opts Options) error {
	if opts.MaxIters <= 0 {
		opts.MaxIters = 48
	}
	if opts.PresentFactor <= 0 {
		opts.PresentFactor = 0.6
	}
	if opts.HistoryFactor <= 0 {
		opts.HistoryFactor = 0.35
	}
	r := &router{
		d:    d,
		g:    device.NewGraph(d.Part),
		opts: opts,
	}
	if err := r.routeClocks(); err != nil {
		return err
	}
	if err := r.routeFabric(); err != nil {
		return err
	}
	return d.CheckRoutes()
}

type router struct {
	d    *phys.Design
	g    *device.Graph
	opts Options

	occ  []int32   // present usage per node
	hist []float64 // accumulated history cost per node

	// A* scratch, epoch-tagged to avoid clearing between searches.
	dist    []float64
	prevPIP []device.PIP // arriving pip per node; Row == -1 marks a tree root
	seen    []int32
	epoch   int32
}

// routeClocks assigns distinct clock nets to global lines and taps them.
func (r *router) routeClocks() error {
	var clocks []*netlist.Net
	for _, n := range r.d.Netlist.SortedNets() {
		if n.IsClock && n.Driven() {
			clocks = append(clocks, n)
		}
	}
	if len(clocks) > device.NumGlobals {
		return fmt.Errorf("route: %d clock nets exceed %d global lines", len(clocks), device.NumGlobals)
	}
	for gi, n := range clocks {
		if n.Driver.Cell != nil {
			return fmt.Errorf("route: clock net %q driven by logic; gated clocks are unsupported", n.Name)
		}
		sinks, err := r.d.SinkNodes(n)
		if err != nil {
			return err
		}
		route := &phys.Route{Net: n, Global: gi}
		src := r.d.Part.GlobalNode(gi)
		for _, sink := range sinks {
			row, col, _, ok := r.d.Part.NodeTile(sink)
			if !ok {
				return fmt.Errorf("route: clock net %q sink %s is not a pin", n.Name, r.d.Part.NodeName(sink))
			}
			pip, ok := r.d.Part.FindPIP(row, col, src, sink)
			if !ok {
				return fmt.Errorf("route: no global tap for %s", r.d.Part.NodeName(sink))
			}
			route.PIPs = append(route.PIPs, pip)
		}
		r.d.Routes[n] = route
	}
	return nil
}

// fabricNet is one net scheduled for PathFinder routing.
type fabricNet struct {
	net   *netlist.Net
	src   device.NodeID
	sinks []device.NodeID
	allow func(device.PIP) bool // nil = unconstrained
	tree  []treeEdge            // current routing
}

type treeEdge struct {
	pip  device.PIP
	node device.NodeID // == pip.Dst
}

func (r *router) routeFabric() error {
	part := r.d.Part
	n := part.NumNodes()
	r.occ = make([]int32, n)
	r.hist = make([]float64, n)
	r.dist = make([]float64, n)
	r.prevPIP = make([]device.PIP, n)
	r.seen = make([]int32, n)

	var nets []*fabricNet
	for _, net := range r.d.Netlist.SortedNets() {
		if net.IsClock || !net.Driven() {
			continue
		}
		sinks, err := r.d.SinkNodes(net)
		if err != nil {
			return err
		}
		if len(sinks) == 0 {
			continue
		}
		src, err := r.d.SourceNode(net)
		if err != nil {
			return err
		}
		fn := &fabricNet{net: net, src: src, sinks: sinks}
		if r.opts.RegionForNet != nil {
			fn.allow = regionFilter(part, r.opts.RegionForNet(net))
		}
		nets = append(nets, fn)
	}
	// High-fanout first: they negotiate the scarce resources.
	sort.SliceStable(nets, func(i, j int) bool { return len(nets[i].sinks) > len(nets[j].sinks) })

	presentFac := r.opts.PresentFactor
	for iter := 0; iter < r.opts.MaxIters; iter++ {
		for _, fn := range nets {
			r.ripUp(fn)
			if err := r.routeNet(fn, presentFac); err != nil {
				return fmt.Errorf("route: iteration %d: %w", iter, err)
			}
		}
		over := r.overusedNodes()
		if over == 0 {
			r.commit(nets)
			return nil
		}
		// Sharpen penalties and accumulate history on congested nodes.
		presentFac *= 1.7
		for i := range r.occ {
			if r.occ[i] > 1 {
				r.hist[i] += r.opts.HistoryFactor * float64(r.occ[i]-1)
			}
		}
	}
	return fmt.Errorf("route: congestion unresolved after %d iterations (%d overused nodes)",
		r.opts.MaxIters, r.overusedNodes())
}

func (r *router) overusedNodes() int {
	over := 0
	for _, u := range r.occ {
		if u > 1 {
			over++
		}
	}
	return over
}

func (r *router) ripUp(fn *fabricNet) {
	for _, te := range fn.tree {
		r.occ[te.node]--
	}
	fn.tree = fn.tree[:0]
}

// commit writes final routes into the design.
func (r *router) commit(nets []*fabricNet) {
	for _, fn := range nets {
		route := &phys.Route{Net: fn.net, Global: -1}
		for _, te := range fn.tree {
			route.PIPs = append(route.PIPs, te.pip)
		}
		r.d.Routes[fn.net] = route
	}
}

// nodeCost is the congestion-aware cost of claiming a node.
func (r *router) nodeCost(node device.NodeID, presentFac float64) float64 {
	base := 1.0 + r.hist[node]
	sharing := float64(r.occ[node]) // claims already held by others
	return base * (1 + presentFac*sharing)
}

// routeNet routes all sinks of one net, growing a tree.
func (r *router) routeNet(fn *fabricNet, presentFac float64) error {
	treeNodes := []device.NodeID{fn.src}
	for _, sink := range fn.sinks {
		path, err := r.search(treeNodes, sink, presentFac, fn.allow)
		if err != nil {
			return fmt.Errorf("net %q to %s: %w", fn.net.Name, r.d.Part.NodeName(sink), err)
		}
		for _, te := range path {
			fn.tree = append(fn.tree, te)
			r.occ[te.node]++
			treeNodes = append(treeNodes, te.node)
		}
	}
	return nil
}

// treeRootPIP marks tree roots in prevPIP.
var treeRootPIP = device.PIP{Row: -1}

// search finds a cheapest path from any tree node to the target using A*.
// It returns the new edges in source-to-sink order.
func (r *router) search(tree []device.NodeID, target device.NodeID, presentFac float64, allow func(device.PIP) bool) ([]treeEdge, error) {
	part := r.d.Part
	r.epoch++
	tRow, tCol, _, tIsTile := part.NodeTile(target)

	h := func(n device.NodeID) float64 {
		if !tIsTile {
			return 0
		}
		row, col, _, ok := part.NodeTile(n)
		if !ok {
			return 0
		}
		d := abs(row-tRow) + abs(col-tCol)
		return float64(d) / 6.0 // hex wires cover 6 tiles per node: keep admissible
	}

	var pq pipHeap
	for _, n := range tree {
		r.dist[n] = 0
		r.prevPIP[n] = treeRootPIP
		r.seen[n] = r.epoch
		pq.push(pqItem{node: n, prio: h(n)})
	}
	for pq.len() > 0 {
		cur := pq.pop()
		if cur.node == target {
			return r.unwind(target), nil
		}
		if cur.cost > r.dist[cur.node] {
			continue // stale entry
		}
		for _, pip := range r.g.From(cur.node) {
			if allow != nil && !allow(pip) {
				continue
			}
			nd := cur.cost + r.nodeCost(pip.Dst, presentFac)
			if r.seen[pip.Dst] == r.epoch && nd >= r.dist[pip.Dst] {
				continue
			}
			r.seen[pip.Dst] = r.epoch
			r.dist[pip.Dst] = nd
			r.prevPIP[pip.Dst] = pip
			pq.push(pqItem{node: pip.Dst, cost: nd, prio: nd + h(pip.Dst)})
		}
	}
	return nil, fmt.Errorf("no path")
}

// unwind reconstructs the path, stopping at a tree root.
func (r *router) unwind(target device.NodeID) []treeEdge {
	var rev []treeEdge
	node := target
	for {
		pip := r.prevPIP[node]
		if pip.Row < 0 {
			break
		}
		rev = append(rev, treeEdge{pip: pip, node: node})
		node = pip.Src
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// pqItem is an A* frontier entry.
type pqItem struct {
	node device.NodeID
	cost float64 // g-cost at push time
	prio float64 // g + h
}

// pipHeap is a plain binary min-heap on prio; the stdlib container/heap
// interface costs an allocation per push via the interface boundary, which
// matters in the router's inner loop.
type pipHeap struct {
	items []pqItem
}

func (h *pipHeap) len() int { return len(h.items) }

func (h *pipHeap) push(it pqItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].prio <= h.items[i].prio {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *pipHeap) pop() pqItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.items[l].prio < h.items[smallest].prio {
			smallest = l
		}
		if r < len(h.items) && h.items[r].prio < h.items[smallest].prio {
			smallest = r
		}
		if smallest == i {
			return top
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
