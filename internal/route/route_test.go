package route

import (
	"fmt"
	"testing"

	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/netlist"
	"repro/internal/phys"
	"repro/internal/place"
	"repro/internal/ucf"
)

func placeDesign(t *testing.T, partName string, nl *netlist.Design, cons *ucf.Constraints, seed int64) *phys.Design {
	t.Helper()
	d, err := place.Place(device.MustByName(partName), nl, place.Options{Seed: seed, Constraints: cons})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRouteCounter(t *testing.T) {
	nl, err := designs.Standalone(designs.Counter{Bits: 8}, "cnt", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	d := placeDesign(t, "XCV50", nl, nil, 1)
	if err := Route(d, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckRoutes(); err != nil {
		t.Fatal(err)
	}
	if d.RoutedPIPCount() == 0 {
		t.Fatal("no pips routed")
	}
	// The clock net must ride a global line.
	clk, _ := nl.Port("clk")
	r := d.Routes[clk.Net]
	if r == nil || r.Global < 0 {
		t.Fatal("clock not on a global line")
	}
	for _, pip := range r.PIPs {
		if pip.Src != d.Part.GlobalNode(r.Global) {
			t.Fatalf("clock pip from %s, want global %d", d.Part.NodeName(pip.Src), r.Global)
		}
	}
}

func TestRouteConstrainedModule(t *testing.T) {
	nl, err := designs.Standalone(designs.StringMatcher{Pattern: "go"}, "sm", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	cons := ucf.New()
	cons.AddGroup("u1/*", "AG", frames.Region{R1: 2, C1: 2, R2: 9, C2: 9})
	d := placeDesign(t, "XCV50", nl, cons, 3)
	if err := Route(d, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteDenseSBoxBank(t *testing.T) {
	// Many cells sharing 4 input nets: stresses fanout routing.
	nl, err := designs.Standalone(designs.SBoxBank{N: 24, Seed: 9}, "sb", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	d := placeDesign(t, "XCV50", nl, nil, 5)
	if err := Route(d, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteTooManyClocks(t *testing.T) {
	nl := netlist.NewDesign("clks")
	for i := 0; i < device.NumGlobals+1; i++ {
		clk, err := nl.AddPort(fmt.Sprintf("clk%d", i), netlist.In, nil)
		if err != nil {
			t.Fatal(err)
		}
		din, err := nl.AddPort(fmt.Sprintf("d%d", i), netlist.In, nil)
		if err != nil {
			t.Fatal(err)
		}
		ff, err := nl.AddDFF(fmt.Sprintf("ff%d", i), din.Net, clk.Net, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nl.AddPort(fmt.Sprintf("q%d", i), netlist.Out, ff.Out); err != nil {
			t.Fatal(err)
		}
	}
	d := placeDesign(t, "XCV50", nl, nil, 1)
	if err := Route(d, Options{}); err == nil {
		t.Fatal("5 clock nets routed onto 4 globals")
	}
}

func TestRouteSharedSliceClock(t *testing.T) {
	// Two FFs forced into one slice share the CLK pin; the route checker
	// must accept the deduplicated sink.
	nl := netlist.NewDesign("pairff")
	clk, _ := nl.AddPort("clk", netlist.In, nil)
	d0, _ := nl.AddPort("d0", netlist.In, nil)
	d1, _ := nl.AddPort("d1", netlist.In, nil)
	ff0, err := nl.AddDFF("ff0", d0.Net, clk.Net, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ff1, err := nl.AddDFF("ff1", d1.Net, clk.Net, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	nl.AddPort("q0", netlist.Out, ff0.Out)
	nl.AddPort("q1", netlist.Out, ff1.Out)
	cons := ucf.New()
	cons.InstLocs["ff0"] = ucf.SliceLoc{Row: 4, Col: 4, Slice: 0}
	cons.InstLocs["ff1"] = ucf.SliceLoc{Row: 4, Col: 4, Slice: 0}
	d := placeDesign(t, "XCV50", nl, cons, 1)
	if err := Route(d, Options{}); err != nil {
		t.Fatal(err)
	}
	// Exactly one CLK tap for the shared slice.
	taps := 0
	for _, pip := range d.Routes[clk.Net].PIPs {
		if pip.Row == 4 && pip.Col == 4 {
			taps++
		}
	}
	if taps != 1 {
		t.Fatalf("shared slice has %d clock taps, want 1", taps)
	}
}

func TestRoutesDisjointAcrossNets(t *testing.T) {
	nl, err := designs.Standalone(designs.RippleAdder{Bits: 6}, "add", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	d := placeDesign(t, "XCV50", nl, nil, 11)
	if err := Route(d, Options{}); err != nil {
		t.Fatal(err)
	}
	owner := map[device.NodeID]string{}
	for n, r := range d.Routes {
		if r.Global >= 0 {
			continue
		}
		for _, pip := range r.PIPs {
			if prev, taken := owner[pip.Dst]; taken && prev != n.Name {
				t.Fatalf("node %s owned by %q and %q", d.Part.NodeName(pip.Dst), prev, n.Name)
			}
			owner[pip.Dst] = n.Name
		}
	}
}

func TestRegionConstrainedRouting(t *testing.T) {
	// Route a module constrained to a full-height column span and verify
	// every pip and touched node stays within those columns.
	nl, err := designs.Standalone(designs.Counter{Bits: 6}, "cnt", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	part := device.MustByName("XCV50")
	rg := frames.Region{R1: 0, C1: 4, R2: part.Rows - 1, C2: 9}
	cons := ucf.New()
	cons.AddGroup("u1/*", "AG", rg)
	// Pads must be adjacent to the region for containment to be possible.
	cons.NetLocs["clk"] = "P_T5"
	for i := 0; i < 6; i++ {
		cons.NetLocs[fmt.Sprintf("out%d", i)] = fmt.Sprintf("P_T%d", 5+i%5) // deliberately colliding? no: unique below
	}
	// Rewrite with unique pads across top and bottom of cols 5..10 (1-based).
	for i := 0; i < 6; i++ {
		if i < 3 {
			cons.NetLocs[fmt.Sprintf("out%d", i)] = fmt.Sprintf("P_T%d", 6+i)
		} else {
			cons.NetLocs[fmt.Sprintf("out%d", i)] = fmt.Sprintf("P_B%d", 6+i-3)
		}
	}
	d := placeDesign(t, "XCV50", nl, cons, 2)
	opts := Options{RegionForNet: func(n *netlist.Net) *frames.Region { return &rg }}
	if err := Route(d, opts); err != nil {
		t.Fatal(err)
	}
	for n, r := range d.Routes {
		if r.Global >= 0 {
			continue
		}
		for _, pip := range r.PIPs {
			if !rg.Contains(pip.Row, pip.Col) {
				t.Fatalf("net %q pip in tile R%dC%d outside region", n.Name, pip.Row+1, pip.Col+1)
			}
			for _, node := range []device.NodeID{pip.Src, pip.Dst} {
				desc := d.Part.DescribeNode(node)
				if desc.Kind == device.NodeWire && !rg.Contains(desc.A, desc.B) {
					t.Fatalf("net %q touches wire %s outside region", n.Name, d.Part.NodeName(node))
				}
			}
		}
	}
}

func TestRegionConstrainedRoutingFailsWhenPadsFar(t *testing.T) {
	// Pads on the far side of the chip cannot be reached without leaving
	// the region; the router must report failure rather than escape.
	nl, err := designs.Standalone(designs.Counter{Bits: 2}, "cnt", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	part := device.MustByName("XCV50")
	rg := frames.Region{R1: 0, C1: 2, R2: part.Rows - 1, C2: 5}
	cons := ucf.New()
	cons.AddGroup("u1/*", "AG", rg)
	cons.NetLocs["out0"] = fmt.Sprintf("P_T%d", part.Cols) // far right corner
	cons.NetLocs["out1"] = "P_T4"
	cons.NetLocs["clk"] = "P_T3"
	d := placeDesign(t, "XCV50", nl, cons, 2)
	opts := Options{MaxIters: 6, RegionForNet: func(n *netlist.Net) *frames.Region { return &rg }}
	if err := Route(d, opts); err == nil {
		t.Fatal("routing escaped its region to reach a far pad")
	}
}
