//go:build race

package route

const raceEnabled = true
