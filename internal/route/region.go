package route

import (
	"repro/internal/device"
	"repro/internal/frames"
)

// Region-constrained routing. A net constrained to a region may only use
// routing resources whose configuration lives in the region's columns and
// whose electrical extent stays controlled:
//
//   - per-tile wires of tiles inside the region;
//   - pads adjacent to region tiles;
//   - global lines (clock distribution is region-independent);
//   - column long lines of region columns, only when the region spans the
//     device's full height (otherwise the line crosses foreign rows);
//   - row long lines of region rows, only when the region spans the full
//     width.
//
// This is the containment discipline module-based partial reconfiguration
// needs: everything a module's netlist configures then lives in its own
// columns, so rewriting those columns swaps the module completely.

// regionFilter returns an allow predicate for pips of a net constrained to
// rg, or nil when unconstrained.
func regionFilter(p *device.Part, rg *frames.Region) func(device.PIP) bool {
	if rg == nil {
		return nil
	}
	r := *rg
	fullHeight := r.R1 == 0 && r.R2 == p.Rows-1
	fullWidth := r.C1 == 0 && r.C2 == p.Cols-1
	nodeOK := func(n device.NodeID) bool {
		d := p.DescribeNode(n)
		switch d.Kind {
		case device.NodeWire:
			return r.Contains(d.A, d.B)
		case device.NodeGlobal:
			return true
		case device.NodeColLong:
			return fullHeight && d.B >= r.C1 && d.B <= r.C2
		case device.NodeRowLong:
			return fullWidth && d.A >= r.R1 && d.A <= r.R2
		case device.NodePadI, device.NodePadO:
			pr, pc := p.PadTile(d.Pad)
			return r.Contains(pr, pc)
		}
		return false
	}
	return func(pip device.PIP) bool {
		return r.Contains(pip.Row, pip.Col) && nodeOK(pip.Src) && nodeOK(pip.Dst)
	}
}
