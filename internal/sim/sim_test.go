package sim

import (
	"testing"

	"repro/internal/netlist"
)

func TestCombinationalChain(t *testing.T) {
	d := netlist.NewDesign("t")
	a, _ := d.AddPort("a", netlist.In, nil)
	// Chain of inverters: y = not(not(not(a))).
	n := a.Net
	for i := 0; i < 3; i++ {
		lut, err := d.AddLUT("inv"+string(rune('0'+i)), 0x5555, n)
		if err != nil {
			t.Fatal(err)
		}
		n = lut.Out
	}
	if _, err := d.AddPort("y", netlist.Out, n); err != nil {
		t.Fatal(err)
	}
	s, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []bool{false, true} {
		if err := s.SetInput("a", in); err != nil {
			t.Fatal(err)
		}
		s.Eval()
		got, _ := s.Output("y")
		if got != !in {
			t.Fatalf("inv chain: a=%v y=%v", in, got)
		}
	}
}

func TestCycleDetected(t *testing.T) {
	d := netlist.NewDesign("t")
	a, _ := d.AddPort("a", netlist.In, nil)
	l1, _ := d.AddLUT("l1", 0x8888, a.Net, a.Net)
	l2, _ := d.AddLUT("l2", 0x8888, l1.Out, a.Net)
	// Close a combinational loop: rewire l1's input 0 to l2's output.
	l1.Inputs[0] = l2.Out
	l2.Out.Sinks = append(l2.Out.Sinks, netlist.PinRef{Cell: l1, Pin: "I0"})
	if _, err := New(d); err == nil {
		t.Fatal("combinational cycle not detected")
	}
}

func TestToggleFF(t *testing.T) {
	d := netlist.NewDesign("t")
	clk, _ := d.AddPort("clk", netlist.In, nil)
	// q' = not q: toggle flip-flop.
	dnet := d.NewNet("d")
	ff, err := d.AddDFF("ff", dnet, clk.Net, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := d.AddLUT("inv", 0x5555, ff.Out)
	if err != nil {
		t.Fatal(err)
	}
	// Rewire the DFF's data input to the inverter output, dropping the
	// placeholder net entirely.
	ff.Inputs[0] = inv.Out
	inv.Out.Sinks = append(inv.Out.Sinks, netlist.PinRef{Cell: ff, Pin: "D"})
	dnet.Sinks = nil
	if _, err := d.AddPort("q", netlist.Out, ff.Out); err != nil {
		t.Fatal(err)
	}
	s, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	s.Eval()
	want := false
	for cyc := 0; cyc < 6; cyc++ {
		got, _ := s.Output("q")
		if got != want {
			t.Fatalf("cycle %d: q=%v want %v", cyc, got, want)
		}
		s.Step()
		want = !want
	}
	s.Reset()
	s.Eval()
	if got, _ := s.Output("q"); got {
		t.Fatal("reset did not restore init value")
	}
}

func TestCEAndSyncReset(t *testing.T) {
	d := netlist.NewDesign("t")
	clk, _ := d.AddPort("clk", netlist.In, nil)
	din, _ := d.AddPort("d", netlist.In, nil)
	ce, _ := d.AddPort("ce", netlist.In, nil)
	rst, _ := d.AddPort("rst", netlist.In, nil)
	ff, err := d.AddDFF("ff", din.Net, clk.Net, ce.Net, rst.Net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("q", netlist.Out, ff.Out); err != nil {
		t.Fatal(err)
	}
	s, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	set := func(dv, cev, rv bool) {
		s.SetInput("d", dv)
		s.SetInput("ce", cev)
		s.SetInput("rst", rv)
	}
	set(true, true, false)
	s.Step()
	if q, _ := s.Output("q"); !q {
		t.Fatal("enabled FF did not capture")
	}
	set(false, false, false) // CE low: hold
	s.Step()
	if q, _ := s.Output("q"); !q {
		t.Fatal("disabled FF lost its value")
	}
	set(true, true, true) // reset dominates
	s.Step()
	if q, _ := s.Output("q"); q {
		t.Fatal("sync reset did not clear FF")
	}
}

func TestVecHelpers(t *testing.T) {
	d := netlist.NewDesign("t")
	var outs []*netlist.Net
	for i := 0; i < 4; i++ {
		p, _ := d.AddPort("a"+string(rune('0'+i)), netlist.In, nil)
		inv, err := d.AddLUT("inv"+string(rune('0'+i)), 0x5555, p.Net)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, inv.Out)
	}
	for i, n := range outs {
		if _, err := d.AddPort("y"+string(rune('0'+i)), netlist.Out, n); err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetInputVec("a", 4, 0b1010); err != nil {
		t.Fatal(err)
	}
	s.Eval()
	v, err := s.OutputVec("y", 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0b0101 {
		t.Fatalf("OutputVec = %04b, want 0101", v)
	}
}

func TestUnknownPortErrors(t *testing.T) {
	d := netlist.NewDesign("t")
	a, _ := d.AddPort("a", netlist.In, nil)
	lut, _ := d.AddLUT("l", 0x5555, a.Net)
	d.AddPort("y", netlist.Out, lut.Out)
	s, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetInput("nope", true); err == nil {
		t.Fatal("unknown input accepted")
	}
	if err := s.SetInput("y", true); err == nil {
		t.Fatal("driving an output port accepted")
	}
	if _, err := s.Output("a"); err == nil {
		t.Fatal("reading an input port as output accepted")
	}
}
