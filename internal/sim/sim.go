// Package sim is a cycle-based functional simulator for technology-mapped
// netlists. It evaluates LUT networks combinationally in topological order
// and advances flip-flops on explicit clock steps. The CAD-flow tests use it
// to show mapped designs compute what their generators intended, and the
// equivalence experiments use it to compare designs extracted from
// configuration memory against their sources.
package sim

import (
	"fmt"

	"repro/internal/netlist"
)

// Simulator holds the evaluation state of one design.
type Simulator struct {
	Design *netlist.Design

	order  []*netlist.Cell // LUTs in topological order
	values map[*netlist.Net]bool
	ff     map[*netlist.Cell]bool
}

// New builds a simulator, ordering the combinational network. It returns an
// error if the LUT network has a combinational cycle.
func New(d *netlist.Design) (*Simulator, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	order, err := topoLUTs(d)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		Design: d,
		order:  order,
		values: make(map[*netlist.Net]bool, len(d.Nets)),
		ff:     map[*netlist.Cell]bool{},
	}
	for _, c := range d.Cells {
		if c.Kind == netlist.KindDFF {
			s.ff[c] = c.Init&1 == 1
		}
	}
	return s, nil
}

// topoLUTs orders LUT cells so every LUT's fabric inputs are computed before
// it. DFF outputs and input ports are sources.
func topoLUTs(d *netlist.Design) ([]*netlist.Cell, error) {
	indeg := map[*netlist.Cell]int{}
	deps := map[*netlist.Cell][]*netlist.Cell{} // driver LUT -> dependent LUTs
	var ready []*netlist.Cell
	for _, c := range d.SortedCells() {
		if c.Kind != netlist.KindLUT4 {
			continue
		}
		n := 0
		for _, in := range c.Inputs {
			if drv := in.Driver.Cell; drv != nil && drv.Kind == netlist.KindLUT4 {
				deps[drv] = append(deps[drv], c)
				n++
			}
		}
		indeg[c] = n
		if n == 0 {
			ready = append(ready, c)
		}
	}
	var order []*netlist.Cell
	for len(ready) > 0 {
		c := ready[0]
		ready = ready[1:]
		order = append(order, c)
		for _, dep := range deps[c] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	if len(order) != len(indeg) {
		return nil, fmt.Errorf("sim: combinational cycle through %d LUTs", len(indeg)-len(order))
	}
	return order, nil
}

// SetInput drives an input port.
func (s *Simulator) SetInput(port string, v bool) error {
	p, ok := s.Design.Port(port)
	if !ok || p.Dir != netlist.In {
		return fmt.Errorf("sim: no input port %q", port)
	}
	s.values[p.Net] = v
	return nil
}

// SetInputVec drives ports named prefix0..prefixN-1 from the bits of v.
func (s *Simulator) SetInputVec(prefix string, width int, v uint64) error {
	for i := 0; i < width; i++ {
		if err := s.SetInput(fmt.Sprintf("%s%d", prefix, i), v>>i&1 == 1); err != nil {
			return err
		}
	}
	return nil
}

// Eval propagates the combinational network from current inputs and FF
// states.
func (s *Simulator) Eval() {
	for c, v := range s.ff {
		s.values[c.Out] = v
	}
	for _, c := range s.order {
		idx := 0
		for k, in := range c.Inputs {
			if s.values[in] {
				idx |= 1 << k
			}
		}
		s.values[c.Out] = c.Init>>idx&1 == 1
	}
}

// Step evaluates, then advances every flip-flop one clock edge (respecting
// CE and synchronous reset where connected).
func (s *Simulator) Step() {
	s.Eval()
	next := make(map[*netlist.Cell]bool, len(s.ff))
	for c := range s.ff {
		v := s.ff[c]
		enabled := c.CE == nil || s.values[c.CE]
		if c.Reset != nil && s.values[c.Reset] {
			v = c.Init&1 == 1
		} else if enabled {
			v = s.values[c.Inputs[0]]
		}
		next[c] = v
	}
	s.ff = next
	s.Eval()
}

// Reset returns every flip-flop to its init value.
func (s *Simulator) Reset() {
	for c := range s.ff {
		s.ff[c] = c.Init&1 == 1
	}
}

// Value reads a net's current value (after Eval/Step).
func (s *Simulator) Value(n *netlist.Net) bool { return s.values[n] }

// Output reads an output port.
func (s *Simulator) Output(port string) (bool, error) {
	p, ok := s.Design.Port(port)
	if !ok || p.Dir != netlist.Out {
		return false, fmt.Errorf("sim: no output port %q", port)
	}
	return s.values[p.Net], nil
}

// OutputVec reads ports prefix0..prefixN-1 as an integer.
func (s *Simulator) OutputVec(prefix string, width int) (uint64, error) {
	var v uint64
	for i := 0; i < width; i++ {
		b, err := s.Output(fmt.Sprintf("%s%d", prefix, i))
		if err != nil {
			return 0, err
		}
		if b {
			v |= 1 << i
		}
	}
	return v, nil
}
