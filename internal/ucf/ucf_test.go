package ucf

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/frames"
)

const sample = `
# floorplan for the base design
NET "clk" LOC = "P_L1";
NET "u1_out0" LOC = "P_T3";

INST "u1/*" AREA_GROUP = "AG_u1";
AREA_GROUP "AG_u1" RANGE = CLB_R1C1:CLB_R8C12;
INST "u2/*" AREA_GROUP = "AG_u2";
AREA_GROUP "AG_u2" RANGE = CLB_R1C13:CLB_R8C24;
INST "u1/q0" LOC = "CLB_R3C23.S0";
`

func TestParseSample(t *testing.T) {
	c, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if c.NetLocs["clk"] != "P_L1" || c.NetLocs["u1_out0"] != "P_T3" {
		t.Fatalf("net locs = %v", c.NetLocs)
	}
	if got := c.GroupOf("u1/lut5"); got != "AG_u1" {
		t.Fatalf("group of u1/lut5 = %q", got)
	}
	if got := c.GroupOf("u2/q3"); got != "AG_u2" {
		t.Fatalf("group of u2/q3 = %q", got)
	}
	if got := c.GroupOf("top/other"); got != "" {
		t.Fatalf("unconstrained instance got group %q", got)
	}
	rg, ok := c.RegionFor("u1/anything")
	if !ok || rg != (frames.Region{R1: 0, C1: 0, R2: 7, C2: 11}) {
		t.Fatalf("region for u1 = %+v, %v", rg, ok)
	}
	loc, ok := c.InstLocs["u1/q0"]
	if !ok || loc != (SliceLoc{Row: 2, Col: 22, Slice: 0}) {
		t.Fatalf("inst loc = %+v", loc)
	}
}

func TestEmitRoundTrip(t *testing.T) {
	c, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	text := c.Emit()
	c2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse of emitted UCF failed: %v\n%s", err, text)
	}
	if c2.Emit() != text {
		t.Fatal("emit not stable under round trip")
	}
	if len(c2.InstGroups) != len(c.InstGroups) || len(c2.Ranges) != len(c.Ranges) {
		t.Fatal("round trip lost constraints")
	}
}

func TestValidate(t *testing.T) {
	p := device.MustByName("XCV50")
	c, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(p); err != nil {
		t.Fatal(err)
	}
	// Out-of-range region.
	bad := New()
	bad.AddGroup("u/*", "AG", frames.Region{R1: 0, C1: 0, R2: 99, C2: 0})
	if err := bad.Validate(p); err == nil {
		t.Fatal("oversized region passed validation")
	}
	// Group without range.
	bad2 := New()
	bad2.InstGroups = append(bad2.InstGroups, InstGroup{"u/*", "AG"})
	if err := bad2.Validate(p); err == nil {
		t.Fatal("rangeless group passed validation")
	}
	// Bad pad.
	bad3 := New()
	bad3.NetLocs["x"] = "P_L999"
	if err := bad3.Validate(p); err == nil {
		t.Fatal("bad pad passed validation")
	}
	// Bad slice loc.
	bad4 := New()
	bad4.InstLocs["i"] = SliceLoc{Row: 0, Col: 0, Slice: 2}
	if err := bad4.Validate(p); err == nil {
		t.Fatal("bad slice loc passed validation")
	}
}

func TestLastMatchingGroupWins(t *testing.T) {
	c := New()
	c.AddGroup("u1/*", "AG_a", frames.Region{R1: 0, C1: 0, R2: 1, C2: 1})
	c.AddGroup("u1/special*", "AG_b", frames.Region{R1: 2, C1: 2, R2: 3, C2: 3})
	if got := c.GroupOf("u1/special/x"); got != "AG_b" {
		t.Fatalf("got %q, want AG_b", got)
	}
	if got := c.GroupOf("u1/normal"); got != "AG_a" {
		t.Fatalf("got %q, want AG_a", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`NET "x" FOO = "P_L1";`,
		`INST "x" LOC = "CLB_R3C23";`,
		`INST "x" LOC = "CLB_R3C23.S7";`,
		`AREA_GROUP "a" RANGE = CLB_R1C1;`,
		`AREA_GROUP "a" RANGE = R1C1:R2C2;`,
		`WHAT "is" THIS = "thing";`,
		`NET "x"`,
	}
	for _, line := range bad {
		if _, err := Parse(line); err == nil {
			t.Errorf("Parse(%q) should fail", line)
		}
	}
}

func TestParseSliceLoc(t *testing.T) {
	loc, err := ParseSliceLoc("CLB_R10C7.S1")
	if err != nil || loc != (SliceLoc{Row: 9, Col: 6, Slice: 1}) {
		t.Fatalf("loc = %+v, %v", loc, err)
	}
	if loc.String() != "CLB_R10C7.S1" {
		t.Fatalf("String = %q", loc.String())
	}
}

func TestParseRangeNormalises(t *testing.T) {
	rg, err := ParseRange("CLB_R8C12:CLB_R1C1")
	if err != nil {
		t.Fatal(err)
	}
	if rg != (frames.Region{R1: 0, C1: 0, R2: 7, C2: 11}) {
		t.Fatalf("range = %+v", rg)
	}
}

func TestCommentsAndBlanksIgnored(t *testing.T) {
	c, err := Parse("# hi\n\n// also a comment\nNET \"a\" LOC = \"P_L1\";\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.NetLocs) != 1 {
		t.Fatal("comment handling broke parsing")
	}
	if !strings.Contains(c.Emit(), "P_L1") {
		t.Fatal("emit lost the constraint")
	}
}

func TestParseNeverPanicsOnMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	base := sample
	for trial := 0; trial < 300; trial++ {
		b := []byte(base)
		for i := 0; i < 1+rng.Intn(5); i++ {
			b[rng.Intn(len(b))] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: UCF parser panicked: %v", trial, r)
				}
			}()
			_, _ = Parse(string(b))
		}()
	}
}
