// Package ucf parses and emits the subset of the Xilinx UCF (user constraint
// file) language the JPG flow relies on: pad LOCs for nets, AREA_GROUP
// membership for instances, AREA_GROUP RANGE floorplan regions, and slice
// LOCs for instances. These files carry the floorplan from the base design
// into each sub-module variant project, exactly as in the paper's Phase 2.
package ucf

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/device"
	"repro/internal/frames"
)

// SliceLoc pins an instance to a slice: "CLB_R3C23.S0" (rows/cols 1-based in
// text, 0-based here).
type SliceLoc struct {
	Row, Col, Slice int
}

func (l SliceLoc) String() string {
	return fmt.Sprintf("CLB_%s.S%d", device.TileName(l.Row, l.Col), l.Slice)
}

// InstGroup assigns instances matching Pattern to an area group. Patterns
// are exact names or a prefix followed by '*' ("u1/*").
type InstGroup struct {
	Pattern string
	Group   string
}

// Constraints is a parsed constraint set.
type Constraints struct {
	// NetLocs maps net/port names to pad names ("P_L3").
	NetLocs map[string]string
	// InstGroups lists AREA_GROUP membership rules in file order.
	InstGroups []InstGroup
	// Ranges maps area-group names to their floorplan regions.
	Ranges map[string]frames.Region
	// InstLocs pins individual instances to slices.
	InstLocs map[string]SliceLoc
}

// New returns an empty constraint set.
func New() *Constraints {
	return &Constraints{
		NetLocs:  map[string]string{},
		Ranges:   map[string]frames.Region{},
		InstLocs: map[string]SliceLoc{},
	}
}

// matches reports whether an instance name matches a pattern.
func matches(pattern, name string) bool {
	if prefix, ok := strings.CutSuffix(pattern, "*"); ok {
		return strings.HasPrefix(name, prefix)
	}
	return pattern == name
}

// GroupOf returns the area group an instance belongs to (last matching rule
// wins, as in the Xilinx tools), or "" if unconstrained.
func (c *Constraints) GroupOf(inst string) string {
	group := ""
	for _, ig := range c.InstGroups {
		if matches(ig.Pattern, inst) {
			group = ig.Group
		}
	}
	return group
}

// RegionFor returns the floorplan region constraining an instance, if any.
func (c *Constraints) RegionFor(inst string) (frames.Region, bool) {
	g := c.GroupOf(inst)
	if g == "" {
		return frames.Region{}, false
	}
	rg, ok := c.Ranges[g]
	return rg, ok
}

// AddGroup appends an AREA_GROUP membership rule and its region.
func (c *Constraints) AddGroup(pattern, group string, rg frames.Region) {
	c.InstGroups = append(c.InstGroups, InstGroup{pattern, group})
	c.Ranges[group] = rg
}

// Validate checks the constraints against a part: regions in range, pads and
// slice locations valid, every referenced group has a range.
func (c *Constraints) Validate(p *device.Part) error {
	for g, rg := range c.Ranges {
		if !rg.Valid(p) {
			return fmt.Errorf("ucf: AREA_GROUP %q range %v outside %s", g, rg, p.Name)
		}
	}
	for _, ig := range c.InstGroups {
		if _, ok := c.Ranges[ig.Group]; !ok {
			return fmt.Errorf("ucf: AREA_GROUP %q has members but no RANGE", ig.Group)
		}
	}
	for net, padName := range c.NetLocs {
		pd, err := device.ParsePad(padName)
		if err != nil {
			return fmt.Errorf("ucf: NET %q: %w", net, err)
		}
		if !p.ValidPad(pd) {
			return fmt.Errorf("ucf: NET %q LOC %q not on %s", net, padName, p.Name)
		}
	}
	for inst, loc := range c.InstLocs {
		if loc.Row < 0 || loc.Row >= p.Rows || loc.Col < 0 || loc.Col >= p.Cols || loc.Slice < 0 || loc.Slice > 1 {
			return fmt.Errorf("ucf: INST %q LOC %v outside %s", inst, loc, p.Name)
		}
	}
	return nil
}

// Parse reads a UCF text.
func Parse(text string) (*Constraints, error) {
	c := New()
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		line = strings.TrimSuffix(line, ";")
		if err := c.parseLine(line); err != nil {
			return nil, fmt.Errorf("ucf: line %d: %w", lineNo+1, err)
		}
	}
	return c, nil
}

func (c *Constraints) parseLine(line string) error {
	fields := tokenize(line)
	if len(fields) < 2 {
		return fmt.Errorf("unparseable constraint %q", line)
	}
	switch strings.ToUpper(fields[0]) {
	case "NET":
		// NET "name" LOC = "P_L3"
		if len(fields) != 5 || !strings.EqualFold(fields[2], "LOC") || fields[3] != "=" {
			return fmt.Errorf("bad NET constraint %q", line)
		}
		c.NetLocs[fields[1]] = fields[4]
		return nil
	case "INST":
		if len(fields) != 5 || fields[3] != "=" {
			return fmt.Errorf("bad INST constraint %q", line)
		}
		switch strings.ToUpper(fields[2]) {
		case "AREA_GROUP":
			c.InstGroups = append(c.InstGroups, InstGroup{Pattern: fields[1], Group: fields[4]})
			return nil
		case "LOC":
			loc, err := ParseSliceLoc(fields[4])
			if err != nil {
				return err
			}
			c.InstLocs[fields[1]] = loc
			return nil
		}
		return fmt.Errorf("bad INST constraint %q", line)
	case "AREA_GROUP":
		// AREA_GROUP "AG" RANGE = CLB_R1C1:CLB_R8C12
		if len(fields) != 5 || !strings.EqualFold(fields[2], "RANGE") || fields[3] != "=" {
			return fmt.Errorf("bad AREA_GROUP constraint %q", line)
		}
		rg, err := ParseRange(fields[4])
		if err != nil {
			return err
		}
		c.Ranges[fields[1]] = rg
		return nil
	}
	return fmt.Errorf("unknown constraint %q", fields[0])
}

// tokenize splits a constraint line into fields, stripping quotes and
// keeping '=' as its own token.
func tokenize(line string) []string {
	line = strings.ReplaceAll(line, "=", " = ")
	var out []string
	for _, f := range strings.Fields(line) {
		out = append(out, strings.Trim(f, `"`))
	}
	return out
}

// ParseSliceLoc parses "CLB_R3C23.S0".
func ParseSliceLoc(s string) (SliceLoc, error) {
	rest, ok := strings.CutPrefix(s, "CLB_")
	if !ok {
		return SliceLoc{}, fmt.Errorf("bad slice LOC %q", s)
	}
	tile, sl, ok := strings.Cut(rest, ".S")
	if !ok {
		return SliceLoc{}, fmt.Errorf("bad slice LOC %q", s)
	}
	r, c, err := device.ParseTileName(tile)
	if err != nil {
		return SliceLoc{}, fmt.Errorf("bad slice LOC %q: %w", s, err)
	}
	if sl != "0" && sl != "1" {
		return SliceLoc{}, fmt.Errorf("bad slice in LOC %q", s)
	}
	return SliceLoc{Row: r, Col: c, Slice: int(sl[0] - '0')}, nil
}

// ParseRange parses "CLB_R1C1:CLB_R8C12" into a region.
func ParseRange(s string) (frames.Region, error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return frames.Region{}, fmt.Errorf("bad RANGE %q", s)
	}
	ta, ok1 := strings.CutPrefix(a, "CLB_")
	tb, ok2 := strings.CutPrefix(b, "CLB_")
	if !ok1 || !ok2 {
		return frames.Region{}, fmt.Errorf("bad RANGE %q", s)
	}
	r1, c1, err := device.ParseTileName(ta)
	if err != nil {
		return frames.Region{}, fmt.Errorf("bad RANGE %q: %w", s, err)
	}
	r2, c2, err := device.ParseTileName(tb)
	if err != nil {
		return frames.Region{}, fmt.Errorf("bad RANGE %q: %w", s, err)
	}
	return frames.NewRegion(r1, c1, r2, c2), nil
}

// Emit renders the constraints as UCF text (deterministic ordering).
func (c *Constraints) Emit() string {
	var b strings.Builder
	b.WriteString("# generated constraint file\n")
	for _, net := range sortedKeys(c.NetLocs) {
		fmt.Fprintf(&b, "NET \"%s\" LOC = \"%s\";\n", net, c.NetLocs[net])
	}
	for _, ig := range c.InstGroups {
		fmt.Fprintf(&b, "INST \"%s\" AREA_GROUP = \"%s\";\n", ig.Pattern, ig.Group)
	}
	groups := make([]string, 0, len(c.Ranges))
	for g := range c.Ranges {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		fmt.Fprintf(&b, "AREA_GROUP \"%s\" RANGE = %s;\n", g, c.Ranges[g])
	}
	for _, inst := range sortedKeys(c.InstLocs) {
		fmt.Fprintf(&b, "INST \"%s\" LOC = \"%s\";\n", inst, c.InstLocs[inst])
	}
	return b.String()
}

// Fingerprint returns a stable content hash of the constraint set, for use
// as a CAD cache key component. Emit already renders every constraint in a
// deterministic order (sorted maps, file-ordered AREA_GROUP rules — rule
// order is semantic, last match wins), so the fingerprint is simply a hash
// of the canonical text.
func (c *Constraints) Fingerprint() string {
	h := cache.NewHasher("ucf/v1")
	if c != nil {
		h.Str("emit", c.Emit())
	}
	return h.Sum().String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
