package ucf

import (
	"testing"

	"repro/internal/frames"
)

func TestFingerprint(t *testing.T) {
	rg := frames.Region{R1: 0, C1: 0, R2: 15, C2: 7}
	mk := func(pattern string) *Constraints {
		c := New()
		c.AddGroup(pattern, "AG", rg)
		return c
	}
	c1, c2 := mk("u1/*"), mk("u1/*")
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Fatal("identical constraints fingerprint differently")
	}
	if mk("u2/*").Fingerprint() == c1.Fingerprint() {
		t.Fatal("pattern change not covered")
	}
	other := New()
	other.AddGroup("u1/*", "AG", frames.Region{R1: 0, C1: 2, R2: 15, C2: 9})
	if other.Fingerprint() == c1.Fingerprint() {
		t.Fatal("region change not covered")
	}
	// A nil constraint set has a distinct, stable fingerprint.
	var nilCons *Constraints
	if nilCons.Fingerprint() == c1.Fingerprint() {
		t.Fatal("nil constraints collide with a real set")
	}
	if nilCons.Fingerprint() != (*Constraints)(nil).Fingerprint() {
		t.Fatal("nil fingerprint unstable")
	}
	// Fingerprints follow Emit, so a parse round-trip preserves them.
	parsed, err := Parse(c1.Emit())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Fingerprint() != c1.Fingerprint() {
		t.Fatal("parse round-trip changed the fingerprint")
	}
}
