package parbit

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/frames"
)

func baseBitstream(t *testing.T) (*flow.BaseBuild, []byte) {
	t.Helper()
	base, err := flow.BuildBase(context.Background(), device.MustByName("XCV50"), []designs.Instance{
		{Prefix: "u1/", Gen: designs.Counter{Bits: 5}},
		{Prefix: "u2/", Gen: designs.LFSR{Bits: 5}},
	}, flow.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	return base, base.Bitstream
}

func TestParseOptions(t *testing.T) {
	o, err := ParseOptions("# window\ntarget XCV50\ncol_start 3\ncol_end 8\n")
	if err != nil {
		t.Fatal(err)
	}
	if o.Part != "XCV50" || o.StartCol != 3 || o.EndCol != 8 {
		t.Fatalf("options = %+v", o)
	}
	// Round trip.
	o2, err := ParseOptions(o.Emit())
	if err != nil || o2 != o {
		t.Fatalf("emit round trip: %+v, %v", o2, err)
	}
	for _, bad := range []string{
		"", "target XCV50", "col_start 1\ncol_end 2",
		"target XCV50\ncol_start x\ncol_end 2", "bogus 1",
	} {
		if _, err := ParseOptions(bad); err == nil {
			t.Errorf("ParseOptions(%q) should fail", bad)
		}
	}
}

func TestTransformExtractsWindow(t *testing.T) {
	base, bs := baseBitstream(t)
	rg := base.Regions["u1/"]
	o := Options{Part: "XCV50", StartCol: rg.C1 + 1, EndCol: rg.C2 + 1}
	partial, err := Transform(bs, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) >= len(bs) {
		t.Fatal("extracted window not smaller than the complete bitstream")
	}
	// Applying the partial to a blank device yields exactly the window's
	// frames of the original configuration.
	p := device.MustByName("XCV50")
	ref := frames.New(p)
	if _, err := bitstream.Apply(ref, bs); err != nil {
		t.Fatal(err)
	}
	got := frames.New(p)
	if _, err := bitstream.Apply(got, partial); err != nil {
		t.Fatal(err)
	}
	window := frames.Region{R1: 0, C1: rg.C1, R2: p.Rows - 1, C2: rg.C2}
	inWindow := map[device.FAR]bool{}
	for _, f := range window.FARs(p) {
		inWindow[f] = true
		if !got.FrameEqual(ref, f) {
			t.Fatalf("window frame %v not extracted faithfully", f)
		}
	}
	for _, f := range got.NonZeroFrames() {
		if !inWindow[f] {
			t.Fatalf("frame %v outside the window was written", f)
		}
	}
}

func TestTransformValidation(t *testing.T) {
	_, bs := baseBitstream(t)
	cases := []Options{
		{Part: "XCV50", StartCol: 0, EndCol: 3},
		{Part: "XCV50", StartCol: 5, EndCol: 4},
		{Part: "XCV50", StartCol: 1, EndCol: 99},
		{Part: "XCV9999", StartCol: 1, EndCol: 2},
	}
	for _, o := range cases {
		if _, err := Transform(bs, o); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
	// Partial input rejected (PARBIT needs a complete target).
	rg := Options{Part: "XCV50", StartCol: 1, EndCol: 4}
	partial, err := Transform(bs, rg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Transform(partial, rg); err == nil || !strings.Contains(err.Error(), "complete") {
		t.Fatalf("partial target accepted: %v", err)
	}
}
