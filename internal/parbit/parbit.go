// Package parbit reimplements the PARBIT tool (Horta & Lockwood, WUCS-01-13),
// the paper's §2.3 comparator: a transformer that extracts a partial
// bitstream from a *complete* target bitstream, driven by an options file
// naming the device and the column window to extract. Unlike JPG, PARBIT
// knows nothing of the CAD flow: every module variant requires a full-design
// implementation run to produce the complete bitstream it carves up.
package parbit

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/frames"
)

// Options mirrors PARBIT's options file: the target part and the inclusive
// 1-based CLB column window to extract.
type Options struct {
	Part     string
	StartCol int // 1-based, inclusive
	EndCol   int // 1-based, inclusive
}

// ParseOptions reads a PARBIT-style options file:
//
//	# comment
//	target XCV50
//	col_start 5
//	col_end 12
func ParseOptions(text string) (Options, error) {
	var o Options
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			return o, fmt.Errorf("parbit: options line %d: %q", lineNo+1, line)
		}
		val = strings.TrimSpace(val)
		switch key {
		case "target":
			o.Part = val
		case "col_start":
			n, err := strconv.Atoi(val)
			if err != nil {
				return o, fmt.Errorf("parbit: options line %d: bad col_start %q", lineNo+1, val)
			}
			o.StartCol = n
		case "col_end":
			n, err := strconv.Atoi(val)
			if err != nil {
				return o, fmt.Errorf("parbit: options line %d: bad col_end %q", lineNo+1, val)
			}
			o.EndCol = n
		default:
			return o, fmt.Errorf("parbit: options line %d: unknown key %q", lineNo+1, key)
		}
	}
	if o.Part == "" || o.StartCol == 0 || o.EndCol == 0 {
		return o, fmt.Errorf("parbit: options need target, col_start and col_end")
	}
	return o, nil
}

// Emit renders the options back to file form.
func (o Options) Emit() string {
	return fmt.Sprintf("target %s\ncol_start %d\ncol_end %d\n", o.Part, o.StartCol, o.EndCol)
}

// Transform extracts the partial bitstream for the options' column window
// from a complete bitstream.
func Transform(completeBitstream []byte, o Options) ([]byte, error) {
	part, err := device.ByName(o.Part)
	if err != nil {
		return nil, err
	}
	if o.StartCol < 1 || o.EndCol > part.Cols || o.StartCol > o.EndCol {
		return nil, fmt.Errorf("parbit: column window %d..%d invalid for %s (1..%d)",
			o.StartCol, o.EndCol, part.Name, part.Cols)
	}
	mem := frames.New(part)
	stats, err := bitstream.Apply(mem, completeBitstream)
	if err != nil {
		return nil, fmt.Errorf("parbit: target bitstream: %w", err)
	}
	if stats.FramesWritten != part.TotalFrames() {
		return nil, fmt.Errorf("parbit: target bitstream is not complete (%d of %d frames)",
			stats.FramesWritten, part.TotalFrames())
	}
	rg := frames.Region{R1: 0, C1: o.StartCol - 1, R2: part.Rows - 1, C2: o.EndCol - 1}
	return bitstream.WritePartialForFARs(mem, rg.FARs(part))
}
