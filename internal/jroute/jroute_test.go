package jroute

import (
	"testing"

	"repro/internal/bitgen"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/extract"
	"repro/internal/frames"
	"repro/internal/jbits"
	"repro/internal/place"
	"repro/internal/route"
)

func TestConnectOnBlankDevice(t *testing.T) {
	p := device.MustByName("XCV50")
	mem := frames.New(p)
	r, err := New(mem)
	if err != nil {
		t.Fatal(err)
	}
	src := p.TileWireNode(2, 2, device.OutWire(0, device.OutX))
	dst := p.TileWireNode(10, 15, device.InPinWire(1, device.PinG2))
	path, err := r.Connect(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) == 0 {
		t.Fatal("empty path")
	}
	// Path is connected src -> dst and every PIP is on in memory.
	if path[0].Src != src || path[len(path)-1].Dst != dst {
		t.Fatal("path endpoints wrong")
	}
	jbAll := 0
	for i, pip := range path {
		if i > 0 && path[i-1].Dst != pip.Src {
			t.Fatal("path not contiguous")
		}
		if !mem.Bit(p.PIPBit(pip)) {
			t.Fatal("path pip not set in memory")
		}
		jbAll++
	}
	// Second connection to the same destination must fail.
	if _, err := r.Connect(p.TileWireNode(3, 3, device.OutWire(0, device.OutY)), dst); err == nil {
		t.Fatal("double-driven destination accepted")
	}
	// Disconnect frees everything.
	r.Disconnect(path)
	for _, pip := range path {
		if mem.Bit(p.PIPBit(pip)) {
			t.Fatal("disconnect left a pip on")
		}
	}
	if !r.Free(dst) {
		t.Fatal("destination still marked driven after disconnect")
	}
	if _, err := r.Connect(src, dst); err != nil {
		t.Fatalf("reconnect after disconnect failed: %v", err)
	}
}

func TestConnectAvoidsExistingDesign(t *testing.T) {
	// Route a run-time connection on top of a configured design, then
	// verify the device still extracts cleanly with the new wire present
	// as an extra net (single-driver invariants intact).
	nl, err := designs.Standalone(designs.Counter{Bits: 6}, "d", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	p := device.MustByName("XCV50")
	pd, err := place.Place(p, nl, place.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := route.Route(pd, route.Options{}); err != nil {
		t.Fatal(err)
	}
	mem, err := bitgen.Generate(pd)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(mem)
	if err != nil {
		t.Fatal(err)
	}

	// Connect a counter FF output to a previously unused LUT input pin in a
	// far tile. Pick the output of u1/q0's site.
	q0, _ := nl.Cell("u1/q0")
	site := pd.Cells[q0]
	outPin := device.OutXQ
	if site.LE == 1 {
		outPin = device.OutYQ
	}
	src := p.TileWireNode(site.Row, site.Col, device.OutWire(site.Slice, outPin))
	dst := p.TileWireNode(p.Rows-1, p.Cols-1, device.InPinWire(0, device.PinF1))
	path, err := r.Connect(src, dst)
	if err != nil {
		t.Fatal(err)
	}

	// None of the new pips may collide with the design's routing.
	used := map[device.NodeID]bool{}
	for _, rt := range pd.Routes {
		for _, pip := range rt.PIPs {
			used[pip.Dst] = true
		}
	}
	for _, pip := range path {
		if used[pip.Dst] {
			t.Fatalf("run-time route drives node %s already used by the design", p.NodeName(pip.Dst))
		}
	}

	// The configuration must still extract: to make the new wire a legal
	// net, configure a LUT at the destination so the pin has an owner.
	if err := extractableWithStub(mem, p); err != nil {
		t.Fatal(err)
	}
	_ = path
}

// extractableWithStub adds a LUT at the bottom-right corner (the run-time
// wire's destination) and checks the configuration still extracts.
func extractableWithStub(mem *frames.Memory, p *device.Part) error {
	jb := jbits.New(mem)
	if err := jb.SetLUT(p.Rows-1, p.Cols-1, 0, device.LUTF, 0x5555); err != nil {
		return err
	}
	if err := jb.SetSliceCtl(p.Rows-1, p.Cols-1, 0, device.SliceCtlXMUX, true); err != nil {
		return err
	}
	_, err := extract.FromMemory(mem)
	return err
}

func TestConnectFailsWhenWalledIn(t *testing.T) {
	// Exhaust the destination pin's only mux inputs by driving them, then
	// verify Connect reports failure instead of conflicting.
	p := device.MustByName("XCV50")
	mem := frames.New(p)
	r, err := New(mem)
	if err != nil {
		t.Fatal(err)
	}
	dst := p.TileWireNode(5, 5, device.InPinWire(0, device.PinF1))
	// Mark every mux source of the pin as driven (simulating a fully
	// congested neighbourhood).
	for _, pip := range p.TilePIPs(5, 5) {
		if pip.Dst == dst {
			r.driven[pip.Src] = true
		}
	}
	src := p.TileWireNode(0, 0, device.OutWire(0, device.OutX))
	if _, err := r.Connect(src, dst); err == nil {
		t.Fatal("walled-in destination reached")
	}
}
