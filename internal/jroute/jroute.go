// Package jroute is a run-time routing API over live configuration memory,
// after the JRoute layer of the JBits ecosystem (Keller, FPL'00): it routes
// individual connections directly in a configured device's bitstream state,
// using only resources the existing configuration leaves free. JPG-era
// systems used this to stitch module interfaces at run time without a CAD
// round trip.
package jroute

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/jbits"
)

// Router performs incremental routing on one device's configuration memory.
type Router struct {
	jb *jbits.JBits
	g  *device.Graph
	// driven marks nodes already driven by the existing configuration (or
	// by connections this router made); capacity is one driver per node.
	driven map[device.NodeID]bool
}

// New scans the configuration's active PIPs and returns a router that will
// only claim free resources.
func New(mem *frames.Memory) (*Router, error) {
	jb := jbits.New(mem)
	r := &Router{
		jb:     jb,
		g:      device.NewGraph(mem.Part),
		driven: map[device.NodeID]bool{},
	}
	for row := 0; row < mem.Part.Rows; row++ {
		for col := 0; col < mem.Part.Cols; col++ {
			active, err := jb.ActivePIPs(row, col)
			if err != nil {
				return nil, err
			}
			for _, pip := range active {
				r.driven[pip.Dst] = true
			}
		}
	}
	return r, nil
}

// Connect routes src to dst through free resources, turning the path's PIPs
// on in the configuration memory, and returns the path. It fails without
// modifying anything if no free path exists.
func (r *Router) Connect(src, dst device.NodeID) ([]device.PIP, error) {
	if r.driven[dst] {
		return nil, fmt.Errorf("jroute: destination %s is already driven", r.g.Part.NodeName(dst))
	}
	// BFS over free nodes (all hops cost ~1 in run-time routing; shortest
	// hop count is the JRoute behaviour).
	prev := map[device.NodeID]device.PIP{}
	seen := map[device.NodeID]bool{src: true}
	queue := []device.NodeID{src}
	found := false
	for len(queue) > 0 && !found {
		cur := queue[0]
		queue = queue[1:]
		for _, pip := range r.g.From(cur) {
			if seen[pip.Dst] || r.driven[pip.Dst] {
				continue
			}
			seen[pip.Dst] = true
			prev[pip.Dst] = pip
			if pip.Dst == dst {
				found = true
				break
			}
			queue = append(queue, pip.Dst)
		}
	}
	if !found {
		return nil, fmt.Errorf("jroute: no free path from %s to %s",
			r.g.Part.NodeName(src), r.g.Part.NodeName(dst))
	}
	var rev []device.PIP
	for node := dst; node != src; {
		pip := prev[node]
		rev = append(rev, pip)
		node = pip.Src
	}
	path := make([]device.PIP, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	for _, pip := range path {
		r.jb.SetPIP(pip, true)
		r.driven[pip.Dst] = true
	}
	return path, nil
}

// Disconnect removes a previously made connection, freeing its resources.
func (r *Router) Disconnect(path []device.PIP) {
	for _, pip := range path {
		r.jb.SetPIP(pip, false)
		delete(r.driven, pip.Dst)
	}
}

// Free reports whether a node is currently undriven.
func (r *Router) Free(n device.NodeID) bool { return !r.driven[n] }
