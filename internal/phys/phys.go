// Package phys represents physical (placed and routed) designs: the
// information a Xilinx NCD database holds. It binds netlist cells to device
// sites, ports to pads, and nets to routing trees of PIPs, and knows how to
// translate cell pins into routing-graph nodes. The placer fills in the
// placement, the router the routes; XDL/NCD serialise it and bitgen turns it
// into configuration frames.
package phys

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/netlist"
)

// LE identifies a logic element (half-slice) within a CLB: the F/X path or
// the G/Y path.
const (
	LEF = 0 // F LUT + X flip-flop
	LEG = 1 // G LUT + Y flip-flop
)

// Site is one logic-element site: a (tile, slice, LE) triple.
type Site struct {
	Row, Col, Slice, LE int
}

func (s Site) String() string {
	return fmt.Sprintf("%s.S%d.%s", device.TileName(s.Row, s.Col), s.Slice, device.LUTName(s.LE))
}

// Valid reports whether the site exists on the part.
func (s Site) Valid(p *device.Part) bool {
	return s.Row >= 0 && s.Row < p.Rows && s.Col >= 0 && s.Col < p.Cols &&
		s.Slice >= 0 && s.Slice <= 1 && (s.LE == LEF || s.LE == LEG)
}

// Route is the realised routing of one net: a tree of PIPs from the net's
// source node to every sink node. Clock nets instead record the global line
// carrying them plus the input-pin PIPs tapping it.
type Route struct {
	Net  *netlist.Net
	PIPs []device.PIP
	// Global is the global line index for clock nets, -1 for fabric nets.
	Global int
}

// Design is a physical design under construction or completed.
type Design struct {
	Part    *device.Part
	Netlist *netlist.Design

	// Cells maps every placeable cell to its site. Paired LUT+FF cells
	// share a site.
	Cells map[*netlist.Cell]Site
	// Ports maps top-level ports to pads.
	Ports map[*netlist.Port]device.Pad
	// Routes maps routed nets to their routing trees.
	Routes map[*netlist.Net]*Route
}

// NewDesign returns an empty physical design for the netlist on the part.
func NewDesign(p *device.Part, nl *netlist.Design) *Design {
	return &Design{
		Part:    p,
		Netlist: nl,
		Cells:   map[*netlist.Cell]Site{},
		Ports:   map[*netlist.Port]device.Pad{},
		Routes:  map[*netlist.Net]*Route{},
	}
}

// lutInputPin returns the slice input-pin index (device.PinF1 etc.) for LUT
// input k at an LE.
func lutInputPin(le, k int) int {
	if le == LEF {
		return device.PinF1 + k
	}
	return device.PinG1 + k
}

// OutputNode returns the routing node a placed cell drives.
func (d *Design) OutputNode(c *netlist.Cell) (device.NodeID, error) {
	site, ok := d.Cells[c]
	if !ok {
		return 0, fmt.Errorf("phys: cell %q unplaced", c.Name)
	}
	switch c.Kind {
	case netlist.KindLUT4:
		pin := device.OutX
		if site.LE == LEG {
			pin = device.OutY
		}
		return d.Part.TileWireNode(site.Row, site.Col, device.OutWire(site.Slice, pin)), nil
	case netlist.KindDFF:
		pin := device.OutXQ
		if site.LE == LEG {
			pin = device.OutYQ
		}
		return d.Part.TileWireNode(site.Row, site.Col, device.OutWire(site.Slice, pin)), nil
	}
	return 0, fmt.Errorf("phys: cell %q has unknown kind", c.Name)
}

// PinNode returns the routing node feeding a cell input pin, and whether the
// connection is internal to the slice (a LUT output feeding its paired FF
// needs no routing).
func (d *Design) PinNode(pr netlist.PinRef) (node device.NodeID, internal bool, err error) {
	c := pr.Cell
	site, ok := d.Cells[c]
	if !ok {
		return 0, false, fmt.Errorf("phys: cell %q unplaced", c.Name)
	}
	tile := func(w int) device.NodeID { return d.Part.TileWireNode(site.Row, site.Col, w) }
	switch {
	case c.Kind == netlist.KindLUT4 && len(pr.Pin) == 2 && pr.Pin[0] == 'I':
		k := int(pr.Pin[1] - '0')
		if k < 0 || k >= len(c.Inputs) {
			return 0, false, fmt.Errorf("phys: %s: no such input", pr)
		}
		return tile(device.InPinWire(site.Slice, lutInputPin(site.LE, k))), false, nil

	case c.Kind == netlist.KindDFF && pr.Pin == "D":
		// Internal if the driving LUT sits in the same LE.
		if drv := c.Inputs[0].Driver.Cell; drv != nil && drv.Kind == netlist.KindLUT4 {
			if dsite, placed := d.Cells[drv]; placed && dsite == site {
				return 0, true, nil
			}
		}
		pin := device.PinBX
		if site.LE == LEG {
			pin = device.PinBY
		}
		return tile(device.InPinWire(site.Slice, pin)), false, nil

	case c.Kind == netlist.KindDFF && pr.Pin == "C":
		return tile(device.InPinWire(site.Slice, device.PinCLK)), false, nil
	case c.Kind == netlist.KindDFF && pr.Pin == "CE":
		return tile(device.InPinWire(site.Slice, device.PinCE)), false, nil
	case c.Kind == netlist.KindDFF && pr.Pin == "R":
		return tile(device.InPinWire(site.Slice, device.PinSR)), false, nil
	}
	return 0, false, fmt.Errorf("phys: %s: unknown pin", pr)
}

// SourceNode returns the routing node driving a net (cell output or pad).
func (d *Design) SourceNode(n *netlist.Net) (device.NodeID, error) {
	switch {
	case n.Driver.Cell != nil:
		return d.OutputNode(n.Driver.Cell)
	case n.DriverPort != nil:
		pad, ok := d.Ports[n.DriverPort]
		if !ok {
			return 0, fmt.Errorf("phys: port %q unassigned", n.DriverPort.Name)
		}
		return d.Part.PadNodeI(pad), nil
	}
	return 0, fmt.Errorf("phys: net %q undriven", n.Name)
}

// SinkNodes returns the distinct routing nodes a net must reach (cell input
// pins that are not slice-internal, plus output pads).
func (d *Design) SinkNodes(n *netlist.Net) ([]device.NodeID, error) {
	seen := map[device.NodeID]bool{}
	var out []device.NodeID
	for _, pr := range n.Sinks {
		node, internal, err := d.PinNode(pr)
		if err != nil {
			return nil, err
		}
		if internal || seen[node] {
			continue
		}
		seen[node] = true
		out = append(out, node)
	}
	for _, p := range n.SinkPorts {
		pad, ok := d.Ports[p]
		if !ok {
			return nil, fmt.Errorf("phys: port %q unassigned", p.Name)
		}
		node := d.Part.PadNodeO(pad)
		if !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	return out, nil
}

// CheckPlacement verifies structural placement invariants: every cell
// placed on a valid site, at most one LUT and one FF per site, paired cells
// colocated legally, every port on a distinct valid pad.
func (d *Design) CheckPlacement() error {
	type occKey struct {
		site Site
		kind netlist.CellKind
	}
	occ := map[occKey]*netlist.Cell{}
	for _, c := range d.Netlist.Cells {
		site, ok := d.Cells[c]
		if !ok {
			return fmt.Errorf("phys: cell %q unplaced", c.Name)
		}
		if !site.Valid(d.Part) {
			return fmt.Errorf("phys: cell %q on invalid site %v", c.Name, site)
		}
		k := occKey{site, c.Kind}
		if prev := occ[k]; prev != nil {
			return fmt.Errorf("phys: cells %q and %q share site %v", prev.Name, c.Name, site)
		}
		occ[k] = c
	}
	padUsed := map[device.Pad]*netlist.Port{}
	for _, p := range d.Netlist.Ports {
		pad, ok := d.Ports[p]
		if !ok {
			return fmt.Errorf("phys: port %q unassigned", p.Name)
		}
		if !d.Part.ValidPad(pad) {
			return fmt.Errorf("phys: port %q on invalid pad %v", p.Name, pad)
		}
		if prev := padUsed[pad]; prev != nil {
			return fmt.Errorf("phys: ports %q and %q share pad %s", prev.Name, p.Name, pad.Name())
		}
		padUsed[pad] = p
	}
	return nil
}

// RoutedPIPCount returns the total PIPs across all routes.
func (d *Design) RoutedPIPCount() int {
	n := 0
	for _, r := range d.Routes {
		n += len(r.PIPs)
	}
	return n
}

// BoundingBox returns the smallest region containing every placed cell.
func (d *Design) BoundingBox() (r1, c1, r2, c2 int, ok bool) {
	first := true
	for _, site := range d.Cells {
		if first {
			r1, c1, r2, c2 = site.Row, site.Col, site.Row, site.Col
			first = false
			continue
		}
		r1, c1 = min(r1, site.Row), min(c1, site.Col)
		r2, c2 = max(r2, site.Row), max(c2, site.Col)
	}
	return r1, c1, r2, c2, !first
}

// Utilization summarises device resource usage of a placed design, the
// report MAP prints in the Xilinx flow.
type Utilization struct {
	LUTs, LUTCap int
	FFs, FFCap   int
	Pads, PadCap int
	PIPs         int
}

// Utilization computes resource usage (PIPs require routes).
func (d *Design) Utilization() Utilization {
	u := Utilization{
		LUTCap: d.Part.NumLUTs(),
		FFCap:  d.Part.NumLUTs(), // one FF per LE
		PadCap: d.Part.NumPads(),
		Pads:   len(d.Ports),
		PIPs:   d.RoutedPIPCount(),
	}
	for _, c := range d.Netlist.Cells {
		switch c.Kind {
		case netlist.KindLUT4:
			u.LUTs++
		case netlist.KindDFF:
			u.FFs++
		}
	}
	return u
}

func (u Utilization) String() string {
	pct := func(n, cap int) float64 {
		if cap == 0 {
			return 0
		}
		return 100 * float64(n) / float64(cap)
	}
	return fmt.Sprintf("LUTs %d/%d (%.1f%%), FFs %d/%d (%.1f%%), pads %d/%d (%.1f%%), %d routed PIPs",
		u.LUTs, u.LUTCap, pct(u.LUTs, u.LUTCap),
		u.FFs, u.FFCap, pct(u.FFs, u.FFCap),
		u.Pads, u.PadCap, pct(u.Pads, u.PadCap), u.PIPs)
}
