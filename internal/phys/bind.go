package phys

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/netlist"
)

// Bind reconstructs a physical design from its serialised form onto an
// EXISTING netlist, matching cells, ports and nets by name. This is how the
// flow's build cache rehydrates a memoized placement or routing: unlike
// Unflatten, which builds a fresh netlist, Bind keeps the caller's live
// netlist as the design's backbone, so pointer-keyed consumers (pad lookups
// via nl.Ports, bitgen walking nl.Cells) see the objects they already hold.
//
// The netlist must be structurally identical to the one the Flat was
// produced from — the cache guarantees that by keying on the netlist
// fingerprint — but Bind still verifies names, kinds and counts so a stale
// or colliding entry surfaces as an error (and the caller falls back to
// recomputing) rather than as a corrupt design.
func Bind(f *Flat, part *device.Part, nl *netlist.Design) (*Design, error) {
	if f.Part != part.Name {
		return nil, fmt.Errorf("phys: bind: flat is for part %q, want %q", f.Part, part.Name)
	}
	if f.Design != nl.Name {
		return nil, fmt.Errorf("phys: bind: flat is design %q, want %q", f.Design, nl.Name)
	}
	if len(f.Cells) != len(nl.Cells) {
		return nil, fmt.Errorf("phys: bind: %d placed cells for %d netlist cells", len(f.Cells), len(nl.Cells))
	}
	if len(f.Ports) != len(nl.Ports) {
		return nil, fmt.Errorf("phys: bind: %d bound ports for %d netlist ports", len(f.Ports), len(nl.Ports))
	}
	d := NewDesign(part, nl)
	for _, fc := range f.Cells {
		c, ok := nl.Cell(fc.Name)
		if !ok {
			return nil, fmt.Errorf("phys: bind: netlist has no cell %q", fc.Name)
		}
		if c.Kind.String() != fc.Kind || c.Init != fc.Init {
			return nil, fmt.Errorf("phys: bind: cell %q mismatch (%s/%#x vs %s/%#x)",
				fc.Name, fc.Kind, fc.Init, c.Kind, c.Init)
		}
		if !fc.Site.Valid(part) {
			return nil, fmt.Errorf("phys: bind: cell %q site %v invalid for %s", fc.Name, fc.Site, part.Name)
		}
		d.Cells[c] = fc.Site
	}
	for _, fp := range f.Ports {
		p, ok := nl.Port(fp.Name)
		if !ok {
			return nil, fmt.Errorf("phys: bind: netlist has no port %q", fp.Name)
		}
		if p.Dir.String() != fp.Dir {
			return nil, fmt.Errorf("phys: bind: port %q direction mismatch", fp.Name)
		}
		pad, err := device.ParsePad(fp.Pad)
		if err != nil {
			return nil, fmt.Errorf("phys: bind: port %q: %w", fp.Name, err)
		}
		d.Ports[p] = pad
	}
	for _, fn := range f.Nets {
		if len(fn.PIPs) == 0 && fn.Global < 0 {
			continue
		}
		n, ok := nl.Net(fn.Name)
		if !ok {
			return nil, fmt.Errorf("phys: bind: netlist has no net %q", fn.Name)
		}
		r := &Route{Net: n, Global: fn.Global}
		for _, fpip := range fn.PIPs {
			pip, err := resolvePIP(part, fpip)
			if err != nil {
				return nil, fmt.Errorf("phys: bind: net %q: %w", fn.Name, err)
			}
			r.PIPs = append(r.PIPs, pip)
		}
		d.Routes[n] = r
	}
	if err := d.CheckPlacement(); err != nil {
		return nil, fmt.Errorf("phys: bind: %w", err)
	}
	return d, nil
}
