package phys

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/netlist"
)

// CheckRoutes verifies every non-trivial net is routed as a legal tree: the
// PIPs form a connected, singly-driven tree from the net's source node to
// every sink node, no PIP is unused, and no routing node is driven by two
// different nets.
func (d *Design) CheckRoutes() error {
	nodeOwner := map[device.NodeID]*netlist.Net{}
	for _, n := range d.Netlist.Nets {
		if !n.Driven() {
			continue
		}
		sinks, err := d.SinkNodes(n)
		if err != nil {
			return err
		}
		route := d.Routes[n]
		if len(sinks) == 0 {
			if route != nil && len(route.PIPs) > 0 {
				return fmt.Errorf("phys: net %q has routing but no sinks", n.Name)
			}
			continue
		}
		if route == nil {
			return fmt.Errorf("phys: net %q unrouted", n.Name)
		}
		src, err := d.SourceNode(n)
		if err != nil {
			return err
		}
		if n.IsClock {
			if route.Global < 0 || route.Global >= device.NumGlobals {
				return fmt.Errorf("phys: clock net %q not on a global line", n.Name)
			}
			src = d.Part.GlobalNode(route.Global)
		}
		if err := checkTree(d.Part, n, src, sinks, route.PIPs); err != nil {
			return err
		}
		// Cross-net sharing: every driven node belongs to one net.
		for _, pip := range route.PIPs {
			if owner, taken := nodeOwner[pip.Dst]; taken && owner != n {
				return fmt.Errorf("phys: node %s driven by nets %q and %q",
					d.Part.NodeName(pip.Dst), owner.Name, n.Name)
			}
			nodeOwner[pip.Dst] = n
		}
	}
	return nil
}

func checkTree(p *device.Part, n *netlist.Net, src device.NodeID, sinks []device.NodeID, pips []device.PIP) error {
	g := device.NewGraph(p)
	drivenBy := map[device.NodeID]device.PIP{}
	adj := map[device.NodeID][]device.NodeID{}
	for _, pip := range pips {
		// PIP must exist in the owning tile's catalog.
		if got, ok := g.FindPIP(pip.Row, pip.Col, pip.Src, pip.Dst); !ok || got.CatalogIdx != pip.CatalogIdx {
			return fmt.Errorf("phys: net %q uses pip not in catalog (%s -> %s)",
				n.Name, p.NodeName(pip.Src), p.NodeName(pip.Dst))
		}
		if _, dup := drivenBy[pip.Dst]; dup {
			return fmt.Errorf("phys: net %q drives node %s twice", n.Name, p.NodeName(pip.Dst))
		}
		drivenBy[pip.Dst] = pip
		adj[pip.Src] = append(adj[pip.Src], pip.Dst)
	}
	// BFS from source.
	reached := map[device.NodeID]bool{src: true}
	queue := []device.NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nxt := range adj[cur] {
			if !reached[nxt] {
				reached[nxt] = true
				queue = append(queue, nxt)
			}
		}
	}
	for _, s := range sinks {
		if !reached[s] {
			return fmt.Errorf("phys: net %q does not reach sink %s", n.Name, p.NodeName(s))
		}
	}
	for dst := range drivenBy {
		if !reached[dst] {
			return fmt.Errorf("phys: net %q has orphan routing at %s", n.Name, p.NodeName(dst))
		}
	}
	return nil
}
