package phys

import (
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/netlist"
)

func smallDesign(t *testing.T) (*Design, *netlist.Cell, *netlist.Cell) {
	t.Helper()
	p := device.MustByName("XCV50")
	nl := netlist.NewDesign("t")
	a, _ := nl.AddPort("a", netlist.In, nil)
	clk, _ := nl.AddPort("clk", netlist.In, nil)
	lut, err := nl.AddLUT("l", 0x5555, a.Net)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := nl.AddDFF("f", lut.Out, clk.Net, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddPort("q", netlist.Out, ff.Out); err != nil {
		t.Fatal(err)
	}
	return NewDesign(p, nl), lut, ff
}

func TestCheckPlacementCatchesConflicts(t *testing.T) {
	d, lut, ff := smallDesign(t)
	site := Site{Row: 1, Col: 1, Slice: 0, LE: LEF}
	d.Cells[lut] = site
	d.Cells[ff] = site
	assignPorts(d)
	if err := d.CheckPlacement(); err != nil {
		t.Fatalf("LUT+FF sharing a site is legal packing: %v", err)
	}

	// Two LUTs on one site must fail.
	lut2, err := d.Netlist.AddLUT("l2", 0xAAAA, d.Netlist.Ports[0].Net)
	if err != nil {
		t.Fatal(err)
	}
	d.Cells[lut2] = site
	if err := d.CheckPlacement(); err == nil {
		t.Fatal("two LUTs on one site accepted")
	}
	d.Cells[lut2] = Site{Row: 1, Col: 1, Slice: 0, LE: LEG}
	if err := d.CheckPlacement(); err != nil {
		t.Fatal(err)
	}

	// Invalid site.
	d.Cells[lut2] = Site{Row: 99, Col: 1, Slice: 0, LE: LEF}
	if err := d.CheckPlacement(); err == nil {
		t.Fatal("invalid site accepted")
	}
}

func assignPorts(d *Design) {
	for i, p := range d.Netlist.Ports {
		d.Ports[p] = device.Pad{Edge: device.EdgeL, Index: i}
	}
}

func TestCheckPlacementCatchesSharedPads(t *testing.T) {
	d, lut, ff := smallDesign(t)
	d.Cells[lut] = Site{Row: 1, Col: 1, Slice: 0, LE: LEF}
	d.Cells[ff] = Site{Row: 1, Col: 1, Slice: 0, LE: LEF}
	for _, p := range d.Netlist.Ports {
		d.Ports[p] = device.Pad{Edge: device.EdgeL, Index: 0}
	}
	if err := d.CheckPlacement(); err == nil {
		t.Fatal("shared pad accepted")
	}
}

func TestPinNodesAndInternalPairing(t *testing.T) {
	d, lut, ff := smallDesign(t)
	site := Site{Row: 2, Col: 3, Slice: 1, LE: LEG}
	d.Cells[lut] = site
	d.Cells[ff] = site
	assignPorts(d)

	// LUT input I0 is the G1 pin of slice 1.
	node, internal, err := d.PinNode(netlist.PinRef{Cell: lut, Pin: "I0"})
	if err != nil || internal {
		t.Fatalf("I0: %v internal=%v", err, internal)
	}
	want := d.Part.TileWireNode(2, 3, device.InPinWire(1, device.PinG1))
	if node != want {
		t.Fatalf("I0 node %s, want %s", d.Part.NodeName(node), d.Part.NodeName(want))
	}
	// FF D is internal (paired LUT in the same LE).
	_, internal, err = d.PinNode(netlist.PinRef{Cell: ff, Pin: "D"})
	if err != nil || !internal {
		t.Fatalf("paired D should be internal: %v internal=%v", err, internal)
	}
	// Moving the FF away makes D external (BY pin).
	d.Cells[ff] = Site{Row: 2, Col: 4, Slice: 0, LE: LEG}
	node, internal, err = d.PinNode(netlist.PinRef{Cell: ff, Pin: "D"})
	if err != nil || internal {
		t.Fatalf("unpaired D should need routing: %v internal=%v", err, internal)
	}
	if node != d.Part.TileWireNode(2, 4, device.InPinWire(0, device.PinBY)) {
		t.Fatalf("unpaired D on wrong pin: %s", d.Part.NodeName(node))
	}
	// Output nodes.
	out, err := d.OutputNode(lut)
	if err != nil || out != d.Part.TileWireNode(2, 3, device.OutWire(1, device.OutY)) {
		t.Fatalf("LUT output node wrong: %v", err)
	}
	out, err = d.OutputNode(ff)
	if err != nil || out != d.Part.TileWireNode(2, 4, device.OutWire(0, device.OutYQ)) {
		t.Fatalf("FF output node wrong: %v", err)
	}
}

func TestSinkNodesDedupAndPorts(t *testing.T) {
	d, lut, ff := smallDesign(t)
	site := Site{Row: 2, Col: 3, Slice: 1, LE: LEG}
	d.Cells[lut] = site
	d.Cells[ff] = site
	assignPorts(d)
	// The LUT output net: its only sink (FF D) is internal -> no sinks.
	sinks, err := d.SinkNodes(lut.Out)
	if err != nil || len(sinks) != 0 {
		t.Fatalf("paired net should have no routable sinks: %v %v", sinks, err)
	}
	// The FF output net reaches the q port's pad.
	sinks, err = d.SinkNodes(ff.Out)
	if err != nil || len(sinks) != 1 {
		t.Fatalf("q net sinks: %v %v", sinks, err)
	}
	// Source nodes.
	if _, err := d.SourceNode(ff.Out); err != nil {
		t.Fatal(err)
	}
	aPort, _ := d.Netlist.Port("a")
	if src, err := d.SourceNode(aPort.Net); err != nil || src != d.Part.PadNodeI(d.Ports[aPort]) {
		t.Fatalf("port-driven net source wrong: %v", err)
	}
}

func TestSiteValidity(t *testing.T) {
	p := device.MustByName("XCV50")
	good := Site{Row: 0, Col: 0, Slice: 1, LE: LEG}
	if !good.Valid(p) {
		t.Fatal("valid site rejected")
	}
	for _, bad := range []Site{
		{Row: -1}, {Row: p.Rows}, {Col: p.Cols}, {Slice: 2}, {LE: 3},
	} {
		if bad.Valid(p) {
			t.Errorf("invalid site %v accepted", bad)
		}
	}
}

func TestBoundingBox(t *testing.T) {
	d, lut, ff := smallDesign(t)
	if _, _, _, _, ok := d.BoundingBox(); ok {
		t.Fatal("empty design has a bounding box")
	}
	d.Cells[lut] = Site{Row: 2, Col: 7, Slice: 0, LE: LEF}
	d.Cells[ff] = Site{Row: 5, Col: 3, Slice: 0, LE: LEF}
	r1, c1, r2, c2, ok := d.BoundingBox()
	if !ok || r1 != 2 || c1 != 3 || r2 != 5 || c2 != 7 {
		t.Fatalf("bbox (%d,%d)-(%d,%d)", r1, c1, r2, c2)
	}
}

func TestUtilization(t *testing.T) {
	d, lut, ff := smallDesign(t)
	d.Cells[lut] = Site{Row: 1, Col: 1, Slice: 0, LE: LEF}
	d.Cells[ff] = Site{Row: 1, Col: 1, Slice: 0, LE: LEF}
	assignPorts(d)
	u := d.Utilization()
	if u.LUTs != 1 || u.FFs != 1 || u.Pads != 3 {
		t.Fatalf("utilization = %+v", u)
	}
	if u.LUTCap != d.Part.NumLUTs() || u.PadCap != d.Part.NumPads() {
		t.Fatalf("capacities wrong: %+v", u)
	}
	s := u.String()
	if !strings.Contains(s, "LUTs 1/") || !strings.Contains(s, "pads 3/") {
		t.Fatalf("report: %s", s)
	}
}
