package phys

import (
	"testing"

	"repro/internal/device"
	"repro/internal/netlist"
)

// boundDesign builds a small legally-placed design for Bind round-trips.
func boundDesign(t *testing.T) *Design {
	t.Helper()
	d, lut, ff := smallDesign(t)
	d.Cells[lut] = Site{Row: 1, Col: 1, Slice: 0, LE: LEF}
	d.Cells[ff] = Site{Row: 1, Col: 1, Slice: 0, LE: LEF}
	assignPorts(d)
	if err := d.CheckPlacement(); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestBindRoundTrip is the build cache's rehydration contract: Flatten a
// placed design and Bind it back onto the SAME live netlist; the result must
// reference the caller's netlist objects and reproduce every site and pad.
func TestBindRoundTrip(t *testing.T) {
	d := boundDesign(t)
	f, err := d.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	part := device.MustByName("XCV50")
	got, err := Bind(f, part, d.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	if got.Netlist != d.Netlist {
		t.Fatal("Bind must keep the caller's netlist, not build a fresh one")
	}
	if len(got.Cells) != len(d.Cells) {
		t.Fatalf("cells: %d vs %d", len(got.Cells), len(d.Cells))
	}
	for c, site := range d.Cells {
		if got.Cells[c] != site {
			t.Fatalf("cell %q at %v, want %v", c.Name, got.Cells[c], site)
		}
	}
	for p, pad := range d.Ports {
		if got.Ports[p] != pad {
			t.Fatalf("port %q on %v, want %v", p.Name, got.Ports[p], pad)
		}
	}
}

func TestBindRejectsMismatches(t *testing.T) {
	d := boundDesign(t)
	f, err := d.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	part := device.MustByName("XCV50")

	t.Run("wrong-part", func(t *testing.T) {
		other := device.MustByName("XCV1000")
		if _, err := Bind(f, other, d.Netlist); err == nil {
			t.Fatal("flat for XCV50 bound onto XCV1000")
		}
	})
	t.Run("wrong-design-name", func(t *testing.T) {
		nl2 := netlist.NewDesign("other")
		if _, err := Bind(f, part, nl2); err == nil {
			t.Fatal("flat bound onto a differently-named design")
		}
	})
	t.Run("missing-cell", func(t *testing.T) {
		// A structurally different netlist with the same name.
		nl2 := netlist.NewDesign(d.Netlist.Name)
		if _, err := Bind(f, part, nl2); err == nil {
			t.Fatal("flat bound onto an empty netlist")
		}
	})
	t.Run("changed-init", func(t *testing.T) {
		lut, ok := d.Netlist.Cell("l")
		if !ok {
			t.Fatal("no lut")
		}
		orig := lut.Init
		lut.Init ^= 0xffff
		defer func() { lut.Init = orig }()
		if _, err := Bind(f, part, d.Netlist); err == nil {
			t.Fatal("flat bound despite a changed LUT INIT")
		}
	})
}
