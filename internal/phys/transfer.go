package phys

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/netlist"
)

// Transfer rebinds a placed-and-routed design onto a structurally identical
// netlist, matching cells, ports and nets by name. Unlike Bind, it tolerates
// Init differences: placement and routing never consult Init (annealing cost
// is pure wirelength, PathFinder sees only connectivity), so an INIT-only
// edit leaves the physical solution valid bit-for-bit. This is the splice
// step of the incremental flow — the previous run's placement and routes
// carried over to the edited netlist in O(design) pointer rebinding, with no
// serialisation round trip.
//
// The caller guarantees structural identity (the incremental engine checks
// the netlist diff first); Transfer still verifies names, kinds and counts
// so a misclassified edit surfaces as an error rather than a corrupt design.
func Transfer(prev *Design, next *netlist.Design) (*Design, error) {
	if prev.Netlist.Name != next.Name {
		return nil, fmt.Errorf("phys: transfer: design %q vs %q", prev.Netlist.Name, next.Name)
	}
	if len(prev.Cells) != len(next.Cells) {
		return nil, fmt.Errorf("phys: transfer: %d placed cells for %d netlist cells", len(prev.Cells), len(next.Cells))
	}
	if len(prev.Ports) != len(next.Ports) {
		return nil, fmt.Errorf("phys: transfer: %d bound ports for %d netlist ports", len(prev.Ports), len(next.Ports))
	}
	d := NewDesign(prev.Part, next)
	for pc, site := range prev.Cells {
		nc, ok := next.Cell(pc.Name)
		if !ok {
			return nil, fmt.Errorf("phys: transfer: netlist has no cell %q", pc.Name)
		}
		if nc.Kind != pc.Kind {
			return nil, fmt.Errorf("phys: transfer: cell %q kind %s vs %s", pc.Name, pc.Kind, nc.Kind)
		}
		d.Cells[nc] = site
	}
	for pp, pad := range prev.Ports {
		np, ok := next.Port(pp.Name)
		if !ok {
			return nil, fmt.Errorf("phys: transfer: netlist has no port %q", pp.Name)
		}
		if np.Dir != pp.Dir {
			return nil, fmt.Errorf("phys: transfer: port %q direction mismatch", pp.Name)
		}
		d.Ports[np] = pad
	}
	for pn, r := range prev.Routes {
		nn, ok := next.Net(pn.Name)
		if !ok {
			return nil, fmt.Errorf("phys: transfer: netlist has no net %q", pn.Name)
		}
		d.Routes[nn] = &Route{
			Net:    nn,
			PIPs:   append([]device.PIP(nil), r.PIPs...),
			Global: r.Global,
		}
	}
	if err := d.CheckPlacement(); err != nil {
		return nil, fmt.Errorf("phys: transfer: %w", err)
	}
	return d, nil
}
