package phys

import (
	"fmt"
	"sort"

	"repro/internal/device"
	"repro/internal/netlist"
)

// Flat is the serialisable form of a physical design: everything the XDL
// text format and the NCD binary database carry. All references are by name,
// routing nodes by their canonical node names, so a Flat is self-contained
// and part-portable in the way the real file formats are.
type Flat struct {
	Design string
	Part   string
	Cells  []FlatCell
	Ports  []FlatPort
	Nets   []FlatNet
}

// FlatCell is one placed cell.
type FlatCell struct {
	Name string
	Kind string // "LUT4" or "DFF"
	Init uint16
	Site Site
}

// FlatPort is one pad-bound port.
type FlatPort struct {
	Name string
	Dir  string // "in" or "out"
	Pad  string
}

// FlatPin is a cell pin reference by name.
type FlatPin struct {
	Inst string
	Pin  string // logical: I0..I3, O for LUTs; D,C,CE,R,Q for DFFs
}

// FlatPIP is one routing PIP, anchored at its owning tile with node names.
type FlatPIP struct {
	Row, Col int    // 0-based owning tile
	Src, Dst string // canonical node names
}

// FlatNet is one net with its connectivity and routing.
type FlatNet struct {
	Name string
	// Driver is the driving cell pin; empty Inst means DriverPort drives.
	Driver     FlatPin
	DriverPort string
	Sinks      []FlatPin
	SinkPorts  []string
	IsClock    bool
	Global     int // global line for routed clock nets, -1 otherwise
	PIPs       []FlatPIP
}

// Flatten converts a physical design to its serialisable form
// (deterministically ordered).
func (d *Design) Flatten() (*Flat, error) {
	f := &Flat{Design: d.Netlist.Name, Part: d.Part.Name}
	for _, c := range d.Netlist.SortedCells() {
		site, ok := d.Cells[c]
		if !ok {
			return nil, fmt.Errorf("phys: cell %q unplaced", c.Name)
		}
		f.Cells = append(f.Cells, FlatCell{Name: c.Name, Kind: c.Kind.String(), Init: c.Init, Site: site})
	}
	ports := append([]*netlist.Port(nil), d.Netlist.Ports...)
	sort.Slice(ports, func(i, j int) bool { return ports[i].Name < ports[j].Name })
	for _, p := range ports {
		pad, ok := d.Ports[p]
		if !ok {
			return nil, fmt.Errorf("phys: port %q unassigned", p.Name)
		}
		f.Ports = append(f.Ports, FlatPort{Name: p.Name, Dir: p.Dir.String(), Pad: pad.Name()})
	}
	for _, n := range d.Netlist.SortedNets() {
		if !n.Driven() {
			continue
		}
		fn := FlatNet{Name: n.Name, IsClock: n.IsClock, Global: -1}
		if n.Driver.Cell != nil {
			fn.Driver = FlatPin{Inst: n.Driver.Cell.Name, Pin: n.Driver.Pin}
		} else {
			fn.DriverPort = n.DriverPort.Name
		}
		for _, s := range n.Sinks {
			fn.Sinks = append(fn.Sinks, FlatPin{Inst: s.Cell.Name, Pin: s.Pin})
		}
		for _, sp := range n.SinkPorts {
			fn.SinkPorts = append(fn.SinkPorts, sp.Name)
		}
		if r := d.Routes[n]; r != nil {
			fn.Global = r.Global
			for _, pip := range r.PIPs {
				fn.PIPs = append(fn.PIPs, FlatPIP{
					Row: pip.Row, Col: pip.Col,
					Src: d.Part.NodeName(pip.Src),
					Dst: d.Part.NodeName(pip.Dst),
				})
			}
		}
		f.Nets = append(f.Nets, fn)
	}
	return f, nil
}

// Unflatten reconstructs a physical design (netlist, placement, routing)
// from its serialised form and validates it structurally.
func Unflatten(f *Flat) (*Design, error) {
	part, err := device.ByName(f.Part)
	if err != nil {
		return nil, err
	}
	nl := netlist.NewDesign(f.Design)
	d := NewDesign(part, nl)

	for _, fc := range f.Cells {
		var kind netlist.CellKind
		switch fc.Kind {
		case "LUT4":
			kind = netlist.KindLUT4
		case "DFF":
			kind = netlist.KindDFF
		default:
			return nil, fmt.Errorf("phys: cell %q has unknown kind %q", fc.Name, fc.Kind)
		}
		c, err := nl.NewRawCell(fc.Name, kind, fc.Init)
		if err != nil {
			return nil, err
		}
		if !fc.Site.Valid(part) {
			return nil, fmt.Errorf("phys: cell %q site %v invalid for %s", fc.Name, fc.Site, part.Name)
		}
		d.Cells[c] = fc.Site
	}

	netByName := map[string]*netlist.Net{}
	for _, fn := range f.Nets {
		n := nl.NewNet(fn.Name)
		if n.Name != fn.Name {
			return nil, fmt.Errorf("phys: duplicate net %q", fn.Name)
		}
		n.IsClock = fn.IsClock
		netByName[fn.Name] = n
	}

	// Ports: input ports drive their nets, so bind them before cell pins.
	for _, fp := range f.Ports {
		var dir netlist.PortDir
		switch fp.Dir {
		case "in":
			dir = netlist.In
		case "out":
			dir = netlist.Out
		default:
			return nil, fmt.Errorf("phys: port %q has bad direction %q", fp.Name, fp.Dir)
		}
		pad, err := device.ParsePad(fp.Pad)
		if err != nil {
			return nil, err
		}
		// The port's net is found from the net records; ports with no net
		// record are dangling.
		var net *netlist.Net
		for _, fn := range f.Nets {
			if (dir == netlist.In && fn.DriverPort == fp.Name) || (dir == netlist.Out && containsStr(fn.SinkPorts, fp.Name)) {
				net = netByName[fn.Name]
				break
			}
		}
		if net == nil {
			return nil, fmt.Errorf("phys: port %q not referenced by any net", fp.Name)
		}
		var p *netlist.Port
		if dir == netlist.In {
			p, err = nl.AddPort(fp.Name, dir, net)
		} else {
			p, err = nl.AddPort(fp.Name, dir, net)
		}
		if err != nil {
			return nil, err
		}
		d.Ports[p] = pad
	}

	for _, fn := range f.Nets {
		n := netByName[fn.Name]
		if fn.Driver.Inst != "" {
			c, ok := nl.Cell(fn.Driver.Inst)
			if !ok {
				return nil, fmt.Errorf("phys: net %q driven by unknown cell %q", fn.Name, fn.Driver.Inst)
			}
			if err := nl.BindOutput(c, n); err != nil {
				return nil, err
			}
		}
		for _, s := range fn.Sinks {
			c, ok := nl.Cell(s.Inst)
			if !ok {
				return nil, fmt.Errorf("phys: net %q sinks unknown cell %q", fn.Name, s.Inst)
			}
			if err := nl.BindInput(c, s.Pin, n); err != nil {
				return nil, err
			}
		}
		if len(fn.PIPs) > 0 || fn.Global >= 0 {
			r := &Route{Net: n, Global: fn.Global}
			for _, fp := range fn.PIPs {
				pip, err := resolvePIP(part, fp)
				if err != nil {
					return nil, fmt.Errorf("phys: net %q: %w", fn.Name, err)
				}
				r.PIPs = append(r.PIPs, pip)
			}
			d.Routes[n] = r
		}
	}

	if err := nl.FinishRaw(); err != nil {
		return nil, err
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	if err := d.CheckPlacement(); err != nil {
		return nil, err
	}
	return d, nil
}

func resolvePIP(part *device.Part, fp FlatPIP) (device.PIP, error) {
	src, err := part.ParseNode(fp.Src, fp.Row, fp.Col)
	if err != nil {
		return device.PIP{}, err
	}
	dst, err := part.ParseNode(fp.Dst, fp.Row, fp.Col)
	if err != nil {
		return device.PIP{}, err
	}
	pip, ok := device.NewGraph(part).FindPIP(fp.Row, fp.Col, src, dst)
	if !ok {
		return device.PIP{}, fmt.Errorf("no pip %s -> %s in tile %s", fp.Src, fp.Dst, device.TileName(fp.Row, fp.Col))
	}
	return pip, nil
}

func containsStr(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
