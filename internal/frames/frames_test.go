package frames

import (
	"testing"
	"testing/quick"

	"repro/internal/device"
)

func xcv50() *Part { return device.MustByName("XCV50") }

func TestBitRoundTrip(t *testing.T) {
	p := xcv50()
	m := New(p)
	f := func(fi uint16, bit uint16) bool {
		far, err := p.FARAt(int(fi) % p.TotalFrames())
		if err != nil {
			return false
		}
		bc := device.BitCoord{FAR: far, Bit: int(bit) % p.FrameBits()}
		m.SetBit(bc, true)
		if !m.Bit(bc) {
			return false
		}
		m.SetBit(bc, false)
		return !m.Bit(bc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetFrameLengthCheck(t *testing.T) {
	p := xcv50()
	m := New(p)
	far := device.MakeFAR(device.BlockCLB, 1, 0)
	if err := m.SetFrame(far, make([]uint32, 3)); err == nil {
		t.Fatal("short frame payload accepted")
	}
	payload := make([]uint32, p.FrameWords())
	payload[0] = 0xDEADBEEF
	if err := m.SetFrame(far, payload); err != nil {
		t.Fatal(err)
	}
	if m.Frame(far)[0] != 0xDEADBEEF {
		t.Fatal("frame payload not stored")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := xcv50()
	m := New(p)
	bc := p.CLBBit(1, 1, 0)
	m.SetBit(bc, true)
	c := m.Clone()
	if !c.Bit(bc) {
		t.Fatal("clone missing bit")
	}
	c.SetBit(bc, false)
	if !m.Bit(bc) {
		t.Fatal("clone write leaked into original")
	}
	if m.Equal(c) {
		t.Fatal("memories should differ after clone mutation")
	}
}

func TestDiffAndCopyFrames(t *testing.T) {
	p := xcv50()
	a, b := New(p), New(p)
	bc1 := p.CLBBit(0, 3, 5)
	bc2 := p.CLBBit(7, 10, 400)
	b.SetBit(bc1, true)
	b.SetBit(bc2, true)
	diffs, err := a.Diff(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 2 {
		t.Fatalf("diff frames = %d, want 2 (%v)", len(diffs), diffs)
	}
	if err := a.CopyFrames(b, diffs); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("copying diff frames should equalise memories")
	}
	if got, _ := a.Diff(b); len(got) != 0 {
		t.Fatal("diff after copy should be empty")
	}
}

func TestDiffAcrossPartsErrors(t *testing.T) {
	a := New(xcv50())
	b := New(device.MustByName("XCV100"))
	if _, err := a.Diff(b); err == nil {
		t.Fatal("cross-part diff should error")
	}
	if err := a.CopyFrames(b, nil); err == nil {
		t.Fatal("cross-part copy should error")
	}
}

func TestNonZeroFrames(t *testing.T) {
	p := xcv50()
	m := New(p)
	if got := m.NonZeroFrames(); len(got) != 0 {
		t.Fatalf("fresh memory has %d non-zero frames", len(got))
	}
	m.SetBit(p.CLBBit(2, 2, 100), true)
	if got := m.NonZeroFrames(); len(got) != 1 {
		t.Fatalf("non-zero frames = %d, want 1", len(got))
	}
}

func TestRegionBasics(t *testing.T) {
	p := xcv50()
	rg := NewRegion(5, 9, 2, 3) // corners swapped on purpose
	if rg != (Region{2, 3, 5, 9}) {
		t.Fatalf("NewRegion did not normalise: %+v", rg)
	}
	if !rg.Valid(p) || rg.Rows() != 4 || rg.Cols() != 7 || rg.CLBs() != 28 {
		t.Fatalf("region geometry wrong: %+v", rg)
	}
	if !rg.Contains(2, 3) || !rg.Contains(5, 9) || rg.Contains(1, 3) || rg.Contains(2, 10) {
		t.Fatal("Contains wrong at boundaries")
	}
	if !FullRegion(p).ContainsRegion(rg) {
		t.Fatal("full region must contain any valid region")
	}
	if rg.ContainsRegion(FullRegion(p)) {
		t.Fatal("sub-region cannot contain the full region")
	}
	if (Region{0, 0, 1, 1}).Overlaps(Region{2, 2, 3, 3}) {
		t.Fatal("disjoint regions reported overlapping")
	}
	if !(Region{0, 0, 2, 2}).Overlaps(Region{2, 2, 3, 3}) {
		t.Fatal("touching regions must overlap")
	}
	if (Region{-1, 0, 0, 0}).Valid(p) || (Region{0, 0, 0, p.Cols}).Valid(p) {
		t.Fatal("out-of-range region reported valid")
	}
}

func TestRegionFARs(t *testing.T) {
	p := xcv50()
	rg := Region{0, 4, 3, 6} // 3 columns
	fars := rg.FARs(p)
	if len(fars) != 3*device.FramesCLBCol {
		t.Fatalf("region FARs = %d, want %d", len(fars), 3*device.FramesCLBCol)
	}
	for _, f := range fars {
		col, ok := p.CLBColOfMajor(f.Major())
		if !ok || col < 4 || col > 6 {
			t.Fatalf("region FAR %v outside columns 4..6", f)
		}
	}
	lo, hi := rg.ColumnSpan(p)
	if lo != p.CLBMajor(4) || hi != p.CLBMajor(6) {
		t.Fatalf("column span = %d..%d", lo, hi)
	}
}
