package frames

import (
	"encoding/binary"

	"repro/internal/cache"
)

// Fingerprint returns a stable content hash of the configuration memory,
// for use as a CAD cache key component (e.g. keying partial-bitstream
// generation on the exact base configuration it diffs against).
func (m *Memory) Fingerprint() string {
	h := cache.NewHasher("frames.memory/v1")
	h.Str("part", m.Part.Name)
	buf := make([]byte, 4*len(m.data))
	for i, w := range m.data {
		binary.BigEndian.PutUint32(buf[i*4:], w)
	}
	h.Bytes("data", buf)
	return h.Sum().String()
}
