package frames

import (
	"fmt"

	"repro/internal/device"
)

// Region is a rectangular CLB region, inclusive on all sides, 0-based.
// Because Virtex configuration frames span full device columns, partial
// reconfiguration granularity is per column: any region implies its columns'
// complete frames.
type Region struct {
	R1, C1, R2, C2 int
}

// NewRegion normalises corner order and returns the region.
func NewRegion(r1, c1, r2, c2 int) Region {
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	if c1 > c2 {
		c1, c2 = c2, c1
	}
	return Region{r1, c1, r2, c2}
}

// Valid reports whether the region lies within the part.
func (rg Region) Valid(p *Part) bool {
	return rg.R1 >= 0 && rg.C1 >= 0 && rg.R1 <= rg.R2 && rg.C1 <= rg.C2 &&
		rg.R2 < p.Rows && rg.C2 < p.Cols
}

// Contains reports whether the 0-based CLB (row, col) lies in the region.
func (rg Region) Contains(row, col int) bool {
	return row >= rg.R1 && row <= rg.R2 && col >= rg.C1 && col <= rg.C2
}

// ContainsRegion reports whether other lies entirely within rg.
func (rg Region) ContainsRegion(other Region) bool {
	return rg.Contains(other.R1, other.C1) && rg.Contains(other.R2, other.C2)
}

// Overlaps reports whether the two regions share any CLB.
func (rg Region) Overlaps(other Region) bool {
	return rg.R1 <= other.R2 && other.R1 <= rg.R2 && rg.C1 <= other.C2 && other.C1 <= rg.C2
}

// Rows, Cols and CLBs return the region dimensions.
func (rg Region) Rows() int { return rg.R2 - rg.R1 + 1 }
func (rg Region) Cols() int { return rg.C2 - rg.C1 + 1 }
func (rg Region) CLBs() int { return rg.Rows() * rg.Cols() }

func (rg Region) String() string {
	return fmt.Sprintf("CLB_%s:CLB_%s", device.TileName(rg.R1, rg.C1), device.TileName(rg.R2, rg.C2))
}

// FARs returns the frame addresses configuring the region's CLB columns, in
// device order. This is the frame set a column-granularity partial bitstream
// for the region must carry.
func (rg Region) FARs(p *Part) []device.FAR {
	fars := make([]device.FAR, 0, rg.Cols()*device.FramesCLBCol)
	for c := rg.C1; c <= rg.C2; c++ {
		maj := p.CLBMajor(c)
		for minor := 0; minor < device.FramesCLBCol; minor++ {
			fars = append(fars, device.MakeFAR(device.BlockCLB, maj, minor))
		}
	}
	return fars
}

// ColumnSpan returns the majors (block type 0) covering the region's columns.
func (rg Region) ColumnSpan(p *Part) (majLo, majHi int) {
	return p.CLBMajor(rg.C1), p.CLBMajor(rg.C2)
}

// FullRegion returns the region covering the whole CLB array.
func FullRegion(p *Part) Region { return Region{0, 0, p.Rows - 1, p.Cols - 1} }
