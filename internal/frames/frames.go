// Package frames models Virtex configuration memory: the complete set of
// configuration frames of one part, addressable by frame address (FAR) and
// bit offset. It is the state that bitstreams write into and that the JBits
// layer and bitgen manipulate.
package frames

import (
	"fmt"

	"repro/internal/device"
)

// Memory holds the configuration state of one part: every frame's payload.
type Memory struct {
	Part *Part
	// data is flat storage: frame i (device order) occupies words
	// [i*FrameWords, (i+1)*FrameWords).
	data []uint32
	// dirty, when non-nil, is a per-frame bitset of frames whose content has
	// changed since tracking started (see dirty.go). Only the setter APIs
	// (SetBit, SetFrame, Clear, CopyFrames) maintain it; writes through the
	// aliasing Frame slice are invisible to tracking.
	dirty []uint64
}

// Part aliases device.Part so callers of this package read naturally.
type Part = device.Part

// New returns an all-zero configuration memory for the part (the state of a
// real device after the configuration-reset that precedes a full download).
func New(p *Part) *Memory {
	return &Memory{Part: p, data: make([]uint32, p.TotalFrames()*p.FrameWords())}
}

// Clone returns a deep copy of the memory.
func (m *Memory) Clone() *Memory {
	c := New(m.Part)
	copy(c.data, m.data)
	return c
}

// Frame returns the payload of the addressed frame. The slice aliases the
// memory: writes through it modify the memory.
func (m *Memory) Frame(f device.FAR) []uint32 {
	i := m.Part.FrameIndex(f)
	fw := m.Part.FrameWords()
	return m.data[i*fw : (i+1)*fw]
}

// SetFrame replaces the payload of the addressed frame. It returns an error
// if the payload length does not match the part's frame length.
func (m *Memory) SetFrame(f device.FAR, words []uint32) error {
	if len(words) != m.Part.FrameWords() {
		return fmt.Errorf("frames: frame payload %d words, want %d", len(words), m.Part.FrameWords())
	}
	dst := m.Frame(f)
	if m.dirty != nil && !wordsEqual(dst, words) {
		m.markDirty(m.Part.FrameIndex(f))
	}
	copy(dst, words)
	return nil
}

// Bit reads one configuration bit.
func (m *Memory) Bit(bc device.BitCoord) bool {
	w := m.Frame(bc.FAR)
	return w[bc.Bit/32]>>(31-bc.Bit%32)&1 == 1
}

// SetBit writes one configuration bit.
func (m *Memory) SetBit(bc device.BitCoord, v bool) {
	i := m.Part.FrameIndex(bc.FAR)
	fw := m.Part.FrameWords()
	w := m.data[i*fw : (i+1)*fw]
	mask := uint32(1) << (31 - bc.Bit%32)
	word := &w[bc.Bit/32]
	old := *word
	if v {
		*word |= mask
	} else {
		*word &^= mask
	}
	if m.dirty != nil && *word != old {
		m.markDirty(i)
	}
}

// Clear zeroes the whole memory.
func (m *Memory) Clear() {
	if m.dirty != nil {
		fw := m.Part.FrameWords()
		for f := 0; f < m.Part.TotalFrames(); f++ {
			for _, w := range m.data[f*fw : (f+1)*fw] {
				if w != 0 {
					m.markDirty(f)
					break
				}
			}
		}
	}
	for i := range m.data {
		m.data[i] = 0
	}
}

// Equal reports whether two memories (same part) hold identical state.
func (m *Memory) Equal(o *Memory) bool {
	if m.Part != o.Part || len(m.data) != len(o.data) {
		return false
	}
	for i, w := range m.data {
		if o.data[i] != w {
			return false
		}
	}
	return true
}

// FrameEqual reports whether one frame matches between two memories.
func (m *Memory) FrameEqual(o *Memory, f device.FAR) bool {
	a, b := m.Frame(f), o.Frame(f)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Diff returns the addresses of all frames that differ between m and o, in
// device order. It returns an error if the memories are for different parts.
func (m *Memory) Diff(o *Memory) ([]device.FAR, error) {
	if m.Part != o.Part {
		return nil, fmt.Errorf("frames: diff across parts %s vs %s", m.Part.Name, o.Part.Name)
	}
	var diffs []device.FAR
	f := m.Part.FirstFAR()
	for {
		if !m.FrameEqual(o, f) {
			diffs = append(diffs, f)
		}
		next, ok := m.Part.NextFAR(f)
		if !ok {
			return diffs, nil
		}
		f = next
	}
}

// CopyFrames copies the addressed frames from src into m.
func (m *Memory) CopyFrames(src *Memory, fars []device.FAR) error {
	if m.Part != src.Part {
		return fmt.Errorf("frames: copy across parts %s vs %s", m.Part.Name, src.Part.Name)
	}
	for _, f := range fars {
		dst := m.Frame(f)
		s := src.Frame(f)
		if m.dirty != nil && !wordsEqual(dst, s) {
			m.markDirty(m.Part.FrameIndex(f))
		}
		copy(dst, s)
	}
	return nil
}

func wordsEqual(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NonZeroFrames returns the addresses of all frames with any bit set.
func (m *Memory) NonZeroFrames() []device.FAR {
	var out []device.FAR
	f := m.Part.FirstFAR()
	for {
		zero := true
		for _, w := range m.Frame(f) {
			if w != 0 {
				zero = false
				break
			}
		}
		if !zero {
			out = append(out, f)
		}
		next, ok := m.Part.NextFAR(f)
		if !ok {
			return out
		}
		f = next
	}
}
