package frames

import (
	"testing"

	"repro/internal/device"
)

func TestDirtyTrackingSetBit(t *testing.T) {
	p := device.MustByName("XCV50")
	m := New(p)
	if m.Tracking() {
		t.Fatal("fresh memory is tracking")
	}
	bc := device.BitCoord{FAR: device.MakeFAR(device.BlockCLB, p.CLBMajor(3), 5), Bit: 17}

	// Untracked writes never mark anything.
	m.SetBit(bc, true)
	if m.DirtyCount() != 0 || m.DirtyFARs() != nil {
		t.Fatal("untracked write produced dirty state")
	}

	m.StartTracking()
	m.SetBit(bc, true) // idempotent: already set
	if m.DirtyCount() != 0 {
		t.Fatal("idempotent write marked a frame dirty")
	}
	m.SetBit(bc, false)
	if m.DirtyCount() != 1 || !m.FrameDirty(bc.FAR) {
		t.Fatalf("changing write not tracked: %d dirty", m.DirtyCount())
	}
	cols := m.DirtyCLBColumns()
	if len(cols) != 1 || cols[0] != 3 {
		t.Fatalf("dirty columns %v, want [3]", cols)
	}

	m.ResetDirty()
	if m.DirtyCount() != 0 || !m.Tracking() {
		t.Fatal("ResetDirty must clear the set and keep tracking")
	}
	m.StopTracking()
	if m.Tracking() {
		t.Fatal("StopTracking left tracking on")
	}
}

func TestDirtyTrackingSetFrameAndClear(t *testing.T) {
	p := device.MustByName("XCV50")
	m := New(p)
	far := device.MakeFAR(device.BlockCLB, p.CLBMajor(0), 0)
	words := make([]uint32, p.FrameWords())
	words[0] = 0xdeadbeef
	if err := m.SetFrame(far, words); err != nil {
		t.Fatal(err)
	}

	m.StartTracking()
	if err := m.SetFrame(far, words); err != nil { // identical payload
		t.Fatal(err)
	}
	if m.DirtyCount() != 0 {
		t.Fatal("identical SetFrame marked dirty")
	}
	words[1] = 1
	if err := m.SetFrame(far, words); err != nil {
		t.Fatal(err)
	}
	if m.DirtyCount() != 1 {
		t.Fatal("changing SetFrame not tracked")
	}

	m.ResetDirty()
	m.Clear()
	if !m.FrameDirty(far) {
		t.Fatal("Clear did not mark the non-zero frame dirty")
	}
	// Only frames that held content are dirty.
	if got := m.DirtyCount(); got != 1 {
		t.Fatalf("Clear marked %d frames, want 1", got)
	}
}

func TestDirtyTrackingCopyFrames(t *testing.T) {
	p := device.MustByName("XCV50")
	src := New(p)
	far := device.MakeFAR(device.BlockCLB, p.CLBMajor(7), 2)
	src.SetBit(device.BitCoord{FAR: far, Bit: 3}, true)

	dst := New(p)
	dst.StartTracking()
	other := device.MakeFAR(device.BlockCLB, p.CLBMajor(8), 0)
	if err := dst.CopyFrames(src, []device.FAR{far, other}); err != nil {
		t.Fatal(err)
	}
	// far changed, other was zero in both.
	if dst.DirtyCount() != 1 || !dst.FrameDirty(far) || dst.FrameDirty(other) {
		t.Fatalf("CopyFrames tracked %d dirty frames", dst.DirtyCount())
	}
}

func TestCloneDropsTracking(t *testing.T) {
	p := device.MustByName("XCV50")
	m := New(p)
	m.StartTracking()
	m.SetBit(device.BitCoord{FAR: p.FirstFAR(), Bit: 0}, true)
	c := m.Clone()
	if c.Tracking() {
		t.Fatal("clone inherited tracking")
	}
	if !c.Equal(m) {
		t.Fatal("clone content differs")
	}
}
