package frames

import (
	"sort"

	"repro/internal/device"
)

// Dirty-frame tracking: an opt-in per-frame bitset recording which frames'
// contents have changed since tracking started (or was last reset). This is
// what lets the incremental flow emit exactly the touched frame runs after a
// small edit without diffing the whole memory against a snapshot — the same
// granularity the Virtex configuration port itself works at.
//
// Tracking is maintained by the setter APIs (SetBit, SetFrame, Clear,
// CopyFrames), which mark a frame only when its content actually changes; an
// idempotent rewrite leaves it clean. Writes through the aliasing slice
// returned by Frame bypass tracking — the JBits layer and bitgen write
// exclusively through SetBit, so the CAD flow is fully covered.

// StartTracking enables dirty-frame tracking with an empty dirty set. It is
// idempotent on an already-tracking memory except that the dirty set is
// reset.
func (m *Memory) StartTracking() {
	words := (m.Part.TotalFrames() + 63) / 64
	if m.dirty == nil || len(m.dirty) != words {
		m.dirty = make([]uint64, words)
		return
	}
	m.ResetDirty()
}

// StopTracking disables tracking and discards the dirty set.
func (m *Memory) StopTracking() { m.dirty = nil }

// Tracking reports whether dirty-frame tracking is enabled.
func (m *Memory) Tracking() bool { return m.dirty != nil }

// ResetDirty clears the dirty set without disabling tracking.
func (m *Memory) ResetDirty() {
	for i := range m.dirty {
		m.dirty[i] = 0
	}
}

func (m *Memory) markDirty(frame int) {
	m.dirty[frame>>6] |= 1 << (frame & 63)
}

// FrameDirty reports whether the addressed frame has changed since tracking
// started. It returns false when tracking is disabled.
func (m *Memory) FrameDirty(f device.FAR) bool {
	if m.dirty == nil {
		return false
	}
	i := m.Part.FrameIndex(f)
	return m.dirty[i>>6]>>(i&63)&1 == 1
}

// DirtyCount returns the number of dirty frames.
func (m *Memory) DirtyCount() int {
	n := 0
	for _, w := range m.dirty {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// DirtyFARs returns the addresses of all dirty frames in device order. It
// returns nil when tracking is disabled or nothing changed.
func (m *Memory) DirtyFARs() []device.FAR {
	if m.dirty == nil {
		return nil
	}
	var out []device.FAR
	total := m.Part.TotalFrames()
	for i := 0; i < total; i++ {
		if m.dirty[i>>6]>>(i&63)&1 == 1 {
			f, err := m.Part.FARAt(i)
			if err != nil {
				continue
			}
			out = append(out, f)
		}
	}
	return out
}

// DirtyCLBColumns returns the 0-based CLB columns owning at least one dirty
// frame, ascending. Dirty frames outside the CLB block (BRAM content) are
// not represented here; use DirtyFARs for the full set.
func (m *Memory) DirtyCLBColumns() []int {
	seen := map[int]bool{}
	var cols []int
	for _, f := range m.DirtyFARs() {
		if f.BlockType() != device.BlockCLB {
			continue
		}
		col := f.Major() - 1
		if col < 0 || col >= m.Part.Cols || seen[col] {
			continue
		}
		seen[col] = true
		cols = append(cols, col)
	}
	sort.Ints(cols)
	return cols
}
