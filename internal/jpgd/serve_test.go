package jpgd_test

// Serving-layer tests: request coalescing (N identical requests, one flow
// execution), the hot-artifact cache (zero-rebuild repeats, ETag
// revalidation), admission control (deterministic shedding with
// Retry-After), and the graceful drain covering queued requests and
// coalesced followers. Everything runs under -race in CI.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/jpgd"
	"repro/internal/obs"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(500 * time.Microsecond)
	}
}

func buildBody(t *testing.T, seed int64) []byte {
	t.Helper()
	body, err := json.Marshal(jpgd.BuildRequest{
		Part:      "XCV50",
		Instances: "u1/=counter:bits=6;u2/=sbox:n=8,seed=3",
		Seed:      seed,
		Variant:   &jpgd.VariantRequest{Prefix: "u1/", Gen: "lfsr:bits=6", Seed: seed + 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

type result struct {
	status int
	xcache string
	etag   string
	body   []byte
	err    error
}

func post(ts string, path string, body []byte, hdr map[string]string) result {
	req, err := http.NewRequest("POST", ts+path, bytes.NewReader(body))
	if err != nil {
		return result{err: err}
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return result{err: err}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return result{
		status: resp.StatusCode,
		xcache: resp.Header.Get("X-Cache"),
		etag:   resp.Header.Get("ETag"),
		body:   b,
		err:    err,
	}
}

// TestCoalescedGeneratesSingleExecution is the concurrency acceptance test:
// N parallel identical generate requests answer byte-identical bodies with
// exactly one underlying flow execution, counter-asserted via the obs
// registry.
func TestCoalescedGeneratesSingleExecution(t *testing.T) {
	f := buildFixture(t)
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, jpgd.Config{Registry: reg})
	body := generateBody(t, f, nil)

	const n = 12
	results := make([]result, n)
	var start, wg sync.WaitGroup
	start.Add(1)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			start.Wait()
			results[i] = post(ts.URL, "/v1/generate", body, nil)
		}(i)
	}
	start.Done()
	wg.Wait()

	for i, r := range results {
		if r.err != nil {
			t.Fatalf("request %d: %v", i, r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, r.status, r.body)
		}
		if !bytes.Equal(r.body, results[0].body) {
			t.Fatalf("request %d body differs from request 0", i)
		}
		if r.etag == "" || r.etag != results[0].etag {
			t.Fatalf("request %d ETag %q differs from %q", i, r.etag, results[0].etag)
		}
	}
	if len(results[0].body) == 0 {
		t.Fatal("empty response bodies")
	}

	if execs := reg.GetCounter("jpgd.exec").Value(); execs != 1 {
		t.Fatalf("jpgd.exec = %d, want exactly 1 flow execution for %d requests", execs, n)
	}
	if gens := reg.GetCounter("jpgd.generates").Value(); gens != 1 {
		t.Fatalf("jpgd.generates = %d, want 1", gens)
	}
	// Every non-leader was served without executing: either it coalesced
	// onto the leader's flight or it hit the artifact cache.
	followers := reg.GetCounter("jpgd.coalesce.follower").Value()
	hits := reg.GetCounter("jpgd.artifact.hit").Value()
	if followers+hits != n-1 {
		t.Fatalf("followers(%d) + artifact hits(%d) != %d", followers, hits, n-1)
	}
}

// TestArtifactCacheServesRepeats pins the zero-rebuild hot path: a repeat
// request is answered from the artifact cache (X-Cache: hit), byte-identical,
// without another handler execution, and revalidates via If-None-Match.
func TestArtifactCacheServesRepeats(t *testing.T) {
	f := buildFixture(t)
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, jpgd.Config{Registry: reg})
	body := generateBody(t, f, nil)

	cold := post(ts.URL, "/v1/generate", body, nil)
	if cold.err != nil || cold.status != http.StatusOK {
		t.Fatalf("cold: %v status %d", cold.err, cold.status)
	}
	if cold.xcache != "miss" {
		t.Fatalf("cold X-Cache = %q, want miss", cold.xcache)
	}
	hot := post(ts.URL, "/v1/generate", body, nil)
	if hot.err != nil || hot.status != http.StatusOK {
		t.Fatalf("hot: %v status %d", hot.err, hot.status)
	}
	if hot.xcache != "hit" {
		t.Fatalf("hot X-Cache = %q, want hit", hot.xcache)
	}
	if !bytes.Equal(cold.body, hot.body) {
		t.Fatal("cached body differs from cold body")
	}
	if hot.etag == "" || hot.etag != cold.etag {
		t.Fatalf("ETags differ: %q vs %q", cold.etag, hot.etag)
	}
	if execs := reg.GetCounter("jpgd.exec").Value(); execs != 1 {
		t.Fatalf("jpgd.exec = %d after a hot repeat, want 1", execs)
	}

	// Conditional revalidation: a matching If-None-Match answers 304 with no
	// body.
	cond := post(ts.URL, "/v1/generate", body, map[string]string{"If-None-Match": cold.etag})
	if cond.err != nil {
		t.Fatal(cond.err)
	}
	if cond.status != http.StatusNotModified || len(cond.body) != 0 {
		t.Fatalf("revalidation: status %d, %d body bytes", cond.status, len(cond.body))
	}

	// The new serving counters are exposed on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"jpg_jpgd_artifact_hit", "jpg_jpgd_exec", "jpg_jpgd_shed"} {
		if !bytes.Contains(mb, []byte(want)) {
			t.Fatalf("/metrics lacks %s", want)
		}
	}
}

// TestAdmissionShedsDeterministically saturates a MaxInflight=1, no-queue
// server and checks the overflow request is rejected immediately with 429 +
// Retry-After, then succeeds once capacity frees up.
func TestAdmissionShedsDeterministically(t *testing.T) {
	buildFixture(t)
	reg := obs.NewRegistry()
	srv, ts := newTestServer(t, jpgd.Config{
		Registry: reg,
		Serve:    jpgd.ServeOptions{MaxInflight: 1, Queue: -1},
	})

	slow := make(chan result, 1)
	go func() { slow <- post(ts.URL, "/v1/build", buildBody(t, 11), nil) }()
	waitFor(t, "slow build to hold the admission slot", func() bool {
		return srv.ServeStats().Inflight == 1
	})

	req, _ := http.NewRequest("POST", ts.URL+"/v1/build", bytes.NewReader(buildBody(t, 12)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429: %s", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response lacks Retry-After")
	}
	if shed := reg.GetCounter("jpgd.shed.queue_full").Value(); shed != 1 {
		t.Fatalf("jpgd.shed.queue_full = %d, want 1", shed)
	}

	if r := <-slow; r.err != nil || r.status != http.StatusOK {
		t.Fatalf("slow build: %v status %d", r.err, r.status)
	}
	// Capacity is free again: the same request is now admitted.
	if r := post(ts.URL, "/v1/build", buildBody(t, 12), nil); r.status != http.StatusOK {
		t.Fatalf("retry after shed: status %d: %s", r.status, r.body)
	}
}

// TestDrainWaitsForQueuedAndCoalesced is the drain regression test: a
// graceful drain must wait for coalesced followers and queued-but-unadmitted
// requests — not just directly executing handlers — while shedding new
// arrivals.
func TestDrainWaitsForQueuedAndCoalesced(t *testing.T) {
	buildFixture(t)
	reg := obs.NewRegistry()
	srv, ts := newTestServer(t, jpgd.Config{
		Registry: reg,
		Serve:    jpgd.ServeOptions{MaxInflight: 1, Queue: 8},
	})

	// A: executing leader (holds the only slot).
	leaderBody := buildBody(t, 21)
	resA := make(chan result, 1)
	go func() { resA <- post(ts.URL, "/v1/build", leaderBody, nil) }()
	waitFor(t, "leader to be admitted", func() bool {
		return srv.ServeStats().Inflight == 1
	})

	// B: identical request — a coalesced follower of A.
	resB := make(chan result, 1)
	go func() { resB <- post(ts.URL, "/v1/build", leaderBody, nil) }()
	// C: distinct request — queued behind A's slot.
	resC := make(chan result, 1)
	go func() { resC <- post(ts.URL, "/v1/build", buildBody(t, 22), nil) }()
	waitFor(t, "a request to queue for admission", func() bool {
		return srv.ServeStats().Queued == 1
	})
	waitFor(t, "all three requests to enter the pipeline", func() bool {
		return reg.GetCounter("jpgd.requests").Value() == 3
	})

	srv.BeginDrain()

	// New arrivals are shed with 503 while the pipeline drains.
	shed := post(ts.URL, "/v1/build", buildBody(t, 23), nil)
	if shed.status != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d, want 503", shed.status)
	}
	if n := reg.GetCounter("jpgd.shed.draining").Value(); n != 1 {
		t.Fatalf("jpgd.shed.draining = %d, want 1", n)
	}

	dctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Drain returned, so server-side nothing may remain queued or executing,
	// and the queued request must have been admitted and run (exec counts the
	// leader A and the queued C; follower B shares A's execution).
	if st := srv.ServeStats(); st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("after drain: inflight=%d queued=%d, want 0/0", st.Inflight, st.Queued)
	}
	if execs := reg.GetCounter("jpgd.exec").Value(); execs != 2 {
		t.Fatalf("jpgd.exec = %d after drain, want 2 (drain returned before the queued request ran?)", execs)
	}

	// The clients observe their answers; a short grace period covers client
	// goroutine scheduling (the server has already written every response).
	for name, ch := range map[string]chan result{"leader": resA, "follower": resB, "queued": resC} {
		select {
		case r := <-ch:
			if r.err != nil || r.status != http.StatusOK {
				t.Fatalf("%s after drain: %v status %d: %s", name, r.err, r.status, r.body)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s request never completed", name)
		}
	}
}

// TestRequestTimeoutAnswers503 bounds a request with a deadline far below a
// cold build's cost and checks the shed is a 503 + Retry-After, not a 500.
func TestRequestTimeoutAnswers503(t *testing.T) {
	buildFixture(t)
	_, ts := newTestServer(t, jpgd.Config{
		Serve: jpgd.ServeOptions{RequestTimeout: time.Millisecond},
	})
	r := post(ts.URL, "/v1/build", buildBody(t, 31), nil)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", r.status, r.body)
	}
}

func TestServeOptionsFromEnv(t *testing.T) {
	t.Setenv(jpgd.EnvMaxInflight, "3")
	t.Setenv(jpgd.EnvQueue, "0")
	t.Setenv(jpgd.EnvArtifactCacheMB, "2")
	t.Setenv(jpgd.EnvCoalesce, "off")
	t.Setenv(jpgd.EnvRequestTimeout, "250ms")
	o := jpgd.ServeOptionsFromEnv()
	if o.MaxInflight != 3 {
		t.Fatalf("MaxInflight = %d", o.MaxInflight)
	}
	if o.Queue >= 0 {
		t.Fatalf("Queue = %d, want negative (explicit no-queue)", o.Queue)
	}
	if o.ArtifactCacheBytes != 2<<20 {
		t.Fatalf("ArtifactCacheBytes = %d", o.ArtifactCacheBytes)
	}
	if !o.NoCoalesce {
		t.Fatal("JPGD_COALESCE=off did not disable coalescing")
	}
	if o.RequestTimeout != 250*time.Millisecond {
		t.Fatalf("RequestTimeout = %v", o.RequestTimeout)
	}
}
