package jpgd_test

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/jpgd"
	"repro/internal/obs"
	"repro/internal/obs/flightrec"
	jpglog "repro/internal/obs/log"
)

// fixture is the shared Phase 1 + Phase 2 build the HTTP tests replay:
// a two-module XCV50 base design and one LFSR variant for u1/.
type fixture struct {
	base    *flow.BaseBuild
	variant *flow.Artifacts
}

var (
	fixOnce sync.Once
	fix     fixture
	fixErr  error
)

func buildFixture(t *testing.T) fixture {
	t.Helper()
	fixOnce.Do(func() {
		p := device.MustByName("XCV50")
		base, err := flow.BuildBase(context.Background(), p, []designs.Instance{
			{Prefix: "u1/", Gen: designs.Counter{Bits: 6}},
			{Prefix: "u2/", Gen: designs.SBoxBank{N: 8, Seed: 3}},
		}, flow.Options{Seed: 1})
		if err != nil {
			fixErr = err
			return
		}
		variant, err := flow.BuildVariant(context.Background(), base, "u1/", designs.LFSR{Bits: 6}, flow.Options{Seed: 2})
		if err != nil {
			fixErr = err
			return
		}
		fix = fixture{base: base, variant: variant}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fix
}

func generateBody(t *testing.T, f fixture, download *jpgd.DownloadRequest) []byte {
	t.Helper()
	body, err := json.Marshal(jpgd.GenerateRequest{
		Base:     base64.StdEncoding.EncodeToString(f.base.Bitstream),
		XDL:      f.variant.XDL,
		UCF:      f.variant.UCF,
		Name:     "u1_lfsr",
		Download: download,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// syncBuffer is a concurrency-safe log sink for test servers.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func newTestServer(t *testing.T, cfg jpgd.Config) (*jpgd.Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	srv := jpgd.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestHealthAndReadiness(t *testing.T) {
	srv, ts := newTestServer(t, jpgd.Config{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/readyz status %d", resp.StatusCode)
	}

	srv.SetReady(false)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz status %d, body %q", resp.StatusCode, body)
	}
}

func TestMetricsEndpointReflectsRequests(t *testing.T) {
	f := buildFixture(t)
	_, ts := newTestServer(t, jpgd.Config{})

	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(generateBody(t, f, nil)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("generate status %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	out := string(body)
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE jpg_jpgd_requests counter",
		"jpg_jpgd_requests 1",
		"jpg_jpgd_generates 1",
		"# TYPE jpg_jpgd_request_ns histogram",
		`jpg_jpgd_request_ns_bucket{le="+Inf"} 1`,
		"# TYPE jpg_jpgd_inflight gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics lacks %q:\n%s", want, out)
		}
	}
}

func TestGenerateMatchesDirectToolPath(t *testing.T) {
	f := buildFixture(t)
	_, ts := newTestServer(t, jpgd.Config{})

	// Direct path: the CLI's sequence against the same inputs.
	proj, err := core.NewProject(f.base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	m, err := proj.AddModule("u1_lfsr", f.variant.XDL, f.variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	want, err := proj.GeneratePartial(m, core.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest("POST", ts.URL+"/v1/generate", bytes.NewReader(generateBody(t, f, nil)))
	req.Header.Set("X-Request-ID", "test-gen-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	// Correlation travels in the header only; the body is a pure function
	// of the request so coalesced/cached deliveries can share it.
	if got := resp.Header.Get("X-Request-ID"); got != "test-gen-1" {
		t.Fatalf("X-Request-ID echo = %q", got)
	}
	var out jpgd.GenerateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bitstream, want.Bitstream) {
		t.Fatalf("HTTP partial differs from direct path: %d vs %d bytes", len(out.Bitstream), len(want.Bitstream))
	}
	if out.Frames != len(want.FARs) || out.FramesChanged != want.FramesChanged {
		t.Fatalf("frame counts differ: %+v vs %d/%d", out, len(want.FARs), want.FramesChanged)
	}
	if out.Part != "XCV50" || out.Region != want.Region.String() {
		t.Fatalf("metadata wrong: %+v", out)
	}
}

func TestGenerateWithDownloadAndFaults(t *testing.T) {
	f := buildFixture(t)
	_, ts := newTestServer(t, jpgd.Config{})

	// First download attempt is faulted; the reliability layer retries.
	dl := &jpgd.DownloadRequest{Retries: 3, Faults: "first=1,mode=error,seed=7"}
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(generateBody(t, f, dl)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out jpgd.GenerateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Download == nil {
		t.Fatal("download result missing")
	}
	if out.Download.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one injected fault, one retry)", out.Download.Attempts)
	}
	if out.Download.FramesWritten != out.Frames {
		t.Fatalf("frames written %d != carried %d", out.Download.FramesWritten, out.Frames)
	}
}

func TestConcurrentGenerates(t *testing.T) {
	f := buildFixture(t)
	_, ts := newTestServer(t, jpgd.Config{})
	body := generateBody(t, f, nil)

	const n = 8
	results := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var out jpgd.GenerateResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs[i] = err
				return
			}
			results[i] = out.Bitstream
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("request %d produced a different bitstream", i)
		}
	}
	if len(results[0]) == 0 {
		t.Fatal("empty bitstreams")
	}
}

// TestLogCorrelation is the acceptance check: one request's structured log
// lines — HTTP entry, flow stages, cache events, partial generation and
// download events — all carry the same correlation ID.
func TestLogCorrelation(t *testing.T) {
	f := buildFixture(t)
	var logs syncBuffer
	_, ts := newTestServer(t, jpgd.Config{
		Logger: jpglog.New(&logs, slog.LevelDebug),
		Cache:  cache.New(cache.Options{NoDisk: true}),
	})

	// A build request drives the CAD flow (map/place/route/bitgen stages +
	// stage-cache lookups) under one ID.
	buildBody, _ := json.Marshal(jpgd.BuildRequest{
		Part:      "XCV50",
		Instances: "u1/=counter:bits=6;u2/=sbox:n=8,seed=3",
		Seed:      1,
		Variant:   &jpgd.VariantRequest{Prefix: "u1/", Gen: "lfsr:bits=6", Seed: 2},
	})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/build", bytes.NewReader(buildBody))
	req.Header.Set("X-Request-ID", "corr-build")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("build status %d", resp.StatusCode)
	}

	// A generate-with-download request drives partial generation and the
	// board download under another ID.
	req, _ = http.NewRequest("POST", ts.URL+"/v1/generate",
		bytes.NewReader(generateBody(t, f, &jpgd.DownloadRequest{Retries: 2})))
	req.Header.Set("X-Request-ID", "corr-gen")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("generate status %d", resp.StatusCode)
	}

	byID := map[string]map[string]bool{} // request_id -> set of msg
	for _, line := range strings.Split(strings.TrimSpace(logs.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		id, _ := m["request_id"].(string)
		msg, _ := m["msg"].(string)
		if id == "" {
			t.Fatalf("log line without request_id: %s", line)
		}
		if byID[id] == nil {
			byID[id] = map[string]bool{}
		}
		byID[id][msg] = true
	}
	if len(byID) != 2 {
		t.Fatalf("expected exactly 2 correlation IDs, got %v", byID)
	}
	for _, msg := range []string{"flow.stage", "cache", "core.partial", "http.request"} {
		if !byID["corr-build"][msg] {
			t.Fatalf("build request logs lack %q: %v", msg, byID["corr-build"])
		}
	}
	for _, msg := range []string{"core.partial", "download", "board.download", "http.request"} {
		if !byID["corr-gen"][msg] {
			t.Fatalf("generate request logs lack %q: %v", msg, byID["corr-gen"])
		}
	}
}

func TestFlightRecorderEndpoint(t *testing.T) {
	f := buildFixture(t)
	rec := flightrec.New(256)
	_, ts := newTestServer(t, jpgd.Config{Recorder: rec})

	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(generateBody(t, f, nil)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	dresp, err := http.Get(ts.URL + "/debug/flightrec")
	if err != nil {
		t.Fatal(err)
	}
	var dump flightrec.Dump
	if err := json.NewDecoder(dresp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dump.TotalSpans == 0 {
		t.Fatal("flight recorder saw no spans")
	}
	var names []string
	for _, s := range dump.Spans {
		names = append(names, s.Rec.Name)
	}
	found := false
	for _, n := range names {
		if n == "jpgd.request" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no jpgd.request span in dump: %v", names)
	}

	cresp, err := http.Get(ts.URL + "/debug/flightrec?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	trace, _ := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	var events []map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(trace), &events); err != nil {
		t.Fatalf("chrome dump not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("chrome dump empty")
	}
}

func TestGenerateRejectsBadRequests(t *testing.T) {
	rec := flightrec.New(64)
	_, ts := newTestServer(t, jpgd.Config{Recorder: rec})

	cases := []struct {
		name, body string
		status     int
	}{
		{"empty", `{}`, http.StatusBadRequest},
		{"bad json", `{`, http.StatusBadRequest},
		{"bad base64", `{"base":"!!!","xdl":"x","ucf":"u"}`, http.StatusBadRequest},
		{"unknown field", `{"bogus":1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: error envelope not JSON: %v", tc.name, err)
		}
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		if e.Error == "" || resp.Header.Get("X-Request-ID") == "" {
			t.Fatalf("%s: bad error envelope %+v (id header %q)", tc.name, e, resp.Header.Get("X-Request-ID"))
		}
		resp.Body.Close()
	}

	// GET is not allowed.
	resp, err := http.Get(ts.URL + "/v1/generate")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", resp.StatusCode)
	}

	if rec.Dump().TotalErrors == 0 {
		t.Fatal("request failures not recorded in the flight recorder")
	}
}

func TestBuildEndpoint(t *testing.T) {
	f := buildFixture(t)
	_, ts := newTestServer(t, jpgd.Config{})

	body, _ := json.Marshal(jpgd.BuildRequest{
		Part:      "XCV50",
		Instances: "u1/=counter:bits=6;u2/=sbox:n=8,seed=3",
		Seed:      1,
		Variant:   &jpgd.VariantRequest{Prefix: "u1/", Gen: "lfsr:bits=6", Seed: 2},
	})
	resp, err := http.Post(ts.URL+"/v1/build", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var out jpgd.BuildResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Part != "XCV50" || out.BaseBytes == 0 || len(out.Regions) != 2 {
		t.Fatalf("build response: %+v", out)
	}
	if out.Variant == nil || out.Variant.Bytes == 0 {
		t.Fatalf("variant result missing: %+v", out)
	}
	// The server-side build is the same deterministic flow the fixture ran:
	// the variant's partial must match the partial generated locally from
	// the fixture's artifacts.
	proj, err := core.NewProject(f.base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	m, err := proj.AddModule("u1_lfsr", f.variant.XDL, f.variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	want, err := proj.GeneratePartial(m, core.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Variant.Bitstream, want.Bitstream) {
		t.Fatalf("server-built partial differs from local build: %d vs %d bytes",
			len(out.Variant.Bitstream), len(want.Bitstream))
	}
}

// TestIngestionHardening pins the decode-side fixes on the ingestion path:
// descriptive 400s for empty bodies and trailing JSON, 413 (not 400, and
// never 500) when the body trips MaxBytesReader.
func TestIngestionHardening(t *testing.T) {
	_, ts := newTestServer(t, jpgd.Config{MaxBodyBytes: 256})

	cases := []struct {
		name, body string
		status     int
		want       string // substring of the error message
	}{
		{"empty-body", "", http.StatusBadRequest, "empty request body"},
		{"whitespace-body", "   \n", http.StatusBadRequest, "empty request body"},
		{"trailing-document", `{"xdl":"x"}{"xdl":"y"}`, http.StatusBadRequest, "after the JSON document"},
		{"trailing-junk", `{"xdl":"x"} garbage`, http.StatusBadRequest, "after the JSON document"},
		{"unknown-field", `{"bogus":1}`, http.StatusBadRequest, "unknown field"},
		{"oversized", `{"base":"` + strings.Repeat("A", 512) + `"}`,
			http.StatusRequestEntityTooLarge, "exceeds 256 bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("error envelope not JSON: %v", err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (error %q)", resp.StatusCode, tc.status, e.Error)
			}
			if !strings.Contains(e.Error, tc.want) {
				t.Fatalf("error %q does not mention %q", e.Error, tc.want)
			}
		})
	}
}

func TestVerifyEndpoint(t *testing.T) {
	f := buildFixture(t)
	_, ts := newTestServer(t, jpgd.Config{})

	post := func(t *testing.T, req jpgd.VerifyRequest) (int, jpgd.VerifyResponse) {
		t.Helper()
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var vr jpgd.VerifyResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
				t.Fatal(err)
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		return resp.StatusCode, vr
	}

	t.Run("clean-full", func(t *testing.T) {
		status, vr := post(t, jpgd.VerifyRequest{
			Bitstream: base64.StdEncoding.EncodeToString(f.base.Bitstream),
		})
		if status != http.StatusOK || !vr.OK {
			t.Fatalf("status %d, ok=%v, findings %+v", status, vr.OK, vr.Findings)
		}
		if !vr.Started || vr.FramesWritten == 0 {
			t.Fatalf("unexpected verdict: %+v", vr)
		}
	})
	t.Run("corrupted-full", func(t *testing.T) {
		bad := append([]byte(nil), f.base.Bitstream...)
		bad[len(bad)/2] ^= 0x10
		status, vr := post(t, jpgd.VerifyRequest{
			Bitstream: base64.StdEncoding.EncodeToString(bad),
		})
		if status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		if vr.OK {
			t.Fatal("corrupted stream verified OK")
		}
		found := false
		for _, fd := range vr.Findings {
			if fd.Code == "crc-mismatch" {
				found = true
			}
		}
		if !found {
			t.Fatalf("no crc-mismatch finding: %+v", vr.Findings)
		}
	})
	t.Run("partial-against-base", func(t *testing.T) {
		// Generate a partial through the API, then verify it against its base.
		resp, err := http.Post(ts.URL+"/v1/generate", "application/json",
			bytes.NewReader(generateBody(t, f, nil)))
		if err != nil {
			t.Fatal(err)
		}
		var gr jpgd.GenerateResponse
		if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("generate status %d", resp.StatusCode)
		}
		status, vr := post(t, jpgd.VerifyRequest{
			Bitstream: base64.StdEncoding.EncodeToString(gr.Bitstream),
			Base:      base64.StdEncoding.EncodeToString(f.base.Bitstream),
		})
		if status != http.StatusOK || !vr.OK {
			t.Fatalf("status %d, ok=%v, findings %+v", status, vr.OK, vr.Findings)
		}
		if vr.Started {
			t.Fatal("partial reported as starting the device")
		}
	})
	t.Run("full-as-partial", func(t *testing.T) {
		status, vr := post(t, jpgd.VerifyRequest{
			Bitstream: base64.StdEncoding.EncodeToString(f.base.Bitstream),
			Base:      base64.StdEncoding.EncodeToString(f.base.Bitstream),
		})
		if status != http.StatusOK || vr.OK {
			t.Fatalf("full stream as partial: status %d, ok=%v", status, vr.OK)
		}
	})
	t.Run("bad-envelope", func(t *testing.T) {
		if status, _ := post(t, jpgd.VerifyRequest{}); status != http.StatusBadRequest {
			t.Fatalf("missing bitstream: status %d", status)
		}
		if status, _ := post(t, jpgd.VerifyRequest{Bitstream: "!!!"}); status != http.StatusBadRequest {
			t.Fatalf("bad base64: status %d", status)
		}
	})
}

// TestGenerateVerifyOption runs /v1/generate with verify=true and checks the
// result is byte-identical to an unverified run.
func TestGenerateVerifyOption(t *testing.T) {
	f := buildFixture(t)
	_, ts := newTestServer(t, jpgd.Config{})

	gen := func(t *testing.T, verify bool) jpgd.GenerateResponse {
		t.Helper()
		body, err := json.Marshal(jpgd.GenerateRequest{
			Base:   base64.StdEncoding.EncodeToString(f.base.Bitstream),
			XDL:    f.variant.XDL,
			UCF:    f.variant.UCF,
			Name:   "u1_lfsr",
			Verify: verify,
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		var gr jpgd.GenerateResponse
		if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
			t.Fatal(err)
		}
		return gr
	}

	plain := gen(t, false)
	verified := gen(t, true)
	if !bytes.Equal(plain.Bitstream, verified.Bitstream) {
		t.Fatal("verify=true changed the generated bitstream")
	}
}
