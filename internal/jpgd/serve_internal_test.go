package jpgd

// White-box pins for the hot-artifact path: the deliver fast path must stay
// allocation-flat (no body-sized copies per request), and the byte-bounded
// LRU must evict strictly from the cold tail. BenchmarkHotArtifactRequest is
// the allocs-per-op benchmark the serving satellite pins against.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/cache"
	"repro/internal/obs"
)

type nullResponseWriter struct{ hdr http.Header }

func (w *nullResponseWriter) Header() http.Header         { return w.hdr }
func (w *nullResponseWriter) WriteHeader(int)             {}
func (w *nullResponseWriter) Write(b []byte) (int, error) { return len(b), nil }

// TestDeliverAllocsFlat pins deliver to header-only allocations: the body is
// written from the shared artifact slice, never copied, so allocs/op stays a
// small constant regardless of body size.
func TestDeliverAllocsFlat(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry()})
	art := &artifact{
		status: http.StatusOK,
		ctype:  "application/json",
		etag:   `"deadbeef"`,
		body:   make([]byte, 256<<10),
	}
	w := &nullResponseWriter{hdr: make(http.Header)}
	r := httptest.NewRequest("POST", "/v1/generate", nil)

	allocs := testing.AllocsPerRun(200, func() {
		s.deliver(w, r, art, "hit")
	})
	// Header.Set allocates one []string per header plus the Itoa string;
	// anything above ~8 means a body copy or encoder snuck back in.
	if allocs > 8 {
		t.Fatalf("deliver allocates %.1f objects/op for a 256KB body, want <= 8", allocs)
	}
}

func TestArtifactCacheEvictsFromTail(t *testing.T) {
	reg := obs.NewRegistry()
	// Budget fits two entries (body + artOverhead accounting) but not three.
	c := newArtifactCache(2*(1024+artOverhead), reg)
	mk := func(name string) (k cache.Key) { copy(k[:], name); return }
	body := make([]byte, 1024)

	c.put(mk("a"), &artifact{status: 200, body: body})
	c.put(mk("b"), &artifact{status: 200, body: body})
	// Touch "a" so "b" is the LRU tail when "c" forces an eviction.
	if _, ok := c.get(mk("a")); !ok {
		t.Fatal("artifact a missing before eviction")
	}
	c.put(mk("c"), &artifact{status: 200, body: body})

	if _, ok := c.get(mk("b")); ok {
		t.Fatal("LRU tail b survived eviction")
	}
	for _, want := range []string{"a", "c"} {
		if _, ok := c.get(mk(want)); !ok {
			t.Fatalf("artifact %s evicted, want only the tail dropped", want)
		}
	}
	if ev := reg.GetCounter("jpgd.artifact.evict").Value(); ev != 1 {
		t.Fatalf("jpgd.artifact.evict = %d, want 1", ev)
	}
}

func TestPipelineDefaults(t *testing.T) {
	p := newPipeline(ServeOptions{}, obs.NewRegistry())
	if p.opts.MaxInflight < 8 {
		t.Fatalf("default MaxInflight = %d, want >= 8", p.opts.MaxInflight)
	}
	if p.opts.Queue != 4*p.opts.MaxInflight {
		t.Fatalf("default Queue = %d, want 4x MaxInflight", p.opts.Queue)
	}
	if p.artifacts == nil {
		t.Fatal("artifact cache disabled by default")
	}
	if p.opts.ArtifactCacheBytes != 64<<20 {
		t.Fatalf("default artifact budget = %d, want 64MB", p.opts.ArtifactCacheBytes)
	}

	off := newPipeline(ServeOptions{Queue: -1, ArtifactCacheBytes: -1}, obs.NewRegistry())
	if off.opts.Queue != 0 {
		t.Fatalf("Queue=-1 normalised to %d, want 0 (no waiting)", off.opts.Queue)
	}
	if off.artifacts != nil {
		t.Fatal("ArtifactCacheBytes=-1 did not disable the cache")
	}
}

// BenchmarkHotArtifactRequest measures the full handler path for a
// hot-artifact request — middleware, body read, keying, cache lookup,
// deliver — with the artifact pre-seeded so no flow executes. This is the
// allocs-per-op pin for the zero-rebuild serving path: run with -benchmem
// and compare B/op against the body size (it must be far below it).
func BenchmarkHotArtifactRequest(b *testing.B) {
	s := New(Config{Registry: obs.NewRegistry()})
	h := s.Handler()

	body := bytes.Repeat([]byte("x"), 128<<10)
	key := requestKey("generate", body)
	s.pipe.artifacts.put(key, &artifact{
		status: http.StatusOK,
		ctype:  "application/json",
		etag:   `"` + key.String()[:32] + `"`,
		body:   bytes.Repeat([]byte("y"), 128<<10),
	})

	w := &nullResponseWriter{hdr: make(http.Header)}
	rd := bytes.NewReader(body)
	req := httptest.NewRequest("POST", "/v1/generate", nil)

	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(body)
		req.Body = io.NopCloser(rd)
		h.ServeHTTP(w, req)
	}
}
