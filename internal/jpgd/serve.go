package jpgd

// This file is the throughput pipeline in front of the API handlers: the
// serving half of the daemon. Three mechanisms separate offered load from
// flow executions:
//
//  1. Hot-artifact cache. The fully-encoded response body of a successful
//     /v1/generate or /v1/build request is kept in a byte-bounded LRU keyed
//     by a content hash of (route, request body). A repeat request is served
//     with a single Write of the shared bytes — no JSON decode, no flow, no
//     per-request body allocation — with a correct Content-Length, a
//     deterministic ETag, and If-None-Match revalidation.
//
//  2. Request coalescing. Concurrent identical requests single-flight on the
//     same key (cache.Group): one leader executes the handler, every
//     follower shares the encoded artifact. N simultaneous requests for the
//     same partial cost one flow execution.
//
//  3. Admission control. Handler executions pass a bounded semaphore
//     (parallel.Semaphore): MaxInflight requests run, Queue more wait
//     (context-aware, so deadlines shed waiters), and everything beyond is
//     rejected deterministically with 429/503 + Retry-After instead of
//     piling up goroutines. Cache hits and coalesced followers never consume
//     a slot, so admission bounds real work, not traffic.
//
// Responses on these routes are pure functions of the request body — the
// correlation ID travels only in the X-Request-ID header — so the cold,
// coalesced, and cached paths answer byte-identical bodies.

import (
	"bytes"
	"container/list"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Environment variables tuning the serving pipeline (flag defaults in
// cmd/jpgd; jpg -serve reads them directly).
const (
	// EnvMaxInflight caps concurrently executing API requests
	// (JPGD_MAX_INFLIGHT; default 4×GOMAXPROCS, minimum 8).
	EnvMaxInflight = "JPGD_MAX_INFLIGHT"
	// EnvQueue caps requests waiting for an execution slot (JPGD_QUEUE;
	// default 4×MaxInflight, 0 disables waiting entirely).
	EnvQueue = "JPGD_QUEUE"
	// EnvArtifactCacheMB sizes the hot-artifact LRU in MiB
	// (JPGD_ARTIFACT_CACHE_MB; default 64, 0 disables it).
	EnvArtifactCacheMB = "JPGD_ARTIFACT_CACHE_MB"
	// EnvCoalesce toggles request coalescing (JPGD_COALESCE; "0"/"off"/
	// "false" disables, anything else leaves it on).
	EnvCoalesce = "JPGD_COALESCE"
	// EnvRequestTimeout bounds each API request end to end
	// (JPGD_REQUEST_TIMEOUT, a Go duration; unset means no deadline).
	EnvRequestTimeout = "JPGD_REQUEST_TIMEOUT"
)

// ServeOptions tunes the throughput pipeline. The zero value selects the
// defaults documented on each field; explicit negatives disable the
// corresponding mechanism.
type ServeOptions struct {
	// MaxInflight caps concurrently executing API requests (admission
	// slots). <= 0 selects 4×GOMAXPROCS with a floor of 8.
	MaxInflight int
	// Queue caps requests waiting for an admission slot. 0 selects
	// 4×MaxInflight; negative disables waiting (full = immediate shed).
	Queue int
	// ArtifactCacheBytes bounds the hot-artifact LRU. 0 selects 64 MiB;
	// negative disables the artifact cache.
	ArtifactCacheBytes int64
	// NoCoalesce disables single-flight request coalescing.
	NoCoalesce bool
	// RequestTimeout bounds each API request end to end via its context
	// (0 = no deadline). Expired requests answer 503 + Retry-After.
	RequestTimeout time.Duration
}

// ServeOptionsFromEnv returns options overridden by the JPGD_* environment
// variables (unparsable values keep the default).
func ServeOptionsFromEnv() ServeOptions {
	var o ServeOptions
	if n, err := strconv.Atoi(os.Getenv(EnvMaxInflight)); err == nil {
		o.MaxInflight = n
	}
	if n, err := strconv.Atoi(os.Getenv(EnvQueue)); err == nil {
		if n == 0 {
			n = -1 // an explicit JPGD_QUEUE=0 means "no waiting"
		}
		o.Queue = n
	}
	if n, err := strconv.Atoi(os.Getenv(EnvArtifactCacheMB)); err == nil {
		if n <= 0 {
			o.ArtifactCacheBytes = -1
		} else {
			o.ArtifactCacheBytes = int64(n) << 20
		}
	}
	switch os.Getenv(EnvCoalesce) {
	case "0", "off", "false":
		o.NoCoalesce = true
	}
	if d, err := time.ParseDuration(os.Getenv(EnvRequestTimeout)); err == nil && d > 0 {
		o.RequestTimeout = d
	}
	return o
}

// pipeline is the serving state assembled from ServeOptions.
type pipeline struct {
	opts      ServeOptions
	sem       *parallel.Semaphore
	flights   cache.Group
	artifacts *artifactCache // nil when disabled
	wg        sync.WaitGroup // every API request: queued, waiting, executing
	draining  atomic.Bool

	mExec         *obs.Counter
	mCoalLeader   *obs.Counter
	mCoalFollower *obs.Counter
	mShed         *obs.Counter
	mShedQueue    *obs.Counter
	mShedDeadline *obs.Counter
	mShedDraining *obs.Counter
	mAdmitted     *obs.Counter
	mAdmitWaitNS  *obs.Histogram
	mInflightEx   *obs.Gauge
	mQueued       *obs.Gauge
}

func newPipeline(opts ServeOptions, reg *obs.Registry) *pipeline {
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 4 * runtime.GOMAXPROCS(0)
		if opts.MaxInflight < 8 {
			opts.MaxInflight = 8
		}
	}
	switch {
	case opts.Queue == 0:
		opts.Queue = 4 * opts.MaxInflight
	case opts.Queue < 0:
		opts.Queue = 0
	}
	if opts.ArtifactCacheBytes == 0 {
		opts.ArtifactCacheBytes = 64 << 20
	}
	p := &pipeline{
		opts: opts,
		sem:  parallel.NewSemaphore(opts.MaxInflight, opts.Queue),

		mExec:         reg.GetCounter("jpgd.exec"),
		mCoalLeader:   reg.GetCounter("jpgd.coalesce.leader"),
		mCoalFollower: reg.GetCounter("jpgd.coalesce.follower"),
		mShed:         reg.GetCounter("jpgd.shed"),
		mShedQueue:    reg.GetCounter("jpgd.shed.queue_full"),
		mShedDeadline: reg.GetCounter("jpgd.shed.deadline"),
		mShedDraining: reg.GetCounter("jpgd.shed.draining"),
		mAdmitted:     reg.GetCounter("jpgd.admitted"),
		mAdmitWaitNS:  reg.GetHistogram("jpgd.admit.wait_ns"),
		mInflightEx:   reg.GetGauge("jpgd.admit.inflight"),
		mQueued:       reg.GetGauge("jpgd.admit.queued"),
	}
	if opts.ArtifactCacheBytes > 0 {
		p.artifacts = newArtifactCache(opts.ArtifactCacheBytes, reg)
	}
	return p
}

// errDraining sheds requests arriving after BeginDrain.
var errDraining = errors.New("server is draining")

// admit takes an execution slot, waiting in the bounded queue under the
// request's context. The queue-depth gauge tracks the wait.
func (p *pipeline) admit(ctx context.Context) error {
	if p.sem.TryAcquire() {
		p.mAdmitted.Inc()
		p.mInflightEx.Set(int64(p.sem.InFlight()))
		return nil
	}
	t0 := time.Now()
	p.mQueued.Set(p.sem.Queued() + 1)
	err := p.sem.Acquire(ctx)
	p.mQueued.Set(p.sem.Queued())
	if err != nil {
		return err
	}
	p.mAdmitWaitNS.Observe(time.Since(t0).Nanoseconds())
	p.mAdmitted.Inc()
	p.mInflightEx.Set(int64(p.sem.InFlight()))
	return nil
}

func (p *pipeline) release() {
	p.sem.Release()
	p.mInflightEx.Set(int64(p.sem.InFlight()))
}

// ServeStats is a point-in-time snapshot of the admission state.
type ServeStats struct {
	Inflight int   `json:"inflight"`
	Queued   int64 `json:"queued"`
	Draining bool  `json:"draining"`
}

// ServeStats reports the pipeline's live admission state (held execution
// slots, queued waiters, drain flag).
func (s *Server) ServeStats() ServeStats {
	return ServeStats{
		Inflight: s.pipe.sem.InFlight(),
		Queued:   s.pipe.sem.Queued(),
		Draining: s.pipe.draining.Load(),
	}
}

// BeginDrain flips readiness and starts shedding newly arriving API requests
// with 503 + Retry-After. Requests already in the pipeline — executing,
// queued for admission, or waiting as coalesced followers — are unaffected
// and complete normally; Drain waits for them.
func (s *Server) BeginDrain() {
	s.ready.Store(false)
	s.pipe.draining.Store(true)
}

// Drain blocks until every request in the pipeline (including queued and
// coalesced ones) has been answered, or ctx ends.
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.pipe.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// dispatch routes an instrumented API request through the pipeline:
// drain shedding, then the coalescing/artifact path for the deterministic
// POST routes, plain admission for everything else.
func (s *Server) dispatch(route string, w http.ResponseWriter, r *http.Request, h http.HandlerFunc) {
	ctx := r.Context()
	if s.pipe.draining.Load() {
		s.shedFor(ctx, w, route, errDraining)
		return
	}
	if (route == "generate" || route == "build") && r.Method == http.MethodPost {
		s.serveCoalesced(route, w, r, h)
		return
	}
	if err := s.pipe.admit(ctx); err != nil {
		s.shedFor(ctx, w, route, err)
		return
	}
	defer s.pipe.release()
	s.pipe.mExec.Inc()
	h(w, r)
}

// serveCoalesced is the hot path: artifact-cache lookup, then single-flight
// execution under admission control.
func (s *Server) serveCoalesced(route string, w http.ResponseWriter, r *http.Request, h http.HandlerFunc) {
	ctx := r.Context()
	body, status, err := readBody(r)
	if err != nil {
		s.fail(ctx, w, route, status, err)
		return
	}
	defer putBuf(body)
	key := requestKey(route, body.Bytes())
	p := s.pipe

	if p.artifacts != nil {
		if art, ok := p.artifacts.get(key); ok {
			s.deliver(w, r, art, "hit")
			return
		}
	}

	exec := func() (any, error) {
		if err := p.admit(ctx); err != nil {
			return nil, err
		}
		defer p.release()
		p.mExec.Inc()
		art := s.capture(ctx, r, body.Bytes(), key, h)
		if art.status == http.StatusOK && p.artifacts != nil {
			p.artifacts.put(key, art)
		}
		return art, nil
	}

	if p.opts.NoCoalesce {
		v, err := exec()
		if err != nil {
			s.shedFor(ctx, w, route, err)
			return
		}
		s.deliver(w, r, v.(*artifact), "miss")
		return
	}

	v, shared, err := p.flights.Do(ctx, key, exec)
	if err != nil {
		// This caller either led and was shed at admission, or its own
		// context ended while waiting on the leader.
		s.shedFor(ctx, w, route, err)
		return
	}
	src := "miss"
	if shared {
		src = "coalesced"
		p.mCoalFollower.Inc()
	} else {
		p.mCoalLeader.Inc()
	}
	s.deliver(w, r, v.(*artifact), src)
}

// shedFor answers a request rejected by the pipeline: 429 for a full queue,
// 503 for deadlines and draining, always with Retry-After so well-behaved
// clients back off deterministically.
func (s *Server) shedFor(ctx context.Context, w http.ResponseWriter, route string, err error) {
	p := s.pipe
	p.mShed.Inc()
	status := http.StatusServiceUnavailable
	switch {
	case errors.Is(err, parallel.ErrQueueFull):
		status = http.StatusTooManyRequests
		p.mShedQueue.Inc()
	case errors.Is(err, errDraining):
		p.mShedDraining.Inc()
	default:
		p.mShedDeadline.Inc()
	}
	w.Header().Set("Retry-After", "1")
	s.fail(ctx, w, route, status, err)
}

// capture runs the handler against an in-memory response writer and freezes
// the result as a shareable artifact. The artifact's ETag derives from the
// request key: on these routes the body is a pure function of the request,
// so the key identifies the representation.
func (s *Server) capture(ctx context.Context, r *http.Request, body []byte, key cache.Key, h http.HandlerFunc) *artifact {
	buf := getBuf()
	defer putBuf(buf)
	cw := &captureWriter{hdr: make(http.Header, 4), buf: buf}
	r.Body = io.NopCloser(bytes.NewReader(body))
	h(cw, r.WithContext(ctx))
	if cw.code == 0 {
		cw.code = http.StatusOK
	}
	return &artifact{
		status: cw.code,
		ctype:  cw.hdr.Get("Content-Type"),
		etag:   `"` + key.String()[:32] + `"`,
		body:   append([]byte(nil), buf.Bytes()...),
	}
}

// deliver writes an artifact: one header fill and one body Write, shared
// bytes, no per-request body allocation. src tags the X-Cache header
// ("hit" = artifact cache, "coalesced" = shared flight, "miss" = executed).
func (s *Server) deliver(w http.ResponseWriter, r *http.Request, art *artifact, src string) {
	hdr := w.Header()
	if art.ctype != "" {
		hdr.Set("Content-Type", art.ctype)
	}
	hdr.Set("X-Cache", src)
	if art.status == http.StatusOK {
		hdr.Set("ETag", art.etag)
		if r.Header.Get("If-None-Match") == art.etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	hdr.Set("Content-Length", strconv.Itoa(len(art.body)))
	w.WriteHeader(art.status)
	w.Write(art.body)
}

// requestKey content-addresses a request: same route + byte-identical body
// ⇒ same key. It chains the cache package's labelled hashing, so the key
// space is domain-separated from the flow's stage keys.
func requestKey(route string, body []byte) cache.Key {
	h := cache.NewHasher("jpgd.artifact/v1")
	h.Str("route", route)
	h.Bytes("body", body)
	return h.Sum()
}

// readBody drains the (MaxBytesReader-bounded) request body into a pooled
// buffer, mapping an exceeded bound to 413 like the JSON decode path does.
func readBody(r *http.Request) (*bytes.Buffer, int, error) {
	buf := getBuf()
	if _, err := buf.ReadFrom(r.Body); err != nil {
		putBuf(buf)
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", maxErr.Limit)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err)
	}
	return buf, 0, nil
}

// bufPool recycles pre-sized buffers for request bodies, captured responses
// and JSON encoding, so the steady-state serving path allocates no
// body-sized memory per request.
var bufPool = sync.Pool{New: func() any {
	b := new(bytes.Buffer)
	b.Grow(64 << 10)
	return b
}}

func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

func putBuf(b *bytes.Buffer) {
	if b.Cap() > 8<<20 {
		return // don't pin pathological buffers in the pool
	}
	b.Reset()
	bufPool.Put(b)
}

// captureWriter is the in-memory http.ResponseWriter the leader's handler
// writes into; the result becomes the shared artifact.
type captureWriter struct {
	hdr  http.Header
	code int
	buf  *bytes.Buffer
}

func (w *captureWriter) Header() http.Header { return w.hdr }

func (w *captureWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
}

func (w *captureWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.buf.Write(b)
}

// artifact is one fully-encoded response: status, content type, deterministic
// ETag and the exact body bytes. Shared read-only between the leader, its
// followers, and the artifact cache.
type artifact struct {
	status int
	ctype  string
	etag   string
	body   []byte
}

// artifactCache is the byte-bounded LRU of hot artifacts.
type artifactCache struct {
	mu       sync.Mutex
	entries  map[cache.Key]*list.Element
	lru      *list.List // front = most recently used
	bytes    int64
	maxBytes int64

	mHit     *obs.Counter
	mMiss    *obs.Counter
	mEvict   *obs.Counter
	mBytes   *obs.Gauge
	mEntries *obs.Gauge
}

type artEntry struct {
	key cache.Key
	art *artifact
}

func newArtifactCache(maxBytes int64, reg *obs.Registry) *artifactCache {
	return &artifactCache{
		entries:  map[cache.Key]*list.Element{},
		lru:      list.New(),
		maxBytes: maxBytes,
		mHit:     reg.GetCounter("jpgd.artifact.hit"),
		mMiss:    reg.GetCounter("jpgd.artifact.miss"),
		mEvict:   reg.GetCounter("jpgd.artifact.evict"),
		mBytes:   reg.GetGauge("jpgd.artifact.bytes"),
		mEntries: reg.GetGauge("jpgd.artifact.entries"),
	}
}

func (c *artifactCache) get(k cache.Key) (*artifact, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.mMiss.Inc()
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.mHit.Inc()
	return el.Value.(*artEntry).art, true
}

// artOverhead approximates an entry's non-body footprint for the byte bound.
const artOverhead = 256

func (c *artifactCache) put(k cache.Key, art *artifact) {
	size := int64(len(art.body)) + artOverhead
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		old := el.Value.(*artEntry)
		c.bytes -= int64(len(old.art.body)) + artOverhead
		old.art = art
		c.bytes += size
		c.lru.MoveToFront(el)
	} else {
		c.entries[k] = c.lru.PushFront(&artEntry{key: k, art: art})
		c.bytes += size
	}
	for c.lru.Len() > 1 && c.bytes > c.maxBytes {
		tail := c.lru.Back()
		ev := tail.Value.(*artEntry)
		c.lru.Remove(tail)
		delete(c.entries, ev.key)
		c.bytes -= int64(len(ev.art.body)) + artOverhead
		c.mEvict.Inc()
	}
	c.mBytes.Set(c.bytes)
	c.mEntries.Set(int64(c.lru.Len()))
}
