// Package jpgd is the live service surface of the reproduction: an HTTP
// daemon exposing the JPG tool (partial-bitstream generation over a base
// configuration) and the CAD flow behind it, together with the operational
// endpoints a production deployment needs — Prometheus metrics, health and
// readiness probes, a flight-recorder dump and pprof.
//
// Every request runs under one correlation ID (minted per request or
// adopted from X-Request-ID), a request-scoped structured logger, and a
// per-request span collector whose completed spans feed the process-wide
// flight recorder. A generate request therefore leaves a single-ID trail
// through every layer it touches: HTTP entry, flow stages, cache lookups,
// partial generation, board downloads and fault injections.
//
// Endpoints:
//
//	GET  /healthz          liveness (always 200 while the process serves)
//	GET  /readyz           readiness (503 while starting or draining)
//	GET  /metrics          Prometheus text exposition of the obs registry
//	GET  /debug/flightrec  recent spans and errors (?format=chrome for a trace)
//	GET  /debug/pprof/*    Go runtime profiling
//	POST /v1/generate      partial bitstream from base + XDL/UCF (JPG-over-HTTP)
//	POST /v1/build         CAD build: base design, optional variant + partial
//	POST /v1/verify        independent bitstream lint (internal/bitlint)
package jpgd

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/bitfile"
	"repro/internal/bitlint"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/obs/flightrec"
	jpglog "repro/internal/obs/log"
	"repro/internal/obs/prom"
	"repro/internal/xhwif"
)

// DefaultMaxBodyBytes bounds request bodies (base bitstreams dominate).
const DefaultMaxBodyBytes = 64 << 20

// Config assembles a Server.
type Config struct {
	// Logger receives every structured event. nil disables logging.
	Logger *slog.Logger
	// Registry is the metrics registry /metrics exposes (obs.Default when
	// nil — the registry every instrumented package reports to).
	Registry *obs.Registry
	// Recorder is the flight recorder completed spans and request errors
	// feed (a DefaultCapacity recorder when nil).
	Recorder *flightrec.Recorder
	// Cache, when set, memoizes CAD stages and partial generation across
	// requests (attached to each request context).
	Cache *cache.Cache
	// MaxBodyBytes bounds request bodies (DefaultMaxBodyBytes when <= 0).
	MaxBodyBytes int64
	// LogSpans also emits every completed span as a debug-level log line
	// through the request's logger (high volume; spans always reach the
	// flight recorder regardless).
	LogSpans bool
	// DrainDelay is how long readiness reports not-ready before shutdown
	// starts, giving load balancers time to stop routing (0 = immediate).
	DrainDelay time.Duration
	// ShutdownTimeout bounds the graceful drain of in-flight requests
	// (default 10s).
	ShutdownTimeout time.Duration
	// Serve tunes the throughput pipeline (request coalescing, hot-artifact
	// cache, admission control). The zero value enables everything with
	// defaults; see ServeOptions.
	Serve ServeOptions
}

// Server is the jpgd HTTP service.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	rec   *flightrec.Recorder
	pipe  *pipeline
	ready atomic.Bool

	mRequests  *obs.Counter
	mErrors    *obs.Counter
	mInflight  *obs.Gauge
	mRequestNS *obs.Histogram
	mGenerates *obs.Counter
	mBuilds    *obs.Counter
}

// New assembles a server from the config.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = obs.Default
	}
	if cfg.Recorder == nil {
		cfg.Recorder = flightrec.New(0)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.ShutdownTimeout <= 0 {
		cfg.ShutdownTimeout = 10 * time.Second
	}
	s := &Server{
		cfg: cfg,
		reg: cfg.Registry,
		rec: cfg.Recorder,

		mRequests:  cfg.Registry.GetCounter("jpgd.requests"),
		mErrors:    cfg.Registry.GetCounter("jpgd.http_errors"),
		mInflight:  cfg.Registry.GetGauge("jpgd.inflight"),
		mRequestNS: cfg.Registry.GetHistogram("jpgd.request_ns"),
		mGenerates: cfg.Registry.GetCounter("jpgd.generates"),
		mBuilds:    cfg.Registry.GetCounter("jpgd.builds"),
	}
	s.pipe = newPipeline(cfg.Serve, cfg.Registry)
	s.ready.Store(true)
	return s
}

// Recorder returns the server's flight recorder.
func (s *Server) Recorder() *flightrec.Recorder { return s.rec }

// SetReady flips the /readyz state (false while starting or draining).
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Handler builds the service mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.Handle("/metrics", prom.Handler(s.reg))
	mux.HandleFunc("/debug/flightrec", s.handleFlightrec)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/v1/generate", s.instrument("generate", s.handleGenerate))
	mux.Handle("/v1/build", s.instrument("build", s.handleBuild))
	mux.Handle("/v1/verify", s.instrument("verify", s.handleVerify))
	return mux
}

// statusWriter captures the response status for the access log and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// multiSink fans completed spans out to several sinks (the flight recorder
// always, the span-to-log bridge when enabled).
type multiSink []obs.Sink

func (m multiSink) Record(rec obs.SpanRecord) {
	for _, s := range m {
		s.Record(rec)
	}
}

// instrument wraps an API handler with the per-request observability stack
// — correlation ID (minted or adopted from X-Request-ID), request-bound
// logger, per-request span collector feeding the flight recorder, request
// span, metrics and the access log — then hands the request to the serving
// pipeline (artifact cache, coalescing, admission; see serve.go).
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		ctx := r.Context()

		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = jpglog.NewRequestID()
		}
		ctx = jpglog.Attach(ctx, s.cfg.Logger)
		ctx = jpglog.WithRequestID(ctx, id)

		sinks := multiSink{s.rec}
		if s.cfg.LogSpans {
			if l := jpglog.From(ctx); l != nil {
				sinks = append(sinks, jpglog.SpanSink(l))
			}
		}
		col := obs.New(obs.WithSink(sinks))
		ctx = col.Attach(ctx)
		if s.cfg.Cache != nil {
			ctx = cache.With(ctx, s.cfg.Cache)
		}
		if s.pipe.opts.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.pipe.opts.RequestTimeout)
			defer cancel()
		}

		ctx, sp := obs.Start(ctx, "jpgd.request")
		sp.SetStr("request_id", id)
		sp.SetStr("route", route)

		s.mRequests.Inc()
		s.mInflight.Add(1)
		defer s.mInflight.Add(-1)

		// The pipeline WaitGroup covers the full lifetime — queued for
		// admission and waiting as a coalesced follower included — so a
		// graceful drain waits for every request already accepted, not just
		// the ones executing a handler.
		s.pipe.wg.Add(1)
		defer s.pipe.wg.Done()

		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set("X-Request-ID", id)
		r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		s.dispatch(route, sw, r.WithContext(ctx), h)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}

		dur := time.Since(t0)
		sp.SetInt("status", int64(sw.status))
		if sw.status >= 400 {
			s.mErrors.Inc()
			sp.Fail(fmt.Errorf("http %d", sw.status))
		}
		sp.End()
		s.mRequestNS.Observe(dur.Nanoseconds())
		jpglog.Info(ctx, "http.request", "method", r.Method, "path", r.URL.Path,
			"route", route, "status", sw.status, "dur_us", dur.Microseconds(), "bytes", sw.bytes)
	})
}

// apiError is the JSON error envelope of the v1 endpoints. Like every v1
// response body it carries no correlation ID — that travels in the
// X-Request-ID header — so bodies stay pure functions of the request and
// can be shared across coalesced and cached deliveries.
type apiError struct {
	Error string `json:"error"`
}

// fail writes the error envelope and records the failure in the flight
// recorder (status chooses the HTTP code; 4xx are client mistakes, 5xx are
// generation failures worth a post-mortem). A request whose deadline expired
// mid-generation answers 503 + Retry-After instead of a 5xx: the work was
// shed, not broken.
func (s *Server) fail(ctx context.Context, w http.ResponseWriter, route string, status int, err error) {
	if status >= 500 && errors.Is(err, context.DeadlineExceeded) {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	id := jpglog.RequestIDFrom(ctx)
	s.rec.RecordError("jpgd."+route, id, err)
	jpglog.Warn(ctx, "request.failed", "route", route, "status", status, "error", err.Error())
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(apiError{Error: err.Error()})
}

// writeJSON encodes v through a pooled buffer: one allocation-free encode
// staging area, a correct Content-Length, and a single Write to the socket.
func writeJSON(w http.ResponseWriter, v any) {
	buf := getBuf()
	defer putBuf(buf)
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Write(buf.Bytes())
}

// decodeJSON parses the request body into v and returns the HTTP status to
// fail with when it is malformed: 413 when the body tripped MaxBytesReader,
// 400 for everything else. A body is malformed when it is empty, is not a
// single JSON document, names unknown fields, or carries trailing data.
func decodeJSON(r *http.Request, v any) (int, error) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		switch {
		case errors.As(err, &maxErr):
			return http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", maxErr.Limit)
		case errors.Is(err, io.EOF):
			return http.StatusBadRequest,
				fmt.Errorf("empty request body (expected a JSON document)")
		}
		return http.StatusBadRequest, fmt.Errorf("bad request body: %w", err)
	}
	// A second document (or any junk) after the request object is a
	// malformed payload, not something to silently ignore.
	if err := dec.Decode(&struct{}{}); !errors.Is(err, io.EOF) {
		return http.StatusBadRequest, fmt.Errorf("unexpected data after the JSON document")
	}
	return 0, nil
}

// handleFlightrec dumps the flight recorder: JSON by default, a Chrome
// trace with ?format=chrome.
func (s *Server) handleFlightrec(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="jpgd-flightrec.trace.json"`)
		if err := s.rec.WriteChromeTrace(w, "jpgd"); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	writeJSON(w, s.rec.Dump())
}

// GenerateRequest is the /v1/generate body: the JPG tool's inputs as one
// JSON document. Base is the base design's complete bitstream (raw or .bit
// container), base64-encoded; XDL and UCF are the variant's files from its
// own CAD run.
type GenerateRequest struct {
	Base     string `json:"base"`
	XDL      string `json:"xdl"`
	UCF      string `json:"ucf"`
	Name     string `json:"name,omitempty"`
	Strict   bool   `json:"strict,omitempty"`
	Compress bool   `json:"compress,omitempty"`
	Delta    bool   `json:"delta,omitempty"`
	// Verify re-decodes the generated partial with the independent verifier
	// (internal/bitlint) before it is returned; the request fails on any
	// error finding. Results are byte-identical with it on or off.
	Verify bool `json:"verify,omitempty"`
	// Download, when present, also downloads the partial to a simulated
	// board configured with the base design, through the reliability layer.
	Download *DownloadRequest `json:"download,omitempty"`
}

// DownloadRequest tunes the simulated download of a generate request.
type DownloadRequest struct {
	// Retries caps download attempts (0 = xhwif default).
	Retries int `json:"retries,omitempty"`
	// TimeoutMS bounds the download end to end (0 = none).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Verify reads touched frames back after the download.
	Verify bool `json:"verify,omitempty"`
	// Faults injects deterministic link faults (faults.Parse syntax).
	Faults string `json:"faults,omitempty"`
}

// DownloadResult reports the simulated download.
type DownloadResult struct {
	Attempts      int   `json:"attempts"`
	FramesWritten int   `json:"frames_written"`
	ModelTimeUS   int64 `json:"model_time_us"`
}

// GenerateResponse is the /v1/generate result. Bitstream is base64 (JSON's
// []byte encoding). The correlation ID is in the X-Request-ID response
// header, not the body: the body is a pure function of the request, so
// coalesced and cached deliveries can share it byte for byte.
type GenerateResponse struct {
	Part          string          `json:"part"`
	Bitstream     []byte          `json:"bitstream"`
	Bytes         int             `json:"bytes"`
	Frames        int             `json:"frames"`
	FramesChanged int             `json:"frames_changed"`
	Region        string          `json:"region"`
	Download      *DownloadResult `json:"download,omitempty"`
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if r.Method != http.MethodPost {
		s.fail(ctx, w, "generate", http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req GenerateRequest
	if status, err := decodeJSON(r, &req); err != nil {
		s.fail(ctx, w, "generate", status, err)
		return
	}
	if req.Base == "" || req.XDL == "" || req.UCF == "" {
		s.fail(ctx, w, "generate", http.StatusBadRequest, fmt.Errorf("base, xdl and ucf are required"))
		return
	}
	baseFile, err := base64.StdEncoding.DecodeString(req.Base)
	if err != nil {
		s.fail(ctx, w, "generate", http.StatusBadRequest, fmt.Errorf("base is not base64: %w", err))
		return
	}
	baseBS, _, err := bitfile.Unwrap(baseFile)
	if err != nil {
		s.fail(ctx, w, "generate", http.StatusBadRequest, err)
		return
	}
	proj, err := core.NewProject(baseBS)
	if err != nil {
		s.fail(ctx, w, "generate", http.StatusBadRequest, err)
		return
	}
	proj.Cache = s.cfg.Cache
	name := req.Name
	if name == "" {
		name = "module"
	}
	m, err := proj.AddModule(name, req.XDL, req.UCF)
	if err != nil {
		s.fail(ctx, w, "generate", http.StatusBadRequest, err)
		return
	}
	opts := core.GenerateOptions{Strict: req.Strict, Compress: req.Compress, Delta: req.Delta, Verify: req.Verify}

	resp := GenerateResponse{Part: proj.Part.Name}
	var res *core.Result
	if req.Download != nil {
		board, err := s.boardWithBase(ctx, proj.Part, baseBS)
		if err != nil {
			s.fail(ctx, w, "generate", http.StatusInternalServerError, err)
			return
		}
		hwif, err := wrapBoard(board, req.Download)
		if err != nil {
			s.fail(ctx, w, "generate", http.StatusBadRequest, err)
			return
		}
		var ds xhwif.DownloadStats
		res, ds, err = proj.GenerateAndDownloadCtx(ctx, m, hwif, opts)
		if err != nil {
			s.fail(ctx, w, "generate", http.StatusInternalServerError, err)
			return
		}
		resp.Download = &DownloadResult{
			Attempts:      ds.Attempts,
			FramesWritten: ds.FramesWritten,
			ModelTimeUS:   ds.ModelTime.Microseconds(),
		}
	} else {
		res, err = proj.GeneratePartialCtx(ctx, m, opts)
		if err != nil {
			s.fail(ctx, w, "generate", http.StatusInternalServerError, err)
			return
		}
	}
	s.mGenerates.Inc()
	resp.Bitstream = res.Bitstream
	resp.Bytes = len(res.Bitstream)
	resp.Frames = len(res.FARs)
	resp.FramesChanged = res.FramesChanged
	resp.Region = res.Region.String()
	writeJSON(w, resp)
}

// VerifyRequest is the /v1/verify body: lint a bitstream with the
// independent verifier. Bitstream is base64 (raw stream or .bit container).
// With Base set, Bitstream is checked as a partial against that base
// configuration; otherwise it is verified as a full bitstream.
type VerifyRequest struct {
	Bitstream string `json:"bitstream"`
	Base      string `json:"base,omitempty"`
}

// VerifyFinding is one structured lint result in a VerifyResponse.
type VerifyFinding struct {
	Code     string `json:"code"`
	Severity string `json:"severity"`
	Offset   int    `json:"offset"`
	Detail   string `json:"detail"`
}

// VerifyResponse reports the verifier's verdict. OK is true iff no
// error-severity finding was recorded; warnings are reported but do not
// clear OK.
type VerifyResponse struct {
	Part          string          `json:"part"`
	OK            bool            `json:"ok"`
	Packets       int             `json:"packets"`
	FramesWritten int             `json:"frames_written"`
	CRCChecks     int             `json:"crc_checks"`
	Started       bool            `json:"started"`
	Findings      []VerifyFinding `json:"findings,omitempty"`
}

// handleVerify lints a posted bitstream. Findings are the response, not an
// HTTP failure: an unsafe stream still answers 200 with OK=false — only a
// malformed request envelope (bad base64, undecodable base) is a 4xx.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if r.Method != http.MethodPost {
		s.fail(ctx, w, "verify", http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req VerifyRequest
	if status, err := decodeJSON(r, &req); err != nil {
		s.fail(ctx, w, "verify", status, err)
		return
	}
	if req.Bitstream == "" {
		s.fail(ctx, w, "verify", http.StatusBadRequest, fmt.Errorf("bitstream is required"))
		return
	}
	file, err := base64.StdEncoding.DecodeString(req.Bitstream)
	if err != nil {
		s.fail(ctx, w, "verify", http.StatusBadRequest, fmt.Errorf("bitstream is not base64: %w", err))
		return
	}
	bs, _, err := bitfile.Unwrap(file)
	if err != nil {
		s.fail(ctx, w, "verify", http.StatusBadRequest, err)
		return
	}

	var rep *bitlint.Report
	if req.Base != "" {
		baseFile, err := base64.StdEncoding.DecodeString(req.Base)
		if err != nil {
			s.fail(ctx, w, "verify", http.StatusBadRequest, fmt.Errorf("base is not base64: %w", err))
			return
		}
		baseBS, _, err := bitfile.Unwrap(baseFile)
		if err != nil {
			s.fail(ctx, w, "verify", http.StatusBadRequest, err)
			return
		}
		baseRep, err := bitlint.Verify(baseBS)
		if err != nil {
			s.fail(ctx, w, "verify", http.StatusBadRequest, fmt.Errorf("base: %w", err))
			return
		}
		if err := baseRep.Err(); err != nil {
			s.fail(ctx, w, "verify", http.StatusBadRequest, fmt.Errorf("base stream unsafe: %w", err))
			return
		}
		rep, _ = bitlint.VerifyPartial(baseRep.Frames, bs)
	} else if rep, err = bitlint.Verify(bs); err != nil {
		s.fail(ctx, w, "verify", http.StatusBadRequest, err)
		return
	}

	resp := VerifyResponse{
		Part:          rep.Part.Name,
		OK:            len(rep.Errors()) == 0,
		Packets:       rep.Packets,
		FramesWritten: rep.FramesWritten,
		CRCChecks:     rep.CRCChecks,
		Started:       rep.Started,
	}
	for _, f := range rep.Findings {
		resp.Findings = append(resp.Findings, VerifyFinding{
			Code: f.Code, Severity: f.Severity.String(), Offset: f.Offset, Detail: f.Detail,
		})
	}
	jpglog.Info(ctx, "jpgd.verify", "part", resp.Part, "ok", resp.OK, "findings", len(resp.Findings))
	writeJSON(w, resp)
}

// boardWithBase provisions a simulated board holding the base configuration
// — the device state a partial reconfiguration assumes.
func (s *Server) boardWithBase(ctx context.Context, part *device.Part, baseBS []byte) (*xhwif.Board, error) {
	board := xhwif.NewBoard(part)
	if _, err := board.DownloadCtx(ctx, baseBS); err != nil {
		return nil, fmt.Errorf("configuring board with base: %w", err)
	}
	return board, nil
}

// wrapBoard layers fault injection and the reliability wrapper per the
// request's download options.
func wrapBoard(board *xhwif.Board, d *DownloadRequest) (xhwif.HWIF, error) {
	var hwif xhwif.HWIF = board
	if d.Faults != "" {
		spec, err := faults.Parse(d.Faults)
		if err != nil {
			return nil, err
		}
		hwif = faults.Wrap(hwif, spec)
	}
	return xhwif.NewReliable(hwif, xhwif.RetryPolicy{
		MaxAttempts: d.Retries,
		Timeout:     time.Duration(d.TimeoutMS) * time.Millisecond,
		Verify:      d.Verify,
	}), nil
}

// BuildRequest is the /v1/build body: run the CAD flow server-side. The
// base design is described by instance specs (designs.ParseInstanceSpecs
// syntax, e.g. "u1/=counter:bits=6;u2/=sbox:n=8,seed=3"); an optional
// variant re-implements one instance (paper Phase 2) and generates its
// partial bitstream against the freshly built base.
type BuildRequest struct {
	Part      string `json:"part"`
	Instances string `json:"instances"`
	Seed      int64  `json:"seed,omitempty"`
	// Starts runs multi-start placement with this many independently seeded
	// anneals (best placement wins; deterministic for any worker count).
	Starts  int             `json:"starts,omitempty"`
	Variant *VariantRequest `json:"variant,omitempty"`
}

// VariantRequest names one Phase 2 re-implementation.
type VariantRequest struct {
	Prefix   string `json:"prefix"`
	Gen      string `json:"gen"`
	Seed     int64  `json:"seed,omitempty"`
	Strict   bool   `json:"strict,omitempty"`
	Compress bool   `json:"compress,omitempty"`
	Delta    bool   `json:"delta,omitempty"`
}

// BuildTimes reports one CAD run's stage times in microseconds.
type BuildTimes struct {
	SynthUS  int64 `json:"synth_us"`
	PlaceUS  int64 `json:"place_us"`
	RouteUS  int64 `json:"route_us"`
	BitgenUS int64 `json:"bitgen_us"`
}

func buildTimes(t flow.StageTimes) BuildTimes {
	return BuildTimes{
		SynthUS:  t.Synthesis.Microseconds(),
		PlaceUS:  t.Place.Microseconds(),
		RouteUS:  t.Route.Microseconds(),
		BitgenUS: t.Bitgen.Microseconds(),
	}
}

// VariantResult reports the variant build and its partial bitstream.
type VariantResult struct {
	Times         BuildTimes `json:"times"`
	Bitstream     []byte     `json:"bitstream"`
	Bytes         int        `json:"bytes"`
	Frames        int        `json:"frames"`
	FramesChanged int        `json:"frames_changed"`
	Region        string     `json:"region"`
}

// BuildResponse is the /v1/build result. As with GenerateResponse, the
// correlation ID lives in the X-Request-ID header only.
type BuildResponse struct {
	Part      string            `json:"part"`
	BaseBytes int               `json:"base_bytes"`
	BaseTimes BuildTimes        `json:"base_times"`
	Regions   map[string]string `json:"regions"`
	Variant   *VariantResult    `json:"variant,omitempty"`
}

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if r.Method != http.MethodPost {
		s.fail(ctx, w, "build", http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req BuildRequest
	if status, err := decodeJSON(r, &req); err != nil {
		s.fail(ctx, w, "build", status, err)
		return
	}
	part, err := device.ByName(req.Part)
	if err != nil {
		s.fail(ctx, w, "build", http.StatusBadRequest, err)
		return
	}
	insts, err := designs.ParseInstanceSpecs(req.Instances)
	if err != nil {
		s.fail(ctx, w, "build", http.StatusBadRequest, err)
		return
	}
	base, err := flow.BuildBase(ctx, part, insts, flow.Options{Seed: req.Seed, Starts: req.Starts})
	if err != nil {
		s.fail(ctx, w, "build", http.StatusInternalServerError, err)
		return
	}
	resp := BuildResponse{
		Part:      part.Name,
		BaseBytes: len(base.Bitstream),
		BaseTimes: buildTimes(base.Times),
		Regions:   map[string]string{},
	}
	for prefix, rg := range base.Regions {
		resp.Regions[prefix] = rg.String()
	}
	if v := req.Variant; v != nil {
		gen, err := designs.ParseSpec(v.Gen)
		if err != nil {
			s.fail(ctx, w, "build", http.StatusBadRequest, err)
			return
		}
		va, err := flow.BuildVariant(ctx, base, v.Prefix, gen, flow.Options{Seed: v.Seed, Starts: req.Starts})
		if err != nil {
			s.fail(ctx, w, "build", http.StatusInternalServerError, err)
			return
		}
		proj, err := core.NewProject(base.Bitstream)
		if err != nil {
			s.fail(ctx, w, "build", http.StatusInternalServerError, err)
			return
		}
		proj.Cache = s.cfg.Cache
		m, err := proj.AddModule(v.Prefix+gen.Name(), va.XDL, va.UCF)
		if err != nil {
			s.fail(ctx, w, "build", http.StatusInternalServerError, err)
			return
		}
		res, err := proj.GeneratePartialCtx(ctx, m, core.GenerateOptions{
			Strict: v.Strict, Compress: v.Compress, Delta: v.Delta,
		})
		if err != nil {
			s.fail(ctx, w, "build", http.StatusInternalServerError, err)
			return
		}
		resp.Variant = &VariantResult{
			Times:         buildTimes(va.Times),
			Bitstream:     res.Bitstream,
			Bytes:         len(res.Bitstream),
			Frames:        len(res.FARs),
			FramesChanged: res.FramesChanged,
			Region:        res.Region.String(),
		}
	}
	s.mBuilds.Inc()
	writeJSON(w, resp)
}

// ListenAndServe runs the daemon on addr until ctx is cancelled, then
// drains gracefully: readiness flips to 503, DrainDelay passes (load
// balancers stop routing), new API requests are shed, and every request
// already in the pipeline — executing, queued for admission, or waiting as
// a coalesced follower — gets ShutdownTimeout to finish. The returned error
// is nil on a clean drain.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is ListenAndServe over an existing listener.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	lctx := jpglog.Attach(context.Background(), s.cfg.Logger)
	jpglog.Info(lctx, "jpgd.listening", "addr", ln.Addr().String())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.SetReady(false)
	jpglog.Info(lctx, "jpgd.draining", "delay_ms", s.cfg.DrainDelay.Milliseconds())
	if s.cfg.DrainDelay > 0 {
		time.Sleep(s.cfg.DrainDelay)
	}
	// Shed new arrivals, then wait for the whole pipeline — not just the
	// handlers the HTTP server sees as active, but also requests queued for
	// admission and coalesced followers waiting on a leader's flight.
	s.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownTimeout)
	defer cancel()
	drainErr := s.Drain(sctx)
	if drainErr != nil {
		jpglog.Warn(lctx, "jpgd.drain_incomplete", "error", drainErr.Error())
	}
	err := srv.Shutdown(sctx)
	<-errc // srv.Serve has returned http.ErrServerClosed
	jpglog.Info(lctx, "jpgd.stopped")
	if err == nil {
		err = drainErr
	}
	return err
}
