package place

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/netlist"
	"repro/internal/phys"
	"repro/internal/ucf"
)

func counterDesign(t *testing.T, bits int) *netlist.Design {
	t.Helper()
	d, err := designs.Standalone(designs.Counter{Bits: bits}, "cnt", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPlaceUnconstrained(t *testing.T) {
	p := device.MustByName("XCV50")
	nl := counterDesign(t, 8)
	d, err := Place(p, nl, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CheckPlacement(); err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) != len(nl.Cells) {
		t.Fatalf("placed %d cells, want %d", len(d.Cells), len(nl.Cells))
	}
}

func TestPlaceDeterministic(t *testing.T) {
	p := device.MustByName("XCV50")
	nl1 := counterDesign(t, 6)
	nl2 := counterDesign(t, 6)
	d1, err := Place(p, nl1, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Place(p, nl2, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, c1 := range nl1.Cells {
		c2, ok := nl2.Cell(c1.Name)
		if !ok {
			t.Fatalf("cell %q missing from second build", c1.Name)
		}
		if d1.Cells[c1] != d2.Cells[c2] {
			t.Fatalf("cell %q placed at %v vs %v across equal seeds",
				c1.Name, d1.Cells[c1], d2.Cells[c2])
		}
	}
}

func TestPlaceHonoursRegion(t *testing.T) {
	p := device.MustByName("XCV50")
	nl := counterDesign(t, 8)
	cons := ucf.New()
	rg := frames.Region{R1: 2, C1: 3, R2: 7, C2: 8}
	cons.AddGroup("u1/*", "AG_u1", rg)
	d, err := Place(p, nl, Options{Seed: 7, Constraints: cons})
	if err != nil {
		t.Fatal(err)
	}
	for c, site := range d.Cells {
		if !rg.Contains(site.Row, site.Col) {
			t.Fatalf("cell %q at %v escapes region %v", c.Name, site, rg)
		}
	}
}

func TestPlaceHonoursInstLoc(t *testing.T) {
	p := device.MustByName("XCV50")
	nl := counterDesign(t, 4)
	cons := ucf.New()
	loc := ucf.SliceLoc{Row: 5, Col: 6, Slice: 1}
	cons.InstLocs["u1/q0"] = loc
	d, err := Place(p, nl, Options{Seed: 3, Constraints: cons})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := nl.Cell("u1/q0")
	site := d.Cells[c]
	if site.Row != loc.Row || site.Col != loc.Col || site.Slice != loc.Slice {
		t.Fatalf("LOC ignored: %v vs %v", site, loc)
	}
}

func TestPlaceRegionCapacity(t *testing.T) {
	p := device.MustByName("XCV50")
	nl := counterDesign(t, 16) // well over 4 LEs
	cons := ucf.New()
	cons.AddGroup("u1/*", "AG", frames.Region{R1: 0, C1: 0, R2: 0, C2: 0}) // 1 CLB = 4 LEs
	if _, err := Place(p, nl, Options{Seed: 1, Constraints: cons}); err == nil {
		t.Fatal("over-capacity region accepted")
	}
}

func TestPlaceRespectsPortPadLocs(t *testing.T) {
	p := device.MustByName("XCV50")
	nl := counterDesign(t, 4)
	cons := ucf.New()
	cons.NetLocs["clk"] = "P_L3"
	cons.NetLocs["out0"] = "P_T5"
	d, err := Place(p, nl, Options{Seed: 1, Constraints: cons})
	if err != nil {
		t.Fatal(err)
	}
	clk, _ := nl.Port("clk")
	if d.Ports[clk].Name() != "P_L3" {
		t.Fatalf("clk on %s, want P_L3", d.Ports[clk].Name())
	}
	out0, _ := nl.Port("out0")
	if d.Ports[out0].Name() != "P_T5" {
		t.Fatalf("out0 on %s, want P_T5", d.Ports[out0].Name())
	}
}

func TestPlaceConflictingPadLocs(t *testing.T) {
	p := device.MustByName("XCV50")
	nl := counterDesign(t, 4)
	cons := ucf.New()
	cons.NetLocs["clk"] = "P_L3"
	cons.NetLocs["out0"] = "P_L3"
	if _, err := Place(p, nl, Options{Seed: 1, Constraints: cons}); err == nil {
		t.Fatal("duplicate pad LOC accepted")
	}
}

func TestPlaceQualityUnderConstraint(t *testing.T) {
	// Constrained placement should keep the module's wirelength bounded by
	// the region span, showing the annealer actually optimises inside it.
	p := device.MustByName("XCV50")
	nl := counterDesign(t, 8)
	cons := ucf.New()
	rg := frames.Region{R1: 0, C1: 0, R2: 3, C2: 3}
	cons.AddGroup("u1/*", "AG", rg)
	d, err := Place(p, nl, Options{Seed: 5, Constraints: cons})
	if err != nil {
		t.Fatal(err)
	}
	r1, c1, r2, c2, ok := d.BoundingBox()
	if !ok {
		t.Fatal("no cells placed")
	}
	if r2-r1 > 3 || c2-c1 > 3 {
		t.Fatalf("bounding box (%d,%d)-(%d,%d) exceeds region", r1, c1, r2, c2)
	}
}

func TestPackPairsLUTWithFF(t *testing.T) {
	// A LUT feeding exactly one FF should share the FF's site.
	p := device.MustByName("XCV50")
	d := netlist.NewDesign("pair")
	a, _ := d.AddPort("a", netlist.In, nil)
	clk, _ := d.AddPort("clk", netlist.In, nil)
	lut, err := d.AddLUT("u/l", 0x5555, a.Net)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := d.AddDFF("u/f", lut.Out, clk.Net, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("q", netlist.Out, ff.Out); err != nil {
		t.Fatal(err)
	}
	pd, err := Place(p, d, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pd.Cells[lut] != pd.Cells[ff] {
		t.Fatalf("LUT at %v, FF at %v: not packed", pd.Cells[lut], pd.Cells[ff])
	}
}

func TestPlaceLocOutsideRegionRejected(t *testing.T) {
	p := device.MustByName("XCV50")
	nl := counterDesign(t, 4)
	cons := ucf.New()
	cons.AddGroup("u1/*", "AG", frames.Region{R1: 0, C1: 0, R2: 3, C2: 3})
	cons.InstLocs["u1/q0"] = ucf.SliceLoc{Row: 10, Col: 10, Slice: 0}
	if _, err := Place(p, nl, Options{Seed: 1, Constraints: cons}); err == nil {
		t.Fatal("LOC outside AREA_GROUP accepted")
	}
}

func TestGuidedPlacementKeepsSitesAtLowEffort(t *testing.T) {
	p := device.MustByName("XCV50")
	nl1 := counterDesign(t, 8)
	d1, err := Place(p, nl1, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	guide := map[string]phys.Site{}
	for c, s := range d1.Cells {
		guide[c.Name] = s
	}
	// Re-place the same design, guided, at negligible effort: cells should
	// overwhelmingly keep their previous sites.
	nl2 := counterDesign(t, 8)
	d2, err := Place(p, nl2, Options{Seed: 99, Effort: 0.01, Guide: guide})
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for c2, s2 := range d2.Cells {
		if guide[c2.Name] == s2 {
			kept++
		}
	}
	if kept < len(d2.Cells)*3/4 {
		t.Fatalf("only %d of %d cells kept their guided sites", kept, len(d2.Cells))
	}
}

func TestGuidedPlacementIgnoresStaleGuides(t *testing.T) {
	p := device.MustByName("XCV50")
	nl := counterDesign(t, 4)
	guide := map[string]phys.Site{
		"u1/q0": {Row: 999, Col: 0, Slice: 0, LE: 0}, // invalid: must be ignored
		"ghost": {Row: 1, Col: 1, Slice: 0, LE: 0},   // unknown cell: harmless
	}
	if _, err := Place(p, nl, Options{Seed: 5, Guide: guide}); err != nil {
		t.Fatalf("stale guide broke placement: %v", err)
	}
}
