//go:build !race

package place

// raceEnabled reports whether the race detector is on; allocation-count
// tests skip under it (instrumentation changes what AllocsPerRun sees).
const raceEnabled = false
