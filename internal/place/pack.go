// Package place implements packing and placement: netlist cells are packed
// into logic elements (LUT+FF pairs sharing a half-slice) and placed onto
// CLB sites with a simulated-annealing engine minimising half-perimeter
// wirelength, honouring UCF floorplan constraints (AREA_GROUP ranges and
// instance LOCs) — the role MAP+PAR placement plays in the Xilinx flow.
package place

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/ucf"
)

// le is a packed logic element: at most one LUT and one FF sharing a site.
type le struct {
	lut, ff *netlist.Cell
	// group is the area-group name constraining the LE ("" = unconstrained).
	group string
	// fixed pins the LE to a slice (from an INST LOC); the LE index inside
	// the slice remains free.
	fixed    bool
	fixedLoc ucf.SliceLoc
}

func (e *le) name() string {
	switch {
	case e.lut != nil:
		return e.lut.Name
	case e.ff != nil:
		return e.ff.Name
	}
	return "<empty>"
}

// cells returns the LE's member cells.
func (e *le) cells() []*netlist.Cell {
	var out []*netlist.Cell
	if e.lut != nil {
		out = append(out, e.lut)
	}
	if e.ff != nil {
		out = append(out, e.ff)
	}
	return out
}

// pack groups the netlist's cells into LEs. A DFF packs with the LUT driving
// its D input when both are free and share an area group; everything else
// gets its own LE.
func pack(nl *netlist.Design, cons *ucf.Constraints) ([]*le, error) {
	group := func(name string) string {
		if cons == nil {
			return ""
		}
		return cons.GroupOf(name)
	}
	paired := map[*netlist.Cell]*le{}
	var les []*le

	for _, c := range nl.SortedCells() {
		if c.Kind != netlist.KindDFF {
			continue
		}
		e := &le{ff: c, group: group(c.Name)}
		if drv := c.Inputs[0].Driver.Cell; drv != nil && drv.Kind == netlist.KindLUT4 &&
			paired[drv] == nil && group(drv.Name) == e.group {
			e.lut = drv
			paired[drv] = e
		}
		paired[c] = e
		les = append(les, e)
	}
	for _, c := range nl.SortedCells() {
		if c.Kind != netlist.KindLUT4 || paired[c] != nil {
			continue
		}
		e := &le{lut: c, group: group(c.Name)}
		paired[c] = e
		les = append(les, e)
	}

	// Apply instance LOCs; members of one LE must agree.
	if cons != nil {
		for inst, loc := range cons.InstLocs {
			c, ok := nl.Cell(inst)
			if !ok {
				return nil, fmt.Errorf("place: LOC for unknown instance %q", inst)
			}
			e := paired[c]
			if e.fixed && e.fixedLoc != loc {
				return nil, fmt.Errorf("place: conflicting LOCs for LE of %q (%v vs %v)",
					inst, e.fixedLoc, loc)
			}
			e.fixed = true
			e.fixedLoc = loc
		}
	}
	return les, nil
}

// leOf builds the reverse map cell -> LE index.
func leOf(les []*le) map[*netlist.Cell]int {
	m := map[*netlist.Cell]int{}
	for i, e := range les {
		for _, c := range e.cells() {
			m[c] = i
		}
	}
	return m
}
