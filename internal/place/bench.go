package place

import (
	"repro/internal/device"
	"repro/internal/netlist"
)

// Benchmark surface. The annealing inner loop works on unexported placer
// state, so the repository-level benchmarks and the allocation-regression
// tests drive it through this narrow exported hook instead of reimplementing
// the loop. Not intended for production callers.

// MoveBencher drives single annealing proposals against a fully prepared
// placer (packed, initially placed, incremental cost model built).
type MoveBencher struct {
	pl      *placer
	movable []int
}

// NewMoveBencher prepares a placer for the netlist exactly as a real
// annealing start would (pack, pad assignment, initial placement, cost
// model) and exposes its move loop.
func NewMoveBencher(p *device.Part, nl *netlist.Design, seed int64) (*MoveBencher, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	les, err := pack(nl, nil)
	if err != nil {
		return nil, err
	}
	pl := newPlacer(p, nl, les, nil, nil, seed)
	if err := pl.assignPads(); err != nil {
		return nil, err
	}
	if err := pl.regions(); err != nil {
		return nil, err
	}
	if err := pl.initial(); err != nil {
		return nil, err
	}
	pl.buildCostModel()
	mb := &MoveBencher{pl: pl}
	for i, e := range les {
		if !e.fixed {
			mb.movable = append(mb.movable, i)
		}
	}
	return mb, nil
}

// Step proposes one move at the given temperature — the annealing loop's
// body. A moderate temperature exercises the full mix the real loop sees:
// displacements, swaps, accepts, Metropolis rejects and reverts.
func (m *MoveBencher) Step(temp float64) { m.pl.tryMove(m.movable, temp) }

// Cost returns the incrementally maintained total HPWL.
func (m *MoveBencher) Cost() int64 { return m.pl.cost }

// CostFromScratch recomputes the total HPWL by rescanning every net — the
// reference the incremental bookkeeping is validated against.
func (m *MoveBencher) CostFromScratch() float64 { return m.pl.totalCost() }
