//go:build race

package place

const raceEnabled = true
