package place

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/netlist"
	"repro/internal/phys"
	"repro/internal/ucf"
)

// Options configures a placement run.
type Options struct {
	// Seed drives every random choice; equal seeds give equal placements.
	Seed int64
	// Constraints carries the UCF floorplan (may be nil).
	Constraints *ucf.Constraints
	// Effort scales annealing iterations; 1.0 is the default, smaller is
	// faster and sloppier.
	Effort float64
	// Guide seeds initial positions from a previous implementation (cell
	// name -> site), the role of the Xilinx flow's guide files: re-placing
	// a revised design starts from the old placement instead of randomness,
	// so low-effort incremental runs converge to comparable quality.
	Guide map[string]phys.Site
}

// Place packs and places the netlist on the part, returning a physical
// design with Cells and Ports assigned (Routes left for the router).
func Place(p *device.Part, nl *netlist.Design, opts Options) (*phys.Design, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	if opts.Effort <= 0 {
		opts.Effort = 1.0
	}
	cons := opts.Constraints
	if cons != nil {
		if err := cons.Validate(p); err != nil {
			return nil, err
		}
	}
	les, err := pack(nl, cons)
	if err != nil {
		return nil, err
	}
	pl := &placer{
		part:  p,
		nl:    nl,
		les:   les,
		cons:  cons,
		guide: opts.Guide,
		rng:   rand.New(rand.NewSource(opts.Seed)),
	}
	if err := pl.assignPads(); err != nil {
		return nil, err
	}
	if err := pl.regions(); err != nil {
		return nil, err
	}
	if err := pl.initial(); err != nil {
		return nil, err
	}
	pl.anneal(opts.Effort)

	d := phys.NewDesign(p, nl)
	for i, e := range les {
		site := pl.siteOf[i]
		for _, c := range e.cells() {
			d.Cells[c] = site
		}
	}
	for _, port := range nl.Ports {
		d.Ports[port] = pl.padOf[port]
	}
	if err := d.CheckPlacement(); err != nil {
		return nil, fmt.Errorf("place: internal error: %w", err)
	}
	return d, nil
}

type placer struct {
	part  *device.Part
	nl    *netlist.Design
	les   []*le
	cons  *ucf.Constraints
	guide map[string]phys.Site
	rng   *rand.Rand

	region []frames.Region // allowed region per LE
	siteOf []phys.Site
	occ    map[phys.Site]int // site -> LE index
	padOf  map[*netlist.Port]device.Pad

	cellLE map[*netlist.Cell]int
	// netsOfLE caches the nets each LE touches (for incremental cost).
	netsOfLE [][]*netlist.Net
}

// assignPads binds ports to pads: UCF NET LOCs first, then unconstrained
// ports round-robin over remaining pads.
func (pl *placer) assignPads() error {
	pl.padOf = map[*netlist.Port]device.Pad{}
	used := map[device.Pad]bool{}
	for _, port := range pl.nl.Ports {
		loc := port.Pad
		if loc == "" && pl.cons != nil {
			loc = pl.cons.NetLocs[port.Name]
		}
		if loc == "" {
			continue
		}
		pd, err := device.ParsePad(loc)
		if err != nil {
			return fmt.Errorf("place: port %q: %w", port.Name, err)
		}
		if !pl.part.ValidPad(pd) {
			return fmt.Errorf("place: port %q LOC %q not on %s", port.Name, loc, pl.part.Name)
		}
		if used[pd] {
			return fmt.Errorf("place: pad %s assigned twice", pd.Name())
		}
		used[pd] = true
		pl.padOf[port] = pd
	}
	next := 0
	for _, port := range pl.nl.Ports {
		if _, done := pl.padOf[port]; done {
			continue
		}
		for ; next < pl.part.NumPads(); next++ {
			pd := padAt(pl.part, next)
			if !used[pd] {
				used[pd] = true
				pl.padOf[port] = pd
				next++
				break
			}
		}
		if _, done := pl.padOf[port]; !done {
			return fmt.Errorf("place: out of pads for %d ports on %s", len(pl.nl.Ports), pl.part.Name)
		}
	}
	return nil
}

// padAt enumerates pads interleaved across edges so auto-assigned ports
// spread around the perimeter.
func padAt(p *device.Part, i int) device.Pad {
	edges := []int{device.EdgeL, device.EdgeT, device.EdgeR, device.EdgeB}
	e := edges[i%4]
	k := i / 4
	limit := p.Rows
	if e == device.EdgeT || e == device.EdgeB {
		limit = p.Cols
	}
	return device.Pad{Edge: e, Index: k % limit}
}

// regions resolves the allowed region of every LE and checks capacity.
func (pl *placer) regions() error {
	full := frames.FullRegion(pl.part)
	pl.region = make([]frames.Region, len(pl.les))
	demand := map[frames.Region]int{}
	for i, e := range pl.les {
		rg := full
		if pl.cons != nil {
			if r, ok := pl.cons.RegionFor(e.name()); ok {
				rg = r
			}
		}
		if e.fixed && !rg.Contains(e.fixedLoc.Row, e.fixedLoc.Col) {
			return fmt.Errorf("place: LE %q LOC %v outside its AREA_GROUP range %v",
				e.name(), e.fixedLoc, rg)
		}
		pl.region[i] = rg
		demand[rg]++
	}
	for rg, n := range demand {
		if cap := rg.CLBs() * 4; n > cap {
			return fmt.Errorf("place: region %v holds %d LEs but needs %d", rg, cap, n)
		}
	}
	return nil
}

// initial seeds the starting placement: fixed LOCs first, then guide
// positions, then random legal sites for whatever remains.
func (pl *placer) initial() error {
	pl.siteOf = make([]phys.Site, len(pl.les))
	pl.occ = map[phys.Site]int{}
	placed := make([]bool, len(pl.les))
	for i, e := range pl.les {
		if !e.fixed {
			continue
		}
		for leIdx := 0; leIdx < 2 && !placed[i]; leIdx++ {
			s := phys.Site{Row: e.fixedLoc.Row, Col: e.fixedLoc.Col, Slice: e.fixedLoc.Slice, LE: leIdx}
			if pl.legalAt(i, s) {
				pl.put(i, s)
				placed[i] = true
			}
		}
		if !placed[i] {
			return fmt.Errorf("place: cannot honour LOC %v for %q", pl.les[i].fixedLoc, e.name())
		}
	}
	// Guided LEs take their previous sites when still legal.
	if pl.guide != nil {
		for i, e := range pl.les {
			if placed[i] {
				continue
			}
			if s, ok := pl.guideSite(e); ok && pl.legalAt(i, s) {
				pl.put(i, s)
				placed[i] = true
			}
		}
	}
	for i, e := range pl.les {
		if placed[i] {
			continue
		}
		s, ok := pl.randomFreeSite(i)
		if !ok {
			return fmt.Errorf("place: no free site for %q in %v", e.name(), pl.region[i])
		}
		pl.put(i, s)
		placed[i] = true
	}
	pl.cellLE = leOf(pl.les)
	pl.netsOfLE = make([][]*netlist.Net, len(pl.les))
	for _, n := range pl.nl.Nets {
		if n.IsClock || !n.Driven() {
			continue
		}
		touched := map[int]bool{}
		forEachNetCell(n, func(c *netlist.Cell) {
			if idx, ok := pl.cellLE[c]; ok && !touched[idx] {
				touched[idx] = true
				pl.netsOfLE[idx] = append(pl.netsOfLE[idx], n)
			}
		})
	}
	return nil
}

func forEachNetCell(n *netlist.Net, f func(*netlist.Cell)) {
	if n.Driver.Cell != nil {
		f(n.Driver.Cell)
	}
	for _, s := range n.Sinks {
		f(s.Cell)
	}
}

func (pl *placer) put(i int, s phys.Site) {
	pl.occ[s] = i
	pl.siteOf[i] = s
}

// legalAt reports whether LE i may occupy site s (region, occupancy, and
// slice clock compatibility).
func (pl *placer) legalAt(i int, s phys.Site) bool {
	if _, taken := pl.occ[s]; taken {
		return false
	}
	if !pl.region[i].Contains(s.Row, s.Col) {
		return false
	}
	e := pl.les[i]
	if e.fixed && (e.fixedLoc.Row != s.Row || e.fixedLoc.Col != s.Col || e.fixedLoc.Slice != s.Slice) {
		return false
	}
	// The two FFs of one slice share CLK/CE/SR pins.
	if e.ff != nil {
		other := phys.Site{Row: s.Row, Col: s.Col, Slice: s.Slice, LE: 1 - s.LE}
		if oi, taken := pl.occ[other]; taken {
			of := pl.les[oi].ff
			if of != nil && !sameCtl(e.ff, of) {
				return false
			}
		}
	}
	return true
}

func sameCtl(a, b *netlist.Cell) bool {
	return a.Clock == b.Clock && a.CE == b.CE && a.Reset == b.Reset
}

func (pl *placer) randomFreeSite(i int) (phys.Site, bool) {
	rg := pl.region[i]
	for try := 0; try < 200; try++ {
		s := phys.Site{
			Row:   rg.R1 + pl.rng.Intn(rg.Rows()),
			Col:   rg.C1 + pl.rng.Intn(rg.Cols()),
			Slice: pl.rng.Intn(2),
			LE:    pl.rng.Intn(2),
		}
		if pl.legalAt(i, s) {
			return s, true
		}
	}
	// Dense region: scan exhaustively.
	for r := rg.R1; r <= rg.R2; r++ {
		for c := rg.C1; c <= rg.C2; c++ {
			for sl := 0; sl < 2; sl++ {
				for leIdx := 0; leIdx < 2; leIdx++ {
					s := phys.Site{Row: r, Col: c, Slice: sl, LE: leIdx}
					if pl.legalAt(i, s) {
						return s, true
					}
				}
			}
		}
	}
	return phys.Site{}, false
}

// netHPWL computes a net's half-perimeter wirelength over placed pins and
// pads.
func (pl *placer) netHPWL(n *netlist.Net) float64 {
	minR, minC := math.MaxInt32, math.MaxInt32
	maxR, maxC := -1, -1
	add := func(r, c int) {
		minR, minC = min(minR, r), min(minC, c)
		maxR, maxC = max(maxR, r), max(maxC, c)
	}
	forEachNetCell(n, func(c *netlist.Cell) {
		if idx, ok := pl.cellLE[c]; ok {
			s := pl.siteOf[idx]
			add(s.Row, s.Col)
		}
	})
	if n.DriverPort != nil {
		r, c := pl.part.PadTile(pl.padOf[n.DriverPort])
		add(r, c)
	}
	for _, p := range n.SinkPorts {
		r, c := pl.part.PadTile(pl.padOf[p])
		add(r, c)
	}
	if maxR < 0 {
		return 0
	}
	return float64(maxR-minR) + float64(maxC-minC)
}

func (pl *placer) totalCost() float64 {
	cost := 0.0
	for _, n := range pl.nl.Nets {
		if !n.IsClock && n.Driven() {
			cost += pl.netHPWL(n)
		}
	}
	return cost
}

// anneal runs the simulated-annealing loop.
func (pl *placer) anneal(effort float64) {
	movable := make([]int, 0, len(pl.les))
	for i, e := range pl.les {
		if !e.fixed {
			movable = append(movable, i)
		}
	}
	if len(movable) == 0 {
		return
	}
	// Estimate the cost scale with probing moves (always reverted, so a
	// guided starting placement survives the calibration).
	var deltas []float64
	for t := 0; t < 50; t++ {
		if d, ok := pl.tryMove(movable, measureOnly); ok {
			deltas = append(deltas, math.Abs(d))
		}
	}
	temp := 1.0
	if len(deltas) > 0 {
		sum := 0.0
		for _, d := range deltas {
			sum += d
		}
		temp = 2*sum/float64(len(deltas)) + 1
	}
	// Low effort means incremental refinement (e.g. guided re-placement):
	// start nearly greedy instead of scrambling the seed at high
	// temperature.
	if effort < 1 {
		temp = temp*effort + 0.01
	}
	movesPerT := int(effort * float64(max(64, 24*len(movable))))
	for ; temp > 0.05; temp *= 0.9 {
		accepted := 0
		for m := 0; m < movesPerT; m++ {
			if _, ok := pl.tryMove(movable, temp); ok {
				accepted++
			}
		}
		if accepted == 0 && temp < 1 {
			break
		}
	}
	// Greedy clean-up pass.
	for m := 0; m < movesPerT; m++ {
		pl.tryMove(movable, 0)
	}
}

// measureOnly makes tryMove compute and report a proposal's delta without
// keeping it, for temperature calibration.
const measureOnly = -1.0

// tryMove proposes one displacement or swap at temperature temp, applying it
// per the Metropolis criterion. It returns the applied delta.
func (pl *placer) tryMove(movable []int, temp float64) (float64, bool) {
	i := movable[pl.rng.Intn(len(movable))]
	rg := pl.region[i]
	target := phys.Site{
		Row:   rg.R1 + pl.rng.Intn(rg.Rows()),
		Col:   rg.C1 + pl.rng.Intn(rg.Cols()),
		Slice: pl.rng.Intn(2),
		LE:    pl.rng.Intn(2),
	}
	from := pl.siteOf[i]
	if target == from {
		return 0, false
	}
	j, swap := pl.occ[target]
	if swap {
		if pl.les[j].fixed {
			return 0, false
		}
		// The partner must be allowed at our site and vice versa.
		if !pl.region[j].Contains(from.Row, from.Col) || !pl.region[i].Contains(target.Row, target.Col) {
			return 0, false
		}
		if !pl.slicePairOK(i, target, j) || !pl.slicePairOK(j, from, i) {
			return 0, false
		}
	} else if !pl.legalAt(i, target) {
		return 0, false
	}

	affected := pl.affectedNets(i, j, swap)
	before := 0.0
	for _, n := range affected {
		before += pl.netHPWL(n)
	}
	pl.apply(i, target, j, from, swap)
	after := 0.0
	for _, n := range affected {
		after += pl.netHPWL(n)
	}
	delta := after - before
	if temp == measureOnly {
		pl.apply(i, from, j, target, swap)
		return delta, true
	}
	if delta <= 0 || (temp > 0 && pl.rng.Float64() < math.Exp(-delta/temp)) {
		return delta, true
	}
	// Revert.
	pl.apply(i, from, j, target, swap)
	return 0, false
}

// slicePairOK checks FF control compatibility for LE i landing at site s,
// ignoring LE j (its swap partner).
func (pl *placer) slicePairOK(i int, s phys.Site, j int) bool {
	e := pl.les[i]
	if e.ff == nil {
		return true
	}
	other := phys.Site{Row: s.Row, Col: s.Col, Slice: s.Slice, LE: 1 - s.LE}
	oi, taken := pl.occ[other]
	if !taken || oi == j {
		return true
	}
	of := pl.les[oi].ff
	return of == nil || sameCtl(e.ff, of)
}

func (pl *placer) affectedNets(i, j int, swap bool) []*netlist.Net {
	if !swap {
		return pl.netsOfLE[i]
	}
	seen := map[*netlist.Net]bool{}
	var out []*netlist.Net
	for _, n := range pl.netsOfLE[i] {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, n := range pl.netsOfLE[j] {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

func (pl *placer) apply(i int, si phys.Site, j int, sj phys.Site, swap bool) {
	delete(pl.occ, pl.siteOf[i])
	if swap {
		delete(pl.occ, pl.siteOf[j])
	}
	pl.put(i, si)
	if swap {
		pl.put(j, sj)
	}
}

// guideSite resolves an LE's guide position: every member cell present in
// the guide must agree on the site.
func (pl *placer) guideSite(e *le) (phys.Site, bool) {
	var site phys.Site
	found := false
	for _, c := range e.cells() {
		s, ok := pl.guide[c.Name]
		if !ok {
			continue
		}
		if found && s != site {
			return phys.Site{}, false
		}
		site, found = s, true
	}
	return site, found && site.Valid(pl.part)
}
