package place

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/phys"
	"repro/internal/ucf"
)

// Options configures a placement run.
type Options struct {
	// Seed drives every random choice; equal seeds give equal placements.
	Seed int64
	// Constraints carries the UCF floorplan (may be nil).
	Constraints *ucf.Constraints
	// Effort scales annealing iterations; 1.0 is the default, smaller is
	// faster and sloppier.
	Effort float64
	// Guide seeds initial positions from a previous implementation (cell
	// name -> site), the role of the Xilinx flow's guide files: re-placing
	// a revised design starts from the old placement instead of randomness,
	// so low-effort incremental runs converge to comparable quality.
	Guide map[string]phys.Site
	// Starts runs this many independently seeded annealing starts and keeps
	// the lowest-cost placement (ties broken by the lowest start index).
	// Every start derives its seed from Seed and its index alone, so the
	// chosen placement is byte-identical for any Workers value. <= 0 means 1
	// (plain single-start annealing, identical to Starts == 1 with the run
	// seeded by Seed itself).
	Starts int
	// Workers bounds the pool multi-start annealing runs on; it changes
	// wall-clock only, never the result. <= 0 selects
	// parallel.DefaultWorkers().
	Workers int
}

// Placement metrics (always on; see internal/obs): annealing inner-loop
// volume and the multi-start fan-out, the counters behind the paper's C3
// "CAD time" claim at the placement stage.
var (
	mStarts   = obs.GetCounter("place.starts")
	mMoves    = obs.GetCounter("place.moves_proposed")
	mAccepted = obs.GetCounter("place.moves_accepted")
	mRecomps  = obs.GetCounter("place.bbox_recomputes")
)

// Place packs and places the netlist on the part, returning a physical
// design with Cells and Ports assigned (Routes left for the router).
func Place(p *device.Part, nl *netlist.Design, opts Options) (*phys.Design, error) {
	return PlaceCtx(context.Background(), p, nl, opts)
}

// PlaceCtx is Place with a context for observability (one "place.start" span
// per annealing start) and for scheduling the multi-start pool.
func PlaceCtx(ctx context.Context, p *device.Part, nl *netlist.Design, opts Options) (*phys.Design, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	if opts.Effort <= 0 {
		opts.Effort = 1.0
	}
	starts := opts.Starts
	if starts <= 0 {
		starts = 1
	}
	cons := opts.Constraints
	if cons != nil {
		if err := cons.Validate(p); err != nil {
			return nil, err
		}
	}
	les, err := pack(nl, cons)
	if err != nil {
		return nil, err
	}

	// Each start is an independent anneal driven solely by its derived seed;
	// the packed LEs and the netlist are shared read-only. Results are
	// collected by start index, so the winner — lowest cost, ties to the
	// lowest index — is byte-identical no matter how many workers ran the
	// batch (or whether it ran at all: one start short-circuits the pool).
	runs := make([]*placer, starts)
	runStart := func(s int) error {
		pl := newPlacer(p, nl, les, cons, opts.Guide, startSeed(opts.Seed, s))
		if err := pl.run(opts.Effort); err != nil {
			return err
		}
		runs[s] = pl
		return nil
	}
	if starts == 1 {
		if err := runStart(0); err != nil {
			return nil, err
		}
	} else {
		err := parallel.ForEachNCtx(ctx, starts, func(ctx context.Context, s int) error {
			_, sp := obs.Start(ctx, "place.start")
			sp.SetInt("start", int64(s))
			err := runStart(s)
			if err == nil {
				sp.SetInt("cost", runs[s].cost)
				sp.SetInt("moves", runs[s].moves)
			}
			sp.EndErr(err)
			return err
		}, parallel.WithWorkers(opts.Workers))
		if err != nil {
			return nil, err
		}
	}
	best := runs[0]
	for _, pl := range runs[1:] {
		if pl.cost < best.cost {
			best = pl
		}
	}
	return best.design()
}

// startSeed derives the seed of one annealing start. Start 0 keeps the
// caller's seed (so Starts == 1 reproduces a plain Place run bit for bit);
// later starts mix the index in through a splitmix64 finalizer, decorrelating
// them from each other and from neighbouring caller seeds (callers commonly
// use Seed, Seed+1, ...).
func startSeed(seed int64, s int) int64 {
	if s == 0 {
		return seed
	}
	z := uint64(seed) + uint64(s)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// lePin is one logic element's connection to a tracked net: the net's index
// and how many member cells of the LE pin into it.
type lePin struct {
	net  int32
	mult int32
}

// netBB is a net's bounding box over its placed pins plus the number of pins
// lying exactly on each boundary. Moves update it incrementally: growing is
// O(1); shrinking decrements the boundary count and only rescans the net's
// pins when the count hits zero — the classic incremental-HPWL bookkeeping
// (cf. VPR), which turns the anneal loop's per-move cost from O(pins of all
// affected nets) map-walking into a handful of integer compares.
type netBB struct {
	minR, maxR, minC, maxC     int32
	nMinR, nMaxR, nMinC, nMaxC int32
}

func (b *netBB) hpwl() int64 {
	return int64(b.maxR-b.minR) + int64(b.maxC-b.minC)
}

type placer struct {
	part  *device.Part
	nl    *netlist.Design
	les   []*le
	cons  *ucf.Constraints
	guide map[string]phys.Site
	rng   *rand.Rand

	region []frames.Region // allowed region per LE
	siteOf []phys.Site
	occ    []int32 // site index -> LE index, -1 free
	padOf  map[*netlist.Port]device.Pad

	cellLE map[*netlist.Cell]int

	// Incremental cost model (built once the initial placement exists).
	nets    []*netlist.Net // tracked nets (non-clock, driven, >= 1 pin)
	lePins  [][]lePin      // per LE: tracked nets it pins into
	netLEs  [][]int32      // per net: member LE indices (with multiplicity)
	netPads [][]phys.Site  // per net: static pad tiles (Row/Col only)
	bb      []netBB
	cost    int64 // total HPWL over tracked nets

	// Inner-loop counters, flushed to the obs registry once per run.
	moves, accepted, recomputes int64
}

func newPlacer(p *device.Part, nl *netlist.Design, les []*le, cons *ucf.Constraints,
	guide map[string]phys.Site, seed int64) *placer {
	return &placer{
		part:  p,
		nl:    nl,
		les:   les,
		cons:  cons,
		guide: guide,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// run executes one complete annealing start.
func (pl *placer) run(effort float64) error {
	if err := pl.assignPads(); err != nil {
		return err
	}
	if err := pl.regions(); err != nil {
		return err
	}
	if err := pl.initial(); err != nil {
		return err
	}
	pl.buildCostModel()
	pl.anneal(effort)
	mStarts.Inc()
	mMoves.Add(pl.moves)
	mAccepted.Add(pl.accepted)
	mRecomps.Add(pl.recomputes)
	return nil
}

// design renders the placement as a physical design.
func (pl *placer) design() (*phys.Design, error) {
	d := phys.NewDesign(pl.part, pl.nl)
	for i, e := range pl.les {
		site := pl.siteOf[i]
		for _, c := range e.cells() {
			d.Cells[c] = site
		}
	}
	for _, port := range pl.nl.Ports {
		d.Ports[port] = pl.padOf[port]
	}
	if err := d.CheckPlacement(); err != nil {
		return nil, fmt.Errorf("place: internal error: %w", err)
	}
	return d, nil
}

// siteIdx flattens a site into the occupancy array.
func (pl *placer) siteIdx(s phys.Site) int {
	return ((s.Row*pl.part.Cols+s.Col)*2+s.Slice)*2 + s.LE
}

// assignPads binds ports to pads: UCF NET LOCs first, then unconstrained
// ports round-robin over remaining pads.
func (pl *placer) assignPads() error {
	pl.padOf = map[*netlist.Port]device.Pad{}
	used := map[device.Pad]bool{}
	for _, port := range pl.nl.Ports {
		loc := port.Pad
		if loc == "" && pl.cons != nil {
			loc = pl.cons.NetLocs[port.Name]
		}
		if loc == "" {
			continue
		}
		pd, err := device.ParsePad(loc)
		if err != nil {
			return fmt.Errorf("place: port %q: %w", port.Name, err)
		}
		if !pl.part.ValidPad(pd) {
			return fmt.Errorf("place: port %q LOC %q not on %s", port.Name, loc, pl.part.Name)
		}
		if used[pd] {
			return fmt.Errorf("place: pad %s assigned twice", pd.Name())
		}
		used[pd] = true
		pl.padOf[port] = pd
	}
	next := 0
	for _, port := range pl.nl.Ports {
		if _, done := pl.padOf[port]; done {
			continue
		}
		for ; next < pl.part.NumPads(); next++ {
			pd := padAt(pl.part, next)
			if !used[pd] {
				used[pd] = true
				pl.padOf[port] = pd
				next++
				break
			}
		}
		if _, done := pl.padOf[port]; !done {
			return fmt.Errorf("place: out of pads for %d ports on %s", len(pl.nl.Ports), pl.part.Name)
		}
	}
	return nil
}

// padAt enumerates pads interleaved across edges so auto-assigned ports
// spread around the perimeter.
func padAt(p *device.Part, i int) device.Pad {
	edges := []int{device.EdgeL, device.EdgeT, device.EdgeR, device.EdgeB}
	e := edges[i%4]
	k := i / 4
	limit := p.Rows
	if e == device.EdgeT || e == device.EdgeB {
		limit = p.Cols
	}
	return device.Pad{Edge: e, Index: k % limit}
}

// regions resolves the allowed region of every LE and checks capacity.
func (pl *placer) regions() error {
	full := frames.FullRegion(pl.part)
	pl.region = make([]frames.Region, len(pl.les))
	demand := map[frames.Region]int{}
	for i, e := range pl.les {
		rg := full
		if pl.cons != nil {
			if r, ok := pl.cons.RegionFor(e.name()); ok {
				rg = r
			}
		}
		if e.fixed && !rg.Contains(e.fixedLoc.Row, e.fixedLoc.Col) {
			return fmt.Errorf("place: LE %q LOC %v outside its AREA_GROUP range %v",
				e.name(), e.fixedLoc, rg)
		}
		pl.region[i] = rg
		demand[rg]++
	}
	for rg, n := range demand {
		if cap := rg.CLBs() * 4; n > cap {
			return fmt.Errorf("place: region %v holds %d LEs but needs %d", rg, cap, n)
		}
	}
	return nil
}

// initial seeds the starting placement: fixed LOCs first, then guide
// positions, then random legal sites for whatever remains.
func (pl *placer) initial() error {
	pl.siteOf = make([]phys.Site, len(pl.les))
	pl.occ = make([]int32, pl.part.Rows*pl.part.Cols*4)
	for i := range pl.occ {
		pl.occ[i] = -1
	}
	placed := make([]bool, len(pl.les))
	for i, e := range pl.les {
		if !e.fixed {
			continue
		}
		for leIdx := 0; leIdx < 2 && !placed[i]; leIdx++ {
			s := phys.Site{Row: e.fixedLoc.Row, Col: e.fixedLoc.Col, Slice: e.fixedLoc.Slice, LE: leIdx}
			if pl.legalAt(i, s) {
				pl.put(i, s)
				placed[i] = true
			}
		}
		if !placed[i] {
			return fmt.Errorf("place: cannot honour LOC %v for %q", pl.les[i].fixedLoc, e.name())
		}
	}
	// Guided LEs take their previous sites when still legal.
	if pl.guide != nil {
		for i, e := range pl.les {
			if placed[i] {
				continue
			}
			if s, ok := pl.guideSite(e); ok && pl.legalAt(i, s) {
				pl.put(i, s)
				placed[i] = true
			}
		}
	}
	for i, e := range pl.les {
		if placed[i] {
			continue
		}
		s, ok := pl.randomFreeSite(i)
		if !ok {
			return fmt.Errorf("place: no free site for %q in %v", e.name(), pl.region[i])
		}
		pl.put(i, s)
		placed[i] = true
	}
	return nil
}

// buildCostModel precomputes the per-net pin lists and bounding boxes the
// incremental HPWL bookkeeping works on. Tracked nets are exactly the ones
// the cost function always covered: non-clock, driven. Pin positions are LE
// sites (updated by moves) plus static pad tiles.
func (pl *placer) buildCostModel() {
	pl.cellLE = leOf(pl.les)
	pl.lePins = make([][]lePin, len(pl.les))
	for _, n := range pl.nl.Nets {
		if n.IsClock || !n.Driven() {
			continue
		}
		k := int32(len(pl.nets))
		var leIdx []int32
		forEachNetCell(n, func(c *netlist.Cell) {
			if idx, ok := pl.cellLE[c]; ok {
				leIdx = append(leIdx, int32(idx))
			}
		})
		var pads []phys.Site
		if n.DriverPort != nil {
			r, c := pl.part.PadTile(pl.padOf[n.DriverPort])
			pads = append(pads, phys.Site{Row: r, Col: c})
		}
		for _, p := range n.SinkPorts {
			r, c := pl.part.PadTile(pl.padOf[p])
			pads = append(pads, phys.Site{Row: r, Col: c})
		}
		if len(leIdx) == 0 && len(pads) == 0 {
			continue
		}
		pl.nets = append(pl.nets, n)
		pl.netLEs = append(pl.netLEs, leIdx)
		pl.netPads = append(pl.netPads, pads)
		// Per-LE pin multiplicities (an LE may carry several cells of one
		// net; its move then moves that many pins).
		for _, idx := range leIdx {
			pins := pl.lePins[idx]
			found := false
			for pi := range pins {
				if pins[pi].net == k {
					pins[pi].mult++
					found = true
					break
				}
			}
			if !found {
				pl.lePins[idx] = append(pins, lePin{net: k, mult: 1})
			}
		}
	}
	pl.bb = make([]netBB, len(pl.nets))
	pl.cost = 0
	for k := range pl.nets {
		pl.recomputeBB(k)
		pl.cost += pl.bb[k].hpwl()
	}
}

func forEachNetCell(n *netlist.Net, f func(*netlist.Cell)) {
	if n.Driver.Cell != nil {
		f(n.Driver.Cell)
	}
	for _, s := range n.Sinks {
		f(s.Cell)
	}
}

// recomputeBB rebuilds one net's bounding box and boundary counts from its
// current pin positions.
func (pl *placer) recomputeBB(k int) {
	b := &pl.bb[k]
	*b = netBB{minR: math.MaxInt32, maxR: -1, minC: math.MaxInt32, maxC: -1}
	for _, s := range pl.netPads[k] {
		addDim(&b.minR, &b.maxR, &b.nMinR, &b.nMaxR, int32(s.Row), 1)
		addDim(&b.minC, &b.maxC, &b.nMinC, &b.nMaxC, int32(s.Col), 1)
	}
	for _, idx := range pl.netLEs[k] {
		s := pl.siteOf[idx]
		addDim(&b.minR, &b.maxR, &b.nMinR, &b.nMaxR, int32(s.Row), 1)
		addDim(&b.minC, &b.maxC, &b.nMinC, &b.nMaxC, int32(s.Col), 1)
	}
}

// addDim folds one pin coordinate into one dimension of a bounding box.
func addDim(min, max, nMin, nMax *int32, v, mult int32) {
	switch {
	case v < *min:
		*min, *nMin = v, mult
	case v == *min:
		*nMin += mult
	}
	switch {
	case v > *max:
		*max, *nMax = v, mult
	case v == *max:
		*nMax += mult
	}
}

// removeDim retracts one pin coordinate from one dimension; it reports
// whether a boundary lost its last pin, requiring a full rescan.
func removeDim(min, max, nMin, nMax *int32, v int32) bool {
	rescan := false
	if v == *min {
		*nMin--
		rescan = rescan || *nMin == 0
	}
	if v == *max {
		*nMax--
		rescan = rescan || *nMax == 0
	}
	return rescan
}

// movePin updates net k's bounding box for one LE pin moving between tiles.
// New coordinates are folded in before old ones are retracted, so a shrink is
// detected only when the boundary truly empties.
func (pl *placer) movePin(k int32, from, to phys.Site, mult int32) {
	b := &pl.bb[k]
	addDim(&b.minR, &b.maxR, &b.nMinR, &b.nMaxR, int32(to.Row), mult)
	addDim(&b.minC, &b.maxC, &b.nMinC, &b.nMaxC, int32(to.Col), mult)
	rescan := false
	for m := int32(0); m < mult; m++ {
		rescan = removeDim(&b.minR, &b.maxR, &b.nMinR, &b.nMaxR, int32(from.Row)) || rescan
		rescan = removeDim(&b.minC, &b.maxC, &b.nMinC, &b.nMaxC, int32(from.Col)) || rescan
	}
	if rescan {
		pl.recomputes++
		pl.recomputeBB(int(k))
	}
}

// moveLE relocates LE i, maintaining occupancy, positions, every touched
// net's bounding box, and the total cost.
func (pl *placer) moveLE(i int, to phys.Site) {
	from := pl.siteOf[i]
	if fi := pl.siteIdx(from); pl.occ[fi] == int32(i) {
		pl.occ[fi] = -1
	}
	pl.occ[pl.siteIdx(to)] = int32(i)
	pl.siteOf[i] = to
	if from.Row == to.Row && from.Col == to.Col {
		return // same tile: HPWL cannot change
	}
	for _, pin := range pl.lePins[i] {
		b := &pl.bb[pin.net]
		old := b.hpwl()
		pl.movePin(pin.net, from, to, pin.mult)
		pl.cost += pl.bb[pin.net].hpwl() - old
	}
}

func (pl *placer) put(i int, s phys.Site) {
	pl.occ[pl.siteIdx(s)] = int32(i)
	pl.siteOf[i] = s
}

// legalAt reports whether LE i may occupy site s (region, occupancy, and
// slice clock compatibility).
func (pl *placer) legalAt(i int, s phys.Site) bool {
	if pl.occ[pl.siteIdx(s)] >= 0 {
		return false
	}
	if !pl.region[i].Contains(s.Row, s.Col) {
		return false
	}
	e := pl.les[i]
	if e.fixed && (e.fixedLoc.Row != s.Row || e.fixedLoc.Col != s.Col || e.fixedLoc.Slice != s.Slice) {
		return false
	}
	// The two FFs of one slice share CLK/CE/SR pins.
	if e.ff != nil {
		other := phys.Site{Row: s.Row, Col: s.Col, Slice: s.Slice, LE: 1 - s.LE}
		if oi := pl.occ[pl.siteIdx(other)]; oi >= 0 {
			of := pl.les[oi].ff
			if of != nil && !sameCtl(e.ff, of) {
				return false
			}
		}
	}
	return true
}

func sameCtl(a, b *netlist.Cell) bool {
	return a.Clock == b.Clock && a.CE == b.CE && a.Reset == b.Reset
}

func (pl *placer) randomFreeSite(i int) (phys.Site, bool) {
	rg := pl.region[i]
	for try := 0; try < 200; try++ {
		s := phys.Site{
			Row:   rg.R1 + pl.rng.Intn(rg.Rows()),
			Col:   rg.C1 + pl.rng.Intn(rg.Cols()),
			Slice: pl.rng.Intn(2),
			LE:    pl.rng.Intn(2),
		}
		if pl.legalAt(i, s) {
			return s, true
		}
	}
	// Dense region: scan exhaustively.
	for r := rg.R1; r <= rg.R2; r++ {
		for c := rg.C1; c <= rg.C2; c++ {
			for sl := 0; sl < 2; sl++ {
				for leIdx := 0; leIdx < 2; leIdx++ {
					s := phys.Site{Row: r, Col: c, Slice: sl, LE: leIdx}
					if pl.legalAt(i, s) {
						return s, true
					}
				}
			}
		}
	}
	return phys.Site{}, false
}

// netHPWL computes a net's half-perimeter wirelength from scratch — the
// reference the incremental bookkeeping is validated against (see
// totalCost), no longer the anneal loop's inner cost function.
func (pl *placer) netHPWL(n *netlist.Net) float64 {
	minR, minC := math.MaxInt32, math.MaxInt32
	maxR, maxC := -1, -1
	add := func(r, c int) {
		minR, minC = min(minR, r), min(minC, c)
		maxR, maxC = max(maxR, r), max(maxC, c)
	}
	forEachNetCell(n, func(c *netlist.Cell) {
		if idx, ok := pl.cellLE[c]; ok {
			s := pl.siteOf[idx]
			add(s.Row, s.Col)
		}
	})
	if n.DriverPort != nil {
		r, c := pl.part.PadTile(pl.padOf[n.DriverPort])
		add(r, c)
	}
	for _, p := range n.SinkPorts {
		r, c := pl.part.PadTile(pl.padOf[p])
		add(r, c)
	}
	if maxR < 0 {
		return 0
	}
	return float64(maxR-minR) + float64(maxC-minC)
}

func (pl *placer) totalCost() float64 {
	cost := 0.0
	for _, n := range pl.nets {
		cost += pl.netHPWL(n)
	}
	return cost
}

// anneal runs the simulated-annealing loop.
func (pl *placer) anneal(effort float64) {
	movable := make([]int, 0, len(pl.les))
	for i, e := range pl.les {
		if !e.fixed {
			movable = append(movable, i)
		}
	}
	if len(movable) == 0 {
		return
	}
	// Estimate the cost scale with probing moves (always reverted, so a
	// guided starting placement survives the calibration).
	var deltas []float64
	for t := 0; t < 50; t++ {
		if d, ok := pl.tryMove(movable, measureOnly); ok {
			deltas = append(deltas, math.Abs(d))
		}
	}
	temp := 1.0
	if len(deltas) > 0 {
		sum := 0.0
		for _, d := range deltas {
			sum += d
		}
		temp = 2*sum/float64(len(deltas)) + 1
	}
	// Low effort means incremental refinement (e.g. guided re-placement):
	// start nearly greedy instead of scrambling the seed at high
	// temperature.
	if effort < 1 {
		temp = temp*effort + 0.01
	}
	movesPerT := int(effort * float64(max(64, 24*len(movable))))
	for ; temp > 0.05; temp *= 0.9 {
		accepted := 0
		for m := 0; m < movesPerT; m++ {
			if _, ok := pl.tryMove(movable, temp); ok {
				accepted++
			}
		}
		if accepted == 0 && temp < 1 {
			break
		}
	}
	// Greedy clean-up pass.
	for m := 0; m < movesPerT; m++ {
		pl.tryMove(movable, 0)
	}
}

// measureOnly makes tryMove compute and report a proposal's delta without
// keeping it, for temperature calibration.
const measureOnly = -1.0

// tryMove proposes one displacement or swap at temperature temp, applying it
// per the Metropolis criterion. It returns the applied delta.
//
// The cost delta falls out of the incremental bounding-box update: apply the
// move, read the maintained total, and revert on rejection. HPWL is integer
// arithmetic throughout, so the delta is exact — identical to the historical
// rescan of every affected net — and the RNG draw sequence is unchanged,
// which keeps equal seeds producing equal placements across this
// optimisation.
func (pl *placer) tryMove(movable []int, temp float64) (float64, bool) {
	i := movable[pl.rng.Intn(len(movable))]
	rg := pl.region[i]
	target := phys.Site{
		Row:   rg.R1 + pl.rng.Intn(rg.Rows()),
		Col:   rg.C1 + pl.rng.Intn(rg.Cols()),
		Slice: pl.rng.Intn(2),
		LE:    pl.rng.Intn(2),
	}
	pl.moves++
	from := pl.siteOf[i]
	if target == from {
		return 0, false
	}
	ji := pl.occ[pl.siteIdx(target)]
	j, swap := int(ji), ji >= 0
	if swap {
		if pl.les[j].fixed {
			return 0, false
		}
		// The partner must be allowed at our site and vice versa.
		if !pl.region[j].Contains(from.Row, from.Col) || !pl.region[i].Contains(target.Row, target.Col) {
			return 0, false
		}
		if !pl.slicePairOK(i, target, j) || !pl.slicePairOK(j, from, i) {
			return 0, false
		}
	} else if !pl.legalAt(i, target) {
		return 0, false
	}

	before := pl.cost
	pl.apply(i, target, j, from, swap)
	delta := float64(pl.cost - before)
	if temp == measureOnly {
		pl.apply(i, from, j, target, swap)
		return delta, true
	}
	if delta <= 0 || (temp > 0 && pl.rng.Float64() < math.Exp(-delta/temp)) {
		pl.accepted++
		return delta, true
	}
	// Revert.
	pl.apply(i, from, j, target, swap)
	return 0, false
}

// slicePairOK checks FF control compatibility for LE i landing at site s,
// ignoring LE j (its swap partner).
func (pl *placer) slicePairOK(i int, s phys.Site, j int) bool {
	e := pl.les[i]
	if e.ff == nil {
		return true
	}
	other := phys.Site{Row: s.Row, Col: s.Col, Slice: s.Slice, LE: 1 - s.LE}
	oi := pl.occ[pl.siteIdx(other)]
	if oi < 0 || int(oi) == j {
		return true
	}
	of := pl.les[oi].ff
	return of == nil || sameCtl(e.ff, of)
}

// apply moves LE i to si and, for swaps, LE j to sj. LEs move one at a time
// — occupancy, position and bounding boxes stay mutually consistent at every
// step, so a rescan triggered mid-swap sees a coherent placement.
func (pl *placer) apply(i int, si phys.Site, j int, sj phys.Site, swap bool) {
	pl.moveLE(i, si)
	if swap {
		pl.moveLE(j, sj)
	}
}

// guideSite resolves an LE's guide position: every member cell present in
// the guide must agree on the site.
func (pl *placer) guideSite(e *le) (phys.Site, bool) {
	var site phys.Site
	found := false
	for _, c := range e.cells() {
		s, ok := pl.guide[c.Name]
		if !ok {
			continue
		}
		if found && s != site {
			return phys.Site{}, false
		}
		site, found = s, true
	}
	return site, found && site.Valid(pl.part)
}
