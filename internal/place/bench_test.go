package place

import (
	"context"
	"testing"

	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/netlist"
)

func sboxDesign(t *testing.T, n int) *netlist.Design {
	t.Helper()
	d, err := designs.Standalone(designs.SBoxBank{N: n, Seed: 9}, "sb", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestIncrementalCostMatchesRescan validates the incremental-HPWL
// bookkeeping: after any number of accepted/rejected/reverted moves at any
// temperature, the maintained total must equal a from-scratch rescan of
// every net. HPWL is integral, so the comparison is exact.
func TestIncrementalCostMatchesRescan(t *testing.T) {
	p := device.MustByName("XCV50")
	for _, nl := range []*netlist.Design{counterDesign(t, 8), sboxDesign(t, 16)} {
		mb, err := NewMoveBencher(p, nl, 7)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := float64(mb.Cost()), mb.CostFromScratch(); got != want {
			t.Fatalf("%s: initial cost %v, rescan says %v", nl.Name, got, want)
		}
		// Greedy, hot, and warm phases hit different paths: pure downhill
		// moves, Metropolis accepts of uphill moves, and reverts.
		for _, temp := range []float64{32, 4, 0.5, 0} {
			for i := 0; i < 2000; i++ {
				mb.Step(temp)
			}
			if got, want := float64(mb.Cost()), mb.CostFromScratch(); got != want {
				t.Fatalf("%s: after moves at temp %v cost %v, rescan says %v",
					nl.Name, temp, got, want)
			}
		}
	}
}

// TestAnnealMoveZeroAlloc pins the annealing inner loop at zero allocations
// per proposed move — the placement half of the flow's hot-path contract.
func TestAnnealMoveZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	p := device.MustByName("XCV50")
	mb, err := NewMoveBencher(p, sboxDesign(t, 16), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		mb.Step(2.0)
	}
	if allocs := testing.AllocsPerRun(5000, func() { mb.Step(2.0) }); allocs != 0 {
		t.Errorf("tryMove allocates %.2f objects per move, want 0", allocs)
	}
}

// TestMultiStartDeterministicAcrossWorkers pins multi-start placement's core
// contract: the winning placement depends on (Seed, Starts) alone, never on
// how many workers annealed the batch.
func TestMultiStartDeterministicAcrossWorkers(t *testing.T) {
	p := device.MustByName("XCV50")
	nl := sboxDesign(t, 12)
	ctx := context.Background()
	ref, err := PlaceCtx(ctx, p, nl, Options{Seed: 42, Starts: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		d, err := PlaceCtx(ctx, p, nl, Options{Seed: 42, Starts: 4, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, c := range nl.Cells {
			if d.Cells[c] != ref.Cells[c] {
				t.Fatalf("cell %q at %v with workers=%d, %v with workers=1",
					c.Name, d.Cells[c], workers, ref.Cells[c])
			}
		}
		for _, pt := range nl.Ports {
			if d.Ports[pt] != ref.Ports[pt] {
				t.Fatalf("port %q at %v with workers=%d, %v with workers=1",
					pt.Name, d.Ports[pt], workers, ref.Ports[pt])
			}
		}
	}
}

// TestMultiStartPicksLowestCostStart replays each start's anneal by hand and
// checks PlaceCtx returns exactly the placement of the lowest-cost start
// (ties to the lowest index) — the selection rule worker scheduling must
// never perturb.
func TestMultiStartPicksLowestCostStart(t *testing.T) {
	p := device.MustByName("XCV50")
	nl := sboxDesign(t, 12)
	const seed, starts = 11, 4

	bestStart, bestCost := 0, int64(0)
	for s := 0; s < starts; s++ {
		les, err := pack(nl, nil)
		if err != nil {
			t.Fatal(err)
		}
		pl := newPlacer(p, nl, les, nil, nil, startSeed(seed, s))
		if err := pl.run(1.0); err != nil {
			t.Fatal(err)
		}
		if s == 0 || pl.cost < bestCost {
			bestStart, bestCost = s, pl.cost
		}
	}

	got, err := Place(p, nl, Options{Seed: seed, Starts: starts})
	if err != nil {
		t.Fatal(err)
	}
	// A single-start run seeded with the winner's derived seed reproduces
	// the winning anneal exactly.
	want, err := Place(p, nl, Options{Seed: startSeed(seed, bestStart)})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range nl.Cells {
		if got.Cells[c] != want.Cells[c] {
			t.Fatalf("cell %q: multi-start picked %v, lowest-cost start %d has %v",
				c.Name, got.Cells[c], bestStart, want.Cells[c])
		}
	}
}
