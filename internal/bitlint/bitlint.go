// Package bitlint is an independent verifier for Virtex configuration
// bitstreams. It re-derives what a bitstream does from the raw bytes —
// reusing only the packet-header decoding of internal/bitstream, never the
// writer or the port virtual machine — checks the packet stream for
// well-formedness (sync word, register sequencing, type-1/type-2 counts, the
// running CRC chain, FAR legality against the device model), reconstructs
// the frames.Memory image the stream configures, and reports structured
// findings.
//
// On top of the decoder sit the differential checkers (verify.go): Verify
// compares bitlint's independent reconstruction against the port VM's, and
// VerifySplice proves base + partial == full — the paper's central safety
// claim for partial reconfiguration (PAPER.md §3–4): a JPG-generated partial
// bitstream downloaded onto a running device must leave the device in
// exactly the state a full rebuild would have produced.
package bitlint

import (
	"fmt"
	"strings"

	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/obs"
)

// Severity grades a finding.
type Severity int

const (
	// SevWarning marks a stream that is suspicious but would configure a
	// device (e.g. junk words after DESYNCH).
	SevWarning Severity = iota
	// SevError marks a stream that is malformed or unsafe to download.
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Finding is one structured lint result.
type Finding struct {
	// Code is a stable machine-readable identifier (e.g. "crc-mismatch");
	// DESIGN.md §13 maps codes to the paper's safety claims.
	Code     string
	Severity Severity
	// Offset is the word offset in the stream the finding anchors to, or -1
	// when it concerns the stream as a whole.
	Offset int
	Detail string
}

func (f Finding) String() string {
	if f.Offset >= 0 {
		return fmt.Sprintf("%s[%s] @word %d: %s", f.Severity, f.Code, f.Offset, f.Detail)
	}
	return fmt.Sprintf("%s[%s]: %s", f.Severity, f.Code, f.Detail)
}

// Lint metrics (always on; see internal/obs).
var (
	mDecodes  = obs.GetCounter("bitlint.decodes")
	mVerifies = obs.GetCounter("bitlint.verifies")
	mFindings = obs.GetCounter("bitlint.findings")
	mErrors   = obs.GetCounter("bitlint.error_findings")
)

// Report is the result of decoding (and optionally differentially verifying)
// one bitstream.
type Report struct {
	// Part is the device the stream targets (inferred from the FLR write
	// unless the caller pinned it).
	Part *device.Part
	// Frames is bitlint's independent reconstruction of the configuration
	// memory the stream produces (nil when decoding could not start).
	Frames *frames.Memory
	// Packets counts decoded packets after sync; FramesWritten counts frames
	// committed; CRCChecks counts CRC register comparisons that matched.
	Packets       int
	FramesWritten int
	CRCChecks     int
	// Started reports whether the stream issued the start-up command (full
	// bitstreams do; partial bitstreams must not).
	Started  bool
	Findings []Finding
}

func (r *Report) add(sev Severity, code string, offset int, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{
		Code: code, Severity: sev, Offset: offset, Detail: fmt.Sprintf(format, args...),
	})
	mFindings.Inc()
	if sev == SevError {
		mErrors.Inc()
	}
}

// Errors returns the error-severity findings.
func (r *Report) Errors() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity == SevError {
			out = append(out, f)
		}
	}
	return out
}

// Err summarises the report as an error: nil when no error-severity finding
// was recorded, else one error naming the first few.
func (r *Report) Err() error {
	errs := r.Errors()
	if len(errs) == 0 {
		return nil
	}
	const show = 3
	var b strings.Builder
	fmt.Fprintf(&b, "bitlint: %d error finding(s)", len(errs))
	for i, f := range errs {
		if i == show {
			fmt.Fprintf(&b, "; and %d more", len(errs)-show)
			break
		}
		b.WriteString("; ")
		b.WriteString(f.String())
	}
	return fmt.Errorf("%s", b.String())
}

// String renders the report for humans (the bitinfo lint output).
func (r *Report) String() string {
	var b strings.Builder
	part := "unknown part"
	if r.Part != nil {
		part = r.Part.Name
	}
	fmt.Fprintf(&b, "bitlint: %s, %d packets, %d frames written, %d CRC checks, started=%v\n",
		part, r.Packets, r.FramesWritten, r.CRCChecks, r.Started)
	if len(r.Findings) == 0 {
		b.WriteString("clean: no findings\n")
	}
	for _, f := range r.Findings {
		fmt.Fprintln(&b, f)
	}
	return b.String()
}
