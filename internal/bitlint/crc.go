package bitlint

// Independent reimplementation of the Virtex configuration CRC, written from
// the protocol description rather than shared with internal/bitstream: a
// 16-bit shift register with polynomial x^16 + x^15 + x^2 + 1 (0x8005),
// clocked once per input bit, fed the 4 low bits of the register address and
// then the 32 data bits, each LSB first. Keeping a second implementation is
// the point — a bug in the writer's CRC cannot cancel out here.

const crcPoly = 0x8005

// crcWord folds one register write (address + data word) into the running
// CRC, treating the pair as a single 36-bit operand shifted in LSB first.
func crcWord(crc uint16, reg int, word uint32) uint16 {
	v := uint64(reg&0xF) | uint64(word)<<4
	for i := 0; i < 36; i++ {
		fb := (crc >> 15) ^ uint16(v>>uint(i))&1
		crc <<= 1
		crc ^= crcPoly * fb
	}
	return crc
}
