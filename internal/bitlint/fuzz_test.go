package bitlint

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/frames"
)

// FuzzDecode is the differential fuzz oracle: for arbitrary input bytes,
// bitlint's decoder and the port VM are two independent implementations of
// the same configuration logic, so whenever bitlint finds no errors the port
// must accept the stream and both must reconstruct the identical frame image
// (and vice versa — the port must not accept what bitlint rejects). The
// comparison is diffApply itself, so any divergence surfaces as a
// port-divergence / stats-divergence / differential-mismatch finding.
func FuzzDecode(f *testing.F) {
	for _, name := range []string{
		"e1_base_full.bit", "e1_partial.bit", "e1_spliced_full.bit",
		"e10_prev_full.bit", "e10_delta.bit", "e10_next_full.bit",
	} {
		if bs, err := os.ReadFile(filepath.Join("testdata", name)); err == nil {
			f.Add(bs)
		}
	}
	f.Add([]byte{})
	f.Add(streamOf(bitstream.DummyWord, bitstream.SyncWord))
	f.Add(streamOf(bitstream.DummyWord, bitstream.SyncWord,
		hdr1(bitstream.OpWrite, bitstream.RegCMD, 1), bitstream.CmdDESYNCH, 0xDEADBEEF))

	p := device.MustByName("XCV50")
	f.Fuzz(func(t *testing.T, data []byte) {
		rep := DecodeFor(p, data)
		diffApply(rep, frames.New(p), data)
		for _, fd := range rep.Findings {
			switch fd.Code {
			case "port-divergence", "stats-divergence", "differential-mismatch":
				t.Fatalf("decoder divergence on %d bytes:\n%s", len(data), rep)
			}
		}
	})
}

// Crashers and divergences found by earlier fuzz runs are pinned here so they
// cannot regress silently even when the fuzz corpus is unavailable.
func TestFuzzRegressions(t *testing.T) {
	p := device.MustByName("XCV50")
	cases := []struct {
		name string
		bs   []byte
	}{
		// A type-1 NOP with a non-zero count: the port skips no payload for
		// NOPs while a naive decoder would; both sides must agree.
		{"nop-with-count", streamOf(bitstream.DummyWord, bitstream.SyncWord,
			hdr1(bitstream.OpNOP, 0, 5), 1, 2, 3, 4, 5)},
		// DESYNCH immediately followed by a word that parses as a packet:
		// both decoders must treat it as trailer, not as a packet.
		{"packet-after-desynch", streamOf(bitstream.DummyWord, bitstream.SyncWord,
			hdr1(bitstream.OpWrite, bitstream.RegCMD, 1), bitstream.CmdDESYNCH,
			hdr1(bitstream.OpWrite, bitstream.RegFAR, 1), 0)},
		// Re-sync after DESYNCH starts a fresh packet context.
		{"resync", streamOf(bitstream.DummyWord, bitstream.SyncWord,
			hdr1(bitstream.OpWrite, bitstream.RegCMD, 1), bitstream.CmdDESYNCH,
			bitstream.DummyWord, bitstream.SyncWord,
			hdr1(bitstream.OpWrite, bitstream.RegCMD, 1), bitstream.CmdRCRC)},
		// Zero-length input and a lone sync word.
		{"empty", nil},
		{"bare-sync", streamOf(bitstream.SyncWord)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := DecodeFor(p, tc.bs)
			diffApply(rep, frames.New(p), tc.bs)
			for _, fd := range rep.Findings {
				switch fd.Code {
				case "port-divergence", "stats-divergence", "differential-mismatch":
					t.Fatalf("decoder divergence:\n%s", rep)
				}
			}
		})
	}
}
