package bitlint

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/frames"
)

// Differential verification: bitlint's independent reconstruction is only
// trustworthy evidence if it is checked against a second, unrelated decoder.
// The functions here decode a stream twice — once with bitlint's decoder,
// once with the port VM (bitstream.Apply) — and require the two frame images
// to be byte-identical, then extend the same argument to splices: applying a
// partial on top of a base must equal the full rebuild.

// maxDiffReported bounds how many differing frames a differential finding
// enumerates.
const maxDiffReported = 4

// lintOnly lists error codes that are deliberately stricter than the port VM:
// the device scans past pre-sync junk and treats a sync-less stream as a
// no-op, but a tool that emits one has a bug, so bitlint errors anyway. These
// codes are excluded from the port-acceptance differential.
var lintOnly = map[string]bool{
	"no-sync":          true,
	"junk-before-sync": true,
}

// portVisibleErrors counts the error findings the port VM is expected to
// reject on too.
func portVisibleErrors(rep *Report) int {
	n := 0
	for _, f := range rep.Errors() {
		if !lintOnly[f.Code] {
			n++
		}
	}
	return n
}

// Verify independently decodes a full bitstream and differentially compares
// the reconstruction against the port VM. The returned report carries the
// findings of both the lint pass and the comparison; rep.Err() is nil iff
// the stream is safe.
func Verify(full []byte) (*Report, error) {
	p, err := prescanPart(full)
	if err != nil {
		return nil, err
	}
	rep := DecodeFor(p, full)
	ref := frames.New(p)
	diffApply(rep, ref, full)
	mVerifies.Inc()
	return rep, nil
}

// VerifyFor is Verify with the target part pinned by the caller instead of
// inferred from the stream's FLR write.
func VerifyFor(p *device.Part, full []byte) (*Report, error) {
	rep := DecodeFor(p, full)
	diffApply(rep, frames.New(p), full)
	mVerifies.Inc()
	return rep, nil
}

// VerifyAgainst is Verify with the producer's intent pinned: the decoded
// image must also equal want, the configuration memory the producer claims
// it serialised. This is the flow's post-bitgen check.
func VerifyAgainst(bs []byte, want *frames.Memory) (*Report, error) {
	rep := DecodeFor(want.Part, bs)
	ref := frames.New(want.Part)
	diffApply(rep, ref, bs)
	diffWant(rep, want, "producer")
	mVerifies.Inc()
	return rep, rep.Err()
}

// VerifyPartial checks a partial bitstream against the base configuration it
// will be downloaded onto: bitlint overlays the partial on a copy of base,
// the port VM does the same, and the two must agree frame for frame.
func VerifyPartial(base *frames.Memory, partial []byte) (*Report, error) {
	rep := DecodeOnto(base, partial)
	ref := base.Clone()
	diffApply(rep, ref, partial)
	if rep.Started {
		rep.add(SevError, "partial-starts", -1,
			"partial bitstream issues the start-up command")
	}
	mVerifies.Inc()
	return rep, rep.Err()
}

// VerifySplice proves splice-equals-rebuild from raw bytes alone: decoding
// base and overlaying partial must reproduce exactly the image full decodes
// to. This is the paper's safety claim for JPG-generated partials — the
// spliced device state is indistinguishable from a full reconfiguration.
func VerifySplice(base, partial, full []byte) (*Report, error) {
	p, err := prescanPart(base)
	if err != nil {
		return nil, fmt.Errorf("bitlint: base: %w", err)
	}
	baseRep := DecodeFor(p, base)
	diffApply(baseRep, frames.New(p), base)
	if err := baseRep.Err(); err != nil {
		return baseRep, fmt.Errorf("bitlint: base stream unsafe: %w", err)
	}
	wantRep := DecodeFor(p, full)
	diffApply(wantRep, frames.New(p), full)
	if err := wantRep.Err(); err != nil {
		return wantRep, fmt.Errorf("bitlint: full stream unsafe: %w", err)
	}
	rep, err := VerifyPartial(baseRep.Frames, partial)
	if err != nil {
		return rep, err
	}
	diffWant(rep, wantRep.Frames, "full-rebuild")
	return rep, rep.Err()
}

// VerifySpliceMemory is VerifySplice when the producer holds base and target
// as frame images rather than streams (the incremental flow's edit path).
func VerifySpliceMemory(base *frames.Memory, partial []byte, want *frames.Memory) (*Report, error) {
	rep, err := VerifyPartial(base, partial)
	if err != nil {
		return rep, err
	}
	diffWant(rep, want, "full-rebuild")
	return rep, rep.Err()
}

// diffApply runs the port VM over bs into ref and compares against the
// report's independent reconstruction.
func diffApply(rep *Report, ref *frames.Memory, bs []byte) {
	stats, err := bitstream.Apply(ref, bs)
	if err != nil {
		// The port rejects outright what bitlint downgraded to findings; the
		// differential only holds when both decoders accepted the stream.
		if len(rep.Errors()) == 0 {
			rep.add(SevError, "port-divergence", -1,
				"port VM rejects a stream bitlint found no errors in: %v", err)
		}
		return
	}
	if portVisibleErrors(rep) > 0 {
		rep.add(SevError, "port-divergence", -1,
			"bitlint found errors in a stream the port VM accepts")
		return
	}
	if stats.FramesWritten != rep.FramesWritten {
		rep.add(SevError, "stats-divergence", -1,
			"port VM wrote %d frames, bitlint %d", stats.FramesWritten, rep.FramesWritten)
	}
	if stats.Started != rep.Started {
		rep.add(SevError, "stats-divergence", -1,
			"port VM started=%v, bitlint started=%v", stats.Started, rep.Started)
	}
	diffImage(rep, ref, "port-vm")
}

// diffWant compares the report's reconstruction against an externally
// claimed target image.
func diffWant(rep *Report, want *frames.Memory, who string) {
	diffImage(rep, want, who)
}

func diffImage(rep *Report, want *frames.Memory, who string) {
	if rep.Frames == nil {
		rep.add(SevError, "no-image", -1, "no reconstructed image to compare against %s", who)
		return
	}
	if rep.Frames.Equal(want) {
		return
	}
	diffs, err := rep.Frames.Diff(want)
	if err != nil {
		rep.add(SevError, "differential-mismatch", -1, "cannot diff against %s: %v", who, err)
		return
	}
	detail := fmt.Sprintf("%d frame(s) differ from %s:", len(diffs), who)
	for i, f := range diffs {
		if i == maxDiffReported {
			detail += " …"
			break
		}
		detail += fmt.Sprintf(" %v", f)
	}
	rep.add(SevError, "differential-mismatch", -1, "%s", detail)
}
