package bitlint

import (
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/frames"
)

func randomMemory(t *testing.T, partName string, seed int64) *frames.Memory {
	t.Helper()
	p := device.MustByName(partName)
	m := frames.New(p)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 2000; i++ {
		bc := p.CLBBit(rng.Intn(p.Rows), rng.Intn(p.Cols), rng.Intn(device.CLBLocalBits))
		m.SetBit(bc, true)
	}
	return m
}

// hdr1 assembles a type-1 packet header the way the writer does, without
// depending on the writer.
func hdr1(op, reg, count int) uint32 {
	return 1<<29 | uint32(op)<<27 | uint32(reg)<<13 | uint32(count)
}

func streamOf(words ...uint32) []byte {
	bs := make([]byte, 4*len(words))
	for i, w := range words {
		binary.BigEndian.PutUint32(bs[4*i:], w)
	}
	return bs
}

func hasFinding(rep *Report, code string) bool {
	for _, f := range rep.Findings {
		if f.Code == code {
			return true
		}
	}
	return false
}

func TestDecodeReconstructsFullBitstream(t *testing.T) {
	src := randomMemory(t, "XCV50", 1)
	rep, err := Decode(bitstream.WriteFull(src))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Part.Name != "XCV50" {
		t.Fatalf("inferred part %s", rep.Part.Name)
	}
	if !rep.Frames.Equal(src) {
		t.Fatal("reconstruction differs from the serialised memory")
	}
	if !rep.Started {
		t.Fatal("full bitstream did not register as starting the device")
	}
	if rep.CRCChecks == 0 {
		t.Fatal("no CRC check recorded")
	}
	if rep.FramesWritten != src.Part.TotalFrames() {
		t.Fatalf("FramesWritten = %d, want %d", rep.FramesWritten, src.Part.TotalFrames())
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("clean stream produced findings:\n%s", rep)
	}
}

func TestVerifyCleanStreams(t *testing.T) {
	p := device.MustByName("XCV50")
	src := randomMemory(t, "XCV50", 2)

	t.Run("full", func(t *testing.T) {
		rep, err := Verify(bitstream.WriteFull(src))
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("against-producer", func(t *testing.T) {
		rep, err := VerifyAgainst(bitstream.WriteFull(src), src)
		if err != nil {
			t.Fatalf("%v\n%s", err, rep)
		}
	})
	t.Run("partial", func(t *testing.T) {
		runs := []bitstream.FrameRun{{Start: device.MakeFAR(0, 2, 0), N: device.FramesCLBCol}}
		partial, err := bitstream.WritePartial(src, runs)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := VerifyPartial(frames.New(p), partial)
		if err != nil {
			t.Fatalf("%v\n%s", err, rep)
		}
		if rep.FramesWritten != device.FramesCLBCol {
			t.Fatalf("FramesWritten = %d, want %d", rep.FramesWritten, device.FramesCLBCol)
		}
		if rep.Started {
			t.Fatal("partial registered as starting the device")
		}
	})
	t.Run("compressed-partial", func(t *testing.T) {
		// All-zero column: the writer collapses it into FDRI + MFWR chain.
		runs := []bitstream.FrameRun{{Start: device.MakeFAR(0, 5, 0), N: device.FramesCLBCol}}
		partial, err := bitstream.WritePartialCompressed(frames.New(p), runs)
		if err != nil {
			t.Fatal(err)
		}
		base := randomMemory(t, "XCV50", 3)
		if _, err := VerifyPartial(base, partial); err != nil {
			t.Fatal(err)
		}
	})
}

func TestVerifyDetectsCorruptedPayload(t *testing.T) {
	src := randomMemory(t, "XCV50", 4)
	golden := bitstream.WriteFull(src)
	pis, err := bitstream.Inspect(golden)
	if err != nil {
		t.Fatal(err)
	}
	fdriOff := -1
	for _, pi := range pis {
		if pi.Reg == bitstream.RegFDRI && pi.Type == bitstream.PacketType2 {
			fdriOff = pi.Offset
		}
	}
	if fdriOff < 0 {
		t.Fatal("no type-2 FDRI packet in the golden stream")
	}
	bs := append([]byte(nil), golden...)
	bs[4*(fdriOff+5)] ^= 0x40 // flip one payload bit

	rep, err := Verify(bs)
	if err != nil {
		t.Fatal(err)
	}
	verr := rep.Err()
	if verr == nil {
		t.Fatal("corrupted payload verified clean")
	}
	if !hasFinding(rep, "crc-mismatch") {
		t.Fatalf("corruption not caught by the CRC chain: %v", verr)
	}
}

func TestVerifyPartialRejectsFullStream(t *testing.T) {
	src := randomMemory(t, "XCV50", 5)
	_, err := VerifyPartial(frames.New(src.Part), bitstream.WriteFull(src))
	if err == nil || !strings.Contains(err.Error(), "partial-starts") {
		t.Fatalf("full stream accepted as a partial: %v", err)
	}
}

func TestVerifySplice(t *testing.T) {
	p := device.MustByName("XCV50")
	baseMem := randomMemory(t, "XCV50", 6)
	baseFull := bitstream.WriteFull(baseMem)

	// A variant differing in a handful of frames across two columns.
	variant := baseMem.Clone()
	var changed []device.FAR
	for _, far := range []device.FAR{
		device.MakeFAR(0, 3, 0), device.MakeFAR(0, 3, 1),
		device.MakeFAR(0, 7, 10), device.MakeFAR(1, 0, 4),
	} {
		fr := append([]uint32(nil), variant.Frame(far)...)
		fr[2] ^= 0x00F0F000
		if err := variant.SetFrame(far, fr); err != nil {
			t.Fatal(err)
		}
		changed = append(changed, far)
	}
	partial, err := bitstream.WritePartialForFARs(variant, changed)
	if err != nil {
		t.Fatal(err)
	}
	full := bitstream.WriteFull(variant)

	t.Run("splice-equals-rebuild", func(t *testing.T) {
		rep, err := VerifySplice(baseFull, partial, full)
		if err != nil {
			t.Fatalf("%v\n%s", err, rep)
		}
	})
	t.Run("wrong-full", func(t *testing.T) {
		other := bitstream.WriteFull(randomMemory(t, "XCV50", 7))
		rep, err := VerifySplice(baseFull, partial, other)
		if err == nil {
			t.Fatal("splice against an unrelated full stream verified clean")
		}
		if !hasFinding(rep, "differential-mismatch") {
			t.Fatalf("mismatch not reported differentially: %v", err)
		}
	})
	t.Run("memory-form", func(t *testing.T) {
		if _, err := VerifySpliceMemory(baseMem, partial, variant); err != nil {
			t.Fatal(err)
		}
		if _, err := VerifySpliceMemory(frames.New(p), partial, variant); err == nil {
			t.Fatal("splice from the wrong base verified clean")
		}
	})
}

func TestLintFindings(t *testing.T) {
	p := device.MustByName("XCV50")
	src := randomMemory(t, "XCV50", 8)
	golden := bitstream.WriteFull(src)
	flr := uint32(p.FrameWords() - 1)

	prefix := []uint32{bitstream.DummyWord, bitstream.SyncWord,
		hdr1(bitstream.OpWrite, bitstream.RegFLR, 1), flr}

	cases := []struct {
		name string
		bs   []byte
		code string
		sev  Severity
	}{
		{"junk-before-sync", append(streamOf(0xDEADBEEF), golden...), "junk-before-sync", SevError},
		{"trailer-junk", append(append([]byte(nil), golden...), streamOf(0xDEADBEEF)...), "trailer-junk", SevWarning},
		{"no-sync", streamOf(bitstream.DummyWord, bitstream.DummyWord), "no-sync", SevError},
		{"read-in-download", streamOf(append(prefix,
			hdr1(bitstream.OpRead, bitstream.RegSTAT, 1))...), "read-in-download", SevError},
		{"invalid-far", streamOf(append(prefix,
			hdr1(bitstream.OpWrite, bitstream.RegFAR, 1), 0x0FFFFFFF)...), "invalid-far", SevError},
		{"fdri-without-wcfg", streamOf(append(prefix,
			hdr1(bitstream.OpWrite, bitstream.RegFAR, 1), uint32(device.MakeFAR(0, 1, 0)),
			hdr1(bitstream.OpWrite, bitstream.RegFDRI, 24),
			0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
			0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)...), "fdri-without-wcfg", SevError},
		{"write-to-read-only", streamOf(append(prefix,
			hdr1(bitstream.OpWrite, bitstream.RegSTAT, 1), 0)...), "write-to-read-only", SevError},
		{"unknown-cmd", streamOf(append(prefix,
			hdr1(bitstream.OpWrite, bitstream.RegCMD, 1), 99)...), "unknown-cmd", SevWarning},
		{"flr-mismatch", streamOf(bitstream.DummyWord, bitstream.SyncWord,
			hdr1(bitstream.OpWrite, bitstream.RegFLR, 1), flr+7), "flr-mismatch", SevError},
		{"truncated-packet", streamOf(append(prefix,
			hdr1(bitstream.OpWrite, bitstream.RegFDRI, 24), 0, 0, 0)...), "truncated-packet", SevError},
		{"bad-reg-count", streamOf(append(prefix,
			hdr1(bitstream.OpWrite, bitstream.RegFAR, 2), 0, 0)...), "bad-reg-count", SevError},
		{"mfwr-without-wcfg", streamOf(append(prefix,
			hdr1(bitstream.OpWrite, bitstream.RegMFWR, 1), uint32(device.MakeFAR(0, 1, 0)))...),
			"mfwr-without-wcfg", SevError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := DecodeFor(p, tc.bs)
			found := false
			for _, f := range rep.Findings {
				if f.Code == tc.code {
					found = true
					if f.Severity != tc.sev {
						t.Fatalf("finding %s has severity %v, want %v", f.Code, f.Severity, tc.sev)
					}
				}
			}
			if !found {
				t.Fatalf("no %s finding; report:\n%s", tc.code, rep)
			}
		})
	}
}

func TestReportErrAndString(t *testing.T) {
	rep := &Report{Part: device.MustByName("XCV50")}
	if rep.Err() != nil {
		t.Fatal("empty report reports an error")
	}
	if !strings.Contains(rep.String(), "clean") {
		t.Fatalf("clean report renders as %q", rep.String())
	}
	rep.add(SevWarning, "no-desynch", -1, "w")
	if rep.Err() != nil {
		t.Fatal("warning-only report reports an error")
	}
	for i := 0; i < 5; i++ {
		rep.add(SevError, "crc-mismatch", i, "e%d", i)
	}
	err := rep.Err()
	if err == nil || !strings.Contains(err.Error(), "5 error finding(s)") {
		t.Fatalf("Err() = %v", err)
	}
	if !strings.Contains(err.Error(), "and 2 more") {
		t.Fatalf("Err() does not elide: %v", err)
	}
}
