// Command gen regenerates the checked-in bitlint corpora from real JPG-flow
// outputs: an E1-style base / partial / spliced-full triple and an E10-style
// incremental-edit triple (previous full, delta partial, next full). The
// files seed both the corpus regression test (corpus_test.go) and the fuzz
// targets. Run from the repo root:
//
//	go run ./internal/bitlint/testdata/gen
//
// The builds are fully deterministic (fixed seeds, serial flow), so a rerun
// reproduces the checked-in bytes unless the CAD flow itself changed.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/flow"
)

func main() {
	log.SetFlags(0)
	dir := filepath.Join("internal", "bitlint", "testdata")
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	if err := generate(dir); err != nil {
		log.Fatal(err)
	}
}

func generate(dir string) error {
	ctx := context.Background()
	part := device.MustByName("XCV50")
	opts := flow.Options{Seed: 1, Effort: 1.0}

	// E1-style: base design, one re-implemented variant, its partial, and the
	// full bitstream the splice must land on.
	base, err := flow.BuildBase(ctx, part, []designs.Instance{
		{Prefix: "u1/", Gen: designs.Counter{Bits: 6}},
		{Prefix: "u2/", Gen: designs.SBoxBank{N: 4, Seed: 3}},
	}, opts)
	if err != nil {
		return fmt.Errorf("base build: %w", err)
	}
	proj, err := core.NewProject(base.Bitstream)
	if err != nil {
		return err
	}
	vopts := opts
	vopts.Seed = 2
	variant, err := flow.BuildVariant(ctx, base, "u2/", designs.SBoxBank{N: 4, Seed: 9}, vopts)
	if err != nil {
		return fmt.Errorf("variant build: %w", err)
	}
	mod, err := proj.AddModule("u2_v2", variant.XDL, variant.UCF)
	if err != nil {
		return err
	}
	res, err := proj.GeneratePartial(mod, core.GenerateOptions{Strict: true})
	if err != nil {
		return err
	}
	spliced := proj.Base.Clone()
	if _, err := bitstream.Apply(spliced, res.Bitstream); err != nil {
		return fmt.Errorf("splice: %w", err)
	}
	if err := emit(dir, map[string][]byte{
		"e1_base_full.bit":    base.Bitstream,
		"e1_partial.bit":      res.Bitstream,
		"e1_spliced_full.bit": bitstream.WriteFull(spliced),
	}); err != nil {
		return err
	}

	// E10-style: one init edit absorbed incrementally; the delta partial plus
	// the previous and next full bitstreams form a splice triple.
	sess, err := flow.NewVariantEditSession(variant, base.Regions["u2/"], vopts)
	if err != nil {
		return err
	}
	loop := core.NewEditLoop(proj, sess, "u2_edit", core.GenerateOptions{})
	next := variant.Netlist.Clone()
	if err := next.SetInit("u2/sbox0", 0xBEEF); err != nil {
		return err
	}
	er, err := loop.Edit(ctx, next)
	if err != nil {
		return fmt.Errorf("edit: %w", err)
	}
	if er.Incremental.Delta == nil {
		return fmt.Errorf("edit produced no delta (path %s)", er.Incremental.Stats.Path)
	}
	return emit(dir, map[string][]byte{
		"e10_prev_full.bit": variant.Bitstream,
		"e10_delta.bit":     er.Incremental.Delta.Bitstream,
		"e10_next_full.bit": er.Incremental.Artifacts.Bitstream,
	})
}

func emit(dir string, files map[string][]byte) error {
	for name, bs := range files {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, bs, 0o644); err != nil {
			return err
		}
		log.Printf("wrote %s (%d bytes)", path, len(bs))
	}
	return nil
}
