package bitlint

import (
	"os"
	"path/filepath"
	"testing"
)

// The checked-in corpora are real JPG-flow outputs (see testdata/gen): an
// E1-style base / partial / spliced-full triple and an E10-style incremental
// prev / delta / next triple. They pin the verifier against genuine tool
// output rather than synthetic streams.

func corpusFile(t testing.TB, name string) []byte {
	t.Helper()
	bs, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("corpus file missing (regenerate with go run ./internal/bitlint/testdata/gen): %v", err)
	}
	return bs
}

func TestCorpusFullStreamsVerifyClean(t *testing.T) {
	for _, name := range []string{
		"e1_base_full.bit", "e1_spliced_full.bit",
		"e10_prev_full.bit", "e10_next_full.bit",
	} {
		t.Run(name, func(t *testing.T) {
			rep, err := Verify(corpusFile(t, name))
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.Err(); err != nil {
				t.Fatalf("%v\n%s", err, rep)
			}
			if !rep.Started {
				t.Fatal("full corpus stream does not start the device")
			}
		})
	}
}

func TestCorpusPartialsVerifyClean(t *testing.T) {
	for _, tc := range []struct{ base, partial string }{
		{"e1_base_full.bit", "e1_partial.bit"},
		{"e10_prev_full.bit", "e10_delta.bit"},
	} {
		t.Run(tc.partial, func(t *testing.T) {
			rep, err := Decode(corpusFile(t, tc.base))
			if err != nil {
				t.Fatal(err)
			}
			prep, err := VerifyPartial(rep.Frames, corpusFile(t, tc.partial))
			if err != nil {
				t.Fatalf("%v\n%s", err, prep)
			}
		})
	}
}

func TestCorpusSpliceTriples(t *testing.T) {
	for _, tc := range []struct{ name, base, partial, full string }{
		{"e1", "e1_base_full.bit", "e1_partial.bit", "e1_spliced_full.bit"},
		{"e10", "e10_prev_full.bit", "e10_delta.bit", "e10_next_full.bit"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := VerifySplice(corpusFile(t, tc.base), corpusFile(t, tc.partial), corpusFile(t, tc.full))
			if err != nil {
				t.Fatalf("%v\n%s", err, rep)
			}
		})
	}
}
