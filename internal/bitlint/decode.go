package bitlint

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/frames"
)

// decoder walks a packet stream word by word, recording findings instead of
// bailing on the first problem, and maintains its own view of the device
// state: sync, running CRC, selected command, FAR, and the frame pipeline.
type decoder struct {
	p   *device.Part
	rep *Report
	mem *frames.Memory

	crc       uint16
	synced    bool
	desynched bool // saw DESYNCH: only pad words expected until re-sync
	// cmd is the most recent CMD-register write: the configuration logic
	// gates FDRI/MFWR on the *current* command being WCFG, so any
	// intervening command disarms frame writes.
	cmd     uint32
	far     device.FAR
	farSet  bool // a FAR write has been seen since sync
	flrSeen bool
	lastReg int
	// lastFrame is the most recently committed frame — the payload an MFWR
	// write replicates.
	lastFrame []uint32

	trailerNoted bool
	dead         bool // frame image diverged; keep linting, stop comparing
}

// Decode independently parses a full or partial bitstream, inferring the
// target part from its FLR write. It returns an error only when decoding
// cannot start at all (odd length, no sync, no or unknown FLR); every other
// problem is a structured finding in the report.
func Decode(bs []byte) (*Report, error) {
	p, err := prescanPart(bs)
	if err != nil {
		return nil, err
	}
	return DecodeFor(p, bs), nil
}

// DecodeFor is Decode with the target part pinned by the caller (partial
// bitstreams re-applied to a known device, fuzzing, tests). All problems,
// including a missing or mismatched FLR, are findings.
func DecodeFor(p *device.Part, bs []byte) *Report {
	return decodeInto(p, frames.New(p), bs)
}

// DecodeOnto overlays the stream onto a copy of base — the independent view
// of "download this partial onto a device currently configured as base".
func DecodeOnto(base *frames.Memory, bs []byte) *Report {
	return decodeInto(base.Part, base.Clone(), bs)
}

// prescanPart scans the raw words for the FLR write that pins the part,
// without trusting any other stream structure.
func prescanPart(bs []byte) (*device.Part, error) {
	if len(bs)%4 != 0 {
		return nil, fmt.Errorf("bitlint: stream length %d is not word-aligned", len(bs))
	}
	synced := false
	for i := 0; i+4 <= len(bs); i += 4 {
		w := binary.BigEndian.Uint32(bs[i:])
		if !synced {
			synced = w == bitstream.SyncWord
			continue
		}
		h, err := bitstream.DecodeHeader(w, -1)
		if err != nil || h.Type != bitstream.PacketType1 {
			continue
		}
		if h.Reg == bitstream.RegFLR && h.Op == bitstream.OpWrite && h.Count == 1 && i+8 <= len(bs) {
			flr := binary.BigEndian.Uint32(bs[i+4:])
			for _, p := range device.All() {
				if uint32(p.FrameWords()-1) == flr {
					return p, nil
				}
			}
			return nil, fmt.Errorf("bitlint: FLR %d matches no known part", flr)
		}
	}
	if !synced {
		return nil, fmt.Errorf("bitlint: no sync word in %d bytes", len(bs))
	}
	return nil, fmt.Errorf("bitlint: no FLR write found; cannot identify part")
}

func decodeInto(p *device.Part, mem *frames.Memory, bs []byte) *Report {
	mDecodes.Inc()
	rep := &Report{Part: p, Frames: mem}
	d := &decoder{p: p, rep: rep, mem: mem, lastReg: -1}
	if len(bs)%4 != 0 {
		rep.add(SevError, "unaligned-length", -1, "stream length %d is not a multiple of 4", len(bs))
		bs = bs[:len(bs)/4*4]
	}
	words := make([]uint32, len(bs)/4)
	for i := range words {
		words[i] = binary.BigEndian.Uint32(bs[4*i:])
	}
	d.run(words)
	return rep
}

func (d *decoder) run(words []uint32) {
	i := 0
	everSynced := false
	// prevWasSelect tracks whether the previous packet was a zero-count
	// type-1 write — the register select a type-2 packet is supposed to
	// follow immediately.
	prevWasSelect := false
	for i < len(words) {
		w := words[i]
		if !d.synced {
			if w == bitstream.SyncWord {
				d.synced = true
				d.desynched = false
				d.lastReg = -1
				everSynced = true
			} else if w != bitstream.DummyWord {
				if d.desynched {
					// .bit trailers pad with dummy words or bare type-1 NOP
					// headers; anything else is suspicious.
					if h, err := bitstream.DecodeHeader(w, -1); err == nil &&
						h.Type == bitstream.PacketType1 && h.Op == bitstream.OpNOP && h.Count == 0 {
						i++
						continue
					}
					if !d.trailerNoted {
						d.rep.add(SevWarning, "trailer-junk", i,
							"non-pad word %#08x after DESYNCH", w)
						d.trailerNoted = true
					}
				} else {
					d.rep.add(SevError, "junk-before-sync", i,
						"word %#08x before sync (device would reject the stream)", w)
				}
			}
			i++
			continue
		}

		h, err := bitstream.DecodeHeader(w, d.lastReg)
		if err != nil {
			// Header decoding is lost; anything after this word is guesswork.
			d.rep.add(SevError, "bad-header", i, "%v", err)
			return
		}
		d.rep.Packets++
		if h.Type == bitstream.PacketType1 {
			d.lastReg = h.Reg
		} else if !prevWasSelect {
			// DecodeHeader already rejects a type-2 with no select at all;
			// flag the looser case of a select separated from its type-2.
			d.rep.add(SevWarning, "type2-stale-select", i,
				"type-2 packet inherits register %s from a non-adjacent select",
				bitstream.RegName(h.Reg))
		}
		prevWasSelect = h.Type == bitstream.PacketType1 && h.Op == bitstream.OpWrite && h.Count == 0
		hdrOff := i
		i++

		switch h.Op {
		case bitstream.OpNOP:
			continue
		case bitstream.OpRead:
			d.rep.add(SevError, "read-in-download", hdrOff,
				"read packet (register %s) in a download stream", bitstream.RegName(h.Reg))
			continue
		case bitstream.OpWrite:
			if i+h.Count > len(words) {
				d.rep.add(SevError, "truncated-packet", hdrOff,
					"stream ends mid-payload (%d of %d words missing)",
					i+h.Count-len(words), h.Count)
				return
			}
			if h.Type == bitstream.PacketType1 && h.Count == 0 {
				// Register select for a following type-2 packet.
				if i < len(words) {
					if nh, err := bitstream.DecodeHeader(words[i], h.Reg); err != nil || nh.Type != bitstream.PacketType2 {
						d.rep.add(SevWarning, "dangling-select", hdrOff,
							"zero-count type-1 select of %s not followed by a type-2 packet",
							bitstream.RegName(h.Reg))
					}
				}
				continue
			}
			data := words[i : i+h.Count]
			i += h.Count
			d.writeReg(hdrOff, h.Reg, data)
		default:
			d.rep.add(SevError, "reserved-opcode", hdrOff, "reserved opcode %d", h.Op)
		}
	}

	switch {
	case !everSynced:
		d.rep.add(SevError, "no-sync", -1, "no sync word: stream never enters packet processing")
	case d.synced:
		d.rep.add(SevWarning, "no-desynch", -1, "stream ends while still synced (no DESYNCH)")
	}
	if everSynced && d.rep.CRCChecks == 0 {
		d.rep.add(SevWarning, "no-crc-check", -1, "stream never verifies its CRC")
	}
	if everSynced && d.rep.FramesWritten > 0 && !d.flrSeen {
		d.rep.add(SevWarning, "no-flr", -1, "frame writes without an FLR (frame length) write")
	}
}

// singleWord lints the count of a one-word register write, returning false
// when the write cannot be interpreted.
func (d *decoder) singleWord(off, reg int, data []uint32) bool {
	if len(data) == 1 {
		return true
	}
	d.rep.add(SevError, "bad-reg-count", off,
		"%s write of %d words (want 1)", bitstream.RegName(reg), len(data))
	return false
}

func (d *decoder) writeReg(off, reg int, data []uint32) {
	// Every register write except the CRC comparison folds into the running
	// CRC, register address first — mirroring the device's configuration
	// logic with bitlint's own CRC implementation.
	if reg != bitstream.RegCRC {
		for _, w := range data {
			d.crc = crcWord(d.crc, reg, w)
		}
	}

	switch reg {
	case bitstream.RegCRC:
		if !d.singleWord(off, reg, data) {
			return
		}
		if uint32(d.crc) != data[0] {
			d.rep.add(SevError, "crc-mismatch", off,
				"running CRC %#04x, stream claims %#04x", d.crc, data[0])
		} else {
			d.rep.CRCChecks++
		}
		d.crc = 0

	case bitstream.RegCMD:
		if !d.singleWord(off, reg, data) {
			return
		}
		d.command(off, data[0])

	case bitstream.RegFAR:
		if !d.singleWord(off, reg, data) {
			return
		}
		f := device.FAR(data[0])
		if !d.p.ValidFAR(f) {
			d.rep.add(SevError, "invalid-far", off, "%v does not exist on %s", f, d.p.Name)
			d.dead = true
			return
		}
		d.far = f
		d.farSet = true

	case bitstream.RegFLR:
		if !d.singleWord(off, reg, data) {
			return
		}
		d.flrSeen = true
		if want := uint32(d.p.FrameWords() - 1); data[0] != want {
			d.rep.add(SevError, "flr-mismatch", off,
				"FLR %d but %s frames are %d words (FLR %d) — stream for a different part?",
				data[0], d.p.Name, d.p.FrameWords(), want)
		}

	case bitstream.RegFDRI:
		d.writeFrames(off, data)

	case bitstream.RegMFWR:
		if !d.singleWord(off, reg, data) {
			return
		}
		if d.cmd != bitstream.CmdWCFG {
			d.rep.add(SevError, "mfwr-without-wcfg", off, "MFWR write outside WCFG")
			return
		}
		if d.lastFrame == nil {
			d.rep.add(SevError, "mfwr-no-frame", off, "MFWR before any FDRI frame")
			return
		}
		f := device.FAR(data[0])
		if !d.p.ValidFAR(f) {
			d.rep.add(SevError, "invalid-far", off, "MFWR to %v, which does not exist on %s", f, d.p.Name)
			return
		}
		if !d.dead {
			if err := d.mem.SetFrame(f, d.lastFrame); err != nil {
				d.rep.add(SevError, "frame-write", off, "%v", err)
				return
			}
		}
		d.rep.FramesWritten++

	case bitstream.RegCTL, bitstream.RegMASK, bitstream.RegCOR:
		if len(data) != 1 {
			d.rep.add(SevWarning, "bad-reg-count", off,
				"%s write of %d words (want 1)", bitstream.RegName(reg), len(data))
		}
	case bitstream.RegLOUT:
		// Legacy daisy-chain output: harmless.
	case bitstream.RegSTAT, bitstream.RegFDRO:
		d.rep.add(SevError, "write-to-read-only", off,
			"write to read-only register %s", bitstream.RegName(reg))
	default:
		d.rep.add(SevError, "unknown-reg", off, "write to unknown register %d", reg)
	}
}

func (d *decoder) command(off int, cmd uint32) {
	d.cmd = cmd
	switch cmd {
	case bitstream.CmdNULL, bitstream.CmdWCFG, bitstream.CmdLFRM:
	case bitstream.CmdRCRC:
		d.crc = 0
	case bitstream.CmdSTART:
		d.rep.Started = true
	case bitstream.CmdRCFG, bitstream.CmdRCAP:
		d.rep.add(SevWarning, "readback-cmd", off,
			"%s command in a download stream", bitstream.CmdName(cmd))
	case bitstream.CmdAGHIGH, bitstream.CmdSWITCH:
		// Start-up sequencing commands: legal, no state we track.
	case bitstream.CmdDESYNCH:
		d.synced = false
		d.desynched = true
		d.lastReg = -1
	default:
		d.rep.add(SevWarning, "unknown-cmd", off, "unknown command code %d", cmd)
	}
}

// writeFrames replays an FDRI payload through the frame pipeline: N+1 frames
// of data configure N frames, the trailing pad frame is discarded, and the
// FAR auto-increments through the device's frame order.
func (d *decoder) writeFrames(off int, data []uint32) {
	if d.cmd != bitstream.CmdWCFG {
		d.rep.add(SevError, "fdri-without-wcfg", off,
			"FDRI write outside WCFG (frames would not commit)")
		return
	}
	fw := d.p.FrameWords()
	if len(data)%fw != 0 {
		d.rep.add(SevError, "fdri-partial-frame", off,
			"FDRI payload of %d words is not a multiple of the %d-word frame", len(data), fw)
		return
	}
	nf := len(data) / fw
	if nf < 2 {
		d.rep.add(SevError, "fdri-short", off,
			"FDRI payload of %d frame(s); the pipeline needs data plus a pad frame", nf)
		return
	}
	if !d.farSet {
		d.rep.add(SevWarning, "fdri-without-far", off,
			"FDRI write before any FAR write (device would start at frame 0)")
	}
	for k := 0; k < nf-1; k++ {
		if !d.p.ValidFAR(d.far) {
			d.rep.add(SevError, "fdri-overrun", off,
				"frame %d of the run falls off the end of %s", k, d.p.Name)
			d.dead = true
			return
		}
		if !d.dead {
			if err := d.mem.SetFrame(d.far, data[k*fw:(k+1)*fw]); err != nil {
				d.rep.add(SevError, "frame-write", off, "%v", err)
				d.dead = true
				return
			}
		}
		d.rep.FramesWritten++
		if k < nf-2 {
			next, ok := d.p.NextFAR(d.far)
			if !ok {
				d.rep.add(SevError, "fdri-overrun", off,
					"frame %d of the run falls off the end of %s", k+1, d.p.Name)
				d.dead = true
				return
			}
			d.far = next
		}
	}
	d.lastFrame = append(d.lastFrame[:0], data[(nf-2)*fw:(nf-1)*fw]...)
}
