package designs

import (
	"fmt"
	"strings"

	"repro/internal/netlist"
)

// Instance names one module of a partitioned base design.
type Instance struct {
	// Prefix is the instance's cell-name prefix, e.g. "u1/". The
	// floorplanner groups cells by this prefix into one region.
	Prefix string
	Gen    Generator
}

// BaseDesign assembles a partitioned base design (the paper's Phase 1): each
// instance's logic is built under its prefix, all registers share one clock,
// and each instance's data interface is exposed as top-level ports named
// <prefix-without-slash>_in<i> / _out<i>. Replacing an instance with a
// variant of identical interface leaves every port (and so every pad) in
// place, which is what makes partial reconfiguration of the region sound.
func BaseDesign(name string, insts []Instance) (*netlist.Design, error) {
	if len(insts) == 0 {
		return nil, fmt.Errorf("designs: base design with no instances")
	}
	d := netlist.NewDesign(name)
	clk, err := d.AddPort("clk", netlist.In, nil)
	if err != nil {
		return nil, err
	}
	for _, inst := range insts {
		if inst.Prefix == "" || !strings.HasSuffix(inst.Prefix, "/") {
			return nil, fmt.Errorf("designs: instance prefix %q must end in '/'", inst.Prefix)
		}
		base := strings.TrimSuffix(inst.Prefix, "/")
		ins := make([]*netlist.Net, inst.Gen.NumInputs())
		for i := range ins {
			p, err := d.AddPort(fmt.Sprintf("%s_in%d", base, i), netlist.In, nil)
			if err != nil {
				return nil, err
			}
			ins[i] = p.Net
		}
		outs, err := inst.Gen.Build(d, inst.Prefix, clk.Net, ins)
		if err != nil {
			return nil, fmt.Errorf("designs: building %s as %s: %w", inst.Gen.Name(), inst.Prefix, err)
		}
		if len(outs) != inst.Gen.NumOutputs() {
			return nil, fmt.Errorf("designs: %s produced %d outputs, declared %d",
				inst.Gen.Name(), len(outs), inst.Gen.NumOutputs())
		}
		for i, n := range outs {
			if _, err := d.AddPort(fmt.Sprintf("%s_out%d", base, i), netlist.Out, n); err != nil {
				return nil, err
			}
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// InterfaceCompatible reports whether two generators can replace each other
// in a region (the paper's identical-interface assumption).
func InterfaceCompatible(a, b Generator) bool {
	return a.NumInputs() == b.NumInputs() && a.NumOutputs() == b.NumOutputs()
}
