package designs

import "testing"

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec string
		want Generator
	}{
		{"counter:bits=6", Counter{Bits: 6}},
		{"counter", Counter{Bits: 8}},
		{"adder:bits=4", RippleAdder{Bits: 4}},
		{"fir:taps=8,coeff=0xB7", BinaryFIR{Taps: 8, Coeff: 0xB7}},
		{"strmatch:pattern=abc", StringMatcher{Pattern: "abc"}},
		{"sbox:n=8,seed=3", SBoxBank{N: 8, Seed: 3}},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.spec, err)
			continue
		}
		if got.Name() != tc.want.Name() {
			t.Errorf("ParseSpec(%q) = %s, want %s", tc.spec, got.Name(), tc.want.Name())
		}
	}
	// LFSR taps.
	g, err := ParseSpec("lfsr:bits=6,taps=5.2")
	if err != nil {
		t.Fatal(err)
	}
	l, ok := g.(LFSR)
	if !ok || l.Bits != 6 || len(l.Taps) != 2 || l.Taps[0] != 5 || l.Taps[1] != 2 {
		t.Fatalf("lfsr spec parsed to %+v", g)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"warp:drive=9", "counter:bits=x", "counter:bogus=1", "strmatch",
		"lfsr:bits=6,taps=a.b", "counter:bits", "fir:coeff=zz",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) should fail", bad)
		}
	}
}

func TestParseInstanceSpecs(t *testing.T) {
	insts, err := ParseInstanceSpecs("u1/=counter:bits=6; u2/=sbox:n=8,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 2 || insts[0].Prefix != "u1/" || insts[1].Prefix != "u2/" {
		t.Fatalf("instances = %+v", insts)
	}
	for _, bad := range []string{"", "u1/counter", "u1/=warp"} {
		if _, err := ParseInstanceSpecs(bad); err == nil {
			t.Errorf("ParseInstanceSpecs(%q) should fail", bad)
		}
	}
}
