package designs

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec builds a generator from a textual specification, the form the
// command-line tools and examples use:
//
//	counter:bits=8
//	lfsr:bits=6,taps=5.2
//	adder:bits=4
//	fir:taps=8,coeff=0xB7
//	strmatch:pattern=abc
//	sbox:n=8,seed=3
func ParseSpec(spec string) (Generator, error) {
	kind, rest, _ := strings.Cut(spec, ":")
	params := map[string]string{}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("designs: bad parameter %q in spec %q", kv, spec)
			}
			params[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
	}
	getInt := func(key string, def int) (int, error) {
		v, ok := params[key]
		if !ok {
			return def, nil
		}
		n, err := strconv.ParseInt(v, 0, 64)
		if err != nil {
			return 0, fmt.Errorf("designs: spec %q: bad %s %q", spec, key, v)
		}
		delete(params, key)
		return int(n), nil
	}
	var gen Generator
	var err error
	switch strings.TrimSpace(kind) {
	case "counter":
		var bits int
		if bits, err = getInt("bits", 8); err == nil {
			gen = Counter{Bits: bits}
		}
	case "lfsr":
		var bits int
		if bits, err = getInt("bits", 8); err == nil {
			var taps []int
			if ts, ok := params["taps"]; ok {
				delete(params, "taps")
				for _, t := range strings.Split(ts, ".") {
					n, terr := strconv.Atoi(t)
					if terr != nil {
						return nil, fmt.Errorf("designs: spec %q: bad tap %q", spec, t)
					}
					taps = append(taps, n)
				}
			}
			gen = LFSR{Bits: bits, Taps: taps}
		}
	case "adder":
		var bits int
		if bits, err = getInt("bits", 4); err == nil {
			gen = RippleAdder{Bits: bits}
		}
	case "fir":
		var taps, coeff int
		if taps, err = getInt("taps", 8); err == nil {
			if coeff, err = getInt("coeff", 0xB7); err == nil {
				gen = BinaryFIR{Taps: taps, Coeff: uint64(coeff)}
			}
		}
	case "strmatch":
		p, ok := params["pattern"]
		if !ok {
			return nil, fmt.Errorf("designs: spec %q needs pattern=", spec)
		}
		delete(params, "pattern")
		gen = StringMatcher{Pattern: p}
	case "sbox":
		var n, seed int
		if n, err = getInt("n", 8); err == nil {
			if seed, err = getInt("seed", 1); err == nil {
				gen = SBoxBank{N: n, Seed: int64(seed)}
			}
		}
	default:
		return nil, fmt.Errorf("designs: unknown module kind %q (want counter, lfsr, adder, fir, strmatch, sbox)", kind)
	}
	if err != nil {
		return nil, err
	}
	if len(params) != 0 {
		return nil, fmt.Errorf("designs: spec %q has unknown parameters %v", spec, keys(params))
	}
	return gen, nil
}

// ParseInstanceSpecs parses a partitioned-design specification:
//
//	u1/=counter:bits=6;u2/=sbox:n=8,seed=3
func ParseInstanceSpecs(spec string) ([]Instance, error) {
	var out []Instance
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		prefix, genSpec, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("designs: instance spec %q wants prefix=module", part)
		}
		gen, err := ParseSpec(genSpec)
		if err != nil {
			return nil, err
		}
		out = append(out, Instance{Prefix: prefix, Gen: gen})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("designs: empty instance specification")
	}
	return out, nil
}

func keys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
