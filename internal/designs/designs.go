// Package designs provides parameterized, deterministic workload generators:
// the module library the examples and experiments draw from. Each generator
// instantiates one logic module into a netlist under a cell-name prefix, so
// module membership survives into floorplanning (AREA_GROUP constraints match
// on the prefix) — mirroring the paper's sub-module-per-region methodology.
package designs

import (
	"fmt"
	"math/rand"

	"repro/internal/netlist"
	"repro/internal/techmap"
)

// Generator instantiates one module.
type Generator interface {
	// Name identifies the module family and parameters, e.g. "counter8".
	Name() string
	// NumInputs and NumOutputs give the module data interface width
	// (excluding the clock). Variants that replace each other in a region
	// must agree on these, per the paper's identical-interface assumption.
	NumInputs() int
	NumOutputs() int
	// Build instantiates the module into d with the given cell-name
	// prefix. ins supplies NumInputs nets; the returned slice carries
	// NumOutputs nets. clk drives every register in the module.
	Build(d *netlist.Design, prefix string, clk *netlist.Net, ins []*netlist.Net) ([]*netlist.Net, error)
}

// Standalone wraps a generator as a complete design with ports, the form a
// Phase-2 sub-module project takes: ports clk, in0.., out0...
func Standalone(g Generator, designName, prefix string) (*netlist.Design, error) {
	d := netlist.NewDesign(designName)
	clk, err := d.AddPort("clk", netlist.In, nil)
	if err != nil {
		return nil, err
	}
	ins := make([]*netlist.Net, g.NumInputs())
	for i := range ins {
		p, err := d.AddPort(fmt.Sprintf("in%d", i), netlist.In, nil)
		if err != nil {
			return nil, err
		}
		ins[i] = p.Net
	}
	outs, err := g.Build(d, prefix, clk.Net, ins)
	if err != nil {
		return nil, err
	}
	if len(outs) != g.NumOutputs() {
		return nil, fmt.Errorf("designs: %s produced %d outputs, declared %d", g.Name(), len(outs), g.NumOutputs())
	}
	for i, n := range outs {
		if _, err := d.AddPort(fmt.Sprintf("out%d", i), netlist.Out, n); err != nil {
			return nil, err
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// Counter is a free-running binary counter with Bits state bits.
// Outputs: the counter value. Inputs: none.
type Counter struct{ Bits int }

func (c Counter) Name() string    { return fmt.Sprintf("counter%d", c.Bits) }
func (c Counter) NumInputs() int  { return 0 }
func (c Counter) NumOutputs() int { return c.Bits }

func (c Counter) Build(d *netlist.Design, prefix string, clk *netlist.Net, ins []*netlist.Net) ([]*netlist.Net, error) {
	if c.Bits < 1 {
		return nil, fmt.Errorf("designs: counter needs at least 1 bit")
	}
	m := techmap.NewMapper(d, prefix)
	// First create the state FFs on placeholder data nets, then map the
	// next-state logic and rewire — the standard break for state loops.
	q := make([]*netlist.Net, c.Bits)
	ffs := make([]*netlist.Cell, c.Bits)
	for i := range q {
		dn := d.NewNet(fmt.Sprintf("%sd%d", prefix, i))
		ff, err := d.AddDFF(fmt.Sprintf("%sq%d", prefix, i), dn, clk, nil, nil)
		if err != nil {
			return nil, err
		}
		ffs[i] = ff
		q[i] = ff.Out
	}
	for i := range q {
		// d_i = q_i XOR (q_0 AND .. AND q_{i-1}); d_0 = NOT q_0.
		var e techmap.Expr
		if i == 0 {
			e = techmap.Not(techmap.Var(q[0]))
		} else {
			lower := make([]techmap.Expr, i)
			for k := 0; k < i; k++ {
				lower[k] = techmap.Var(q[k])
			}
			e = techmap.Xor(techmap.Var(q[i]), techmap.And(lower...))
		}
		dnet, err := m.MapExpr(fmt.Sprintf("nxt%d", i), e)
		if err != nil {
			return nil, err
		}
		rewireData(ffs[i], dnet)
	}
	return q, nil
}

// rewireData repoints a DFF's D input from its placeholder net to the real
// data net, keeping sink bookkeeping consistent.
func rewireData(ff *netlist.Cell, data *netlist.Net) {
	old := ff.Inputs[0]
	old.Sinks = removeSink(old.Sinks, ff, "D")
	ff.Inputs[0] = data
	data.Sinks = append(data.Sinks, netlist.PinRef{Cell: ff, Pin: "D"})
}

func removeSink(sinks []netlist.PinRef, c *netlist.Cell, pin string) []netlist.PinRef {
	out := sinks[:0]
	for _, s := range sinks {
		if s.Cell != c || s.Pin != pin {
			out = append(out, s)
		}
	}
	return out
}

// LFSR is a Fibonacci linear-feedback shift register with Bits state bits
// and feedback Taps (bit indices XORed into the input). Inputs: none.
// Outputs: the register state.
type LFSR struct {
	Bits int
	Taps []int
}

func (l LFSR) Name() string {
	mask := 0
	for _, tp := range l.Taps {
		if tp >= 0 && tp < 64 {
			mask |= 1 << tp
		}
	}
	return fmt.Sprintf("lfsr%d_t%x", l.Bits, mask)
}
func (l LFSR) NumInputs() int  { return 0 }
func (l LFSR) NumOutputs() int { return l.Bits }

func (l LFSR) Build(d *netlist.Design, prefix string, clk *netlist.Net, ins []*netlist.Net) ([]*netlist.Net, error) {
	if l.Bits < 2 {
		return nil, fmt.Errorf("designs: LFSR needs at least 2 bits")
	}
	taps := l.Taps
	if len(taps) == 0 {
		taps = []int{l.Bits - 1, l.Bits/2 - 1} // serviceable default
	}
	for _, tp := range taps {
		if tp < 0 || tp >= l.Bits {
			return nil, fmt.Errorf("designs: LFSR tap %d out of range", tp)
		}
	}
	m := techmap.NewMapper(d, prefix)
	q := make([]*netlist.Net, l.Bits)
	ffs := make([]*netlist.Cell, l.Bits)
	for i := range q {
		dn := d.NewNet(fmt.Sprintf("%sd%d", prefix, i))
		ff, err := d.AddDFF(fmt.Sprintf("%sq%d", prefix, i), dn, clk, nil, nil)
		if err != nil {
			return nil, err
		}
		// Seed the register with alternating init values so it never
		// starts in the all-zero lock-up state.
		if i%2 == 0 {
			ff.Init = 1
		}
		ffs[i] = ff
		q[i] = ff.Out
	}
	// Feedback into bit 0; shift elsewhere (q_i <= q_{i-1}).
	fb := make([]techmap.Expr, len(taps))
	for i, tp := range taps {
		fb[i] = techmap.Var(q[tp])
	}
	fbNet, err := m.MapExpr("fb", techmap.Xor(fb...))
	if err != nil {
		return nil, err
	}
	rewireData(ffs[0], fbNet)
	for i := 1; i < l.Bits; i++ {
		rewireData(ffs[i], q[i-1])
	}
	return q, nil
}

// RippleAdder is a registered Bits-bit adder: out = reg(a + b), plus carry.
// Inputs: a0..aB-1, b0..bB-1. Outputs: s0..sB-1, carry.
type RippleAdder struct{ Bits int }

func (a RippleAdder) Name() string    { return fmt.Sprintf("adder%d", a.Bits) }
func (a RippleAdder) NumInputs() int  { return 2 * a.Bits }
func (a RippleAdder) NumOutputs() int { return a.Bits + 1 }

func (a RippleAdder) Build(d *netlist.Design, prefix string, clk *netlist.Net, ins []*netlist.Net) ([]*netlist.Net, error) {
	if a.Bits < 1 {
		return nil, fmt.Errorf("designs: adder needs at least 1 bit")
	}
	if len(ins) != a.NumInputs() {
		return nil, fmt.Errorf("designs: adder%d got %d inputs", a.Bits, len(ins))
	}
	m := techmap.NewMapper(d, prefix)
	av, bv := ins[:a.Bits], ins[a.Bits:]
	outs := make([]*netlist.Net, 0, a.Bits+1)
	var carry techmap.Expr
	for i := 0; i < a.Bits; i++ {
		ai, bi := techmap.Var(av[i]), techmap.Var(bv[i])
		var sum techmap.Expr
		if carry == nil {
			sum = techmap.Xor(ai, bi)
		} else {
			sum = techmap.Xor(ai, bi, carry)
		}
		sNet, err := m.MapRegistered(fmt.Sprintf("s%d", i), sum, clk)
		if err != nil {
			return nil, err
		}
		outs = append(outs, sNet)
		if carry == nil {
			carry = techmap.And(ai, bi)
		} else {
			carry = techmap.Or(techmap.And(ai, bi), techmap.And(carry, techmap.Xor(ai, bi)))
		}
		// Materialise the carry every stage to keep expression support
		// bounded (a LUT-based ripple chain, like the real thing).
		cNet, err := m.MapExpr(fmt.Sprintf("c%d", i), carry)
		if err != nil {
			return nil, err
		}
		carry = techmap.Var(cNet)
	}
	cOut, err := m.MapRegistered("cout", carry, clk)
	if err != nil {
		return nil, err
	}
	outs = append(outs, cOut)
	return outs, nil
}

// BinaryFIR is a binary-coefficient FIR filter on a 1-bit input stream:
// a Taps-deep delay line; output bits give the registered sum (popcount) of
// the delayed samples selected by Coeff. Inputs: x. Outputs: y0..y(W-1)
// where W = ceil(log2(ones(Coeff)+1)).
type BinaryFIR struct {
	Taps  int
	Coeff uint64 // bit i set: tap i participates
}

func (f BinaryFIR) Name() string   { return fmt.Sprintf("fir%d_%x", f.Taps, f.Coeff) }
func (f BinaryFIR) NumInputs() int { return 1 }

func (f BinaryFIR) sumWidth() int {
	ones := 0
	for i := 0; i < f.Taps; i++ {
		if f.Coeff>>i&1 == 1 {
			ones++
		}
	}
	w := 1
	for 1<<w <= ones {
		w++
	}
	return w
}

func (f BinaryFIR) NumOutputs() int { return f.sumWidth() }

func (f BinaryFIR) Build(d *netlist.Design, prefix string, clk *netlist.Net, ins []*netlist.Net) ([]*netlist.Net, error) {
	if f.Taps < 1 || f.Taps > 64 {
		return nil, fmt.Errorf("designs: FIR taps %d out of range", f.Taps)
	}
	if len(ins) != 1 {
		return nil, fmt.Errorf("designs: FIR needs exactly the x input")
	}
	if f.Coeff == 0 {
		return nil, fmt.Errorf("designs: FIR with all-zero coefficients")
	}
	// Delay line.
	delayed := make([]*netlist.Net, f.Taps)
	prev := ins[0]
	for i := 0; i < f.Taps; i++ {
		ff, err := d.AddDFF(fmt.Sprintf("%sz%d", prefix, i), prev, clk, nil, nil)
		if err != nil {
			return nil, err
		}
		delayed[i] = ff.Out
		prev = ff.Out
	}
	// Popcount of selected taps via a LUT adder tree: sum pairs of bits
	// into 2-bit values, then add. We build it as W parallel sum-bit
	// expressions; techmap decomposes them.
	var sel []*netlist.Net
	for i := 0; i < f.Taps; i++ {
		if f.Coeff>>i&1 == 1 {
			sel = append(sel, delayed[i])
		}
	}
	m := techmap.NewMapper(d, prefix)
	sums, err := popcount(m, sel)
	if err != nil {
		return nil, err
	}
	outs := make([]*netlist.Net, len(sums))
	for i, s := range sums {
		ff, err := d.AddDFF(fmt.Sprintf("%sy%d", prefix, i), s, clk, nil, nil)
		if err != nil {
			return nil, err
		}
		outs[i] = ff.Out
	}
	if len(outs) != f.sumWidth() {
		return nil, fmt.Errorf("designs: FIR popcount width %d, expected %d", len(outs), f.sumWidth())
	}
	return outs, nil
}

// popcount sums 1-bit nets into a binary vector using 3:2 LUT compressors.
func popcount(m *techmap.Mapper, bits []*netlist.Net) ([]*netlist.Net, error) {
	// ranks[i] holds nets of weight 2^i.
	ranks := [][]*netlist.Net{append([]*netlist.Net(nil), bits...)}
	serial := 0
	for i := 0; i < len(ranks); i++ {
		for len(ranks[i]) > 1 {
			take := min(3, len(ranks[i]))
			group := ranks[i][:take]
			ranks[i] = ranks[i][take:]
			exprs := make([]techmap.Expr, take)
			for k, n := range group {
				exprs[k] = techmap.Var(n)
			}
			serial++
			sumNet, err := m.MapExpr(fmt.Sprintf("pc_s%d", serial), techmap.Xor(exprs...))
			if err != nil {
				return nil, err
			}
			ranks[i] = append(ranks[i], sumNet)
			if take >= 2 {
				var carryExpr techmap.Expr
				if take == 2 {
					carryExpr = techmap.And(exprs[0], exprs[1])
				} else {
					carryExpr = techmap.Or(
						techmap.And(exprs[0], exprs[1]),
						techmap.And(exprs[0], exprs[2]),
						techmap.And(exprs[1], exprs[2]))
				}
				carryNet, err := m.MapExpr(fmt.Sprintf("pc_c%d", serial), carryExpr)
				if err != nil {
					return nil, err
				}
				if i+1 == len(ranks) {
					ranks = append(ranks, nil)
				}
				ranks[i+1] = append(ranks[i+1], carryNet)
			}
		}
	}
	out := make([]*netlist.Net, len(ranks))
	for i, r := range ranks {
		if len(r) != 1 {
			return nil, fmt.Errorf("designs: popcount rank %d has %d nets", i, len(r))
		}
		out[i] = r[0]
	}
	return out, nil
}

// StringMatcher streams 8-bit characters and raises its output for one cycle
// when the last len(Pattern) characters equal Pattern — the self-
// reconfiguring string-matching workload the paper's motivation cites.
// Inputs: c0..c7 (character). Outputs: match.
type StringMatcher struct{ Pattern string }

func (s StringMatcher) Name() string    { return fmt.Sprintf("strmatch%d", len(s.Pattern)) }
func (s StringMatcher) NumInputs() int  { return 8 }
func (s StringMatcher) NumOutputs() int { return 1 }

func (s StringMatcher) Build(d *netlist.Design, prefix string, clk *netlist.Net, ins []*netlist.Net) ([]*netlist.Net, error) {
	if len(s.Pattern) == 0 {
		return nil, fmt.Errorf("designs: empty pattern")
	}
	if len(ins) != 8 {
		return nil, fmt.Errorf("designs: string matcher needs the 8-bit character input")
	}
	m := techmap.NewMapper(d, prefix)
	var prevMatch *netlist.Net
	for i := 0; i < len(s.Pattern); i++ {
		eq := techmap.Eq(ins, uint64(s.Pattern[i]))
		var stage techmap.Expr = eq
		if prevMatch != nil {
			stage = techmap.And(eq, techmap.Var(prevMatch))
		}
		q, err := m.MapRegistered(fmt.Sprintf("m%d", i), stage, clk)
		if err != nil {
			return nil, err
		}
		prevMatch = q
	}
	return []*netlist.Net{prevMatch}, nil
}

// SBoxBank is a bank of N random 4-input substitution boxes sharing a 4-bit
// address, each output registered — a stand-in for the LUT-dense crypto
// cores run-time reconfiguration papers use. Inputs: a0..a3.
// Outputs: N substitution bits.
type SBoxBank struct {
	N    int
	Seed int64
}

func (s SBoxBank) Name() string    { return fmt.Sprintf("sbox%d_s%d", s.N, s.Seed) }
func (s SBoxBank) NumInputs() int  { return 4 }
func (s SBoxBank) NumOutputs() int { return s.N }

func (s SBoxBank) Build(d *netlist.Design, prefix string, clk *netlist.Net, ins []*netlist.Net) ([]*netlist.Net, error) {
	if s.N < 1 {
		return nil, fmt.Errorf("designs: sbox bank needs N >= 1")
	}
	if len(ins) != 4 {
		return nil, fmt.Errorf("designs: sbox bank needs the 4-bit address input")
	}
	rng := rand.New(rand.NewSource(s.Seed))
	outs := make([]*netlist.Net, s.N)
	for i := 0; i < s.N; i++ {
		lut, err := d.AddLUT(fmt.Sprintf("%ssbox%d", prefix, i), uint16(rng.Intn(1<<16)), ins...)
		if err != nil {
			return nil, err
		}
		ff, err := d.AddDFF(fmt.Sprintf("%ssq%d", prefix, i), lut.Out, clk, nil, nil)
		if err != nil {
			return nil, err
		}
		outs[i] = ff.Out
	}
	return outs, nil
}
