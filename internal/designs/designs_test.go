package designs

import (
	"fmt"
	"math/bits"
	"testing"

	"repro/internal/netlist"
	"repro/internal/sim"
)

func TestCounterCounts(t *testing.T) {
	d, err := Standalone(Counter{Bits: 5}, "cnt", "u/")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	s.Eval()
	for cyc := 0; cyc < 70; cyc++ {
		got, err := s.OutputVec("out", 5)
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(cyc % 32); got != want {
			t.Fatalf("cycle %d: counter=%d want %d", cyc, got, want)
		}
		s.Step()
	}
}

func TestLFSRMatchesSoftwareModel(t *testing.T) {
	g := LFSR{Bits: 8, Taps: []int{7, 5, 4, 3}}
	d, err := Standalone(g, "lfsr", "u/")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	// Software model with the same seeding (even bits start at 1).
	var state uint64
	for i := 0; i < 8; i += 2 {
		state |= 1 << i
	}
	step := func() {
		fb := uint64(0)
		for _, tp := range g.Taps {
			fb ^= state >> tp & 1
		}
		state = (state<<1 | fb) & 0xFF
	}
	s.Eval()
	for cyc := 0; cyc < 300; cyc++ {
		got, err := s.OutputVec("out", 8)
		if err != nil {
			t.Fatal(err)
		}
		if got != state {
			t.Fatalf("cycle %d: lfsr=%02x want %02x", cyc, got, state)
		}
		s.Step()
		step()
	}
}

func TestAdderAdds(t *testing.T) {
	d, err := Standalone(RippleAdder{Bits: 4}, "add", "u/")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			if err := s.SetInputVec("in", 8, a|b<<4); err != nil {
				t.Fatal(err)
			}
			s.Step() // registered output
			got, err := s.OutputVec("out", 5)
			if err != nil {
				t.Fatal(err)
			}
			if got != a+b {
				t.Fatalf("%d+%d = %d", a, b, got)
			}
		}
	}
}

func TestBinaryFIRPopcount(t *testing.T) {
	g := BinaryFIR{Taps: 6, Coeff: 0b101101}
	d, err := Standalone(g, "fir", "u/")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []uint64{1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 1, 0, 1, 1, 0, 0}
	var hist []uint64
	for cyc, x := range inputs {
		if err := s.SetInput("in0", x == 1); err != nil {
			t.Fatal(err)
		}
		s.Step()
		hist = append([]uint64{x}, hist...)
		// Output: registered popcount of the delay line one cycle earlier.
		// After this Step, delay line holds hist[0..Taps-1]; output FF holds
		// popcount computed from the delay line *before* this edge.
		if cyc < g.Taps+1 {
			continue
		}
		want := uint64(0)
		for i := 0; i < g.Taps; i++ {
			if g.Coeff>>i&1 == 1 && hist[i+1] == 1 {
				want++
			}
		}
		got, err := s.OutputVec("out", g.NumOutputs())
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("cycle %d: fir=%d want %d (hist %v)", cyc, got, want, hist)
		}
	}
}

func TestStringMatcher(t *testing.T) {
	d, err := Standalone(StringMatcher{Pattern: "abc"}, "sm", "u/")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	stream := "xxabcabxabc"
	var matches []int
	for i := 0; i < len(stream); i++ {
		if err := s.SetInputVec("in", 8, uint64(stream[i])); err != nil {
			t.Fatal(err)
		}
		s.Step()
		if m, _ := s.Output("out0"); m {
			matches = append(matches, i)
		}
	}
	// Matches complete at the cycle consuming the final pattern char:
	// positions of 'c' in "abc" occurrences: indices 4 and 10.
	want := []int{4, 10}
	if fmt.Sprint(matches) != fmt.Sprint(want) {
		t.Fatalf("matches at %v, want %v", matches, want)
	}
}

func TestSBoxBankDeterministicAndCorrect(t *testing.T) {
	g := SBoxBank{N: 6, Seed: 42}
	d1, err := Standalone(g, "sb1", "u/")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Standalone(g, "sb2", "u/")
	if err != nil {
		t.Fatal(err)
	}
	// Determinism: same seed, same tables.
	for i := 0; i < g.N; i++ {
		c1, _ := d1.Cell(fmt.Sprintf("u/sbox%d", i))
		c2, _ := d2.Cell(fmt.Sprintf("u/sbox%d", i))
		if c1 == nil || c2 == nil || c1.Init != c2.Init {
			t.Fatalf("sbox %d differs across builds", i)
		}
	}
	s, err := sim.New(d1)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 16; a++ {
		if err := s.SetInputVec("in", 4, a); err != nil {
			t.Fatal(err)
		}
		s.Step()
		got, err := s.OutputVec("out", g.N)
		if err != nil {
			t.Fatal(err)
		}
		var want uint64
		for i := 0; i < g.N; i++ {
			c, _ := d1.Cell(fmt.Sprintf("u/sbox%d", i))
			if c.Init>>a&1 == 1 {
				want |= 1 << i
			}
		}
		if got != want {
			t.Fatalf("addr %d: sbox out %06b want %06b", a, got, want)
		}
	}
}

func TestBaseDesignComposition(t *testing.T) {
	base, err := BaseDesign("base", []Instance{
		{Prefix: "u1/", Gen: Counter{Bits: 4}},
		{Prefix: "u2/", Gen: SBoxBank{N: 4, Seed: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	// Ports: clk + u1 4 outs + u2 4 ins + 4 outs.
	if got := len(base.Ports); got != 13 {
		t.Fatalf("base ports = %d, want 13", got)
	}
	s, err := sim.New(base)
	if err != nil {
		t.Fatal(err)
	}
	s.SetInputVec("u2_in", 4, 5)
	for i := 0; i < 3; i++ {
		s.Step()
	}
	v, err := s.OutputVec("u1_out", 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("counter inside base design = %d, want 3", v)
	}
}

func TestBaseDesignRejectsBadPrefix(t *testing.T) {
	if _, err := BaseDesign("b", []Instance{{Prefix: "u1", Gen: Counter{Bits: 2}}}); err == nil {
		t.Fatal("prefix without slash accepted")
	}
	if _, err := BaseDesign("b", nil); err == nil {
		t.Fatal("empty base design accepted")
	}
}

func TestInterfaceCompatible(t *testing.T) {
	if !InterfaceCompatible(Counter{Bits: 4}, LFSR{Bits: 4}) {
		t.Fatal("counter4 and lfsr4 should be interchangeable")
	}
	if InterfaceCompatible(Counter{Bits: 4}, Counter{Bits: 5}) {
		t.Fatal("different widths reported compatible")
	}
}

func TestGeneratorErrors(t *testing.T) {
	cases := []Generator{
		Counter{Bits: 0},
		LFSR{Bits: 1},
		LFSR{Bits: 4, Taps: []int{9}},
		RippleAdder{Bits: 0},
		BinaryFIR{Taps: 0, Coeff: 1},
		BinaryFIR{Taps: 4, Coeff: 0},
		StringMatcher{Pattern: ""},
		SBoxBank{N: 0},
	}
	for _, g := range cases {
		if _, err := Standalone(g, "bad", "u/"); err == nil {
			t.Errorf("%s: invalid parameters accepted", g.Name())
		}
	}
}

func TestFIRSumWidth(t *testing.T) {
	for _, tc := range []struct {
		coeff uint64
		want  int
	}{{0b1, 1}, {0b11, 2}, {0b111, 2}, {0b1111, 3}, {0xFF, 4}} {
		g := BinaryFIR{Taps: 8, Coeff: tc.coeff}
		if got := g.NumOutputs(); got != tc.want {
			t.Errorf("coeff %b (%d ones): width %d, want %d",
				tc.coeff, bits.OnesCount64(tc.coeff), got, tc.want)
		}
	}
}

func TestBuildRejectsWrongInputArity(t *testing.T) {
	d := netlistNew(t)
	clk := mustPort(t, d, "clk")
	cases := []Generator{
		RippleAdder{Bits: 4},
		BinaryFIR{Taps: 4, Coeff: 0xF},
		StringMatcher{Pattern: "a"},
		SBoxBank{N: 2, Seed: 1},
	}
	for _, g := range cases {
		// One net short of the declared interface.
		ins := makeNets(d, g.NumInputs()-1)
		if _, err := g.Build(d, "w/", clk, ins); err == nil {
			t.Errorf("%s accepted %d inputs (wants %d)", g.Name(), len(ins), g.NumInputs())
		}
	}
}

func netlistNew(t *testing.T) *netlist.Design {
	t.Helper()
	d := netlist.NewDesign("arity")
	if _, err := d.AddPort("clk", netlist.In, nil); err != nil {
		t.Fatal(err)
	}
	return d
}

func mustPort(t *testing.T, d *netlist.Design, name string) *netlist.Net {
	t.Helper()
	p, ok := d.Port(name)
	if !ok {
		t.Fatalf("port %q missing", name)
	}
	return p.Net
}

func makeNets(d *netlist.Design, n int) []*netlist.Net {
	out := make([]*netlist.Net, 0, max(0, n))
	for i := 0; i < n; i++ {
		p, _ := d.AddPort(fmt.Sprintf("x%d_%d", len(d.Ports), i), netlist.In, nil)
		out = append(out, p.Net)
	}
	return out
}
