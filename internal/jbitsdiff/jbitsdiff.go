// Package jbitsdiff reimplements the JBitsDiff approach (James-Roxby &
// Guccione, FCCM'99), the paper's other §2.3 comparator: given two complete
// bitstreams — a reference and a version containing the core of interest —
// it identifies the differing configuration frames and packages them as a
// relocatable "core" (here: a minimal partial bitstream carrying exactly the
// differing frames). Like PARBIT, it requires a complete implementation run
// per variant; unlike PARBIT, its output is minimal rather than
// column-window shaped.
package jbitsdiff

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/frames"
)

// Core is an extracted difference core.
type Core struct {
	Part *device.Part
	// FARs lists the differing frames, in device order.
	FARs []device.FAR
	// Bitstream is the partial bitstream applying the core.
	Bitstream []byte
}

// Extract diffs two complete bitstreams for the same part and packages the
// differing frames of the second as a core.
func Extract(reference, withCore []byte) (*Core, error) {
	p1, err := bitstream.InferPart(reference)
	if err != nil {
		return nil, fmt.Errorf("jbitsdiff: reference: %w", err)
	}
	p2, err := bitstream.InferPart(withCore)
	if err != nil {
		return nil, fmt.Errorf("jbitsdiff: target: %w", err)
	}
	if p1 != p2 {
		return nil, fmt.Errorf("jbitsdiff: parts differ (%s vs %s)", p1.Name, p2.Name)
	}
	memA, memB := frames.New(p1), frames.New(p1)
	if _, err := bitstream.Apply(memA, reference); err != nil {
		return nil, fmt.Errorf("jbitsdiff: reference: %w", err)
	}
	if _, err := bitstream.Apply(memB, withCore); err != nil {
		return nil, fmt.Errorf("jbitsdiff: target: %w", err)
	}
	return FromMemories(memA, memB)
}

// FromMemories diffs two live configuration memories and packages the
// differing frames of the second as a core. This is the delta engine Extract
// is built on; the incremental flow calls it directly when it already holds
// both memories and needs no bitstream round trip.
func FromMemories(reference, withCore *frames.Memory) (*Core, error) {
	diff, err := reference.Diff(withCore)
	if err != nil {
		return nil, err
	}
	if len(diff) == 0 {
		return nil, fmt.Errorf("jbitsdiff: bitstreams are identical; no core to extract")
	}
	return packageCore(withCore, diff)
}

// FromDirty packages a tracked memory's dirty frames as a core without any
// memory-wide diff: the dirty set produced by frames tracking (see
// frames.Memory.StartTracking) already names exactly the frames whose
// content changed since tracking started, so the cost is proportional to
// the delta, not the device.
func FromDirty(mem *frames.Memory) (*Core, error) {
	if !mem.Tracking() {
		return nil, fmt.Errorf("jbitsdiff: memory is not tracking dirty frames")
	}
	dirty := mem.DirtyFARs()
	if len(dirty) == 0 {
		return nil, fmt.Errorf("jbitsdiff: no dirty frames; no core to extract")
	}
	return packageCore(mem, dirty)
}

func packageCore(mem *frames.Memory, fars []device.FAR) (*Core, error) {
	bs, err := bitstream.WritePartialForFARs(mem, fars)
	if err != nil {
		return nil, err
	}
	return &Core{Part: mem.Part, FARs: fars, Bitstream: bs}, nil
}
