package jbitsdiff_test

import (
	"context"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/frames"
	"repro/internal/jbitsdiff"
)

func twoBuilds(t *testing.T) (*flow.BaseBuild, *flow.BaseBuild) {
	t.Helper()
	p := device.MustByName("XCV50")
	a, err := flow.BuildBase(context.Background(), p, []designs.Instance{
		{Prefix: "u1/", Gen: designs.Counter{Bits: 5}},
		{Prefix: "u2/", Gen: designs.SBoxBank{N: 4, Seed: 9}},
	}, flow.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Same floorplan, u1 swapped for an LFSR: rebuild the whole design, as
	// the JBitsDiff methodology requires.
	b, err := flow.BuildBase(context.Background(), p, []designs.Instance{
		{Prefix: "u1/", Gen: designs.LFSR{Bits: 5}},
		{Prefix: "u2/", Gen: designs.SBoxBank{N: 4, Seed: 9}},
	}, flow.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestExtractCore(t *testing.T) {
	a, b := twoBuilds(t)
	core, err := jbitsdiff.Extract(a.Bitstream, b.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	if len(core.FARs) == 0 || len(core.Bitstream) == 0 {
		t.Fatal("empty core")
	}
	if len(core.Bitstream) >= len(b.Bitstream) {
		t.Fatal("core not smaller than complete bitstream")
	}
	// Applying the core to the reference state reproduces the target state.
	p := core.Part
	mem := frames.New(p)
	if _, err := bitstream.Apply(mem, a.Bitstream); err != nil {
		t.Fatal(err)
	}
	if _, err := bitstream.Apply(mem, core.Bitstream); err != nil {
		t.Fatal(err)
	}
	want := frames.New(p)
	if _, err := bitstream.Apply(want, b.Bitstream); err != nil {
		t.Fatal(err)
	}
	if !mem.Equal(want) {
		t.Fatal("reference + core != target")
	}
}

func TestExtractIdenticalInputs(t *testing.T) {
	a, _ := twoBuilds(t)
	if _, err := jbitsdiff.Extract(a.Bitstream, a.Bitstream); err == nil {
		t.Fatal("identical bitstreams produced a core")
	}
}

func TestExtractErrors(t *testing.T) {
	a, _ := twoBuilds(t)
	if _, err := jbitsdiff.Extract([]byte{1, 2, 3, 4}, a.Bitstream); err == nil {
		t.Fatal("garbage reference accepted")
	}
	// Different parts.
	other := flowBitstream(t, "XCV100")
	if _, err := jbitsdiff.Extract(a.Bitstream, other); err == nil {
		t.Fatal("cross-part diff accepted")
	}
}

func flowBitstream(t *testing.T, part string) []byte {
	t.Helper()
	b, err := flow.BuildBase(context.Background(), device.MustByName(part), []designs.Instance{
		{Prefix: "u1/", Gen: designs.Counter{Bits: 4}},
	}, flow.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return b.Bitstream
}
