// Package ncd implements the binary physical-design database of the flow —
// the role the proprietary Xilinx .ncd file plays. Placement and routing
// results are stored in NCD; the xdl tool converts NCD to the ASCII XDL form
// that JPG consumes (paper §3.2).
//
// Format: an 8-byte magic/version header ("XCVNCD1\n") followed by a
// gob-encoded phys.Flat record.
package ncd

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/phys"
)

var magic = []byte("XCVNCD1\n")

// Marshal serialises a physical design to NCD bytes.
func Marshal(d *phys.Design) ([]byte, error) {
	f, err := d.Flatten()
	if err != nil {
		return nil, err
	}
	return MarshalFlat(f)
}

// MarshalFlat serialises an already-flattened design.
func MarshalFlat(f *phys.Flat) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(magic)
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, fmt.Errorf("ncd: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalFlat reads NCD bytes back into flattened form.
func UnmarshalFlat(data []byte) (*phys.Flat, error) {
	if len(data) < len(magic) || !bytes.Equal(data[:len(magic)], magic) {
		return nil, fmt.Errorf("ncd: bad magic (not an NCD file?)")
	}
	var f phys.Flat
	if err := gob.NewDecoder(bytes.NewReader(data[len(magic):])).Decode(&f); err != nil {
		return nil, fmt.Errorf("ncd: decode: %w", err)
	}
	return &f, nil
}

// Unmarshal reads NCD bytes and reconstructs the physical design.
func Unmarshal(data []byte) (*phys.Design, error) {
	f, err := UnmarshalFlat(data)
	if err != nil {
		return nil, err
	}
	return phys.Unflatten(f)
}
