package ncd

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/phys"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/xdl"
)

func routedDesign(t *testing.T) *phys.Design {
	t.Helper()
	nl, err := designs.Standalone(designs.LFSR{Bits: 6}, "lfsr", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	d, err := place.Place(device.MustByName("XCV50"), nl, place.Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := route.Route(d, route.Options{}); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRoundTrip(t *testing.T) {
	d := routedDesign(t)
	data, err := Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.CheckRoutes(); err != nil {
		t.Fatal(err)
	}
	// NCD and XDL must describe the identical design: compare via XDL text.
	x1, err := xdl.Emit(d)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := xdl.Emit(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if x1 != x2 {
		t.Fatal("NCD round trip changed the design")
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Unmarshal([]byte("not an ncd")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	d := routedDesign(t)
	data, err := Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xFF
	if _, err := Unmarshal(data); err == nil {
		t.Fatal("corrupted magic accepted")
	}
}

func TestTruncated(t *testing.T) {
	d := routedDesign(t)
	data, err := Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(data[:len(data)/2]); err == nil {
		t.Fatal("truncated NCD accepted")
	}
}
