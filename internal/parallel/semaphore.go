package parallel

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrQueueFull is returned by Semaphore.Acquire when every execution slot is
// held and the bounded wait queue is already at capacity — the caller should
// shed the work (a jpgd request maps it to 429 + Retry-After) rather than
// buffer it without bound.
var ErrQueueFull = errors.New("parallel: admission queue full")

// Semaphore is a bounded admission controller: at most `slots` holders run
// concurrently, at most `queue` more wait for a slot, and everything beyond
// that is rejected immediately. It is the backpressure primitive behind the
// jpgd serving layer — deterministic load shedding instead of unbounded
// goroutine/connection pileup when offered load exceeds capacity.
//
// Waiting is context-aware: a queued Acquire unblocks with ctx.Err() when its
// request deadline passes or the client goes away, releasing its queue slot.
type Semaphore struct {
	slots  chan struct{}
	queued atomic.Int64
	queue  int64
}

// NewSemaphore returns a semaphore with the given execution slots (minimum 1)
// and wait-queue capacity (0 means no waiting: a full semaphore rejects
// instantly).
func NewSemaphore(slots, queue int) *Semaphore {
	if slots < 1 {
		slots = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Semaphore{slots: make(chan struct{}, slots), queue: int64(queue)}
}

// TryAcquire takes a slot if one is free without queueing.
func (s *Semaphore) TryAcquire() bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Acquire takes a slot, waiting in the bounded queue when none is free.
// It returns nil once a slot is held, ErrQueueFull when the queue is at
// capacity, or ctx.Err() when the context ends while waiting. Every nil
// return must be paired with Release.
func (s *Semaphore) Acquire(ctx context.Context) error {
	if s.TryAcquire() {
		return nil
	}
	if s.queued.Add(1) > s.queue {
		s.queued.Add(-1)
		return ErrQueueFull
	}
	defer s.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot taken by a successful TryAcquire/Acquire.
func (s *Semaphore) Release() { <-s.slots }

// InFlight returns the number of currently held slots.
func (s *Semaphore) InFlight() int { return len(s.slots) }

// Queued returns the number of callers waiting for a slot.
func (s *Semaphore) Queued() int64 { return s.queued.Load() }
