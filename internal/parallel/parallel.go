// Package parallel is the repository's execution layer for farms of
// independent CAD runs. The paper's headline throughput claim (§4.1) counts
// *independent* implementations — 36 conventional runs vs 10 partial ones —
// and every experiment dispatches such runs through this package so the
// reproduction saturates the machine instead of executing them serially.
//
// The contract is deterministic parallelism: work items are identified by
// index, every item carries its own seed (supplied by the caller, never
// derived from scheduling), results are collected by index, and the error
// reported for a failed batch is the one with the lowest index. A batch
// therefore produces bit-identical results whether it runs on one worker or
// on every core, which the determinism regression tests in
// internal/experiments assert end to end.
//
// The pool is instrumented through internal/obs: each batch is a span, each
// worker is a trace lane, and each task records its queue wait (batch start
// to task start) and run time, plus always-on counters/histograms
// (parallel.tasks, parallel.task_queue_wait_ns, parallel.task_run_ns,
// parallel.queue_depth). Observability never alters scheduling or results.
package parallel

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	jpglog "repro/internal/obs/log"
)

// EnvWorkers is the environment variable overriding the default worker
// count (a positive integer; invalid or unset values fall back to
// runtime.NumCPU).
const EnvWorkers = "JPG_WORKERS"

// DefaultWorkers resolves the default pool width: $JPG_WORKERS if it parses
// to a positive integer, else runtime.NumCPU().
func DefaultWorkers() int {
	if s := os.Getenv(EnvWorkers); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.NumCPU()
}

// Option tunes one batch.
type Option func(*config)

type config struct {
	workers int
}

// WithWorkers bounds the batch to n concurrent workers. n <= 0 selects
// DefaultWorkers(); n == 1 degrades to a strictly serial in-order loop.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

func resolve(n int, opts []Option) int {
	c := config{}
	for _, o := range opts {
		o(&c)
	}
	w := c.workers
	if w <= 0 {
		w = DefaultWorkers()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Pool metrics (always on; see internal/obs).
var (
	mBatches    = obs.GetCounter("parallel.batches")
	mTasks      = obs.GetCounter("parallel.tasks")
	mCancels    = obs.GetCounter("parallel.batches_cancelled")
	mQueueDepth = obs.GetGauge("parallel.queue_depth")
	mQueueWait  = obs.GetHistogram("parallel.task_queue_wait_ns")
	mRunTime    = obs.GetHistogram("parallel.task_run_ns")
)

// task wraps one index's execution with its observability: a span on the
// executing worker's lane carrying the index and queue wait, and the
// registry's per-task histograms. batchStart anchors the queue wait — in
// this pool work is "queued" from batch start until a worker picks the
// index up.
func runTask(ctx context.Context, i int, batchStart time.Time, fn func(ctx context.Context, i int) error) error {
	wait := time.Since(batchStart)
	tctx, sp := obs.Start(ctx, "task")
	sp.SetInt("index", int64(i))
	sp.SetInt("queue_wait_ns", wait.Nanoseconds())
	t0 := time.Now()
	err := fn(tctx, i)
	mTasks.Inc()
	mQueueDepth.Add(-1)
	mQueueWait.Observe(wait.Nanoseconds())
	mRunTime.Observe(time.Since(t0).Nanoseconds())
	sp.EndErr(err)
	if err != nil {
		obs.CountError("task")
		jpglog.Warn(ctx, "parallel.task_failed", "index", i, "error", err.Error())
	}
	return err
}

// ForEachNCtx runs fn(ctx, 0..n-1) on a bounded worker pool and waits for
// the batch. Each worker derives a per-worker context (its trace lane) from
// ctx, so spans started inside fn land on that worker's lane. On the first
// error the pool stops handing out new indices (in-flight items run to
// completion), and the returned error is the lowest-index one — not the
// first observed — so failures are reproducible across worker counts.
//
// Cancelling ctx stops the dispatch loop (serial and pooled alike): no new
// index is handed out once ctx.Done() fires, in-flight items run to
// completion, and the batch returns ctx.Err(). A task failure observed
// before the cancellation keeps the lowest-index-error contract.
func ForEachNCtx(ctx context.Context, n int, fn func(ctx context.Context, i int) error, opts ...Option) (err error) {
	if n <= 0 {
		return nil
	}
	workers := resolve(n, opts)

	bctx, batch := obs.Start(ctx, "parallel.batch")
	batch.SetInt("tasks", int64(n))
	batch.SetInt("workers", int64(workers))
	defer func() { batch.EndErr(err) }()
	mBatches.Inc()
	mQueueDepth.Add(int64(n))
	batchStart := time.Now()

	// runTask decrements the depth gauge per executed task; on early failure
	// the never-executed remainder is settled here so the gauge returns to
	// its pre-batch level.
	var ran atomic.Int64
	exec := func(ctx context.Context, i int) error {
		ran.Add(1)
		return runTask(ctx, i, batchStart, fn)
	}
	defer func() { mQueueDepth.Add(ran.Load() - int64(n)) }()

	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := bctx.Err(); err != nil {
				mCancels.Inc()
				return err
			}
			if err := exec(bctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64 // next index to hand out
		failed   atomic.Bool  // cancel flag: stop dispatching new items
		mu       sync.Mutex
		firstIdx = n // lowest failing index seen
		firstErr error
	)
	report := func(i int, err error) {
		failed.Store(true)
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			wctx := bctx
			if obs.Active(bctx) {
				wctx = obs.Lane(bctx, "worker "+strconv.Itoa(w))
			}
			for {
				if bctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := exec(wctx, i); err != nil {
					report(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if err := bctx.Err(); err != nil {
		mCancels.Inc()
		return err
	}
	return nil
}

// ForEachN is ForEachNCtx without a caller context (no tracing parentage;
// metrics still record).
func ForEachN(n int, fn func(i int) error, opts ...Option) error {
	return ForEachNCtx(context.Background(), n, func(_ context.Context, i int) error { return fn(i) }, opts...)
}

// MapCtx runs fn over items on a bounded worker pool, collecting results by
// item index (never by completion order). It inherits ForEachNCtx's
// cancel-on-first-error, lowest-index-error contract; on error the partial
// results are discarded. The per-item context carries the executing
// worker's trace lane.
func MapCtx[T, R any](ctx context.Context, items []T, fn func(ctx context.Context, i int, item T) (R, error), opts ...Option) ([]R, error) {
	out := make([]R, len(items))
	err := ForEachNCtx(ctx, len(items), func(ctx context.Context, i int) error {
		r, err := fn(ctx, i, items[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Map is MapCtx without a caller context.
func Map[T, R any](items []T, fn func(i int, item T) (R, error), opts ...Option) ([]R, error) {
	return MapCtx(context.Background(), items, func(_ context.Context, i int, item T) (R, error) {
		return fn(i, item)
	}, opts...)
}

// DoCtx runs the given thunks concurrently (each thunk is one work item)
// and waits for all of them, with the same error contract as ForEachNCtx.
// It is the shape for heterogeneous independent steps, e.g. a conventional
// build and a floorplanned build of the same design.
func DoCtx(ctx context.Context, thunks []func(ctx context.Context) error, opts ...Option) error {
	return ForEachNCtx(ctx, len(thunks), func(ctx context.Context, i int) error { return thunks[i](ctx) }, opts...)
}

// Do is DoCtx over context-free thunks.
func Do(thunks []func() error, opts ...Option) error {
	return ForEachN(len(thunks), func(i int) error { return thunks[i]() }, opts...)
}
