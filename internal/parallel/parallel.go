// Package parallel is the repository's execution layer for farms of
// independent CAD runs. The paper's headline throughput claim (§4.1) counts
// *independent* implementations — 36 conventional runs vs 10 partial ones —
// and every experiment dispatches such runs through this package so the
// reproduction saturates the machine instead of executing them serially.
//
// The contract is deterministic parallelism: work items are identified by
// index, every item carries its own seed (supplied by the caller, never
// derived from scheduling), results are collected by index, and the error
// reported for a failed batch is the one with the lowest index. A batch
// therefore produces bit-identical results whether it runs on one worker or
// on every core, which the determinism regression tests in
// internal/experiments assert end to end.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable overriding the default worker
// count (a positive integer; invalid or unset values fall back to
// runtime.NumCPU).
const EnvWorkers = "JPG_WORKERS"

// DefaultWorkers resolves the default pool width: $JPG_WORKERS if it parses
// to a positive integer, else runtime.NumCPU().
func DefaultWorkers() int {
	if s := os.Getenv(EnvWorkers); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.NumCPU()
}

// Option tunes one batch.
type Option func(*config)

type config struct {
	workers int
}

// WithWorkers bounds the batch to n concurrent workers. n <= 0 selects
// DefaultWorkers(); n == 1 degrades to a strictly serial in-order loop.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

func resolve(n int, opts []Option) int {
	c := config{}
	for _, o := range opts {
		o(&c)
	}
	w := c.workers
	if w <= 0 {
		w = DefaultWorkers()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEachN runs fn(0..n-1) on a bounded worker pool and waits for the batch.
// On the first error the pool stops handing out new indices (in-flight items
// run to completion), and the returned error is the lowest-index one — not
// the first observed — so failures are reproducible across worker counts.
func ForEachN(n int, fn func(i int) error, opts ...Option) error {
	if n <= 0 {
		return nil
	}
	workers := resolve(n, opts)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64 // next index to hand out
		failed   atomic.Bool  // cancel flag: stop dispatching new items
		mu       sync.Mutex
		firstIdx = n // lowest failing index seen
		firstErr error
	)
	report := func(i int, err error) {
		failed.Store(true)
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					report(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Map runs fn over items on a bounded worker pool, collecting results by
// item index (never by completion order). It inherits ForEachN's
// cancel-on-first-error, lowest-index-error contract; on error the partial
// results are discarded.
func Map[T, R any](items []T, fn func(i int, item T) (R, error), opts ...Option) ([]R, error) {
	out := make([]R, len(items))
	err := ForEachN(len(items), func(i int) error {
		r, err := fn(i, items[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Do runs the given thunks concurrently (each thunk is one work item) and
// waits for all of them, with the same error contract as ForEachN. It is the
// shape for heterogeneous independent steps, e.g. a conventional build and a
// floorplanned build of the same design.
func Do(thunks []func() error, opts ...Option) error {
	return ForEachN(len(thunks), func(i int) error { return thunks[i]() }, opts...)
}
