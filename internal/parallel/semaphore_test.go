package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSemaphoreBoundsConcurrency(t *testing.T) {
	s := NewSemaphore(3, 64)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Acquire(context.Background()); err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			defer s.Release()
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds 3 slots", p)
	}
	if s.InFlight() != 0 || s.Queued() != 0 {
		t.Fatalf("not drained: inflight=%d queued=%d", s.InFlight(), s.Queued())
	}
}

func TestSemaphoreShedsWhenQueueFull(t *testing.T) {
	s := NewSemaphore(1, 0)
	if !s.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if s.TryAcquire() {
		t.Fatal("second TryAcquire succeeded with 1 slot")
	}
	if err := s.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Acquire with full queue = %v, want ErrQueueFull", err)
	}
	s.Release()
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire after release: %v", err)
	}
	s.Release()
}

func TestSemaphoreQueueAdmitsAfterRelease(t *testing.T) {
	s := NewSemaphore(1, 1)
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- s.Acquire(context.Background()) }()
	// Wait for the second caller to be queued, then a third must shed.
	deadline := time.Now().Add(2 * time.Second)
	for s.Queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := s.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third caller = %v, want ErrQueueFull", err)
	}
	s.Release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued caller: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued caller never admitted")
	}
	s.Release()
}

func TestSemaphoreAcquireHonoursContext(t *testing.T) {
	s := NewSemaphore(1, 4)
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Acquire = %v, want DeadlineExceeded", err)
	}
	if s.Queued() != 0 {
		t.Fatalf("queue slot leaked: %d", s.Queued())
	}
}
