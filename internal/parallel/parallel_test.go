package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestForEachNRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 100
		counts := make([]atomic.Int32, n)
		err := ForEachN(n, func(i int) error {
			counts[i].Add(1)
			return nil
		}, WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachNZeroAndNegative(t *testing.T) {
	ran := false
	if err := ForEachN(0, func(int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEachN(-3, func(int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("fn ran for an empty batch")
	}
}

func TestForEachNLowestIndexError(t *testing.T) {
	// Indices 30 and 60 fail; every worker count must report 30.
	for _, workers := range []int{1, 3, 16} {
		err := ForEachN(100, func(i int) error {
			if i == 30 || i == 60 {
				return fmt.Errorf("boom at %d", i)
			}
			return nil
		}, WithWorkers(workers))
		if err == nil || err.Error() != "boom at 30" {
			t.Fatalf("workers=%d: got %v, want boom at 30", workers, err)
		}
	}
}

func TestForEachNCancelsAfterError(t *testing.T) {
	// With one worker, nothing past the failing index may run.
	var ran atomic.Int32
	err := ForEachN(1000, func(i int) error {
		ran.Add(1)
		if i == 5 {
			return fmt.Errorf("stop")
		}
		return nil
	}, WithWorkers(1))
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got != 6 {
		t.Fatalf("serial pool ran %d items after failure at index 5", got)
	}
}

func TestMapCollectsByIndex(t *testing.T) {
	items := make([]int, 50)
	for i := range items {
		items[i] = i * 3
	}
	for _, workers := range []int{1, 8} {
		out, err := Map(items, func(i, item int) (string, error) {
			return fmt.Sprintf("%d:%d", i, item), nil
		}, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if want := fmt.Sprintf("%d:%d", i, items[i]); out[i] != want {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, out[i], want)
			}
		}
	}
}

func TestMapErrorDiscardsResults(t *testing.T) {
	out, err := Map([]int{1, 2, 3}, func(i, item int) (int, error) {
		if i == 1 {
			return 0, fmt.Errorf("no")
		}
		return item, nil
	}, WithWorkers(2))
	if err == nil || out != nil {
		t.Fatalf("got (%v, %v), want (nil, error)", out, err)
	}
}

func TestDo(t *testing.T) {
	var a, b atomic.Bool
	err := Do([]func() error{
		func() error { a.Store(true); return nil },
		func() error { b.Store(true); return nil },
	})
	if err != nil || !a.Load() || !b.Load() {
		t.Fatalf("Do: err=%v a=%v b=%v", err, a.Load(), b.Load())
	}
	if err := Do(nil); err != nil {
		t.Fatal(err)
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := resolve(10, nil); got != min(10, DefaultWorkers()) {
		t.Fatalf("default resolve = %d", got)
	}
	if got := resolve(10, []Option{WithWorkers(4)}); got != 4 {
		t.Fatalf("WithWorkers(4) = %d", got)
	}
	// Never more workers than items.
	if got := resolve(2, []Option{WithWorkers(16)}); got != 2 {
		t.Fatalf("clamp to items = %d", got)
	}
	if got := resolve(10, []Option{WithWorkers(0)}); got < 1 {
		t.Fatalf("WithWorkers(0) = %d", got)
	}
}

func TestDefaultWorkersEnvOverride(t *testing.T) {
	t.Setenv(EnvWorkers, "3")
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("JPG_WORKERS=3: DefaultWorkers() = %d", got)
	}
	t.Setenv(EnvWorkers, "not-a-number")
	if got := DefaultWorkers(); got != runtime.NumCPU() {
		t.Fatalf("invalid JPG_WORKERS: DefaultWorkers() = %d, want NumCPU", got)
	}
	t.Setenv(EnvWorkers, "-2")
	if got := DefaultWorkers(); got != runtime.NumCPU() {
		t.Fatalf("negative JPG_WORKERS: DefaultWorkers() = %d, want NumCPU", got)
	}
}

func TestCtxVariantsRunEveryItem(t *testing.T) {
	ctx := context.Background()
	n := 40
	counts := make([]atomic.Int32, n)
	if err := ForEachNCtx(ctx, n, func(_ context.Context, i int) error {
		counts[i].Add(1)
		return nil
	}, WithWorkers(4)); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("index %d ran %d times", i, counts[i].Load())
		}
	}
	items := []int{3, 1, 4, 1, 5}
	got, err := MapCtx(ctx, items, func(_ context.Context, i, v int) (int, error) {
		return v * 10, nil
	}, WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range items {
		if got[i] != v*10 {
			t.Fatalf("MapCtx[%d] = %d, want %d", i, got[i], v*10)
		}
	}
	var a, b atomic.Bool
	if err := DoCtx(ctx, []func(context.Context) error{
		func(context.Context) error { a.Store(true); return nil },
		func(context.Context) error { b.Store(true); return nil },
	}, WithWorkers(2)); err != nil {
		t.Fatal(err)
	}
	if !a.Load() || !b.Load() {
		t.Fatal("DoCtx skipped a thunk")
	}
}

// TestBatchSpansAndLanes checks the observability contract of the pool:
// a traced batch yields one batch span plus one task span per index, with
// each task on a named worker lane, and the queue-depth gauge settles to
// its pre-batch value.
func TestBatchSpansAndLanes(t *testing.T) {
	col := obs.New()
	ctx := col.Attach(context.Background())
	depth0 := obs.GetGauge("parallel.queue_depth").Value()
	const n = 12
	if err := ForEachNCtx(ctx, n, func(ctx context.Context, i int) error {
		_, sp := obs.Start(ctx, "inner")
		sp.End()
		return nil
	}, WithWorkers(3)); err != nil {
		t.Fatal(err)
	}
	if d := obs.GetGauge("parallel.queue_depth").Value(); d != depth0 {
		t.Errorf("queue depth did not settle: %d -> %d", depth0, d)
	}
	spans := col.Spans()
	var batches, tasks, inners int
	taskLanes := map[int64]bool{}
	for _, s := range spans {
		switch s.Name {
		case "parallel.batch":
			batches++
			if s.Lane != 0 {
				t.Errorf("batch span on lane %d, want 0 (main)", s.Lane)
			}
		case "task":
			tasks++
			taskLanes[s.Lane] = true
		case "inner":
			inners++
		}
	}
	if batches != 1 || tasks != n || inners != n {
		t.Fatalf("spans: %d batch, %d task, %d inner; want 1, %d, %d", batches, tasks, inners, n, n)
	}
	lanes := col.LaneNames()
	for lane := range taskLanes {
		if lane == 0 {
			t.Error("task span recorded on the main lane")
		} else if name := lanes[lane]; len(name) < 7 || name[:7] != "worker " {
			t.Errorf("task lane %d named %q, want worker prefix", lane, name)
		}
	}
}

// TestSerialBatchTracesOnCallerLane: workers==1 must not spawn lanes.
func TestSerialBatchTracesOnCallerLane(t *testing.T) {
	col := obs.New()
	ctx := col.Attach(context.Background())
	if err := ForEachNCtx(ctx, 3, func(context.Context, int) error { return nil },
		WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	for _, s := range col.Spans() {
		if s.Lane != 0 {
			t.Fatalf("serial batch recorded span %q on lane %d", s.Name, s.Lane)
		}
	}
	if lanes := col.LaneNames(); len(lanes) != 1 {
		t.Fatalf("serial batch created extra lanes: %v", lanes)
	}
}

func TestForEachNCtxPreCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var ran atomic.Int32
		err := ForEachNCtx(ctx, 50, func(context.Context, int) error {
			ran.Add(1)
			return nil
		}, WithWorkers(workers))
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got != 0 {
			t.Fatalf("workers=%d: %d tasks dispatched on a dead context", workers, got)
		}
	}
}

func TestForEachNCtxCancelStopsDispatchSerial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEachNCtx(ctx, 50, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 2 {
			cancel()
		}
		return nil
	}, WithWorkers(1))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("serial loop ran %d tasks after cancel at index 2, want 3", got)
	}
}

func TestForEachNCtxCancelStopsDispatchPooled(t *testing.T) {
	const n, workers = 1000, 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	err := ForEachNCtx(ctx, n, func(_ context.Context, i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	}, WithWorkers(workers))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// After the cancellation is observed each worker finishes at most its
	// in-flight task plus one it raced into; nothing like the full batch
	// may be dispatched.
	if got := ran.Load(); got >= n/2 {
		t.Fatalf("%d of %d tasks dispatched after mid-batch cancel", got, n)
	}
}

func TestForEachNCtxTaskErrorBeatsCancellation(t *testing.T) {
	boom := fmt.Errorf("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := ForEachNCtx(ctx, 10, func(_ context.Context, i int) error {
		if i == 1 {
			cancel()
			return boom
		}
		return nil
	}, WithWorkers(1))
	if err != boom {
		t.Fatalf("err = %v, want the task error (lowest-index contract)", err)
	}
}

func TestMapCtxCancelledReturnsNoResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := []int{1, 2, 3}
	out, err := MapCtx(ctx, items, func(_ context.Context, _ int, v int) (int, error) {
		return v * 2, nil
	}, WithWorkers(2))
	if err != context.Canceled || out != nil {
		t.Fatalf("got (%v, %v), want (nil, context.Canceled)", out, err)
	}
}
