package xdl

import (
	"strings"
	"testing"

	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/phys"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/ucf"
)

// routedDesign produces a placed-and-routed counter for round-trip tests.
func routedDesign(t *testing.T) *phys.Design {
	t.Helper()
	nl, err := designs.Standalone(designs.Counter{Bits: 6}, "cnt", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	cons := ucf.New()
	cons.AddGroup("u1/*", "AG_u1", frames.Region{R1: 1, C1: 1, R2: 8, C2: 8})
	d, err := place.Place(device.MustByName("XCV50"), nl, place.Options{Seed: 4, Constraints: cons})
	if err != nil {
		t.Fatal(err)
	}
	if err := route.Route(d, route.Options{}); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEmitParseRoundTrip(t *testing.T) {
	d := routedDesign(t)
	text, err := Emit(d)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.CheckPlacement(); err != nil {
		t.Fatal(err)
	}
	if err := loaded.CheckRoutes(); err != nil {
		t.Fatal(err)
	}
	// Second emit must be byte-identical: the codec is canonical.
	text2, err := Emit(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if text != text2 {
		t.Fatal("XDL round trip is not canonical")
	}
}

func TestRoundTripPreservesEverything(t *testing.T) {
	d := routedDesign(t)
	text, err := Emit(d)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(text)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Part.Name != d.Part.Name {
		t.Fatalf("part %s != %s", loaded.Part.Name, d.Part.Name)
	}
	if len(loaded.Netlist.Cells) != len(d.Netlist.Cells) {
		t.Fatalf("cells %d != %d", len(loaded.Netlist.Cells), len(d.Netlist.Cells))
	}
	for _, c := range d.Netlist.Cells {
		lc, ok := loaded.Netlist.Cell(c.Name)
		if !ok {
			t.Fatalf("cell %q lost", c.Name)
		}
		if lc.Init != c.Init || lc.Kind != c.Kind {
			t.Fatalf("cell %q: init/kind changed", c.Name)
		}
		if loaded.Cells[lc] != d.Cells[c] {
			t.Fatalf("cell %q: site %v != %v", c.Name, loaded.Cells[lc], d.Cells[c])
		}
	}
	if loaded.RoutedPIPCount() != d.RoutedPIPCount() {
		t.Fatalf("pips %d != %d", loaded.RoutedPIPCount(), d.RoutedPIPCount())
	}
	for _, p := range d.Netlist.Ports {
		lp, ok := loaded.Netlist.Port(p.Name)
		if !ok {
			t.Fatalf("port %q lost", p.Name)
		}
		if loaded.Ports[lp] != d.Ports[p] {
			t.Fatalf("port %q: pad changed", p.Name)
		}
	}
}

func TestEmitContainsPaperShapedStatements(t *testing.T) {
	d := routedDesign(t)
	text, err := Emit(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"design \"cnt\" XCV50", "inst \"u1/", "placed CLB_R", "outpin", "pip R", "->"} {
		if !strings.Contains(text, want) {
			t.Errorf("emitted XDL missing %q", want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`inst "a" "LUT4", placed CLB_R1C1.S0.F ;`,                   // missing cfg
		`inst "a" "LUT4", placed CLB_R1C1.S0.Q, cfg "INIT::0000" ;`, // bad LE
		`inst "a" "LUT4", placed CLB_R1C1.S9.F, cfg "INIT::0000" ;`, // bad slice
		`inst "a" "LUT4", placed CLB_R1C1.S0.F, cfg "NOINIT" ;`,     // missing INIT
		`design "x" XCV50 ; net "n" , outpin "ghost" X ;`,           // unknown inst
		`design "x" XCV50 ; port "p" sideways P_L1 ;`,               // bad dir
		`design "x" XCV50 ; net "n" , pip R1C1 E0 E1 ;`,             // missing ->
		`frobnicate "x" ;`,         // unknown stmt
		`net "n" , outpin "a" X ;`, // inst before design... also unknown inst
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		}
	}
	if _, err := Parse(``); err == nil {
		t.Error("empty XDL should fail (no design statement)")
	}
}

func TestPinNameMapping(t *testing.T) {
	cases := []struct{ kind, phys, logical string }{
		{"LUT4", "F1", "I0"}, {"LUT4", "G4", "I3"}, {"LUT4", "X", "O"}, {"LUT4", "Y", "O"},
		{"DFF", "XQ", "Q"}, {"DFF", "BY", "D"}, {"DFF", "CLK", "C"}, {"DFF", "SR", "R"},
	}
	for _, tc := range cases {
		got, err := logicalPin(tc.kind, tc.phys)
		if err != nil || got != tc.logical {
			t.Errorf("logicalPin(%s, %s) = %s, %v; want %s", tc.kind, tc.phys, got, err, tc.logical)
		}
	}
	if _, err := logicalPin("LUT4", "Z9"); err == nil {
		t.Error("bogus pin accepted")
	}
}

func TestTokenizeQuotedStrings(t *testing.T) {
	toks := tokenize(`inst "a b/c" "LUT4", placed X, cfg "INIT::0001 FOO::2"`)
	want := []string{"inst", "a b/c", "LUT4", "placed", "X", "cfg", "INIT::0001 FOO::2"}
	if len(toks) != len(want) {
		t.Fatalf("tokens %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, toks[i], want[i])
		}
	}
}
