package xdl

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/device"
	"repro/internal/phys"
)

// Parse reads XDL text into a flattened physical design. Use phys.Unflatten
// to obtain a full physical design.
func Parse(text string) (*phys.Flat, error) {
	f := &phys.Flat{}
	kindOf := map[string]string{}
	for lineNo, stmt := range statements(text) {
		toks := tokenize(stmt)
		if len(toks) == 0 {
			continue
		}
		var err error
		switch toks[0] {
		case "design":
			err = parseDesign(f, toks)
		case "inst":
			err = parseInst(f, toks, kindOf)
		case "port":
			err = parsePort(f, toks)
		case "net":
			err = parseNet(f, toks, kindOf)
		default:
			err = fmt.Errorf("unknown statement %q", toks[0])
		}
		if err != nil {
			return nil, fmt.Errorf("xdl: statement %d: %w", lineNo+1, err)
		}
	}
	if f.Part == "" {
		return nil, fmt.Errorf("xdl: missing design statement")
	}
	return f, nil
}

// Load parses XDL text and reconstructs the physical design.
func Load(text string) (*phys.Design, error) {
	f, err := Parse(text)
	if err != nil {
		return nil, err
	}
	return phys.Unflatten(f)
}

// statements splits the text on ';', dropping comment lines.
func statements(text string) []string {
	var clean strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if trimmed := strings.TrimSpace(line); strings.HasPrefix(trimmed, "#") {
			continue
		}
		clean.WriteString(line)
		clean.WriteByte('\n')
	}
	var out []string
	for _, s := range strings.Split(clean.String(), ";") {
		if strings.TrimSpace(s) != "" {
			out = append(out, s)
		}
	}
	return out
}

// tokenize splits a statement into tokens: quoted strings become single
// tokens (quotes stripped), commas are separators, "->" is kept.
func tokenize(stmt string) []string {
	var toks []string
	s := stmt
	for {
		s = strings.TrimLeft(s, " \t\n\r,")
		if s == "" {
			return toks
		}
		if s[0] == '"' {
			end := strings.IndexByte(s[1:], '"')
			if end < 0 {
				toks = append(toks, s[1:])
				return toks
			}
			toks = append(toks, s[1:1+end])
			s = s[end+2:]
			continue
		}
		i := strings.IndexAny(s, " \t\n\r,")
		if i < 0 {
			toks = append(toks, s)
			return toks
		}
		toks = append(toks, s[:i])
		s = s[i:]
	}
}

func parseDesign(f *phys.Flat, toks []string) error {
	if len(toks) != 3 {
		return fmt.Errorf("design statement wants name and part")
	}
	f.Design, f.Part = toks[1], toks[2]
	return nil
}

// parseInst handles: inst "<name>" "<kind>" placed CLB_RrCc.Ss.L cfg "<cfg>"
func parseInst(f *phys.Flat, toks []string, kindOf map[string]string) error {
	if len(toks) < 7 || toks[3] != "placed" || toks[5] != "cfg" {
		return fmt.Errorf("malformed inst statement %v", toks)
	}
	name, kind := toks[1], toks[2]
	site, err := parseSite(toks[4])
	if err != nil {
		return err
	}
	init, err := parseCfgInit(toks[6])
	if err != nil {
		return err
	}
	f.Cells = append(f.Cells, phys.FlatCell{Name: name, Kind: kind, Init: init, Site: site})
	kindOf[name] = kind
	return nil
}

// parseSite parses "CLB_R3C23.S0.F".
func parseSite(s string) (phys.Site, error) {
	rest, ok := strings.CutPrefix(s, "CLB_")
	if !ok {
		return phys.Site{}, fmt.Errorf("bad site %q", s)
	}
	parts := strings.Split(rest, ".")
	if len(parts) != 3 || len(parts[1]) != 2 || parts[1][0] != 'S' {
		return phys.Site{}, fmt.Errorf("bad site %q", s)
	}
	r, c, err := device.ParseTileName(parts[0])
	if err != nil {
		return phys.Site{}, err
	}
	slice := int(parts[1][1] - '0')
	if slice < 0 || slice > 1 {
		return phys.Site{}, fmt.Errorf("bad slice in site %q", s)
	}
	var le int
	switch parts[2] {
	case "F":
		le = phys.LEF
	case "G":
		le = phys.LEG
	default:
		return phys.Site{}, fmt.Errorf("bad LE in site %q", s)
	}
	return phys.Site{Row: r, Col: c, Slice: slice, LE: le}, nil
}

// parseCfgInit extracts INIT::<hex> from an inst cfg string.
func parseCfgInit(cfg string) (uint16, error) {
	for _, kv := range strings.Fields(cfg) {
		if v, ok := strings.CutPrefix(kv, "INIT::"); ok {
			n, err := strconv.ParseUint(v, 16, 16)
			if err != nil {
				return 0, fmt.Errorf("bad INIT %q", v)
			}
			return uint16(n), nil
		}
	}
	return 0, fmt.Errorf("cfg %q missing INIT", cfg)
}

func parsePort(f *phys.Flat, toks []string) error {
	if len(toks) != 4 || (toks[2] != "in" && toks[2] != "out") {
		return fmt.Errorf("malformed port statement %v", toks)
	}
	f.Ports = append(f.Ports, phys.FlatPort{Name: toks[1], Dir: toks[2], Pad: toks[3]})
	return nil
}

func parseNet(f *phys.Flat, toks []string, kindOf map[string]string) error {
	if len(toks) < 2 {
		return fmt.Errorf("net statement missing name")
	}
	n := phys.FlatNet{Name: toks[1], Global: -1}
	i := 2
	for i < len(toks) {
		switch toks[i] {
		case "cfg":
			if i+1 >= len(toks) {
				return fmt.Errorf("net %q: dangling cfg", n.Name)
			}
			for _, kv := range strings.Fields(toks[i+1]) {
				if kv == "CLOCK" {
					n.IsClock = true
				} else if v, ok := strings.CutPrefix(kv, "GLOBAL::"); ok {
					g, err := strconv.Atoi(v)
					if err != nil {
						return fmt.Errorf("net %q: bad GLOBAL %q", n.Name, v)
					}
					n.Global = g
				}
			}
			i += 2
		case "outpin", "inpin":
			if i+2 >= len(toks) {
				return fmt.Errorf("net %q: truncated %s", n.Name, toks[i])
			}
			inst, ppin := toks[i+1], toks[i+2]
			kind, ok := kindOf[inst]
			if !ok {
				return fmt.Errorf("net %q: pin on undeclared inst %q", n.Name, inst)
			}
			lpin, err := logicalPin(kind, ppin)
			if err != nil {
				return fmt.Errorf("net %q: %w", n.Name, err)
			}
			if toks[i] == "outpin" {
				if n.Driver.Inst != "" || n.DriverPort != "" {
					return fmt.Errorf("net %q: two drivers", n.Name)
				}
				n.Driver = phys.FlatPin{Inst: inst, Pin: lpin}
			} else {
				n.Sinks = append(n.Sinks, phys.FlatPin{Inst: inst, Pin: lpin})
			}
			i += 3
		case "outport":
			if i+1 >= len(toks) {
				return fmt.Errorf("net %q: truncated outport", n.Name)
			}
			if n.Driver.Inst != "" || n.DriverPort != "" {
				return fmt.Errorf("net %q: two drivers", n.Name)
			}
			n.DriverPort = toks[i+1]
			i += 2
		case "inport":
			if i+1 >= len(toks) {
				return fmt.Errorf("net %q: truncated inport", n.Name)
			}
			n.SinkPorts = append(n.SinkPorts, toks[i+1])
			i += 2
		case "pip":
			if i+4 >= len(toks) || toks[i+3] != "->" {
				return fmt.Errorf("net %q: malformed pip", n.Name)
			}
			r, c, err := device.ParseTileName(toks[i+1])
			if err != nil {
				return fmt.Errorf("net %q: %w", n.Name, err)
			}
			n.PIPs = append(n.PIPs, phys.FlatPIP{
				Row: r, Col: c,
				Src: qualify(toks[i+2], r, c),
				Dst: qualify(toks[i+4], r, c),
			})
			i += 5
		default:
			return fmt.Errorf("net %q: unexpected token %q", n.Name, toks[i])
		}
	}
	f.Nets = append(f.Nets, n)
	return nil
}

// qualify restores the tile qualifier on tile-relative wire names.
func qualify(name string, row, col int) string {
	if _, isWire := device.WireByName(name); isWire {
		return device.TileName(row, col) + "." + name
	}
	return name
}
