package xdl

import (
	"math/rand"
	"testing"

	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/place"
	"repro/internal/route"
)

// TestParseNeverPanicsOnMutations feeds randomly mutated valid XDL into the
// parser and loader: every outcome must be a clean error or a valid design,
// never a panic. This guards the JPG tool's main untrusted input path.
func TestParseNeverPanicsOnMutations(t *testing.T) {
	nl, err := designs.Standalone(designs.Counter{Bits: 4}, "cnt", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	d, err := place.Place(device.MustByName("XCV50"), nl, place.Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if err := route.Route(d, route.Options{}); err != nil {
		t.Fatal(err)
	}
	valid, err := Emit(d)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	mutate := func(s string) string {
		b := []byte(s)
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0: // flip a byte
				if len(b) > 0 {
					b[rng.Intn(len(b))] = byte(rng.Intn(256))
				}
			case 1: // delete a chunk
				if len(b) > 10 {
					at := rng.Intn(len(b) - 10)
					b = append(b[:at], b[at+rng.Intn(10):]...)
				}
			case 2: // duplicate a chunk
				if len(b) > 10 {
					at := rng.Intn(len(b) - 10)
					chunk := append([]byte(nil), b[at:at+rng.Intn(10)]...)
					b = append(b[:at], append(chunk, b[at:]...)...)
				}
			case 3: // truncate
				if len(b) > 1 {
					b = b[:rng.Intn(len(b))]
				}
			}
		}
		return string(b)
	}

	for trial := 0; trial < 400; trial++ {
		text := mutate(valid)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: parser panicked: %v\ninput prefix: %.120q", trial, r, text)
				}
			}()
			if loaded, err := Load(text); err == nil {
				// A mutation that still parses must yield a structurally
				// valid design.
				if err := loaded.CheckPlacement(); err != nil {
					t.Fatalf("trial %d: loaded design fails placement check: %v", trial, err)
				}
			}
		}()
	}
}
