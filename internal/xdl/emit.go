// Package xdl implements the ASCII physical-design exchange format the JPG
// flow revolves around (the paper's §3.2.2): the Xilinx XDL utility converts
// the binary NCD database to this text form, and JPG parses it to replay a
// design's placement, configuration and routing through JBits calls.
//
// Grammar (one statement per ';'):
//
//	design "<name>" <part> ;
//	inst "<name>" "<LUT4|DFF>", placed CLB_R<r>C<c>.S<s>.<F|G>, cfg "<k::v ...>" ;
//	port "<name>" <in|out> <pad> ;
//	net "<name>" [, cfg "CLOCK GLOBAL::<g>"] , outpin "<inst>" <pin> |
//	    outport "<port>" {, inpin "<inst>" <pin>} {, inport "<port>"}
//	    {, pip R<r>C<c> <srcnode> -> <dstnode>} ;
//
// Pin names are physical, as in the real XDL: LUT inputs F1..F4/G1..G4,
// LUT outputs X/Y, flip-flop outputs XQ/YQ, flip-flop data BX/BY, controls
// CLK/CE/SR. Rows and columns are 1-based in the text.
package xdl

import (
	"fmt"
	"strings"

	"repro/internal/device"
	"repro/internal/phys"
)

// Emit renders a physical design as XDL text.
func Emit(d *phys.Design) (string, error) {
	f, err := d.Flatten()
	if err != nil {
		return "", err
	}
	return EmitFlat(f)
}

// EmitFlat renders an already-flattened design.
func EmitFlat(f *phys.Flat) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# XDL generated from design %q\n", f.Design)
	fmt.Fprintf(&b, "design \"%s\" %s ;\n\n", f.Design, f.Part)

	siteOf := map[string]phys.Site{}
	kindOf := map[string]string{}
	for _, c := range f.Cells {
		siteOf[c.Name] = c.Site
		kindOf[c.Name] = c.Kind
		fmt.Fprintf(&b, "inst \"%s\" \"%s\", placed CLB_%s.S%d.%s, cfg \"INIT::%04X\" ;\n",
			c.Name, c.Kind, device.TileName(c.Site.Row, c.Site.Col), c.Site.Slice,
			device.LUTName(c.Site.LE), c.Init)
	}
	b.WriteString("\n")
	for _, p := range f.Ports {
		fmt.Fprintf(&b, "port \"%s\" %s %s ;\n", p.Name, p.Dir, p.Pad)
	}
	b.WriteString("\n")
	for _, n := range f.Nets {
		fmt.Fprintf(&b, "net \"%s\"", n.Name)
		if n.IsClock {
			fmt.Fprintf(&b, " ,\n  cfg \"CLOCK GLOBAL::%d\"", n.Global)
		}
		if n.Driver.Inst != "" {
			pin, err := physicalPin(n.Driver, kindOf, siteOf)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, " ,\n  outpin \"%s\" %s", n.Driver.Inst, pin)
		} else {
			fmt.Fprintf(&b, " ,\n  outport \"%s\"", n.DriverPort)
		}
		for _, s := range n.Sinks {
			pin, err := physicalPin(s, kindOf, siteOf)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, " ,\n  inpin \"%s\" %s", s.Inst, pin)
		}
		for _, sp := range n.SinkPorts {
			fmt.Fprintf(&b, " ,\n  inport \"%s\"", sp)
		}
		for _, pip := range n.PIPs {
			fmt.Fprintf(&b, " ,\n  pip %s %s -> %s",
				device.TileName(pip.Row, pip.Col), localiseNode(pip.Src, pip.Row, pip.Col), localiseNode(pip.Dst, pip.Row, pip.Col))
		}
		b.WriteString(" ;\n")
	}
	return b.String(), nil
}

// localiseNode strips the tile qualifier from node names belonging to the
// anchor tile, matching real XDL's tile-relative pip statements.
func localiseNode(name string, row, col int) string {
	prefix := device.TileName(row, col) + "."
	if rest, ok := strings.CutPrefix(name, prefix); ok {
		return rest
	}
	return name
}

// physicalPin translates a logical pin reference to its physical name, which
// depends on the cell kind and (for LUT pins) the site's LE letter.
func physicalPin(p phys.FlatPin, kindOf map[string]string, siteOf map[string]phys.Site) (string, error) {
	site, ok := siteOf[p.Inst]
	if !ok {
		return "", fmt.Errorf("xdl: pin on unknown inst %q", p.Inst)
	}
	letter := device.LUTName(site.LE) // "F" or "G"
	switch kindOf[p.Inst] {
	case "LUT4":
		switch {
		case p.Pin == "O" && site.LE == phys.LEF:
			return "X", nil
		case p.Pin == "O":
			return "Y", nil
		case len(p.Pin) == 2 && p.Pin[0] == 'I':
			return fmt.Sprintf("%s%c", letter, p.Pin[1]+1), nil
		}
	case "DFF":
		switch p.Pin {
		case "Q":
			if site.LE == phys.LEF {
				return "XQ", nil
			}
			return "YQ", nil
		case "D":
			if site.LE == phys.LEF {
				return "BX", nil
			}
			return "BY", nil
		case "C":
			return "CLK", nil
		case "CE":
			return "CE", nil
		case "R":
			return "SR", nil
		}
	}
	return "", fmt.Errorf("xdl: no physical pin for %s.%s (%s)", p.Inst, p.Pin, kindOf[p.Inst])
}

// logicalPin is the inverse of physicalPin.
func logicalPin(kind, pin string) (string, error) {
	switch kind {
	case "LUT4":
		switch pin {
		case "X", "Y":
			return "O", nil
		}
		if len(pin) == 2 && (pin[0] == 'F' || pin[0] == 'G') && pin[1] >= '1' && pin[1] <= '4' {
			return fmt.Sprintf("I%c", pin[1]-1), nil
		}
	case "DFF":
		switch pin {
		case "XQ", "YQ":
			return "Q", nil
		case "BX", "BY":
			return "D", nil
		case "CLK":
			return "C", nil
		case "CE":
			return "CE", nil
		case "SR":
			return "R", nil
		}
	}
	return "", fmt.Errorf("xdl: unknown physical pin %q on %s", pin, kind)
}
