// Package bitfile implements the Xilinx .bit file container: the small
// tagged header (design name, part, date, time) that wraps raw configuration
// data in the files the Xilinx tools exchange. The format is the well-known
// public one: a fixed 13-byte preamble, then length-prefixed fields keyed
// 'a' (design name), 'b' (part), 'c' (date), 'd' (time) and 'e' (data
// length + payload).
package bitfile

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// preamble is the fixed field-0 header every .bit file starts with.
var preamble = []byte{
	0x00, 0x09, 0x0F, 0xF0, 0x0F, 0xF0, 0x0F, 0xF0, 0x0F, 0xF0, 0x00, 0x00, 0x01,
}

// Header carries a .bit file's metadata.
type Header struct {
	Design string // field 'a': design name (conventionally "name.ncd")
	Part   string // field 'b': part name, e.g. "XCV50"
	Date   string // field 'c'
	Time   string // field 'd'
}

// Wrap encloses raw configuration data in a .bit container.
func Wrap(h Header, data []byte) []byte {
	var b bytes.Buffer
	b.Write(preamble)
	writeStr := func(key byte, s string) {
		b.WriteByte(key)
		// Strings are NUL-terminated, with a 16-bit length.
		binary.Write(&b, binary.BigEndian, uint16(len(s)+1))
		b.WriteString(s)
		b.WriteByte(0)
	}
	writeStr('a', h.Design)
	writeStr('b', h.Part)
	writeStr('c', h.Date)
	writeStr('d', h.Time)
	b.WriteByte('e')
	binary.Write(&b, binary.BigEndian, uint32(len(data)))
	b.Write(data)
	return b.Bytes()
}

// Parse splits a .bit container into its header and raw configuration data.
// The returned data slice aliases the input.
func Parse(file []byte) (Header, []byte, error) {
	var h Header
	if len(file) < len(preamble)+2 || !bytes.Equal(file[:len(preamble)], preamble) {
		return h, nil, fmt.Errorf("bitfile: missing .bit preamble")
	}
	rest := file[len(preamble):]
	readStr := func() (string, error) {
		if len(rest) < 2 {
			return "", fmt.Errorf("bitfile: truncated field length")
		}
		n := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		if n < 1 || len(rest) < n {
			return "", fmt.Errorf("bitfile: truncated field body")
		}
		s := rest[:n-1] // strip NUL
		rest = rest[n:]
		return string(s), nil
	}
	for len(rest) > 0 {
		key := rest[0]
		rest = rest[1:]
		switch key {
		case 'a', 'b', 'c', 'd':
			s, err := readStr()
			if err != nil {
				return h, nil, err
			}
			switch key {
			case 'a':
				h.Design = s
			case 'b':
				h.Part = s
			case 'c':
				h.Date = s
			case 'd':
				h.Time = s
			}
		case 'e':
			if len(rest) < 4 {
				return h, nil, fmt.Errorf("bitfile: truncated data length")
			}
			n := int(binary.BigEndian.Uint32(rest))
			rest = rest[4:]
			if len(rest) < n {
				return h, nil, fmt.Errorf("bitfile: data field shorter than declared (%d < %d)", len(rest), n)
			}
			return h, rest[:n], nil
		default:
			return h, nil, fmt.Errorf("bitfile: unknown field key %#02x", key)
		}
	}
	return h, nil, fmt.Errorf("bitfile: no data field")
}

// IsBitFile reports whether the bytes look like a .bit container (as
// opposed to raw configuration data, which starts with dummy/sync words).
func IsBitFile(file []byte) bool {
	return len(file) >= len(preamble) && bytes.Equal(file[:len(preamble)], preamble)
}

// Unwrap returns the raw configuration data whether or not the input is
// wrapped: .bit containers are parsed, anything else is returned as-is.
func Unwrap(file []byte) ([]byte, Header, error) {
	if !IsBitFile(file) {
		return file, Header{}, nil
	}
	h, data, err := Parse(file)
	return data, h, err
}
