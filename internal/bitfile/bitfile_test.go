package bitfile

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestWrapParseRoundTrip(t *testing.T) {
	h := Header{Design: "base.ncd", Part: "XCV50", Date: "2002/04/15", Time: "12:34:56"}
	data := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xAA, 0x99, 0x55, 0x66, 1, 2, 3, 4}
	file := Wrap(h, data)
	h2, data2, err := Parse(file)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Fatalf("header round trip: %+v != %+v", h2, h)
	}
	if !bytes.Equal(data2, data) {
		t.Fatal("data round trip lost bytes")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(design, part string, data []byte) bool {
		// NUL bytes cannot appear in header strings (NUL-terminated fields).
		design = sanitize(design)
		part = sanitize(part)
		h := Header{Design: design, Part: part, Date: "d", Time: "t"}
		h2, data2, err := Parse(Wrap(h, data))
		return err == nil && h2 == h && bytes.Equal(data2, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func sanitize(s string) string {
	if len(s) > 1000 {
		s = s[:1000]
	}
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != 0 {
			out = append(out, s[i])
		}
	}
	return string(out)
}

func TestIsBitFileAndUnwrap(t *testing.T) {
	raw := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xAA, 0x99, 0x55, 0x66}
	if IsBitFile(raw) {
		t.Fatal("raw stream detected as .bit")
	}
	out, h, err := Unwrap(raw)
	if err != nil || !bytes.Equal(out, raw) || h.Part != "" {
		t.Fatal("raw passthrough broken")
	}
	wrapped := Wrap(Header{Design: "x", Part: "XCV300"}, raw)
	if !IsBitFile(wrapped) {
		t.Fatal(".bit not detected")
	}
	out, h, err = Unwrap(wrapped)
	if err != nil || !bytes.Equal(out, raw) || h.Part != "XCV300" {
		t.Fatalf("unwrap broken: %+v %v", h, err)
	}
}

func TestParseErrors(t *testing.T) {
	good := Wrap(Header{Design: "a", Part: "b", Date: "c", Time: "d"}, []byte{1, 2, 3})
	cases := map[string][]byte{
		"empty":           {},
		"bad preamble":    append([]byte{9}, good[1:]...),
		"truncated field": good[:len(preamble)+2],
		"truncated data":  good[:len(good)-2],
		"no data field":   good[:len(preamble)],
	}
	for name, data := range cases {
		if _, _, err := Parse(data); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Unknown field key.
	bad := append([]byte(nil), good...)
	bad[len(preamble)] = 'z'
	if _, _, err := Parse(bad); err == nil {
		t.Error("unknown key accepted")
	}
}
