package flow

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"repro/internal/bitgen"
	"repro/internal/bitstream"
	"repro/internal/cache"
	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/jbitsdiff"
	"repro/internal/ncd"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/phys"
	"repro/internal/ucf"
	"repro/internal/xdl"
)

// The incremental flow: instead of re-running map/place/route/bitgen for an
// edited netlist, diff the edit against the previous revision and propagate
// only the delta. An INIT-only edit (LUT truth tables, flip-flop reset
// values — the edits the paper's run-time parameterisable cores make) leaves
// placement and routing untouched, because neither stage consults Init: the
// previous physical solution is transferred onto the edited netlist by name,
// only the edited cells' frames are reprogrammed, and dirty-frame tracking
// names exactly the touched frame runs for partial emission — no full-memory
// diff. Anything placement or routing could observe falls back to a full
// deterministic rebuild, so results are byte-identical to the from-scratch
// flow on every path.

// Incremental-flow metrics (always on; see internal/obs).
var (
	mIncrEdits    = obs.GetCounter("flow.incremental_edits")
	mIncrSplices  = obs.GetCounter("flow.incremental_splices")
	mIncrRebuilds = obs.GetCounter("flow.incremental_rebuilds")
	mIncrColHits  = obs.GetCounter("flow.incremental_col_hits")
	mIncrNS       = obs.GetHistogram("flow.incremental_ns")
	mIncrDirty    = obs.GetHistogram("flow.incremental_dirty_frames")
)

// IncrementalStats describes how one edit was absorbed.
type IncrementalStats struct {
	// Class is the diff classification: "empty", "init-only", "structural".
	Class string
	// Path is what the engine did: "reuse" (no change), "splice" (transfer +
	// delta reprogram) or "rebuild" (full deterministic re-run).
	Path string
	// InitEdits counts the edited cells on the splice path.
	InitEdits int
	// DirtyFrames and DirtyColumns describe the touched configuration state
	// after a splice: exactly the frames whose content changed.
	DirtyFrames  int
	DirtyColumns []int
	// ColumnHits counts per-column sub-stage cache hits during the splice.
	ColumnHits int
	// Diff and Apply are the wall-clock costs of diffing the netlists and of
	// absorbing the edit (splice or rebuild).
	Diff, Apply time.Duration
}

// IncrementalResult is the outcome of absorbing one edit.
type IncrementalResult struct {
	// Artifacts is the implementation of the edited netlist, byte-identical
	// to what the from-scratch flow would produce for it.
	Artifacts *Artifacts
	// Delta, when non-nil, is the minimal partial bitstream carrying exactly
	// the frames whose content changed relative to the previous revision —
	// the jbitsdiff core of the edit. It is nil when nothing changed and
	// after a structural rebuild of a first-time structure.
	Delta *jbitsdiff.Core
	Stats IncrementalStats
}

// EditSession is the stateful incremental engine: it holds the previous
// revision's artifacts plus its live configuration memory (with dirty-frame
// tracking enabled) and absorbs a stream of netlist edits. Sessions are not
// safe for concurrent use.
type EditSession struct {
	// EmitFiles controls whether splices re-emit XDL/NCD artifacts. The hot
	// edit loop leaves it false — the downstream consumer (core.Project)
	// takes the live physical design — and identity tests set it true.
	EmitFiles bool

	part     *device.Part
	cons     *ucf.Constraints
	rfn      func(*netlist.Net) *frames.Region
	regionFP string
	opts     Options

	prev *Artifacts
	// mem is the bitgen output for prev.Phys, tracked so splices record
	// exactly the frames they touch.
	mem *frames.Memory
	// colIndex maps each CLB column to the names of the cells placed in it
	// (sorted); colBase keys the per-column sub-stage cache. Both are
	// functions of the placement and are rebuilt after a structural rebuild.
	colIndex map[int][]string
	colBase  cache.Key
	valid    bool
}

// NewEditSession starts an incremental session from a previous
// implementation, with Implement's region semantics (cell-to-cell nets
// confined to their AREA_GROUP region). cons may be nil for unconstrained
// designs; it must be the constraints prev was built with.
func NewEditSession(prev *Artifacts, cons *ucf.Constraints, opts Options) (*EditSession, error) {
	rfn, regionFP := implementRegionFn(cons)
	return newEditSession(prev, cons, rfn, regionFP, opts)
}

// NewVariantEditSession starts an incremental session from a Phase 2 variant
// build (BuildVariant / BuildVariantUCF), whose router confines every
// non-clock net to the instance region. The constraints are recovered from
// the artifacts' UCF text.
func NewVariantEditSession(prev *Artifacts, rg frames.Region, opts Options) (*EditSession, error) {
	cons, err := ucf.Parse(prev.UCF)
	if err != nil {
		return nil, fmt.Errorf("flow: edit session: recover UCF: %w", err)
	}
	rfn := func(n *netlist.Net) *frames.Region {
		if n.IsClock {
			return nil
		}
		r := rg
		return &r
	}
	return newEditSession(prev, cons, rfn, "all:"+rg.String(), opts)
}

func newEditSession(prev *Artifacts, cons *ucf.Constraints, rfn func(*netlist.Net) *frames.Region,
	regionFP string, opts Options) (*EditSession, error) {
	if prev == nil || prev.Phys == nil || prev.Netlist == nil {
		return nil, fmt.Errorf("flow: edit session needs implemented artifacts")
	}
	s := &EditSession{
		part:     prev.Part,
		cons:     cons,
		rfn:      rfn,
		regionFP: regionFP,
		opts:     opts,
		prev:     prev,
	}
	if err := s.rebind(prev); err != nil {
		return nil, err
	}
	return s, nil
}

// rebind (re)derives the session's memory, column index and sub-stage key
// base from a freshly implemented revision.
func (s *EditSession) rebind(a *Artifacts) error {
	mem, err := bitgen.Generate(a.Phys)
	if err != nil {
		return fmt.Errorf("flow: edit session: regenerate frames: %w", err)
	}
	mem.StartTracking()
	s.prev = a
	s.mem = mem

	s.colIndex = map[int][]string{}
	for c, site := range a.Phys.Cells {
		s.colIndex[site.Col] = append(s.colIndex[site.Col], c.Name)
	}
	for _, names := range s.colIndex {
		sort.Strings(names)
	}
	h := cache.NewHasher("flow.incremental/v1")
	h.Str("part", s.part.Name)
	h.Str("struct", a.Netlist.StructuralFingerprint())
	h.Str("ucf", s.cons.Fingerprint())
	h.Str("opts", s.opts.Fingerprint())
	h.Str("regions", s.regionFP)
	s.colBase = h.Sum()
	s.valid = true
	return nil
}

// Prev returns the artifacts of the session's current revision.
func (s *EditSession) Prev() *Artifacts { return s.prev }

// Cons returns the constraints the session implements against.
func (s *EditSession) Cons() *ucf.Constraints { return s.cons }

// Edit absorbs one netlist edit: diff next against the current revision,
// splice an INIT-only edit, rebuild anything structural. On success the
// session advances to next as its current revision.
func (s *EditSession) Edit(ctx context.Context, next *netlist.Design) (*IncrementalResult, error) {
	ctx, sp := obs.Start(ctx, "flow.incremental")
	defer sp.End()
	mIncrEdits.Inc()
	t0 := time.Now()
	defer func() { mIncrNS.Observe(time.Since(t0).Nanoseconds()) }()

	_, dsp := obs.Start(ctx, "diff")
	diff := netlist.Diff(s.prev.Netlist, next)
	dsp.SetStr("class", diff.Class())
	dsp.End()
	diffTime := time.Since(t0)
	sp.SetStr("class", diff.Class())

	switch {
	case !s.valid || diff.Structural():
		return s.rebuild(ctx, next, diff, diffTime)
	case diff.Empty():
		return &IncrementalResult{
			Artifacts: s.prev,
			Stats:     IncrementalStats{Class: diff.Class(), Path: "reuse", Diff: diffTime},
		}, nil
	default:
		return s.splice(ctx, next, diff, diffTime)
	}
}

// splice absorbs an INIT-only edit: transfer the previous placement and
// routes onto the edited netlist, reprogram only the edited cells' frames,
// and package the dirty frames as the delta.
func (s *EditSession) splice(ctx context.Context, next *netlist.Design, diff *netlist.DesignDiff,
	diffTime time.Duration) (*IncrementalResult, error) {
	t0 := time.Now()
	ctx, sp := obs.Start(ctx, "splice")
	sp.SetInt("edits", int64(len(diff.InitEdits)))
	defer sp.End()
	mIncrSplices.Inc()

	pd, err := phys.Transfer(s.prev.Phys, next)
	if err != nil {
		// A diff the transfer disagrees with (defensive; should not happen)
		// is handled like any structural edit.
		return s.rebuild(ctx, next, diff, diffTime)
	}

	s.mem.ResetDirty()
	colHits, err := s.applyEdits(ctx, pd, next, diff.InitEdits)
	if err != nil {
		s.valid = false // memory may hold a partial edit
		return nil, err
	}
	dirty := s.mem.DirtyFARs()
	mIncrDirty.Observe(int64(len(dirty)))
	sp.SetInt("dirty_frames", int64(len(dirty)))

	var delta *jbitsdiff.Core
	if len(dirty) > 0 {
		if delta, err = jbitsdiff.FromDirty(s.mem); err != nil {
			s.valid = false
			return nil, err
		}
	}

	a := &Artifacts{
		Part:    s.part,
		Netlist: next,
		Phys:    pd,
		UCF:     s.prev.UCF,
		Times:   StageTimes{},
	}
	a.Bitstream = bitstream.WriteFull(s.mem)
	a.Times.Bitgen = time.Since(t0)
	if err := verifyBitstream(ctx, s.opts, a.Bitstream); err != nil {
		return nil, err
	}
	if delta != nil {
		// Splice-equals-rebuild: the previous full bitstream plus this
		// delta must land on exactly the new full bitstream's state.
		if err := verifySplice(ctx, s.opts, s.prev.Bitstream, delta.Bitstream, a.Bitstream); err != nil {
			return nil, err
		}
	}
	if s.EmitFiles {
		if a.XDL, err = xdl.Emit(pd); err != nil {
			return nil, err
		}
		if a.NCD, err = ncd.Marshal(pd); err != nil {
			return nil, err
		}
	}
	s.prev = a

	return &IncrementalResult{
		Artifacts: a,
		Delta:     delta,
		Stats: IncrementalStats{
			Class:        diff.Class(),
			Path:         "splice",
			InitEdits:    len(diff.InitEdits),
			DirtyFrames:  len(dirty),
			DirtyColumns: s.mem.DirtyCLBColumns(),
			ColumnHits:   colHits,
			Diff:         diffTime,
			Apply:        time.Since(t0),
		},
	}, nil
}

// applyEdits writes the INIT edits into the session memory, one affected
// column at a time. With a cache attached, each column's complete frame
// payload is memoized under a sub-stage key covering the structure and the
// column's Init values, so revisiting a configuration in a warm edit storm
// replays the column's frames instead of reprogramming cells.
func (s *EditSession) applyEdits(ctx context.Context, pd *phys.Design, next *netlist.Design,
	edits []netlist.InitEdit) (colHits int, err error) {
	c := cache.FromContext(ctx)
	if c == nil {
		return 0, bitgen.ReprogramInitEdits(s.mem, pd, edits)
	}
	// Group the edits by the CLB column holding the edited cell.
	byCol := map[int][]netlist.InitEdit{}
	var cols []int
	for _, e := range edits {
		cell, ok := next.Cell(e.Name)
		if !ok {
			return colHits, fmt.Errorf("flow: splice: no cell %q", e.Name)
		}
		site, placed := pd.Cells[cell]
		if !placed {
			return colHits, fmt.Errorf("flow: splice: cell %q unplaced", e.Name)
		}
		if _, seen := byCol[site.Col]; !seen {
			cols = append(cols, site.Col)
		}
		byCol[site.Col] = append(byCol[site.Col], e)
	}
	sort.Ints(cols)
	for _, col := range cols {
		key := s.columnKey(next, col)
		payload, hit, err := c.GetOrCompute("col", key, func() ([]byte, error) {
			if err := bitgen.ReprogramInitEdits(s.mem, pd, byCol[col]); err != nil {
				return nil, err
			}
			return s.columnPayload(col), nil
		})
		if err != nil {
			return colHits, err
		}
		if hit {
			colHits++
			mIncrColHits.Inc()
			if err := s.setColumnPayload(col, payload); err != nil {
				return colHits, err
			}
		}
	}
	return colHits, nil
}

// columnKey is the sub-stage cache key of one CLB column's frame payload:
// the session's structural base key plus the Init values of every cell
// placed in the column.
func (s *EditSession) columnKey(nl *netlist.Design, col int) cache.Key {
	fields := make([]string, 0, 1+len(s.colIndex[col]))
	fields = append(fields, fmt.Sprintf("col=%d", col))
	for _, name := range s.colIndex[col] {
		init := 0
		if c, ok := nl.Cell(name); ok {
			init = int(c.Init)
		}
		fields = append(fields, fmt.Sprintf("%s=%#x", name, init))
	}
	return cache.SubKey(s.colBase, "flow.col/v1", fields...)
}

// columnPayload serialises the column's frames (all minors, big-endian).
func (s *EditSession) columnPayload(col int) []byte {
	fw := s.part.FrameWords()
	out := make([]byte, 0, device.FramesCLBCol*fw*4)
	for minor := 0; minor < device.FramesCLBCol; minor++ {
		far := device.MakeFAR(device.BlockCLB, s.part.CLBMajor(col), minor)
		for _, w := range s.mem.Frame(far) {
			out = binary.BigEndian.AppendUint32(out, w)
		}
	}
	return out
}

// setColumnPayload replays a memoized column payload into the session
// memory through SetFrame, so only genuinely changed frames turn dirty.
func (s *EditSession) setColumnPayload(col int, payload []byte) error {
	fw := s.part.FrameWords()
	if len(payload) != device.FramesCLBCol*fw*4 {
		return fmt.Errorf("flow: column payload %d bytes, want %d", len(payload), device.FramesCLBCol*fw*4)
	}
	words := make([]uint32, fw)
	for minor := 0; minor < device.FramesCLBCol; minor++ {
		far := device.MakeFAR(device.BlockCLB, s.part.CLBMajor(col), minor)
		base := minor * fw * 4
		for i := range words {
			words[i] = binary.BigEndian.Uint32(payload[base+i*4:])
		}
		if err := s.mem.SetFrame(far, words); err != nil {
			return err
		}
	}
	return nil
}

// rebuild absorbs a structural edit by re-running the full deterministic
// stage sequence (cache-accelerated when a cache is attached) and rebasing
// the session on the result. The delta against the previous configuration
// is still reported when one exists.
func (s *EditSession) rebuild(ctx context.Context, next *netlist.Design, diff *netlist.DesignDiff,
	diffTime time.Duration) (*IncrementalResult, error) {
	t0 := time.Now()
	ctx, sp := obs.Start(ctx, "rebuild")
	defer sp.End()
	mIncrRebuilds.Inc()

	a, err := run(ctx, s.part, next, s.cons, s.rfn, s.regionFP, s.opts, 0)
	if err != nil {
		return nil, fmt.Errorf("flow: incremental rebuild: %w", err)
	}
	oldMem := s.mem
	if err := s.rebind(&a); err != nil {
		return nil, err
	}
	var delta *jbitsdiff.Core
	if oldMem != nil {
		// Best-effort: a full-memory diff (the rebuild already dwarfs it).
		if core, err := jbitsdiff.FromMemories(oldMem, s.mem); err == nil {
			delta = core
		}
	}
	return &IncrementalResult{
		Artifacts: s.prev,
		Delta:     delta,
		Stats: IncrementalStats{
			Class: diff.Class(),
			Path:  "rebuild",
			Diff:  diffTime,
			Apply: time.Since(t0),
		},
	}, nil
}

// implementRegionFn derives Implement's router-constraint function and its
// cache fingerprint from UCF constraints (see Implement).
func implementRegionFn(cons *ucf.Constraints) (func(*netlist.Net) *frames.Region, string) {
	if cons == nil || len(cons.Ranges) == 0 {
		return nil, "none"
	}
	rfn := func(n *netlist.Net) *frames.Region {
		if n.IsClock || n.Driver.Cell == nil || n.DriverPort != nil || len(n.SinkPorts) > 0 {
			return nil
		}
		if rg, ok := cons.RegionFor(n.Driver.Cell.Name); ok {
			r := rg
			return &r
		}
		return nil
	}
	return rfn, "groups"
}

// Incremental is the one-shot entry point: re-implement next against a
// previous implementation, splicing whatever the edit leaves untouched. It
// is NewEditSession + one Edit with file emission on; callers absorbing an
// edit stream should hold an EditSession instead so the configuration
// memory persists across edits.
func Incremental(ctx context.Context, prev *Artifacts, next *netlist.Design, cons *ucf.Constraints,
	opts Options) (*IncrementalResult, error) {
	s, err := NewEditSession(prev, cons, opts)
	if err != nil {
		return nil, err
	}
	s.EmitFiles = true
	return s.Edit(ctx, next)
}
