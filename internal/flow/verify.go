package flow

import (
	"context"
	"fmt"

	"repro/internal/bitlint"
	"repro/internal/obs"
	jpglog "repro/internal/obs/log"
)

// Post-bitgen verification (Options.Verify): every bitstream the flow emits
// is re-decoded by the independent verifier and differentially checked
// against the port VM before the build is allowed to succeed. The stage is
// opt-in because it re-reads the whole bitstream; it never changes what is
// built, only whether an unsafe stream is allowed out of the flow.

var mVerifyRuns = obs.GetCounter("flow.verify_runs")

// verifyBitstream lints bs when the options ask for it. A full bitstream is
// expected to issue the start-up sequence; partials must not (the callers on
// the partial path use bitlint.VerifyPartial directly).
func verifyBitstream(ctx context.Context, opts Options, bs []byte) error {
	if !opts.Verify {
		return nil
	}
	_, sp := obs.Start(ctx, "verify")
	rep, err := bitlint.Verify(bs)
	if err == nil {
		err = rep.Err()
	}
	sp.EndErr(err)
	if err != nil {
		obs.CountError("verify")
		return fmt.Errorf("flow: bitstream verification failed: %w", err)
	}
	mVerifyRuns.Inc()
	jpglog.Info(ctx, "flow.verify", jpglog.FieldStage, "verify",
		"findings", len(rep.Findings), "frames", rep.FramesWritten)
	return nil
}

// verifySplice proves splice-equals-rebuild for an incremental edit: the
// previous revision's full bitstream plus the emitted delta must reconstruct
// exactly the state the new full bitstream does.
func verifySplice(ctx context.Context, opts Options, baseFull, partial, full []byte) error {
	if !opts.Verify || len(baseFull) == 0 || len(partial) == 0 {
		return nil
	}
	_, sp := obs.Start(ctx, "verify")
	rep, err := bitlint.VerifySplice(baseFull, partial, full)
	if err == nil && rep != nil {
		err = rep.Err()
	}
	sp.EndErr(err)
	if err != nil {
		obs.CountError("verify")
		return fmt.Errorf("flow: splice verification failed: %w", err)
	}
	mVerifyRuns.Inc()
	jpglog.Info(ctx, "flow.verify", jpglog.FieldStage, "verify-splice",
		"findings", len(rep.Findings), "frames", rep.FramesWritten)
	return nil
}
