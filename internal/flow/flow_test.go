package flow

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/netlist"
	"repro/internal/parallel"
	"repro/internal/ucf"
	"repro/internal/xdl"
)

func twoInstances() []designs.Instance {
	return []designs.Instance{
		{Prefix: "u1/", Gen: designs.Counter{Bits: 6}},
		{Prefix: "u2/", Gen: designs.SBoxBank{N: 8, Seed: 3}},
	}
}

func TestBuildBase(t *testing.T) {
	p := device.MustByName("XCV50")
	base, err := BuildBase(context.Background(), p, twoInstances(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Regions cover disjoint full-height column spans.
	r1, r2 := base.Regions["u1/"], base.Regions["u2/"]
	if r1.Overlaps(r2) {
		t.Fatalf("regions overlap: %v and %v", r1, r2)
	}
	if r1.R1 != 0 || r1.R2 != p.Rows-1 || r2.R1 != 0 || r2.R2 != p.Rows-1 {
		t.Fatalf("regions not full height: %v %v", r1, r2)
	}
	// Every cell sits inside its instance's region.
	for c, site := range base.Phys.Cells {
		var rg frames.Region
		switch {
		case hasPrefix(c.Name, "u1/"):
			rg = r1
		case hasPrefix(c.Name, "u2/"):
			rg = r2
		default:
			t.Fatalf("cell %q belongs to no instance", c.Name)
		}
		if !rg.Contains(site.Row, site.Col) {
			t.Fatalf("cell %q at %v outside %v", c.Name, site, rg)
		}
	}
	// Module routing is contained in the module's columns.
	for n, r := range base.Phys.Routes {
		if r.Global >= 0 {
			continue
		}
		var rg frames.Region
		switch {
		case hasPrefix(n.Name, "u1"):
			rg = r1
		case hasPrefix(n.Name, "u2"):
			rg = r2
		default:
			continue
		}
		for _, pip := range r.PIPs {
			if pip.Col < rg.C1 || pip.Col > rg.C2 {
				t.Fatalf("net %q pip at col %d outside its region %v", n.Name, pip.Col+1, rg)
			}
		}
	}
	// Artifacts are complete and consistent.
	if base.UCF == "" || base.XDL == "" || len(base.NCD) == 0 || len(base.Bitstream) == 0 {
		t.Fatal("missing artifacts")
	}
	if _, err := xdl.Load(base.XDL); err != nil {
		t.Fatalf("base XDL does not load: %v", err)
	}
	if part, err := bitstream.InferPart(base.Bitstream); err != nil || part != p {
		t.Fatalf("bitstream part inference: %v, %v", part, err)
	}
	if base.Times.Total() <= 0 {
		t.Fatal("no stage times recorded")
	}
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

func TestBuildVariantInheritsInterface(t *testing.T) {
	p := device.MustByName("XCV50")
	base, err := BuildBase(context.Background(), p, twoInstances(), Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	va, err := BuildVariant(context.Background(), base, "u1/", designs.LFSR{Bits: 6}, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The variant's ports sit on the same pads as the base instance's.
	for _, port := range va.Netlist.Ports {
		pad := va.Phys.Ports[port].Name()
		basePort := port.Name
		if basePort != "clk" {
			basePort = "u1_" + basePort
		}
		if base.Pads[basePort] != pad {
			t.Fatalf("port %q on pad %s, base used %s", port.Name, pad, base.Pads[basePort])
		}
	}
	// The variant stays inside the instance's region columns.
	rg := base.Regions["u1/"]
	for _, site := range va.Phys.Cells {
		if !rg.Contains(site.Row, site.Col) {
			t.Fatalf("variant cell outside region: %v not in %v", site, rg)
		}
	}
	for n, r := range va.Phys.Routes {
		if r.Global >= 0 {
			continue
		}
		for _, pip := range r.PIPs {
			if pip.Col < rg.C1 || pip.Col > rg.C2 {
				t.Fatalf("variant net %q escapes region columns", n.Name)
			}
		}
	}
}

func TestBuildVariantUnknownInstance(t *testing.T) {
	p := device.MustByName("XCV50")
	base, err := BuildBase(context.Background(), p, twoInstances(), Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildVariant(context.Background(), base, "u9/", designs.Counter{Bits: 2}, Options{Seed: 1}); err == nil {
		t.Fatal("unknown instance accepted")
	}
}

func TestBuildFull(t *testing.T) {
	p := device.MustByName("XCV50")
	full, err := BuildFull(context.Background(), p, twoInstances(), Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Bitstream) == 0 {
		t.Fatal("no bitstream")
	}
}

func TestFloorplanErrors(t *testing.T) {
	p := device.MustByName("XCV50")
	if _, _, err := Floorplan(p, nil); err == nil {
		t.Fatal("empty floorplan accepted")
	}
	// Too many instances for the columns (each needs >= 2).
	var many []designs.Instance
	for i := 0; i < p.Cols; i++ {
		many = append(many, designs.Instance{
			Prefix: string(rune('a'+i%26)) + string(rune('0'+i/26)) + "/",
			Gen:    designs.Counter{Bits: 2},
		})
	}
	if _, _, err := Floorplan(p, many); err == nil {
		t.Fatal("oversubscribed floorplan accepted")
	}
}

func TestGuidedVariantReimplementation(t *testing.T) {
	// Re-implementing a revised module guided by its previous placement at
	// low effort must be faster than the original run and keep most sites —
	// the incremental-design support the paper's Figure 2 guide files
	// provide.
	p := device.MustByName("XCV50")
	base, err := BuildBase(context.Background(), p, twoInstances(), Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := BuildVariant(context.Background(), base, "u2/", designs.SBoxBank{N: 8, Seed: 5}, Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	// "Revise" the module: same structure, new LUT contents (seed change).
	v2, err := BuildVariant(context.Background(), base, "u2/", designs.SBoxBank{N: 8, Seed: 6},
		Options{Seed: 13, Effort: 0.05, Guide: GuideFrom(v1)})
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	total := 0
	for c2, s2 := range v2.Phys.Cells {
		total++
		c1, ok := v1.Phys.Netlist.Cell(c2.Name)
		if ok && v1.Phys.Cells[c1] == s2 {
			kept++
		}
	}
	if kept < total*3/4 {
		t.Fatalf("guided re-implementation kept only %d of %d sites", kept, total)
	}
	if v2.Times.Place >= v1.Times.Place {
		t.Logf("note: guided place %v vs original %v (timing noise tolerated)", v2.Times.Place, v1.Times.Place)
	}
}

func TestImplementFromNetlistText(t *testing.T) {
	// The generic entry point: serialise a generated design to .net text,
	// parse it back, and implement it with a UCF.
	p := device.MustByName("XCV50")
	src, err := designs.Standalone(designs.Counter{Bits: 5}, "cnt", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	text, err := netlist.EmitText(src)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := netlist.ParseText(text)
	if err != nil {
		t.Fatal(err)
	}
	cons := ucf.New()
	cons.AddGroup("u1/*", "AG", frames.Region{R1: 0, C1: 0, R2: p.Rows - 1, C2: 7})
	a, err := Implement(context.Background(), p, nl, cons, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Bitstream) == 0 || a.XDL == "" {
		t.Fatal("implement produced no artifacts")
	}
	// Region honoured: all cells inside, and cell-to-cell nets contained.
	for _, site := range a.Phys.Cells {
		if site.Col > 7 {
			t.Fatalf("cell escaped constrained columns: %v", site)
		}
	}
	for n, r := range a.Phys.Routes {
		if r.Global >= 0 || n.DriverPort != nil || len(n.SinkPorts) > 0 {
			continue
		}
		for _, pip := range r.PIPs {
			if pip.Col > 7 {
				t.Fatalf("internal net %q routed outside constrained columns", n.Name)
			}
		}
	}
}

func TestBuildVariantsMatchesSerial(t *testing.T) {
	p := device.MustByName("XCV50")
	base, err := BuildBase(context.Background(), p, twoInstances(), Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	specs := []VariantSpec{
		{Prefix: "u1/", Gen: designs.LFSR{Bits: 6, Taps: []int{5, 0}}, Opts: Options{Seed: 10}},
		{Prefix: "u1/", Gen: designs.Counter{Bits: 6}, Opts: Options{Seed: 11}},
		{Prefix: "u2/", Gen: designs.SBoxBank{N: 8, Seed: 7}, Opts: Options{Seed: 12}},
		{Prefix: "u2/", Gen: designs.SBoxBank{N: 8, Seed: 8}, Opts: Options{Seed: 13}},
	}
	serial := make([]*Artifacts, len(specs))
	for i, s := range specs {
		a, err := BuildVariant(context.Background(), base, s.Prefix, s.Gen, s.Opts)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = a
	}
	concurrent, err := BuildVariants(context.Background(), base, specs, parallel.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if serial[i].XDL != concurrent[i].XDL {
			t.Fatalf("spec %d: XDL differs between serial and 4-worker builds", i)
		}
		if serial[i].UCF != concurrent[i].UCF {
			t.Fatalf("spec %d: UCF differs between serial and 4-worker builds", i)
		}
		if !bytes.Equal(serial[i].Bitstream, concurrent[i].Bitstream) {
			t.Fatalf("spec %d: bitstream differs between serial and 4-worker builds", i)
		}
	}
}

// TestMultiStartBuildByteIdenticalAcrossWorkers pins the end-to-end
// determinism contract of multi-start placement: a base + variant build with
// Starts > 1 must emit byte-identical artifacts (NCD, XDL, UCF, bitstream)
// whether the starts anneal on one worker or eight. Worker width is driven
// through $JPG_WORKERS — the knob operators actually use.
func TestMultiStartBuildByteIdenticalAcrossWorkers(t *testing.T) {
	p := device.MustByName("XCV50")
	build := func() (*BaseBuild, *Artifacts) {
		t.Helper()
		base, err := BuildBase(context.Background(), p, twoInstances(), Options{Seed: 5, Starts: 3})
		if err != nil {
			t.Fatal(err)
		}
		va, err := BuildVariant(context.Background(), base, "u1/",
			designs.LFSR{Bits: 6, Taps: []int{5, 2}}, Options{Seed: 6, Starts: 3})
		if err != nil {
			t.Fatal(err)
		}
		return base, va
	}
	t.Setenv(parallel.EnvWorkers, "1")
	refBase, refVar := build()
	for _, w := range []string{"2", "8"} {
		t.Setenv(parallel.EnvWorkers, w)
		b, v := build()
		for _, d := range []struct {
			name      string
			got, want []byte
		}{
			{"base NCD", b.NCD, refBase.NCD},
			{"base XDL", []byte(b.XDL), []byte(refBase.XDL)},
			{"base UCF", []byte(b.UCF), []byte(refBase.UCF)},
			{"base bitstream", b.Bitstream, refBase.Bitstream},
			{"variant NCD", v.NCD, refVar.NCD},
			{"variant XDL", []byte(v.XDL), []byte(refVar.XDL)},
			{"variant bitstream", v.Bitstream, refVar.Bitstream},
		} {
			if !bytes.Equal(d.got, d.want) {
				t.Fatalf("%s differs between JPG_WORKERS=1 and JPG_WORKERS=%s", d.name, w)
			}
		}
	}
}

func TestBuildVariantsReportsLowestIndexError(t *testing.T) {
	p := device.MustByName("XCV50")
	base, err := BuildBase(context.Background(), p, twoInstances(), Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	specs := []VariantSpec{
		{Prefix: "u1/", Gen: designs.Counter{Bits: 6}, Opts: Options{Seed: 1}},
		{Prefix: "nope/", Gen: designs.Counter{Bits: 6}, Opts: Options{Seed: 1}},
		{Prefix: "also-nope/", Gen: designs.Counter{Bits: 6}, Opts: Options{Seed: 1}},
	}
	_, err = BuildVariants(context.Background(), base, specs, parallel.WithWorkers(3))
	if err == nil || !strings.Contains(err.Error(), `"nope/"`) {
		t.Fatalf("want the index-1 error, got %v", err)
	}
}

func TestBuildFullManyMatchesSerial(t *testing.T) {
	p := device.MustByName("XCV50")
	combos := [][]designs.Instance{
		twoInstances(),
		{
			{Prefix: "u1/", Gen: designs.LFSR{Bits: 6, Taps: []int{5, 0}}},
			{Prefix: "u2/", Gen: designs.SBoxBank{N: 8, Seed: 3}},
		},
	}
	many, err := BuildFullMany(context.Background(), p, combos, Options{Seed: 5}, parallel.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, combo := range combos {
		one, err := BuildFull(context.Background(), p, combo, Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(one.Bitstream, many[i].Bitstream) {
			t.Fatalf("combo %d: bitstream differs between serial and concurrent builds", i)
		}
	}
}
