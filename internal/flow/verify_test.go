package flow

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/designs"
	"repro/internal/device"
)

// TestVerifyOptionIsExecutionOnly pins the contract Options.Verify is built
// on: a verified build is byte-identical to an unverified one and the two
// share cache fingerprints.
func TestVerifyOptionIsExecutionOnly(t *testing.T) {
	p := device.MustByName("XCV50")
	insts := []designs.Instance{{Prefix: "u1/", Gen: designs.Counter{Bits: 6}}}

	plain, err := BuildFull(context.Background(), p, insts, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	verified, err := BuildFull(context.Background(), p, insts, Options{Seed: 3, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bitstream, verified.Bitstream) {
		t.Fatal("Verify changed the built bitstream")
	}
	if (Options{Seed: 3}).Fingerprint() != (Options{Seed: 3, Verify: true}).Fingerprint() {
		t.Fatal("Verify leaked into the options fingerprint")
	}
}

// TestVerifyCatchesCorruptedBitstream drives verifyBitstream directly with a
// stream whose payload was corrupted after CRC stamping — the scenario the
// flow-level check exists for (a writer or cache bug between bitgen and
// disk).
func TestVerifyCatchesCorruptedBitstream(t *testing.T) {
	p, prev, _ := implementSBox(t, 11)
	_ = p
	bs := append([]byte(nil), prev.Bitstream...)
	bs[len(bs)/2] ^= 0x08

	err := verifyBitstream(context.Background(), Options{Verify: true}, bs)
	if err == nil {
		t.Fatal("corrupted bitstream passed flow verification")
	}
	if !strings.Contains(err.Error(), "bitstream verification failed") {
		t.Fatalf("unexpected error: %v", err)
	}
	// And with Verify off the check must not run at all.
	if err := verifyBitstream(context.Background(), Options{}, bs); err != nil {
		t.Fatalf("verification ran with Verify off: %v", err)
	}
}

// TestIncrementalSpliceVerified runs an edit-session splice with Verify on:
// both the new full bitstream and the splice proof (previous full + delta ==
// new full) must pass, and the results must match an unverified session.
func TestIncrementalSpliceVerified(t *testing.T) {
	_, prev, opts := implementSBox(t, 7)
	vopts := opts
	vopts.Verify = true
	s, err := NewEditSession(prev, nil, vopts)
	if err != nil {
		t.Fatal(err)
	}

	edits := []map[string]uint16{
		{"u1/sbox0": 0xbeef, "u1/sq1": 1},
		{"u1/sbox2": 0x0f0f},
		{"u1/sbox0": 0x1111, "u1/sbox4": 0xfedc},
	}
	// Unverified twin session for byte-identity.
	s2, err := NewEditSession(prev, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	cur := prev.Netlist
	for i, e := range edits {
		next := editedClone(t, cur, e)
		res, err := s.Edit(context.Background(), next)
		if err != nil {
			t.Fatalf("verified edit %d: %v", i, err)
		}
		res2, err := s2.Edit(context.Background(), next.Clone())
		if err != nil {
			t.Fatalf("unverified edit %d: %v", i, err)
		}
		if !bytes.Equal(res.Artifacts.Bitstream, res2.Artifacts.Bitstream) {
			t.Fatalf("edit %d: verified splice differs from unverified", i)
		}
		cur = next
	}
}

// TestVerifySpliceRejectsForgedDelta feeds verifySplice a delta that does
// not reproduce the claimed full bitstream.
func TestVerifySpliceRejectsForgedDelta(t *testing.T) {
	_, prev, opts := implementSBox(t, 12)
	s, err := NewEditSession(prev, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	next := editedClone(t, prev.Netlist, map[string]uint16{"u1/sbox1": 0xaaaa})
	res, err := s.Edit(context.Background(), next)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta == nil {
		t.Fatal("edit produced no delta")
	}

	vopts := opts
	vopts.Verify = true
	// The true triple passes...
	if err := verifySplice(context.Background(), vopts,
		prev.Bitstream, res.Delta.Bitstream, res.Artifacts.Bitstream); err != nil {
		t.Fatal(err)
	}
	// ...a forged delta (one frame word flipped) must not.
	forged := append([]byte(nil), res.Delta.Bitstream...)
	pis, err := bitstream.Inspect(forged)
	if err != nil {
		t.Fatal(err)
	}
	for _, pi := range pis {
		if pi.Reg == bitstream.RegFDRI && pi.Count > 0 {
			forged[4*(pi.Offset+2)] ^= 0x20
			break
		}
	}
	err = verifySplice(context.Background(), vopts,
		prev.Bitstream, forged, res.Artifacts.Bitstream)
	if err == nil {
		t.Fatal("forged delta passed splice verification")
	}
	if !strings.Contains(err.Error(), "splice verification failed") {
		t.Fatalf("unexpected error: %v", err)
	}
}
