package flow

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/bitgen"
	"repro/internal/cache"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/ncd"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/phys"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/ucf"
	"repro/internal/xdl"
)

// Content-addressed stage memoization. Each stage's key is a hash of
// everything its output depends on, and keys chain: a route key contains its
// place key, a bitgen key its route key, so invalidation is automatic — any
// changed input changes every downstream key. The cache is consulted only
// when one is attached to the context (cache.With); with no cache the flow
// runs the exact uncached stage sequence, so results are byte-identical with
// caching on, off, cold or warm.
//
// Stage values are the flow's own serialised artifacts: placements and
// routed designs as NCD bytes (rehydrated onto the caller's live netlist
// with phys.Bind), bitstreams and XDL as raw bytes. Generated netlists are
// memoized as shared live objects (memory tier only) — the placer and
// router treat netlists as read-only, so concurrent runs may share one.

// Fingerprint returns a stable content hash of the options, for use as a
// CAD cache key component. Effort is normalised the way the placer
// normalises it (<= 0 means 1.0), Starts the way the multi-start placer
// normalises it (<= 0 means 1), and the guide map is hashed in sorted order
// since its iteration order is irrelevant to placement. Workers is
// deliberately absent: it changes scheduling, never results.
func (o Options) Fingerprint() string {
	h := cache.NewHasher("flow.options/v2")
	h.Int("seed", o.Seed)
	effort := o.Effort
	if effort <= 0 {
		effort = 1.0
	}
	h.Float("effort", effort)
	starts := o.Starts
	if starts <= 0 {
		starts = 1
	}
	h.Int("starts", int64(starts))
	h.Int("guide", int64(len(o.Guide)))
	names := make([]string, 0, len(o.Guide))
	for name := range o.Guide {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h.Str("guide."+name, o.Guide[name].String())
	}
	return h.Sum().String()
}

// PlaceKey is the cache key of the placement stage: part + netlist content
// + constraints + options. Exported for the key-stability golden test.
func PlaceKey(p *device.Part, nl *netlist.Design, cons *ucf.Constraints, opts Options) cache.Key {
	h := cache.NewHasher("flow.place/v1")
	h.Str("part", p.Name)
	h.Str("netlist", nl.Fingerprint())
	h.Str("ucf", cons.Fingerprint())
	h.Str("opts", opts.Fingerprint())
	return h.Sum()
}

// RouteKey chains the placement key with the router's region constraints
// (regionFP canonically describes the caller's RegionForNet function).
func RouteKey(placeKey cache.Key, regionFP string) cache.Key {
	h := cache.NewHasher("flow.route/v1")
	h.Key("place", placeKey)
	h.Str("regions", regionFP)
	return h.Sum()
}

// BitgenKey chains the route key; the bitstream depends on nothing else.
func BitgenKey(routeKey cache.Key) cache.Key {
	h := cache.NewHasher("flow.bitgen/v1")
	h.Key("route", routeKey)
	return h.Sum()
}

// XDLKey chains the route key for the XDL emission stage.
func XDLKey(routeKey cache.Key) cache.Key {
	h := cache.NewHasher("flow.xdl/v1")
	h.Key("route", routeKey)
	return h.Sum()
}

// regionsFingerprint canonically describes a floorplan's region map.
func regionsFingerprint(regions map[string]frames.Region) string {
	prefixes := make([]string, 0, len(regions))
	for prefix := range regions {
		prefixes = append(prefixes, prefix)
	}
	sort.Strings(prefixes)
	h := cache.NewHasher("flow.regions/v1")
	for _, prefix := range prefixes {
		h.Str(prefix, regions[prefix].String())
	}
	return "map:" + h.Sum().String()
}

func hitStr(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// mapBaseDesign memoizes designs.BaseDesign when a cache is attached. The
// generator list is keyed on %#v, which spells out every exported parameter
// field — Generator.Name() may omit some (e.g. a seed) and must not be
// trusted as an identity.
func mapBaseDesign(ctx context.Context, name string, insts []designs.Instance) (*netlist.Design, error) {
	c := cache.FromContext(ctx)
	if c == nil {
		return designs.BaseDesign(name, insts)
	}
	h := cache.NewHasher("flow.map/v1")
	h.Str("fn", "base")
	h.Str("name", name)
	h.Int("insts", int64(len(insts)))
	for _, inst := range insts {
		h.Str("prefix", inst.Prefix)
		h.Str("gen", fmt.Sprintf("%#v", inst.Gen))
	}
	v, _, err := c.GetOrComputeValue("map", h.Sum(), func() (any, int64, error) {
		nl, err := designs.BaseDesign(name, insts)
		if err != nil {
			return nil, 0, err
		}
		return nl, netlistSizeEstimate(nl), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*netlist.Design), nil
}

// mapStandalone memoizes designs.Standalone when a cache is attached.
func mapStandalone(ctx context.Context, gen designs.Generator, designName, prefix string) (*netlist.Design, error) {
	c := cache.FromContext(ctx)
	if c == nil {
		return designs.Standalone(gen, designName, prefix)
	}
	h := cache.NewHasher("flow.map/v1")
	h.Str("fn", "standalone")
	h.Str("name", designName)
	h.Str("prefix", prefix)
	h.Str("gen", fmt.Sprintf("%#v", gen))
	v, _, err := c.GetOrComputeValue("map", h.Sum(), func() (any, int64, error) {
		nl, err := designs.Standalone(gen, designName, prefix)
		if err != nil {
			return nil, 0, err
		}
		return nl, netlistSizeEstimate(nl), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*netlist.Design), nil
}

// netlistSizeEstimate approximates a live netlist's memory footprint for the
// cache's byte bound.
func netlistSizeEstimate(nl *netlist.Design) int64 {
	return int64(len(nl.Cells))*256 + int64(len(nl.Nets))*128 + int64(len(nl.Ports))*64 + 1024
}

// runCached is run with a cache attached: the same stage sequence, with
// each stage's result fetched by content address when available. Cached
// placements and routings rehydrate onto the live netlist via phys.Bind; an
// entry that fails to bind (a stale or colliding record) is dropped and the
// stages recompute, so a damaged cache can cost time but never correctness.
func runCached(ctx context.Context, c *cache.Cache, p *device.Part, nl *netlist.Design, cons *ucf.Constraints,
	rfn func(*netlist.Net) *frames.Region, regionFP string, opts Options, synthTime time.Duration) (Artifacts, error) {

	a := Artifacts{Part: p, Netlist: nl}
	a.Times.Synthesis = synthTime
	mMapNS.Observe(synthTime.Nanoseconds())

	kPlace := PlaceKey(p, nl, cons, opts)
	kRoute := RouteKey(kPlace, regionFP)

	// pd is set when this goroutine ran the stages itself; on a hit (or
	// after waiting out another worker's in-flight computation) it stays nil
	// and the cached NCD bytes are bound onto the netlist below.
	var pd *phys.Design
	placeOpts := opts.placeOptions(cons)

	routeStart := time.Now()
	ncdBytes, routeHit, err := c.GetOrCompute("route", kRoute, func() ([]byte, error) {
		t0 := time.Now()
		pctx, sp := obs.Start(ctx, "place")
		placedNCD, placeHit, err := c.GetOrCompute("place", kPlace, func() ([]byte, error) {
			d, err := place.PlaceCtx(pctx, p, nl, placeOpts)
			if err != nil {
				return nil, err
			}
			pd = d
			return ncd.Marshal(d)
		})
		if err == nil && pd == nil {
			// The placement came from the cache; rebind it. A bind failure
			// drops the entry and places from scratch.
			var bindErr error
			pd, bindErr = bindNCD(placedNCD, p, nl)
			if bindErr != nil {
				c.Remove("place", kPlace)
				pd, err = place.PlaceCtx(pctx, p, nl, placeOpts)
				placeHit = false
			}
		}
		sp.SetStr("cache", hitStr(placeHit))
		sp.EndErr(err)
		logCache(ctx, "place", placeHit)
		if err != nil {
			obs.CountError("place")
			return nil, err
		}
		a.Times.Place = time.Since(t0)
		mPlaceNS.Observe(a.Times.Place.Nanoseconds())
		logStage(ctx, "place", a.Times.Place)

		t0 = time.Now()
		rctx, rsp := obs.Start(ctx, "route")
		err = route.RouteCtx(rctx, pd, route.Options{RegionForNet: rfn})
		rsp.SetStr("cache", "miss")
		rsp.EndErr(err)
		logCache(ctx, "route", false)
		if err != nil {
			obs.CountError("route")
			return nil, err
		}
		a.Times.Route = time.Since(t0)
		logStage(ctx, "route", a.Times.Route)
		return ncd.Marshal(pd)
	})
	if err != nil {
		return a, err
	}
	if pd == nil {
		// Warm hit: rehydrate the routed design from its NCD bytes.
		pd, err = bindNCD(ncdBytes, p, nl)
		if err != nil {
			// Unusable entries: drop both and run the stages for real.
			c.Remove("route", kRoute)
			c.Remove("place", kPlace)
			return runStages(ctx, p, nl, cons, rfn, opts, synthTime)
		}
		a.Times.Route = time.Since(routeStart)
		// The route hit short-circuited the nested place lookup; probe the
		// place entry for real so the stage's hit/miss accounting reflects
		// this run (and the entry's LRU position tracks its use).
		placeHit := c.Touch("place", kPlace)
		_, sp := obs.Start(ctx, "place")
		sp.SetStr("cache", hitStr(placeHit))
		sp.End()
		logCache(ctx, "place", placeHit)
		_, sp = obs.Start(ctx, "route")
		sp.SetStr("cache", hitStr(routeHit))
		sp.End()
		logCache(ctx, "route", routeHit)
		mPlaceNS.Observe(a.Times.Place.Nanoseconds())
		mRouteNS.Observe(a.Times.Route.Nanoseconds())
	} else {
		mRouteNS.Observe(a.Times.Route.Nanoseconds())
	}
	a.Phys = pd

	t0 := time.Now()
	_, sp := obs.Start(ctx, "bitgen")
	bs, bgHit, err := c.GetOrCompute("bitgen", BitgenKey(kRoute), func() ([]byte, error) {
		return bitgen.FullBitstream(pd)
	})
	sp.SetStr("cache", hitStr(bgHit))
	sp.EndErr(err)
	logCache(ctx, "bitgen", bgHit)
	if err != nil {
		obs.CountError("bitgen")
		return a, err
	}
	a.Times.Bitgen = time.Since(t0)
	a.Bitstream = bs
	mBitgenNS.Observe(a.Times.Bitgen.Nanoseconds())
	logStage(ctx, "bitgen", a.Times.Bitgen)
	// Verification covers cached bitstreams too: a corrupted cache entry must
	// not reach a device just because bitgen was skipped.
	if err := verifyBitstream(ctx, opts, bs); err != nil {
		return a, err
	}

	_, sp = obs.Start(ctx, "emit")
	defer sp.End()
	xdlBytes, _, err := c.GetOrCompute("xdl", XDLKey(kRoute), func() ([]byte, error) {
		s, err := xdl.Emit(pd)
		return []byte(s), err
	})
	if err != nil {
		return a, err
	}
	a.XDL = string(xdlBytes)
	a.NCD = ncdBytes
	if cons != nil {
		a.UCF = cons.Emit()
	}
	return a, nil
}

// bindNCD rehydrates serialised NCD bytes onto a live netlist.
func bindNCD(data []byte, p *device.Part, nl *netlist.Design) (*phys.Design, error) {
	f, err := ncd.UnmarshalFlat(data)
	if err != nil {
		return nil, err
	}
	return phys.Bind(f, p, nl)
}
