package flow

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/netlist"
)

// implementSBox builds a standalone SBox bank and implements it without
// constraints — a small design with plenty of INIT-editable cells.
func implementSBox(t *testing.T, seed int64) (*device.Part, *Artifacts, Options) {
	t.Helper()
	p := device.MustByName("XCV50")
	nl, err := designs.Standalone(designs.SBoxBank{N: 6, Seed: seed}, "sbox", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Seed: 4}
	a, err := Implement(context.Background(), p, nl, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p, a, opts
}

func editedClone(t *testing.T, nl *netlist.Design, edits map[string]uint16) *netlist.Design {
	t.Helper()
	next := nl.Clone()
	for name, init := range edits {
		if err := next.SetInit(name, init); err != nil {
			t.Fatal(err)
		}
	}
	return next
}

func TestIncrementalSpliceByteIdentity(t *testing.T) {
	p, prev, opts := implementSBox(t, 7)
	s, err := NewEditSession(prev, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	s.EmitFiles = true

	next := editedClone(t, prev.Netlist, map[string]uint16{
		"u1/sbox0": 0xbeef,
		"u1/sbox3": 0x1234,
		"u1/sq1":   1,
	})
	res, err := s.Edit(context.Background(), next)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Path != "splice" || res.Stats.Class != "init-only" {
		t.Fatalf("path %q class %q, want splice/init-only", res.Stats.Path, res.Stats.Class)
	}
	if res.Stats.DirtyFrames == 0 || len(res.Stats.DirtyColumns) == 0 {
		t.Fatalf("splice reported no dirty state: %+v", res.Stats)
	}
	if res.Delta == nil || len(res.Delta.Bitstream) == 0 {
		t.Fatal("splice produced no delta core")
	}
	if len(res.Delta.FARs) != res.Stats.DirtyFrames {
		t.Fatalf("delta carries %d frames, stats say %d dirty", len(res.Delta.FARs), res.Stats.DirtyFrames)
	}

	// The from-scratch implementation of the edited netlist must match
	// byte for byte.
	cold, err := Implement(context.Background(), p, next.Clone(), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Artifacts.Bitstream, cold.Bitstream) {
		t.Fatal("spliced bitstream differs from from-scratch build")
	}
	if res.Artifacts.XDL != cold.XDL {
		t.Fatal("spliced XDL differs from from-scratch build")
	}
	if !bytes.Equal(res.Artifacts.NCD, cold.NCD) {
		t.Fatal("spliced NCD differs from from-scratch build")
	}
}

func TestIncrementalDFFInitClearedOnSplice(t *testing.T) {
	_, prev, opts := implementSBox(t, 8)
	s, err := NewEditSession(prev, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Set a DFF init bit, then clear it again: the second splice must clear
	// the INIT control bit (the full bitgen path only ever sets bits).
	up := editedClone(t, prev.Netlist, map[string]uint16{"u1/sq2": 1})
	if _, err := s.Edit(context.Background(), up); err != nil {
		t.Fatal(err)
	}
	down := editedClone(t, up, map[string]uint16{"u1/sq2": 0})
	res, err := s.Edit(context.Background(), down)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Artifacts.Bitstream, prev.Bitstream) {
		t.Fatal("set+clear of a DFF init did not restore the original bitstream")
	}
}

func TestIncrementalEmptyEditReuses(t *testing.T) {
	_, prev, opts := implementSBox(t, 9)
	s, err := NewEditSession(prev, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Edit(context.Background(), prev.Netlist.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Path != "reuse" || res.Artifacts != prev {
		t.Fatalf("unchanged netlist took path %q", res.Stats.Path)
	}
}

func TestIncrementalStructuralRebuild(t *testing.T) {
	p, prev, opts := implementSBox(t, 10)
	s, err := NewEditSession(prev, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	s.EmitFiles = true

	// Rewire: swap two input nets of one LUT — same cells and nets, new
	// connectivity.
	next := prev.Netlist.Clone()
	c, ok := next.Cell("u1/sbox0")
	if !ok {
		t.Fatal("no cell u1/sbox0")
	}
	c.Inputs[0], c.Inputs[1] = c.Inputs[1], c.Inputs[0]
	res, err := s.Edit(context.Background(), next)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Path != "rebuild" || res.Stats.Class != "structural" {
		t.Fatalf("path %q class %q, want rebuild/structural", res.Stats.Path, res.Stats.Class)
	}
	cold, err := Implement(context.Background(), p, next.Clone(), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Artifacts.Bitstream, cold.Bitstream) {
		t.Fatal("rebuilt bitstream differs from from-scratch build")
	}
	// The session must keep splicing correctly after the rebase.
	after := editedClone(t, next, map[string]uint16{"u1/sbox1": 0x00ff})
	res2, err := s.Edit(context.Background(), after)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Path != "splice" {
		t.Fatalf("post-rebuild edit took path %q", res2.Stats.Path)
	}
	cold2, err := Implement(context.Background(), p, after.Clone(), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res2.Artifacts.Bitstream, cold2.Bitstream) {
		t.Fatal("post-rebuild splice differs from from-scratch build")
	}
}

func TestIncrementalColumnCacheHits(t *testing.T) {
	_, prev, opts := implementSBox(t, 11)
	s, err := NewEditSession(prev, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := cache.With(context.Background(), cache.New(cache.Options{NoDisk: true}))

	a := editedClone(t, prev.Netlist, map[string]uint16{"u1/sbox2": 0xaaaa})
	b := editedClone(t, prev.Netlist, map[string]uint16{"u1/sbox2": 0x5555})
	resA1, err := s.Edit(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Edit(ctx, b.Clone()); err != nil {
		t.Fatal(err)
	}
	// Revisit configuration A: the column's frames are served from the
	// sub-stage cache, and the result is identical to the first visit.
	resA2, err := s.Edit(ctx, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if resA2.Stats.ColumnHits == 0 {
		t.Fatalf("revisited configuration missed the column cache: %+v", resA2.Stats)
	}
	if !bytes.Equal(resA1.Artifacts.Bitstream, resA2.Artifacts.Bitstream) {
		t.Fatal("column-cache replay produced different bytes")
	}
}

func TestIncrementalOneShotEntryPoint(t *testing.T) {
	p, prev, opts := implementSBox(t, 12)
	next := editedClone(t, prev.Netlist, map[string]uint16{"u1/sbox4": 0x0f0f})
	res, err := Incremental(context.Background(), prev, next, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Path != "splice" {
		t.Fatalf("one-shot edit took path %q", res.Stats.Path)
	}
	cold, err := Implement(context.Background(), p, next.Clone(), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Artifacts.Bitstream, cold.Bitstream) {
		t.Fatal("one-shot incremental differs from from-scratch build")
	}
	if res.Artifacts.XDL == "" || len(res.Artifacts.NCD) == 0 {
		t.Fatal("one-shot entry point must emit files")
	}
}
