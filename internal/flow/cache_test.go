package flow

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/parallel"
	"repro/internal/phys"
	"repro/internal/ucf"
)

func TestOptionsFingerprint(t *testing.T) {
	base := (Options{Seed: 7}).Fingerprint()
	if (Options{Seed: 7}).Fingerprint() != base {
		t.Fatal("fingerprint not deterministic")
	}
	if (Options{Seed: 8}).Fingerprint() == base {
		t.Fatal("seed not covered")
	}
	// Effort <= 0 normalises to 1.0, exactly as the placer treats it.
	if (Options{Seed: 7, Effort: 1.0}).Fingerprint() != base {
		t.Fatal("default effort and explicit 1.0 must share a key")
	}
	if (Options{Seed: 7, Effort: 0.5}).Fingerprint() == base {
		t.Fatal("effort not covered")
	}
}

func TestOptionsFingerprintGuideOrderIrrelevant(t *testing.T) {
	p := device.MustByName("XCV50")
	base, err := BuildBase(context.Background(), p, twoInstances(), Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	v, err := BuildVariant(context.Background(), base, "u1/", designs.LFSR{Bits: 6}, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	guide := GuideFrom(v)
	if len(guide) < 2 {
		t.Fatalf("guide too small to test ordering: %d entries", len(guide))
	}
	o1 := Options{Seed: 1, Guide: guide}
	// A map rebuilt in a different insertion order must fingerprint the same.
	g2 := make(map[string]phys.Site, len(guide))
	keys := make([]string, 0, len(guide))
	for k := range guide {
		keys = append(keys, k)
	}
	for i := len(keys) - 1; i >= 0; i-- {
		g2[keys[i]] = guide[keys[i]]
	}
	o2 := Options{Seed: 1, Guide: g2}
	if o1.Fingerprint() != o2.Fingerprint() {
		t.Fatal("guide map order changed the fingerprint")
	}
	if (Options{Seed: 1}).Fingerprint() == o1.Fingerprint() {
		t.Fatal("guide not covered")
	}
}

// TestStageKeysGolden pins the cache keys of every flow stage for one fixed
// design. If this test fails, the key derivation changed: bump the affected
// domain version (flow.place/v1, ...) so stale disk entries cannot be
// misread, then refresh these constants.
func TestStageKeysGolden(t *testing.T) {
	p := device.MustByName("XCV50")
	nl, err := designs.Standalone(designs.Counter{Bits: 4}, "golden", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	cons := ucf.New()
	cons.AddGroup("u1/*", "AG", frames.Region{R1: 0, C1: 0, R2: p.Rows - 1, C2: 7})
	opts := Options{Seed: 42}

	kPlace := PlaceKey(p, nl, cons, opts)
	kRoute := RouteKey(kPlace, "none")
	kBitgen := BitgenKey(kRoute)
	kXDL := XDLKey(kRoute)

	want := map[string]string{
		"place":  "4fcbc885080650edbd519d3230526901d28e1936a8e497442ee17f52f88af4b0",
		"route":  "462d066a85eff0b7c44756115cca53c9d15ca42750ef4cd7393ecb0c517ef455",
		"bitgen": "8d0200505c703f7054e3a3caa76cb5cf8eabe842c6517381c8fbc3b4af810e1a",
		"xdl":    "33ab082d4d3f3b5b66b4a8d136a10bb7cd2b76dffb241de044b5da284db6be7e",
	}
	got := map[string]string{
		"place":  kPlace.String(),
		"route":  kRoute.String(),
		"bitgen": kBitgen.String(),
		"xdl":    kXDL.String(),
	}
	for stage, w := range want {
		if got[stage] != w {
			t.Errorf("%s key = %q, want %q", stage, got[stage], w)
		}
	}
}

// TestCachedBuildByteIdentical is the cache's correctness contract: the same
// build run with no cache, a cold cache, and a warm cache yields
// byte-identical artifacts, and the warm run hits every stage.
func TestCachedBuildByteIdentical(t *testing.T) {
	p := device.MustByName("XCV50")
	opts := Options{Seed: 21}

	plain, err := BuildFull(context.Background(), p, twoInstances(), opts)
	if err != nil {
		t.Fatal(err)
	}

	c := cache.New(cache.Options{NoDisk: true})
	ctx := cache.With(context.Background(), c)
	cold, err := BuildFull(ctx, p, twoInstances(), opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := BuildFull(ctx, p, twoInstances(), opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, run := range []struct {
		name string
		a    *Artifacts
	}{{"cold", cold}, {"warm", warm}} {
		if !bytes.Equal(run.a.Bitstream, plain.Bitstream) {
			t.Errorf("%s cache changed the bitstream", run.name)
		}
		if run.a.XDL != plain.XDL {
			t.Errorf("%s cache changed the XDL", run.name)
		}
		if !bytes.Equal(run.a.NCD, plain.NCD) {
			t.Errorf("%s cache changed the NCD", run.name)
		}
		if run.a.UCF != plain.UCF {
			t.Errorf("%s cache changed the UCF", run.name)
		}
	}

	st := c.Stats()
	for _, stage := range []string{"place", "route", "bitgen", "xdl"} {
		s := st.Stages[stage]
		if s.Hits == 0 {
			t.Errorf("stage %q never hit on the warm run (stats %+v)", stage, st)
		}
	}
	// The place stage is keyed inside the route compute; a warm route hit
	// short-circuits the nested lookup, but the warm path probes the place
	// entry directly (cache.Touch) so the stage still reports this run: the
	// cold run's single miss plus a hit per warm rerun — a 0% place hit rate
	// on a warm cache was the regression this pins down.
	if s := st.Stages["place"]; s.Misses != 1 || s.Hits == 0 {
		t.Errorf("place stage: %+v, want exactly 1 miss and >= 1 hit", s)
	}
}

// TestCachedVariantsMatchSerialAcrossWorkers shares one cache between a
// serial uncached run and pooled cached runs at several worker counts —
// artifacts must be byte-identical throughout.
func TestCachedVariantsMatchSerialAcrossWorkers(t *testing.T) {
	p := device.MustByName("XCV50")
	base, err := BuildBase(context.Background(), p, twoInstances(), Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	specs := []VariantSpec{
		{Prefix: "u1/", Gen: designs.LFSR{Bits: 6, Taps: []int{5, 0}}, Opts: Options{Seed: 10}},
		{Prefix: "u1/", Gen: designs.Counter{Bits: 6}, Opts: Options{Seed: 11}},
		{Prefix: "u2/", Gen: designs.SBoxBank{N: 8, Seed: 7}, Opts: Options{Seed: 12}},
		// Duplicate spec: exercises same-key reuse inside one pooled run.
		{Prefix: "u2/", Gen: designs.SBoxBank{N: 8, Seed: 7}, Opts: Options{Seed: 12}},
	}
	serial := make([]*Artifacts, len(specs))
	for i, s := range specs {
		a, err := BuildVariant(context.Background(), base, s.Prefix, s.Gen, s.Opts)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = a
	}
	c := cache.New(cache.Options{NoDisk: true})
	ctx := cache.With(context.Background(), c)
	for _, workers := range []int{1, 2, 4} {
		got, err := BuildVariants(ctx, base, specs, parallel.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i := range specs {
			if !bytes.Equal(serial[i].Bitstream, got[i].Bitstream) {
				t.Fatalf("workers=%d spec %d: bitstream differs from uncached serial build", workers, i)
			}
			if serial[i].XDL != got[i].XDL {
				t.Fatalf("workers=%d spec %d: XDL differs from uncached serial build", workers, i)
			}
		}
	}
	if st := c.Stats(); st.Stages["route"].Hits == 0 {
		t.Errorf("shared cache never hit across pooled runs: %+v", st)
	}
}

// TestCacheDistinguishesBuilds guards against over-broad keys: different
// seeds and different generators must never share artifacts.
func TestCacheDistinguishesBuilds(t *testing.T) {
	p := device.MustByName("XCV50")
	ctx := cache.With(context.Background(), cache.New(cache.Options{NoDisk: true}))
	a1, err := BuildFull(ctx, p, twoInstances(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := BuildFull(ctx, p, twoInstances(), Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a1.Bitstream, a2.Bitstream) {
		t.Fatal("different seeds produced one cached bitstream")
	}
	uncached, err := BuildFull(context.Background(), p, twoInstances(), Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a2.Bitstream, uncached.Bitstream) {
		t.Fatal("cached seed-2 build differs from uncached seed-2 build")
	}
}
