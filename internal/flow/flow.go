// Package flow orchestrates the CAD pipelines of the reproduction: the
// conventional full-design flow (netlist -> place -> route -> bitgen) and the
// paper's two-phase partial-reconfiguration methodology — Phase 1 builds a
// floorplanned base design; Phase 2 re-implements sub-module variants as
// standalone projects constrained to their regions, producing the XDL/UCF
// pairs the JPG tool consumes. Every stage is timed, because the paper's
// central quantitative claims are about CAD runtime and bitstream size.
package flow

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/bitgen"
	"repro/internal/cache"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/ncd"
	"repro/internal/netlist"
	"repro/internal/obs"
	jpglog "repro/internal/obs/log"
	"repro/internal/parallel"
	"repro/internal/phys"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/ucf"
	"repro/internal/xdl"
)

// Stage metrics (always on; see internal/obs): per-stage latency
// distributions plus build counters, the numbers behind the paper's C3
// claim that constrained variant runs are much cheaper than full ones.
var (
	mMapNS    = obs.GetHistogram("flow.map_ns")
	mPlaceNS  = obs.GetHistogram("flow.place_ns")
	mRouteNS  = obs.GetHistogram("flow.route_ns")
	mBitgenNS = obs.GetHistogram("flow.bitgen_ns")

	mBaseBuilds    = obs.GetCounter("flow.base_builds")
	mVariantBuilds = obs.GetCounter("flow.variant_builds")
	mFullBuilds    = obs.GetCounter("flow.full_builds")
)

// logStage emits one structured event per completed CAD stage — with a
// request-scoped logger attached (jpgd), every stage of a build shares the
// request's correlation ID. No-op without a logger on the context.
func logStage(ctx context.Context, stage string, dur time.Duration) {
	jpglog.Info(ctx, "flow.stage", jpglog.FieldStage, stage, "dur_us", dur.Microseconds())
}

// logCache emits one structured event per stage-cache lookup.
func logCache(ctx context.Context, stage string, hit bool) {
	jpglog.Info(ctx, "cache", jpglog.FieldStage, stage, "result", hitStr(hit))
}

// StageTimes records per-stage wall-clock times of one CAD run.
type StageTimes struct {
	Synthesis time.Duration // netlist generation + mapping
	Place     time.Duration
	Route     time.Duration
	Bitgen    time.Duration
}

// Total sums the stages.
func (s StageTimes) Total() time.Duration {
	return s.Synthesis + s.Place + s.Route + s.Bitgen
}

func (s StageTimes) String() string {
	return fmt.Sprintf("synth %v, place %v, route %v, bitgen %v (total %v)",
		s.Synthesis.Round(time.Microsecond), s.Place.Round(time.Microsecond),
		s.Route.Round(time.Microsecond), s.Bitgen.Round(time.Microsecond),
		s.Total().Round(time.Microsecond))
}

// Artifacts bundles the outputs of one CAD run, mirroring the files the
// Xilinx flow leaves behind.
type Artifacts struct {
	Part      *device.Part
	Netlist   *netlist.Design
	Phys      *phys.Design
	UCF       string // constraint file text
	XDL       string // ASCII physical design
	NCD       []byte // binary physical database
	Bitstream []byte // complete bitstream
	Times     StageTimes
}

// Options tunes a flow run.
type Options struct {
	Seed   int64
	Effort float64 // placer effort (default 1.0)
	// Guide seeds placement from a previous implementation (see
	// place.Options.Guide); combine with a low Effort for incremental
	// re-implementation, the role of the Xilinx flow's guide files.
	Guide map[string]phys.Site
	// Starts runs this many independently seeded placement starts and keeps
	// the best (see place.Options.Starts). It changes which placement is
	// chosen, so it is part of the flow's result identity (fingerprinted
	// into cache keys); <= 0 means 1.
	Starts int
	// Workers bounds the pool the multi-start placement runs on. Execution
	// only — never part of cache keys, never visible in results; <= 0
	// selects parallel.DefaultWorkers().
	Workers int
	// Verify runs the independent bitstream verifier (internal/bitlint) over
	// every bitstream the flow emits and fails the build on any error
	// finding. Like Workers it is execution-only: it never changes what is
	// built, so it is not part of cache keys — a verified build and an
	// unverified one are byte-identical.
	Verify bool
}

// placeOptions renders the flow options as placer options.
func (o Options) placeOptions(cons *ucf.Constraints) place.Options {
	return place.Options{
		Seed:        o.Seed,
		Constraints: cons,
		Effort:      o.Effort,
		Guide:       o.Guide,
		Starts:      o.Starts,
		Workers:     o.Workers,
	}
}

// GuideFrom extracts a placement guide from a previous run's artifacts.
func GuideFrom(a *Artifacts) map[string]phys.Site {
	g := make(map[string]phys.Site, len(a.Phys.Cells))
	for c, s := range a.Phys.Cells {
		g[c.Name] = s
	}
	return g
}

// BaseBuild is the result of Phase 1: the base design plus its floorplan.
type BaseBuild struct {
	Artifacts
	// Regions maps each instance prefix ("u1/") to its floorplan region.
	Regions map[string]frames.Region
	// Pads maps each top-level port name to its pad.
	Pads map[string]string
	Cons *ucf.Constraints
}

// Floorplan divides the device into full-height column regions, one per
// instance, sized proportionally to the instances' logic (with headroom),
// and assigns each instance's ports to pads adjacent to its region. This is
// the paper's Phase 1 floorplanning step, automated.
func Floorplan(p *device.Part, insts []designs.Instance) (*ucf.Constraints, map[string]frames.Region, error) {
	if len(insts) == 0 {
		return nil, nil, fmt.Errorf("flow: floorplan of zero instances")
	}
	// Estimate LE demand per instance by trial-building each module.
	demand := make([]int, len(insts))
	total := 0
	for i, inst := range insts {
		trial, err := designs.Standalone(inst.Gen, "trial", inst.Prefix)
		if err != nil {
			return nil, nil, fmt.Errorf("flow: sizing %s: %w", inst.Prefix, err)
		}
		st := trial.Stats()
		demand[i] = st.LUTs + st.DFFs // pessimistic (ignores packing)
		total += demand[i]
	}
	// Column shares proportional to demand, at least 2 columns each, and
	// wide enough that the instance's data ports fit on the region's top
	// and bottom pads (2 per column).
	cols := make([]int, len(insts))
	used := 0
	for i, inst := range insts {
		ports := inst.Gen.NumInputs() + inst.Gen.NumOutputs()
		cols[i] = max(2, max(p.Cols*demand[i]/max(1, total), (ports+1)/2))
		used += cols[i]
	}
	if used > p.Cols {
		return nil, nil, fmt.Errorf("flow: %d instances need %d columns, %s has %d",
			len(insts), used, p.Name, p.Cols)
	}
	// Distribute leftover columns round-robin for headroom.
	for i := 0; used < p.Cols; i = (i + 1) % len(insts) {
		cols[i]++
		used++
	}

	cons := ucf.New()
	regions := map[string]frames.Region{}
	c := 0
	for i, inst := range insts {
		rg := frames.Region{R1: 0, C1: c, R2: p.Rows - 1, C2: c + cols[i] - 1}
		capacity := rg.CLBs() * 4
		if demand[i] > capacity {
			return nil, nil, fmt.Errorf("flow: instance %s needs %d LEs, region %v holds %d",
				inst.Prefix, demand[i], rg, capacity)
		}
		group := "AG_" + strings.TrimSuffix(inst.Prefix, "/")
		cons.AddGroup(inst.Prefix+"*", group, rg)
		regions[inst.Prefix] = rg
		c += cols[i]
	}

	// Pads: clock on the left edge; each instance's data ports alternate
	// over the top/bottom pads of its own columns.
	cons.NetLocs["clk"] = device.Pad{Edge: device.EdgeL, Index: 0}.Name()
	for _, inst := range insts {
		rg := regions[inst.Prefix]
		base := strings.TrimSuffix(inst.Prefix, "/")
		names := make([]string, 0, inst.Gen.NumInputs()+inst.Gen.NumOutputs())
		for k := 0; k < inst.Gen.NumInputs(); k++ {
			names = append(names, fmt.Sprintf("%s_in%d", base, k))
		}
		for k := 0; k < inst.Gen.NumOutputs(); k++ {
			names = append(names, fmt.Sprintf("%s_out%d", base, k))
		}
		if err := assignRegionPads(cons, p, rg, names); err != nil {
			return nil, nil, fmt.Errorf("flow: pads for %s: %w", inst.Prefix, err)
		}
	}
	return cons, regions, nil
}

// assignRegionPads spreads port names over the top and bottom pads of a
// column region.
func assignRegionPads(cons *ucf.Constraints, p *device.Part, rg frames.Region, names []string) error {
	var pads []device.Pad
	for c := rg.C1; c <= rg.C2; c++ {
		pads = append(pads, device.Pad{Edge: device.EdgeT, Index: c}, device.Pad{Edge: device.EdgeB, Index: c})
	}
	taken := map[string]bool{}
	for _, loc := range cons.NetLocs {
		taken[loc] = true
	}
	i := 0
	for _, name := range names {
		for i < len(pads) && taken[pads[i].Name()] {
			i++
		}
		if i >= len(pads) {
			return fmt.Errorf("%d ports exceed the %d pads adjacent to %v", len(names), len(pads), rg)
		}
		cons.NetLocs[name] = pads[i].Name()
		taken[pads[i].Name()] = true
	}
	return nil
}

// regionForNet builds the router constraint function for a floorplanned
// design: a net is confined to the region of the instance it belongs to
// (by cell-name or port-name prefix); clock and cross-module nets roam free.
func regionForNet(regions map[string]frames.Region) func(*netlist.Net) *frames.Region {
	lookup := func(name string) *frames.Region {
		for prefix, rg := range regions {
			base := strings.TrimSuffix(prefix, "/")
			if strings.HasPrefix(name, prefix) || strings.HasPrefix(name, base+"_") {
				r := rg
				return &r
			}
		}
		return nil
	}
	return func(n *netlist.Net) *frames.Region {
		if n.IsClock {
			return nil
		}
		var owner *frames.Region
		consider := func(name string) {
			if owner == nil {
				owner = lookup(name)
			}
		}
		if n.Driver.Cell != nil {
			consider(n.Driver.Cell.Name)
		}
		if n.DriverPort != nil {
			consider(n.DriverPort.Name)
		}
		for _, s := range n.Sinks {
			consider(s.Cell.Name)
		}
		for _, p := range n.SinkPorts {
			consider(p.Name)
		}
		return owner
	}
}

// run executes place -> route -> bitgen with timing and file emission.
// regionFP canonically describes rfn's region constraints for the stage
// cache; it is unused when no cache is attached to the context.
func run(ctx context.Context, p *device.Part, nl *netlist.Design, cons *ucf.Constraints,
	rfn func(*netlist.Net) *frames.Region, regionFP string, opts Options, synthTime time.Duration) (Artifacts, error) {
	if err := ctx.Err(); err != nil {
		return Artifacts{Part: p, Netlist: nl}, err
	}
	if c := cache.FromContext(ctx); c != nil {
		return runCached(ctx, c, p, nl, cons, rfn, regionFP, opts, synthTime)
	}
	return runStages(ctx, p, nl, cons, rfn, opts, synthTime)
}

// runStages is the uncached stage sequence.
func runStages(ctx context.Context, p *device.Part, nl *netlist.Design, cons *ucf.Constraints,
	rfn func(*netlist.Net) *frames.Region, opts Options, synthTime time.Duration) (Artifacts, error) {

	a := Artifacts{Part: p, Netlist: nl}
	a.Times.Synthesis = synthTime
	mMapNS.Observe(synthTime.Nanoseconds())

	t0 := time.Now()
	pctx, sp := obs.Start(ctx, "place")
	pd, err := place.PlaceCtx(pctx, p, nl, opts.placeOptions(cons))
	sp.EndErr(err)
	if err != nil {
		obs.CountError("place")
		return a, err
	}
	a.Times.Place = time.Since(t0)
	mPlaceNS.Observe(a.Times.Place.Nanoseconds())
	logStage(ctx, "place", a.Times.Place)

	// A cancelled build stops at the next stage boundary: in-flight stages
	// are CPU-bound and uninterruptible, but no new stage starts once the
	// context dies.
	if err := ctx.Err(); err != nil {
		return a, err
	}
	t0 = time.Now()
	rctx, sp := obs.Start(ctx, "route")
	err = route.RouteCtx(rctx, pd, route.Options{RegionForNet: rfn})
	sp.EndErr(err)
	if err != nil {
		obs.CountError("route")
		return a, err
	}
	a.Times.Route = time.Since(t0)
	a.Phys = pd
	logStage(ctx, "route", a.Times.Route)

	if err := ctx.Err(); err != nil {
		return a, err
	}
	t0 = time.Now()
	_, sp = obs.Start(ctx, "bitgen")
	bs, err := bitgen.FullBitstream(pd)
	sp.EndErr(err)
	if err != nil {
		obs.CountError("bitgen")
		return a, err
	}
	a.Times.Bitgen = time.Since(t0)
	a.Bitstream = bs
	mRouteNS.Observe(a.Times.Route.Nanoseconds())
	mBitgenNS.Observe(a.Times.Bitgen.Nanoseconds())
	logStage(ctx, "bitgen", a.Times.Bitgen)
	if err := verifyBitstream(ctx, opts, bs); err != nil {
		return a, err
	}

	_, sp = obs.Start(ctx, "emit")
	defer sp.End()
	if a.XDL, err = xdl.Emit(pd); err != nil {
		return a, err
	}
	if a.NCD, err = ncd.Marshal(pd); err != nil {
		return a, err
	}
	if cons != nil {
		a.UCF = cons.Emit()
	}
	return a, nil
}

// BuildBase runs Phase 1: floorplan the instances, build the partitioned
// base design, and implement it with region-constrained place and route.
func BuildBase(ctx context.Context, p *device.Part, insts []designs.Instance, opts Options) (*BaseBuild, error) {
	cons, regions, err := Floorplan(p, insts)
	if err != nil {
		return nil, err
	}
	return BuildBaseWith(ctx, p, insts, cons, regions, opts)
}

// BuildBaseWith is BuildBase against an existing floorplan, for flows that
// must keep regions and pads stable across rebuilds (e.g. producing the
// complete per-variant bitstreams the PARBIT/JBitsDiff methodologies need).
func BuildBaseWith(ctx context.Context, p *device.Part, insts []designs.Instance, cons *ucf.Constraints,
	regions map[string]frames.Region, opts Options) (bb *BaseBuild, err error) {
	ctx, sp := obs.Start(ctx, "flow.base")
	defer func() { sp.EndErr(err) }()
	mBaseBuilds.Inc()
	t0 := time.Now()
	_, ms := obs.Start(ctx, "map")
	nl, err := mapBaseDesign(ctx, "base", insts)
	ms.EndErr(err)
	if err != nil {
		obs.CountError("map")
		return nil, err
	}
	synthTime := time.Since(t0)
	logStage(ctx, "map", synthTime)

	a, err := run(ctx, p, nl, cons, regionForNet(regions), regionsFingerprint(regions), opts, synthTime)
	if err != nil {
		return nil, fmt.Errorf("flow: base build: %w", err)
	}
	pads := map[string]string{}
	for _, port := range nl.Ports {
		pads[port.Name] = a.Phys.Ports[port].Name()
	}
	return &BaseBuild{Artifacts: a, Regions: regions, Pads: pads, Cons: cons}, nil
}

// BuildVariant runs one Phase 2 project: implement a variant generator as a
// standalone design constrained to the base design's region for the given
// instance, inheriting the base's pad assignments so the interface stays
// fixed. The resulting XDL/UCF pair is what JPG consumes.
func BuildVariant(ctx context.Context, base *BaseBuild, prefix string, gen designs.Generator, opts Options) (*Artifacts, error) {
	rg, ok := base.Regions[prefix]
	if !ok {
		return nil, fmt.Errorf("flow: base has no instance %q", prefix)
	}
	return buildVariant(ctx, base.Part, rg, base.Pads, prefix, gen, opts)
}

// VariantSpec names one Phase 2 re-implementation for BuildVariants: a
// variant generator targeting an instance's region, with its own options
// (each spec carries its own seed, so a batch is reproducible regardless of
// how it is scheduled).
type VariantSpec struct {
	Prefix string
	Gen    designs.Generator
	Opts   Options
}

// BuildVariants farms a batch of independent Phase 2 variant
// re-implementations through the worker pool — the paper's observation that
// per-variant CAD runs are independent projects, made concrete. Results are
// collected by spec index, and each run is driven solely by its spec's seed,
// so the artifacts (XDL, UCF, bitstreams) are byte-identical to running
// BuildVariant serially over the same specs, for any worker count.
// On failure the lowest-index error is returned and the batch is discarded.
func BuildVariants(ctx context.Context, base *BaseBuild, specs []VariantSpec, popts ...parallel.Option) ([]*Artifacts, error) {
	return parallel.MapCtx(ctx, specs, func(ctx context.Context, _ int, s VariantSpec) (*Artifacts, error) {
		return BuildVariant(ctx, base, s.Prefix, s.Gen, s.Opts)
	}, popts...)
}

// BuildFullMany implements many complete designs concurrently with the
// conventional flow — the paper's "one full CAD run per combination"
// baseline, scheduled as the embarrassingly parallel farm it is. Results
// are collected by combination index.
func BuildFullMany(ctx context.Context, p *device.Part, combos [][]designs.Instance, opts Options, popts ...parallel.Option) ([]*Artifacts, error) {
	return parallel.MapCtx(ctx, combos, func(ctx context.Context, _ int, insts []designs.Instance) (*Artifacts, error) {
		return BuildFull(ctx, p, insts, opts)
	}, popts...)
}

// BuildVariantUCF runs a Phase 2 project using only a base design's UCF to
// recover the floorplan (region and pads) — the form the command-line tools
// use, where the base build is a set of files rather than live objects.
func BuildVariantUCF(ctx context.Context, p *device.Part, baseCons *ucf.Constraints, prefix string, gen designs.Generator, opts Options) (*Artifacts, error) {
	instBase := strings.TrimSuffix(prefix, "/")
	rg, ok := baseCons.Ranges["AG_"+instBase]
	if !ok {
		return nil, fmt.Errorf("flow: base UCF has no AREA_GROUP %q", "AG_"+instBase)
	}
	return buildVariant(ctx, p, rg, baseCons.NetLocs, prefix, gen, opts)
}

func buildVariant(ctx context.Context, part *device.Part, rg frames.Region, basePads map[string]string,
	prefix string, gen designs.Generator, opts Options) (out *Artifacts, err error) {
	instBase := strings.TrimSuffix(prefix, "/")
	ctx, sp := obs.Start(ctx, "flow.variant")
	sp.SetStr("module", prefix+gen.Name())
	defer func() { sp.EndErr(err) }()
	mVariantBuilds.Inc()

	t0 := time.Now()
	_, ms := obs.Start(ctx, "map")
	nl, err := mapStandalone(ctx, gen, instBase+"_"+gen.Name(), prefix)
	ms.EndErr(err)
	if err != nil {
		obs.CountError("map")
		return nil, err
	}
	cons := ucf.New()
	cons.AddGroup(prefix+"*", "AG_"+instBase, rg)
	// Inherit the base design's pads: clk plus the instance's data ports.
	bind := func(variantPort, basePort string) error {
		pad, ok := basePads[basePort]
		if !ok {
			return fmt.Errorf("flow: base design has no port %q", basePort)
		}
		cons.NetLocs[variantPort] = pad
		return nil
	}
	if err := bind("clk", "clk"); err != nil {
		return nil, err
	}
	for k := 0; k < gen.NumInputs(); k++ {
		if err := bind(fmt.Sprintf("in%d", k), fmt.Sprintf("%s_in%d", instBase, k)); err != nil {
			return nil, err
		}
	}
	for k := 0; k < gen.NumOutputs(); k++ {
		if err := bind(fmt.Sprintf("out%d", k), fmt.Sprintf("%s_out%d", instBase, k)); err != nil {
			return nil, err
		}
	}
	synthTime := time.Since(t0)
	logStage(ctx, "map", synthTime)

	rfn := func(n *netlist.Net) *frames.Region {
		if n.IsClock {
			return nil
		}
		r := rg
		return &r
	}
	a, err := run(ctx, part, nl, cons, rfn, "all:"+rg.String(), opts, synthTime)
	if err != nil {
		return nil, fmt.Errorf("flow: variant %s%s: %w", prefix, gen.Name(), err)
	}
	return &a, nil
}

// Implement runs the implementation pipeline (place, route, bitgen) on an
// arbitrary technology-mapped netlist with optional UCF constraints — the
// generic entry point for netlists loaded from .net files. Cell-to-cell
// nets inside a constrained AREA_GROUP are routed within the group's region;
// port-connected nets roam free (a generic UCF does not plan pad adjacency
// the way the partial-reconfiguration floorplanner does).
func Implement(ctx context.Context, p *device.Part, nl *netlist.Design, cons *ucf.Constraints, opts Options) (out *Artifacts, err error) {
	rfn, regionFP := implementRegionFn(cons)
	ctx, sp := obs.Start(ctx, "flow.implement")
	defer func() { sp.EndErr(err) }()
	a, err := run(ctx, p, nl, cons, rfn, regionFP, opts, 0)
	if err != nil {
		return nil, fmt.Errorf("flow: implement: %w", err)
	}
	return &a, nil
}

// BuildFull implements a complete design with the conventional flow (no
// floorplan constraints) — the baseline the paper compares against.
func BuildFull(ctx context.Context, p *device.Part, insts []designs.Instance, opts Options) (out *Artifacts, err error) {
	ctx, sp := obs.Start(ctx, "flow.full")
	defer func() { sp.EndErr(err) }()
	mFullBuilds.Inc()
	t0 := time.Now()
	_, ms := obs.Start(ctx, "map")
	nl, err := mapBaseDesign(ctx, "full", insts)
	ms.EndErr(err)
	if err != nil {
		obs.CountError("map")
		return nil, err
	}
	synthTime := time.Since(t0)
	logStage(ctx, "map", synthTime)
	a, err := run(ctx, p, nl, nil, nil, "none", opts, synthTime)
	if err != nil {
		return nil, fmt.Errorf("flow: full build: %w", err)
	}
	return &a, nil
}
