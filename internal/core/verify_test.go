package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/bitlint"
	"repro/internal/device"
)

// TestGeneratePartialVerified generates a partial with Verify on: the result
// must be byte-identical to an unverified run and pass the independent
// re-decode against the project base.
func TestGeneratePartialVerified(t *testing.T) {
	base, variant := setup(t)
	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	m, err := proj.AddModule("u1_lfsr", variant.XDL, variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := proj.GeneratePartial(m, GenerateOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	verified, err := proj.GeneratePartial(m, GenerateOptions{Strict: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bitstream, verified.Bitstream) {
		t.Fatal("Verify changed the generated partial")
	}
	// Delta and compressed partials verify too.
	for _, opts := range []GenerateOptions{
		{Delta: true, Verify: true},
		{Compress: true, Verify: true},
	} {
		if _, err := proj.GeneratePartial(m, opts); err != nil {
			t.Fatalf("options %+v: %v", opts, err)
		}
	}
}

// TestVerifyResultCatchesCorruption corrupts a generated partial and a
// declared frame list, the two failure shapes verifyResult exists for: a
// stream that does not decode to what it should, and a stream that rewrites
// frames the result does not declare.
func TestVerifyResultCatchesCorruption(t *testing.T) {
	base, variant := setup(t)
	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	m, err := proj.AddModule("u1_lfsr", variant.XDL, variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	res, err := proj.GeneratePartial(m, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("intact", func(t *testing.T) {
		if err := proj.verifyResult(context.Background(), m, res); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("corrupted-payload", func(t *testing.T) {
		bad := *res
		bad.Bitstream = append([]byte(nil), res.Bitstream...)
		bad.Bitstream[len(bad.Bitstream)/2] ^= 0x04
		if err := proj.verifyResult(context.Background(), m, &bad); err == nil {
			t.Fatal("corrupted partial passed verification")
		}
	})
	t.Run("undeclared-frame", func(t *testing.T) {
		// Drop a genuinely-changed frame from the declared FAR list: the
		// decoded partial then rewrites a frame the result does not claim.
		rep, err := bitlint.VerifyPartial(proj.Base, res.Bitstream)
		if err != nil {
			t.Fatal(err)
		}
		diffs, err := rep.Frames.Diff(proj.Base)
		if err != nil {
			t.Fatal(err)
		}
		if len(diffs) == 0 {
			t.Fatal("partial changes no frames; fixture too small")
		}
		drop := diffs[len(diffs)-1]
		bad := *res
		var kept []device.FAR
		for _, f := range res.FARs {
			if f != drop {
				kept = append(kept, f)
			}
		}
		bad.FARs = kept
		err = proj.verifyResult(context.Background(), m, &bad)
		if err == nil {
			t.Fatal("undeclared frame write passed verification")
		}
		if !strings.Contains(err.Error(), "undeclared frame") {
			t.Fatalf("unexpected error: %v", err)
		}
	})
}
