package core

import (
	"context"
	"fmt"

	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/xhwif"
)

// EditLoop drives the edit -> regenerate -> download cycle the incremental
// flow exists for: a netlist edit goes through the flow's delta engine
// (splice or rebuild), the resulting physical design becomes a fresh module
// revision, and a partial bitstream for its region is generated — and, when
// a board is attached, downloaded with the project's transactional
// write-back. The per-edit cost on the INIT-only path is proportional to
// the delta plus the module's columns, never the device or a full CAD run.
type EditLoop struct {
	Project *Project
	Session *flow.EditSession
	// Name names the module revisions registered by the loop.
	Name string
	// Opts controls partial generation. WriteBack is managed by the loop:
	// forced off for generate-only edits (the base must track the device,
	// not the edit stream) and handled transactionally on downloads.
	Opts GenerateOptions
	// Board, when non-nil, receives each edit's partial bitstream.
	Board xhwif.HWIF

	edits int
}

var mEditLoopEdits = obs.GetCounter("core.editloop_edits")

// NewEditLoop couples a project to a flow edit session.
func NewEditLoop(proj *Project, sess *flow.EditSession, name string, opts GenerateOptions) *EditLoop {
	opts.WriteBack = false
	return &EditLoop{Project: proj, Session: sess, Name: name, Opts: opts}
}

// EditResult bundles one trip around the loop.
type EditResult struct {
	// Incremental is the flow engine's account of how the edit was absorbed.
	Incremental *flow.IncrementalResult
	// Module is the fresh module revision for the edited design.
	Module *Module
	// Partial is the generated (and possibly downloaded) partial bitstream.
	Partial *Result
	// Download is set when the loop has a board attached.
	Download *xhwif.DownloadStats
}

// Edit absorbs one netlist edit and regenerates the module's partial
// bitstream; with a board attached it also downloads the partial and
// advances the project base transactionally.
func (l *EditLoop) Edit(ctx context.Context, next *netlist.Design) (*EditResult, error) {
	ctx, sp := obs.Start(ctx, "core.edit")
	defer sp.End()
	mEditLoopEdits.Inc()

	ir, err := l.Session.Edit(ctx, next)
	if err != nil {
		return nil, err
	}
	sp.SetStr("path", ir.Stats.Path)

	l.edits++
	m, err := l.Project.ModuleFromDesign(fmt.Sprintf("%s@%d", l.Name, l.edits), ir.Artifacts.Phys, l.Session.Cons())
	if err != nil {
		return nil, err
	}
	out := &EditResult{Incremental: ir, Module: m}
	if l.Board == nil {
		opts := l.Opts
		opts.WriteBack = false
		if out.Partial, err = l.Project.GeneratePartial(m, opts); err != nil {
			return nil, err
		}
		return out, nil
	}
	res, ds, err := l.Project.GenerateAndDownloadCtx(ctx, m, l.Board, l.Opts)
	if err != nil {
		return out, err
	}
	out.Partial, out.Download = res, &ds
	return out, nil
}
