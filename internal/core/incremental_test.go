package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/frames"
	"repro/internal/netlist"
)

// editedGen wraps a generator and applies INIT edits after building, so a
// from-scratch BuildVariant produces the reference implementation of an
// edited netlist through the ordinary full CAD path.
type editedGen struct {
	designs.Generator
	edits map[string]uint16
}

func (g editedGen) Build(d *netlist.Design, prefix string, clk *netlist.Net,
	ins []*netlist.Net) ([]*netlist.Net, error) {
	outs, err := g.Generator.Build(d, prefix, clk, ins)
	if err != nil {
		return nil, err
	}
	for name, init := range g.edits {
		if err := d.SetInit(name, init); err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// TestEditLoopFuzzMatchesFromScratch drives the edit->regenerate loop with a
// randomized (seeded) edit sequence and, after every edit, checks the
// incremental outputs byte-for-byte against a from-scratch rebuild: the full
// bitstream against a cold BuildVariant of the cumulatively edited design,
// and the partial against a cold GeneratePartial in a fresh project.
func TestEditLoopFuzzMatchesFromScratch(t *testing.T) {
	ctx := context.Background()
	p := device.MustByName("XCV50")
	base, err := flow.BuildBase(ctx, p, []designs.Instance{
		{Prefix: "u1/", Gen: designs.Counter{Bits: 6}},
		{Prefix: "u2/", Gen: designs.SBoxBank{N: 6, Seed: 3}},
	}, flow.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gen := designs.SBoxBank{N: 6, Seed: 5}
	variant, err := flow.BuildVariant(ctx, base, "u2/", gen, flow.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := flow.NewVariantEditSession(variant, base.Regions["u2/"], flow.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	loop := NewEditLoop(proj, sess, "u2_sbox", GenerateOptions{})

	rng := rand.New(rand.NewSource(42))
	cur := variant.Netlist
	cum := map[string]uint16{} // cumulative edits, for the cold generator
	for round := 0; round < 5; round++ {
		next := cur.Clone()
		for j, n := 0, 1+rng.Intn(3); j < n; j++ {
			var name string
			var init uint16
			if rng.Intn(4) == 0 {
				name = fmt.Sprintf("u2/sq%d", rng.Intn(6))
				init = uint16(rng.Intn(2))
			} else {
				name = fmt.Sprintf("u2/sbox%d", rng.Intn(6))
				init = uint16(rng.Intn(1 << 16))
			}
			if err := next.SetInit(name, init); err != nil {
				t.Fatal(err)
			}
			cum[name] = init
		}

		res, err := loop.Edit(ctx, next)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.Incremental.Stats.Path == "rebuild" {
			t.Fatalf("round %d: INIT edit took the rebuild path", round)
		}

		// From-scratch reference: full CAD run of the cumulatively edited
		// variant, then a cold partial in a fresh project.
		cold, err := flow.BuildVariant(ctx, base, "u2/", editedGen{gen, cum}, flow.Options{Seed: 2})
		if err != nil {
			t.Fatalf("round %d cold build: %v", round, err)
		}
		if !bytes.Equal(res.Incremental.Artifacts.Bitstream, cold.Bitstream) {
			t.Fatalf("round %d: incremental full bitstream differs from from-scratch build", round)
		}
		coldProj, err := NewProject(base.Bitstream)
		if err != nil {
			t.Fatal(err)
		}
		coldMod, err := coldProj.AddModule("u2_sbox_cold", cold.XDL, cold.UCF)
		if err != nil {
			t.Fatalf("round %d cold module: %v", round, err)
		}
		coldRes, err := coldProj.GeneratePartial(coldMod, GenerateOptions{})
		if err != nil {
			t.Fatalf("round %d cold partial: %v", round, err)
		}
		if !bytes.Equal(res.Partial.Bitstream, coldRes.Bitstream) {
			t.Fatalf("round %d: incremental partial differs from from-scratch GeneratePartial", round)
		}
		cur = next
	}
}

// TestGeneratePartialDelta checks the dirty-tracked delta partial: it
// carries only frames that differ from the base, and applying it to the base
// configuration reaches the same state as the full-region partial.
func TestGeneratePartialDelta(t *testing.T) {
	base, variant := setup(t)
	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	m, err := proj.AddModule("u1_lfsr", variant.XDL, variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	full, err := proj.GeneratePartial(m, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	delta, err := proj.GeneratePartial(m, GenerateOptions{Delta: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.FARs) >= len(full.FARs) {
		t.Fatalf("delta carries %d frames, full region %d", len(delta.FARs), len(full.FARs))
	}
	if delta.FramesChanged != len(delta.FARs) {
		t.Fatalf("delta carries %d frames but only %d changed", len(delta.FARs), delta.FramesChanged)
	}
	if len(delta.Bitstream) >= len(full.Bitstream) {
		t.Fatal("delta partial is not smaller than the region partial")
	}

	viaFull := frames.New(proj.Part)
	if _, err := bitstream.Apply(viaFull, base.Bitstream); err != nil {
		t.Fatal(err)
	}
	viaDelta := viaFull.Clone()
	if _, err := bitstream.Apply(viaFull, full.Bitstream); err != nil {
		t.Fatal(err)
	}
	if _, err := bitstream.Apply(viaDelta, delta.Bitstream); err != nil {
		t.Fatal(err)
	}
	if !viaFull.Equal(viaDelta) {
		t.Fatal("delta partial reconfigures to a different state than the region partial")
	}
}
