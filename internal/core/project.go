// Package core implements JPG, the paper's contribution: a partial-bitstream
// generation tool sitting at the end of the standard CAD flow. A Project is
// initialised from the base design's complete bitstream; each sub-module
// variant arrives as the XDL + UCF pair the standard tools produced, is
// replayed through the JBits layer onto the base configuration, and leaves
// as a partial bitstream covering exactly the module's configuration
// columns. The tool optionally writes the partial configuration back onto
// the base (the paper's option 2) and downloads it to a board over the
// XHWIF interface.
package core

import (
	"context"
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/cache"
	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/jbits"
	"repro/internal/ncd"
	"repro/internal/obs"
	jpglog "repro/internal/obs/log"
	"repro/internal/parallel"
	"repro/internal/phys"
	"repro/internal/ucf"
	"repro/internal/xdl"
	"repro/internal/xhwif"
)

// Project is a JPG project: a target device plus the base design's current
// configuration.
type Project struct {
	Part *device.Part
	// Base is the base design's configuration memory, as recovered from
	// the complete bitstream the project was created with (and updated by
	// write-backs).
	Base *frames.Memory
	// Modules lists the sub-module variants added to the project.
	Modules []*Module
	// Cache optionally memoizes partial-bitstream generation: repeated
	// GeneratePartial calls for the same base configuration, module content
	// and options return the stored result. Write-backs advance the base's
	// content fingerprint, so a memoized partial can never be served
	// against a configuration it was not diffed from.
	Cache *cache.Cache

	// baseFP is the content fingerprint of Base. Empty disables
	// memoization (set after UpdateBRAM write-backs, whose arbitrary
	// mutation function cannot be fingerprinted).
	baseFP string
}

// NewProject initialises a project from a complete base bitstream; the part
// is identified from the bitstream header, and the configuration memory is
// recovered by running the bitstream through the configuration-port model.
func NewProject(baseBitstream []byte) (*Project, error) {
	part, err := bitstream.InferPart(baseBitstream)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	mem := frames.New(part)
	stats, err := bitstream.Apply(mem, baseBitstream)
	if err != nil {
		return nil, fmt.Errorf("core: base bitstream rejected: %w", err)
	}
	if stats.FramesWritten != part.TotalFrames() {
		return nil, fmt.Errorf("core: base bitstream wrote %d of %d frames; a complete bitstream is required",
			stats.FramesWritten, part.TotalFrames())
	}
	h := cache.NewHasher("core.base/v1")
	h.Str("part", part.Name)
	h.Bytes("bitstream", baseBitstream)
	return &Project{Part: part, Base: mem, baseFP: h.Sum().String()}, nil
}

// NewProjectForPart initialises a project from an explicit part and
// configuration memory (for callers that already hold the device state,
// e.g. via readback).
func NewProjectForPart(part *device.Part, base *frames.Memory) (*Project, error) {
	if base.Part != part {
		return nil, fmt.Errorf("core: memory is for %s, not %s", base.Part.Name, part.Name)
	}
	return &Project{Part: part, Base: base.Clone(), baseFP: base.Fingerprint()}, nil
}

// AddModule parses a sub-module variant's XDL and UCF texts (the outputs of
// the variant's own CAD run, paper Phase 2) and registers it with the
// project after containment analysis.
func (p *Project) AddModule(name, xdlText, ucfText string) (*Module, error) {
	design, err := xdl.Load(xdlText)
	if err != nil {
		return nil, fmt.Errorf("core: module %s: %w", name, err)
	}
	if design.Part != p.Part {
		return nil, fmt.Errorf("core: module %s targets %s but the project device is %s",
			name, design.Part.Name, p.Part.Name)
	}
	cons, err := ucf.Parse(ucfText)
	if err != nil {
		return nil, fmt.Errorf("core: module %s: %w", name, err)
	}
	if err := cons.Validate(p.Part); err != nil {
		return nil, fmt.Errorf("core: module %s: %w", name, err)
	}
	m, err := newModule(name, design, cons)
	if err != nil {
		return nil, fmt.Errorf("core: module %s: %w", name, err)
	}
	// The module's cache identity is its source texts: two modules loaded
	// from byte-identical XDL/UCF (under any name) share partial results.
	mh := cache.NewHasher("core.module/v1")
	mh.Str("xdl", xdlText)
	mh.Str("ucf", ucfText)
	m.fp = mh.Sum().String()
	p.Modules = append(p.Modules, m)
	mModulesAdded.Inc()
	return m, nil
}

// ModuleFromDesign builds a module from a live physical design and its
// constraints without registering it with the project — the form the
// incremental edit loop uses, where every edit yields a fresh revision of
// the same module and registering each one would grow the project without
// bound. The module's cache identity is its serialised content (NCD bytes +
// constraint fingerprint), so revisiting a configuration in a warm edit
// storm hits the memoized partial.
func (p *Project) ModuleFromDesign(name string, design *phys.Design, cons *ucf.Constraints) (*Module, error) {
	if design.Part != p.Part {
		return nil, fmt.Errorf("core: module %s targets %s but the project device is %s",
			name, design.Part.Name, p.Part.Name)
	}
	if err := cons.Validate(p.Part); err != nil {
		return nil, fmt.Errorf("core: module %s: %w", name, err)
	}
	m, err := newModule(name, design, cons)
	if err != nil {
		return nil, fmt.Errorf("core: module %s: %w", name, err)
	}
	if ncdBytes, err := ncd.Marshal(design); err == nil {
		mh := cache.NewHasher("core.module.ncd/v1")
		mh.Bytes("ncd", ncdBytes)
		mh.Str("ucf", cons.Fingerprint())
		m.fp = mh.Sum().String()
	}
	return m, nil
}

// AddModuleDesign is ModuleFromDesign plus registration with the project.
func (p *Project) AddModuleDesign(name string, design *phys.Design, cons *ucf.Constraints) (*Module, error) {
	m, err := p.ModuleFromDesign(name, design, cons)
	if err != nil {
		return nil, err
	}
	p.Modules = append(p.Modules, m)
	mModulesAdded.Inc()
	return m, nil
}

// GenerateOptions controls partial-bitstream generation.
type GenerateOptions struct {
	// WriteBack overwrites the project's base configuration with the
	// reconfigured state (the paper's option 2). Without it the base is
	// left untouched (option 1).
	WriteBack bool
	// Strict rejects modules whose placement or routing escapes their
	// declared AREA_GROUP columns instead of widening the written region.
	Strict bool
	// Compress emits an MFWR-compressed partial bitstream (duplicate frames
	// are replicated by reference; see bitstream.WritePartialCompressed).
	// The board's configuration port must support the MFWR extension.
	Compress bool
	// Delta narrows the partial to exactly the frames whose final content
	// differs from the base configuration, found by dirty-frame tracking
	// during module replay rather than a full-memory diff — the jbitsdiff
	// core of the update instead of the paper's column-window partial. The
	// resulting stream is minimal but not relocatable: it assumes the device
	// holds the base configuration.
	Delta bool
	// Verify runs the independent bitstream verifier (internal/bitlint) over
	// the generated partial — decoding it from raw bytes, differentially
	// checking the reconstruction against the configuration-port model, and
	// requiring that it only rewrites the frames the result declares — and
	// fails the generation on any error finding. Execution-only: it never
	// changes the emitted bytes, so it is not part of the memoization key
	// (cached results are verified on the way out too).
	Verify bool
}

// Result reports one partial-bitstream generation.
type Result struct {
	// Bitstream is the partial bitstream.
	Bitstream []byte
	// Region is the full-height column region the bitstream rewrites.
	Region frames.Region
	// FARs lists the frames carried by the bitstream, in device order.
	FARs []device.FAR
	// FramesChanged counts carried frames that differ from the base.
	FramesChanged int
}

// Partial-generation metrics (always on; see internal/obs): the numbers
// behind claim C2 — partial bitstream bytes proportional to the fraction of
// the device being reconfigured.
var (
	mPartials        = obs.GetCounter("core.partials_generated")
	mModulesAdded    = obs.GetCounter("core.modules_added")
	mFramesCarried   = obs.GetCounter("core.frames_carried")
	mFramesChanged   = obs.GetCounter("core.frames_changed")
	mPartialBytes    = obs.GetCounter("core.partial_bytes")
	mRegionFraction  = obs.GetHistogram("core.region_fraction_pct")
	mPartialBytesHit = obs.GetHistogram("core.partial_bytes_hist")
)

// GeneratePartial replays the module onto (a copy of) the base
// configuration and emits the partial bitstream for its columns. With a
// Cache attached, non-write-back generations are memoized on the (base
// configuration, module content, options) triple.
func (p *Project) GeneratePartial(m *Module, opts GenerateOptions) (*Result, error) {
	return p.GeneratePartialCtx(context.Background(), m, opts)
}

// GeneratePartialCtx is GeneratePartial under a context, the service entry
// point: the generation runs as a "core.partial" span and every cache and
// log event it emits inherits the context's collector, logger and
// correlation ID.
func (p *Project) GeneratePartialCtx(ctx context.Context, m *Module, opts GenerateOptions) (res *Result, err error) {
	_, sp := obs.Start(ctx, "core.partial")
	sp.SetStr("module", m.Name)
	defer func() { sp.EndErr(err) }()
	res, err = p.generatePartial(ctx, m, opts)
	if err != nil {
		obs.CountError("partial")
		jpglog.Warn(ctx, "core.partial", "module", m.Name, "error", err.Error())
		return nil, err
	}
	if opts.Verify {
		// Runs after generation (memoized or direct) so cached results are
		// re-verified too. With WriteBack the base has already advanced, so
		// the partial verifies as an idempotent overlay of the new base.
		if err = p.verifyResult(ctx, m, res); err != nil {
			return nil, err
		}
	}
	if opts.WriteBack {
		p.advanceBaseFP(m.fp)
	}
	mPartials.Inc()
	mFramesCarried.Add(int64(len(res.FARs)))
	mFramesChanged.Add(int64(res.FramesChanged))
	mPartialBytes.Add(int64(len(res.Bitstream)))
	mPartialBytesHit.Observe(int64(len(res.Bitstream)))
	mRegionFraction.Observe(int64(100 * len(res.FARs) / p.Part.TotalFrames()))
	jpglog.Info(ctx, "core.partial", "module", m.Name,
		"bytes", len(res.Bitstream), "frames", len(res.FARs), "changed", res.FramesChanged)
	return res, nil
}

// generatePartial dispatches between the memoized and direct paths. The
// cache applies only when the base and module fingerprints are both known
// and the generation does not write back (a write-back mutates project
// state, which a cached result could not replay).
func (p *Project) generatePartial(ctx context.Context, m *Module, opts GenerateOptions) (*Result, error) {
	c := p.Cache
	if c == nil || opts.WriteBack || p.baseFP == "" || m.fp == "" {
		return p.computePartial(m, opts)
	}
	h := cache.NewHasher("core.partial/v1")
	h.Str("part", p.Part.Name)
	h.Str("base", p.baseFP)
	h.Str("module", m.fp)
	h.Bool("strict", opts.Strict)
	h.Bool("compress", opts.Compress)
	h.Bool("delta", opts.Delta)
	k := h.Sum()
	data, hit, err := c.GetOrCompute("partial", k, func() ([]byte, error) {
		res, err := p.computePartial(m, opts)
		if err != nil {
			return nil, err
		}
		return encodeResult(res)
	})
	if err != nil {
		return nil, err
	}
	jpglog.Info(ctx, "cache", jpglog.FieldStage, "partial", "result", cacheResult(hit), "module", m.Name)
	res, err := decodeResult(data)
	if err != nil {
		// Undecodable entry (stale encoding, collision): drop it and
		// generate directly.
		c.Remove("partial", k)
		return p.computePartial(m, opts)
	}
	return res, nil
}

// cacheResult spells a cache lookup outcome for log events.
func cacheResult(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// advanceBaseFP folds a write-back into the base fingerprint so memoized
// partials are keyed on the exact post-write-back configuration.
func (p *Project) advanceBaseFP(moduleFP string) {
	if p.baseFP == "" || moduleFP == "" {
		p.baseFP = ""
		return
	}
	h := cache.NewHasher("core.writeback/v1")
	h.Str("base", p.baseFP)
	h.Str("module", moduleFP)
	p.baseFP = h.Sum().String()
}

// computePartial is the direct generation path.
func (p *Project) computePartial(m *Module, opts GenerateOptions) (*Result, error) {
	region, err := m.writeRegion(p.Part, opts.Strict)
	if err != nil {
		return nil, err
	}
	work := p.Base.Clone()
	if opts.Delta {
		work.StartTracking()
	}
	jb := jbits.New(work)
	// The write granularity is whole columns, so the region's columns are
	// blanked over the full device height and the module is replayed into
	// them. Floorplans must therefore give reconfigurable modules exclusive
	// columns (as on the real device, where a frame spans the full column).
	if err := jb.ClearRegion(region); err != nil {
		return nil, err
	}
	if err := m.program(jb); err != nil {
		return nil, err
	}
	fars := region.FARs(p.Part)
	if opts.Delta {
		// Dirty tracking names every frame the replay touched; keep the ones
		// whose final content actually differs from the base (a cleared and
		// identically reprogrammed frame is not part of the delta).
		var dirty []device.FAR
		for _, f := range work.DirtyFARs() {
			if !work.FrameEqual(p.Base, f) {
				dirty = append(dirty, f)
			}
		}
		work.StopTracking()
		if len(dirty) == 0 {
			return nil, fmt.Errorf("core: delta partial for %s: module changes nothing against the base", m.Name)
		}
		fars = dirty
	}
	var bs []byte
	if opts.Compress {
		bs, err = bitstream.WritePartialCompressed(work, bitstream.RunsForFARs(p.Part, fars))
	} else {
		bs, err = bitstream.WritePartialForFARs(work, fars)
	}
	if err != nil {
		return nil, err
	}
	changed := 0
	for _, f := range fars {
		if !work.FrameEqual(p.Base, f) {
			changed++
		}
	}
	if opts.WriteBack {
		p.Base = work
	}
	return &Result{Bitstream: bs, Region: region, FARs: fars, FramesChanged: changed}, nil
}

// GeneratePartialAll generates partial bitstreams for many modules
// concurrently — the multi-module analogue of GeneratePartial, for projects
// whose reconfigurable regions each have a set of variants to prepare.
// Every module replays onto its own clone of the base configuration, so the
// runs are independent; results are collected by module index and are
// byte-identical to calling GeneratePartial serially in that order, for any
// worker count. WriteBack is rejected: write-backs serialise on the base
// state by definition, so a concurrent batch has no meaningful order —
// callers that need option 2 semantics apply the partials one at a time.
func (p *Project) GeneratePartialAll(ms []*Module, opts GenerateOptions, popts ...parallel.Option) ([]*Result, error) {
	return p.GeneratePartialAllCtx(context.Background(), ms, opts, popts...)
}

// GeneratePartialAllCtx is GeneratePartialAll under a context: cancelling
// ctx stops the batch dispatching new modules (in-flight generations run to
// completion) and returns ctx.Err().
func (p *Project) GeneratePartialAllCtx(ctx context.Context, ms []*Module, opts GenerateOptions, popts ...parallel.Option) ([]*Result, error) {
	if opts.WriteBack {
		return nil, fmt.Errorf("core: GeneratePartialAll cannot WriteBack (write-backs are order-dependent); generate serially")
	}
	return parallel.MapCtx(ctx, ms, func(ctx context.Context, _ int, m *Module) (*Result, error) {
		return p.GeneratePartialCtx(ctx, m, opts)
	}, popts...)
}

// ContextDownloader is the context-aware download side of a board;
// *xhwif.ReliableHWIF implements it (per-download deadlines, cancellable
// backoff).
type ContextDownloader interface {
	DownloadCtx(ctx context.Context, bs []byte) (xhwif.DownloadStats, error)
}

// GenerateAndDownload generates the partial bitstream and downloads it to a
// board over the XHWIF interface, writing back on success so the project's
// view of the base configuration tracks the device state. The write-back is
// transactional with the download: if the board rejects the stream (all
// retries exhausted, for a reliability-wrapped board), the project's base
// configuration is left exactly as it was, mirroring the device's own
// rollback — project and device never diverge.
func (p *Project) GenerateAndDownload(m *Module, board xhwif.HWIF, opts GenerateOptions) (*Result, xhwif.DownloadStats, error) {
	return p.GenerateAndDownloadCtx(context.Background(), m, board, opts)
}

// GenerateAndDownloadCtx is GenerateAndDownload under a context. When the
// board implements ContextDownloader the context governs the download
// (deadline, cancellation mid-backoff); otherwise it only gates the start.
func (p *Project) GenerateAndDownloadCtx(ctx context.Context, m *Module, board xhwif.HWIF, opts GenerateOptions) (*Result, xhwif.DownloadStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, xhwif.DownloadStats{}, err
	}
	// Generate without writing back: the base must only advance once the
	// device has accepted the stream.
	opts.WriteBack = false
	res, err := p.GeneratePartialCtx(ctx, m, opts)
	if err != nil {
		return nil, xhwif.DownloadStats{}, err
	}
	var ds xhwif.DownloadStats
	_, sp := obs.Start(ctx, "core.download")
	sp.SetStr("module", m.Name)
	if cd, ok := board.(ContextDownloader); ok {
		ds, err = cd.DownloadCtx(ctx, res.Bitstream)
	} else {
		ds, err = board.Download(res.Bitstream)
	}
	sp.EndErr(err)
	if err != nil {
		obs.CountError("download")
		jpglog.Warn(ctx, "download", "module", m.Name, "bytes", len(res.Bitstream),
			"attempts", ds.Attempts, "error", err.Error())
		return res, ds, fmt.Errorf("core: download: %w", err)
	}
	jpglog.Info(ctx, "download", "module", m.Name, "bytes", len(res.Bitstream),
		"frames", ds.FramesWritten, "attempts", ds.Attempts)
	// Commit: replay the accepted stream onto the base, which reproduces
	// exactly the state the device now holds (the partial carries every
	// frame of its columns).
	work := p.Base.Clone()
	if _, err := bitstream.Apply(work, res.Bitstream); err != nil {
		return res, ds, fmt.Errorf("core: write-back after download: %w", err)
	}
	p.Base = work
	p.advanceBaseFP(m.fp)
	return res, ds, nil
}

// Readbacker is the readback side of a board: it executes readback packet
// requests. *xhwif.Board implements it.
type Readbacker interface {
	ExecuteReadback(request []byte) ([]uint32, error)
}

// VerifyRegion reads the region's frames back from a board through the
// readback protocol and compares them against the project's view of the
// configuration — the "verify the update is happening on the region desired"
// step of the paper's tool, done with data instead of a GUI.
func (p *Project) VerifyRegion(rg frames.Region, board Readbacker) error {
	if !rg.Valid(p.Part) {
		return fmt.Errorf("core: verify region %v invalid for %s", rg, p.Part.Name)
	}
	fars := rg.FARs(p.Part)
	runs := bitstream.RunsForFARs(p.Part, fars)
	req, err := bitstream.WriteReadbackRequest(p.Part, runs)
	if err != nil {
		return err
	}
	raw, err := board.ExecuteReadback(req)
	if err != nil {
		return fmt.Errorf("core: readback: %w", err)
	}
	perRun, err := bitstream.ParseReadback(p.Part, runs, raw)
	if err != nil {
		return err
	}
	for ri, run := range runs {
		far := run.Start
		for k := 0; k < run.N; k++ {
			want := p.Base.Frame(far)
			got := perRun[ri][k]
			for w := range want {
				if got[w] != want[w] {
					return fmt.Errorf("core: verify failed at %v word %d: device %#08x, expected %#08x",
						far, w, got[w], want[w])
				}
			}
			if k < run.N-1 {
				next, ok := p.Part.NextFAR(far)
				if !ok {
					return fmt.Errorf("core: verify run overruns device")
				}
				far = next
			}
		}
	}
	return nil
}

// UpdateBRAM applies fn to a copy of the base configuration (fn typically
// rewrites block-RAM content through the JBits layer) and emits a partial
// bitstream covering only the BRAM content columns fn touched — run-time
// data reconfiguration without disturbing any logic frame. WriteBack applies
// as in GeneratePartial.
func (p *Project) UpdateBRAM(opts GenerateOptions, fn func(jb *jbits.JBits) error) (*Result, error) {
	work := p.Base.Clone()
	if err := fn(jbits.New(work)); err != nil {
		return nil, err
	}
	diff, err := work.Diff(p.Base)
	if err != nil {
		return nil, err
	}
	if len(diff) == 0 {
		return nil, fmt.Errorf("core: BRAM update changed nothing")
	}
	sides := map[int]bool{}
	for _, far := range diff {
		if far.BlockType() != device.BlockBRAM {
			return nil, fmt.Errorf("core: BRAM update touched non-BRAM frame %v", far)
		}
		sides[far.Major()] = true
	}
	var fars []device.FAR
	for side := 0; side < 2; side++ {
		if sides[side] {
			fars = append(fars, p.Part.BRAMColumnFARs(side)...)
		}
	}
	var bs []byte
	if opts.Compress {
		bs, err = bitstream.WritePartialCompressed(work, bitstream.RunsForFARs(p.Part, fars))
	} else {
		bs, err = bitstream.WritePartialForFARs(work, fars)
	}
	if err != nil {
		return nil, err
	}
	changed := 0
	for _, f := range fars {
		if !work.FrameEqual(p.Base, f) {
			changed++
		}
	}
	if opts.WriteBack {
		p.Base = work
		// fn is arbitrary code; the resulting configuration has no
		// derivable fingerprint, so memoization stops here.
		p.baseFP = ""
	}
	return &Result{Bitstream: bs, FARs: fars, FramesChanged: changed}, nil
}
