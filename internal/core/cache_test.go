package core

import (
	"bytes"
	"testing"

	"repro/internal/cache"
)

// TestGeneratePartialCached pins the project-level memoization contract:
// with a cache attached, regenerating the same module yields byte-identical
// results to the uncached path and hits on the second call.
func TestGeneratePartialCached(t *testing.T) {
	base, variant := setup(t)

	plainProj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := plainProj.AddModule("u1_lfsr", variant.XDL, variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := plainProj.GeneratePartial(pm, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}

	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	proj.Cache = cache.New(cache.Options{NoDisk: true})
	m, err := proj.AddModule("u1_lfsr", variant.XDL, variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := proj.GeneratePartial(m, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := proj.GeneratePartial(m, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}

	for _, run := range []struct {
		name string
		res  *Result
	}{{"cold", cold}, {"warm", warm}} {
		if !bytes.Equal(run.res.Bitstream, plain.Bitstream) {
			t.Errorf("%s cached partial differs from uncached", run.name)
		}
		if len(run.res.FARs) != len(plain.FARs) || run.res.FramesChanged != plain.FramesChanged {
			t.Errorf("%s cached result metadata differs: %d/%d FARs, %d/%d changed",
				run.name, len(run.res.FARs), len(plain.FARs), run.res.FramesChanged, plain.FramesChanged)
		}
		if run.res.Region != plain.Region {
			t.Errorf("%s cached region %v, want %v", run.name, run.res.Region, plain.Region)
		}
	}
	st := proj.Cache.Stats()
	if s := st.Stages["partial"]; s.Hits != 1 || s.Misses != 1 {
		t.Errorf("partial stage stats = %+v, want 1 hit / 1 miss", s)
	}
}

// TestGeneratePartialCacheRespectsOptions verifies options are part of the
// key: strict/compress variants must not share entries.
func TestGeneratePartialCacheRespectsOptions(t *testing.T) {
	base, variant := setup(t)
	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	proj.Cache = cache.New(cache.Options{NoDisk: true})
	m, err := proj.AddModule("u1_lfsr", variant.XDL, variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	plainRes, err := proj.GeneratePartial(m, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	compRes, err := proj.GeneratePartial(m, GenerateOptions{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(plainRes.Bitstream, compRes.Bitstream) {
		t.Fatal("compressed and plain partials shared a cache entry")
	}
}

// TestWriteBackInvalidatesCache: a write-back mutates the base state, so a
// subsequent generation of the same module must not reuse the pre-write-back
// entry (the base fingerprint chain advances).
func TestWriteBackInvalidatesCache(t *testing.T) {
	base, variant := setup(t)

	// Uncached reference: generate, write back, generate again.
	ref, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := ref.AddModule("u1_lfsr", variant.XDL, variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.GeneratePartial(rm, GenerateOptions{WriteBack: true}); err != nil {
		t.Fatal(err)
	}
	refAfter, err := ref.GeneratePartial(rm, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}

	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	proj.Cache = cache.New(cache.Options{NoDisk: true})
	m, err := proj.AddModule("u1_lfsr", variant.XDL, variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	before, err := proj.GeneratePartial(m, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proj.GeneratePartial(m, GenerateOptions{WriteBack: true}); err != nil {
		t.Fatal(err)
	}
	after, err := proj.GeneratePartial(m, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after.Bitstream, refAfter.Bitstream) {
		t.Fatal("cached post-write-back partial differs from uncached reference")
	}
	// Against the rewritten base the module is already resident, so the
	// partial carries no changed frames — reusing the pre-write-back entry
	// would wrongly report changes.
	if after.FramesChanged != refAfter.FramesChanged {
		t.Fatalf("FramesChanged = %d, want %d", after.FramesChanged, refAfter.FramesChanged)
	}
	if before.FramesChanged == 0 {
		t.Fatal("sanity: the first partial should change frames")
	}
}
