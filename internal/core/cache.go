package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Cached partial-generation results are stored as gob-encoded Result
// records. The payload is only ever decoded back into a Result (callers
// compare the decoded bitstream bytes, never the container), so gob's
// encoding details are not part of the determinism contract.

func encodeResult(r *Result) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, fmt.Errorf("core: encode result: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeResult(data []byte) (*Result, error) {
	var r Result
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&r); err != nil {
		return nil, fmt.Errorf("core: decode result: %w", err)
	}
	return &r, nil
}
