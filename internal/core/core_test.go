package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/frames"
	"repro/internal/jbits"
	"repro/internal/parallel"
	"repro/internal/xhwif"
)

// setup builds a two-module base design and one variant for u1, the paper's
// Phase 1 + Phase 2.
func setup(t *testing.T) (*flow.BaseBuild, *flow.Artifacts) {
	t.Helper()
	p := device.MustByName("XCV50")
	base, err := flow.BuildBase(context.Background(), p, []designs.Instance{
		{Prefix: "u1/", Gen: designs.Counter{Bits: 6}},
		{Prefix: "u2/", Gen: designs.SBoxBank{N: 8, Seed: 3}},
	}, flow.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	variant, err := flow.BuildVariant(context.Background(), base, "u1/", designs.LFSR{Bits: 6}, flow.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return base, variant
}

func TestNewProjectInfersPartAndState(t *testing.T) {
	base, _ := setup(t)
	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Part.Name != "XCV50" {
		t.Fatalf("inferred part %s", proj.Part.Name)
	}
	// The recovered memory must match a direct bitgen of the base design.
	mem := frames.New(proj.Part)
	if _, err := bitstream.Apply(mem, base.Bitstream); err != nil {
		t.Fatal(err)
	}
	if !proj.Base.Equal(mem) {
		t.Fatal("project base state differs from bitstream contents")
	}
}

func TestNewProjectRejectsPartial(t *testing.T) {
	base, variant := setup(t)
	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	m, err := proj.AddModule("u1_lfsr", variant.XDL, variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	res, err := proj.GeneratePartial(m, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProject(res.Bitstream); err == nil {
		t.Fatal("partial bitstream accepted as a base")
	}
	if _, err := NewProject([]byte{1, 2, 3, 4}); err == nil {
		t.Fatal("garbage accepted as a base")
	}
}

func TestGeneratePartialEndToEnd(t *testing.T) {
	base, variant := setup(t)
	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	m, err := proj.AddModule("u1_lfsr", variant.XDL, variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	res, err := proj.GeneratePartial(m, GenerateOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}

	// Size: the partial covers only the module's columns.
	if len(res.Bitstream) >= len(base.Bitstream) {
		t.Fatalf("partial (%d B) not smaller than full (%d B)", len(res.Bitstream), len(base.Bitstream))
	}
	wantCols := base.Regions["u1/"]
	if res.Region.C1 != wantCols.C1 || res.Region.C2 != wantCols.C2 {
		t.Fatalf("partial region %v, want columns of %v", res.Region, wantCols)
	}
	ratio := float64(len(res.Bitstream)) / float64(len(base.Bitstream))
	frac := float64(res.Region.Cols()) / float64(proj.Part.Cols)
	if ratio > frac*1.35 {
		t.Fatalf("partial ratio %.3f too large for column fraction %.3f", ratio, frac)
	}
	if res.FramesChanged == 0 {
		t.Fatal("partial changed no frames (variant identical to base?)")
	}

	// Dynamic reconfiguration on a board running the base design.
	board := xhwif.NewBoard(proj.Part)
	if _, err := board.Download(base.Bitstream); err != nil {
		t.Fatal(err)
	}
	if !board.Running() {
		t.Fatal("board not running after full download")
	}
	ds, err := board.Download(res.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Started {
		t.Fatal("partial download restarted the device")
	}
	if ds.FramesWritten != len(res.FARs) {
		t.Fatalf("board wrote %d frames, partial carries %d", ds.FramesWritten, len(res.FARs))
	}

	// The board state must now equal base-with-module-replayed; outside the
	// region nothing changed.
	after := board.Readback()
	proj2, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := proj2.AddModule("u1_lfsr", variant.XDL, variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proj2.GeneratePartial(m2, GenerateOptions{WriteBack: true}); err != nil {
		t.Fatal(err)
	}
	if !after.Equal(proj2.Base) {
		t.Fatal("board state after partial reconfig differs from write-back state")
	}
	diff, err := after.Diff(proj.Base) // proj.Base is untouched (no write-back)
	if err != nil {
		t.Fatal(err)
	}
	for _, far := range diff {
		col, ok := proj.Part.CLBColOfMajor(far.Major())
		if !ok || col < res.Region.C1 || col > res.Region.C2 {
			t.Fatalf("frame %v changed outside the module's columns", far)
		}
	}
}

func TestWriteBackSemantics(t *testing.T) {
	base, variant := setup(t)
	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	m, err := proj.AddModule("v", variant.XDL, variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	before := proj.Base.Clone()
	if _, err := proj.GeneratePartial(m, GenerateOptions{}); err != nil {
		t.Fatal(err)
	}
	if !proj.Base.Equal(before) {
		t.Fatal("option 1 (no write-back) modified the base")
	}
	if _, err := proj.GeneratePartial(m, GenerateOptions{WriteBack: true}); err != nil {
		t.Fatal(err)
	}
	if proj.Base.Equal(before) {
		t.Fatal("option 2 (write-back) left the base unchanged")
	}
}

func TestGenerateAndDownload(t *testing.T) {
	base, variant := setup(t)
	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	m, err := proj.AddModule("v", variant.XDL, variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	board := xhwif.NewBoard(proj.Part)
	if _, err := board.Download(base.Bitstream); err != nil {
		t.Fatal(err)
	}
	res, ds, err := proj.GenerateAndDownload(m, board, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Bytes != len(res.Bitstream) || ds.ModelTime <= 0 {
		t.Fatalf("download stats wrong: %+v", ds)
	}
	if !board.Readback().Equal(proj.Base) {
		t.Fatal("board and project state diverged after download")
	}
}

func TestModuleAnalysis(t *testing.T) {
	base, variant := setup(t)
	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	m, err := proj.AddModule("v", variant.XDL, variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	if !m.DeclaredOK {
		t.Fatal("declared region missing despite AREA_GROUP in UCF")
	}
	if !m.Declared.ContainsRegion(m.Touched) {
		t.Fatalf("module escapes its declared region: %v vs %v", m.Declared, m.Touched)
	}
	fp := m.FloorplanASCII(proj.Part)
	if !strings.Contains(fp, "#") || !strings.Contains(fp, "|") {
		t.Fatalf("floorplan rendering missing markers:\n%s", fp)
	}
	if !strings.Contains(m.Stats(), "LUTs") {
		t.Fatal("stats string incomplete")
	}
}

func TestAddModuleRejectsWrongPart(t *testing.T) {
	base, variant := setup(t)
	_ = base
	// Build a project for a different part.
	p100 := device.MustByName("XCV100")
	mem := frames.New(p100)
	proj, err := NewProjectForPart(p100, mem)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proj.AddModule("v", variant.XDL, variant.UCF); err == nil {
		t.Fatal("module for XCV50 accepted into XCV100 project")
	}
}

func TestAddModuleRejectsGarbage(t *testing.T) {
	base, variant := setup(t)
	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proj.AddModule("v", "not xdl", variant.UCF); err == nil {
		t.Fatal("garbage XDL accepted")
	}
	if _, err := proj.AddModule("v", variant.XDL, `NET "x" LOC = "P_L999";`); err == nil {
		t.Fatal("invalid UCF accepted")
	}
}

func TestVerifyRegionAfterDownload(t *testing.T) {
	base, variant := setup(t)
	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	m, err := proj.AddModule("v", variant.XDL, variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	board := xhwif.NewBoard(proj.Part)
	if _, err := board.Download(base.Bitstream); err != nil {
		t.Fatal(err)
	}
	res, _, err := proj.GenerateAndDownload(m, board, GenerateOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	// Verification against the live board must pass for the written region
	// and for the whole device.
	if err := proj.VerifyRegion(res.Region, board); err != nil {
		t.Fatal(err)
	}
	if err := proj.VerifyRegion(frames.FullRegion(proj.Part), board); err != nil {
		t.Fatal(err)
	}
	// Corrupt one frame on the device; verification must now fail.
	rb := board.Readback()
	bc := proj.Part.CLBBit(3, res.Region.C1, 100)
	rb.SetBit(bc, !rb.Bit(bc))
	proj2, err := NewProjectForPart(proj.Part, rb)
	if err != nil {
		t.Fatal(err)
	}
	if err := proj2.VerifyRegion(res.Region, board); err == nil {
		t.Fatal("verification missed a corrupted frame")
	}
	// Invalid region rejected.
	if err := proj.VerifyRegion(frames.Region{R1: 0, C1: 0, R2: 99, C2: 0}, board); err == nil {
		t.Fatal("invalid region accepted")
	}
}

func TestUpdateBRAM(t *testing.T) {
	base, _ := setup(t)
	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	board := xhwif.NewBoard(proj.Part)
	if _, err := board.Download(base.Bitstream); err != nil {
		t.Fatal(err)
	}
	var rom [device.BRAMWordsPerBlock]uint16
	for i := range rom {
		rom[i] = uint16(3 * i)
	}
	res, err := proj.UpdateBRAM(GenerateOptions{WriteBack: true}, func(jb *jbits.JBits) error {
		return jb.SetBRAMContent(1, 2, &rom)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only the right BRAM column's frames are carried; the partial is tiny.
	if len(res.FARs) != device.FramesBRAMCol {
		t.Fatalf("BRAM partial carries %d frames, want %d", len(res.FARs), device.FramesBRAMCol)
	}
	for _, far := range res.FARs {
		if far.BlockType() != device.BlockBRAM || far.Major() != 1 {
			t.Fatalf("BRAM partial carries stray frame %v", far)
		}
	}
	if len(res.Bitstream) > len(base.Bitstream)/10 {
		t.Fatalf("BRAM partial unexpectedly large: %d bytes", len(res.Bitstream))
	}
	// Download and verify: the board's BRAM holds the ROM, logic untouched.
	before := board.Readback()
	if _, err := board.Download(res.Bitstream); err != nil {
		t.Fatal(err)
	}
	after := board.Readback()
	jb := jbits.New(after)
	got, err := jb.GetBRAMContent(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if *got != rom {
		t.Fatal("BRAM content did not reach the device")
	}
	diff, err := after.Diff(before)
	if err != nil {
		t.Fatal(err)
	}
	for _, far := range diff {
		if far.BlockType() != device.BlockBRAM {
			t.Fatalf("BRAM update changed logic frame %v", far)
		}
	}
	if !after.Equal(proj.Base) {
		t.Fatal("write-back and device state diverged")
	}
	// A no-op update is rejected.
	if _, err := proj.UpdateBRAM(GenerateOptions{}, func(jb *jbits.JBits) error { return nil }); err == nil {
		t.Fatal("no-op BRAM update accepted")
	}
	// Logic-touching updates are rejected.
	if _, err := proj.UpdateBRAM(GenerateOptions{}, func(jb *jbits.JBits) error {
		return jb.SetLUT(0, 0, 0, device.LUTF, 0xFFFF)
	}); err == nil {
		t.Fatal("logic-touching BRAM update accepted")
	}
}

func TestUpdateBRAMCompressed(t *testing.T) {
	base, _ := setup(t)
	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	set := func(jb *jbits.JBits) error { return jb.SetBRAMWord(0, 0, 7, 0xBEEF) }
	plain, err := proj.UpdateBRAM(GenerateOptions{}, set)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := proj.UpdateBRAM(GenerateOptions{Compress: true}, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Bitstream) >= len(plain.Bitstream) {
		t.Fatalf("compressed BRAM partial (%d B) not smaller than plain (%d B)",
			len(comp.Bitstream), len(plain.Bitstream))
	}
	// Both must produce identical device state.
	a, b := proj.Base.Clone(), proj.Base.Clone()
	if _, err := bitstream.Apply(a, plain.Bitstream); err != nil {
		t.Fatal(err)
	}
	if _, err := bitstream.Apply(b, comp.Bitstream); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("compressed/plain BRAM partials disagree")
	}
}

// TestEndToEndOnXCV300 exercises the whole pipeline on a mid-size family
// member, guarding against small-device-only assumptions.
func TestEndToEndOnXCV300(t *testing.T) {
	if testing.Short() {
		t.Skip("larger device")
	}
	p := device.MustByName("XCV300")
	base, err := flow.BuildBase(context.Background(), p, []designs.Instance{
		{Prefix: "u1/", Gen: designs.Counter{Bits: 8}},
		{Prefix: "u2/", Gen: designs.StringMatcher{Pattern: "xcv"}},
		{Prefix: "u3/", Gen: designs.SBoxBank{N: 10, Seed: 4}},
	}, flow.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	variant, err := flow.BuildVariant(context.Background(), base, "u1/", designs.LFSR{Bits: 8, Taps: []int{7, 5, 4, 3}}, flow.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Part != p {
		t.Fatalf("inferred %s", proj.Part.Name)
	}
	m, err := proj.AddModule("v", variant.XDL, variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	board := xhwif.NewBoard(p)
	if _, err := board.Download(base.Bitstream); err != nil {
		t.Fatal(err)
	}
	res, _, err := proj.GenerateAndDownload(m, board, GenerateOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := proj.VerifyRegion(res.Region, board); err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Region.Cols()) / float64(p.Cols)
	ratio := float64(len(res.Bitstream)) / float64(len(base.Bitstream))
	if ratio > frac*1.35 {
		t.Fatalf("XCV300 partial ratio %.3f vs column fraction %.3f", ratio, frac)
	}
}

// TestGeneratePartialAll checks the concurrent multi-module generator: the
// results match serial GeneratePartial calls byte for byte regardless of
// worker count, the base state is untouched, and WriteBack is rejected.
func TestGeneratePartialAll(t *testing.T) {
	base, _ := setup(t)
	variants := []designs.Generator{
		designs.LFSR{Bits: 6},
		designs.LFSR{Bits: 6, Taps: []int{5, 2}},
		designs.Counter{Bits: 6},
	}
	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	mods := make([]*Module, len(variants))
	for i, gen := range variants {
		va, err := flow.BuildVariant(context.Background(), base, "u1/", gen, flow.Options{Seed: int64(20 + i)})
		if err != nil {
			t.Fatal(err)
		}
		if mods[i], err = proj.AddModule(gen.Name(), va.XDL, va.UCF); err != nil {
			t.Fatal(err)
		}
	}
	want := make([]*Result, len(mods))
	for i, m := range mods {
		if want[i], err = proj.GeneratePartial(m, GenerateOptions{Strict: true}); err != nil {
			t.Fatal(err)
		}
	}
	before := proj.Base.Clone()
	for _, workers := range []int{1, 4} {
		got, err := proj.GeneratePartialAll(mods, GenerateOptions{Strict: true}, parallel.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i := range mods {
			if !bytes.Equal(got[i].Bitstream, want[i].Bitstream) {
				t.Fatalf("workers=%d: module %d bitstream differs from serial", workers, i)
			}
			if got[i].Region != want[i].Region || got[i].FramesChanged != want[i].FramesChanged {
				t.Fatalf("workers=%d: module %d metadata differs from serial", workers, i)
			}
		}
	}
	if !proj.Base.Equal(before) {
		t.Fatal("GeneratePartialAll modified the base configuration")
	}
	if _, err := proj.GeneratePartialAll(mods, GenerateOptions{WriteBack: true}); err == nil {
		t.Fatal("GeneratePartialAll accepted WriteBack")
	}
}

// alwaysFail simulates a dead configuration link: every download errors and
// the device keeps its state.
type alwaysFail struct{ *xhwif.Board }

func (alwaysFail) Download([]byte) (xhwif.DownloadStats, error) {
	return xhwif.DownloadStats{}, context.DeadlineExceeded
}

// DownloadCtx overrides the method promoted from the embedded Board so the
// link stays dead on the context-aware path too.
func (a alwaysFail) DownloadCtx(context.Context, []byte) (xhwif.DownloadStats, error) {
	return a.Download(nil)
}

// TestGenerateAndDownloadCtxCancellation checks the context plumbing and the
// transactional contract: a cancelled context aborts before touching the
// board, and a failed download leaves the project view untouched so it never
// diverges from the device.
func TestGenerateAndDownloadCtxCancellation(t *testing.T) {
	base, variant := setup(t)
	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	m, err := proj.AddModule("v", variant.XDL, variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	board := xhwif.NewBoard(proj.Part)
	if _, err := board.Download(base.Bitstream); err != nil {
		t.Fatal(err)
	}
	pre := board.Readback()
	preBase := proj.Base.Clone()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := proj.GenerateAndDownloadCtx(ctx, m, board, GenerateOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !board.Readback().Equal(pre) {
		t.Fatal("cancelled download touched the board")
	}

	// Failed download: project Base must not advance past the device.
	if _, _, err := proj.GenerateAndDownloadCtx(context.Background(), m, alwaysFail{board}, GenerateOptions{}); err == nil {
		t.Fatal("dead link reported success")
	}
	if !proj.Base.Equal(preBase) {
		t.Fatal("project view advanced although the download failed")
	}
	if !board.Readback().Equal(pre) {
		t.Fatal("failed download changed the device")
	}
}

// TestGeneratePartialAllCtxCancelled checks that a pre-cancelled context
// returns context.Canceled without generating anything.
func TestGeneratePartialAllCtxCancelled(t *testing.T) {
	base, variant := setup(t)
	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	m, err := proj.AddModule("v", variant.XDL, variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := proj.GeneratePartialAllCtx(ctx, []*Module{m}, GenerateOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
