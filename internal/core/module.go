package core

import (
	"fmt"
	"strings"

	"repro/internal/bitgen"
	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/jbits"
	"repro/internal/phys"
	"repro/internal/ucf"
)

// Module is one sub-module variant registered with a project: the physical
// design recovered from its XDL, the constraints that floorplanned it, and
// the containment analysis JPG performed on it.
type Module struct {
	Name string
	Phys *phys.Design
	Cons *ucf.Constraints

	// Declared is the floorplan region from the UCF AREA_GROUP constraints
	// (the union when cells belong to several groups); ok reports whether
	// any cell was constrained.
	Declared   frames.Region
	DeclaredOK bool
	// Touched is the bounding region of everything the module actually
	// configures: cell sites and routed PIPs.
	Touched frames.Region

	// fp is the content fingerprint of the module's XDL/UCF source texts
	// (set by Project.AddModule; empty for modules built another way,
	// which are then never memoized).
	fp string
}

func newModule(name string, design *phys.Design, cons *ucf.Constraints) (*Module, error) {
	m := &Module{Name: name, Phys: design, Cons: cons}

	// Declared region: union of the AREA_GROUP ranges of the module's cells.
	for _, c := range design.Netlist.Cells {
		rg, ok := cons.RegionFor(c.Name)
		if !ok {
			continue
		}
		if !m.DeclaredOK {
			m.Declared = rg
			m.DeclaredOK = true
			continue
		}
		m.Declared = frames.Region{
			R1: min(m.Declared.R1, rg.R1), C1: min(m.Declared.C1, rg.C1),
			R2: max(m.Declared.R2, rg.R2), C2: max(m.Declared.C2, rg.C2),
		}
	}

	// Touched region: cells plus routing.
	first := true
	grow := func(r, c int) {
		if first {
			m.Touched = frames.Region{R1: r, C1: c, R2: r, C2: c}
			first = false
			return
		}
		m.Touched.R1, m.Touched.C1 = min(m.Touched.R1, r), min(m.Touched.C1, c)
		m.Touched.R2, m.Touched.C2 = max(m.Touched.R2, r), max(m.Touched.C2, c)
	}
	for _, site := range design.Cells {
		grow(site.Row, site.Col)
	}
	for _, route := range design.Routes {
		for _, pip := range route.PIPs {
			grow(pip.Row, pip.Col)
		}
	}
	if first {
		return nil, fmt.Errorf("module has no placed cells")
	}
	return m, nil
}

// writeRegion resolves the full-height column region a partial bitstream for
// this module must rewrite. In strict mode the module must fit its declared
// columns; otherwise the columns widen to cover everything touched.
func (m *Module) writeRegion(p *device.Part, strict bool) (frames.Region, error) {
	c1, c2 := m.Touched.C1, m.Touched.C2
	if m.DeclaredOK {
		if strict && (c1 < m.Declared.C1 || c2 > m.Declared.C2) {
			return frames.Region{}, fmt.Errorf(
				"module %s escapes its declared columns: declared %v, touched %v",
				m.Name, m.Declared, m.Touched)
		}
		c1 = min(c1, m.Declared.C1)
		c2 = max(c2, m.Declared.C2)
	}
	return frames.Region{R1: 0, C1: c1, R2: p.Rows - 1, C2: c2}, nil
}

// program replays the module's configuration through the JBits layer.
func (m *Module) program(jb *jbits.JBits) error {
	return bitgen.Program(jb, m.Phys)
}

// Stats summarises the module for reports and the CLI.
func (m *Module) Stats() string {
	st := m.Phys.Netlist.Stats()
	return fmt.Sprintf("%s: %d LUTs, %d FFs, %d nets, %d pips, touched %v",
		m.Name, st.LUTs, st.DFFs, st.Nets, m.Phys.RoutedPIPCount(), m.Touched)
}

// FloorplanASCII renders the device floorplan with the module's footprint,
// the textual analogue of the JPG GUI's floorplan view (paper Figure 3):
// '#' marks CLBs holding module cells, '+' tiles touched only by routing,
// '|' the column span a partial bitstream will rewrite.
func (m *Module) FloorplanASCII(p *device.Part) string {
	region, err := m.writeRegion(p, false)
	if err != nil {
		region = m.Touched
	}
	cells := map[[2]int]bool{}
	for _, site := range m.Phys.Cells {
		cells[[2]int{site.Row, site.Col}] = true
	}
	routed := map[[2]int]bool{}
	for _, route := range m.Phys.Routes {
		for _, pip := range route.PIPs {
			routed[[2]int{pip.Row, pip.Col}] = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s floorplan on %s (cols %d..%d rewritten)\n",
		m.Name, p.Name, region.C1+1, region.C2+1)
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			switch {
			case cells[[2]int{r, c}]:
				b.WriteByte('#')
			case routed[[2]int{r, c}]:
				b.WriteByte('+')
			case c >= region.C1 && c <= region.C2:
				b.WriteByte('|')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
