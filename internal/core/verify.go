package core

import (
	"context"
	"fmt"

	"repro/internal/bitlint"
	"repro/internal/device"
	"repro/internal/obs"
	jpglog "repro/internal/obs/log"
)

// Partial-bitstream verification (GenerateOptions.Verify): before a partial
// leaves the tool, the independent verifier re-derives what downloading it
// onto the current base configuration would do and the result is checked
// against what the generation claims. This is the decode-side counterpart of
// VerifyRegion's readback check — no board required.

var mVerifyRuns = obs.GetCounter("core.verify_runs")

// verifyResult lints a generated partial against the project's base
// configuration and the result's declared frame set. It runs after both the
// direct and the memoized generation paths, so a corrupted cache entry is
// caught the same way a writer bug is.
func (p *Project) verifyResult(ctx context.Context, m *Module, res *Result) error {
	_, sp := obs.Start(ctx, "core.verify")
	sp.SetStr("module", m.Name)
	rep, err := bitlint.VerifyPartial(p.Base, res.Bitstream)
	if err == nil {
		err = p.checkDeclaredFrames(rep, res)
	}
	sp.EndErr(err)
	if err != nil {
		obs.CountError("verify")
		jpglog.Warn(ctx, "core.verify", "module", m.Name, "error", err.Error())
		return fmt.Errorf("core: partial verification for %s: %w", m.Name, err)
	}
	mVerifyRuns.Inc()
	jpglog.Info(ctx, "core.verify", "module", m.Name,
		"findings", len(rep.Findings), "frames", rep.FramesWritten)
	return nil
}

// checkDeclaredFrames requires the decoded partial to change the base only
// within the frames the result declares it carries.
func (p *Project) checkDeclaredFrames(rep *bitlint.Report, res *Result) error {
	if rep.Frames == nil {
		return fmt.Errorf("no reconstructed image")
	}
	declared := make(map[device.FAR]bool, len(res.FARs))
	for _, f := range res.FARs {
		declared[f] = true
	}
	diffs, err := rep.Frames.Diff(p.Base)
	if err != nil {
		return err
	}
	for _, f := range diffs {
		if !declared[f] {
			return fmt.Errorf("partial rewrites undeclared frame %v", f)
		}
	}
	return nil
}
