package cache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func key(s string) Key {
	h := NewHasher("test")
	h.Str("k", s)
	return h.Sum()
}

func TestHasherLabelledFieldsCannotAlias(t *testing.T) {
	// (a="bc") vs (ab="c"): same concatenated bytes, different fields.
	h1 := NewHasher("d")
	h1.Str("a", "bc")
	h2 := NewHasher("d")
	h2.Str("ab", "c")
	if h1.Sum() == h2.Sum() {
		t.Fatal("field boundaries alias")
	}
	// Different domains separate identical fields.
	h3 := NewHasher("d1")
	h3.Str("a", "b")
	h4 := NewHasher("d2")
	h4.Str("a", "b")
	if h3.Sum() == h4.Sum() {
		t.Fatal("domains do not separate key spaces")
	}
	// Same inputs, same key.
	h5 := NewHasher("d")
	h5.Str("a", "bc")
	if h1.Sum() != h5.Sum() {
		t.Fatal("hasher not deterministic")
	}
}

func TestHasherFieldKinds(t *testing.T) {
	mk := func(build func(h *Hasher)) Key {
		h := NewHasher("kinds")
		build(h)
		return h.Sum()
	}
	keys := []Key{
		mk(func(h *Hasher) { h.Int("v", 1) }),
		mk(func(h *Hasher) { h.Int("v", 2) }),
		mk(func(h *Hasher) { h.Float("v", 1) }),
		mk(func(h *Hasher) { h.Bool("v", true) }),
		mk(func(h *Hasher) { h.Bool("v", false) }),
		mk(func(h *Hasher) { h.Bytes("v", []byte{9, 9}) }),
		mk(func(h *Hasher) { h.Key("v", key("x")) }),
	}
	seen := map[Key]int{}
	for i, k := range keys {
		if j, dup := seen[k]; dup {
			t.Fatalf("key %d collides with key %d", i, j)
		}
		seen[k] = i
	}
}

func TestGetOrComputeMemoizes(t *testing.T) {
	c := New(Options{NoDisk: true})
	calls := 0
	compute := func() ([]byte, error) {
		calls++
		return []byte("value"), nil
	}
	v, hit, err := c.GetOrCompute("s", key("a"), compute)
	if err != nil || hit || string(v) != "value" {
		t.Fatalf("first call: v=%q hit=%v err=%v", v, hit, err)
	}
	// Mutating the returned slice must not poison the store.
	v[0] = 'X'
	v2, hit, err := c.GetOrCompute("s", key("a"), compute)
	if err != nil || !hit || string(v2) != "value" {
		t.Fatalf("second call: v=%q hit=%v err=%v", v2, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Stages["s"].Hits != 1 || st.Stages["s"].Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetOrComputeErrorNotStored(t *testing.T) {
	c := New(Options{NoDisk: true})
	boom := errors.New("boom")
	_, _, err := c.GetOrCompute("s", key("a"), func() ([]byte, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, hit, err := c.GetOrCompute("s", key("a"), func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || hit || string(v) != "ok" {
		t.Fatalf("after error: v=%q hit=%v err=%v", v, hit, err)
	}
}

func TestLRUEvictionByEntries(t *testing.T) {
	c := New(Options{MaxEntries: 2, NoDisk: true})
	put := func(s string) {
		c.GetOrCompute("s", key(s), func() ([]byte, error) { return []byte(s), nil })
	}
	put("a")
	put("b")
	// Touch "a" so "b" is the LRU victim.
	if _, hit, _ := c.GetOrCompute("s", key("a"), func() ([]byte, error) { return []byte("a"), nil }); !hit {
		t.Fatal("a evicted early")
	}
	put("c")
	if _, hit, _ := c.GetOrCompute("s", key("b"), func() ([]byte, error) { return []byte("b"), nil }); hit {
		t.Fatal("b survived past the entry bound")
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	c := New(Options{MaxBytes: 100, NoDisk: true})
	big := bytes.Repeat([]byte("x"), 60)
	c.GetOrCompute("s", key("a"), func() ([]byte, error) { return big, nil })
	c.GetOrCompute("s", key("b"), func() ([]byte, error) { return big, nil })
	st := c.Stats()
	if st.Bytes > 100 {
		t.Fatalf("resident bytes %d exceed bound", st.Bytes)
	}
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

// TestSingleFlight pins the dedup contract with a counting stage stub: N
// concurrent workers requesting one missing key run the computation exactly
// once, and every worker gets the value.
func TestSingleFlight(t *testing.T) {
	c := New(Options{NoDisk: true})
	var calls atomic.Int64
	release := make(chan struct{})
	const workers = 16
	var wg sync.WaitGroup
	results := make([]string, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.GetOrCompute("stage", key("shared"), func() ([]byte, error) {
				calls.Add(1)
				<-release // hold the flight open until all workers have piled in
				return []byte("result"), nil
			})
			results[i], errs[i] = string(v), err
		}(i)
	}
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("counting stub ran %d times, want 1", n)
	}
	for i := range results {
		if errs[i] != nil || results[i] != "result" {
			t.Fatalf("worker %d: v=%q err=%v", i, results[i], errs[i])
		}
	}
	st := c.Stats()
	if st.Stages["stage"].Misses != 1 {
		t.Fatalf("misses = %d, want 1 (stats %+v)", st.Stages["stage"].Misses, st)
	}
	if st.Stages["stage"].Hits != workers-1 {
		t.Fatalf("hits = %d, want %d", st.Stages["stage"].Hits, workers-1)
	}
}

func TestSingleFlightErrorRetries(t *testing.T) {
	c := New(Options{NoDisk: true})
	var calls atomic.Int64
	boom := errors.New("boom")
	release := make(chan struct{})
	const workers = 4
	var wg sync.WaitGroup
	errCount := atomic.Int64{}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := c.GetOrCompute("s", key("k"), func() ([]byte, error) {
				calls.Add(1)
				<-release
				return nil, boom
			})
			if err != nil {
				errCount.Add(1)
			}
		}()
	}
	close(release)
	wg.Wait()
	if errCount.Load() != workers {
		t.Fatalf("%d workers errored, want %d", errCount.Load(), workers)
	}
	// Waiters retry after a failed flight, so the stub may run up to
	// `workers` times, but never more.
	if n := calls.Load(); n < 1 || n > workers {
		t.Fatalf("stub ran %d times", n)
	}
}

func TestGetOrComputeValue(t *testing.T) {
	c := New(Options{NoDisk: true})
	type obj struct{ n int }
	calls := 0
	get := func() (any, bool, error) {
		return c.GetOrComputeValue("map", key("o"), func() (any, int64, error) {
			calls++
			return &obj{n: 42}, 100, nil
		})
	}
	v1, hit1, err1 := get()
	v2, hit2, err2 := get()
	if err1 != nil || err2 != nil || hit1 || !hit2 {
		t.Fatalf("hits=(%v,%v) errs=(%v,%v)", hit1, hit2, err1, err2)
	}
	if v1 != v2 {
		t.Fatal("object entries must be shared, not copied")
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times", calls)
	}
}

func TestRemove(t *testing.T) {
	c := New(Options{NoDisk: true})
	c.GetOrCompute("s", key("a"), func() ([]byte, error) { return []byte("v"), nil })
	c.Remove("s", key("a"))
	_, hit, _ := c.GetOrCompute("s", key("a"), func() ([]byte, error) { return []byte("v"), nil })
	if hit {
		t.Fatal("entry survived Remove")
	}
}

func TestNilCacheDegradesToCompute(t *testing.T) {
	var c *Cache
	v, hit, err := c.GetOrCompute("s", key("a"), func() ([]byte, error) { return []byte("v"), nil })
	if err != nil || hit || string(v) != "v" {
		t.Fatalf("nil GetOrCompute: v=%q hit=%v err=%v", v, hit, err)
	}
	o, hit, err := c.GetOrComputeValue("s", key("a"), func() (any, int64, error) { return 7, 1, nil })
	if err != nil || hit || o != 7 {
		t.Fatalf("nil GetOrComputeValue: o=%v hit=%v err=%v", o, hit, err)
	}
	c.Remove("s", key("a"))
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("nil Stats = %+v", st)
	}
	if c.Dir() != "" {
		t.Fatal("nil Dir")
	}
}

func TestContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context has a cache")
	}
	c := New(Options{NoDisk: true})
	ctx := With(context.Background(), c)
	if FromContext(ctx) != c {
		t.Fatal("cache not recovered from context")
	}
	if With(context.Background(), nil) != context.Background() {
		t.Fatal("With(nil) should be a no-op")
	}
}

func TestEnvEnabled(t *testing.T) {
	cases := []struct {
		mode, dir string
		want      bool
	}{
		{"", "", false},
		{"", "/tmp/x", true},
		{"1", "", true},
		{"on", "", true},
		{"mem", "", true},
		{"0", "/tmp/x", false},
		{"off", "/tmp/x", false},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("mode=%q dir=%q", tc.mode, tc.dir), func(t *testing.T) {
			t.Setenv(EnvMode, tc.mode)
			t.Setenv(EnvDir, tc.dir)
			if got := EnvEnabled(); got != tc.want {
				t.Fatalf("EnvEnabled() = %v, want %v", got, tc.want)
			}
		})
	}
}
