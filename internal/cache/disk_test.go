package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestDiskRoundTripAcrossCaches(t *testing.T) {
	dir := t.TempDir()
	k := key("persist")
	payload := []byte("routed ncd bytes")

	c1 := New(Options{Dir: dir})
	c1.GetOrCompute("route", k, func() ([]byte, error) { return payload, nil })

	// A fresh cache over the same directory must hit without computing.
	c2 := New(Options{Dir: dir})
	v, hit, err := c2.GetOrCompute("route", k, func() ([]byte, error) {
		t.Fatal("compute ran despite a disk entry")
		return nil, nil
	})
	if err != nil || !hit || !bytes.Equal(v, payload) {
		t.Fatalf("disk round-trip: v=%q hit=%v err=%v", v, hit, err)
	}
	if c2.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", c2.Dir(), dir)
	}
}

func TestDiskEntryLayout(t *testing.T) {
	dir := t.TempDir()
	k := key("layout")
	c := New(Options{Dir: dir})
	c.GetOrCompute("place", k, func() ([]byte, error) { return []byte("x"), nil })

	hexk := k.String()
	path := filepath.Join(dir, "place", hexk[:2], hexk)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("entry not at expected path: %v", err)
	}
	if !bytes.HasPrefix(raw, diskMagic) {
		t.Fatal("entry missing magic prefix")
	}
	// No temp files should be left behind.
	matches, _ := filepath.Glob(filepath.Join(dir, "place", hexk[:2], ".tmp-*"))
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}
}

// TestDiskCorruptionDegradesToMiss covers the corruption-tolerance contract:
// any damaged container (truncated, wrong magic, flipped payload byte, bad
// length) reads as a miss, is removed, and the slot is rewritten by the next
// compute.
func TestDiskCorruptionDegradesToMiss(t *testing.T) {
	k := key("fragile")
	payload := []byte("some stage output worth caching")

	corruptions := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"flipped-payload-byte", func(b []byte) []byte { b[len(diskMagic)+8] ^= 0x01; return b }},
		{"bad-length", func(b []byte) []byte { b[len(diskMagic)+7] ^= 0x01; return b }},
		{"trailing-garbage", func(b []byte) []byte { return append(b, 0xde, 0xad) }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c1 := New(Options{Dir: dir})
			c1.GetOrCompute("s", k, func() ([]byte, error) { return payload, nil })

			hexk := k.String()
			path := filepath.Join(dir, "s", hexk[:2], hexk)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mutate(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			c2 := New(Options{Dir: dir})
			calls := 0
			v, hit, err := c2.GetOrCompute("s", k, func() ([]byte, error) {
				calls++
				return payload, nil
			})
			if err != nil || hit || calls != 1 || !bytes.Equal(v, payload) {
				t.Fatalf("corrupt entry: v=%q hit=%v calls=%d err=%v", v, hit, calls, err)
			}
			// The recompute rewrites a valid entry.
			c3 := New(Options{Dir: dir})
			if _, hit, _ := c3.GetOrCompute("s", k, func() ([]byte, error) { return payload, nil }); !hit {
				t.Fatal("slot not rewritten after corruption recovery")
			}
		})
	}
}

func TestContainerCodec(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("a"), bytes.Repeat([]byte{0xab}, 1<<16)} {
		enc := encodeContainer(payload)
		dec, ok := decodeContainer(enc)
		if !ok || !bytes.Equal(dec, payload) {
			t.Fatalf("round-trip failed for %d-byte payload (ok=%v)", len(payload), ok)
		}
	}
	if _, ok := decodeContainer([]byte("not a container")); ok {
		t.Fatal("garbage decoded")
	}
}

// BenchmarkDiskRoundTrip measures a put followed by a cold read of one entry
// through the disk tier, the cost a warm cross-process cache pays per stage.
func BenchmarkDiskRoundTrip(b *testing.B) {
	dir := b.TempDir()
	d := &diskStore{root: dir}
	payload := bytes.Repeat([]byte{0x5a}, 64<<10) // a typical routed-NCD size
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := key(fmt.Sprintf("bench-%d", i))
		d.put("bench", k, payload)
		got, ok := d.get("bench", k)
		if !ok || len(got) != len(payload) {
			b.Fatal("round trip failed")
		}
	}
}
