package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testKey(s string) Key {
	h := NewHasher("test/flight")
	h.Str("k", s)
	return h.Sum()
}

func TestGroupCoalescesConcurrentCalls(t *testing.T) {
	var g Group
	var execs atomic.Int64
	release := make(chan struct{})

	const n = 16
	var wg sync.WaitGroup
	vals := make([]any, n)
	shareds := make([]bool, n)
	errs := make([]error, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			vals[i], shareds[i], errs[i] = g.Do(context.Background(), testKey("a"), func() (any, error) {
				execs.Add(1)
				<-release
				return "result", nil
			})
		}(i)
	}
	// Let the leader start and the followers pile up, then release.
	deadline := time.Now().Add(2 * time.Second)
	for execs.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for !g.Pending(testKey("a")) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	leaders := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("call %d: %v", i, errs[i])
		}
		if vals[i] != "result" {
			t.Fatalf("call %d value %v", i, vals[i])
		}
		if !shareds[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d callers report shared=false, want exactly 1", leaders)
	}
}

func TestGroupDistinctKeysDoNotCoalesce(t *testing.T) {
	var g Group
	var execs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.Do(context.Background(), testKey(fmt.Sprint(i)), func() (any, error) {
				execs.Add(1)
				return i, nil
			})
		}(i)
	}
	wg.Wait()
	if got := execs.Load(); got != 4 {
		t.Fatalf("fn executed %d times, want 4", got)
	}
}

func TestGroupFollowerCancellation(t *testing.T) {
	var g Group
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)

	go g.Do(context.Background(), testKey("slow"), func() (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, testKey("slow"), func() (any, error) { return nil, nil })
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled follower still blocked on the leader")
	}
}

// TestGroupLeaderFailurePromotesOneFollower pins the retry semantics: when
// the leader errors, the waiters do not stampede — they re-enter one at a
// time, so a deterministic failure costs one execution per waiter at most,
// serially, and a subsequent success is shared by everyone still waiting.
func TestGroupLeaderFailurePromotesOneFollower(t *testing.T) {
	var g Group
	var execs atomic.Int64
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})

	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := g.Do(context.Background(), testKey("fail"), func() (any, error) {
			close(leaderIn)
			<-leaderGo
			execs.Add(1)
			return nil, errors.New("boom")
		})
		leaderErr <- err
	}()
	<-leaderIn

	const n = 8
	var wg sync.WaitGroup
	var reruns atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := g.Do(context.Background(), testKey("fail"), func() (any, error) {
				execs.Add(1)
				reruns.Add(1)
				return "recovered", nil
			})
			if err != nil {
				t.Errorf("follower error: %v", err)
			}
			if v != "recovered" {
				t.Errorf("follower value %v", v)
			}
		}()
	}
	// Give the followers time to join the failing flight, then let it fail.
	time.Sleep(10 * time.Millisecond)
	close(leaderGo)
	wg.Wait()

	if err := <-leaderErr; err == nil || err.Error() != "boom" {
		t.Fatalf("leader error = %v, want boom", err)
	}
	if got := reruns.Load(); got < 1 {
		t.Fatalf("no follower was promoted after the leader failed")
	}
	// Promotion serialises retries: at worst the failed leader plus one run
	// per waiter, never a concurrent stampede beyond the waiter count.
	if got := execs.Load(); got > n+1 {
		t.Fatalf("executions %d exceed failed leader + %d waiters", got, n)
	}
}
