package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"os"
	"path/filepath"
)

// diskStore is the optional persistent tier. Entries live at
// <root>/<stage>/<hex[:2]>/<hex>, each a self-validating container:
//
//	magic "JPGCACHE1\n" | uint64 big-endian payload length | payload | sha256(payload)
//
// Writes go to a temp file in the final directory and are renamed into
// place, so readers never observe a partial entry. Reads validate magic,
// length and checksum; any mismatch (truncation, corruption, a future
// format) degrades to a miss and best-effort removes the bad file. The
// magic's trailing "1" is the container version: bump it when the framing
// changes and old entries simply stop matching.
type diskStore struct {
	root string
}

var diskMagic = []byte("JPGCACHE1\n")

func (d *diskStore) path(stage string, k Key) string {
	hexk := k.String()
	return filepath.Join(d.root, stage, hexk[:2], hexk)
}

func (d *diskStore) get(stage string, k Key) ([]byte, bool) {
	raw, err := os.ReadFile(d.path(stage, k))
	if err != nil {
		return nil, false
	}
	payload, ok := decodeContainer(raw)
	if !ok {
		mDiskError.Inc()
		os.Remove(d.path(stage, k))
		return nil, false
	}
	return payload, true
}

func (d *diskStore) put(stage string, k Key, payload []byte) {
	dir := filepath.Dir(d.path(stage, k))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		mDiskError.Inc()
		return
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		mDiskError.Inc()
		return
	}
	_, werr := tmp.Write(encodeContainer(payload))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		mDiskError.Inc()
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), d.path(stage, k)); err != nil {
		mDiskError.Inc()
		os.Remove(tmp.Name())
		return
	}
	mDiskWrite.Inc()
}

func (d *diskStore) remove(stage string, k Key) {
	os.Remove(d.path(stage, k))
}

func encodeContainer(payload []byte) []byte {
	out := make([]byte, 0, len(diskMagic)+8+len(payload)+sha256.Size)
	out = append(out, diskMagic...)
	var lenb [8]byte
	binary.BigEndian.PutUint64(lenb[:], uint64(len(payload)))
	out = append(out, lenb[:]...)
	out = append(out, payload...)
	sum := sha256.Sum256(payload)
	return append(out, sum[:]...)
}

func decodeContainer(raw []byte) ([]byte, bool) {
	if len(raw) < len(diskMagic)+8+sha256.Size {
		return nil, false
	}
	if !bytes.Equal(raw[:len(diskMagic)], diskMagic) {
		return nil, false
	}
	raw = raw[len(diskMagic):]
	n := binary.BigEndian.Uint64(raw[:8])
	raw = raw[8:]
	if uint64(len(raw)) != n+sha256.Size {
		return nil, false
	}
	payload, sum := raw[:n], raw[n:]
	want := sha256.Sum256(payload)
	if !bytes.Equal(sum, want[:]) {
		return nil, false
	}
	return payload, true
}
