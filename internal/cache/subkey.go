package cache

import "strconv"

// SubKey derives a fine-grained child key from a coarse stage key. Stage
// keys chain whole artifacts (place -> route -> bitgen); sub-stage keys
// subdivide one artifact by component — the incremental flow keys each CLB
// column's frame payload under the structural key of the run that produced
// it, so a warm edit storm hits per column rather than per design. The
// domain names the sub-stage ("flow.col/v1" etc.) and fields are hashed in
// order with positional labels.
func SubKey(parent Key, domain string, fields ...string) Key {
	h := NewHasher(domain)
	h.Key("parent", parent)
	for i, f := range fields {
		h.Str("f"+strconv.Itoa(i), f)
	}
	return h.Sum()
}
