package cache

import "context"

type ctxKey struct{}

// With returns a context carrying the cache. The flow layer consults only
// the context (never a process global), so library callers opt in per run
// and existing timing-sensitive experiments are unaffected unless a cache
// is attached explicitly.
func With(ctx context.Context, c *Cache) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext returns the cache attached by With, or nil.
func FromContext(ctx context.Context) *Cache {
	if ctx == nil {
		return nil
	}
	c, _ := ctx.Value(ctxKey{}).(*Cache)
	return c
}
