// Package cache is a content-addressed memoization layer for the CAD flow.
//
// The paper's economic claim (C1/C3) is that partial reconfiguration avoids
// redundant CAD work; this package generalises the same amortization to every
// stage of the reproduction's flow. A stage result (a placement, a routed
// design, a bitstream, a generated partial) is stored under a Key derived
// from a stable hash of everything the stage's output depends on — netlist
// content, constraints, part, region, seed, options — so byte-identical
// inputs fetch byte-identical outputs instead of recomputing them.
//
// The cache is a concurrency-safe in-memory LRU (bounded by entry count and
// approximate bytes) with an optional on-disk store under $JPG_CACHE_DIR
// (atomic rename writes, corruption-tolerant reads that degrade to a miss).
// Lookups are single-flighted: when two workers request the same missing key
// concurrently, one computes and the other waits for the result, so a warm
// pool never duplicates in-flight work.
//
// Correctness contract: a cache must never change results, only wall-clock.
// Keys therefore cover every input a stage consumes, and the flow's
// determinism tests assert byte-identical artifacts with the cache cold,
// warm, and disabled, at any worker count. All methods are safe on a nil
// *Cache (they degrade to straight computation), so callers thread an
// optional cache without branching.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"os"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Key is a content-address: a SHA-256 over a stage's labelled inputs.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (the on-disk file name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Hasher accumulates labelled fields into a Key. Every field is written as
// (label, length, value) so field boundaries can never alias, and the
// constructor's domain string separates key spaces of different stages.
type Hasher struct {
	h   hash.Hash
	buf [8]byte
}

// NewHasher starts a hash in the given domain (e.g. "flow.place/v1").
// Bump the domain's version suffix whenever the set or meaning of hashed
// fields changes, so stale disk entries can never be misread.
func NewHasher(domain string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.write("domain", []byte(domain))
	return h
}

func (h *Hasher) write(label string, val []byte) {
	binary.BigEndian.PutUint64(h.buf[:], uint64(len(label)))
	h.h.Write(h.buf[:])
	h.h.Write([]byte(label))
	binary.BigEndian.PutUint64(h.buf[:], uint64(len(val)))
	h.h.Write(h.buf[:])
	h.h.Write(val)
}

// Str hashes a labelled string field.
func (h *Hasher) Str(label, v string) { h.write(label, []byte(v)) }

// Bytes hashes a labelled byte-slice field.
func (h *Hasher) Bytes(label string, v []byte) { h.write(label, v) }

// Int hashes a labelled signed integer field.
func (h *Hasher) Int(label string, v int64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	h.write(label, b[:])
}

// Float hashes a labelled float field by its IEEE-754 bits.
func (h *Hasher) Float(label string, v float64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	h.write(label, b[:])
}

// Bool hashes a labelled boolean field.
func (h *Hasher) Bool(label string, v bool) {
	b := []byte{0}
	if v {
		b[0] = 1
	}
	h.write(label, b)
}

// Key hashes a labelled sub-key, chaining content addresses across stages
// (a route key includes its place key, a bitgen key its route key).
func (h *Hasher) Key(label string, k Key) { h.write(label, k[:]) }

// Sum finalises the key.
func (h *Hasher) Sum() Key {
	var k Key
	copy(k[:], h.h.Sum(nil))
	return k
}

// Environment variables configuring the process-default cache.
const (
	// EnvDir names the on-disk store directory. Setting it enables the
	// default cache with a disk tier.
	EnvDir = "JPG_CACHE_DIR"
	// EnvMode switches the default cache: "1"/"on"/"mem" enables a
	// memory-only cache, "0"/"off" disables caching even when EnvDir is
	// set. Unset defers to EnvDir.
	EnvMode = "JPG_CACHE"
)

// EnvEnabled reports whether the environment asks for a default cache
// ($JPG_CACHE_DIR set, or $JPG_CACHE on, and not explicitly switched off).
func EnvEnabled() bool {
	switch os.Getenv(EnvMode) {
	case "0", "off", "false":
		return false
	case "1", "on", "true", "mem":
		return true
	}
	return os.Getenv(EnvDir) != ""
}

var (
	defaultOnce  sync.Once
	defaultCache *Cache
)

// Default returns the process-wide cache configured from the environment,
// or nil when the environment does not enable one. The CLIs use it as their
// -cache default; the library never consults it implicitly.
func Default() *Cache {
	defaultOnce.Do(func() {
		if EnvEnabled() {
			defaultCache = New(Options{Dir: os.Getenv(EnvDir)})
		}
	})
	return defaultCache
}

// Options bounds a cache.
type Options struct {
	// MaxEntries caps the number of resident entries (default 4096).
	MaxEntries int
	// MaxBytes caps the approximate resident bytes (default 256 MiB).
	MaxBytes int64
	// Dir enables the on-disk store rooted at this directory. Empty
	// defaults to $JPG_CACHE_DIR; set NoDisk to force memory-only.
	Dir string
	// NoDisk forces a memory-only cache regardless of Dir/$JPG_CACHE_DIR.
	NoDisk bool
}

// Cache metrics (always on; see internal/obs). cache.hit/miss/evict count
// lookups and evictions across all stages; per-stage counters are registered
// as cache.hit.<stage> / cache.miss.<stage> on first use.
var (
	mHit       = obs.GetCounter("cache.hit")
	mMiss      = obs.GetCounter("cache.miss")
	mEvict     = obs.GetCounter("cache.evict")
	mBytes     = obs.GetGauge("cache.bytes")
	mEntries   = obs.GetGauge("cache.entries")
	mDiskHit   = obs.GetCounter("cache.disk_hit")
	mDiskWrite = obs.GetCounter("cache.disk_write")
	mDiskError = obs.GetCounter("cache.disk_error")
	mWaits     = obs.GetCounter("cache.flight_wait")
)

type entry struct {
	key   Key
	data  []byte // nil for object entries
	obj   any
	size  int64
	elem  *list.Element
	stage string
}

// flight is one in-progress computation other goroutines can wait on.
type flight struct {
	done chan struct{}
	data []byte
	obj  any
	err  error
}

// stageCounters tracks one stage's hits and misses for Stats reporting
// (the obs registry carries the same numbers process-wide).
type stageCounters struct {
	hits, misses int64
}

// Cache is a bounded, concurrency-safe, content-addressed store.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*entry
	lru     *list.List // front = most recently used
	bytes   int64
	flights map[Key]*flight
	stages  map[string]*stageCounters

	maxEntries int
	maxBytes   int64
	disk       *diskStore
	evictions  int64
}

// New returns a cache. See Options for bounds and the disk tier.
func New(o Options) *Cache {
	if o.MaxEntries <= 0 {
		o.MaxEntries = 4096
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 256 << 20
	}
	dir := o.Dir
	if dir == "" {
		dir = os.Getenv(EnvDir)
	}
	c := &Cache{
		entries:    map[Key]*entry{},
		lru:        list.New(),
		flights:    map[Key]*flight{},
		stages:     map[string]*stageCounters{},
		maxEntries: o.MaxEntries,
		maxBytes:   o.MaxBytes,
	}
	if dir != "" && !o.NoDisk {
		c.disk = &diskStore{root: dir}
	}
	return c
}

// Dir returns the on-disk store root ("" for memory-only or nil caches).
func (c *Cache) Dir() string {
	if c == nil || c.disk == nil {
		return ""
	}
	return c.disk.root
}

// countHit/countMiss update both the per-cache stage counters and the
// process-wide obs registry. Callers hold c.mu.
func (c *Cache) countHit(stage string) {
	c.stage(stage).hits++
	mHit.Inc()
	obs.GetCounter("cache.hit." + stage).Inc()
}

func (c *Cache) countMiss(stage string) {
	c.stage(stage).misses++
	mMiss.Inc()
	obs.GetCounter("cache.miss." + stage).Inc()
}

func (c *Cache) stage(stage string) *stageCounters {
	sc := c.stages[stage]
	if sc == nil {
		sc = &stageCounters{}
		c.stages[stage] = sc
	}
	return sc
}

// insertLocked adds an entry and evicts from the LRU tail while over bounds.
// Callers hold c.mu.
func (c *Cache) insertLocked(stage string, k Key, data []byte, obj any, size int64) {
	if old := c.entries[k]; old != nil {
		c.lru.Remove(old.elem)
		c.bytes -= old.size
		delete(c.entries, k)
	}
	e := &entry{key: k, data: data, obj: obj, size: size, stage: stage}
	e.elem = c.lru.PushFront(e)
	c.entries[k] = e
	c.bytes += size
	for c.lru.Len() > 1 && (c.lru.Len() > c.maxEntries || c.bytes > c.maxBytes) {
		tail := c.lru.Back()
		ev := tail.Value.(*entry)
		c.lru.Remove(tail)
		delete(c.entries, ev.key)
		c.bytes -= ev.size
		c.evictions++
		mEvict.Inc()
	}
	mBytes.Set(c.bytes)
	mEntries.Set(int64(c.lru.Len()))
}

// Remove drops an entry from memory and disk (used when a consumer finds an
// entry unusable, e.g. a bind failure on reconstructed artifacts).
func (c *Cache) Remove(stage string, k Key) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if e := c.entries[k]; e != nil {
		c.lru.Remove(e.elem)
		c.bytes -= e.size
		delete(c.entries, k)
		mBytes.Set(c.bytes)
		mEntries.Set(int64(c.lru.Len()))
	}
	disk := c.disk
	c.mu.Unlock()
	if disk != nil {
		disk.remove(stage, k)
	}
}

// clone returns a defensive copy; cached arrays are never handed out
// directly so a caller mutating its result cannot poison the store.
func clone(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// GetOrCompute returns the bytes stored under (stage, key), computing and
// storing them on a miss. Concurrent callers of the same missing key are
// single-flighted: exactly one runs compute, the rest wait for its result.
// hit reports whether this caller's value came from the cache (or another
// caller's flight) rather than its own compute call. Compute errors are
// returned to every waiter and nothing is stored. On a nil cache the
// computation runs directly.
func (c *Cache) GetOrCompute(stage string, k Key, compute func() ([]byte, error)) (val []byte, hit bool, err error) {
	if c == nil {
		v, err := compute()
		return v, false, err
	}
	for {
		c.mu.Lock()
		if e := c.entries[k]; e != nil && e.data != nil {
			c.lru.MoveToFront(e.elem)
			c.countHit(stage)
			data := e.data
			c.mu.Unlock()
			return clone(data), true, nil
		}
		if f := c.flights[k]; f != nil {
			c.mu.Unlock()
			mWaits.Inc()
			<-f.done
			if f.err != nil {
				// The computing flight failed; this caller retries (the
				// failure may have been its sibling's context, and the
				// entry may have been stored by a later success).
				return c.retryAfterFailedFlight(stage, k, compute)
			}
			c.mu.Lock()
			c.countHit(stage)
			c.mu.Unlock()
			return clone(f.data), true, nil
		}
		f := &flight{done: make(chan struct{})}
		c.flights[k] = f
		c.mu.Unlock()

		// Disk tier: a hit fills memory and resolves the flight.
		if c.disk != nil {
			if data, ok := c.disk.get(stage, k); ok {
				c.mu.Lock()
				c.insertLocked(stage, k, data, nil, int64(len(data)))
				c.countHit(stage)
				mDiskHit.Inc()
				delete(c.flights, k)
				c.mu.Unlock()
				f.data = data
				close(f.done)
				return clone(data), true, nil
			}
		}

		val, err = compute()
		c.mu.Lock()
		c.countMiss(stage)
		if err == nil {
			stored := clone(val)
			c.insertLocked(stage, k, stored, nil, int64(len(stored)))
			f.data = stored
		}
		f.err = err
		delete(c.flights, k)
		c.mu.Unlock()
		close(f.done)
		if err == nil && c.disk != nil {
			c.disk.put(stage, k, val)
		}
		return val, false, err
	}
}

// Touch probes for (stage, key) without computing. A memory hit bumps the
// entry's LRU position; a memory miss falls through to the disk tier and
// promotes the bytes on success. The probe counts toward the stage's
// hit/miss statistics exactly like a GetOrCompute lookup, so a warm path
// satisfied by a downstream stage's entry (e.g. a route hit short-circuiting
// the nested place lookup) can still account for the upstream stage
// truthfully instead of reporting nothing — the accounting hole behind the
// historical "place stage: 0% hit rate" in the perf records. Nil caches
// report a miss without counting.
func (c *Cache) Touch(stage string, k Key) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	if e := c.entries[k]; e != nil {
		c.lru.MoveToFront(e.elem)
		c.countHit(stage)
		c.mu.Unlock()
		return true
	}
	disk := c.disk
	c.mu.Unlock()
	if disk != nil {
		if data, ok := disk.get(stage, k); ok {
			c.mu.Lock()
			c.insertLocked(stage, k, data, nil, int64(len(data)))
			c.countHit(stage)
			mDiskHit.Inc()
			c.mu.Unlock()
			return true
		}
	}
	c.mu.Lock()
	c.countMiss(stage)
	c.mu.Unlock()
	return false
}

// retryAfterFailedFlight re-runs the lookup after waiting on a flight that
// errored, computing directly if the entry is still absent.
func (c *Cache) retryAfterFailedFlight(stage string, k Key, compute func() ([]byte, error)) ([]byte, bool, error) {
	c.mu.Lock()
	if e := c.entries[k]; e != nil && e.data != nil {
		c.lru.MoveToFront(e.elem)
		c.countHit(stage)
		data := e.data
		c.mu.Unlock()
		return clone(data), true, nil
	}
	c.countMiss(stage)
	c.mu.Unlock()
	v, err := compute()
	return v, false, err
}

// GetOrComputeValue is GetOrCompute for live objects that cannot round-trip
// through bytes (e.g. a generated netlist shared read-only by later stages).
// Values live in the memory tier only; size is the caller's estimate for the
// byte bound. The stored object is returned shared, so it must be treated as
// immutable by every consumer.
func (c *Cache) GetOrComputeValue(stage string, k Key, compute func() (any, int64, error)) (val any, hit bool, err error) {
	if c == nil {
		v, _, err := compute()
		return v, false, err
	}
	c.mu.Lock()
	if e := c.entries[k]; e != nil && e.obj != nil {
		c.lru.MoveToFront(e.elem)
		c.countHit(stage)
		obj := e.obj
		c.mu.Unlock()
		return obj, true, nil
	}
	if f := c.flights[k]; f != nil {
		c.mu.Unlock()
		mWaits.Inc()
		<-f.done
		if f.err != nil {
			v, _, err := compute()
			return v, false, err
		}
		c.mu.Lock()
		c.countHit(stage)
		c.mu.Unlock()
		return f.obj, true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[k] = f
	c.mu.Unlock()

	v, size, err := compute()
	c.mu.Lock()
	c.countMiss(stage)
	if err == nil {
		c.insertLocked(stage, k, nil, v, size)
		f.obj = v
	}
	f.err = err
	delete(c.flights, k)
	c.mu.Unlock()
	close(f.done)
	return v, false, err
}

// StageStats is one stage's hit/miss record.
type StageStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// HitRate returns hits / lookups (0 when the stage saw no lookups).
func (s StageStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats is a point-in-time summary of a cache, for jpgbench's perf record.
type Stats struct {
	Entries   int                   `json:"entries"`
	Bytes     int64                 `json:"bytes"`
	Evictions int64                 `json:"evictions"`
	Stages    map[string]StageStats `json:"stages,omitempty"`
}

// Stats snapshots the cache (nil caches report zeroes).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{Entries: c.lru.Len(), Bytes: c.bytes, Evictions: c.evictions}
	if len(c.stages) > 0 {
		s.Stages = make(map[string]StageStats, len(c.stages))
		names := make([]string, 0, len(c.stages))
		for n := range c.stages {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			sc := c.stages[n]
			s.Stages[n] = StageStats{Hits: sc.hits, Misses: sc.misses}
		}
	}
	return s
}
