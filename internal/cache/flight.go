package cache

import (
	"context"
	"sync"
)

// Group is an exported, context-aware single-flight keyed by Key: concurrent
// Do calls with the same key run the function once and share its value. It is
// the request-coalescing primitive behind the jpgd serving layer, where N
// identical in-flight HTTP requests must cost one flow execution.
//
// It differs from the cache's internal flight table in two ways that matter
// at a service boundary:
//
//   - Waiting is cancellable. A follower whose context ends while the leader
//     is still computing unblocks immediately with ctx.Err() instead of
//     holding its goroutine (and HTTP connection) until the leader finishes.
//   - Leader failure promotes a follower instead of stampeding. When the
//     leader returns an error, exactly one waiter becomes the next leader and
//     retries; the rest keep waiting. Failures therefore serialise instead of
//     fanning out into as many concurrent retries as there were waiters.
//
// The zero value is ready to use. Values are shared by reference between the
// leader and every follower, so they must be treated as immutable once
// returned (the same contract as GetOrComputeValue).
type Group struct {
	mu      sync.Mutex
	flights map[Key]*groupFlight
}

type groupFlight struct {
	done chan struct{}
	val  any
	err  error
}

// Do returns the value of fn for key k, coalescing concurrent calls: one
// caller (the leader) runs fn, everyone else waits and shares the result.
// shared reports whether the value came from another caller's execution.
// fn's error is returned only by the caller that ran it; waiters react to a
// failed flight by electing a new leader among themselves.
func (g *Group) Do(ctx context.Context, k Key, fn func() (any, error)) (val any, shared bool, err error) {
	for {
		g.mu.Lock()
		if g.flights == nil {
			g.flights = map[Key]*groupFlight{}
		}
		if f := g.flights[k]; f != nil {
			g.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if f.err != nil {
				// The leader failed; loop to either join a flight another
				// waiter has already opened or become the new leader.
				continue
			}
			return f.val, true, nil
		}
		f := &groupFlight{done: make(chan struct{})}
		g.flights[k] = f
		g.mu.Unlock()

		f.val, f.err = fn()
		g.mu.Lock()
		delete(g.flights, k)
		g.mu.Unlock()
		close(f.done)
		return f.val, false, f.err
	}
}

// Pending reports whether a flight for k is currently executing (a probe for
// metrics and tests; the answer can be stale by the time it is used).
func (g *Group) Pending(k Key) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.flights[k] != nil
}
