package xhwif

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/bitstream"
	"repro/internal/device"
)

// flaky fails the first Fail downloads outright (device untouched), then
// delegates to the wrapped board — the minimal transactional-but-unreliable
// link.
type flaky struct {
	*Board
	fail int
	seen int
}

func (f *flaky) Download(bs []byte) (DownloadStats, error) {
	f.seen++
	if f.seen <= f.fail {
		return DownloadStats{Bytes: len(bs)}, errors.New("flaky: injected link failure")
	}
	return f.Board.Download(bs)
}

// DownloadCtx overrides the method promoted from the embedded Board so the
// injected failures also hit callers on the context-aware path.
func (f *flaky) DownloadCtx(ctx context.Context, bs []byte) (DownloadStats, error) {
	if err := ctx.Err(); err != nil {
		return DownloadStats{}, err
	}
	return f.Download(bs)
}

// liar reports success without writing anything: the failure mode only
// verify-after-write can catch.
type liar struct{ *Board }

func (l *liar) Download(bs []byte) (DownloadStats, error) {
	return DownloadStats{Bytes: len(bs), Attempts: 1}, nil
}

func (l *liar) DownloadCtx(ctx context.Context, bs []byte) (DownloadStats, error) {
	return l.Download(bs)
}

// fastPolicy keeps test retries effectively instant.
func fastPolicy(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseBackoff: time.Nanosecond, MaxBackoff: time.Nanosecond}
}

func TestReliableRetriesUntilSuccess(t *testing.T) {
	mem, bs := fullBitstream(t, 20)
	p := device.MustByName("XCV50")

	r := NewReliable(&flaky{Board: NewBoard(p), fail: 2}, fastPolicy(4))
	ds, err := r.Download(bs)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Attempts != 3 {
		t.Fatalf("succeeded on attempt %d, want 3", ds.Attempts)
	}
	if retries, aborts, _ := r.Counts(); retries != 2 || aborts != 0 {
		t.Fatalf("counters: %d retries, %d aborts", retries, aborts)
	}
	// The retried download converges to the same state as a fault-free one.
	if !r.Readback().Equal(mem) {
		t.Fatal("retried download diverged from the fault-free state")
	}
}

func TestReliableExhaustedKeepsPreState(t *testing.T) {
	mem, bs := fullBitstream(t, 21)
	p := device.MustByName("XCV50")
	board := NewBoard(p)
	if _, err := board.Download(bs); err != nil {
		t.Fatal(err)
	}

	mem2 := mem.Clone()
	mem2.SetBit(p.CLBBit(2, 2, 2), true)
	r := NewReliable(&flaky{Board: board, fail: 100}, fastPolicy(3))
	if _, err := r.Download(bitstream.WriteFull(mem2)); err == nil {
		t.Fatal("exhausted retries reported success")
	}
	if _, aborts, _ := r.Counts(); aborts != 1 {
		t.Fatalf("aborts = %d, want 1", aborts)
	}
	if !board.Readback().Equal(mem) {
		t.Fatal("device state changed although every attempt failed")
	}
}

func TestReliableVerifyCatchesSilentlyDroppedWrite(t *testing.T) {
	_, bs := fullBitstream(t, 22)
	p := device.MustByName("XCV50")

	pol := fastPolicy(2)
	pol.Verify = true
	r := NewReliable(&liar{Board: NewBoard(p)}, pol)
	_, err := r.Download(bs)
	if err == nil {
		t.Fatal("verification accepted a download the device never applied")
	}
	if _, _, vfails := r.Counts(); vfails != 2 {
		t.Fatalf("verify failures = %d, want 2 (one per attempt)", vfails)
	}
}

func TestReliableVerifyPassesOnHonestBoard(t *testing.T) {
	mem, bs := fullBitstream(t, 23)
	p := device.MustByName("XCV50")
	pol := fastPolicy(3)
	pol.Verify = true
	r := NewReliable(&flaky{Board: NewBoard(p), fail: 1}, pol)
	if _, err := r.Download(bs); err != nil {
		t.Fatal(err)
	}
	if _, _, vfails := r.Counts(); vfails != 0 {
		t.Fatalf("verify failures = %d on an honest board", vfails)
	}
	if !r.Readback().Equal(mem) {
		t.Fatal("verified download diverged")
	}
}

func TestReliableDeadline(t *testing.T) {
	_, bs := fullBitstream(t, 24)
	p := device.MustByName("XCV50")
	pol := fastPolicy(3)
	pol.Timeout = time.Nanosecond
	r := NewReliable(&flaky{Board: NewBoard(p), fail: 100}, pol)
	time.Sleep(time.Microsecond) // let the 1ns deadline expire
	_, err := r.Download(bs)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestReliableCancelledContext(t *testing.T) {
	_, bs := fullBitstream(t, 25)
	r := NewReliable(NewBoard(device.MustByName("XCV50")), fastPolicy(3))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.DownloadCtx(ctx, bs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, JitterSeed: 42}.withDefaults()
	a := NewReliable(NewBoard(device.MustByName("XCV50")), p)
	b := NewReliable(NewBoard(device.MustByName("XCV50")), p)
	for attempt := 1; attempt <= 6; attempt++ {
		da, db := a.backoff(p, attempt), b.backoff(p, attempt)
		if da != db {
			t.Fatalf("attempt %d: jitter not deterministic (%v vs %v)", attempt, da, db)
		}
		if da < p.BaseBackoff || da > p.MaxBackoff+p.MaxBackoff/2 {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, da, p.BaseBackoff, p.MaxBackoff*3/2)
		}
	}
}
