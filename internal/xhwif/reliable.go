package xhwif

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/obs"
	jpglog "repro/internal/obs/log"
)

// RetryPolicy tunes a ReliableHWIF.
type RetryPolicy struct {
	// MaxAttempts bounds the download attempts per call (including the
	// first); <= 0 selects DefaultMaxAttempts.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it, capped at MaxBackoff. <= 0 selects DefaultBaseBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff; <= 0 selects
	// DefaultMaxBackoff.
	MaxBackoff time.Duration
	// JitterSeed seeds the deterministic jitter sequence added to each
	// backoff (up to half the backoff). The same seed and failure sequence
	// reproduce the same delays, so retry behaviour is testable.
	JitterSeed int64
	// Timeout bounds one Download call end to end — attempts plus backoff
	// sleeps; 0 means no deadline.
	Timeout time.Duration
	// Verify reads the touched frames back after each apparently successful
	// download and compares them against the expected post-download state;
	// a mismatch counts as a failed attempt and is retried.
	Verify bool
}

// Defaults for RetryPolicy zero values.
const (
	DefaultMaxAttempts = 3
	DefaultBaseBackoff = time.Millisecond
	DefaultMaxBackoff  = 100 * time.Millisecond
)

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = DefaultBaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultMaxBackoff
	}
	return p
}

// Reliability metrics (always on; see internal/obs): the retry/abort/verify
// counts the CLIs surface after a faulted run.
var (
	mRetries     = obs.GetCounter("xhwif.retries")
	mAborts      = obs.GetCounter("xhwif.download_aborts")
	mVerifyFails = obs.GetCounter("xhwif.verify_failures")
	mVerifyOK    = obs.GetCounter("xhwif.verify_ok")
)

// ReliableHWIF decorates any HWIF with bounded retries (exponential backoff
// plus deterministic jitter), a per-download deadline, and optional
// verify-after-write readback — the reliability layer a runtime
// reconfiguration manager needs when the board link is flaky. Downloads
// through the wrapper are serialised, so the pre-download readback that
// anchors verification cannot be invalidated by a concurrent download.
type ReliableHWIF struct {
	Inner  HWIF
	Policy RetryPolicy

	// sleep is the backoff timer; tests replace it to run without real
	// delays. It returns early with ctx.Err() when the context dies.
	sleep func(ctx context.Context, d time.Duration) error

	mu  sync.Mutex
	rng *rand.Rand
	// Cumulative reliability counters (guarded by mu; read via Counts).
	retries     int64
	aborts      int64
	verifyFails int64
}

var _ HWIF = (*ReliableHWIF)(nil)
var _ ContextDownloader = (*ReliableHWIF)(nil)

// NewReliable wraps inner with the given retry policy.
func NewReliable(inner HWIF, p RetryPolicy) *ReliableHWIF {
	p = p.withDefaults()
	return &ReliableHWIF{
		Inner:  inner,
		Policy: p,
		sleep:  sleepCtx,
		rng:    rand.New(rand.NewSource(p.JitterSeed)),
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Counts returns the cumulative retry/abort/verify-failure counters.
func (r *ReliableHWIF) Counts() (retries, aborts, verifyFailures int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries, r.aborts, r.verifyFails
}

// PartName implements HWIF.
func (r *ReliableHWIF) PartName() string { return r.Inner.PartName() }

// Readback implements HWIF.
func (r *ReliableHWIF) Readback() *frames.Memory { return r.Inner.Readback() }

// ReadbackFrames forwards frame-granular readback when the inner HWIF
// supports it.
func (r *ReliableHWIF) ReadbackFrames(fars []device.FAR) ([][]uint32, error) {
	if fr, ok := r.Inner.(FrameReader); ok {
		return fr.ReadbackFrames(fars)
	}
	return nil, fmt.Errorf("xhwif: inner %T has no frame readback", r.Inner)
}

// ExecuteReadback forwards raw readback requests when the inner HWIF
// supports them (core.Project.VerifyRegion uses this path).
func (r *ReliableHWIF) ExecuteReadback(request []byte) ([]uint32, error) {
	if er, ok := r.Inner.(interface {
		ExecuteReadback([]byte) ([]uint32, error)
	}); ok {
		return er.ExecuteReadback(request)
	}
	return nil, fmt.Errorf("xhwif: inner %T has no raw readback", r.Inner)
}

// Download implements HWIF via DownloadCtx with no caller deadline beyond
// the policy's.
func (r *ReliableHWIF) Download(bs []byte) (DownloadStats, error) {
	return r.DownloadCtx(context.Background(), bs)
}

// DownloadCtx downloads with retries under the policy. The returned stats
// are those of the successful attempt (Attempts counts all attempts made);
// on failure they are the last attempt's. The inner download is assumed
// transactional (as Board's is), so a retry always starts from the device's
// pre-download state.
func (r *ReliableHWIF) DownloadCtx(ctx context.Context, bs []byte) (DownloadStats, error) {
	p := r.Policy.withDefaults()
	if p.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.Timeout)
		defer cancel()
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	// Verification compares the device against the state this stream should
	// produce: the pre-download readback with the stream applied. A stream
	// that does not even apply locally is handed to the device unverified —
	// the device will reject it the same way.
	var pre, expected *frames.Memory
	if p.Verify {
		pre = r.Inner.Readback()
		exp := pre.Clone()
		if _, err := bitstream.Apply(exp, bs); err == nil {
			expected = exp
		}
	}

	var ds DownloadStats
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			r.aborts++
			mAborts.Inc()
			jpglog.Warn(ctx, "download.abort", "attempts", attempt-1, "error", cerr.Error())
			return ds, fmt.Errorf("xhwif: download aborted after %d attempt(s): %w", attempt-1, cerr)
		}
		if cd, ok := r.Inner.(ContextDownloader); ok {
			ds, err = cd.DownloadCtx(ctx, bs)
		} else {
			ds, err = r.Inner.Download(bs)
		}
		ds.Attempts = attempt
		if err == nil && expected != nil {
			if verr := r.verify(pre, expected); verr != nil {
				r.verifyFails++
				mVerifyFails.Inc()
				jpglog.Warn(ctx, "download.verify_failed", "attempt", attempt, "error", verr.Error())
				err = verr
			} else {
				mVerifyOK.Inc()
			}
		}
		if err == nil {
			return ds, nil
		}
		if attempt >= p.MaxAttempts {
			r.aborts++
			mAborts.Inc()
			jpglog.Warn(ctx, "download.abort", "attempts", attempt, "error", err.Error())
			return ds, fmt.Errorf("xhwif: download failed after %d attempt(s): %w", attempt, err)
		}
		r.retries++
		mRetries.Inc()
		backoff := r.backoff(p, attempt)
		jpglog.Warn(ctx, "download.retry", "attempt", attempt, "backoff_us", backoff.Microseconds(), "error", err.Error())
		if serr := r.sleep(ctx, backoff); serr != nil {
			r.aborts++
			mAborts.Inc()
			jpglog.Warn(ctx, "download.abort", "attempts", attempt, "error", serr.Error())
			return ds, fmt.Errorf("xhwif: download aborted during backoff after %d attempt(s): %w", attempt, serr)
		}
	}
}

// backoff returns the delay before retry #attempt: BaseBackoff doubled per
// prior attempt, capped at MaxBackoff, plus deterministic jitter in
// [0, backoff/2).
func (r *ReliableHWIF) backoff(p RetryPolicy, attempt int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if half := int64(d / 2); half > 0 {
		d += time.Duration(r.rng.Int63n(half))
	}
	return d
}

// verify compares the device against the expected post-download state,
// reading back only the frames the download touched when the inner HWIF
// offers frame-granular readback (falling back to a full readback).
func (r *ReliableHWIF) verify(pre, expected *frames.Memory) error {
	touched, err := expected.Diff(pre)
	if err != nil {
		return fmt.Errorf("xhwif: verify: %w", err)
	}
	fr, ok := r.Inner.(FrameReader)
	if !ok {
		if !r.Inner.Readback().Equal(expected) {
			return fmt.Errorf("xhwif: verify failed: device state differs from expected post-download state")
		}
		return nil
	}
	got, err := fr.ReadbackFrames(touched)
	if err != nil {
		return fmt.Errorf("xhwif: verify: %w", err)
	}
	for i, far := range touched {
		want := expected.Frame(far)
		for w := range want {
			if got[i][w] != want[w] {
				return fmt.Errorf("xhwif: verify failed at %v word %d: device %#08x, expected %#08x",
					far, w, got[i][w], want[w])
			}
		}
	}
	return nil
}
