// Package xhwif simulates the board-access layer the paper's JPG tool uses
// to download bitstreams (the Xilinx XHWIF interface): a Virtex device
// behind a SelectMAP configuration port, with a download-time model derived
// from the port's published characteristics (one byte per configuration
// clock, 50 MHz by default).
package xhwif

import (
	"fmt"
	"time"

	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/obs"
)

// DefaultClockHz is the default SelectMAP configuration clock.
const DefaultClockHz = 50e6

// HWIF is the hardware-access interface, mirroring XHWIF's role: a device
// that accepts bitstream downloads and supports configuration readback.
type HWIF interface {
	// PartName identifies the device on the board.
	PartName() string
	// Download feeds a (full or partial) bitstream to the configuration
	// port.
	Download(bs []byte) (DownloadStats, error)
	// Readback returns a copy of the device's configuration memory.
	Readback() *frames.Memory
}

// DownloadStats reports one download.
type DownloadStats struct {
	Bytes         int
	FramesWritten int
	// ModelTime is the modelled transfer time over SelectMAP (8 bits per
	// configuration clock).
	ModelTime time.Duration
	// Started reports whether the bitstream issued the start-up sequence
	// (full configurations do; partial reconfigurations of a running
	// device do not).
	Started bool
}

// Download metrics (always on; see internal/obs): sizes, frame counts and
// modelled SelectMAP transfer times — the observable behind the paper's
// download-time claim (a partial stream configures in a fraction of the
// full stream's time).
var (
	mDownloads     = obs.GetCounter("xhwif.downloads")
	mDownloadBytes = obs.GetCounter("xhwif.bytes_downloaded")
	mFramesWritten = obs.GetCounter("xhwif.frames_written")
	mDownloadNs    = obs.GetHistogram("xhwif.download_model_ns")
	mDownloadSizeB = obs.GetHistogram("xhwif.download_bytes_hist")
)

// Board is a simulated FPGA board holding one device.
type Board struct {
	Part *device.Part
	// ClockHz is the SelectMAP configuration clock (DefaultClockHz if 0).
	ClockHz float64

	mem     *frames.Memory
	running bool

	// Cumulative counters.
	Downloads      int
	TotalBytes     int
	TotalModelTime time.Duration
}

var _ HWIF = (*Board)(nil)

// NewBoard returns a board with a blank (unconfigured) device.
func NewBoard(p *device.Part) *Board {
	return &Board{Part: p, ClockHz: DefaultClockHz, mem: frames.New(p)}
}

// PartName implements HWIF.
func (b *Board) PartName() string { return b.Part.Name }

// Running reports whether the device has completed a start-up sequence and
// is executing its design.
func (b *Board) Running() bool { return b.running }

// Download implements HWIF: the bitstream is applied through the
// configuration-port VM; a partial bitstream on a running device performs
// dynamic partial reconfiguration (the rest of the device keeps its state).
func (b *Board) Download(bs []byte) (DownloadStats, error) {
	clock := b.ClockHz
	if clock == 0 {
		clock = DefaultClockHz
	}
	stats, err := bitstream.Apply(b.mem, bs)
	ds := DownloadStats{
		Bytes:         len(bs),
		FramesWritten: stats.FramesWritten,
		ModelTime:     time.Duration(float64(len(bs)) / clock * float64(time.Second)),
		Started:       stats.Started,
	}
	if err != nil {
		return ds, fmt.Errorf("xhwif: download failed: %w", err)
	}
	if stats.Started {
		b.running = true
	}
	b.Downloads++
	b.TotalBytes += ds.Bytes
	b.TotalModelTime += ds.ModelTime
	mDownloads.Inc()
	mDownloadBytes.Add(int64(ds.Bytes))
	mFramesWritten.Add(int64(ds.FramesWritten))
	mDownloadNs.Observe(ds.ModelTime.Nanoseconds())
	mDownloadSizeB.Observe(int64(ds.Bytes))
	return ds, nil
}

// Readback implements HWIF: a copy of the current configuration memory, as
// Virtex readback (FDRO) provides.
func (b *Board) Readback() *frames.Memory { return b.mem.Clone() }

// ReadbackFrames reads the addressed frames only.
func (b *Board) ReadbackFrames(fars []device.FAR) [][]uint32 {
	out := make([][]uint32, len(fars))
	for i, f := range fars {
		frame := make([]uint32, b.Part.FrameWords())
		copy(frame, b.mem.Frame(f))
		out[i] = frame
	}
	return out
}

// ExecuteReadback runs a readback packet request (bitstream.
// WriteReadbackRequest) against the device and returns the raw read words,
// as the SelectMAP port would shift them out.
func (b *Board) ExecuteReadback(request []byte) ([]uint32, error) {
	return bitstream.ExecuteReadback(b.mem, request)
}
