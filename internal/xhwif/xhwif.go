// Package xhwif simulates the board-access layer the paper's JPG tool uses
// to download bitstreams (the Xilinx XHWIF interface): a Virtex device
// behind a SelectMAP configuration port, with a download-time model derived
// from the port's published characteristics (one byte per configuration
// clock, 50 MHz by default).
//
// Downloads are transactional: a bitstream is applied to a staging copy of
// the configuration memory and committed only if the whole stream decodes
// and applies cleanly, so a failed partial reconfiguration leaves the
// running device exactly as it was. ReliableHWIF (reliable.go) layers
// bounded retries, per-download deadlines and verify-after-write readback on
// top of any HWIF — the substrate a runtime reconfiguration manager needs
// over a flaky physical link.
package xhwif

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/obs"
	jpglog "repro/internal/obs/log"
)

// DefaultClockHz is the default SelectMAP configuration clock.
const DefaultClockHz = 50e6

// HWIF is the hardware-access interface, mirroring XHWIF's role: a device
// that accepts bitstream downloads and supports configuration readback.
type HWIF interface {
	// PartName identifies the device on the board.
	PartName() string
	// Download feeds a (full or partial) bitstream to the configuration
	// port.
	Download(bs []byte) (DownloadStats, error)
	// Readback returns a copy of the device's configuration memory.
	Readback() *frames.Memory
}

// FrameReader is the optional frame-granular readback side of a HWIF.
// *Board implements it; decorators (ReliableHWIF, faults injectors) forward
// it so verify-after-write can read back only the frames a download touched.
type FrameReader interface {
	ReadbackFrames(fars []device.FAR) ([][]uint32, error)
}

// ContextDownloader is the optional context-aware download side of a HWIF.
// *Board, *ReliableHWIF and the faults injector implement it; callers that
// hold a context (jpgd request handlers, the reliability layer) prefer it so
// deadlines, cancellation and the request-scoped logger reach every layer of
// the download stack.
type ContextDownloader interface {
	DownloadCtx(ctx context.Context, bs []byte) (DownloadStats, error)
}

// DownloadStats reports one download.
type DownloadStats struct {
	Bytes         int
	FramesWritten int
	// ModelTime is the modelled transfer time over SelectMAP (8 bits per
	// configuration clock).
	ModelTime time.Duration
	// Started reports whether the bitstream issued the start-up sequence
	// (full configurations do; partial reconfigurations of a running
	// device do not).
	Started bool
	// Attempts counts the download attempts a reliability layer made (1 for
	// a direct Board download).
	Attempts int
}

// Download metrics (always on; see internal/obs): sizes, frame counts and
// modelled SelectMAP transfer times — the observable behind the paper's
// download-time claim (a partial stream configures in a fraction of the
// full stream's time). Rollbacks count failed downloads whose staging state
// was discarded, leaving the device untouched.
var (
	mDownloads     = obs.GetCounter("xhwif.downloads")
	mDownloadBytes = obs.GetCounter("xhwif.bytes_downloaded")
	mFramesWritten = obs.GetCounter("xhwif.frames_written")
	mRollbacks     = obs.GetCounter("xhwif.rollbacks")
	mDownloadNs    = obs.GetHistogram("xhwif.download_model_ns")
	mDownloadSizeB = obs.GetHistogram("xhwif.download_bytes_hist")
)

// Board is a simulated FPGA board holding one device.
type Board struct {
	Part *device.Part
	// ClockHz is the SelectMAP configuration clock (DefaultClockHz if 0).
	ClockHz float64

	// mu guards the configuration memory, the running flag and the
	// cumulative counters: downloads are dispatched from parallel workers
	// (experiments farm them through internal/parallel), and a download
	// must observe and commit a consistent memory state.
	mu      sync.Mutex
	mem     *frames.Memory
	running bool

	// Cumulative counters. Guarded by mu; read them through Totals() when
	// any download may be concurrent.
	Downloads      int
	TotalBytes     int
	TotalModelTime time.Duration
}

var _ HWIF = (*Board)(nil)
var _ FrameReader = (*Board)(nil)
var _ ContextDownloader = (*Board)(nil)

// NewBoard returns a board with a blank (unconfigured) device.
func NewBoard(p *device.Part) *Board {
	return &Board{Part: p, ClockHz: DefaultClockHz, mem: frames.New(p)}
}

// PartName implements HWIF.
func (b *Board) PartName() string { return b.Part.Name }

// Running reports whether the device has completed a start-up sequence and
// is executing its design.
func (b *Board) Running() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.running
}

// Totals returns the cumulative download counters consistently.
func (b *Board) Totals() (downloads, bytes int, modelTime time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.Downloads, b.TotalBytes, b.TotalModelTime
}

// Download implements HWIF: the bitstream is applied through the
// configuration-port VM; a partial bitstream on a running device performs
// dynamic partial reconfiguration (the rest of the device keeps its state).
//
// The download is transactional: the stream applies into a staging clone of
// the configuration memory, which replaces the live memory only if every
// packet decoded and applied cleanly. On error the device keeps its exact
// pre-download state (counted by the xhwif.rollbacks metric), unlike real
// hardware, where an aborted SelectMAP transfer leaves frames half-written
// and forces a full reconfiguration — the recovery path ReliableHWIF exists
// to avoid.
func (b *Board) Download(bs []byte) (DownloadStats, error) {
	clock := b.ClockHz
	if clock == 0 {
		clock = DefaultClockHz
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	staging := b.mem.Clone()
	stats, err := bitstream.Apply(staging, bs)
	ds := DownloadStats{
		Bytes:         len(bs),
		FramesWritten: stats.FramesWritten,
		ModelTime:     time.Duration(float64(len(bs)) / clock * float64(time.Second)),
		Started:       stats.Started,
		Attempts:      1,
	}
	if err != nil {
		mRollbacks.Inc()
		return ds, fmt.Errorf("xhwif: download failed (device state rolled back): %w", err)
	}
	b.mem = staging
	if stats.Started {
		b.running = true
	}
	b.Downloads++
	b.TotalBytes += ds.Bytes
	b.TotalModelTime += ds.ModelTime
	mDownloads.Inc()
	mDownloadBytes.Add(int64(ds.Bytes))
	mFramesWritten.Add(int64(ds.FramesWritten))
	mDownloadNs.Observe(ds.ModelTime.Nanoseconds())
	mDownloadSizeB.Observe(int64(ds.Bytes))
	return ds, nil
}

// DownloadCtx implements ContextDownloader: Download gated on the context,
// with one structured log event per outcome (debug on success, warn on a
// rolled-back stream) so request-scoped logs see the board's side of every
// download.
func (b *Board) DownloadCtx(ctx context.Context, bs []byte) (DownloadStats, error) {
	if err := ctx.Err(); err != nil {
		return DownloadStats{}, err
	}
	ds, err := b.Download(bs)
	if err != nil {
		jpglog.Warn(ctx, "board.download", "bytes", len(bs), "error", err.Error())
		return ds, err
	}
	jpglog.Debug(ctx, "board.download", "bytes", ds.Bytes, "frames", ds.FramesWritten,
		"model_us", ds.ModelTime.Microseconds(), "started", ds.Started)
	return ds, nil
}

// Readback implements HWIF: a copy of the current configuration memory, as
// Virtex readback (FDRO) provides.
func (b *Board) Readback() *frames.Memory {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.mem.Clone()
}

// ReadbackFrames reads the addressed frames only. Every address is
// validated against the part's frame space; an out-of-range FAR is an
// error, not a panic.
func (b *Board) ReadbackFrames(fars []device.FAR) ([][]uint32, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([][]uint32, len(fars))
	for i, f := range fars {
		if !b.Part.ValidFAR(f) {
			return nil, fmt.Errorf("xhwif: readback of invalid %v on %s", f, b.Part.Name)
		}
		frame := make([]uint32, b.Part.FrameWords())
		copy(frame, b.mem.Frame(f))
		out[i] = frame
	}
	return out, nil
}

// ExecuteReadback runs a readback packet request (bitstream.
// WriteReadbackRequest) against the device and returns the raw read words,
// as the SelectMAP port would shift them out.
func (b *Board) ExecuteReadback(request []byte) ([]uint32, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return bitstream.ExecuteReadback(b.mem, request)
}
