package xhwif

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/frames"
)

func fullBitstream(t *testing.T, seed int64) (*frames.Memory, []byte) {
	t.Helper()
	p := device.MustByName("XCV50")
	m := frames.New(p)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 500; i++ {
		m.SetBit(p.CLBBit(rng.Intn(p.Rows), rng.Intn(p.Cols), rng.Intn(device.CLBLocalBits)), true)
	}
	return m, bitstream.WriteFull(m)
}

func TestDownloadFullThenReadback(t *testing.T) {
	mem, bs := fullBitstream(t, 1)
	b := NewBoard(device.MustByName("XCV50"))
	if b.Running() {
		t.Fatal("fresh board claims to run")
	}
	ds, err := b.Download(bs)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Started || !b.Running() {
		t.Fatal("full download did not start the device")
	}
	if !b.Readback().Equal(mem) {
		t.Fatal("readback differs from downloaded configuration")
	}
	// Readback is a copy.
	rb := b.Readback()
	rb.SetBit(rb.Part.CLBBit(0, 0, 0), true)
	if b.Readback().Bit(rb.Part.CLBBit(0, 0, 0)) {
		t.Fatal("readback aliases device state")
	}
}

func TestDownloadTimeModel(t *testing.T) {
	_, bs := fullBitstream(t, 2)
	b := NewBoard(device.MustByName("XCV50"))
	ds, err := b.Download(bs)
	if err != nil {
		t.Fatal(err)
	}
	want := time.Duration(float64(len(bs)) / DefaultClockHz * float64(time.Second))
	if ds.ModelTime != want {
		t.Fatalf("model time %v, want %v", ds.ModelTime, want)
	}
	// Halving the clock doubles the time.
	b2 := NewBoard(device.MustByName("XCV50"))
	b2.ClockHz = DefaultClockHz / 2
	ds2, err := b2.Download(bs)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.ModelTime != 2*ds.ModelTime {
		t.Fatalf("clock scaling broken: %v vs %v", ds2.ModelTime, ds.ModelTime)
	}
}

func TestCumulativeCounters(t *testing.T) {
	_, bs := fullBitstream(t, 3)
	b := NewBoard(device.MustByName("XCV50"))
	for i := 0; i < 3; i++ {
		if _, err := b.Download(bs); err != nil {
			t.Fatal(err)
		}
	}
	if b.Downloads != 3 || b.TotalBytes != 3*len(bs) || b.TotalModelTime <= 0 {
		t.Fatalf("counters wrong: %d downloads, %d bytes", b.Downloads, b.TotalBytes)
	}
}

func TestDownloadRejectsWrongPart(t *testing.T) {
	_, bs := fullBitstream(t, 4)
	b := NewBoard(device.MustByName("XCV300"))
	if _, err := b.Download(bs); err == nil {
		t.Fatal("XCV50 bitstream accepted by XCV300 board")
	}
}

func TestReadbackFrames(t *testing.T) {
	mem, bs := fullBitstream(t, 5)
	b := NewBoard(device.MustByName("XCV50"))
	if _, err := b.Download(bs); err != nil {
		t.Fatal(err)
	}
	fars := mem.NonZeroFrames()
	if len(fars) == 0 {
		t.Fatal("test memory has no content")
	}
	got := b.ReadbackFrames(fars)
	for i, far := range fars {
		want := mem.Frame(far)
		for w := range want {
			if got[i][w] != want[w] {
				t.Fatalf("frame %v word %d mismatch", far, w)
			}
		}
	}
}
