package xhwif

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/frames"
)

func fullBitstream(t *testing.T, seed int64) (*frames.Memory, []byte) {
	t.Helper()
	p := device.MustByName("XCV50")
	m := frames.New(p)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 500; i++ {
		m.SetBit(p.CLBBit(rng.Intn(p.Rows), rng.Intn(p.Cols), rng.Intn(device.CLBLocalBits)), true)
	}
	return m, bitstream.WriteFull(m)
}

func TestDownloadFullThenReadback(t *testing.T) {
	mem, bs := fullBitstream(t, 1)
	b := NewBoard(device.MustByName("XCV50"))
	if b.Running() {
		t.Fatal("fresh board claims to run")
	}
	ds, err := b.Download(bs)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Started || !b.Running() {
		t.Fatal("full download did not start the device")
	}
	if !b.Readback().Equal(mem) {
		t.Fatal("readback differs from downloaded configuration")
	}
	// Readback is a copy.
	rb := b.Readback()
	rb.SetBit(rb.Part.CLBBit(0, 0, 0), true)
	if b.Readback().Bit(rb.Part.CLBBit(0, 0, 0)) {
		t.Fatal("readback aliases device state")
	}
}

func TestDownloadTimeModel(t *testing.T) {
	_, bs := fullBitstream(t, 2)
	b := NewBoard(device.MustByName("XCV50"))
	ds, err := b.Download(bs)
	if err != nil {
		t.Fatal(err)
	}
	want := time.Duration(float64(len(bs)) / DefaultClockHz * float64(time.Second))
	if ds.ModelTime != want {
		t.Fatalf("model time %v, want %v", ds.ModelTime, want)
	}
	// Halving the clock doubles the time.
	b2 := NewBoard(device.MustByName("XCV50"))
	b2.ClockHz = DefaultClockHz / 2
	ds2, err := b2.Download(bs)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.ModelTime != 2*ds.ModelTime {
		t.Fatalf("clock scaling broken: %v vs %v", ds2.ModelTime, ds.ModelTime)
	}
}

func TestCumulativeCounters(t *testing.T) {
	_, bs := fullBitstream(t, 3)
	b := NewBoard(device.MustByName("XCV50"))
	for i := 0; i < 3; i++ {
		if _, err := b.Download(bs); err != nil {
			t.Fatal(err)
		}
	}
	if b.Downloads != 3 || b.TotalBytes != 3*len(bs) || b.TotalModelTime <= 0 {
		t.Fatalf("counters wrong: %d downloads, %d bytes", b.Downloads, b.TotalBytes)
	}
}

func TestDownloadRejectsWrongPart(t *testing.T) {
	_, bs := fullBitstream(t, 4)
	b := NewBoard(device.MustByName("XCV300"))
	if _, err := b.Download(bs); err == nil {
		t.Fatal("XCV50 bitstream accepted by XCV300 board")
	}
}

func TestReadbackFrames(t *testing.T) {
	mem, bs := fullBitstream(t, 5)
	b := NewBoard(device.MustByName("XCV50"))
	if _, err := b.Download(bs); err != nil {
		t.Fatal(err)
	}
	fars := mem.NonZeroFrames()
	if len(fars) == 0 {
		t.Fatal("test memory has no content")
	}
	got, err := b.ReadbackFrames(fars)
	if err != nil {
		t.Fatal(err)
	}
	for i, far := range fars {
		want := mem.Frame(far)
		for w := range want {
			if got[i][w] != want[w] {
				t.Fatalf("frame %v word %d mismatch", far, w)
			}
		}
	}
}

func TestDownloadRollbackOnMalformedStream(t *testing.T) {
	mem, bs := fullBitstream(t, 6)
	b := NewBoard(device.MustByName("XCV50"))
	if _, err := b.Download(bs); err != nil {
		t.Fatal(err)
	}
	// A different configuration, truncated mid-FDRI: the port must reject
	// it and the device must keep its exact pre-download state.
	mem2 := mem.Clone()
	mem2.SetBit(mem2.Part.CLBBit(1, 1, 1), true)
	bad := bitstream.WriteFull(mem2)
	bad = bad[:(len(bad)/2)&^3]
	if _, err := b.Download(bad); err == nil {
		t.Fatal("truncated stream accepted")
	}
	if !b.Readback().Equal(mem) {
		t.Fatal("failed download left the device partially reconfigured")
	}
	if d, _, _ := b.Totals(); d != 1 {
		t.Fatalf("failed download counted: %d downloads", d)
	}
}

func TestConcurrentDownloadCounters(t *testing.T) {
	_, bs := fullBitstream(t, 7)
	b := NewBoard(device.MustByName("XCV50"))
	const n = 16
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			if _, err := b.Download(bs); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	d, bytes, mt := b.Totals()
	if d != n || bytes != n*len(bs) || mt <= 0 {
		t.Fatalf("counters wrong under concurrency: %d downloads, %d bytes", d, bytes)
	}
}

func TestReadbackFramesRejectsInvalidFAR(t *testing.T) {
	b := NewBoard(device.MustByName("XCV50"))
	if _, err := b.ReadbackFrames([]device.FAR{device.FAR(0xffffffff)}); err == nil {
		t.Fatal("out-of-range FAR accepted")
	}
	// A valid request still works.
	got, err := b.ReadbackFrames([]device.FAR{b.Part.FirstFAR()})
	if err != nil || len(got) != 1 || len(got[0]) != b.Part.FrameWords() {
		t.Fatalf("valid readback broken: %v", err)
	}
}
