package jbits

import (
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/frames"
)

func newJB(name string) *JBits {
	return New(frames.New(device.MustByName(name)))
}

func TestLUTRoundTrip(t *testing.T) {
	j := newJB("XCV50")
	f := func(r, c uint8, slice, lut uint8, v LUTValue) bool {
		row, col := int(r)%j.Part.Rows, int(c)%j.Part.Cols
		s, l := int(slice)%2, int(lut)%2
		if err := j.SetLUT(row, col, s, l, v); err != nil {
			return false
		}
		got, err := j.GetLUT(row, col, s, l)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLUTsIndependent(t *testing.T) {
	j := newJB("XCV50")
	// Writing one LUT must not disturb the other three in the CLB or
	// neighbours.
	if err := j.SetLUT(3, 3, 0, device.LUTF, 0xFFFF); err != nil {
		t.Fatal(err)
	}
	for _, probe := range []struct{ r, c, s, l int }{
		{3, 3, 0, device.LUTG}, {3, 3, 1, device.LUTF}, {3, 3, 1, device.LUTG},
		{3, 4, 0, device.LUTF}, {2, 3, 0, device.LUTF},
	} {
		v, err := j.GetLUT(probe.r, probe.c, probe.s, probe.l)
		if err != nil || v != 0 {
			t.Fatalf("LUT at %+v disturbed: %04x, %v", probe, v, err)
		}
	}
}

func TestBoundsChecking(t *testing.T) {
	j := newJB("XCV50")
	if err := j.SetLUT(j.Part.Rows, 0, 0, device.LUTF, 0); err == nil {
		t.Fatal("row out of range accepted")
	}
	if err := j.SetLUT(0, 0, 2, device.LUTF, 0); err == nil {
		t.Fatal("slice out of range accepted")
	}
	if err := j.SetSliceCtl(0, 0, 0, 16, true); err == nil {
		t.Fatal("ctl out of range accepted")
	}
	if _, err := j.GetLUT(0, -1, 0, 0); err == nil {
		t.Fatal("negative col accepted")
	}
	if err := j.SetPadMode(device.Pad{Edge: device.EdgeL, Index: 999}, 0, true); err == nil {
		t.Fatal("bad pad accepted")
	}
	if err := j.ClearRegion(frames.Region{R1: 0, C1: 0, R2: 99, C2: 0}); err == nil {
		t.Fatal("bad region accepted")
	}
}

func TestSliceCtlRoundTrip(t *testing.T) {
	j := newJB("XCV50")
	for ctl := 0; ctl < 16; ctl++ {
		if err := j.SetSliceCtl(1, 2, 1, ctl, true); err != nil {
			t.Fatal(err)
		}
		v, err := j.GetSliceCtl(1, 2, 1, ctl)
		if err != nil || !v {
			t.Fatalf("ctl %d did not stick", ctl)
		}
		// The partner slice must be untouched.
		v, err = j.GetSliceCtl(1, 2, 0, ctl)
		if err != nil || v {
			t.Fatalf("ctl %d leaked into slice 0", ctl)
		}
	}
}

func TestPIPRoundTripAndActive(t *testing.T) {
	j := newJB("XCV50")
	pips := j.Part.TilePIPs(4, 4)
	on := []int{0, 7, len(pips) - 1}
	for _, i := range on {
		j.SetPIP(pips[i], true)
	}
	active, err := j.ActivePIPs(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(active) != len(on) {
		t.Fatalf("active pips = %d, want %d", len(active), len(on))
	}
	for _, pip := range active {
		if !j.GetPIP(pip) {
			t.Fatal("active pip reads off")
		}
		j.SetPIP(pip, false)
	}
	if active, _ = j.ActivePIPs(4, 4); len(active) != 0 {
		t.Fatal("pips not cleared")
	}
}

func TestClearCLBAndRegion(t *testing.T) {
	j := newJB("XCV50")
	if err := j.SetLUT(2, 2, 0, device.LUTG, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	if err := j.SetSliceCtl(2, 2, 0, device.SliceCtlFFX, true); err != nil {
		t.Fatal(err)
	}
	pips := j.Part.TilePIPs(2, 2)
	j.SetPIP(pips[0], true)
	// A neighbour to ensure region clear covers everything and only the region.
	if err := j.SetLUT(5, 5, 0, device.LUTF, 0x1); err != nil {
		t.Fatal(err)
	}

	if err := j.ClearRegion(frames.Region{R1: 1, C1: 1, R2: 3, C2: 3}); err != nil {
		t.Fatal(err)
	}
	if v, _ := j.GetLUT(2, 2, 0, device.LUTG); v != 0 {
		t.Fatal("LUT survived region clear")
	}
	if v, _ := j.GetSliceCtl(2, 2, 0, device.SliceCtlFFX); v {
		t.Fatal("ctl survived region clear")
	}
	if j.GetPIP(pips[0]) {
		t.Fatal("pip survived region clear")
	}
	if v, _ := j.GetLUT(5, 5, 0, device.LUTF); v != 1 {
		t.Fatal("region clear leaked outside the region")
	}
}

func TestPadModeRoundTrip(t *testing.T) {
	j := newJB("XCV50")
	pads := []device.Pad{
		{Edge: device.EdgeL, Index: 0},
		{Edge: device.EdgeR, Index: j.Part.Rows - 1},
		{Edge: device.EdgeT, Index: 5},
		{Edge: device.EdgeB, Index: j.Part.Cols - 1},
	}
	for _, pd := range pads {
		if err := j.SetPadMode(pd, device.PadCtlInUse, true); err != nil {
			t.Fatal(err)
		}
		v, err := j.GetPadMode(pd, device.PadCtlInUse)
		if err != nil || !v {
			t.Fatalf("pad %s mode did not stick", pd.Name())
		}
		if v, _ := j.GetPadMode(pd, device.PadCtlOutEn); v {
			t.Fatalf("pad %s: unrelated ctl bit set", pd.Name())
		}
	}
}

func TestBRAMWordRoundTrip(t *testing.T) {
	j := newJB("XCV50")
	f := func(side, block, addr uint8, v uint16) bool {
		s := int(side) % 2
		b := int(block) % j.Part.BRAMBlocksPerColumn()
		a := int(addr)
		if err := j.SetBRAMWord(s, b, a, v); err != nil {
			return false
		}
		got, err := j.GetBRAMWord(s, b, a)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBRAMContentIsolation(t *testing.T) {
	j := newJB("XCV50")
	var rom [device.BRAMWordsPerBlock]uint16
	for i := range rom {
		rom[i] = uint16(i*37 + 5)
	}
	if err := j.SetBRAMContent(0, 1, &rom); err != nil {
		t.Fatal(err)
	}
	got, err := j.GetBRAMContent(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if *got != rom {
		t.Fatal("BRAM content round trip failed")
	}
	// Neighbour blocks and the other column stay clear.
	for _, probe := range [][2]int{{0, 0}, {0, 2}, {1, 1}} {
		c, err := j.GetBRAMContent(probe[0], probe[1])
		if err != nil {
			t.Fatal(err)
		}
		for addr, v := range c {
			if v != 0 {
				t.Fatalf("block (%d,%d) addr %d contaminated: %04x", probe[0], probe[1], addr, v)
			}
		}
	}
	// CLB frames must be untouched by BRAM writes.
	if got := len(j.Mem.NonZeroFrames()); got != device.FramesBRAMCol && got > device.FramesBRAMCol {
		for _, far := range j.Mem.NonZeroFrames() {
			if far.BlockType() != device.BlockBRAM {
				t.Fatalf("BRAM write leaked into %v", far)
			}
		}
	}
}

func TestBRAMBoundsChecking(t *testing.T) {
	j := newJB("XCV50")
	if err := j.SetBRAMWord(2, 0, 0, 1); err == nil {
		t.Fatal("bad side accepted")
	}
	if err := j.SetBRAMWord(0, 99, 0, 1); err == nil {
		t.Fatal("bad block accepted")
	}
	if err := j.SetBRAMWord(0, 0, 256, 1); err == nil {
		t.Fatal("bad addr accepted")
	}
	if _, err := j.GetBRAMWord(0, 0, -1); err == nil {
		t.Fatal("negative addr accepted")
	}
}
