// Package jbits is the low-level resource-manipulation API over Virtex
// configuration memory, playing the role the Xilinx JBits Java API plays in
// the paper: typed get/set access to named device resources — LUT truth
// tables, slice control bits, I/O pad modes and routing PIPs — addressed by
// device coordinates rather than frame offsets.
//
// Everything here is a pure function of (part, configuration memory); JBits
// carries no state of its own, so one instance can be used for any number of
// designs.
package jbits

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/frames"
)

// JBits wraps one part's configuration memory.
type JBits struct {
	Part *device.Part
	Mem  *frames.Memory
}

// New returns a JBits view over mem.
func New(mem *frames.Memory) *JBits {
	return &JBits{Part: mem.Part, Mem: mem}
}

// checkCLB validates CLB coordinates.
func (j *JBits) checkCLB(row, col int) error {
	if row < 0 || row >= j.Part.Rows || col < 0 || col >= j.Part.Cols {
		return fmt.Errorf("jbits: CLB %s out of range for %s", device.TileName(row, col), j.Part.Name)
	}
	return nil
}

// LUTValue is a 16-entry truth table: bit i is the LUT output when the
// inputs (F4..F1 or G4..G1) form the binary value i.
type LUTValue uint16

// SetLUT programs a LUT truth table. slice is 0/1; lut is device.LUTF or
// device.LUTG.
func (j *JBits) SetLUT(row, col, slice, lut int, v LUTValue) error {
	if err := j.checkCLB(row, col); err != nil {
		return err
	}
	if slice < 0 || slice > 1 || (lut != device.LUTF && lut != device.LUTG) {
		return fmt.Errorf("jbits: bad slice/lut (%d, %d)", slice, lut)
	}
	for i := 0; i < 16; i++ {
		j.Mem.SetBit(j.Part.LUTBit(row, col, slice, lut, i), v>>i&1 == 1)
	}
	return nil
}

// GetLUT reads a LUT truth table.
func (j *JBits) GetLUT(row, col, slice, lut int) (LUTValue, error) {
	if err := j.checkCLB(row, col); err != nil {
		return 0, err
	}
	if slice < 0 || slice > 1 || (lut != device.LUTF && lut != device.LUTG) {
		return 0, fmt.Errorf("jbits: bad slice/lut (%d, %d)", slice, lut)
	}
	var v LUTValue
	for i := 0; i < 16; i++ {
		if j.Mem.Bit(j.Part.LUTBit(row, col, slice, lut, i)) {
			v |= 1 << i
		}
	}
	return v, nil
}

// SetSliceCtl sets one slice control bit (device.SliceCtl*).
func (j *JBits) SetSliceCtl(row, col, slice, ctl int, v bool) error {
	if err := j.checkCLB(row, col); err != nil {
		return err
	}
	if slice < 0 || slice > 1 || ctl < 0 || ctl > 15 {
		return fmt.Errorf("jbits: bad slice ctl (%d, %d)", slice, ctl)
	}
	j.Mem.SetBit(j.Part.SliceCtlBit(row, col, slice, ctl), v)
	return nil
}

// GetSliceCtl reads one slice control bit.
func (j *JBits) GetSliceCtl(row, col, slice, ctl int) (bool, error) {
	if err := j.checkCLB(row, col); err != nil {
		return false, err
	}
	if slice < 0 || slice > 1 || ctl < 0 || ctl > 15 {
		return false, fmt.Errorf("jbits: bad slice ctl (%d, %d)", slice, ctl)
	}
	return j.Mem.Bit(j.Part.SliceCtlBit(row, col, slice, ctl)), nil
}

// SetPIP turns a PIP on or off. The PIP must come from the part's catalog
// (device.TilePIPs / FindPIP / the routing graph).
func (j *JBits) SetPIP(pip device.PIP, on bool) {
	j.Mem.SetBit(j.Part.PIPBit(pip), on)
}

// GetPIP reads a PIP state.
func (j *JBits) GetPIP(pip device.PIP) bool {
	return j.Mem.Bit(j.Part.PIPBit(pip))
}

// SetPadMode sets an I/O pad control bit (device.PadCtl*).
func (j *JBits) SetPadMode(pad device.Pad, ctl int, v bool) error {
	if !j.Part.ValidPad(pad) {
		return fmt.Errorf("jbits: pad %s not on %s", pad.Name(), j.Part.Name)
	}
	j.Mem.SetBit(j.Part.PadModeBit(pad, ctl), v)
	return nil
}

// GetPadMode reads an I/O pad control bit.
func (j *JBits) GetPadMode(pad device.Pad, ctl int) (bool, error) {
	if !j.Part.ValidPad(pad) {
		return false, fmt.Errorf("jbits: pad %s not on %s", pad.Name(), j.Part.Name)
	}
	return j.Mem.Bit(j.Part.PadModeBit(pad, ctl)), nil
}

// ClearCLB zeroes every configuration bit owned by a CLB (logic and PIPs).
// JPG uses this to blank a region before replaying a variant module.
func (j *JBits) ClearCLB(row, col int) error {
	if err := j.checkCLB(row, col); err != nil {
		return err
	}
	for b := 0; b < device.CLBLocalBits; b++ {
		j.Mem.SetBit(j.Part.CLBBit(row, col, b), false)
	}
	return nil
}

// ClearRegion blanks every CLB in the region.
func (j *JBits) ClearRegion(rg frames.Region) error {
	if !rg.Valid(j.Part) {
		return fmt.Errorf("jbits: region %v invalid for %s", rg, j.Part.Name)
	}
	for r := rg.R1; r <= rg.R2; r++ {
		for c := rg.C1; c <= rg.C2; c++ {
			if err := j.ClearCLB(r, c); err != nil {
				return err
			}
		}
	}
	return nil
}

// ActivePIPs enumerates the PIPs of tile (row, col) whose configuration bit
// is set.
func (j *JBits) ActivePIPs(row, col int) ([]device.PIP, error) {
	if err := j.checkCLB(row, col); err != nil {
		return nil, err
	}
	var out []device.PIP
	for _, pip := range j.Part.TilePIPs(row, col) {
		if j.GetPIP(pip) {
			out = append(out, pip)
		}
	}
	return out, nil
}

// SetBRAMWord writes one 16-bit word of block-RAM content (addr 0..255).
func (j *JBits) SetBRAMWord(side, block, addr int, v uint16) error {
	if !j.Part.ValidBRAM(side, block) || addr < 0 || addr >= device.BRAMWordsPerBlock {
		return fmt.Errorf("jbits: bad BRAM word (side=%d block=%d addr=%d)", side, block, addr)
	}
	for b := 0; b < device.BRAMWordBits; b++ {
		j.Mem.SetBit(j.Part.BRAMBit(side, block, addr*device.BRAMWordBits+b), v>>b&1 == 1)
	}
	return nil
}

// GetBRAMWord reads one 16-bit word of block-RAM content.
func (j *JBits) GetBRAMWord(side, block, addr int) (uint16, error) {
	if !j.Part.ValidBRAM(side, block) || addr < 0 || addr >= device.BRAMWordsPerBlock {
		return 0, fmt.Errorf("jbits: bad BRAM word (side=%d block=%d addr=%d)", side, block, addr)
	}
	var v uint16
	for b := 0; b < device.BRAMWordBits; b++ {
		if j.Mem.Bit(j.Part.BRAMBit(side, block, addr*device.BRAMWordBits+b)) {
			v |= 1 << b
		}
	}
	return v, nil
}

// SetBRAMContent writes a block's full 256-word content.
func (j *JBits) SetBRAMContent(side, block int, words *[device.BRAMWordsPerBlock]uint16) error {
	for addr, v := range words {
		if err := j.SetBRAMWord(side, block, addr, v); err != nil {
			return err
		}
	}
	return nil
}

// GetBRAMContent reads a block's full content.
func (j *JBits) GetBRAMContent(side, block int) (*[device.BRAMWordsPerBlock]uint16, error) {
	var out [device.BRAMWordsPerBlock]uint16
	for addr := range out {
		v, err := j.GetBRAMWord(side, block, addr)
		if err != nil {
			return nil, err
		}
		out[addr] = v
	}
	return &out, nil
}
