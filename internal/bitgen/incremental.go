package bitgen

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/jbits"
	"repro/internal/netlist"
	"repro/internal/phys"
)

// ReprogramInitEdits applies an INIT-only netlist delta to a configuration
// memory that already holds the previous revision of the design. Only the
// edited cells are touched: a LUT edit rewrites its 16 truth-table bits
// (SetLUT writes every bit absolutely, so no clearing is needed) and a DFF
// edit writes its INIT control bit with the new value — explicitly in both
// directions, because the full-program path only ever sets it.
//
// After the call the memory is bit-identical to what Generate would produce
// for the edited design, provided it held the Generate output of the
// previous revision: every other frame bit is a function of placement,
// routing and connectivity, none of which an INIT-only edit changes. With
// dirty tracking enabled on mem, the touched frames land in the dirty set.
func ReprogramInitEdits(mem *frames.Memory, d *phys.Design, edits []netlist.InitEdit) error {
	jb := jbits.New(mem)
	for _, e := range edits {
		c, ok := d.Netlist.Cell(e.Name)
		if !ok {
			return fmt.Errorf("bitgen: reprogram: no cell %q", e.Name)
		}
		if c.Kind != e.Kind {
			return fmt.Errorf("bitgen: reprogram: cell %q kind %s, edit says %s", e.Name, c.Kind, e.Kind)
		}
		if c.Init != e.NewInit {
			return fmt.Errorf("bitgen: reprogram: cell %q init %#x, edit says %#x", e.Name, c.Init, e.NewInit)
		}
		site, placed := d.Cells[c]
		if !placed {
			return fmt.Errorf("bitgen: reprogram: cell %q unplaced", e.Name)
		}
		switch c.Kind {
		case netlist.KindLUT4:
			lut := device.LUTF
			if site.LE == phys.LEG {
				lut = device.LUTG
			}
			if err := jb.SetLUT(site.Row, site.Col, site.Slice, lut, jbits.LUTValue(c.Init)); err != nil {
				return fmt.Errorf("bitgen: reprogram LUT %q: %w", c.Name, err)
			}
		case netlist.KindDFF:
			init := device.SliceCtlINITX
			if site.LE == phys.LEG {
				init = device.SliceCtlINITY
			}
			if err := jb.SetSliceCtl(site.Row, site.Col, site.Slice, init, c.Init&1 == 1); err != nil {
				return fmt.Errorf("bitgen: reprogram DFF %q: %w", c.Name, err)
			}
		default:
			return fmt.Errorf("bitgen: reprogram: cell %q has unknown kind", c.Name)
		}
	}
	return nil
}
