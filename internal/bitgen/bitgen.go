// Package bitgen converts a placed-and-routed physical design into
// configuration memory and complete bitstreams — the role the Xilinx bitgen
// tool plays at the end of the conventional flow.
package bitgen

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/jbits"
	"repro/internal/netlist"
	"repro/internal/phys"
)

// Generate programs a fresh configuration memory with the design: LUT truth
// tables, slice control bits, pad modes and routing PIPs.
func Generate(d *phys.Design) (*frames.Memory, error) {
	if err := d.CheckPlacement(); err != nil {
		return nil, err
	}
	if err := d.CheckRoutes(); err != nil {
		return nil, err
	}
	mem := frames.New(d.Part)
	jb := jbits.New(mem)
	if err := Program(jb, d); err != nil {
		return nil, err
	}
	return mem, nil
}

// Program writes the design's configuration into an existing memory through
// the JBits layer without clearing it first. JPG uses this to replay a
// sub-module design onto a base bitstream.
func Program(jb *jbits.JBits, d *phys.Design) error {
	for _, c := range d.Netlist.SortedCells() {
		site := d.Cells[c]
		switch c.Kind {
		case netlist.KindLUT4:
			if err := programLUT(jb, c, site); err != nil {
				return err
			}
		case netlist.KindDFF:
			if err := programDFF(jb, c, site); err != nil {
				return err
			}
		}
	}
	for _, p := range d.Netlist.Ports {
		pad := d.Ports[p]
		if err := jb.SetPadMode(pad, device.PadCtlInUse, true); err != nil {
			return err
		}
		ctl := device.PadCtlOutEn
		if p.Dir == netlist.In {
			ctl = device.PadCtlInEn
		}
		if err := jb.SetPadMode(pad, ctl, true); err != nil {
			return err
		}
	}
	for _, n := range d.Netlist.SortedNets() {
		r := d.Routes[n]
		if r == nil {
			continue
		}
		for _, pip := range r.PIPs {
			jb.SetPIP(pip, true)
		}
	}
	return nil
}

func programLUT(jb *jbits.JBits, c *netlist.Cell, site phys.Site) error {
	lut := device.LUTF
	if site.LE == phys.LEG {
		lut = device.LUTG
	}
	if err := jb.SetLUT(site.Row, site.Col, site.Slice, lut, jbits.LUTValue(c.Init)); err != nil {
		return fmt.Errorf("bitgen: LUT %q: %w", c.Name, err)
	}
	// Route the LUT result to the slice output (X or Y).
	mux := device.SliceCtlXMUX
	if site.LE == phys.LEG {
		mux = device.SliceCtlYMUX
	}
	return jb.SetSliceCtl(site.Row, site.Col, site.Slice, mux, true)
}

func programDFF(jb *jbits.JBits, c *netlist.Cell, site phys.Site) error {
	set := func(ctl int, v bool) error {
		return jb.SetSliceCtl(site.Row, site.Col, site.Slice, ctl, v)
	}
	ff, init := device.SliceCtlFFX, device.SliceCtlINITX
	if site.LE == phys.LEG {
		ff, init = device.SliceCtlFFY, device.SliceCtlINITY
	}
	if err := set(ff, true); err != nil {
		return fmt.Errorf("bitgen: DFF %q: %w", c.Name, err)
	}
	if c.Init&1 == 1 {
		if err := set(init, true); err != nil {
			return err
		}
	}
	if c.CE != nil {
		if err := set(device.SliceCtlCEUsed, true); err != nil {
			return err
		}
	}
	if c.Reset != nil {
		if err := set(device.SliceCtlSRUsed, true); err != nil {
			return err
		}
		if err := set(device.SliceCtlSync, true); err != nil {
			return err
		}
	}
	return nil
}

// FullBitstream generates the complete bitstream for a design, as the
// conventional flow's bitgen step produces.
func FullBitstream(d *phys.Design) ([]byte, error) {
	mem, err := Generate(d)
	if err != nil {
		return nil, err
	}
	return bitstream.WriteFull(mem), nil
}
