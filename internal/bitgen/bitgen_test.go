package bitgen

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/jbits"
	"repro/internal/netlist"
	"repro/internal/phys"
	"repro/internal/place"
	"repro/internal/route"
)

func routed(t *testing.T, gen designs.Generator, seed int64) *phys.Design {
	t.Helper()
	nl, err := designs.Standalone(gen, "d", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	d, err := place.Place(device.MustByName("XCV50"), nl, place.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := route.Route(d, route.Options{}); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateProgramsLUTsAndFFs(t *testing.T) {
	d := routed(t, designs.SBoxBank{N: 3, Seed: 5}, 1)
	mem, err := Generate(d)
	if err != nil {
		t.Fatal(err)
	}
	jb := jbits.New(mem)
	for _, c := range d.Netlist.Cells {
		site := d.Cells[c]
		switch c.Kind {
		case netlist.KindLUT4:
			lut := device.LUTF
			if site.LE == phys.LEG {
				lut = device.LUTG
			}
			v, err := jb.GetLUT(site.Row, site.Col, site.Slice, lut)
			if err != nil {
				t.Fatal(err)
			}
			if uint16(v) != c.Init {
				t.Fatalf("LUT %q: memory %04x, want %04x", c.Name, v, c.Init)
			}
		case netlist.KindDFF:
			ff := device.SliceCtlFFX
			if site.LE == phys.LEG {
				ff = device.SliceCtlFFY
			}
			on, err := jb.GetSliceCtl(site.Row, site.Col, site.Slice, ff)
			if err != nil || !on {
				t.Fatalf("DFF %q: FF enable bit not set", c.Name)
			}
		}
	}
}

func TestGenerateProgramsAllRoutedPIPs(t *testing.T) {
	d := routed(t, designs.Counter{Bits: 6}, 2)
	mem, err := Generate(d)
	if err != nil {
		t.Fatal(err)
	}
	jb := jbits.New(mem)
	want := 0
	for _, r := range d.Routes {
		want += len(r.PIPs)
		for _, pip := range r.PIPs {
			if !jb.GetPIP(pip) {
				t.Fatalf("routed pip not programmed: tile R%dC%d idx %d",
					pip.Row+1, pip.Col+1, pip.CatalogIdx)
			}
		}
	}
	// Count all active PIPs on the device; must equal the routed set.
	got := 0
	for r := 0; r < mem.Part.Rows; r++ {
		for c := 0; c < mem.Part.Cols; c++ {
			active, err := jb.ActivePIPs(r, c)
			if err != nil {
				t.Fatal(err)
			}
			got += len(active)
		}
	}
	if got != want {
		t.Fatalf("active pips %d, routed pips %d", got, want)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d := routed(t, designs.LFSR{Bits: 5}, 3)
	m1, err := Generate(d)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Generate(d)
	if err != nil {
		t.Fatal(err)
	}
	if !m1.Equal(m2) {
		t.Fatal("bitgen not deterministic")
	}
}

func TestFullBitstreamRoundTrip(t *testing.T) {
	d := routed(t, designs.StringMatcher{Pattern: "ab"}, 4)
	mem, err := Generate(d)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := FullBitstream(d)
	if err != nil {
		t.Fatal(err)
	}
	fresh := frames.New(d.Part)
	if _, err := bitstream.Apply(fresh, bs); err != nil {
		t.Fatal(err)
	}
	if !fresh.Equal(mem) {
		t.Fatal("bitstream application does not reproduce bitgen memory")
	}
}

func TestGenerateTouchesOnlyPlacedColumns(t *testing.T) {
	d := routed(t, designs.Counter{Bits: 3}, 5)
	mem, err := Generate(d)
	if err != nil {
		t.Fatal(err)
	}
	// Every non-zero frame must belong to a column with any activity:
	// placed cells, routed pips, or pad mode bits.
	touched := map[int]bool{}
	for _, site := range d.Cells {
		touched[d.Part.CLBMajor(site.Col)] = true
	}
	for _, r := range d.Routes {
		for _, pip := range r.PIPs {
			touched[d.Part.CLBMajor(pip.Col)] = true
		}
	}
	for port, pad := range d.Ports {
		_ = port
		touched[d.Part.PadModeBit(pad, 0).FAR.Major()] = true
	}
	for _, far := range mem.NonZeroFrames() {
		if !touched[far.Major()] {
			t.Fatalf("frame %v written outside any placed/routed column", far)
		}
	}
}

func TestGenerateRejectsUnroutedDesign(t *testing.T) {
	nl, err := designs.Standalone(designs.Counter{Bits: 3}, "d", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	d, err := place.Place(device.MustByName("XCV50"), nl, place.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(d); err == nil {
		t.Fatal("unrouted design accepted")
	}
}
