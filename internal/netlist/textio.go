package netlist

// Text serialisation of technology-mapped netlists (".net" files): the
// repository's stand-in for the EDIF/NGD netlist files the Xilinx flow
// exchanges between synthesis and implementation. The format is line-based:
//
//	design "<name>"
//	net "<name>" [clock]
//	port "<name>" in|out net="<net>" [pad="P_L3"]
//	lut "<name>" init=<hex4> in="<net>"[,"<net>"...] out="<net>"
//	dff "<name>" init=<0|1> d="<net>" c="<net>" [ce="<net>"] [r="<net>"] out="<net>"
//
// Nets are declared before use; emit order is deterministic.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// EmitText serialises the design. Names may contain spaces but not quotes
// or commas (the quoting scheme's delimiters).
func EmitText(d *Design) (string, error) {
	if err := d.Validate(); err != nil {
		return "", err
	}
	for _, n := range d.Nets {
		if strings.ContainsAny(n.Name, `",`) {
			return "", fmt.Errorf("netlist: net name %q not serialisable (quote or comma)", n.Name)
		}
	}
	for _, c := range d.Cells {
		if strings.ContainsAny(c.Name, `",`) {
			return "", fmt.Errorf("netlist: cell name %q not serialisable (quote or comma)", c.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# netlist %q: %d cells, %d nets\n", d.Name, len(d.Cells), len(d.Nets))
	fmt.Fprintf(&b, "design %q\n", d.Name)
	for _, n := range d.SortedNets() {
		if !n.Driven() && n.FanOut() == 0 {
			continue // drop orphans
		}
		if n.IsClock {
			fmt.Fprintf(&b, "net %q clock\n", n.Name)
		} else {
			fmt.Fprintf(&b, "net %q\n", n.Name)
		}
	}
	ports := append([]*Port(nil), d.Ports...)
	sort.Slice(ports, func(i, j int) bool { return ports[i].Name < ports[j].Name })
	for _, p := range ports {
		pad := ""
		if p.Pad != "" {
			pad = fmt.Sprintf(" pad=%q", p.Pad)
		}
		fmt.Fprintf(&b, "port %q %s net=%q%s\n", p.Name, p.Dir, p.Net.Name, pad)
	}
	for _, c := range d.SortedCells() {
		switch c.Kind {
		case KindLUT4:
			ins := make([]string, len(c.Inputs))
			for i, in := range c.Inputs {
				ins[i] = strconv.Quote(in.Name)
			}
			fmt.Fprintf(&b, "lut %q init=%04X in=%s out=%q\n",
				c.Name, c.Init, strings.Join(ins, ","), c.Out.Name)
		case KindDFF:
			fmt.Fprintf(&b, "dff %q init=%d d=%q c=%q", c.Name, c.Init&1, c.Inputs[0].Name, c.Clock.Name)
			if c.CE != nil {
				fmt.Fprintf(&b, " ce=%q", c.CE.Name)
			}
			if c.Reset != nil {
				fmt.Fprintf(&b, " r=%q", c.Reset.Name)
			}
			fmt.Fprintf(&b, " out=%q\n", c.Out.Name)
		}
	}
	return b.String(), nil
}

// ParseText reads a serialised netlist.
func ParseText(text string) (*Design, error) {
	var d *Design
	nets := map[string]*Net{}
	needNet := func(name string) (*Net, error) {
		n, ok := nets[name]
		if !ok {
			return nil, fmt.Errorf("undeclared net %q", name)
		}
		return n, nil
	}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		toks, err := tokenizeNet(line)
		if err != nil {
			return nil, fmt.Errorf("netlist: line %d: %w", lineNo+1, err)
		}
		if len(toks) == 0 {
			continue
		}
		if toks[0] != "design" && d == nil {
			return nil, fmt.Errorf("netlist: line %d: design statement must come first", lineNo+1)
		}
		if err := parseTextLine(&d, nets, needNet, toks); err != nil {
			return nil, fmt.Errorf("netlist: line %d: %w", lineNo+1, err)
		}
	}
	if d == nil {
		return nil, fmt.Errorf("netlist: no design statement")
	}
	if err := d.FinishRaw(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func parseTextLine(d **Design, nets map[string]*Net, needNet func(string) (*Net, error), toks []string) error {
	kv := map[string]string{}
	for _, t := range toks[1:] {
		if k, v, ok := strings.Cut(t, "="); ok {
			kv[k] = v
		}
	}
	switch toks[0] {
	case "design":
		if len(toks) < 2 {
			return fmt.Errorf("design statement wants a name")
		}
		*d = NewDesign(toks[1])
		return nil

	case "net":
		if len(toks) < 2 {
			return fmt.Errorf("net statement wants a name")
		}
		n := (*d).NewNet(toks[1])
		if n.Name != toks[1] {
			return fmt.Errorf("duplicate net %q", toks[1])
		}
		for _, t := range toks[2:] {
			if t == "clock" {
				n.IsClock = true
			}
		}
		nets[toks[1]] = n
		return nil

	case "port":
		if len(toks) < 3 {
			return fmt.Errorf("port statement wants name and direction")
		}
		net, err := needNet(kv["net"])
		if err != nil {
			return err
		}
		var dir PortDir
		switch toks[2] {
		case "in":
			dir = In
		case "out":
			dir = Out
		default:
			return fmt.Errorf("bad port direction %q", toks[2])
		}
		p, err := (*d).AddPort(toks[1], dir, net)
		if err != nil {
			return err
		}
		p.Pad = kv["pad"]
		return nil

	case "lut":
		if len(toks) < 2 {
			return fmt.Errorf("lut statement wants a name")
		}
		init, err := strconv.ParseUint(kv["init"], 16, 16)
		if err != nil {
			return fmt.Errorf("bad lut init %q", kv["init"])
		}
		c, err := (*d).NewRawCell(toks[1], KindLUT4, uint16(init))
		if err != nil {
			return err
		}
		if kv["in"] == "" {
			return fmt.Errorf("lut %q has no inputs", toks[1])
		}
		for i, name := range splitQuoted(kv["in"]) {
			if i > 3 {
				return fmt.Errorf("lut %q has too many inputs", toks[1])
			}
			net, err := needNet(name)
			if err != nil {
				return err
			}
			if err := (*d).BindInput(c, fmt.Sprintf("I%d", i), net); err != nil {
				return err
			}
		}
		out, err := needNet(kv["out"])
		if err != nil {
			return err
		}
		return (*d).BindOutput(c, out)

	case "dff":
		if len(toks) < 2 {
			return fmt.Errorf("dff statement wants a name")
		}
		init, err := strconv.ParseUint(kv["init"], 10, 1)
		if err != nil {
			return fmt.Errorf("bad dff init %q", kv["init"])
		}
		c, err := (*d).NewRawCell(toks[1], KindDFF, uint16(init))
		if err != nil {
			return err
		}
		for pin, key := range map[string]string{"D": "d", "C": "c", "CE": "ce", "R": "r"} {
			name, present := kv[key]
			if !present {
				if pin == "D" || pin == "C" {
					return fmt.Errorf("dff %q missing %s", toks[1], key)
				}
				continue
			}
			net, err := needNet(name)
			if err != nil {
				return err
			}
			if err := (*d).BindInput(c, pin, net); err != nil {
				return err
			}
		}
		out, err := needNet(kv["out"])
		if err != nil {
			return err
		}
		return (*d).BindOutput(c, out)
	}
	return fmt.Errorf("unknown statement %q", toks[0])
}

// tokenizeNet splits a line into tokens, keeping key=value pairs intact and
// resolving quoted strings (both bare and inside values).
func tokenizeNet(line string) ([]string, error) {
	var toks []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		ch := line[i]
		switch {
		case ch == '"':
			inQuote = !inQuote
		case (ch == ' ' || ch == '\t') && !inQuote:
			flush()
		default:
			cur.WriteByte(ch)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote")
	}
	flush()
	return toks, nil
}

// splitQuoted splits a comma-separated list whose items were quoted (quotes
// already stripped by tokenizeNet).
func splitQuoted(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}
