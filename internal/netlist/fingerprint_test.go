package netlist

import "testing"

// buildDesign constructs a small design; reversed swaps the construction
// order of the two LUTs (identical sorted content, different slice order).
func buildDesign(t *testing.T, name string, init2 uint16, reversed bool) *Design {
	t.Helper()
	d := NewDesign(name)
	a, err := d.AddPort("a", In, nil)
	if err != nil {
		t.Fatal(err)
	}
	add := func(lname string, init uint16) {
		if _, err := d.AddLUT(lname, init, a.Net); err != nil {
			t.Fatal(err)
		}
	}
	if reversed {
		add("l2", init2)
		add("l1", 0x5555)
	} else {
		add("l1", 0x5555)
		add("l2", init2)
	}
	return d
}

func TestFingerprintStable(t *testing.T) {
	d1 := buildDesign(t, "d", 0xAAAA, false)
	d2 := buildDesign(t, "d", 0xAAAA, false)
	if d1.Fingerprint() != d2.Fingerprint() {
		t.Fatal("identical constructions fingerprint differently")
	}
	if d1.Fingerprint() != d1.Fingerprint() {
		t.Fatal("fingerprint not idempotent")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := buildDesign(t, "d", 0xAAAA, false).Fingerprint()
	if got := buildDesign(t, "other", 0xAAAA, false).Fingerprint(); got == base {
		t.Fatal("design name not covered")
	}
	if got := buildDesign(t, "d", 0xBBBB, false).Fingerprint(); got == base {
		t.Fatal("LUT INIT not covered")
	}
	// The placer iterates Cells in slice order, so construction order is part
	// of the identity even when the sorted content matches.
	if got := buildDesign(t, "d", 0xAAAA, true).Fingerprint(); got == base {
		t.Fatal("construction order not covered")
	}
}

func TestFingerprintCoversConnectivity(t *testing.T) {
	mk := func(clocked bool) string {
		d := NewDesign("d")
		a, _ := d.AddPort("a", In, nil)
		clk, _ := d.AddPort("clk", In, nil)
		lut, err := d.AddLUT("l", 0x1, a.Net)
		if err != nil {
			t.Fatal(err)
		}
		data := lut.Out
		if clocked {
			ff, err := d.AddDFF("f", data, clk.Net, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			data = ff.Out
		}
		if _, err := d.AddPort("q", Out, data); err != nil {
			t.Fatal(err)
		}
		return d.Fingerprint()
	}
	if mk(true) == mk(false) {
		t.Fatal("connectivity change not reflected in fingerprint")
	}
}
