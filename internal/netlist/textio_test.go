package netlist

import (
	"strings"
	"testing"
)

func buildSample(t *testing.T) *Design {
	t.Helper()
	d := NewDesign("sample")
	a, _ := d.AddPort("a", In, nil)
	b, _ := d.AddPort("b", In, nil)
	clk, _ := d.AddPort("clk", In, nil)
	ce, _ := d.AddPort("ce", In, nil)
	lut, err := d.AddLUT("u1/and", 0x8888, a.Net, b.Net)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := d.AddDFF("u1/q", lut.Out, clk.Net, ce.Net, nil)
	if err != nil {
		t.Fatal(err)
	}
	ff.Init = 1
	if _, err := d.AddPort("q", Out, ff.Out); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTextRoundTrip(t *testing.T) {
	d := buildSample(t)
	text, err := EmitText(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseText(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	// Canonical: emit(parse(emit(d))) == emit(d).
	text2, err := EmitText(back)
	if err != nil {
		t.Fatal(err)
	}
	if text != text2 {
		t.Fatalf("text round trip not canonical:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
	// Structure preserved.
	if back.Name != d.Name || len(back.Cells) != len(d.Cells) || len(back.Ports) != len(d.Ports) {
		t.Fatal("round trip lost structure")
	}
	lut, ok := back.Cell("u1/and")
	if !ok || lut.Init != 0x8888 || len(lut.Inputs) != 2 {
		t.Fatalf("lut lost: %+v", lut)
	}
	ff, ok := back.Cell("u1/q")
	if !ok || ff.Init != 1 || ff.CE == nil || ff.Reset != nil {
		t.Fatalf("dff lost: %+v", ff)
	}
	clkNet, _ := back.Net(mustPort(t, back, "clk").Net.Name)
	if !clkNet.IsClock {
		t.Fatal("clock flag lost")
	}
}

func mustPort(t *testing.T, d *Design, name string) *Port {
	t.Helper()
	p, ok := d.Port(name)
	if !ok {
		t.Fatalf("port %q missing", name)
	}
	return p
}

func TestTextPadsPreserved(t *testing.T) {
	d := buildSample(t)
	p, _ := d.Port("clk")
	p.Pad = "P_L1"
	text, err := EmitText(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseText(text)
	if err != nil {
		t.Fatal(err)
	}
	if mustPort(t, back, "clk").Pad != "P_L1" {
		t.Fatal("pad LOC lost")
	}
}

func TestParseTextErrors(t *testing.T) {
	bad := []string{
		``,
		`net "n"`, // no design first
		"design \"d\"\nlut \"l\" init=ZZ in=\"x\" out=\"y\"",               // bad init + undeclared nets
		"design \"d\"\nnet \"n\"\nlut \"l\" init=0 in=\"n\" out=\"ghost\"", // undeclared out
		"design \"d\"\nnet \"n\"\nport \"p\" sideways net=\"n\"",
		"design \"d\"\nnet \"n\"\ndff \"f\" init=0 d=\"n\" out=\"n\"", // missing clock
		"design \"d\"\nwarp \"x\"",
		"design \"d\"\nnet \"unterminated",
	}
	for _, text := range bad {
		if _, err := ParseText(text); err == nil {
			t.Errorf("ParseText(%q) should fail", text)
		}
	}
}

func TestTextNamesWithSpaces(t *testing.T) {
	d := NewDesign("odd names")
	a, _ := d.AddPort("in port", In, nil)
	lut, err := d.AddLUT("cell with space", 0x5555, a.Net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("out port", Out, lut.Out); err != nil {
		t.Fatal(err)
	}
	text, err := EmitText(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseText(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if _, ok := back.Cell("cell with space"); !ok {
		t.Fatal("spaced name lost")
	}
	if !strings.Contains(text, `"cell with space"`) {
		t.Fatal("names not quoted")
	}
}
