package netlist

import "fmt"

// Raw-construction API for file loaders (XDL/NCD readers), which learn a
// design's connectivity incrementally: cells are created unconnected, then
// nets are bound to pins. Callers finish with FinishRaw + Validate.

// NewRawCell registers a cell with no connectivity. LUT4 cells get four
// input slots (trimmed by FinishRaw); DFFs one.
func (d *Design) NewRawCell(name string, kind CellKind, init uint16) (*Cell, error) {
	c := &Cell{Name: name, Kind: kind, Init: init}
	switch kind {
	case KindLUT4:
		c.Inputs = make([]*Net, 4)
	case KindDFF:
		c.Inputs = make([]*Net, 1)
	default:
		return nil, fmt.Errorf("netlist: raw cell %q has unknown kind %v", name, kind)
	}
	return d.addCell(c)
}

// BindOutput makes c the driver of n (pin O or Q by kind).
func (d *Design) BindOutput(c *Cell, n *Net) error {
	if c.Out != nil {
		return fmt.Errorf("netlist: cell %q already drives %q", c.Name, c.Out.Name)
	}
	if n.Driven() {
		return fmt.Errorf("netlist: net %q already driven", n.Name)
	}
	pin := "O"
	if c.Kind == KindDFF {
		pin = "Q"
	}
	c.Out = n
	n.Driver = PinRef{c, pin}
	return nil
}

// BindInput connects n to a named input pin of c: "I0".."I3" for LUTs,
// "D", "C", "CE", "R" for DFFs.
func (d *Design) BindInput(c *Cell, pin string, n *Net) error {
	attach := func(slot **Net) error {
		if *slot != nil {
			return fmt.Errorf("netlist: %s.%s bound twice", c.Name, pin)
		}
		*slot = n
		n.Sinks = append(n.Sinks, PinRef{c, pin})
		return nil
	}
	switch {
	case c.Kind == KindLUT4 && len(pin) == 2 && pin[0] == 'I' && pin[1] >= '0' && pin[1] <= '3':
		return attach(&c.Inputs[pin[1]-'0'])
	case c.Kind == KindDFF && pin == "D":
		return attach(&c.Inputs[0])
	case c.Kind == KindDFF && pin == "C":
		n.IsClock = true
		return attach(&c.Clock)
	case c.Kind == KindDFF && pin == "CE":
		return attach(&c.CE)
	case c.Kind == KindDFF && pin == "R":
		return attach(&c.Reset)
	}
	return fmt.Errorf("netlist: cell %q has no input pin %q", c.Name, pin)
}

// FinishRaw trims unused trailing LUT input slots and rejects gaps, making
// raw-built cells satisfy Validate's arity rules.
func (d *Design) FinishRaw() error {
	for _, c := range d.Cells {
		if c.Kind != KindLUT4 {
			continue
		}
		used := len(c.Inputs)
		for used > 0 && c.Inputs[used-1] == nil {
			used--
		}
		for i := 0; i < used; i++ {
			if c.Inputs[i] == nil {
				return fmt.Errorf("netlist: LUT %q input I%d unbound but I%d bound", c.Name, i, used-1)
			}
		}
		if used == 0 {
			return fmt.Errorf("netlist: LUT %q has no inputs bound", c.Name)
		}
		c.Inputs = c.Inputs[:used]
	}
	return nil
}
