package netlist

import (
	"repro/internal/cache"
)

// Fingerprint returns a stable content hash of the design, for use as a CAD
// cache key component. The hash covers everything downstream stages consume
// — names, kinds, INITs, full connectivity — and deliberately walks cells,
// nets and ports in *construction order*, because the placer and router
// iterate those slices in order: two designs with identical sorted content
// but different construction order may place differently and must not share
// a cache entry.
func (d *Design) Fingerprint() string {
	return d.fingerprint("netlist/v1", true)
}

// StructuralFingerprint is Fingerprint with cell Init values masked out: it
// hashes exactly what the placer and router consume. Two designs that differ
// only in LUT truth tables or flip-flop reset values — the incremental
// flow's INIT-only edit class — share a structural fingerprint, which keys
// the per-column sub-stage cache across an edit storm.
func (d *Design) StructuralFingerprint() string {
	return d.fingerprint("netlist.struct/v1", false)
}

func (d *Design) fingerprint(domain string, withInit bool) string {
	h := cache.NewHasher(domain)
	h.Str("name", d.Name)
	netName := func(n *Net) string {
		if n == nil {
			return ""
		}
		return n.Name
	}
	h.Int("ports", int64(len(d.Ports)))
	for _, p := range d.Ports {
		h.Str("port", p.Name)
		h.Int("dir", int64(p.Dir))
		h.Str("pad", p.Pad)
		h.Str("net", netName(p.Net))
	}
	h.Int("cells", int64(len(d.Cells)))
	for _, c := range d.Cells {
		h.Str("cell", c.Name)
		h.Int("kind", int64(c.Kind))
		if withInit {
			h.Int("init", int64(c.Init))
		}
		h.Int("inputs", int64(len(c.Inputs)))
		for _, in := range c.Inputs {
			h.Str("in", netName(in))
		}
		h.Str("clock", netName(c.Clock))
		h.Str("ce", netName(c.CE))
		h.Str("reset", netName(c.Reset))
		h.Str("out", netName(c.Out))
	}
	h.Int("nets", int64(len(d.Nets)))
	for _, n := range d.Nets {
		h.Str("net", n.Name)
		h.Bool("clock", n.IsClock)
		h.Str("driver", n.Driver.String())
		if n.DriverPort != nil {
			h.Str("driverPort", n.DriverPort.Name)
		}
		h.Int("sinks", int64(len(n.Sinks)))
		for _, s := range n.Sinks {
			h.Str("sink", s.String())
		}
		for _, sp := range n.SinkPorts {
			h.Str("sinkPort", sp.Name)
		}
	}
	return h.Sum().String()
}
