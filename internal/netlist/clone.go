package netlist

import "fmt"

// Clone returns a deep copy of the design: fresh Cell/Net/Port objects with
// identical names, kinds, Init values, connectivity and construction order.
// The copy fingerprints identically to the original and shares no pointers
// with it, so edit sequences can mutate the clone while the original stays
// bound to a previous physical design.
func (d *Design) Clone() *Design {
	out := NewDesign(d.Name)

	netOf := make(map[*Net]*Net, len(d.Nets))
	for _, n := range d.Nets {
		nn := &Net{Name: n.Name, IsClock: n.IsClock}
		out.Nets = append(out.Nets, nn)
		out.netsByName[nn.Name] = nn
		netOf[n] = nn
	}
	mapNet := func(n *Net) *Net {
		if n == nil {
			return nil
		}
		return netOf[n]
	}

	cellOf := make(map[*Cell]*Cell, len(d.Cells))
	for _, c := range d.Cells {
		nc := &Cell{
			Name:  c.Name,
			Kind:  c.Kind,
			Init:  c.Init,
			Clock: mapNet(c.Clock),
			CE:    mapNet(c.CE),
			Reset: mapNet(c.Reset),
			Out:   mapNet(c.Out),
		}
		for _, in := range c.Inputs {
			nc.Inputs = append(nc.Inputs, mapNet(in))
		}
		out.Cells = append(out.Cells, nc)
		out.cellsByName[nc.Name] = nc
		cellOf[c] = nc
	}

	portOf := make(map[*Port]*Port, len(d.Ports))
	for _, p := range d.Ports {
		np := &Port{Name: p.Name, Dir: p.Dir, Net: mapNet(p.Net), Pad: p.Pad}
		out.Ports = append(out.Ports, np)
		out.portsByName[np.Name] = np
		portOf[p] = np
	}

	mapPin := func(pr PinRef) PinRef {
		if pr.Cell == nil {
			return pr
		}
		return PinRef{Cell: cellOf[pr.Cell], Pin: pr.Pin}
	}
	for i, n := range d.Nets {
		nn := out.Nets[i]
		nn.Driver = mapPin(n.Driver)
		if n.DriverPort != nil {
			nn.DriverPort = portOf[n.DriverPort]
		}
		for _, s := range n.Sinks {
			nn.Sinks = append(nn.Sinks, mapPin(s))
		}
		for _, sp := range n.SinkPorts {
			nn.SinkPorts = append(nn.SinkPorts, portOf[sp])
		}
	}
	return out
}

// SetInit changes a cell's Init value in place: the truth table of a LUT4 or
// the reset value (bit 0) of a DFF. This is the canonical INIT-only edit the
// incremental flow splices without re-placing or re-routing.
func (d *Design) SetInit(cellName string, init uint16) error {
	c, ok := d.cellsByName[cellName]
	if !ok {
		return fmt.Errorf("netlist: no cell %q", cellName)
	}
	if c.Kind == KindDFF && init > 1 {
		return fmt.Errorf("netlist: DFF %q init %#x out of range", cellName, init)
	}
	c.Init = init
	return nil
}
