package netlist

import "testing"

func TestBuildAndValidate(t *testing.T) {
	d := NewDesign("t")
	a, err := d.AddPort("a", In, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.AddPort("b", In, nil)
	if err != nil {
		t.Fatal(err)
	}
	clk, err := d.AddPort("clk", In, nil)
	if err != nil {
		t.Fatal(err)
	}
	lut, err := d.AddLUT("and1", 0x8888, a.Net, b.Net)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := d.AddDFF("ff1", lut.Out, clk.Net, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("q", Out, ff.Out); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.LUTs != 1 || st.DFFs != 1 || st.Ports != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if !clk.Net.IsClock {
		t.Fatal("clock net not marked")
	}
	if lut.Out.FanOut() != 1 || a.Net.FanOut() != 1 {
		t.Fatal("fanout bookkeeping wrong")
	}
}

func TestDuplicateNamesRejected(t *testing.T) {
	d := NewDesign("t")
	a, _ := d.AddPort("a", In, nil)
	if _, err := d.AddLUT("x", 0, a.Net); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddLUT("x", 0, a.Net); err == nil {
		t.Fatal("duplicate cell accepted")
	}
	if _, err := d.AddPort("a", In, nil); err == nil {
		t.Fatal("duplicate port accepted")
	}
	// Net name collisions are resolved automatically.
	n1 := d.NewNet("n")
	n2 := d.NewNet("n")
	if n1.Name == n2.Name {
		t.Fatal("net names collide")
	}
}

func TestInvalidCells(t *testing.T) {
	d := NewDesign("t")
	a, _ := d.AddPort("a", In, nil)
	if _, err := d.AddLUT("l0", 0); err == nil {
		t.Fatal("0-input LUT accepted")
	}
	if _, err := d.AddLUT("l5", 0, a.Net, a.Net, a.Net, a.Net, a.Net); err == nil {
		t.Fatal("5-input LUT accepted")
	}
	if _, err := d.AddLUT("ln", 0, nil); err == nil {
		t.Fatal("nil input accepted")
	}
	if _, err := d.AddDFF("f", nil, a.Net, nil, nil); err == nil {
		t.Fatal("DFF without data accepted")
	}
	if _, err := d.AddDFF("f", a.Net, nil, nil, nil); err == nil {
		t.Fatal("DFF without clock accepted")
	}
	if _, err := d.AddPort("o", Out, nil); err == nil {
		t.Fatal("output port without net accepted")
	}
}

func TestInputPortOnDrivenNetRejected(t *testing.T) {
	d := NewDesign("t")
	a, _ := d.AddPort("a", In, nil)
	lut, _ := d.AddLUT("l", 0x5555, a.Net)
	if _, err := d.AddPort("bad", In, lut.Out); err == nil {
		t.Fatal("input port bound to driven net accepted")
	}
}

func TestValidateCatchesDanglingSinks(t *testing.T) {
	d := NewDesign("t")
	a, _ := d.AddPort("a", In, nil)
	if _, err := d.AddLUT("l", 0x5555, a.Net); err != nil {
		t.Fatal(err)
	}
	// Manufacture a sink on an undriven net.
	ghost := d.NewNet("ghost")
	ghost.Sinks = append(ghost.Sinks, PinRef{d.Cells[0], "I1"})
	if err := d.Validate(); err == nil {
		t.Fatal("dangling sink not caught")
	}
}

func TestSortedAccessorsDeterministic(t *testing.T) {
	d := NewDesign("t")
	a, _ := d.AddPort("a", In, nil)
	for _, name := range []string{"z", "m", "b"} {
		if _, err := d.AddLUT(name, 0, a.Net); err != nil {
			t.Fatal(err)
		}
	}
	cells := d.SortedCells()
	if cells[0].Name != "b" || cells[2].Name != "z" {
		t.Fatalf("cells not sorted: %v %v %v", cells[0].Name, cells[1].Name, cells[2].Name)
	}
	nets := d.SortedNets()
	for i := 1; i < len(nets); i++ {
		if nets[i-1].Name >= nets[i].Name {
			t.Fatal("nets not sorted")
		}
	}
}

func TestLookups(t *testing.T) {
	d := NewDesign("t")
	a, _ := d.AddPort("a", In, nil)
	lut, _ := d.AddLUT("l", 0, a.Net)
	if c, ok := d.Cell("l"); !ok || c != lut {
		t.Fatal("cell lookup failed")
	}
	if n, ok := d.Net(lut.Out.Name); !ok || n != lut.Out {
		t.Fatal("net lookup failed")
	}
	if p, ok := d.Port("a"); !ok || p.Net != a.Net {
		t.Fatal("port lookup failed")
	}
	if _, ok := d.Cell("nope"); ok {
		t.Fatal("phantom cell")
	}
}
