package netlist

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cache"
)

// This file implements the structural diff between two netlists that drives
// the incremental flow: classify an edit as empty, INIT-only (truth-table or
// flip-flop reset value changes on otherwise identical structure) or
// structural (anything the placer or router could observe). INIT-only edits
// are the paper's fast path — a LUT reprogram touches only the frames of the
// column holding the cell — while structural edits invalidate placement and
// routing and fall back to a full rebuild.

// InitEdit records an INIT-only change to one cell: same name, kind and
// connectivity in both designs, different Init value.
type InitEdit struct {
	Name             string
	Kind             CellKind
	OldInit, NewInit uint16
}

// DesignDiff is the delta between a previous and a next netlist. Cell, net
// and port deltas are recorded by name, sorted, so the diff itself is
// deterministic regardless of map iteration order.
type DesignDiff struct {
	// PrevFP and NextFP are the two designs' content fingerprints.
	PrevFP, NextFP string

	// InitEdits lists cells whose Init changed but whose structure did not.
	InitEdits []InitEdit

	// Structural deltas. Any non-empty slice (or flag) here means placement
	// and routing cannot be reused.
	AddedCells, RemovedCells, RewiredCells []string
	AddedNets, RemovedNets, RewiredNets    []string
	AddedPorts, RemovedPorts, RewiredPorts []string
	// NameChanged is set when the design names differ.
	NameChanged bool
	// OrderChanged is set when both designs hold the same content but in a
	// different construction order. Placement iterates construction order,
	// so reordering is a structural change even though no element differs.
	OrderChanged bool
}

// Empty reports whether the two designs are identical (same fingerprint-
// relevant content in the same order).
func (d *DesignDiff) Empty() bool {
	return len(d.InitEdits) == 0 && !d.structural()
}

// InitOnly reports whether the edit is confined to cell Init values: the
// fast incremental path applies, because neither the placer nor the router
// consults Init.
func (d *DesignDiff) InitOnly() bool {
	return len(d.InitEdits) > 0 && !d.structural()
}

// Structural reports whether the edit changes anything placement or routing
// could observe, forcing a full rebuild.
func (d *DesignDiff) Structural() bool { return d.structural() }

func (d *DesignDiff) structural() bool {
	return len(d.AddedCells)+len(d.RemovedCells)+len(d.RewiredCells)+
		len(d.AddedNets)+len(d.RemovedNets)+len(d.RewiredNets)+
		len(d.AddedPorts)+len(d.RemovedPorts)+len(d.RewiredPorts) > 0 ||
		d.NameChanged || d.OrderChanged
}

// Class names the diff's category for stats and spans.
func (d *DesignDiff) Class() string {
	switch {
	case d.Empty():
		return "empty"
	case d.InitOnly():
		return "init-only"
	default:
		return "structural"
	}
}

// Summary renders a short human-readable description of the delta.
func (d *DesignDiff) Summary() string {
	if d.Empty() {
		return "no change"
	}
	var parts []string
	add := func(n int, what string) {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, what))
		}
	}
	add(len(d.InitEdits), "init edits")
	add(len(d.AddedCells), "cells added")
	add(len(d.RemovedCells), "cells removed")
	add(len(d.RewiredCells), "cells rewired")
	add(len(d.AddedNets)+len(d.RemovedNets)+len(d.RewiredNets), "net changes")
	add(len(d.AddedPorts)+len(d.RemovedPorts)+len(d.RewiredPorts), "port changes")
	if d.NameChanged {
		parts = append(parts, "design renamed")
	}
	if d.OrderChanged {
		parts = append(parts, "construction order changed")
	}
	return strings.Join(parts, ", ")
}

// Fingerprint returns a stable hash of the transition this diff describes,
// for use in sub-stage cache keys: it covers both endpoint fingerprints, so
// two diffs share a key exactly when they map the same previous design to
// the same next design.
func (d *DesignDiff) Fingerprint() string {
	h := cache.NewHasher("netlist.diff/v1")
	h.Str("prev", d.PrevFP)
	h.Str("next", d.NextFP)
	return h.Sum().String()
}

// cellSig is a cell's placement-visible structure, excluding Init.
func cellSig(c *Cell) string {
	var b strings.Builder
	b.WriteString(c.Kind.String())
	for _, in := range c.Inputs {
		b.WriteByte('|')
		b.WriteString(netName(in))
	}
	for _, n := range []*Net{c.Clock, c.CE, c.Reset, c.Out} {
		b.WriteByte('|')
		b.WriteString(netName(n))
	}
	return b.String()
}

// netSig is a net's connectivity signature.
func netSig(n *Net) string {
	var b strings.Builder
	if n.IsClock {
		b.WriteString("clk|")
	}
	b.WriteString(n.Driver.String())
	if n.DriverPort != nil {
		b.WriteByte('|')
		b.WriteString(n.DriverPort.Name)
	}
	for _, s := range n.Sinks {
		b.WriteByte('|')
		b.WriteString(s.String())
	}
	for _, sp := range n.SinkPorts {
		b.WriteByte('|')
		b.WriteString(sp.Name)
	}
	return b.String()
}

// portSig is a port's signature.
func portSig(p *Port) string {
	return p.Dir.String() + "|" + p.Pad + "|" + netName(p.Net)
}

func netName(n *Net) string {
	if n == nil {
		return ""
	}
	return n.Name
}

// Diff computes the delta from prev to next. Both designs are read-only
// inputs; the result is self-contained (names and values, no pointers into
// either design).
func Diff(prev, next *Design) *DesignDiff {
	d := &DesignDiff{
		PrevFP:      prev.Fingerprint(),
		NextFP:      next.Fingerprint(),
		NameChanged: prev.Name != next.Name,
	}

	for _, nc := range next.Cells {
		pc, ok := prev.cellsByName[nc.Name]
		switch {
		case !ok:
			d.AddedCells = append(d.AddedCells, nc.Name)
		case cellSig(pc) != cellSig(nc):
			d.RewiredCells = append(d.RewiredCells, nc.Name)
		case pc.Init != nc.Init:
			d.InitEdits = append(d.InitEdits, InitEdit{
				Name: nc.Name, Kind: nc.Kind, OldInit: pc.Init, NewInit: nc.Init,
			})
		}
	}
	for _, pc := range prev.Cells {
		if _, ok := next.cellsByName[pc.Name]; !ok {
			d.RemovedCells = append(d.RemovedCells, pc.Name)
		}
	}

	for _, nn := range next.Nets {
		pn, ok := prev.netsByName[nn.Name]
		switch {
		case !ok:
			d.AddedNets = append(d.AddedNets, nn.Name)
		case netSig(pn) != netSig(nn):
			d.RewiredNets = append(d.RewiredNets, nn.Name)
		}
	}
	for _, pn := range prev.Nets {
		if _, ok := next.netsByName[pn.Name]; !ok {
			d.RemovedNets = append(d.RemovedNets, pn.Name)
		}
	}

	for _, np := range next.Ports {
		pp, ok := prev.portsByName[np.Name]
		switch {
		case !ok:
			d.AddedPorts = append(d.AddedPorts, np.Name)
		case portSig(pp) != portSig(np):
			d.RewiredPorts = append(d.RewiredPorts, np.Name)
		}
	}
	for _, pp := range prev.Ports {
		if _, ok := next.portsByName[pp.Name]; !ok {
			d.RemovedPorts = append(d.RemovedPorts, pp.Name)
		}
	}

	// Same element sets, but a different construction order still changes
	// what the placer does (it iterates the slices in order).
	if !d.structural() {
		d.OrderChanged = orderDiffers(prev, next)
	}

	sort.Slice(d.InitEdits, func(i, j int) bool { return d.InitEdits[i].Name < d.InitEdits[j].Name })
	for _, s := range [][]string{
		d.AddedCells, d.RemovedCells, d.RewiredCells,
		d.AddedNets, d.RemovedNets, d.RewiredNets,
		d.AddedPorts, d.RemovedPorts, d.RewiredPorts,
	} {
		sort.Strings(s)
	}
	return d
}

func orderDiffers(prev, next *Design) bool {
	for i := range prev.Cells {
		if prev.Cells[i].Name != next.Cells[i].Name {
			return true
		}
	}
	for i := range prev.Nets {
		if prev.Nets[i].Name != next.Nets[i].Name {
			return true
		}
	}
	for i := range prev.Ports {
		if prev.Ports[i].Name != next.Ports[i].Name {
			return true
		}
	}
	return false
}
