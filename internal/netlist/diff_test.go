package netlist

import "testing"

// sample builds a tiny design: two LUTs feeding a DFF.
func sample(t *testing.T) *Design {
	t.Helper()
	d := NewDesign("top")
	in, err := d.AddPort("a", In, nil)
	if err != nil {
		t.Fatal(err)
	}
	clkPort, err := d.AddPort("clk", In, nil)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := d.AddLUT("l1", 0x00ff, in.Net)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := d.AddLUT("l2", 0x0f0f, l1.Out)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := d.AddDFF("ff", l2.Out, clkPort.Net, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("q", Out, ff.Out); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCloneIsDeepAndIdentical(t *testing.T) {
	d := sample(t)
	c := d.Clone()
	if c.Fingerprint() != d.Fingerprint() {
		t.Fatal("clone fingerprint differs")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mutating the clone must not touch the original.
	if err := c.SetInit("l1", 0xdead); err != nil {
		t.Fatal(err)
	}
	orig, _ := d.Cell("l1")
	if orig.Init != 0x00ff {
		t.Fatal("clone mutation leaked into the original")
	}
	if c.Fingerprint() == d.Fingerprint() {
		t.Fatal("edited clone still fingerprints like the original")
	}
	if c.StructuralFingerprint() != d.StructuralFingerprint() {
		t.Fatal("INIT edit changed the structural fingerprint")
	}
}

func TestSetInitValidation(t *testing.T) {
	d := sample(t)
	if err := d.SetInit("nope", 1); err == nil {
		t.Fatal("unknown cell accepted")
	}
	if err := d.SetInit("ff", 2); err == nil {
		t.Fatal("out-of-range DFF init accepted")
	}
	if err := d.SetInit("ff", 1); err != nil {
		t.Fatal(err)
	}
}

func TestDiffEmpty(t *testing.T) {
	d := sample(t)
	diff := Diff(d, d.Clone())
	if !diff.Empty() || diff.InitOnly() || diff.Structural() {
		t.Fatalf("identical designs diffed as %s: %s", diff.Class(), diff.Summary())
	}
}

func TestDiffInitOnly(t *testing.T) {
	d := sample(t)
	next := d.Clone()
	if err := next.SetInit("l2", 0xffff); err != nil {
		t.Fatal(err)
	}
	if err := next.SetInit("ff", 1); err != nil {
		t.Fatal(err)
	}
	diff := Diff(d, next)
	if !diff.InitOnly() {
		t.Fatalf("INIT edit classified %s: %s", diff.Class(), diff.Summary())
	}
	if len(diff.InitEdits) != 2 {
		t.Fatalf("%d init edits, want 2", len(diff.InitEdits))
	}
	// Sorted by name: ff before l2.
	if diff.InitEdits[0].Name != "ff" || diff.InitEdits[1].Name != "l2" {
		t.Fatalf("edits out of order: %+v", diff.InitEdits)
	}
	if e := diff.InitEdits[1]; e.OldInit != 0x0f0f || e.NewInit != 0xffff {
		t.Fatalf("l2 edit %+v", e)
	}
	if Diff(d, next).Fingerprint() != diff.Fingerprint() {
		t.Fatal("diff fingerprint unstable")
	}
	if Diff(next, d).Fingerprint() == diff.Fingerprint() {
		t.Fatal("reversed diff shares a fingerprint")
	}
}

func TestDiffStructural(t *testing.T) {
	d := sample(t)

	// Added cell.
	next := d.Clone()
	l1, _ := next.Cell("l1")
	if _, err := next.AddLUT("extra", 1, l1.Out); err != nil {
		t.Fatal(err)
	}
	if diff := Diff(d, next); !diff.Structural() || len(diff.AddedCells) != 1 {
		t.Fatalf("added cell classified %s", diff.Class())
	}
	// Removal is the reverse direction.
	if diff := Diff(next, d); len(diff.RemovedCells) != 1 {
		t.Fatalf("removed cell not seen: %s", diff.Summary())
	}

	// Rewire: swap LUT inputs.
	next = d.Clone()
	l2, _ := next.Cell("l2")
	in, _ := next.Net("a")
	l2.Inputs[0] = in
	diff := Diff(d, next)
	if !diff.Structural() {
		t.Fatalf("rewire classified %s", diff.Class())
	}
	found := false
	for _, name := range diff.RewiredCells {
		if name == "l2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("l2 not in rewired set: %v", diff.RewiredCells)
	}

	// Rename.
	next = d.Clone()
	next.Name = "other"
	if diff := Diff(d, next); !diff.NameChanged || !diff.Structural() {
		t.Fatal("rename not structural")
	}
}

func TestDiffOrderChange(t *testing.T) {
	// Same content, different construction order: structural, because the
	// placer iterates construction order.
	// Two independent LUTs on separate inputs: swapping the cells'
	// construction order leaves every signature identical (each net keeps
	// its own single sink) but reorders the Cells and Nets slices.
	build := func(swap bool) *Design {
		d := NewDesign("top")
		a, _ := d.AddPort("a", In, nil)
		b, _ := d.AddPort("b", In, nil)
		add := func(name string, in *Net) {
			if _, err := d.AddLUT(name, 3, in); err != nil {
				t.Fatal(err)
			}
		}
		if swap {
			add("y", b.Net)
			add("x", a.Net)
		} else {
			add("x", a.Net)
			add("y", b.Net)
		}
		return d
	}
	diff := Diff(build(false), build(true))
	if !diff.OrderChanged || !diff.Structural() {
		t.Fatalf("order change classified %s", diff.Class())
	}
}
