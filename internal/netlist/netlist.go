// Package netlist models technology-mapped logical designs: networks of
// 4-input LUTs and D flip-flops connected by single-driver nets, with
// top-level ports. This is the level the mapping stage produces and the
// placer and router consume.
package netlist

import (
	"fmt"
	"sort"
)

// CellKind enumerates primitive cell types.
type CellKind int

const (
	// KindLUT4 is a 4-input lookup table. Pins: I0..I3 (inputs), O (output).
	KindLUT4 CellKind = iota
	// KindDFF is a D flip-flop. Pins: D (input), C (clock), optional CE
	// (clock enable), R (reset), and Q (output).
	KindDFF
)

func (k CellKind) String() string {
	switch k {
	case KindLUT4:
		return "LUT4"
	case KindDFF:
		return "DFF"
	}
	return fmt.Sprintf("CellKind(%d)", int(k))
}

// PortDir is a top-level port direction.
type PortDir int

const (
	In PortDir = iota
	Out
)

func (d PortDir) String() string {
	if d == In {
		return "in"
	}
	return "out"
}

// Cell is one primitive instance.
type Cell struct {
	Name string
	Kind CellKind
	// Init is the truth table for LUT4 cells (bit i = output for input
	// value i over I3..I0), and the reset value for DFFs (bit 0).
	Init uint16
	// Inputs are the input nets: LUT4 uses I0..I3 (nil for unused, but no
	// gaps); DFF uses exactly one (D).
	Inputs []*Net
	// Clock, CE and Reset connect DFF control pins (nil when unused).
	Clock, CE, Reset *Net
	// Out is the net driven by O/Q (nil only while under construction).
	Out *Net
}

// PinRef names one cell pin, for net connectivity.
type PinRef struct {
	Cell *Cell
	Pin  string // "I0".."I3", "D", "C", "CE", "R", "O", "Q"
}

func (pr PinRef) String() string {
	if pr.Cell == nil {
		return "<port>"
	}
	return pr.Cell.Name + "." + pr.Pin
}

// Net is a single-driver signal.
type Net struct {
	Name string
	// Driver is the driving pin; Cell is nil when an input port drives the
	// net (DriverPort names it).
	Driver     PinRef
	DriverPort *Port
	Sinks      []PinRef
	// SinkPorts lists output ports reading the net.
	SinkPorts []*Port
	// IsClock marks nets distributed on global lines rather than general
	// routing.
	IsClock bool
}

// Driven reports whether the net has a driver.
func (n *Net) Driven() bool { return n.Driver.Cell != nil || n.DriverPort != nil }

// FanOut returns the number of sink pins and ports.
func (n *Net) FanOut() int { return len(n.Sinks) + len(n.SinkPorts) }

// Port is a top-level design port.
type Port struct {
	Name string
	Dir  PortDir
	Net  *Net
	// Pad optionally pins the port to a named device pad (e.g. "P_L3"),
	// a LOC constraint carried in the UCF.
	Pad string
}

// Design is a technology-mapped netlist.
type Design struct {
	Name  string
	Cells []*Cell
	Nets  []*Net
	Ports []*Port

	cellsByName map[string]*Cell
	netsByName  map[string]*Net
	portsByName map[string]*Port
}

// NewDesign returns an empty design.
func NewDesign(name string) *Design {
	return &Design{
		Name:        name,
		cellsByName: map[string]*Cell{},
		netsByName:  map[string]*Net{},
		portsByName: map[string]*Port{},
	}
}

// NewNet creates a named net. Names must be unique; a suffix is appended on
// collision so generators can be careless about uniqueness.
func (d *Design) NewNet(name string) *Net {
	name = d.uniqueNetName(name)
	n := &Net{Name: name}
	d.Nets = append(d.Nets, n)
	d.netsByName[name] = n
	return n
}

func (d *Design) uniqueNetName(name string) string {
	if _, taken := d.netsByName[name]; !taken {
		return name
	}
	for i := 1; ; i++ {
		cand := fmt.Sprintf("%s_%d", name, i)
		if _, taken := d.netsByName[cand]; !taken {
			return cand
		}
	}
}

// Net looks up a net by name.
func (d *Design) Net(name string) (*Net, bool) {
	n, ok := d.netsByName[name]
	return n, ok
}

// Cell looks up a cell by name.
func (d *Design) Cell(name string) (*Cell, bool) {
	c, ok := d.cellsByName[name]
	return c, ok
}

// Port looks up a port by name.
func (d *Design) Port(name string) (*Port, bool) {
	p, ok := d.portsByName[name]
	return p, ok
}

func (d *Design) addCell(c *Cell) (*Cell, error) {
	if _, dup := d.cellsByName[c.Name]; dup {
		return nil, fmt.Errorf("netlist: duplicate cell %q", c.Name)
	}
	d.Cells = append(d.Cells, c)
	d.cellsByName[c.Name] = c
	return c, nil
}

// AddLUT adds a LUT4 driving a fresh net. inputs supplies 1..4 input nets.
func (d *Design) AddLUT(name string, init uint16, inputs ...*Net) (*Cell, error) {
	if len(inputs) == 0 || len(inputs) > 4 {
		return nil, fmt.Errorf("netlist: LUT %q with %d inputs", name, len(inputs))
	}
	for i, in := range inputs {
		if in == nil {
			return nil, fmt.Errorf("netlist: LUT %q input I%d is nil", name, i)
		}
	}
	c := &Cell{Name: name, Kind: KindLUT4, Init: init, Inputs: append([]*Net(nil), inputs...)}
	if _, err := d.addCell(c); err != nil {
		return nil, err
	}
	for i, in := range inputs {
		in.Sinks = append(in.Sinks, PinRef{c, fmt.Sprintf("I%d", i)})
	}
	c.Out = d.NewNet(name + "_o")
	c.Out.Driver = PinRef{c, "O"}
	return c, nil
}

// AddDFF adds a flip-flop driving a fresh net. ce and reset may be nil.
func (d *Design) AddDFF(name string, data, clock, ce, reset *Net) (*Cell, error) {
	if data == nil || clock == nil {
		return nil, fmt.Errorf("netlist: DFF %q needs data and clock nets", name)
	}
	c := &Cell{Name: name, Kind: KindDFF, Inputs: []*Net{data}, Clock: clock, CE: ce, Reset: reset}
	if _, err := d.addCell(c); err != nil {
		return nil, err
	}
	data.Sinks = append(data.Sinks, PinRef{c, "D"})
	clock.IsClock = true
	clock.Sinks = append(clock.Sinks, PinRef{c, "C"})
	if ce != nil {
		ce.Sinks = append(ce.Sinks, PinRef{c, "CE"})
	}
	if reset != nil {
		reset.Sinks = append(reset.Sinks, PinRef{c, "R"})
	}
	c.Out = d.NewNet(name + "_q")
	c.Out.Driver = PinRef{c, "Q"}
	return c, nil
}

// AddPort adds a top-level port. Input ports drive a fresh net; output ports
// must be bound to a net with BindOutput (or pass net here).
func (d *Design) AddPort(name string, dir PortDir, net *Net) (*Port, error) {
	if _, dup := d.portsByName[name]; dup {
		return nil, fmt.Errorf("netlist: duplicate port %q", name)
	}
	p := &Port{Name: name, Dir: dir}
	switch dir {
	case In:
		if net == nil {
			net = d.NewNet(name)
		}
		if net.Driven() {
			return nil, fmt.Errorf("netlist: input port %q on already-driven net %q", name, net.Name)
		}
		p.Net = net
		net.DriverPort = p
	case Out:
		if net == nil {
			return nil, fmt.Errorf("netlist: output port %q needs a net", name)
		}
		p.Net = net
		net.SinkPorts = append(net.SinkPorts, p)
	}
	d.Ports = append(d.Ports, p)
	d.portsByName[name] = p
	return p, nil
}

// Stats summarises design size.
type Stats struct {
	LUTs, DFFs, Nets, Ports int
}

// Stats returns design size counters.
func (d *Design) Stats() Stats {
	s := Stats{Nets: len(d.Nets), Ports: len(d.Ports)}
	for _, c := range d.Cells {
		switch c.Kind {
		case KindLUT4:
			s.LUTs++
		case KindDFF:
			s.DFFs++
		}
	}
	return s
}

// Validate checks structural invariants: unique names, single drivers, no
// dangling connectivity, pin arity.
func (d *Design) Validate() error {
	for _, n := range d.Nets {
		if !n.Driven() {
			if n.FanOut() > 0 {
				return fmt.Errorf("netlist: net %q has sinks but no driver", n.Name)
			}
			continue
		}
		if n.Driver.Cell != nil && n.DriverPort != nil {
			return fmt.Errorf("netlist: net %q has two drivers", n.Name)
		}
	}
	for _, c := range d.Cells {
		switch c.Kind {
		case KindLUT4:
			if len(c.Inputs) == 0 || len(c.Inputs) > 4 {
				return fmt.Errorf("netlist: LUT %q has %d inputs", c.Name, len(c.Inputs))
			}
		case KindDFF:
			if len(c.Inputs) != 1 || c.Clock == nil {
				return fmt.Errorf("netlist: DFF %q missing data/clock", c.Name)
			}
		}
		if c.Out == nil {
			return fmt.Errorf("netlist: cell %q drives no net", c.Name)
		}
		if c.Out.Driver.Cell != c {
			return fmt.Errorf("netlist: cell %q output net %q driver mismatch", c.Name, c.Out.Name)
		}
	}
	for _, p := range d.Ports {
		if p.Net == nil {
			return fmt.Errorf("netlist: port %q unconnected", p.Name)
		}
	}
	return nil
}

// SortedCells returns cells ordered by name (for deterministic iteration in
// tools and file emitters).
func (d *Design) SortedCells() []*Cell {
	out := append([]*Cell(nil), d.Cells...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SortedNets returns nets ordered by name.
func (d *Design) SortedNets() []*Net {
	out := append([]*Net(nil), d.Nets...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
