package obs

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

func TestSpanEndErrTagsRecord(t *testing.T) {
	col := New()
	ctx := col.Attach(context.Background())

	_, sp := Start(ctx, "ok")
	sp.End()
	_, sp = Start(ctx, "bad")
	sp.EndErr(errors.New("boom"))
	_, sp = Start(ctx, "failed-then-ended")
	sp.Fail(errors.New("later"))
	sp.End()

	spans := col.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Err != "" {
		t.Fatalf("clean span carries err %q", spans[0].Err)
	}
	if spans[1].Err != "boom" {
		t.Fatalf("EndErr span err = %q, want boom", spans[1].Err)
	}
	if spans[2].Err != "later" {
		t.Fatalf("Fail+End span err = %q, want later", spans[2].Err)
	}
}

func TestSpanEndErrNilSafe(t *testing.T) {
	// nil span (no collector) and nil error must both be no-ops.
	var sp *Span
	sp.Fail(errors.New("x"))
	sp.EndErr(errors.New("x"))

	col := New()
	ctx := col.Attach(context.Background())
	_, s := Start(ctx, "a")
	s.EndErr(nil)
	if got := col.Spans()[0].Err; got != "" {
		t.Fatalf("EndErr(nil) set err %q", got)
	}
}

func TestCountError(t *testing.T) {
	const stage = "testonly_count_error_stage"
	before := GetCounter("errors_total." + stage).Value()
	CountError(stage)
	CountError(stage)
	if got := GetCounter("errors_total." + stage).Value(); got != before+2 {
		t.Fatalf("errors_total.%s = %d, want %d", stage, got, before+2)
	}
}

func TestSpanRecordAttr(t *testing.T) {
	rec := SpanRecord{Attrs: []Attr{{Key: "request_id", Value: "abc"}, {Key: "n", Value: int64(3)}}}
	if got := rec.Attr("request_id"); got != "abc" {
		t.Fatalf("Attr(request_id) = %q", got)
	}
	if got := rec.Attr("n"); got != "" {
		t.Fatalf("non-string attr returned %q, want empty", got)
	}
	if got := rec.Attr("missing"); got != "" {
		t.Fatalf("missing attr returned %q, want empty", got)
	}
}

func TestChromeTraceCarriesErrorArg(t *testing.T) {
	col := New()
	ctx := col.Attach(context.Background())
	_, sp := Start(ctx, "stage")
	sp.EndErr(errors.New("exploded"))
	var buf bytes.Buffer
	if err := col.WriteChromeTrace(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"error": "exploded"`)) {
		t.Fatalf("chrome trace lacks error arg:\n%s", buf.String())
	}
}

func TestHistogramQuantileFromBuckets(t *testing.T) {
	// Hand-built snapshot: 50 obs <= 1, 45 in (1,3], 5 in (3,7], max 6.
	h := HistogramSnapshot{
		Count: 100, Sum: 200, Min: 1, Max: 6,
		Buckets: []Bucket{{Le: 1, N: 50}, {Le: 3, N: 45}, {Le: 7, N: 5}},
	}
	if got := h.Quantile(0.50); got != 1 {
		t.Fatalf("p50 = %d, want 1", got)
	}
	if got := h.Quantile(0.95); got != 3 {
		t.Fatalf("p95 = %d, want 3", got)
	}
	// p99 lands in the top bucket; its Le (7) clamps to the observed max.
	if got := h.Quantile(0.99); got != 6 {
		t.Fatalf("p99 = %d, want 6 (clamped to max)", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
}

func TestSnapshotPopulatesQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.GetHistogram("q_ns")
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	hs := reg.Snapshot().Histograms["q_ns"]
	if hs.P50 == 0 || hs.P95 == 0 || hs.P99 == 0 {
		t.Fatalf("quantiles not populated: %+v", hs)
	}
	if hs.P50 > hs.P95 || hs.P95 > hs.P99 {
		t.Fatalf("quantiles not monotone: p50 %d p95 %d p99 %d", hs.P50, hs.P95, hs.P99)
	}
	if hs.P99 > hs.Max {
		t.Fatalf("p99 %d above max %d", hs.P99, hs.Max)
	}
}
