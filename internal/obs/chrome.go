package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event JSON array
// (https://chromium.googlesource.com/catapult trace-event format). Spans
// become "X" (complete) events; process and lane names become "M"
// (metadata) events. Timestamps are microseconds from the collector epoch.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Ts   *float64       `json:"ts,omitempty"`
	Dur  *float64       `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func micros(d time.Duration) *float64 {
	v := float64(d.Nanoseconds()) / 1e3
	return &v
}

// ChromeTrace renders the collected spans in the Chrome trace-event JSON
// format: open the file in chrome://tracing or https://ui.perfetto.dev to
// see per-stage spans nested on per-worker lanes. Events are ordered by
// (lane, start, id), so the output is reproducible for a given span set.
func (c *Collector) ChromeTrace(processName string) ([]byte, error) {
	return ChromeTraceJSON(processName, c.Spans(), c.LaneNames())
}

// ChromeTraceJSON renders an arbitrary span set (e.g. a flight-recorder
// dump) as Chrome trace-event JSON. lanes may be nil; named lanes emit
// thread_name metadata. Spans are reordered in place by (lane, start, id).
func ChromeTraceJSON(processName string, spans []SpanRecord, lanes map[int64]string) ([]byte, error) {
	events := make([]chromeEvent, 0, len(spans)+len(lanes)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": processName},
	})
	laneIDs := make([]int64, 0, len(lanes))
	for id := range lanes {
		laneIDs = append(laneIDs, id)
	}
	sort.Slice(laneIDs, func(i, j int) bool { return laneIDs[i] < laneIDs[j] })
	for _, id := range laneIDs {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: id,
			Args: map[string]any{"name": lanes[id]},
		})
	}
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Lane != b.Lane {
			return a.Lane < b.Lane
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.ID < b.ID
	})
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name, Ph: "X", Pid: 1, Tid: s.Lane,
			Ts: micros(s.Start), Dur: micros(s.Dur),
		}
		if len(s.Attrs) > 0 || s.Err != "" {
			ev.Args = make(map[string]any, len(s.Attrs)+1)
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
			if s.Err != "" {
				ev.Args["error"] = s.Err
			}
		}
		events = append(events, ev)
	}
	return json.MarshalIndent(events, "", " ")
}

// WriteChromeTrace writes ChromeTrace output to w.
func (c *Collector) WriteChromeTrace(w io.Writer, processName string) error {
	buf, err := c.ChromeTrace(processName)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// Export is the plain-JSON dump of one tool run: every span plus a metrics
// snapshot, under a schema version for downstream consumers.
type Export struct {
	Version int               `json:"version"`
	Process string            `json:"process"`
	Lanes   map[string]string `json:"lanes,omitempty"`
	Spans   []SpanRecord      `json:"spans"`
	Metrics Snapshot          `json:"metrics"`
}

// ExportVersion is the schema version of Export and of the perf records the
// CLIs emit. Version 3 added build-cache statistics (nullable speedups,
// warm-rerun timings and per-stage hit rates) to the jpgbench record.
// Version 4 added derived histogram quantiles (p50/p95/p99) to metric
// snapshots and error status (err) to span records.
// Version 5 added multi-start placement metadata (requested_starts) and a
// per-stage breakdown (seconds and fraction of CAD time in map, place,
// route and bitgen) to each jpgbench experiment record, the numbers CI's
// stage-time regression gate compares against its committed baseline.
const ExportVersion = 5

// Export snapshots the collector's spans together with the registry's
// metrics.
func (c *Collector) Export(processName string, reg *Registry) Export {
	lanes := map[string]string{}
	for id, name := range c.LaneNames() {
		lanes[fmt.Sprint(id)] = name
	}
	return Export{
		Version: ExportVersion,
		Process: processName,
		Lanes:   lanes,
		Spans:   c.Spans(),
		Metrics: reg.Snapshot(),
	}
}

// StageSummary aggregates completed spans by name — count and total
// duration, sorted by descending total — the per-stage table `jpg -v` and
// `jpgbench -metrics` print. Span hierarchy is flattened: a parent's time
// includes its children's.
func (c *Collector) StageSummary() string {
	type agg struct {
		name  string
		n     int
		total time.Duration
	}
	byName := map[string]*agg{}
	for _, s := range c.Spans() {
		a, ok := byName[s.Name]
		if !ok {
			a = &agg{name: s.Name}
			byName[s.Name] = a
		}
		a.n++
		a.total += s.Dur
	}
	aggs := make([]*agg, 0, len(byName))
	for _, a := range byName {
		aggs = append(aggs, a)
	}
	sort.Slice(aggs, func(i, j int) bool {
		if aggs[i].total != aggs[j].total {
			return aggs[i].total > aggs[j].total
		}
		return aggs[i].name < aggs[j].name
	})
	var b strings.Builder
	for _, a := range aggs {
		fmt.Fprintf(&b, "%-24s x%-5d total %v\n", a.name, a.n, a.total.Round(time.Microsecond))
	}
	return b.String()
}
