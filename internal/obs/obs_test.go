package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock steps a fixed amount per reading, making span timings (and
// therefore exports) fully deterministic.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{t: time.Unix(0, 0), step: step}
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(f.step)
	return f.t
}

func TestSpanHierarchyAndLanes(t *testing.T) {
	c := New()
	ctx := c.Attach(context.Background())

	ctx, root := Start(ctx, "root")
	lctx := Lane(ctx, "worker 0")
	_, child := Start(lctx, "child")
	child.End()
	root.End()

	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Completion order: child first.
	if spans[0].Name != "child" || spans[1].Name != "root" {
		t.Fatalf("unexpected span order: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Errorf("child parent = %d, want root id %d", spans[0].Parent, spans[1].ID)
	}
	if spans[0].Lane == spans[1].Lane {
		t.Errorf("child should be on its own lane (child %d, root %d)", spans[0].Lane, spans[1].Lane)
	}
	lanes := c.LaneNames()
	if lanes[0] != "main" || lanes[spans[0].Lane] != "worker 0" {
		t.Errorf("lane names = %v", lanes)
	}
}

func TestNilSpanIsInert(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "nothing")
	if sp != nil {
		t.Fatal("Start without a collector must return a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("Start without a collector must return the context unchanged")
	}
	// All methods are no-ops on nil.
	sp.SetInt("k", 1)
	sp.SetStr("k", "v")
	sp.End()
	sp.End()
	if Active(ctx) {
		t.Fatal("Active must be false without a collector")
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	c := New()
	ctx := c.Attach(context.Background())
	_, sp := Start(ctx, "once")
	sp.End()
	sp.End()
	if n := len(c.Spans()); n != 1 {
		t.Fatalf("double End recorded %d spans, want 1", n)
	}
}

// TestConcurrentSpansAndMetrics hammers one collector and one registry from
// many goroutines; run with -race this is the layer's thread-safety proof.
func TestConcurrentSpansAndMetrics(t *testing.T) {
	c := New()
	root := c.Attach(context.Background())
	reg := NewRegistry()

	const goroutines = 16
	const perG = 50
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			ctx := Lane(root, "lane")
			for i := 0; i < perG; i++ {
				sctx, sp := Start(ctx, "work")
				sp.SetInt("i", int64(i))
				_, inner := Start(sctx, "inner")
				inner.End()
				sp.End()
				reg.GetCounter("c").Inc()
				reg.GetGauge("g").Set(int64(g))
				reg.GetHistogram("h").Observe(int64(i))
			}
		}()
	}
	wg.Wait()

	if n := len(c.Spans()); n != goroutines*perG*2 {
		t.Fatalf("got %d spans, want %d", n, goroutines*perG*2)
	}
	snap := reg.Snapshot()
	if snap.Counters["c"] != goroutines*perG {
		t.Errorf("counter = %d, want %d", snap.Counters["c"], goroutines*perG)
	}
	h := snap.Histograms["h"]
	if h.Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count, goroutines*perG)
	}
	if h.Min != 0 || h.Max != perG-1 {
		t.Errorf("histogram min/max = %d/%d, want 0/%d", h.Min, h.Max, perG-1)
	}
	var bucketTotal int64
	for _, b := range h.Buckets {
		bucketTotal += b.N
	}
	if bucketTotal != h.Count {
		t.Errorf("bucket total %d != count %d", bucketTotal, h.Count)
	}
}

type captureSink struct {
	mu   sync.Mutex
	recs []SpanRecord
}

func (cs *captureSink) Record(rec SpanRecord) {
	cs.mu.Lock()
	cs.recs = append(cs.recs, rec)
	cs.mu.Unlock()
}

func TestPluggableSink(t *testing.T) {
	cs := &captureSink{}
	c := New(WithSink(cs))
	ctx := c.Attach(context.Background())
	_, sp := Start(ctx, "streamed")
	sp.End()
	if len(cs.recs) != 1 || cs.recs[0].Name != "streamed" {
		t.Fatalf("sink saw %v", cs.recs)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	reg := NewRegistry()
	// Transplant via observation on a registered histogram instead.
	rh := reg.GetHistogram("x")
	for _, v := range []int64{0, 1, 2, 3, 4, 1000} {
		rh.Observe(v)
	}
	snap := reg.Snapshot().Histograms["x"]
	if snap.Count != 6 || snap.Min != 0 || snap.Max != 1000 || snap.Sum != 1010 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// v=0 -> le 0; v=1 -> le 1; v=2,3 -> le 3; v=4 -> le 7; v=1000 -> le 1023.
	want := []Bucket{{0, 1}, {1, 1}, {3, 2}, {7, 1}, {1023, 1}}
	if len(snap.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", snap.Buckets, want)
	}
	for i, b := range want {
		if snap.Buckets[i] != b {
			t.Errorf("bucket[%d] = %+v, want %+v", i, snap.Buckets[i], b)
		}
	}
}

// TestChromeTraceGolden pins the Chrome trace-event export byte for byte
// with a deterministic clock: metadata events name the process and lanes,
// span events are "X" completes with microsecond timestamps.
func TestChromeTraceGolden(t *testing.T) {
	clock := newFakeClock(time.Millisecond)
	c := New(WithNow(clock.now)) // epoch = 1ms
	ctx := c.Attach(context.Background())

	rctx, root := Start(ctx, "route") // start 2ms
	root.SetInt("nets", 3)
	wctx := Lane(rctx, "worker 0")
	_, task := Start(wctx, "task") // start 3ms
	task.End()                     // end 4ms
	root.End()                     // end 5ms

	got, err := c.ChromeTrace("jpg")
	if err != nil {
		t.Fatal(err)
	}
	const want = `[
 {
  "name": "process_name",
  "ph": "M",
  "pid": 1,
  "tid": 0,
  "args": {
   "name": "jpg"
  }
 },
 {
  "name": "thread_name",
  "ph": "M",
  "pid": 1,
  "tid": 0,
  "args": {
   "name": "main"
  }
 },
 {
  "name": "thread_name",
  "ph": "M",
  "pid": 1,
  "tid": 1,
  "args": {
   "name": "worker 0"
  }
 },
 {
  "name": "route",
  "ph": "X",
  "pid": 1,
  "tid": 0,
  "ts": 1000,
  "dur": 3000,
  "args": {
   "nets": 3
  }
 },
 {
  "name": "task",
  "ph": "X",
  "pid": 1,
  "tid": 1,
  "ts": 2000,
  "dur": 1000
 }
]`
	if string(got) != want {
		t.Errorf("chrome trace mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// The export must also be valid JSON.
	var anything []map[string]any
	if err := json.Unmarshal(got, &anything); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
}

func TestExportAndRender(t *testing.T) {
	clock := newFakeClock(time.Millisecond)
	c := New(WithNow(clock.now))
	ctx := c.Attach(context.Background())
	_, sp := Start(ctx, "stage")
	sp.End()

	reg := NewRegistry()
	reg.GetCounter("a.count").Add(2)
	reg.GetGauge("b.depth").Set(-3)
	reg.GetHistogram("c.ns").Observe(10)

	ex := c.Export("tool", reg)
	if ex.Version != ExportVersion || ex.Process != "tool" || len(ex.Spans) != 1 {
		t.Fatalf("export = %+v", ex)
	}
	buf, err := json.Marshal(ex)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{fmt.Sprintf(`"version":%d`, ExportVersion), `"a.count":2`, `"b.depth":-3`, `"name":"stage"`} {
		if !strings.Contains(string(buf), want) {
			t.Errorf("export JSON missing %s:\n%s", want, buf)
		}
	}

	text := reg.Snapshot().Render()
	for _, want := range []string{"a.count", "b.depth", "c.ns", "count 1 sum 10"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
	if sum := c.StageSummary(); !strings.Contains(sum, "stage") {
		t.Errorf("stage summary missing span: %q", sum)
	}
}

// BenchmarkStartDisabled pins the disabled-instrumentation cost: with no
// collector attached, a Start/attr/End sequence must not allocate.
func BenchmarkStartDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sctx, sp := Start(ctx, "disabled")
		sp.SetInt("i", int64(i))
		sp.End()
		_ = sctx
	}
}

// TestStartDisabledZeroAlloc enforces the benchmark's contract in the
// normal test run.
func TestStartDisabledZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		_, sp := Start(ctx, "disabled")
		sp.SetInt("i", 1)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled Start/SetInt/End allocates %.1f times per op, want 0", allocs)
	}
}

func BenchmarkStartEnabled(b *testing.B) {
	c := New()
	ctx := c.Attach(context.Background())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "enabled")
		sp.End()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	cnt := NewRegistry().GetCounter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cnt.Inc()
	}
}
