package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named counters, gauges and histograms. Metric lookups are
// lock-free after the first registration (sync.Map), and every update is a
// handful of atomic operations, so instrumented hot paths — frame emission,
// graph-cache hits, per-task pool accounting — pay nanoseconds.
//
// Most code uses the package-level Default registry through GetCounter /
// GetGauge / GetHistogram; separate registries exist for tests.
type Registry struct {
	counters sync.Map // name -> *Counter
	gauges   sync.Map // name -> *Gauge
	hists    sync.Map // name -> *Histogram
}

// Default is the process-wide registry the instrumented packages report to.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (e.g. queue depth).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket 0
// holds observations <= 0, bucket i (i >= 1) holds [2^(i-1), 2^i).
const histBuckets = 64

// Histogram accumulates int64 observations (typically nanoseconds or
// bytes) into power-of-two buckets with atomic count/sum/min/max, so a
// snapshot can report totals, the mean, and the distribution shape without
// ever locking writers.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid when count > 0
	max     atomic.Int64
	buckets [histBuckets + 1]atomic.Int64
}

func bucketFor(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) // 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...
}

// Sum returns the running total of all observations — the cheap way to
// meter accumulated time (e.g. nanoseconds in a stage) without taking a full
// snapshot: read it before and after a region and subtract.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h.count.Add(1) == 1 {
		// First observer seeds min/max; racing observers fix them up below.
		h.min.Store(v)
		h.max.Store(v)
	}
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketFor(v)].Add(1)
}

// GetCounter returns (registering on first use) the named counter.
func (r *Registry) GetCounter(name string) *Counter {
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// GetGauge returns (registering on first use) the named gauge.
func (r *Registry) GetGauge(name string) *Gauge {
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, &Gauge{})
	return v.(*Gauge)
}

// GetHistogram returns (registering on first use) the named histogram.
func (r *Registry) GetHistogram(name string) *Histogram {
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.hists.LoadOrStore(name, &Histogram{})
	return v.(*Histogram)
}

// GetCounter returns the named counter from the Default registry.
func GetCounter(name string) *Counter { return Default.GetCounter(name) }

// GetGauge returns the named gauge from the Default registry.
func GetGauge(name string) *Gauge { return Default.GetGauge(name) }

// GetHistogram returns the named histogram from the Default registry.
func GetHistogram(name string) *Histogram { return Default.GetHistogram(name) }

// Bucket is one non-empty histogram bucket in a snapshot: N observations
// with values <= Le (and greater than the previous bucket's Le).
type Bucket struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// HistogramSnapshot is one histogram's state at snapshot time. P50/P95/P99
// are derived upper-bound quantile estimates (see Quantile), so exported
// snapshots — jpgbench's BENCH_*.json, jpgd's /metrics — capture tail
// latency, not just mean and count.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	P50     int64    `json:"p50,omitempty"`
	P95     int64    `json:"p95,omitempty"`
	P99     int64    `json:"p99,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the average observation (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) from the power-of-two
// buckets: the upper bound (Le) of the first bucket whose cumulative count
// reaches q*Count, clamped to the observed [Min, Max]. The estimate is
// conservative — never below the true quantile's bucket floor, never above
// the true maximum — and exact when a bucket holds a single distinct value.
// Returns 0 on an empty snapshot.
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 || q <= 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.Count)))
	if target > h.Count {
		target = h.Count
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.N
		if cum >= target {
			le := b.Le
			if le > h.Max {
				le = h.Max
			}
			if le < h.Min {
				le = h.Min
			}
			return le
		}
	}
	return h.Max
}

// Snapshot is a point-in-time copy of a registry, ready for JSON encoding.
// Each metric is read atomically; the set is collected without stopping
// writers, so concurrent updates may straddle the cut (fine for reporting).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	r.counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		s.Gauges[k.(string)] = v.(*Gauge).Value()
		return true
	})
	r.hists.Range(func(k, v any) bool {
		h := v.(*Histogram)
		hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
		if hs.Count > 0 {
			hs.Min, hs.Max = h.min.Load(), h.max.Load()
		}
		for i := 0; i <= histBuckets; i++ {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			le := int64(0) // bucket 0: v <= 0
			if i >= 63 {
				le = math.MaxInt64
			} else if i > 0 {
				le = (int64(1) << i) - 1 // bucket i: v in [2^(i-1), 2^i)
			}
			hs.Buckets = append(hs.Buckets, Bucket{Le: le, N: n})
		}
		hs.P50 = hs.Quantile(0.50)
		hs.P95 = hs.Quantile(0.95)
		hs.P99 = hs.Quantile(0.99)
		s.Histograms[k.(string)] = hs
		return true
	})
	return s
}

// MarshalJSON keeps snapshot encoding deterministic (encoding/json already
// sorts map keys; this exists so an empty snapshot still encodes cleanly).
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot
	return json.Marshal(alias(s))
}

// Render formats the snapshot as aligned "name value" text, sorted by
// name, for the CLIs' -metrics / -v reporting.
func (s Snapshot) Render() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter    %-36s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "gauge      %-36s %d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "histogram  %-36s count %d sum %d mean %.1f min %d max %d p50 %d p95 %d p99 %d\n",
			n, h.Count, h.Sum, h.Mean(), h.Min, h.Max, h.P50, h.P95, h.P99)
	}
	return b.String()
}
