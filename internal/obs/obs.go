// Package obs is the repository's zero-dependency observability layer:
// hierarchical spans over the CAD flow (map, place, route, bitgen, partial
// generation, board download), an always-on registry of atomic counters,
// gauges and histograms, and exporters for both a plain JSON snapshot and
// the Chrome trace-event format (chrome://tracing / Perfetto).
//
// The paper's quantitative claims are all about where time and bytes go —
// CAD runs saved (C1), partial-bitstream bytes proportional to the region
// fraction (C2), constrained runs cheaper than full ones (C3) — so every
// layer of the reproduction reports into this package.
//
// Design rules:
//
//   - Spans are carried by context. With no Collector attached to the
//     context, Start returns a nil *Span and every Span method is a no-op:
//     instrumentation costs nothing (zero allocations) when disabled.
//   - Metrics are package-global and always on; they are plain atomics, so
//     the hot paths pay a few nanoseconds, never a lock.
//   - Nothing here may influence tool output. Spans carry wall-clock, but
//     tables and bitstreams stay byte-identical with tracing on or off, for
//     any worker count. The collector is race-clean under the worker pool.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

type ctxKey int

const (
	collectorKey ctxKey = iota
	spanKey
	laneKey
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SpanRecord is one completed span, as delivered to sinks and exporters.
// Start is an offset from the collector's epoch, so records from one
// collector share a timeline. Err carries the span's error status (set by
// Fail/EndErr); error spans surface in Chrome-trace args and in the flight
// recorder's error ring.
type SpanRecord struct {
	ID     int64         `json:"id"`
	Parent int64         `json:"parent,omitempty"`
	Lane   int64         `json:"lane"`
	Name   string        `json:"name"`
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
	Attrs  []Attr        `json:"attrs,omitempty"`
	Err    string        `json:"err,omitempty"`
}

// Attr returns the value of the named attribute ("" when absent or not a
// string) — the accessor sinks use to pull e.g. the request_id off a record.
func (r SpanRecord) Attr(key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			if s, ok := a.Value.(string); ok {
				return s
			}
		}
	}
	return ""
}

// Sink receives completed spans as they end. Implementations must be safe
// for concurrent use; the worker pool ends spans from many goroutines.
type Sink interface {
	Record(rec SpanRecord)
}

// Collector gathers spans for one tool run. It buffers records internally
// (for export) and optionally streams them to a pluggable Sink.
type Collector struct {
	now   func() time.Time
	epoch time.Time
	sink  Sink

	nextID   atomic.Int64
	nextLane atomic.Int64

	mu    sync.Mutex
	spans []SpanRecord
	lanes map[int64]string // lane id -> display name
}

// Option configures a Collector.
type Option func(*Collector)

// WithNow substitutes the collector's clock (tests use a fake stepping
// clock to make exports reproducible).
func WithNow(now func() time.Time) Option {
	return func(c *Collector) { c.now = now }
}

// WithSink streams every completed span to s in addition to buffering it.
func WithSink(s Sink) Option {
	return func(c *Collector) { c.sink = s }
}

// New returns an empty collector whose epoch is "now".
func New(opts ...Option) *Collector {
	c := &Collector{now: time.Now, lanes: map[int64]string{0: "main"}}
	for _, o := range opts {
		o(c)
	}
	c.epoch = c.now()
	return c
}

// Attach returns a context carrying the collector; spans started under it
// are recorded. The root lane (0) is named "main".
func (c *Collector) Attach(ctx context.Context) context.Context {
	return context.WithValue(ctx, collectorKey, c)
}

// FromContext returns the context's collector, or nil.
func FromContext(ctx context.Context) *Collector {
	if ctx == nil {
		return nil
	}
	c, _ := ctx.Value(collectorKey).(*Collector)
	return c
}

// Active reports whether spans started under ctx will be recorded. Use it
// to skip work (e.g. formatting lane names) that only feeds tracing.
func Active(ctx context.Context) bool { return FromContext(ctx) != nil }

// Lane returns a context whose subsequent spans land on a fresh named lane
// (a Chrome-trace "thread"). The worker pool gives each worker its own lane
// so task scheduling is visible. With no collector, ctx is returned as is.
func Lane(ctx context.Context, name string) context.Context {
	c := FromContext(ctx)
	if c == nil {
		return ctx
	}
	id := c.nextLane.Add(1)
	c.mu.Lock()
	c.lanes[id] = name
	c.mu.Unlock()
	return context.WithValue(ctx, laneKey, id)
}

// Span is one in-flight span. A nil *Span is valid and inert: all methods
// are no-ops, which is what Start hands out when no collector is attached.
// A span is owned by the goroutine that started it; End must be called at
// most once.
type Span struct {
	c      *Collector
	id     int64
	parent int64
	lane   int64
	name   string
	start  time.Time
	attrs  []Attr
	errMsg string
	ended  atomic.Bool
}

// Start begins a span under the context's collector. The returned context
// carries the span, so nested Starts build a hierarchy; sibling stages
// should Start from their common parent context. With no collector attached
// the original context and a nil span are returned, at zero cost.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	c := FromContext(ctx)
	if c == nil {
		return ctx, nil
	}
	s := &Span{c: c, id: c.nextID.Add(1), name: name, start: c.now()}
	if parent, ok := ctx.Value(spanKey).(*Span); ok && parent != nil {
		s.parent = parent.id
		s.lane = parent.lane
	}
	if lane, ok := ctx.Value(laneKey).(int64); ok {
		s.lane = lane
	}
	return context.WithValue(ctx, spanKey, s), s
}

// SetInt annotates the span. No-op on a nil span.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

// SetStr annotates the span. No-op on a nil span.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

// Fail records err as the span's error status; the span still needs End (or
// use EndErr). The last non-nil error wins. No-op on a nil span or nil err.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.errMsg = err.Error()
}

// EndErr completes the span, tagging it with err when non-nil: the record
// carries the error into sinks, Chrome-trace args and flight-recorder dumps.
// EndErr(nil) is exactly End. Tagging is trace-side only; pair it with
// CountError so failures also register when no collector is attached.
func (s *Span) EndErr(err error) {
	s.Fail(err)
	s.End()
}

// CountError counts one failure of the named stage in the Default
// registry's errors_total.<stage> counter. Like every registry metric it is
// always on — error rates are visible with or without tracing.
func CountError(stage string) {
	GetCounter("errors_total." + stage).Inc()
}

// End completes the span and delivers it to the collector (and its sink).
// No-op on a nil span; safe to call more than once (later calls are
// ignored).
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	end := s.c.now()
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Lane:   s.lane,
		Name:   s.name,
		Start:  s.start.Sub(s.c.epoch),
		Dur:    end.Sub(s.start),
		Attrs:  s.attrs,
		Err:    s.errMsg,
	}
	s.c.mu.Lock()
	s.c.spans = append(s.c.spans, rec)
	s.c.mu.Unlock()
	if s.c.sink != nil {
		s.c.sink.Record(rec)
	}
}

// Spans returns a copy of the completed spans, in completion order.
func (c *Collector) Spans() []SpanRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SpanRecord, len(c.spans))
	copy(out, c.spans)
	return out
}

// LaneNames returns a copy of the lane-id -> name table.
func (c *Collector) LaneNames() map[int64]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int64]string, len(c.lanes))
	for id, name := range c.lanes {
		out[id] = name
	}
	return out
}
