package prom

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestWriteGolden locks the exposition format over a seeded registry:
// deterministic ordering, TYPE headers, cumulative le-buckets, _sum/_count.
func TestWriteGolden(t *testing.T) {
	reg := obs.NewRegistry()
	reg.GetCounter("flow.base_builds").Add(3)
	reg.GetGauge("cache.bytes").Set(42)
	h := reg.GetHistogram("flow.place_ns")
	h.Observe(1) // bucket le=1
	h.Observe(2) // bucket le=3
	h.Observe(5) // bucket le=7

	var b strings.Builder
	if err := Write(&b, reg); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE jpg_cache_bytes gauge
jpg_cache_bytes 42
# TYPE jpg_flow_base_builds counter
jpg_flow_base_builds 3
# TYPE jpg_flow_place_ns histogram
jpg_flow_place_ns_bucket{le="1"} 1
jpg_flow_place_ns_bucket{le="3"} 2
jpg_flow_place_ns_bucket{le="7"} 3
jpg_flow_place_ns_bucket{le="+Inf"} 3
jpg_flow_place_ns_sum 8
jpg_flow_place_ns_count 3
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestOverflowBucketFoldsIntoInf checks that the registry's MaxInt64
// overflow bucket never leaks a finite 2^63-1 le label.
func TestOverflowBucketFoldsIntoInf(t *testing.T) {
	reg := obs.NewRegistry()
	reg.GetHistogram("big").Observe(math.MaxInt64)
	var b strings.Builder
	if err := Write(&b, reg); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, `le="9223372036854775807"`) {
		t.Fatalf("overflow bucket leaked a finite le:\n%s", out)
	}
	if !strings.Contains(out, `jpg_big_bucket{le="+Inf"} 1`) {
		t.Fatalf("+Inf bucket missing or wrong:\n%s", out)
	}
}

func TestMetricNameAlwaysValid(t *testing.T) {
	cases := []string{
		"flow.place_ns", "cache.hit.partial", "errors_total.place",
		"weird-name!", "", "0starts.with.digit", "a b c", "höhe",
	}
	for _, raw := range cases {
		got := MetricName(raw)
		if !ValidName(got) {
			t.Errorf("MetricName(%q) = %q is not a valid Prometheus name", raw, got)
		}
		if !strings.HasPrefix(got, "jpg_") {
			t.Errorf("MetricName(%q) = %q lacks the jpg_ prefix", raw, got)
		}
	}
	if got := MetricName("flow.place_ns"); got != "jpg_flow_place_ns" {
		t.Fatalf("MetricName(flow.place_ns) = %q", got)
	}
	if ValidName("0bad") || ValidName("has space") || ValidName("") {
		t.Fatal("ValidName accepted an invalid name")
	}
}

// TestDefaultRegistryNamesExposeValid walks every metric registered in the
// process-wide registry (the instrumented packages register theirs at init)
// and asserts each maps to a legal exposed name.
func TestDefaultRegistryNamesExposeValid(t *testing.T) {
	s := obs.Default.Snapshot()
	check := func(raw string) {
		if got := MetricName(raw); !ValidName(got) {
			t.Errorf("registry name %q exposes invalid %q", raw, got)
		}
	}
	for raw := range s.Counters {
		check(raw)
	}
	for raw := range s.Gauges {
		check(raw)
	}
	for raw := range s.Histograms {
		check(raw)
	}
}

func TestHandler(t *testing.T) {
	reg := obs.NewRegistry()
	reg.GetCounter("requests").Inc()
	rr := httptest.NewRecorder()
	Handler(reg).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type %q, want %q", ct, ContentType)
	}
	if !strings.Contains(rr.Body.String(), "jpg_requests 1") {
		t.Fatalf("body lacks counter:\n%s", rr.Body.String())
	}
}
