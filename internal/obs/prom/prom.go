// Package prom exposes the obs metrics registry in the Prometheus text
// exposition format (version 0.0.4), the lingua franca of scrape-based
// monitoring: jpgd serves it on /metrics so a standard Prometheus server
// can watch per-stage latency, cache efficiency and download health of a
// live partial-bitstream service without any custom integration.
//
// Registry names ("flow.place_ns", "cache.hit.partial") are mapped to valid
// Prometheus metric names by prefixing "jpg_" and replacing every character
// outside [a-zA-Z0-9_] with '_' ("jpg_flow_place_ns", "jpg_cache_hit_partial").
// Counters and gauges expose their value directly; obs's power-of-two
// histograms expose cumulative le-buckets plus _sum and _count, exactly the
// shape PromQL's histogram_quantile expects. Output is deterministic:
// metrics sorted by exposed name, buckets in ascending le order.
package prom

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strings"

	"repro/internal/obs"
)

// ContentType is the scrape response content type for the text format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// namePrefix namespaces every exposed metric.
const namePrefix = "jpg_"

// validName is the Prometheus metric-name grammar.
var validName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// ValidName reports whether s is a legal Prometheus metric name.
func ValidName(s string) bool { return validName.MatchString(s) }

// MetricName maps a registry name to its exposed Prometheus name. The
// result is always valid: the "jpg_" prefix guarantees a legal first
// character and every illegal character becomes '_'.
func MetricName(raw string) string {
	var b strings.Builder
	b.Grow(len(namePrefix) + len(raw))
	b.WriteString(namePrefix)
	for _, r := range raw {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// metricLine is one "name value" sample under a TYPE header.
type metric struct {
	name  string // exposed name
	typ   string // counter | gauge | histogram
	lines []string
}

// WriteSnapshot renders a snapshot in the text exposition format.
func WriteSnapshot(w io.Writer, s obs.Snapshot) error {
	metrics := make([]metric, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for raw, v := range s.Counters {
		name := MetricName(raw)
		metrics = append(metrics, metric{
			name: name, typ: "counter",
			lines: []string{fmt.Sprintf("%s %d", name, v)},
		})
	}
	for raw, v := range s.Gauges {
		name := MetricName(raw)
		metrics = append(metrics, metric{
			name: name, typ: "gauge",
			lines: []string{fmt.Sprintf("%s %d", name, v)},
		})
	}
	for raw, h := range s.Histograms {
		name := MetricName(raw)
		m := metric{name: name, typ: "histogram"}
		// obs buckets are disjoint with inclusive integer upper bounds
		// (bucket i holds (prev.Le, Le]), so a running sum yields exactly
		// the cumulative counts Prometheus wants. The registry's overflow
		// bucket (Le == MaxInt64) folds into +Inf.
		var cum int64
		for _, b := range h.Buckets {
			cum += b.N
			if b.Le == math.MaxInt64 {
				continue
			}
			m.lines = append(m.lines, fmt.Sprintf("%s_bucket{le=\"%d\"} %d", name, b.Le, cum))
		}
		m.lines = append(m.lines,
			fmt.Sprintf("%s_bucket{le=\"+Inf\"} %d", name, h.Count),
			fmt.Sprintf("%s_sum %d", name, h.Sum),
			fmt.Sprintf("%s_count %d", name, h.Count),
		)
		metrics = append(metrics, m)
	}
	sort.Slice(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })
	var b strings.Builder
	for _, m := range metrics {
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.typ)
		for _, line := range m.lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Write renders a point-in-time snapshot of the registry.
func Write(w io.Writer, reg *obs.Registry) error {
	return WriteSnapshot(w, reg.Snapshot())
}

// Handler serves the registry as a Prometheus scrape endpoint.
func Handler(reg *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		if err := Write(w, reg); err != nil {
			// The snapshot itself cannot fail; a write error means the
			// client went away mid-scrape. Nothing useful to send.
			return
		}
	})
}
