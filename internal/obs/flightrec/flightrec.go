// Package flightrec is a bounded in-memory flight recorder: a ring buffer
// of the most recent spans and error events across all requests, always
// cheap enough to leave on in production. When something goes wrong in a
// live jpgd, /debug/flightrec dumps the recent history — as JSON for
// inspection or as a Chrome trace for a post-mortem timeline — without
// having had tracing-to-disk enabled in advance.
//
// A Recorder is an obs.Sink: attach it to per-request collectors
// (obs.WithSink) and every completed span lands in the ring. Spans whose
// record carries an error (Span.EndErr) are additionally copied into a
// separate error ring, so the latest failures stay visible even when
// healthy traffic has long since overwritten their surrounding spans.
package flightrec

import (
	"io"
	"sync"
	"time"

	"repro/internal/obs"
)

// DefaultCapacity bounds the span ring when New is given n <= 0.
const DefaultCapacity = 1024

// errorRingFraction sizes the error ring relative to the span ring.
const errorRingFraction = 4

// RecordedSpan is one span as captured by the recorder: the record itself
// plus the wall-clock capture time and a process-wide sequence number.
// Spans from different collectors carry offsets from different epochs, so
// At — not SpanRecord.Start — orders a dump's timeline.
type RecordedSpan struct {
	Seq int64          `json:"seq"`
	At  time.Time      `json:"at"`
	Rec obs.SpanRecord `json:"rec"`
}

// ErrorEvent is one captured failure: an error-tagged span or an explicit
// RecordError call.
type ErrorEvent struct {
	Seq       int64     `json:"seq"`
	At        time.Time `json:"at"`
	Source    string    `json:"source"`
	Err       string    `json:"err"`
	RequestID string    `json:"request_id,omitempty"`
}

// Recorder is the bounded ring buffer. Safe for concurrent use; Record is a
// mutex-guarded copy into a preallocated ring (no allocation per span
// beyond the record's own attrs).
type Recorder struct {
	mu       sync.Mutex
	spans    []RecordedSpan // ring, len == capacity
	next     int            // next write position
	total    int64          // spans ever recorded
	errs     []ErrorEvent   // ring
	errNext  int
	errTotal int64
	now      func() time.Time
}

// New returns a recorder keeping the last capacity spans (DefaultCapacity
// when capacity <= 0) and capacity/4 error events (minimum 16).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	errCap := capacity / errorRingFraction
	if errCap < 16 {
		errCap = 16
	}
	return &Recorder{
		spans: make([]RecordedSpan, capacity),
		errs:  make([]ErrorEvent, errCap),
		now:   time.Now,
	}
}

// Record implements obs.Sink: the span enters the ring, and error-tagged
// spans also enter the error ring (request_id recovered from the span's
// attrs when a request-entry span set one).
func (r *Recorder) Record(rec obs.SpanRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	r.spans[r.next] = RecordedSpan{Seq: r.total, At: r.now(), Rec: rec}
	r.next = (r.next + 1) % len(r.spans)
	if rec.Err != "" {
		r.recordErrorLocked(rec.Name, rec.Err, rec.Attr("request_id"))
	}
}

// RecordError captures a failure that has no span of its own (e.g. a
// request rejected before any work started).
func (r *Recorder) RecordError(source, requestID string, err error) {
	if err == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recordErrorLocked(source, err.Error(), requestID)
}

func (r *Recorder) recordErrorLocked(source, msg, requestID string) {
	r.errTotal++
	r.errs[r.errNext] = ErrorEvent{
		Seq: r.errTotal, At: r.now(), Source: source, Err: msg, RequestID: requestID,
	}
	r.errNext = (r.errNext + 1) % len(r.errs)
}

// Dump is a point-in-time copy of the recorder: the retained spans and
// error events, oldest first, plus totals so a reader knows how much
// history fell off the ring.
type Dump struct {
	Capacity      int            `json:"capacity"`
	TotalSpans    int64          `json:"total_spans"`
	DroppedSpans  int64          `json:"dropped_spans"`
	TotalErrors   int64          `json:"total_errors"`
	DroppedErrors int64          `json:"dropped_errors"`
	Spans         []RecordedSpan `json:"spans"`
	Errors        []ErrorEvent   `json:"errors"`
}

// Dump snapshots the recorder.
func (r *Recorder) Dump() Dump {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := Dump{
		Capacity:    len(r.spans),
		TotalSpans:  r.total,
		TotalErrors: r.errTotal,
		Spans:       ringCopy(r.spans, r.next, r.total),
		Errors:      ringCopyErr(r.errs, r.errNext, r.errTotal),
	}
	d.DroppedSpans = d.TotalSpans - int64(len(d.Spans))
	d.DroppedErrors = d.TotalErrors - int64(len(d.Errors))
	return d
}

// ringCopy returns the ring's live entries oldest-first.
func ringCopy(ring []RecordedSpan, next int, total int64) []RecordedSpan {
	n := int64(len(ring))
	if total < n {
		out := make([]RecordedSpan, total)
		copy(out, ring[:total])
		return out
	}
	out := make([]RecordedSpan, 0, n)
	out = append(out, ring[next:]...)
	out = append(out, ring[:next]...)
	return out
}

func ringCopyErr(ring []ErrorEvent, next int, total int64) []ErrorEvent {
	n := int64(len(ring))
	if total < n {
		out := make([]ErrorEvent, total)
		copy(out, ring[:total])
		return out
	}
	out := make([]ErrorEvent, 0, n)
	out = append(out, ring[next:]...)
	out = append(out, ring[:next]...)
	return out
}

// WriteChromeTrace renders the retained spans as a Chrome trace for
// post-mortems. Spans from different requests come from different
// collectors, so each span is re-anchored on the shared wall clock: its
// trace start is (capture time - duration) relative to the oldest retained
// capture. Lane IDs are collector-local and carry no names here; the
// per-request hierarchy (parent links, names, attrs, errors) is intact.
func (r *Recorder) WriteChromeTrace(w io.Writer, processName string) error {
	d := r.Dump()
	spans := make([]obs.SpanRecord, len(d.Spans))
	var epoch time.Time
	for i, s := range d.Spans {
		start := s.At.Add(-s.Rec.Dur)
		if i == 0 || start.Before(epoch) {
			epoch = start
		}
	}
	for i, s := range d.Spans {
		rec := s.Rec
		rec.Start = s.At.Add(-rec.Dur).Sub(epoch)
		spans[i] = rec
	}
	buf, err := obs.ChromeTraceJSON(processName, spans, nil)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
