package flightrec

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
)

// fixedClock steps one second per call, so capture times are deterministic.
func fixedClock() func() time.Time {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Second)
	}
}

func TestRingWraparound(t *testing.T) {
	r := New(4)
	r.now = fixedClock()
	for i := 0; i < 6; i++ {
		r.Record(obs.SpanRecord{Name: fmt.Sprintf("s%d", i)})
	}
	d := r.Dump()
	if d.Capacity != 4 || d.TotalSpans != 6 || d.DroppedSpans != 2 {
		t.Fatalf("dump totals: %+v", d)
	}
	if len(d.Spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(d.Spans))
	}
	// Oldest-first: spans 2..5 survive with sequence numbers 3..6.
	for i, s := range d.Spans {
		if want := fmt.Sprintf("s%d", i+2); s.Rec.Name != want {
			t.Fatalf("span %d = %q, want %q", i, s.Rec.Name, want)
		}
		if s.Seq != int64(i+3) {
			t.Fatalf("span %d seq = %d, want %d", i, s.Seq, i+3)
		}
	}
}

func TestPartialRing(t *testing.T) {
	r := New(8)
	r.now = fixedClock()
	r.Record(obs.SpanRecord{Name: "only"})
	d := r.Dump()
	if len(d.Spans) != 1 || d.DroppedSpans != 0 {
		t.Fatalf("partial ring dump: %+v", d)
	}
}

func TestErrorRingCapturesTaggedSpansAndExplicitErrors(t *testing.T) {
	r := New(64)
	r.now = fixedClock()
	r.Record(obs.SpanRecord{Name: "fine"})
	r.Record(obs.SpanRecord{
		Name: "broken", Err: "exploded",
		Attrs: []obs.Attr{{Key: "request_id", Value: "req-1"}},
	})
	r.RecordError("jpgd.generate", "req-2", errors.New("rejected"))
	r.RecordError("ignored", "x", nil) // nil error: no event

	d := r.Dump()
	if d.TotalErrors != 2 || len(d.Errors) != 2 {
		t.Fatalf("error totals: %+v", d)
	}
	if e := d.Errors[0]; e.Source != "broken" || e.Err != "exploded" || e.RequestID != "req-1" {
		t.Fatalf("span-derived error event: %+v", e)
	}
	if e := d.Errors[1]; e.Source != "jpgd.generate" || e.RequestID != "req-2" {
		t.Fatalf("explicit error event: %+v", e)
	}
}

func TestDefaultCapacity(t *testing.T) {
	r := New(0)
	if d := r.Dump(); d.Capacity != DefaultCapacity {
		t.Fatalf("capacity %d, want %d", d.Capacity, DefaultCapacity)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := New(16)
	r.now = fixedClock()
	r.Record(obs.SpanRecord{Name: "place", Dur: 100 * time.Millisecond})
	r.Record(obs.SpanRecord{Name: "route", Dur: 50 * time.Millisecond, Err: "boom"})
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf, "jpgd"); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, buf.String())
	}
	var names []string
	for _, ev := range events {
		if n, _ := ev["name"].(string); n != "" {
			names = append(names, n)
		}
	}
	want := map[string]bool{"place": false, "route": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("trace lacks span %q (events: %v)", n, names)
		}
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"error": "boom"`)) {
		t.Fatalf("trace lacks error arg:\n%s", buf.String())
	}
}

func TestDumpIsJSONEncodable(t *testing.T) {
	r := New(4)
	r.now = fixedClock()
	r.Record(obs.SpanRecord{Name: "a", Err: "x"})
	if _, err := json.Marshal(r.Dump()); err != nil {
		t.Fatal(err)
	}
}
