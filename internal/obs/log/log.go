// Package log is the operational logging layer of the reproduction: leveled
// structured JSON logging on log/slog, with per-request correlation IDs
// minted at the service and CLI entry points and threaded through context.
// Every event an instrumented package emits while handling one request —
// flow stage completions, cache hits and misses, download attempts and
// retries, fault injections — carries the same request_id, so one
// generate-over-HTTP request can be followed across every layer it touches
// from a single log grep.
//
// Design rules mirror internal/obs:
//
//   - The logger is carried by context. With no logger attached, every
//     helper (Debug/Info/Warn/Error) is a cheap no-op — the batch CLIs pay
//     nothing unless they opt in.
//   - Logging may never influence tool output: artifacts stay byte-identical
//     with logging on or off, at any level, for any worker count.
//   - Events are structured key/value pairs, not formatted prose: the
//     message names the event ("flow.stage", "cache", "download.retry") and
//     the attributes carry the data.
package log

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Canonical attribute names, so log consumers can rely on one spelling.
const (
	// FieldRequestID is the correlation ID attribute every event carries
	// once WithRequestID has run for the request's context.
	FieldRequestID = "request_id"
	// FieldStage names the flow/cache stage an event belongs to.
	FieldStage = "stage"
)

type ctxKey int

const (
	loggerKey ctxKey = iota
	requestIDKey
)

// New returns a leveled JSON logger writing to w — the constructor jpgd and
// the CLIs use. Each line is one event: time, level, msg, then attributes.
func New(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// ParseLevel reads a level name ("debug", "info", "warn", "error",
// case-insensitive, slog offset syntax allowed, e.g. "warn-2").
func ParseLevel(s string) (slog.Level, error) {
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("log: bad level %q: %w", s, err)
	}
	return l, nil
}

// reqCounter disambiguates IDs minted in the same process when the random
// source fails (it never should; the counter also makes IDs strictly unique
// within a process regardless).
var reqCounter atomic.Int64

// NewRequestID mints a correlation ID: 8 random bytes as hex. IDs are
// opaque; only equality matters.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%d-%d", time.Now().UnixNano(), reqCounter.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// Attach returns a context carrying the logger; events emitted under it by
// the instrumented packages are written. Attach(ctx, nil) returns ctx.
func Attach(ctx context.Context, l *slog.Logger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerKey, l)
}

// From returns the context's logger, or nil. Callers must nil-check (or use
// the package helpers, which do).
func From(ctx context.Context) *slog.Logger {
	if ctx == nil {
		return nil
	}
	l, _ := ctx.Value(loggerKey).(*slog.Logger)
	return l
}

// WithRequestID stamps the context with a correlation ID: RequestIDFrom
// recovers it, and the attached logger (if any) is rebound so every
// subsequent event carries request_id=id. Entry points mint the ID
// (NewRequestID) or adopt a caller-supplied one, then thread the returned
// context through the whole request.
func WithRequestID(ctx context.Context, id string) context.Context {
	ctx = context.WithValue(ctx, requestIDKey, id)
	if l := From(ctx); l != nil {
		ctx = Attach(ctx, l.With(FieldRequestID, id))
	}
	return ctx
}

// RequestIDFrom returns the context's correlation ID ("" when absent).
func RequestIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// Enabled reports whether an event at the given level would be written —
// use it to skip building expensive attributes.
func Enabled(ctx context.Context, level slog.Level) bool {
	l := From(ctx)
	return l != nil && l.Enabled(ctx, level)
}

func emit(ctx context.Context, level slog.Level, msg string, args ...any) {
	if l := From(ctx); l != nil && l.Enabled(ctx, level) {
		l.Log(ctx, level, msg, args...)
	}
}

// Debug emits a debug event under the context's logger (no-op without one).
func Debug(ctx context.Context, msg string, args ...any) {
	emit(ctx, slog.LevelDebug, msg, args...)
}

// Info emits an info event under the context's logger (no-op without one).
func Info(ctx context.Context, msg string, args ...any) {
	emit(ctx, slog.LevelInfo, msg, args...)
}

// Warn emits a warning under the context's logger (no-op without one).
func Warn(ctx context.Context, msg string, args ...any) {
	emit(ctx, slog.LevelWarn, msg, args...)
}

// Error emits an error event under the context's logger (no-op without one).
func Error(ctx context.Context, msg string, args ...any) {
	emit(ctx, slog.LevelError, msg, args...)
}

// spanSink bridges spans to the log: every completed span becomes one
// structured line. jpgd attaches one per request, built over the
// request-bound logger, so span lines share the request's correlation ID.
type spanSink struct {
	l *slog.Logger
}

// SpanSink returns an obs.Sink logging each completed span through l: debug
// for clean spans, warn for error-tagged ones. Attach it with
// obs.WithSink(log.SpanSink(requestLogger)).
func SpanSink(l *slog.Logger) obs.Sink {
	return spanSink{l: l}
}

// Record implements obs.Sink.
func (s spanSink) Record(rec obs.SpanRecord) {
	level := slog.LevelDebug
	if rec.Err != "" {
		level = slog.LevelWarn
	}
	if !s.l.Enabled(context.Background(), level) {
		return
	}
	args := make([]any, 0, 8+2*len(rec.Attrs))
	args = append(args, "span", rec.Name, "dur_us", rec.Dur.Microseconds(), "lane", rec.Lane)
	if rec.Err != "" {
		args = append(args, "error", rec.Err)
	}
	if len(rec.Attrs) > 0 {
		kvs := make([]any, 0, 2*len(rec.Attrs))
		for _, a := range rec.Attrs {
			kvs = append(kvs, slog.Any(a.Key, a.Value))
		}
		args = append(args, slog.Group("attrs", kvs...))
	}
	s.l.Log(context.Background(), level, "span", args...)
}
