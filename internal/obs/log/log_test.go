package log

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// decodeLines parses a JSON-lines log buffer.
func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestRequestIDThreadsThroughContext(t *testing.T) {
	var buf bytes.Buffer
	ctx := Attach(context.Background(), New(&buf, slog.LevelDebug))
	ctx = WithRequestID(ctx, "req-42")

	Info(ctx, "flow.stage", FieldStage, "place", "dur_us", int64(7))
	Warn(ctx, "download.retry", "attempt", 1)

	if got := RequestIDFrom(ctx); got != "req-42" {
		t.Fatalf("RequestIDFrom = %q", got)
	}
	lines := decodeLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for i, m := range lines {
		if m[FieldRequestID] != "req-42" {
			t.Fatalf("line %d lacks request_id: %v", i, m)
		}
	}
	if lines[0]["msg"] != "flow.stage" || lines[0][FieldStage] != "place" {
		t.Fatalf("event fields wrong: %v", lines[0])
	}
	if lines[1]["level"] != "WARN" {
		t.Fatalf("warn level wrong: %v", lines[1])
	}
}

func TestNoLoggerIsNoOp(t *testing.T) {
	ctx := context.Background()
	// Must not panic, must not allocate a logger.
	Debug(ctx, "a")
	Info(ctx, "b", "k", "v")
	Warn(ctx, "c")
	Error(ctx, "d")
	if Enabled(ctx, slog.LevelError) {
		t.Fatal("Enabled true without a logger")
	}
	if From(ctx) != nil {
		t.Fatal("From returned a logger for a bare context")
	}
	if RequestIDFrom(nil) != "" || From(nil) != nil {
		t.Fatal("nil context not handled")
	}
	if got := Attach(ctx, nil); got != ctx {
		t.Fatal("Attach(nil) must return ctx unchanged")
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	ctx := Attach(context.Background(), New(&buf, slog.LevelWarn))
	Debug(ctx, "hidden")
	Info(ctx, "hidden")
	Warn(ctx, "shown")
	lines := decodeLines(t, &buf)
	if len(lines) != 1 || lines[0]["msg"] != "shown" {
		t.Fatalf("level filter wrong: %v", lines)
	}
	if Enabled(ctx, slog.LevelInfo) {
		t.Fatal("Enabled(info) true under warn level")
	}
	if !Enabled(ctx, slog.LevelError) {
		t.Fatal("Enabled(error) false under warn level")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"WARN": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("shouting"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Fatalf("two IDs collided: %q", a)
	}
	if len(a) != 16 {
		t.Fatalf("ID %q has length %d, want 16 hex chars", a, len(a))
	}
}

func TestSpanSink(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, slog.LevelDebug).With(FieldRequestID, "req-7")
	sink := SpanSink(l)
	sink.Record(obs.SpanRecord{Name: "place", Dur: 2 * time.Millisecond,
		Attrs: []obs.Attr{{Key: "cache", Value: "hit"}}})
	sink.Record(obs.SpanRecord{Name: "route", Err: "boom"})

	lines := decodeLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0]["level"] != "DEBUG" || lines[0]["span"] != "place" || lines[0][FieldRequestID] != "req-7" {
		t.Fatalf("clean span line: %v", lines[0])
	}
	attrs, _ := lines[0]["attrs"].(map[string]any)
	if attrs["cache"] != "hit" {
		t.Fatalf("span attrs missing: %v", lines[0])
	}
	if lines[1]["level"] != "WARN" || lines[1]["error"] != "boom" {
		t.Fatalf("error span line: %v", lines[1])
	}
}

func TestSpanSinkRespectsLevel(t *testing.T) {
	var buf bytes.Buffer
	sink := SpanSink(New(&buf, slog.LevelInfo))
	sink.Record(obs.SpanRecord{Name: "quiet"}) // debug-level: filtered
	if buf.Len() != 0 {
		t.Fatalf("debug span logged under info level: %s", buf.String())
	}
	sink.Record(obs.SpanRecord{Name: "loud", Err: "x"}) // warn-level: written
	if buf.Len() == 0 {
		t.Fatal("error span not logged under info level")
	}
}
