package device

import "fmt"

// PIP is a programmable interconnect point: a buffered, unidirectional
// connection from Src to Dst, controlled by one configuration bit. The bit
// lives in the CLB column of the owning tile (Row, Col) at local bit
// pipBitsBase+CatalogIdx.
type PIP struct {
	Src, Dst NodeID
	Row, Col int // owning tile, 0-based
	// CatalogIdx is the PIP's position in the owning tile's catalog.
	CatalogIdx int
}

// Bit returns the configuration-bit coordinate controlling the PIP.
func (p *Part) PIPBit(pip PIP) BitCoord {
	return p.CLBBit(pip.Row, pip.Col, pipBitsBase+pip.CatalogIdx)
}

func (p *Part) pipString(pip PIP) string {
	return fmt.Sprintf("pip R%dC%d %s -> %s", pip.Row+1, pip.Col+1, p.NodeName(pip.Src), p.NodeName(pip.Dst))
}

// TilePIPs enumerates the PIP catalog of tile (row, col) in a fixed,
// documented order. The order determines each PIP's configuration bit
// (local bit pipBitsBase + position), so it must never change:
//
//  1. output muxes: OUT o -> singles E/N/W/S[o], hexes HE/HN/HW/HS[o%4]
//  2. switchbox turns for singles arriving from the 4 neighbours
//  3. hex taps (distance 3 and 6) onto local singles
//  4. long-line drives and taps
//  5. input-pin muxes (data pins from fabric, CLK/CE/SR from globals)
//  6. pad connections (perimeter tiles only)
func (p *Part) TilePIPs(row, col int) []PIP {
	var pips []PIP
	add := func(src, dst NodeID) {
		pips = append(pips, PIP{Src: src, Dst: dst, Row: row, Col: col, CatalogIdx: len(pips)})
	}
	local := func(w int) NodeID { return p.TileWireNode(row, col, w) }

	// 1. Output muxes.
	for o := 0; o < NumOutsPerTile; o++ {
		out := local(WireOutBase + o)
		for d := 0; d < NumDirs; d++ {
			add(out, local(SingleWire(d, o)))
		}
		for d := 0; d < NumDirs; d++ {
			add(out, local(HexWire(d, o%HexesPerDir)))
		}
	}

	// 2. Switchbox turns. A single driven direction D by a neighbour arrives
	// here and can continue straight (re-driven) or turn. Turn offsets mix
	// odd and even values so no index-parity class is closed under turning
	// (a closed parity class would make some corner input muxes unreachable
	// from half the output pins).
	for i := 0; i < SinglesPerDir; i++ {
		if col > 0 { // from west neighbour, heading east
			src := p.TileWireNode(row, col-1, SingleWire(DirE, i))
			add(src, local(SingleWire(DirE, i)))
			add(src, local(SingleWire(DirN, i)))
			add(src, local(SingleWire(DirS, (i+1)%SinglesPerDir)))
		}
		if col < p.Cols-1 { // from east neighbour, heading west
			src := p.TileWireNode(row, col+1, SingleWire(DirW, i))
			add(src, local(SingleWire(DirW, i)))
			add(src, local(SingleWire(DirN, (i+3)%SinglesPerDir)))
			add(src, local(SingleWire(DirS, (i+4)%SinglesPerDir)))
		}
		if row > 0 { // from north neighbour, heading south
			src := p.TileWireNode(row-1, col, SingleWire(DirS, i))
			add(src, local(SingleWire(DirS, i)))
			add(src, local(SingleWire(DirE, (i+1)%SinglesPerDir)))
			add(src, local(SingleWire(DirW, (i+2)%SinglesPerDir)))
		}
		if row < p.Rows-1 { // from south neighbour, heading north
			src := p.TileWireNode(row+1, col, SingleWire(DirN, i))
			add(src, local(SingleWire(DirN, i)))
			add(src, local(SingleWire(DirE, (i+6)%SinglesPerDir)))
			add(src, local(SingleWire(DirW, (i+7)%SinglesPerDir)))
		}
	}

	// 3. Hex taps: a hex driven toward this tile from distance 3 or 6 can be
	// tapped onto local singles.
	for i := 0; i < HexesPerDir; i++ {
		for _, dist := range []int{3, 6} {
			if col-dist >= 0 { // HE from the west
				src := p.TileWireNode(row, col-dist, HexWire(DirE, i))
				add(src, local(SingleWire(DirE, i)))
				add(src, local(SingleWire(DirS, (i+1)%SinglesPerDir)))
			}
			if col+dist < p.Cols { // HW from the east
				src := p.TileWireNode(row, col+dist, HexWire(DirW, i))
				add(src, local(SingleWire(DirW, i)))
				add(src, local(SingleWire(DirN, (i+1)%SinglesPerDir)))
			}
			if row-dist >= 0 { // HS from the north
				src := p.TileWireNode(row-dist, col, HexWire(DirS, i))
				add(src, local(SingleWire(DirS, i)))
				add(src, local(SingleWire(DirE, (i+5)%SinglesPerDir)))
			}
			if row+dist < p.Rows { // HN from the south
				src := p.TileWireNode(row+dist, col, HexWire(DirN, i))
				add(src, local(SingleWire(DirN, i)))
				add(src, local(SingleWire(DirW, (i+5)%SinglesPerDir)))
			}
		}
	}

	// 4. Long lines: every tile can drive its row/column long lines from
	// dedicated outputs; tiles at 3-tile intervals can tap them.
	for j := 0; j < NumLongPerRow; j++ {
		add(local(WireOutBase+j), p.RowLongNode(row, j))
	}
	for j := 0; j < NumLongPerCol; j++ {
		add(local(WireOutBase+2+j), p.ColLongNode(col, j))
	}
	if col%3 == 0 {
		for j := 0; j < NumLongPerRow; j++ {
			add(p.RowLongNode(row, j), local(SingleWire(DirE, j)))
			add(p.RowLongNode(row, j), local(SingleWire(DirW, j)))
		}
	}
	if row%3 == 0 {
		for j := 0; j < NumLongPerCol; j++ {
			add(p.ColLongNode(col, j), local(SingleWire(DirN, j)))
			add(p.ColLongNode(col, j), local(SingleWire(DirS, j)))
		}
	}

	// 5. Input-pin muxes.
	for s := 0; s < 2; s++ {
		for k := 0; k < InPinsPerSlice; k++ {
			pin := local(InPinWire(s, k))
			g := s*InPinsPerSlice + k // 0..25, used to spread mux inputs
			switch k {
			case PinCLK:
				for gl := 0; gl < NumGlobals; gl++ {
					add(p.GlobalNode(gl), pin)
				}
				continue
			case PinCE, PinSR:
				for gl := 0; gl < NumGlobals; gl++ {
					add(p.GlobalNode(gl), pin)
				}
				// plus the regular fabric sources below
			}
			{ // data pins F1..G4, BX, BY; fabric sources for CE/SR
				if col > 0 {
					add(p.TileWireNode(row, col-1, SingleWire(DirE, g%SinglesPerDir)), pin)
				}
				if col < p.Cols-1 {
					add(p.TileWireNode(row, col+1, SingleWire(DirW, (g+1)%SinglesPerDir)), pin)
				}
				if row > 0 {
					add(p.TileWireNode(row-1, col, SingleWire(DirS, (g+2)%SinglesPerDir)), pin)
				}
				if row < p.Rows-1 {
					add(p.TileWireNode(row+1, col, SingleWire(DirN, (g+3)%SinglesPerDir)), pin)
				}
				add(local(SingleWire(DirE, (g+5)%SinglesPerDir)), pin)
				add(local(WireOutBase+g%NumOutsPerTile), pin)
			}
		}
	}

	// 6. Pad connections on perimeter tiles.
	for _, pd := range p.PadsOfTile(row, col) {
		in, out := p.PadNodeI(pd), p.PadNodeO(pd)
		switch pd.Edge {
		case EdgeL:
			add(in, local(SingleWire(DirE, 0)))
			add(in, local(SingleWire(DirE, 1)))
			add(in, local(SingleWire(DirN, 0)))
			add(in, local(SingleWire(DirS, 0)))
			add(local(SingleWire(DirW, 0)), out)
			add(local(SingleWire(DirW, 1)), out)
			add(local(WireOutBase+0), out)
			add(local(WireOutBase+1), out)
		case EdgeR:
			add(in, local(SingleWire(DirW, 0)))
			add(in, local(SingleWire(DirW, 1)))
			add(in, local(SingleWire(DirN, 1)))
			add(in, local(SingleWire(DirS, 1)))
			add(local(SingleWire(DirE, 0)), out)
			add(local(SingleWire(DirE, 1)), out)
			add(local(WireOutBase+2), out)
			add(local(WireOutBase+3), out)
		case EdgeT:
			add(in, local(SingleWire(DirS, 0)))
			add(in, local(SingleWire(DirS, 1)))
			add(in, local(SingleWire(DirE, 2)))
			add(in, local(SingleWire(DirW, 2)))
			add(local(SingleWire(DirN, 0)), out)
			add(local(SingleWire(DirN, 1)), out)
			add(local(WireOutBase+4), out)
			add(local(WireOutBase+5), out)
		case EdgeB:
			add(in, local(SingleWire(DirN, 2)))
			add(in, local(SingleWire(DirN, 3)))
			add(in, local(SingleWire(DirE, 3)))
			add(in, local(SingleWire(DirW, 3)))
			add(local(SingleWire(DirS, 0)), out)
			add(local(SingleWire(DirS, 1)), out)
			add(local(WireOutBase+6), out)
			add(local(WireOutBase+7), out)
		}
	}

	if len(pips) > pipBitsBudget {
		panic(fmt.Sprintf("device: tile R%dC%d has %d PIPs, budget %d",
			row+1, col+1, len(pips), pipBitsBudget))
	}
	return pips
}

// FindPIP looks up a PIP in tile (row, col)'s catalog by source and
// destination node.
func (p *Part) FindPIP(row, col int, src, dst NodeID) (PIP, bool) {
	for _, pip := range p.TilePIPs(row, col) {
		if pip.Src == src && pip.Dst == dst {
			return pip, true
		}
	}
	return PIP{}, false
}
