package device

// NodeKind classifies routing nodes for tools that need structural
// information (e.g. region-constrained routing).
type NodeKind int

const (
	NodeWire    NodeKind = iota // a per-tile wire: A=row, B=col, C=wire
	NodeRowLong                 // a row long line: A=row, C=index
	NodeColLong                 // a column long line: B=col, C=index
	NodeGlobal                  // a global line: C=index
	NodePadI                    // pad fabric-driving node: pad via PadOf
	NodePadO                    // pad fabric-driven node: pad via PadOf
	NodeInvalid
)

// NodeDesc describes a node structurally.
type NodeDesc struct {
	Kind    NodeKind
	A, B, C int // row, col, index as applicable
	Pad     Pad
}

// DescribeNode classifies a node.
func (p *Part) DescribeNode(n NodeID) NodeDesc {
	in := int(n)
	switch {
	case in < 0:
		return NodeDesc{Kind: NodeInvalid}
	case in < p.rowLongBase():
		t, w := in/WiresPerTile, in%WiresPerTile
		return NodeDesc{Kind: NodeWire, A: t / p.Cols, B: t % p.Cols, C: w}
	case in < p.colLongBase():
		i := in - p.rowLongBase()
		return NodeDesc{Kind: NodeRowLong, A: i / NumLongPerRow, C: i % NumLongPerRow}
	case in < p.globalBase():
		i := in - p.colLongBase()
		return NodeDesc{Kind: NodeColLong, B: i / NumLongPerCol, C: i % NumLongPerCol}
	case in < p.padBase():
		return NodeDesc{Kind: NodeGlobal, C: in - p.globalBase()}
	case in < p.NumNodes():
		i := in - p.padBase()
		kind := NodePadI
		if i%2 == 1 {
			kind = NodePadO
		}
		return NodeDesc{Kind: kind, Pad: p.padAt(i / 2)}
	}
	return NodeDesc{Kind: NodeInvalid}
}
