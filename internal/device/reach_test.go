package device

import "testing"

// TestFullReachability guards against connectivity holes in the PIP catalog
// (e.g. parity classes closed under switchbox turns): from any slice output
// pin — including the worst corner cases — every fabric-routable input pin
// and every output pad on the device must be reachable.
func TestFullReachability(t *testing.T) {
	p := MustByName("XCV50")
	g := NewGraph(p)

	bfs := func(start NodeID) []bool {
		reached := make([]bool, p.NumNodes())
		reached[start] = true
		queue := []NodeID{start}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, pip := range g.From(cur) {
				if !reached[pip.Dst] {
					reached[pip.Dst] = true
					queue = append(queue, pip.Dst)
				}
			}
		}
		return reached
	}

	// Collect every fabric-routable sink: data/CE/SR input pins (CLK pins
	// are global-only by design) and pad output nodes.
	var sinks []NodeID
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			for s := 0; s < 2; s++ {
				for k := 0; k < InPinsPerSlice; k++ {
					if k == PinCLK {
						continue
					}
					sinks = append(sinks, p.TileWireNode(r, c, InPinWire(s, k)))
				}
			}
		}
	}
	for i := 0; i < p.NumPads(); i++ {
		sinks = append(sinks, p.PadNodeO(p.padAt(i)))
	}

	sources := []NodeID{}
	for _, tile := range [][2]int{{0, 0}, {0, p.Cols - 1}, {p.Rows - 1, 0}, {p.Rows - 1, p.Cols - 1}, {p.Rows / 2, p.Cols / 2}} {
		for o := 0; o < NumOutsPerTile; o++ {
			sources = append(sources, p.TileWireNode(tile[0], tile[1], WireOutBase+o))
		}
	}
	// Pad inputs must also reach everything.
	sources = append(sources, p.PadNodeI(Pad{EdgeL, 0}), p.PadNodeI(Pad{EdgeT, p.Cols - 1}))

	for _, src := range sources {
		reached := bfs(src)
		missing := 0
		var firstMiss NodeID = -1
		for _, s := range sinks {
			if !reached[s] {
				missing++
				if firstMiss < 0 {
					firstMiss = s
				}
			}
		}
		if missing > 0 {
			t.Errorf("from %s: %d sinks unreachable (first: %s)",
				p.NodeName(src), missing, p.NodeName(firstMiss))
		}
	}
}
