package device

import "fmt"

// Configuration memory is organised in vertical frames grouped into columns
// ("majors"), themselves grouped into block types, exactly as on the real
// Virtex. A frame is the atomic unit of (re)configuration.
//
// Block type 0 holds the CLB address space: the center clock column, the CLB
// columns, the two edge IOB columns and the two block-RAM interconnect
// columns. Block type 1 holds the two block-RAM content columns.
//
// Major ordering within block type 0 (a documented simplification of the real
// device's center-out ordering):
//
//	major 0               center clock column   (8 frames)
//	major 1 .. Cols       CLB columns, left->right (48 frames each)
//	major Cols+1          left IOB column       (54 frames)
//	major Cols+2          right IOB column      (54 frames)
//	major Cols+3, Cols+4  BRAM interconnect     (27 frames each)
//
// Block type 1: majors 0 and 1 are the two BRAM content columns (64 frames).

// NumBlockTypes is the number of configuration block types.
const NumBlockTypes = 2

// Block types.
const (
	BlockCLB  = 0 // CLB address space (clock, CLB, IOB, BRAM interconnect)
	BlockBRAM = 1 // block-RAM content
)

// FAR (Frame Address Register) field layout, matching the real Virtex
// positions: block type [27:25], major [24:17], minor [16:9].
const (
	farBlockShift = 25
	farMajorShift = 17
	farMinorShift = 9
	farBlockMask  = 0x7
	farMajorMask  = 0xFF
	farMinorMask  = 0xFF
)

// FAR is a packed frame address.
type FAR uint32

// MakeFAR packs a (block type, major, minor) triple into a FAR word.
func MakeFAR(blockType, major, minor int) FAR {
	return FAR(uint32(blockType&farBlockMask)<<farBlockShift |
		uint32(major&farMajorMask)<<farMajorShift |
		uint32(minor&farMinorMask)<<farMinorShift)
}

// BlockType extracts the block type field.
func (f FAR) BlockType() int { return int(f>>farBlockShift) & farBlockMask }

// Major extracts the major (column) address field.
func (f FAR) Major() int { return int(f>>farMajorShift) & farMajorMask }

// Minor extracts the minor (frame-within-column) address field.
func (f FAR) Minor() int { return int(f>>farMinorShift) & farMinorMask }

func (f FAR) String() string {
	return fmt.Sprintf("FAR{bt=%d maj=%d min=%d}", f.BlockType(), f.Major(), f.Minor())
}

// NumMajors returns the number of majors (columns) in the given block type.
func (p *Part) NumMajors(blockType int) int {
	switch blockType {
	case BlockCLB:
		return p.Cols + 5 // clock + CLBs + 2 IOB + 2 BRAM interconnect
	case BlockBRAM:
		return 2
	default:
		return 0
	}
}

// Major indices of the special columns in block type 0.
func (p *Part) ClockMajor() int        { return 0 }
func (p *Part) CLBMajor(col int) int   { return 1 + col } // col is 0-based
func (p *Part) LeftIOBMajor() int      { return p.Cols + 1 }
func (p *Part) RightIOBMajor() int     { return p.Cols + 2 }
func (p *Part) BRAMIntMajor(i int) int { return p.Cols + 3 + i } // i in {0,1}

// CLBColOfMajor returns the 0-based CLB column for a block-0 major, or
// (-1, false) if the major is not a CLB column.
func (p *Part) CLBColOfMajor(major int) (int, bool) {
	if major >= 1 && major <= p.Cols {
		return major - 1, true
	}
	return -1, false
}

// FramesInMajor returns the number of frames (minors) in the given column.
func (p *Part) FramesInMajor(blockType, major int) int {
	switch blockType {
	case BlockCLB:
		switch {
		case major == 0:
			return FramesClockCol
		case major >= 1 && major <= p.Cols:
			return FramesCLBCol
		case major == p.Cols+1 || major == p.Cols+2:
			return FramesIOBCol
		case major == p.Cols+3 || major == p.Cols+4:
			return FramesBRAMIntCol
		}
	case BlockBRAM:
		if major == 0 || major == 1 {
			return FramesBRAMCol
		}
	}
	return 0
}

// ValidFAR reports whether f addresses an existing frame on this part.
func (p *Part) ValidFAR(f FAR) bool {
	bt := f.BlockType()
	if bt < 0 || bt >= NumBlockTypes {
		return false
	}
	if f.Major() >= p.NumMajors(bt) {
		return false
	}
	return f.Minor() < p.FramesInMajor(bt, f.Major())
}

// NextFAR returns the frame address following f in device order (minor, then
// major, then block type), as the real device's FAR auto-increment does
// during multi-frame FDRI writes. ok is false when f is the last frame.
func (p *Part) NextFAR(f FAR) (next FAR, ok bool) {
	bt, maj, min := f.BlockType(), f.Major(), f.Minor()
	min++
	if min < p.FramesInMajor(bt, maj) {
		return MakeFAR(bt, maj, min), true
	}
	min = 0
	maj++
	if maj < p.NumMajors(bt) {
		return MakeFAR(bt, maj, min), true
	}
	maj = 0
	bt++
	if bt < NumBlockTypes {
		return MakeFAR(bt, maj, min), true
	}
	return 0, false
}

// FirstFAR returns the address of the first frame in device order.
func (p *Part) FirstFAR() FAR { return MakeFAR(0, 0, 0) }

// FrameIndex returns the linear index of frame f in device order, used to
// index flat frame storage. It panics on invalid addresses.
func (p *Part) FrameIndex(f FAR) int {
	if !p.ValidFAR(f) {
		panic(fmt.Sprintf("device: invalid %v for %s", f, p.Name))
	}
	idx := 0
	for bt := 0; bt < f.BlockType(); bt++ {
		for maj := 0; maj < p.NumMajors(bt); maj++ {
			idx += p.FramesInMajor(bt, maj)
		}
	}
	for maj := 0; maj < f.Major(); maj++ {
		idx += p.FramesInMajor(f.BlockType(), maj)
	}
	return idx + f.Minor()
}

// FARAt is the inverse of FrameIndex.
func (p *Part) FARAt(index int) (FAR, error) {
	if index < 0 {
		return 0, fmt.Errorf("device: negative frame index %d", index)
	}
	rem := index
	for bt := 0; bt < NumBlockTypes; bt++ {
		for maj := 0; maj < p.NumMajors(bt); maj++ {
			n := p.FramesInMajor(bt, maj)
			if rem < n {
				return MakeFAR(bt, maj, rem), nil
			}
			rem -= n
		}
	}
	return 0, fmt.Errorf("device: frame index %d out of range (%d frames)", index, p.TotalFrames())
}
