package device

import (
	"fmt"
	"strconv"
	"strings"
)

// I/O pads. One pad sits next to every perimeter CLB tile: pads P_L{r} and
// P_R{r} beside the leftmost/rightmost tile of CLB row r, and P_T{c} / P_B{c}
// above/below CLB column c (all 1-based in names, 0-based in code).
//
// Pad routing (PIPs between pad nodes and the adjacent tile's wires) is part
// of the adjacent CLB tile's PIP catalog; pad *mode* configuration bits live
// in the IOB configuration space: left/right pads in the left/right IOB
// columns (stripe r+1), top/bottom pads in their CLB column's stripe 0 /
// stripe Rows+1 (which CLB logic never uses).

// Pad edges.
const (
	EdgeL = iota
	EdgeR
	EdgeT
	EdgeB
)

var edgeNames = [4]string{"L", "R", "T", "B"}

// Pad identifies one I/O pad.
type Pad struct {
	Edge  int // EdgeL/EdgeR/EdgeT/EdgeB
	Index int // row (L/R) or column (T/B), 0-based
}

// Name returns the canonical pad name, e.g. "P_L3" (1-based index).
func (pd Pad) Name() string { return fmt.Sprintf("P_%s%d", edgeNames[pd.Edge], pd.Index+1) }

// ParsePad parses a name produced by Pad.Name.
func ParsePad(name string) (Pad, error) {
	rest, ok := strings.CutPrefix(name, "P_")
	if !ok || len(rest) < 2 {
		return Pad{}, fmt.Errorf("device: bad pad name %q", name)
	}
	edge := -1
	for e, en := range edgeNames {
		if rest[:1] == en {
			edge = e
		}
	}
	if edge < 0 {
		return Pad{}, fmt.Errorf("device: bad pad edge in %q", name)
	}
	idx, err := strconv.Atoi(rest[1:])
	if err != nil || idx < 1 {
		return Pad{}, fmt.Errorf("device: bad pad index in %q", name)
	}
	return Pad{Edge: edge, Index: idx - 1}, nil
}

// NumPads returns the number of pads on the part.
func (p *Part) NumPads() int { return 2*p.Rows + 2*p.Cols }

// ValidPad reports whether the pad exists on this part.
func (p *Part) ValidPad(pd Pad) bool {
	switch pd.Edge {
	case EdgeL, EdgeR:
		return pd.Index >= 0 && pd.Index < p.Rows
	case EdgeT, EdgeB:
		return pd.Index >= 0 && pd.Index < p.Cols
	}
	return false
}

// padIndex linearises a pad: left rows, right rows, top cols, bottom cols.
func (p *Part) padIndex(pd Pad) int {
	if !p.ValidPad(pd) {
		panic(fmt.Sprintf("device: invalid pad %+v for %s", pd, p.Name))
	}
	switch pd.Edge {
	case EdgeL:
		return pd.Index
	case EdgeR:
		return p.Rows + pd.Index
	case EdgeT:
		return 2*p.Rows + pd.Index
	default:
		return 2*p.Rows + p.Cols + pd.Index
	}
}

// padAt is the inverse of padIndex.
func (p *Part) padAt(i int) Pad {
	switch {
	case i < p.Rows:
		return Pad{EdgeL, i}
	case i < 2*p.Rows:
		return Pad{EdgeR, i - p.Rows}
	case i < 2*p.Rows+p.Cols:
		return Pad{EdgeT, i - 2*p.Rows}
	default:
		return Pad{EdgeB, i - 2*p.Rows - p.Cols}
	}
}

// PadTile returns the CLB tile adjacent to the pad.
func (p *Part) PadTile(pd Pad) (row, col int) {
	switch pd.Edge {
	case EdgeL:
		return pd.Index, 0
	case EdgeR:
		return pd.Index, p.Cols - 1
	case EdgeT:
		return 0, pd.Index
	default:
		return p.Rows - 1, pd.Index
	}
}

// PadsOfTile returns the pads adjacent to tile (row, col); corner tiles have
// two, other perimeter tiles one, interior tiles none.
func (p *Part) PadsOfTile(row, col int) []Pad {
	var pads []Pad
	if col == 0 {
		pads = append(pads, Pad{EdgeL, row})
	}
	if col == p.Cols-1 {
		pads = append(pads, Pad{EdgeR, row})
	}
	if row == 0 {
		pads = append(pads, Pad{EdgeT, col})
	}
	if row == p.Rows-1 {
		pads = append(pads, Pad{EdgeB, col})
	}
	return pads
}

// Pad mode configuration bit indices.
const (
	PadCtlInUse = 0 // pad participates in the design
	PadCtlInEn  = 1 // input buffer enabled
	PadCtlOutEn = 2 // output driver enabled
)

// PadModeBit returns the configuration-bit coordinate of pad control bit ctl
// (PadCtl*).
func (p *Part) PadModeBit(pd Pad, ctl int) BitCoord {
	if !p.ValidPad(pd) || ctl < 0 || ctl > 17 {
		panic(fmt.Sprintf("device: bad pad mode bit (%+v, %d)", pd, ctl))
	}
	switch pd.Edge {
	case EdgeL:
		return BitCoord{MakeFAR(BlockCLB, p.LeftIOBMajor(), 0), stripeOfRow(pd.Index)*18 + ctl}
	case EdgeR:
		return BitCoord{MakeFAR(BlockCLB, p.RightIOBMajor(), 0), stripeOfRow(pd.Index)*18 + ctl}
	case EdgeT:
		return BitCoord{MakeFAR(BlockCLB, p.CLBMajor(pd.Index), 0), 0*18 + ctl}
	default: // EdgeB
		return BitCoord{MakeFAR(BlockCLB, p.CLBMajor(pd.Index), 0), (p.Rows+1)*18 + ctl}
	}
}
