package device

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
)

// Graph is the routing graph of a part: forward adjacency over all PIPs.
// Building it touches every tile, so graphs are cached per part; routers for
// small parts pay ~milliseconds, the largest parts tens of milliseconds.
//
// A Graph is immutable once built: no method mutates it, and slices it hands
// out (From) alias read-only storage. Any number of routers may therefore
// share one Graph concurrently without synchronisation, which is what lets
// internal/parallel farm independent place-and-route runs on the same part.
type Graph struct {
	Part *Part
	// adjacency in CSR form: edges out of node n are
	// pips[start[n]:start[n+1]].
	start []int32
	pips  []PIP
}

// graphEntry is one per-part cache slot: the sync.Once serialises the build
// so concurrent first callers neither duplicate the work nor observe a
// half-built graph.
type graphEntry struct {
	once sync.Once
	g    *Graph
}

// graphCache maps part name -> *graphEntry. A sync.Map (rather than a
// mutex-guarded map) makes cache *hits* lock-free: after the first build,
// NewGraph is a read-only Load plus a no-op Once, so concurrent routers on
// the same part do not contend on a global lock.
var graphCache sync.Map

// Cache effectiveness counters (see internal/obs): a miss is the call that
// performs the build for a part, every other call is a hit. Exactly one
// miss per part is recorded no matter how many callers race the first use.
var (
	graphCacheHits   = obs.GetCounter("device.graph_cache.hits")
	graphCacheMisses = obs.GetCounter("device.graph_cache.misses")
)

// NewGraph builds (or returns the cached) routing graph for the part. Safe
// for concurrent use; all callers for one part share a single Graph.
func NewGraph(p *Part) *Graph {
	e, ok := graphCache.Load(p.Name)
	if !ok {
		e, _ = graphCache.LoadOrStore(p.Name, &graphEntry{})
	}
	entry := e.(*graphEntry)
	built := false
	entry.once.Do(func() {
		entry.g = buildGraph(p)
		built = true
	})
	if built {
		graphCacheMisses.Inc()
	} else {
		graphCacheHits.Inc()
	}
	return entry.g
}

// NewGraphUncached builds a fresh graph, bypassing the cache (benchmarks).
func NewGraphUncached(p *Part) *Graph { return buildGraph(p) }

func buildGraph(p *Part) *Graph {
	counts := make([]int32, p.NumNodes()+1)
	var all []PIP
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			tp := p.TilePIPs(r, c)
			all = append(all, tp...)
			for _, pip := range tp {
				counts[pip.Src+1]++
			}
		}
	}
	start := make([]int32, p.NumNodes()+1)
	for i := 1; i < len(start); i++ {
		start[i] = start[i-1] + counts[i]
	}
	pips := make([]PIP, len(all))
	cursor := make([]int32, p.NumNodes())
	copy(cursor, start[:len(cursor)])
	for _, pip := range all {
		pips[cursor[pip.Src]] = pip
		cursor[pip.Src]++
	}
	return &Graph{Part: p, start: start, pips: pips}
}

// From returns the PIPs whose source is node n. The returned slice aliases
// the graph's storage and must not be modified.
func (g *Graph) From(n NodeID) []PIP {
	return g.pips[g.start[n]:g.start[n+1]]
}

// FindPIP looks up a PIP by owning tile and endpoints using the prebuilt
// adjacency — much faster than Part.FindPIP, which re-enumerates the tile
// catalog on every call.
func (g *Graph) FindPIP(row, col int, src, dst NodeID) (PIP, bool) {
	for _, pip := range g.From(src) {
		if pip.Dst == dst && pip.Row == row && pip.Col == col {
			return pip, true
		}
	}
	return PIP{}, false
}

// NumPIPs returns the total number of PIPs on the part.
func (g *Graph) NumPIPs() int { return len(g.pips) }

// ParseNode parses a node name produced by Part.NodeName. thisTile supplies
// the tile for unqualified per-tile wire names (e.g. "E2" meaning the wire of
// the tile a pip statement is anchored at); pass row=-1 to forbid them.
func (p *Part) ParseNode(name string, thisRow, thisCol int) (NodeID, error) {
	switch {
	case strings.HasPrefix(name, "GLB"):
		g, err := strconv.Atoi(name[3:])
		if err != nil || g < 0 || g >= NumGlobals {
			return 0, fmt.Errorf("device: bad global node %q", name)
		}
		return p.GlobalNode(g), nil

	case strings.HasPrefix(name, "ROW"):
		base, line, ok := strings.Cut(name, ".")
		if !ok || !strings.HasPrefix(line, "HL") {
			return 0, fmt.Errorf("device: bad row-long node %q", name)
		}
		r, err1 := strconv.Atoi(base[3:])
		j, err2 := strconv.Atoi(line[2:])
		if err1 != nil || err2 != nil || r < 1 || r > p.Rows || j < 0 || j >= NumLongPerRow {
			return 0, fmt.Errorf("device: bad row-long node %q", name)
		}
		return p.RowLongNode(r-1, j), nil

	case strings.HasPrefix(name, "COL"):
		base, line, ok := strings.Cut(name, ".")
		if !ok || !strings.HasPrefix(line, "VL") {
			return 0, fmt.Errorf("device: bad col-long node %q", name)
		}
		c, err1 := strconv.Atoi(base[3:])
		j, err2 := strconv.Atoi(line[2:])
		if err1 != nil || err2 != nil || c < 1 || c > p.Cols || j < 0 || j >= NumLongPerCol {
			return 0, fmt.Errorf("device: bad col-long node %q", name)
		}
		return p.ColLongNode(c-1, j), nil

	case strings.HasPrefix(name, "P_"):
		padName, side, ok := strings.Cut(name, ".")
		if !ok {
			return 0, fmt.Errorf("device: pad node %q missing .I/.O", name)
		}
		pd, err := ParsePad(padName)
		if err != nil {
			return 0, err
		}
		if !p.ValidPad(pd) {
			return 0, fmt.Errorf("device: pad %q not on %s", padName, p.Name)
		}
		switch side {
		case "I":
			return p.PadNodeI(pd), nil
		case "O":
			return p.PadNodeO(pd), nil
		}
		return 0, fmt.Errorf("device: bad pad side in %q", name)

	case strings.HasPrefix(name, "R") && strings.Contains(name, "."):
		tile, wire, _ := strings.Cut(name, ".")
		r, c, err := ParseTileName(tile)
		if err != nil {
			return 0, err
		}
		if r >= p.Rows || c >= p.Cols {
			return 0, fmt.Errorf("device: tile %q out of range for %s", tile, p.Name)
		}
		w, ok := WireByName(wire)
		if !ok {
			return 0, fmt.Errorf("device: unknown wire %q in %q", wire, name)
		}
		return p.TileWireNode(r, c, w), nil

	default: // unqualified per-tile wire
		if thisRow < 0 {
			return 0, fmt.Errorf("device: unqualified wire %q with no anchor tile", name)
		}
		w, ok := WireByName(name)
		if !ok {
			return 0, fmt.Errorf("device: unknown wire %q", name)
		}
		return p.TileWireNode(thisRow, thisCol, w), nil
	}
}

// ParseTileName parses "R3C23" into 0-based (row, col).
func ParseTileName(s string) (row, col int, err error) {
	if !strings.HasPrefix(s, "R") {
		return 0, 0, fmt.Errorf("device: bad tile name %q", s)
	}
	rs, cs, ok := strings.Cut(s[1:], "C")
	if !ok {
		return 0, 0, fmt.Errorf("device: bad tile name %q", s)
	}
	r, err1 := strconv.Atoi(rs)
	c, err2 := strconv.Atoi(cs)
	if err1 != nil || err2 != nil || r < 1 || c < 1 {
		return 0, 0, fmt.Errorf("device: bad tile name %q", s)
	}
	return r - 1, c - 1, nil
}

// TileName renders 0-based (row, col) as "R{row+1}C{col+1}".
func TileName(row, col int) string { return fmt.Sprintf("R%dC%d", row+1, col+1) }
