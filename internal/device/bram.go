package device

import "fmt"

// Block RAM. Original Virtex devices carry two columns of block SELECT-RAM,
// one along each vertical edge; each block spans four CLB rows and stores
// 4096 bits. Content lives in the two block type 1 ("BRAM content") majors.
//
// Layout (this package's deterministic assignment): content bit i of block b
// in column side s (0 = left, 1 = right) lives at
//
//	FAR(BlockBRAM, s, minor = i/64), frame bit = b*72 + i%64
//
// 64 minors x 64 bits cover the 4096 bits per block; blocks stack at 72-bit
// stride so Rows/4 blocks fit the 18*(Rows+2)-bit frames exactly.

// BRAMBitsPerBlock is the content capacity of one block (4096 bits,
// addressable as 256 x 16).
const (
	BRAMBitsPerBlock  = 4096
	BRAMWordsPerBlock = 256
	BRAMWordBits      = 16
	bramBlockStride   = 72
)

// BRAMBlocksPerColumn returns the blocks stacked in one BRAM column.
func (p *Part) BRAMBlocksPerColumn() int { return p.Rows / 4 }

// NumBRAMBlocks returns the device's total block count (two columns).
func (p *Part) NumBRAMBlocks() int { return 2 * p.BRAMBlocksPerColumn() }

// BRAMBits returns the device's total block-RAM capacity in bits.
func (p *Part) BRAMBits() int { return p.NumBRAMBlocks() * BRAMBitsPerBlock }

// ValidBRAM reports whether (side, block) names a block on this part.
func (p *Part) ValidBRAM(side, block int) bool {
	return (side == 0 || side == 1) && block >= 0 && block < p.BRAMBlocksPerColumn()
}

// BRAMBit returns the configuration-bit coordinate of content bit i of the
// given block.
func (p *Part) BRAMBit(side, block, i int) BitCoord {
	if !p.ValidBRAM(side, block) || i < 0 || i >= BRAMBitsPerBlock {
		panic(fmt.Sprintf("device: bad BRAM bit (side=%d block=%d i=%d) on %s", side, block, i, p.Name))
	}
	return BitCoord{
		FAR: MakeFAR(BlockBRAM, side, i/64),
		Bit: block*bramBlockStride + i%64,
	}
}

// BRAMColumnFARs returns every content frame of one BRAM column, the set a
// BRAM-content partial bitstream carries.
func (p *Part) BRAMColumnFARs(side int) []FAR {
	fars := make([]FAR, 0, FramesBRAMCol)
	for minor := 0; minor < FramesBRAMCol; minor++ {
		fars = append(fars, MakeFAR(BlockBRAM, side, minor))
	}
	return fars
}
