package device

import (
	"sync"
	"testing"
)

// TestNewGraphConcurrentSharing hammers the per-part cache from many
// goroutines: every caller must get the same *Graph (one build per part,
// no duplicate work) and the build must be complete when returned.
func TestNewGraphConcurrentSharing(t *testing.T) {
	p := MustByName("XCV50")
	const callers = 32
	graphs := make([]*Graph, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			graphs[i] = NewGraph(p)
		}(i)
	}
	wg.Wait()
	want := NewGraph(p)
	if want.NumPIPs() == 0 {
		t.Fatal("cached graph is empty")
	}
	for i, g := range graphs {
		if g != want {
			t.Fatalf("caller %d got a distinct graph instance", i)
		}
	}
	// Distinct parts get distinct graphs.
	if other := NewGraph(MustByName("XCV100")); other == want {
		t.Fatal("XCV100 shares XCV50's graph")
	}
}

// TestNewGraphMatchesUncached pins the cache down: the shared graph is the
// same adjacency the uncached builder produces.
func TestNewGraphMatchesUncached(t *testing.T) {
	p := MustByName("XCV50")
	cached, fresh := NewGraph(p), NewGraphUncached(p)
	if cached.NumPIPs() != fresh.NumPIPs() {
		t.Fatalf("cached %d PIPs, uncached %d", cached.NumPIPs(), fresh.NumPIPs())
	}
	for n := NodeID(0); int(n) < p.NumNodes(); n++ {
		a, b := cached.From(n), fresh.From(n)
		if len(a) != len(b) {
			t.Fatalf("node %d: %d vs %d edges", n, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d edge %d differs: %+v vs %+v", n, i, a[i], b[i])
			}
		}
	}
}
