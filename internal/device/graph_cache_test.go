package device

import (
	"sync"
	"testing"
)

// TestNewGraphConcurrentSharing hammers the per-part cache from many
// goroutines: every caller must get the same *Graph (one build per part,
// no duplicate work) and the build must be complete when returned.
//
// It also audits the obs cache counters by delta: tests share one process
// (and other tests build graphs too), so the assertion is on the change
// across this test's calls, not on absolute values — every call must be
// classified exactly once, and at most one call per part may be a miss.
func TestNewGraphConcurrentSharing(t *testing.T) {
	p := MustByName("XCV50")
	hits0, misses0 := graphCacheHits.Value(), graphCacheMisses.Value()
	const callers = 32
	graphs := make([]*Graph, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			graphs[i] = NewGraph(p)
		}(i)
	}
	wg.Wait()
	want := NewGraph(p)
	hitsD := graphCacheHits.Value() - hits0
	missesD := graphCacheMisses.Value() - misses0
	if hitsD+missesD != callers+1 {
		t.Fatalf("hit+miss delta = %d+%d, want %d (every call classified once)",
			hitsD, missesD, callers+1)
	}
	if missesD > 1 {
		t.Fatalf("%d misses for one part, want at most 1 (single build)", missesD)
	}
	if hitsD < callers {
		t.Fatalf("only %d hits across %d calls after first build", hitsD, callers+1)
	}
	if want.NumPIPs() == 0 {
		t.Fatal("cached graph is empty")
	}
	for i, g := range graphs {
		if g != want {
			t.Fatalf("caller %d got a distinct graph instance", i)
		}
	}
	// Distinct parts get distinct graphs.
	if other := NewGraph(MustByName("XCV100")); other == want {
		t.Fatal("XCV100 shares XCV50's graph")
	}
}

// TestNewGraphCacheCounters pins the serial contract: once a part's graph
// exists, every further NewGraph call is a recorded hit and no miss.
func TestNewGraphCacheCounters(t *testing.T) {
	p := MustByName("XCV50")
	NewGraph(p) // ensure built (miss already consumed, here or earlier)
	hits0, misses0 := graphCacheHits.Value(), graphCacheMisses.Value()
	for i := 0; i < 3; i++ {
		NewGraph(p)
	}
	if d := graphCacheHits.Value() - hits0; d != 3 {
		t.Errorf("hits delta = %d, want 3", d)
	}
	if d := graphCacheMisses.Value() - misses0; d != 0 {
		t.Errorf("misses delta = %d, want 0", d)
	}
}

// TestNewGraphMatchesUncached pins the cache down: the shared graph is the
// same adjacency the uncached builder produces.
func TestNewGraphMatchesUncached(t *testing.T) {
	p := MustByName("XCV50")
	cached, fresh := NewGraph(p), NewGraphUncached(p)
	if cached.NumPIPs() != fresh.NumPIPs() {
		t.Fatalf("cached %d PIPs, uncached %d", cached.NumPIPs(), fresh.NumPIPs())
	}
	for n := NodeID(0); int(n) < p.NumNodes(); n++ {
		a, b := cached.From(n), fresh.From(n)
		if len(a) != len(b) {
			t.Fatalf("node %d: %d vs %d edges", n, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d edge %d differs: %+v vs %+v", n, i, a[i], b[i])
			}
		}
	}
}
