package device

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogAgainstDatasheet(t *testing.T) {
	for _, p := range All() {
		bits := p.ConfigBits()
		ds := p.DatasheetConfigBits
		err := math.Abs(float64(bits-ds)) / float64(ds)
		if err > 0.01 {
			t.Errorf("%s: model %d bits vs datasheet %d bits (%.2f%% off)",
				p.Name, bits, ds, err*100)
		}
		t.Logf("%s: model=%d datasheet=%d (%.3f%%)", p.Name, bits, ds, err*100)
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("XCV300")
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows != 32 || p.Cols != 48 {
		t.Fatalf("XCV300 geometry = %dx%d, want 32x48", p.Rows, p.Cols)
	}
	if _, err := ByName("XCV9999"); err == nil {
		t.Fatal("expected error for unknown part")
	}
}

func TestFrameWords(t *testing.T) {
	cases := map[string]int{"XCV50": 12, "XCV300": 21, "XCV1000": 39}
	for name, want := range cases {
		if got := MustByName(name).FrameWords(); got != want {
			t.Errorf("%s FrameWords = %d, want %d", name, got, want)
		}
	}
}

func TestFARRoundTrip(t *testing.T) {
	p := MustByName("XCV50")
	// Walk all frames via NextFAR and confirm FrameIndex/FARAt agree.
	f := p.FirstFAR()
	for i := 0; ; i++ {
		if !p.ValidFAR(f) {
			t.Fatalf("NextFAR produced invalid %v at step %d", f, i)
		}
		if got := p.FrameIndex(f); got != i {
			t.Fatalf("FrameIndex(%v) = %d, want %d", f, got, i)
		}
		back, err := p.FARAt(i)
		if err != nil || back != f {
			t.Fatalf("FARAt(%d) = %v, %v; want %v", i, back, err, f)
		}
		next, ok := p.NextFAR(f)
		if !ok {
			if i != p.TotalFrames()-1 {
				t.Fatalf("walk ended at %d frames, want %d", i+1, p.TotalFrames())
			}
			break
		}
		f = next
	}
	if _, err := p.FARAt(p.TotalFrames()); err == nil {
		t.Fatal("FARAt past end should error")
	}
}

func TestFARFields(t *testing.T) {
	f := MakeFAR(1, 37, 12)
	if f.BlockType() != 1 || f.Major() != 37 || f.Minor() != 12 {
		t.Fatalf("FAR field round-trip broken: %v", f)
	}
}

func TestCLBBitCoordinatesDistinct(t *testing.T) {
	// Property: distinct (row, col, localBit) never map to the same
	// configuration bit.
	p := MustByName("XCV50")
	seen := map[BitCoord]int{}
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			for b := 0; b < CLBLocalBits; b++ {
				bc := p.CLBBit(r, c, b)
				key := r<<20 | c<<10 | b
				if prev, dup := seen[bc]; dup {
					t.Fatalf("bit collision: %v claimed by %x and %x", bc, prev, key)
				}
				seen[bc] = key
			}
		}
	}
}

func TestCLBBitStaysInColumn(t *testing.T) {
	p := MustByName("XCV100")
	f := func(r, c, b uint16) bool {
		row := int(r) % p.Rows
		col := int(c) % p.Cols
		bit := int(b) % CLBLocalBits
		bc := p.CLBBit(row, col, bit)
		if bc.FAR.BlockType() != BlockCLB || bc.FAR.Major() != p.CLBMajor(col) {
			return false
		}
		return bc.Bit >= 18 && bc.Bit < 18*(p.Rows+1) && bc.Bit < p.FrameBits()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWireNameRoundTrip(t *testing.T) {
	for w := 0; w < WiresPerTile; w++ {
		name := WireName(w)
		back, ok := WireByName(name)
		if !ok || back != w {
			t.Fatalf("wire %d name %q round-trips to %d, %v", w, name, back, ok)
		}
	}
}

func TestNodeNameRoundTrip(t *testing.T) {
	p := MustByName("XCV50")
	nodes := []NodeID{
		p.TileWireNode(2, 22, SingleWire(DirE, 2)),
		p.TileWireNode(0, 0, OutWire(1, OutXQ)),
		p.TileWireNode(p.Rows-1, p.Cols-1, InPinWire(0, PinG4)),
		p.RowLongNode(2, 0),
		p.ColLongNode(4, 1),
		p.GlobalNode(0),
		p.PadNodeI(Pad{EdgeL, 2}),
		p.PadNodeO(Pad{EdgeT, 11}),
	}
	for _, n := range nodes {
		name := p.NodeName(n)
		back, err := p.ParseNode(name, -1, -1)
		if err != nil {
			t.Fatalf("ParseNode(%q): %v", name, err)
		}
		if back != n {
			t.Fatalf("node %d -> %q -> %d", n, name, back)
		}
	}
}

func TestParseNodeUnqualified(t *testing.T) {
	p := MustByName("XCV50")
	n, err := p.ParseNode("E3", 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if n != p.TileWireNode(4, 7, SingleWire(DirE, 3)) {
		t.Fatalf("unqualified wire resolved to wrong node: %s", p.NodeName(n))
	}
	if _, err := p.ParseNode("E3", -1, -1); err == nil {
		t.Fatal("unqualified wire without anchor should error")
	}
}

func TestPadHelpers(t *testing.T) {
	p := MustByName("XCV50")
	if p.NumPads() != 2*p.Rows+2*p.Cols {
		t.Fatalf("NumPads = %d", p.NumPads())
	}
	for i := 0; i < p.NumPads(); i++ {
		pd := p.padAt(i)
		if p.padIndex(pd) != i {
			t.Fatalf("pad index round-trip broken at %d (%+v)", i, pd)
		}
		name := pd.Name()
		back, err := ParsePad(name)
		if err != nil || back != pd {
			t.Fatalf("pad name round-trip: %q -> %+v, %v", name, back, err)
		}
	}
	// Corner tile has two pads.
	if got := len(p.PadsOfTile(0, 0)); got != 2 {
		t.Fatalf("corner tile pads = %d, want 2", got)
	}
	if got := len(p.PadsOfTile(1, 1)); got != 0 {
		t.Fatalf("interior tile pads = %d, want 0", got)
	}
}

func TestPadModeBitsDistinct(t *testing.T) {
	p := MustByName("XCV50")
	seen := map[BitCoord]string{}
	for i := 0; i < p.NumPads(); i++ {
		pd := p.padAt(i)
		for ctl := 0; ctl < 3; ctl++ {
			bc := p.PadModeBit(pd, ctl)
			if !p.ValidFAR(bc.FAR) || bc.Bit >= p.FrameBits() {
				t.Fatalf("pad %s ctl %d: bad coordinate %v", pd.Name(), ctl, bc)
			}
			if prev, dup := seen[bc]; dup {
				t.Fatalf("pad bit collision at %v: %s vs %s/%d", bc, prev, pd.Name(), ctl)
			}
			seen[bc] = pd.Name()
		}
	}
}

func TestTilePIPBudget(t *testing.T) {
	p := MustByName("XCV50")
	for _, tile := range [][2]int{{0, 0}, {0, 1}, {3, 5}, {p.Rows - 1, p.Cols - 1}, {p.Rows / 2, p.Cols / 2}} {
		pips := p.TilePIPs(tile[0], tile[1])
		if len(pips) == 0 || len(pips) > pipBitsBudget {
			t.Fatalf("tile %v: %d PIPs (budget %d)", tile, len(pips), pipBitsBudget)
		}
		// Catalog indices must be dense and bits valid.
		for i, pip := range pips {
			if pip.CatalogIdx != i {
				t.Fatalf("tile %v pip %d has CatalogIdx %d", tile, i, pip.CatalogIdx)
			}
			bc := p.PIPBit(pip)
			if !p.ValidFAR(bc.FAR) {
				t.Fatalf("pip %s: invalid bit %v", p.pipString(pip), bc)
			}
		}
	}
}

func TestTilePIPsNoDuplicateEdges(t *testing.T) {
	p := MustByName("XCV50")
	type edge struct{ s, d NodeID }
	for _, tile := range [][2]int{{0, 0}, {4, 4}, {p.Rows - 1, 0}} {
		seen := map[edge]bool{}
		for _, pip := range p.TilePIPs(tile[0], tile[1]) {
			e := edge{pip.Src, pip.Dst}
			if seen[e] {
				t.Fatalf("duplicate pip %s", p.pipString(pip))
			}
			seen[e] = true
		}
	}
}

func TestGraphAdjacency(t *testing.T) {
	p := MustByName("XCV50")
	g := NewGraph(p)
	if g.NumPIPs() == 0 {
		t.Fatal("empty graph")
	}
	// Every pip reachable from adjacency must be in its owning tile catalog.
	out := g.From(p.TileWireNode(3, 3, OutWire(0, OutX)))
	if len(out) == 0 {
		t.Fatal("slice output has no fanout")
	}
	for _, pip := range out {
		if pip.Src != p.TileWireNode(3, 3, OutWire(0, OutX)) {
			t.Fatalf("adjacency returned foreign pip %s", p.pipString(pip))
		}
		if got, ok := p.FindPIP(pip.Row, pip.Col, pip.Src, pip.Dst); !ok || got.CatalogIdx != pip.CatalogIdx {
			t.Fatalf("pip %s not found in catalog", p.pipString(pip))
		}
	}
	// Graphs are cached.
	if NewGraph(p) != g {
		t.Fatal("graph not cached")
	}
}

func TestGlobalFanout(t *testing.T) {
	p := MustByName("XCV50")
	g := NewGraph(p)
	// Global 0 must reach every tile's CLK pins.
	fan := g.From(p.GlobalNode(0))
	wantMin := p.Rows * p.Cols * 2 // two CLK pins per tile at minimum
	if len(fan) < wantMin {
		t.Fatalf("global fanout %d < %d", len(fan), wantMin)
	}
}

func TestTileNameRoundTrip(t *testing.T) {
	r, c, err := ParseTileName(TileName(2, 22))
	if err != nil || r != 2 || c != 22 {
		t.Fatalf("tile name round-trip: %d %d %v", r, c, err)
	}
	for _, bad := range []string{"", "R3", "C4", "R0C1", "RxCy", "3C4"} {
		if _, _, err := ParseTileName(bad); err == nil {
			t.Errorf("ParseTileName(%q) should fail", bad)
		}
	}
}

func TestBRAMGeometry(t *testing.T) {
	for _, p := range All() {
		if p.BRAMBlocksPerColumn() != p.Rows/4 {
			t.Errorf("%s: blocks per column %d", p.Name, p.BRAMBlocksPerColumn())
		}
		if p.BRAMBits() != p.NumBRAMBlocks()*BRAMBitsPerBlock {
			t.Errorf("%s: BRAM capacity inconsistent", p.Name)
		}
		// All content bits of the top and bottom blocks must fit the frame.
		for _, block := range []int{0, p.BRAMBlocksPerColumn() - 1} {
			for _, i := range []int{0, BRAMBitsPerBlock - 1} {
				bc := p.BRAMBit(1, block, i)
				if !p.ValidFAR(bc.FAR) || bc.Bit >= p.FrameBits() {
					t.Errorf("%s: BRAM bit (b=%d i=%d) out of frame: %v", p.Name, block, i, bc)
				}
			}
		}
	}
}

func TestBRAMBitsDistinct(t *testing.T) {
	p := MustByName("XCV50")
	seen := map[BitCoord]bool{}
	for side := 0; side < 2; side++ {
		for block := 0; block < p.BRAMBlocksPerColumn(); block++ {
			for i := 0; i < BRAMBitsPerBlock; i += 7 { // sampled
				bc := p.BRAMBit(side, block, i)
				if seen[bc] {
					t.Fatalf("BRAM bit collision at %v", bc)
				}
				seen[bc] = true
				if bc.FAR.BlockType() != BlockBRAM || bc.FAR.Major() != side {
					t.Fatalf("BRAM bit in wrong column: %v", bc)
				}
			}
		}
	}
}

func TestBRAMColumnFARs(t *testing.T) {
	p := MustByName("XCV50")
	fars := p.BRAMColumnFARs(1)
	if len(fars) != FramesBRAMCol {
		t.Fatalf("column FARs = %d, want %d", len(fars), FramesBRAMCol)
	}
	for _, f := range fars {
		if f.BlockType() != BlockBRAM || f.Major() != 1 {
			t.Fatalf("stray FAR %v", f)
		}
	}
}

func TestDescribeNode(t *testing.T) {
	p := MustByName("XCV50")
	cases := []struct {
		node NodeID
		kind NodeKind
	}{
		{p.TileWireNode(3, 5, SingleWire(DirE, 2)), NodeWire},
		{p.RowLongNode(2, 1), NodeRowLong},
		{p.ColLongNode(7, 0), NodeColLong},
		{p.GlobalNode(3), NodeGlobal},
		{p.PadNodeI(Pad{EdgeL, 4}), NodePadI},
		{p.PadNodeO(Pad{EdgeB, 9}), NodePadO},
		{NodeID(-1), NodeInvalid},
		{NodeID(p.NumNodes()), NodeInvalid},
	}
	for _, tc := range cases {
		d := p.DescribeNode(tc.node)
		if d.Kind != tc.kind {
			t.Errorf("DescribeNode(%d) = %v, want kind %v", tc.node, d.Kind, tc.kind)
		}
	}
	// Field round trips.
	d := p.DescribeNode(p.TileWireNode(3, 5, SingleWire(DirE, 2)))
	if d.A != 3 || d.B != 5 || d.C != SingleWire(DirE, 2) {
		t.Fatalf("wire desc = %+v", d)
	}
	d = p.DescribeNode(p.PadNodeI(Pad{EdgeL, 4}))
	if d.Pad != (Pad{EdgeL, 4}) {
		t.Fatalf("pad desc = %+v", d)
	}
	d = p.DescribeNode(p.GlobalNode(3))
	if d.C != 3 {
		t.Fatalf("global desc = %+v", d)
	}
}

func TestGraphFindPIP(t *testing.T) {
	p := MustByName("XCV50")
	g := NewGraph(p)
	pips := p.TilePIPs(4, 4)
	for _, pip := range pips[:20] {
		got, ok := g.FindPIP(pip.Row, pip.Col, pip.Src, pip.Dst)
		if !ok || got.CatalogIdx != pip.CatalogIdx {
			t.Fatalf("graph lookup failed for catalog pip %d", pip.CatalogIdx)
		}
	}
	if _, ok := g.FindPIP(0, 0, p.GlobalNode(0), p.GlobalNode(1)); ok {
		t.Fatal("phantom pip found")
	}
}
