package device

import "fmt"

// Routing resources are modelled as an island-style graph. Every CLB tile
// owns a fixed set of wires; additional device-level nodes cover long lines,
// global (clock) lines, and I/O pads.
//
// Per-tile wire namespace (index within the tile):
//
//	 0.. 7  OUT0..OUT7   slice output pins (slice s: s*4 + {X,Y,XQ,YQ})
//	 8..15  E0..E7       single-length wires driven eastward by this tile
//	16..23  N0..N7       singles driven northward
//	24..31  W0..W7       singles driven westward
//	32..39  S0..S7       singles driven southward
//	40..43  HE0..HE3     hex (length-6) wires driven eastward
//	44..47  HN0..HN3     hexes northward
//	48..51  HW0..HW3     hexes westward
//	52..55  HS0..HS3     hexes southward
//	56..81  input pins   slice s: 56 + s*13 + k, k indexes
//	                     F1 F2 F3 F4 G1 G2 G3 G4 BX BY CLK CE SR
//
// A wire driven by tile T is visible (tappable) in the tiles its segment
// reaches; PIPs that tap it belong to the tapping tile and reference the
// source node (T, wire).

// Per-tile wire index bases and counts.
const (
	WireOutBase    = 0
	NumOutsPerTile = 8

	WireSingleBase   = 8
	SinglesPerDir    = 8
	WireHexBase      = 40
	HexesPerDir      = 4
	WireInPinBase    = 56
	InPinsPerSlice   = 13
	NumInPinsPerTile = 2 * InPinsPerSlice

	WiresPerTile = 82
)

// Directions for singles and hexes.
const (
	DirE    = 0
	DirN    = 1
	DirW    = 2
	DirS    = 3
	NumDirs = 4
)

var dirNames = [NumDirs]string{"E", "N", "W", "S"}

// Slice input pin indices (k within a slice's 13 input pins).
const (
	PinF1 = iota
	PinF2
	PinF3
	PinF4
	PinG1
	PinG2
	PinG3
	PinG4
	PinBX
	PinBY
	PinCLK
	PinCE
	PinSR
)

var inPinNames = [InPinsPerSlice]string{
	"F1", "F2", "F3", "F4", "G1", "G2", "G3", "G4", "BX", "BY", "CLK", "CE", "SR",
}

// Slice output pin indices (within OUT0..OUT7: slice s offsets s*4+...).
const (
	OutX = iota
	OutY
	OutXQ
	OutYQ
)

var outPinNames = [4]string{"X", "Y", "XQ", "YQ"}

// OutWire returns the per-tile wire index of a slice output pin.
func OutWire(slice, pin int) int { return WireOutBase + slice*4 + pin }

// SingleWire returns the per-tile wire index of single i driven in direction d.
func SingleWire(dir, i int) int { return WireSingleBase + dir*SinglesPerDir + i }

// HexWire returns the per-tile wire index of hex i driven in direction d.
func HexWire(dir, i int) int { return WireHexBase + dir*HexesPerDir + i }

// InPinWire returns the per-tile wire index of input pin k of the slice.
func InPinWire(slice, k int) int { return WireInPinBase + slice*InPinsPerSlice + k }

// WireName returns the canonical name of a per-tile wire index, e.g. "OUT3",
// "E5", "HN1", "S1_G4".
func WireName(w int) string {
	switch {
	case w >= WireOutBase && w < WireOutBase+NumOutsPerTile:
		return fmt.Sprintf("OUT%d", w-WireOutBase)
	case w >= WireSingleBase && w < WireHexBase:
		i := w - WireSingleBase
		return fmt.Sprintf("%s%d", dirNames[i/SinglesPerDir], i%SinglesPerDir)
	case w >= WireHexBase && w < WireInPinBase:
		i := w - WireHexBase
		return fmt.Sprintf("H%s%d", dirNames[i/HexesPerDir], i%HexesPerDir)
	case w >= WireInPinBase && w < WiresPerTile:
		i := w - WireInPinBase
		return fmt.Sprintf("S%d_%s", i/InPinsPerSlice, inPinNames[i%InPinsPerSlice])
	}
	return fmt.Sprintf("W?%d", w)
}

var wireByName = func() map[string]int {
	m := make(map[string]int, WiresPerTile)
	for w := 0; w < WiresPerTile; w++ {
		m[WireName(w)] = w
	}
	return m
}()

// WireByName resolves a per-tile wire name produced by WireName.
func WireByName(name string) (int, bool) {
	w, ok := wireByName[name]
	return w, ok
}

// NodeID identifies a routing node on a specific part. The node space is laid
// out as: tile wires, then row long lines, column long lines, global lines,
// and pad nodes (see the Node* methods on Part).
type NodeID int32

// NumLongPerRow and NumLongPerCol are the long lines per row/column.
const (
	NumLongPerRow = 2
	NumLongPerCol = 2
	NumGlobals    = 4
)

// Node space layout helpers.

func (p *Part) tileIndex(row, col int) int { return row*p.Cols + col }

// TileWireNode returns the node for wire w of tile (row, col), 0-based.
func (p *Part) TileWireNode(row, col, w int) NodeID {
	return NodeID(p.tileIndex(row, col)*WiresPerTile + w)
}

func (p *Part) rowLongBase() int { return p.Rows * p.Cols * WiresPerTile }
func (p *Part) colLongBase() int { return p.rowLongBase() + p.Rows*NumLongPerRow }
func (p *Part) globalBase() int  { return p.colLongBase() + p.Cols*NumLongPerCol }
func (p *Part) padBase() int     { return p.globalBase() + NumGlobals }

// RowLongNode returns row long line j of CLB row `row`.
func (p *Part) RowLongNode(row, j int) NodeID {
	return NodeID(p.rowLongBase() + row*NumLongPerRow + j)
}

// ColLongNode returns column long line j of CLB column `col`.
func (p *Part) ColLongNode(col, j int) NodeID {
	return NodeID(p.colLongBase() + col*NumLongPerCol + j)
}

// GlobalNode returns global line g (0..3). Global lines distribute clocks and
// control signals to every tile's CLK/CE/SR pin muxes.
func (p *Part) GlobalNode(g int) NodeID { return NodeID(p.globalBase() + g) }

// PadNodeI and PadNodeO return the fabric-driving (input path) and
// fabric-driven (output path) nodes of a pad.
func (p *Part) PadNodeI(pad Pad) NodeID { return NodeID(p.padBase() + p.padIndex(pad)*2) }
func (p *Part) PadNodeO(pad Pad) NodeID { return NodeID(p.padBase() + p.padIndex(pad)*2 + 1) }

// NumNodes returns the size of the node space for this part.
func (p *Part) NumNodes() int { return p.padBase() + p.NumPads()*2 }

// NodeName renders a node as a stable, parseable name:
//
//	wire:     "R3C23.E2" (1-based tile coordinates)
//	row long: "ROW3.HL0"; col long: "COL5.VL1"
//	global:   "GLB0"
//	pad:      "P_L3.I" / "P_T12.O"
func (p *Part) NodeName(n NodeID) string {
	in := int(n)
	switch {
	case in < 0:
		return fmt.Sprintf("N?%d", in)
	case in < p.rowLongBase():
		t, w := in/WiresPerTile, in%WiresPerTile
		return fmt.Sprintf("R%dC%d.%s", t/p.Cols+1, t%p.Cols+1, WireName(w))
	case in < p.colLongBase():
		i := in - p.rowLongBase()
		return fmt.Sprintf("ROW%d.HL%d", i/NumLongPerRow+1, i%NumLongPerRow)
	case in < p.globalBase():
		i := in - p.colLongBase()
		return fmt.Sprintf("COL%d.VL%d", i/NumLongPerCol+1, i%NumLongPerCol)
	case in < p.padBase():
		return fmt.Sprintf("GLB%d", in-p.globalBase())
	case in < p.NumNodes():
		i := in - p.padBase()
		pad := p.padAt(i / 2)
		side := "I"
		if i%2 == 1 {
			side = "O"
		}
		return fmt.Sprintf("%s.%s", pad.Name(), side)
	}
	return fmt.Sprintf("N?%d", in)
}

// NodeTile returns the tile that owns a tile-wire node, or ok=false for
// device-level nodes (long lines, globals, pads).
func (p *Part) NodeTile(n NodeID) (row, col, wire int, ok bool) {
	in := int(n)
	if in < 0 || in >= p.rowLongBase() {
		return 0, 0, 0, false
	}
	t, w := in/WiresPerTile, in%WiresPerTile
	return t / p.Cols, t % p.Cols, w, true
}
