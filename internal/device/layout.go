package device

import "fmt"

// Intra-frame bit layout.
//
// Every frame of a block-0 column is divided into 18-bit row stripes:
//
//	stripe 0        top IOB row
//	stripe r+1      CLB row r (0-based from the top)
//	stripe Rows+1   bottom IOB row
//
// A CLB therefore owns 48 frames x 18 bits = 864 configuration bits (as on
// the real Virtex). We address them with a "local bit" index 0..863 where
// local bit b lives in minor b/18, stripe bit b%18.
//
// Local bit allocation within a CLB (this package's deterministic layout):
//
//	  0.. 15   slice 0, F-LUT truth table (bit i = output for input value i)
//	 16.. 31   slice 0, G-LUT truth table
//	 32.. 47   slice 1, F-LUT truth table
//	 48.. 63   slice 1, G-LUT truth table
//	 64.. 79   slice 0 control word (see SliceCtl* constants)
//	 80.. 95   slice 1 control word
//	 96..863   routing PIPs, in TilePIPs catalog order (pips.go)
//
// IOB configuration bits live in the stripe of their pad (see iob.go).

// CLBLocalBits is the number of configuration bits owned by one CLB.
const CLBLocalBits = FramesCLBCol * 18 // 864

// Local-bit base offsets within a CLB.
const (
	lutBitsBase   = 0  // 4 LUTs x 16 bits
	sliceCtlBase  = 64 // 2 slices x 16 bits
	pipBitsBase   = 96 // routing PIPs
	pipBitsBudget = CLBLocalBits - pipBitsBase
)

// Slice control word bit positions (within a slice's 16-bit control word).
const (
	SliceCtlCKINV  = 0 // invert clock
	SliceCtlCEUsed = 1 // clock-enable input used
	SliceCtlSRUsed = 2 // set/reset input used
	SliceCtlSync   = 3 // SYNC_ATTR: 1 = synchronous set/reset
	SliceCtlFFX    = 4 // X flip-flop in use (XQ registered)
	SliceCtlFFY    = 5 // Y flip-flop in use (YQ registered)
	SliceCtlINITX  = 6 // X flip-flop init/reset value
	SliceCtlINITY  = 7 // Y flip-flop init/reset value
	SliceCtlXMUX   = 8 // 1: X output driven by F LUT; 0: BX bypass
	SliceCtlYMUX   = 9 // 1: Y output driven by G LUT; 0: BY bypass
)

// BitCoord identifies one configuration bit by frame address and bit offset
// within the frame.
type BitCoord struct {
	FAR FAR
	// Bit is the bit offset within the frame, 0-based from the frame's
	// first word's MSB: bit b lives in word b/32, bit position 31-(b%32).
	Bit int
}

func (bc BitCoord) String() string { return fmt.Sprintf("%v bit %d", bc.FAR, bc.Bit) }

// stripeOf returns the stripe index of CLB row r (0-based).
func stripeOfRow(r int) int { return r + 1 }

// CLBBit maps (CLB row, CLB col, local bit) to its configuration-bit
// coordinate. Rows and cols are 0-based. It panics on out-of-range inputs;
// callers validate coordinates at their API boundary.
func (p *Part) CLBBit(row, col, localBit int) BitCoord {
	if row < 0 || row >= p.Rows || col < 0 || col >= p.Cols {
		panic(fmt.Sprintf("device: CLB R%dC%d out of range for %s", row+1, col+1, p.Name))
	}
	if localBit < 0 || localBit >= CLBLocalBits {
		panic(fmt.Sprintf("device: CLB local bit %d out of range", localBit))
	}
	minor := localBit / 18
	return BitCoord{
		FAR: MakeFAR(BlockCLB, p.CLBMajor(col), minor),
		Bit: stripeOfRow(row)*18 + localBit%18,
	}
}

// LUTBit returns the coordinate of truth-table bit i (0..15) of the given
// LUT. slice is 0 or 1; lut is LUTF or LUTG.
func (p *Part) LUTBit(row, col, slice, lut, i int) BitCoord {
	if slice < 0 || slice > 1 || (lut != LUTF && lut != LUTG) || i < 0 || i > 15 {
		panic(fmt.Sprintf("device: bad LUT bit (slice=%d lut=%d i=%d)", slice, lut, i))
	}
	return p.CLBBit(row, col, lutBitsBase+slice*32+lut*16+i)
}

// SliceCtlBit returns the coordinate of control bit ctl (SliceCtl*) of the
// given slice.
func (p *Part) SliceCtlBit(row, col, slice, ctl int) BitCoord {
	if slice < 0 || slice > 1 || ctl < 0 || ctl > 15 {
		panic(fmt.Sprintf("device: bad slice ctl bit (slice=%d ctl=%d)", slice, ctl))
	}
	return p.CLBBit(row, col, sliceCtlBase+slice*16+ctl)
}

// LUT identifiers within a slice.
const (
	LUTF = 0
	LUTG = 1
)

// LUTName returns "F" or "G".
func LUTName(lut int) string {
	if lut == LUTF {
		return "F"
	}
	return "G"
}
