// Package device models the Xilinx Virtex (2.5 V, XCV series) FPGA family at
// the level needed for partial-bitstream generation: part geometry, the
// frame-addressed configuration memory organisation (per XAPP151), a
// deterministic mapping from named logic/routing resources to configuration
// bits, and an island-style routing graph.
//
// Geometry and total configuration-bit counts are calibrated against the
// Virtex 2.5 V datasheet (DS003). The intra-frame bit assignment is this
// package's own deterministic layout (see layout.go); it is synthetic but
// fixed and invertible, which is all the CAD flow and the JPG tool require.
package device

import (
	"fmt"
	"sort"
)

// Part describes one member of the Virtex family.
type Part struct {
	// Name is the Xilinx part name, e.g. "XCV300".
	Name string
	// Rows and Cols give the CLB array dimensions (CLB rows x CLB columns).
	Rows, Cols int
	// DatasheetConfigBits is the total number of configuration bits the
	// Virtex 2.5V datasheet lists for this part. Our frame model must agree
	// with this to within 1%; a test enforces it.
	DatasheetConfigBits int
}

// Frame counts per column type, per XAPP151 "Virtex Series Configuration
// Architecture User Guide".
const (
	FramesClockCol   = 8  // the single center clock column
	FramesCLBCol     = 48 // each CLB column
	FramesIOBCol     = 54 // each of the two edge IOB columns
	FramesBRAMIntCol = 27 // each of the two block-RAM interconnect columns
	FramesBRAMCol    = 64 // each of the two block-RAM content columns
)

// parts is the family catalog, smallest to largest.
var parts = []*Part{
	{"XCV50", 16, 24, 559200},
	{"XCV100", 20, 30, 781216},
	{"XCV150", 24, 36, 1040096},
	{"XCV200", 28, 42, 1335840},
	{"XCV300", 32, 48, 1751808},
	{"XCV400", 40, 60, 2546048},
	{"XCV600", 48, 72, 3607968},
	{"XCV800", 56, 84, 4715616},
	{"XCV1000", 64, 96, 6127744},
}

var partsByName = func() map[string]*Part {
	m := make(map[string]*Part, len(parts))
	for _, p := range parts {
		m[p.Name] = p
	}
	return m
}()

// ByName returns the named part, or an error if the part is unknown.
func ByName(name string) (*Part, error) {
	p, ok := partsByName[name]
	if !ok {
		return nil, fmt.Errorf("device: unknown part %q (known: %v)", name, PartNames())
	}
	return p, nil
}

// MustByName is ByName for parts known at compile time; it panics on error.
func MustByName(name string) *Part {
	p, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// All returns the family catalog ordered smallest to largest.
func All() []*Part {
	out := make([]*Part, len(parts))
	copy(out, parts)
	return out
}

// PartNames returns the sorted names of all known parts.
func PartNames() []string {
	names := make([]string, 0, len(parts))
	for _, p := range parts {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return names
}

// FrameWords returns the length of one configuration frame in 32-bit words.
// Each of the Rows CLB rows owns an 18-bit stripe in every frame of its
// column; two extra stripes cover the top and bottom IOB rows, and one pad
// word terminates the frame (mirroring the real device's frame padding).
func (p *Part) FrameWords() int {
	bits := 18 * (p.Rows + 2)
	return (bits+31)/32 + 1
}

// FrameBits returns the frame length in bits (including the pad word).
func (p *Part) FrameBits() int { return p.FrameWords() * 32 }

// NumCLBs returns the total number of CLBs in the array.
func (p *Part) NumCLBs() int { return p.Rows * p.Cols }

// NumSlices returns the total number of slices (2 per CLB).
func (p *Part) NumSlices() int { return 2 * p.NumCLBs() }

// NumLUTs returns the total number of 4-input LUTs (4 per CLB).
func (p *Part) NumLUTs() int { return 4 * p.NumCLBs() }

// TotalFrames returns the number of configuration frames across all block
// types and columns.
func (p *Part) TotalFrames() int {
	n := 0
	for bt := 0; bt < NumBlockTypes; bt++ {
		for maj := 0; maj < p.NumMajors(bt); maj++ {
			n += p.FramesInMajor(bt, maj)
		}
	}
	return n
}

// ConfigBits returns the total configuration payload in bits under our frame
// model. It must agree with DatasheetConfigBits to within 1%.
func (p *Part) ConfigBits() int { return p.TotalFrames() * p.FrameBits() }

func (p *Part) String() string {
	return fmt.Sprintf("%s (%dx%d CLBs, %d frames x %d words)",
		p.Name, p.Rows, p.Cols, p.TotalFrames(), p.FrameWords())
}
