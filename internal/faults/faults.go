// Package faults provides deterministic, seedable fault injection for the
// download/reconfiguration path: an Injector wraps any xhwif.HWIF and
// perturbs downloads — failing outright, truncating or corrupting the
// bitstream bytes on the wire, or adding link latency — according to a
// Spec. Everything is driven by the spec's seed and the download-attempt
// counter, so a faulted run is exactly reproducible: CI uses this to prove
// the retry and rollback behaviour of xhwif.ReliableHWIF and the
// transactional Board without flaky hardware.
package faults

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/obs"
	jpglog "repro/internal/obs/log"
	"repro/internal/xhwif"
)

// Env is the environment variable carrying a default fault spec (same
// syntax as Parse), so any tool's downloads can be faulted without new
// flags: JPG_FAULTS="nth=2,mode=error,seed=7".
const Env = "JPG_FAULTS"

// Fault modes.
const (
	// ModeError fails the download without touching the device.
	ModeError = "error"
	// ModeTruncate cuts the bitstream roughly in half (word-aligned) before
	// handing it to the device; the configuration port rejects the
	// truncated stream mid-frame-write.
	ModeTruncate = "truncate"
	// ModeCorrupt flips one byte at a seed-determined offset; the port's
	// CRC check rejects the stream.
	ModeCorrupt = "corrupt"
)

// ErrInjected is the error (wrapped) returned for ModeError injections.
var ErrInjected = errors.New("faults: injected download fault")

// Spec selects which download attempts are faulted and how. The zero Spec
// injects nothing.
type Spec struct {
	// Seed drives the injector's RNG (corruption offsets, Prob draws).
	Seed int64
	// Nth faults every Nth download attempt (1-based: nth=2 faults
	// attempts 2, 4, 6, ...).
	Nth int
	// First faults the first N download attempts.
	First int
	// Prob faults each attempt independently with this probability.
	Prob float64
	// Mode is one of ModeError, ModeTruncate, ModeCorrupt (default
	// ModeError).
	Mode string
	// Latency is added to every download, faulted or not (the link model).
	Latency time.Duration
}

// Enabled reports whether the spec can ever inject or delay anything.
func (s Spec) Enabled() bool {
	return s.Nth > 0 || s.First > 0 || s.Prob > 0 || s.Latency > 0
}

func (s Spec) String() string {
	if !s.Enabled() {
		return "off"
	}
	var parts []string
	if s.Nth > 0 {
		parts = append(parts, fmt.Sprintf("nth=%d", s.Nth))
	}
	if s.First > 0 {
		parts = append(parts, fmt.Sprintf("first=%d", s.First))
	}
	if s.Prob > 0 {
		parts = append(parts, fmt.Sprintf("prob=%g", s.Prob))
	}
	mode := s.Mode
	if mode == "" {
		mode = ModeError
	}
	parts = append(parts, "mode="+mode, fmt.Sprintf("seed=%d", s.Seed))
	if s.Latency > 0 {
		parts = append(parts, fmt.Sprintf("latency=%v", s.Latency))
	}
	return strings.Join(parts, ",")
}

// Parse reads a spec string: comma-separated key=value pairs with keys
// nth, first, prob, mode, seed, latency — e.g.
// "nth=3,mode=truncate,seed=7,latency=1ms". An empty string is the zero
// (disabled) spec.
func Parse(s string) (Spec, error) {
	var spec Spec
	s = strings.TrimSpace(s)
	if s == "" || s == "off" {
		return spec, nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return spec, fmt.Errorf("faults: %q is not key=value", field)
		}
		var err error
		switch key {
		case "nth":
			spec.Nth, err = strconv.Atoi(val)
		case "first":
			spec.First, err = strconv.Atoi(val)
		case "prob":
			spec.Prob, err = strconv.ParseFloat(val, 64)
			if err == nil && (spec.Prob < 0 || spec.Prob > 1) {
				err = fmt.Errorf("probability %g outside [0,1]", spec.Prob)
			}
		case "seed":
			spec.Seed, err = strconv.ParseInt(val, 10, 64)
		case "mode":
			switch val {
			case ModeError, ModeTruncate, ModeCorrupt:
				spec.Mode = val
			default:
				err = fmt.Errorf("unknown mode %q (want %s|%s|%s)", val, ModeError, ModeTruncate, ModeCorrupt)
			}
		case "latency":
			spec.Latency, err = time.ParseDuration(val)
		default:
			return spec, fmt.Errorf("faults: unknown key %q in %q", key, s)
		}
		if err != nil {
			return spec, fmt.Errorf("faults: bad %s in %q: %v", key, s, err)
		}
	}
	if spec.Nth < 0 || spec.First < 0 || spec.Latency < 0 {
		return spec, fmt.Errorf("faults: negative values in %q", s)
	}
	return spec, nil
}

// FromEnv parses $JPG_FAULTS (disabled spec when unset).
func FromEnv() (Spec, error) { return Parse(os.Getenv(Env)) }

// Injection metrics (always on; see internal/obs).
var (
	mAttempts  = obs.GetCounter("faults.download_attempts")
	mInjected  = obs.GetCounter("faults.injected")
	mLatencyNs = obs.GetHistogram("faults.injected_latency_ns")
)

// Injector wraps a HWIF and perturbs its downloads per the spec. Readback
// paths pass through untouched.
type Injector struct {
	inner xhwif.HWIF
	spec  Spec

	mu       sync.Mutex
	rng      *rand.Rand
	attempts int
	injected int
}

var _ xhwif.HWIF = (*Injector)(nil)
var _ xhwif.ContextDownloader = (*Injector)(nil)

// Wrap returns an injector over inner.
func Wrap(inner xhwif.HWIF, spec Spec) *Injector {
	if spec.Mode == "" {
		spec.Mode = ModeError
	}
	return &Injector{inner: inner, spec: spec, rng: rand.New(rand.NewSource(spec.Seed))}
}

// Spec returns the injector's configuration.
func (in *Injector) Spec() Spec { return in.spec }

// Counts returns how many download attempts the injector saw and how many
// it faulted.
func (in *Injector) Counts() (attempts, injected int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.attempts, in.injected
}

// PartName implements HWIF.
func (in *Injector) PartName() string { return in.inner.PartName() }

// Readback implements HWIF.
func (in *Injector) Readback() *frames.Memory { return in.inner.Readback() }

// ReadbackFrames forwards frame-granular readback when the inner HWIF
// supports it.
func (in *Injector) ReadbackFrames(fars []device.FAR) ([][]uint32, error) {
	if fr, ok := in.inner.(xhwif.FrameReader); ok {
		return fr.ReadbackFrames(fars)
	}
	return nil, fmt.Errorf("faults: inner %T has no frame readback", in.inner)
}

// ExecuteReadback forwards raw readback requests when the inner HWIF
// supports them.
func (in *Injector) ExecuteReadback(request []byte) ([]uint32, error) {
	if er, ok := in.inner.(interface {
		ExecuteReadback([]byte) ([]uint32, error)
	}); ok {
		return er.ExecuteReadback(request)
	}
	return nil, fmt.Errorf("faults: inner %T has no raw readback", in.inner)
}

// Download implements HWIF: count the attempt, decide deterministically
// whether to fault it, and either fail, perturb the bytes on their way to
// the device, or pass the stream through. The inner download's
// transactional behaviour decides what a perturbed stream does to the
// device (Board rolls back).
func (in *Injector) Download(bs []byte) (xhwif.DownloadStats, error) {
	return in.DownloadCtx(context.Background(), bs)
}

// DownloadCtx implements xhwif.ContextDownloader: Download with the context
// forwarded to the inner HWIF (when it supports contexts) and one structured
// log event per injected fault, so a request's logs show exactly which
// attempt was perturbed and how.
func (in *Injector) DownloadCtx(ctx context.Context, bs []byte) (xhwif.DownloadStats, error) {
	in.mu.Lock()
	in.attempts++
	n := in.attempts
	inject := (in.spec.Nth > 0 && n%in.spec.Nth == 0) ||
		(in.spec.First > 0 && n <= in.spec.First) ||
		(in.spec.Prob > 0 && in.rng.Float64() < in.spec.Prob)
	var corruptAt int
	if inject {
		in.injected++
		if len(bs) > 0 {
			corruptAt = in.rng.Intn(len(bs))
		}
	}
	in.mu.Unlock()

	download := func(b []byte) (xhwif.DownloadStats, error) {
		if cd, ok := in.inner.(xhwif.ContextDownloader); ok {
			return cd.DownloadCtx(ctx, b)
		}
		return in.inner.Download(b)
	}

	mAttempts.Inc()
	if in.spec.Latency > 0 {
		mLatencyNs.Observe(in.spec.Latency.Nanoseconds())
		time.Sleep(in.spec.Latency)
	}
	if !inject {
		return download(bs)
	}
	mInjected.Inc()
	jpglog.Warn(ctx, "fault.injected", "mode", in.spec.Mode, "attempt", n, "bytes", len(bs))
	switch in.spec.Mode {
	case ModeTruncate:
		// Word-aligned cut around the midpoint lands inside the FDRI frame
		// run of any realistic stream, which the port rejects.
		cut := (len(bs) / 2) &^ 3
		ds, err := download(bs[:cut])
		if err == nil {
			err = fmt.Errorf("faults: truncated stream unexpectedly accepted")
		}
		return ds, fmt.Errorf("%w (attempt %d, truncated to %d of %d bytes): %v", ErrInjected, n, cut, len(bs), err)
	case ModeCorrupt:
		dirty := make([]byte, len(bs))
		copy(dirty, bs)
		if len(dirty) > 0 {
			dirty[corruptAt] ^= 0x40
		}
		ds, err := download(dirty)
		if err == nil {
			// The flip slipped past the port's checks (e.g. it landed in a
			// pad word); surface the injection so a reliability layer
			// re-downloads the clean stream.
			err = fmt.Errorf("faults: corrupted stream accepted by device")
		}
		return ds, fmt.Errorf("%w (attempt %d, byte %d flipped): %v", ErrInjected, n, corruptAt, err)
	default: // ModeError
		return xhwif.DownloadStats{Bytes: len(bs)}, fmt.Errorf("%w (attempt %d)", ErrInjected, n)
	}
}
