package faults

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/xhwif"
)

func testConfig(t *testing.T, seed int64) (*frames.Memory, []byte) {
	t.Helper()
	p := device.MustByName("XCV50")
	m := frames.New(p)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 400; i++ {
		m.SetBit(p.CLBBit(rng.Intn(p.Rows), rng.Intn(p.Cols), rng.Intn(device.CLBLocalBits)), true)
	}
	return m, bitstream.WriteFull(m)
}

func TestParseSpec(t *testing.T) {
	spec, err := Parse("nth=3,mode=truncate,seed=7,latency=2ms,first=1,prob=0.25")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Seed: 7, Nth: 3, First: 1, Prob: 0.25, Mode: ModeTruncate, Latency: 2 * time.Millisecond}
	if spec != want {
		t.Fatalf("parsed %+v, want %+v", spec, want)
	}
	if s, err := Parse(""); err != nil || s.Enabled() {
		t.Fatalf("empty spec: %+v, %v", s, err)
	}
	for _, bad := range []string{"nth", "mode=explode", "prob=2", "latency=-1ms,nth=1", "zz=1"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestErrorModeIsDeterministic(t *testing.T) {
	_, bs := testConfig(t, 1)
	p := device.MustByName("XCV50")
	var gotA, gotB []bool
	for _, got := range []*[]bool{&gotA, &gotB} {
		in := Wrap(xhwif.NewBoard(p), Spec{Nth: 2, Seed: 5})
		for i := 0; i < 6; i++ {
			_, err := in.Download(bs)
			*got = append(*got, err != nil)
			if err != nil && !errors.Is(err, ErrInjected) {
				t.Fatalf("download %d: %v is not ErrInjected", i, err)
			}
		}
	}
	want := []bool{false, true, false, true, false, true}
	for i := range want {
		if gotA[i] != want[i] || gotB[i] != want[i] {
			t.Fatalf("injection pattern %v / %v, want %v", gotA, gotB, want)
		}
	}
	in := Wrap(xhwif.NewBoard(p), Spec{Nth: 2, Seed: 5})
	for i := 0; i < 6; i++ {
		in.Download(bs)
	}
	if attempts, injected := in.Counts(); attempts != 6 || injected != 3 {
		t.Fatalf("counts %d/%d, want 3/6", injected, attempts)
	}
}

func TestTruncateModeRollsBack(t *testing.T) {
	mem, bs := testConfig(t, 2)
	p := device.MustByName("XCV50")
	board := xhwif.NewBoard(p)
	if _, err := board.Download(bs); err != nil {
		t.Fatal(err)
	}
	mem2 := mem.Clone()
	mem2.SetBit(p.CLBBit(0, 0, 0), true)
	in := Wrap(board, Spec{First: 1, Mode: ModeTruncate, Seed: 3})
	if _, err := in.Download(bitstream.WriteFull(mem2)); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !board.Readback().Equal(mem) {
		t.Fatal("truncated download corrupted the device")
	}
}

func TestCorruptModeRejectedByCRC(t *testing.T) {
	mem, bs := testConfig(t, 3)
	p := device.MustByName("XCV50")
	board := xhwif.NewBoard(p)
	if _, err := board.Download(bs); err != nil {
		t.Fatal(err)
	}
	in := Wrap(board, Spec{First: 1, Mode: ModeCorrupt, Seed: 11})
	if _, err := in.Download(bs); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !board.Readback().Equal(mem) {
		t.Fatal("corrupted download changed the device behind a reported error")
	}
}

// TestRetryConvergesUnderFaults is the acceptance-criteria scenario: with a
// deterministic failure on download attempt k, the reliability layer
// retries with backoff and the final configuration memory is byte-identical
// to a fault-free run; with retries exhausted, the device keeps its exact
// pre-download state.
func TestRetryConvergesUnderFaults(t *testing.T) {
	mem, bs := testConfig(t, 4)
	p := device.MustByName("XCV50")

	// Fault-free reference run.
	ref := xhwif.NewBoard(p)
	if _, err := ref.Download(bs); err != nil {
		t.Fatal(err)
	}

	for _, mode := range []string{ModeError, ModeTruncate, ModeCorrupt} {
		board := xhwif.NewBoard(p)
		r := xhwif.NewReliable(Wrap(board, Spec{First: 2, Mode: mode, Seed: 9}), xhwif.RetryPolicy{
			MaxAttempts: 4,
			BaseBackoff: time.Nanosecond,
			MaxBackoff:  time.Nanosecond,
			Verify:      true,
		})
		ds, err := r.Download(bs)
		if err != nil {
			t.Fatalf("mode=%s: %v", mode, err)
		}
		if ds.Attempts != 3 {
			t.Fatalf("mode=%s: succeeded on attempt %d, want 3", mode, ds.Attempts)
		}
		if !board.Readback().Equal(ref.Readback()) {
			t.Fatalf("mode=%s: faulted-then-retried run diverged from the fault-free run", mode)
		}
		if !board.Readback().Equal(mem) {
			t.Fatalf("mode=%s: final state differs from the written configuration", mode)
		}
	}

	// Exhausted retries: every attempt faulted, device untouched.
	board := xhwif.NewBoard(p)
	if _, err := board.Download(bs); err != nil {
		t.Fatal(err)
	}
	pre := board.Readback()
	mem2 := mem.Clone()
	mem2.SetBit(p.CLBBit(3, 3, 3), true)
	r := xhwif.NewReliable(Wrap(board, Spec{Nth: 1, Mode: ModeTruncate, Seed: 9}), xhwif.RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: time.Nanosecond,
		MaxBackoff:  time.Nanosecond,
		Verify:      true,
	})
	if _, err := r.Download(bitstream.WriteFull(mem2)); err == nil {
		t.Fatal("exhausted retries reported success")
	}
	if !board.Readback().Equal(pre) {
		t.Fatal("device state changed after a fully-faulted download (rollback broken)")
	}
}

func TestInjectorForwardsReadback(t *testing.T) {
	mem, bs := testConfig(t, 5)
	p := device.MustByName("XCV50")
	board := xhwif.NewBoard(p)
	if _, err := board.Download(bs); err != nil {
		t.Fatal(err)
	}
	in := Wrap(board, Spec{})
	if !in.Readback().Equal(mem) {
		t.Fatal("Readback not forwarded")
	}
	fars := mem.NonZeroFrames()[:1]
	got, err := in.ReadbackFrames(fars)
	if err != nil || len(got) != 1 {
		t.Fatalf("ReadbackFrames not forwarded: %v", err)
	}
}
