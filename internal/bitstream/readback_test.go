package bitstream

import (
	"fmt"
	"testing"

	"repro/internal/device"
	"repro/internal/frames"
)

func TestReadbackRoundTrip(t *testing.T) {
	mem := randomMemory(t, "XCV50", 11)
	p := mem.Part
	rg := frames.Region{R1: 0, C1: 3, R2: p.Rows - 1, C2: 7}
	runs := RunsForFARs(p, rg.FARs(p))
	got, err := ReadbackFrames(mem, runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(runs) {
		t.Fatalf("readback returned %d runs, want %d", len(got), len(runs))
	}
	for ri, run := range runs {
		far := run.Start
		for k := 0; k < run.N; k++ {
			want := mem.Frame(far)
			for w := range want {
				if got[ri][k][w] != want[w] {
					t.Fatalf("run %d frame %d word %d: %#x != %#x", ri, k, w, got[ri][k][w], want[w])
				}
			}
			if k < run.N-1 {
				far, _ = p.NextFAR(far)
			}
		}
	}
}

func TestReadbackMultipleRuns(t *testing.T) {
	mem := randomMemory(t, "XCV50", 12)
	// Two disjoint single-frame runs.
	f1 := device.MakeFAR(device.BlockCLB, 2, 5)
	f2 := device.MakeFAR(device.BlockCLB, 9, 40)
	runs := []FrameRun{{Start: f1, N: 1}, {Start: f2, N: 1}}
	got, err := ReadbackFrames(mem, runs)
	if err != nil {
		t.Fatal(err)
	}
	for i, far := range []device.FAR{f1, f2} {
		want := mem.Frame(far)
		for w := range want {
			if got[i][0][w] != want[w] {
				t.Fatalf("run %d word %d mismatch", i, w)
			}
		}
	}
}

func TestReadbackRequestValidation(t *testing.T) {
	p := device.MustByName("XCV50")
	if _, err := WriteReadbackRequest(p, nil); err == nil {
		t.Fatal("empty request accepted")
	}
	if _, err := WriteReadbackRequest(p, []FrameRun{{Start: p.FirstFAR(), N: 0}}); err == nil {
		t.Fatal("zero-length run accepted")
	}
	if _, err := WriteReadbackRequest(p, []FrameRun{{Start: device.MakeFAR(7, 0, 0), N: 1}}); err == nil {
		t.Fatal("invalid FAR accepted")
	}
}

func TestExecuteReadbackRejectsOverrun(t *testing.T) {
	mem := frames.New(device.MustByName("XCV50"))
	p := mem.Part
	last, err := p.FARAt(p.TotalFrames() - 1)
	if err != nil {
		t.Fatal(err)
	}
	req, err := WriteReadbackRequest(p, []FrameRun{{Start: last, N: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteReadback(mem, req); err == nil {
		t.Fatal("overrunning readback accepted")
	}
}

func TestExecuteReadbackRejectsGarbage(t *testing.T) {
	mem := frames.New(device.MustByName("XCV50"))
	if _, err := ExecuteReadback(mem, []byte{1, 2, 3}); err == nil {
		t.Fatal("misaligned request accepted")
	}
	// A write bitstream is a valid packet stream with no reads: should
	// execute and return no data.
	out, err := ExecuteReadback(mem, WriteFull(mem))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatal("write stream produced readback data")
	}
}

func TestParseReadbackLengthChecks(t *testing.T) {
	p := device.MustByName("XCV50")
	runs := []FrameRun{{Start: p.FirstFAR(), N: 2}}
	if _, err := ParseReadback(p, runs, make([]uint32, p.FrameWords())); err == nil {
		t.Fatal("short data accepted")
	}
	if _, err := ParseReadback(p, runs, make([]uint32, 5*p.FrameWords())); err == nil {
		t.Fatal("long data accepted")
	}
	if _, err := ParseReadback(p, runs, make([]uint32, 3*p.FrameWords())); err != nil {
		t.Fatal(err)
	}
}

// TestReadbackEveryColumn reads back every column of the smallest device,
// pinning FAR handling at all the column boundaries: the clock column, the
// first and last CLB columns, both IOB columns, the BRAM interconnect
// columns and the BRAM content columns — plus every adjacent-column
// crossing, including the block-type 0 -> 1 gap.
func TestReadbackEveryColumn(t *testing.T) {
	mem := randomMemory(t, "XCV50", 13)
	p := mem.Part
	// Make every frame distinct so an off-by-one cannot alias: stamp each
	// frame's first word with its device-order index.
	for i := 0; i < p.TotalFrames(); i++ {
		far, err := p.FARAt(i)
		if err != nil {
			t.Fatal(err)
		}
		fr := append([]uint32(nil), mem.Frame(far)...)
		fr[0] = uint32(0xC0DE0000 | i)
		if err := mem.SetFrame(far, fr); err != nil {
			t.Fatal(err)
		}
	}

	checkRun := func(t *testing.T, run FrameRun) {
		t.Helper()
		got, err := ReadbackFrames(mem, []FrameRun{run})
		if err != nil {
			t.Fatalf("run %v N=%d: %v", run.Start, run.N, err)
		}
		far := run.Start
		for k := 0; k < run.N; k++ {
			want := mem.Frame(far)
			for w := range want {
				if got[0][k][w] != want[w] {
					t.Fatalf("run %v N=%d frame %d word %d: %#08x != %#08x",
						run.Start, run.N, k, w, got[0][k][w], want[w])
				}
			}
			if k < run.N-1 {
				far, _ = p.NextFAR(far)
			}
		}
	}

	for bt := 0; bt < device.NumBlockTypes; bt++ {
		for maj := 0; maj < p.NumMajors(bt); maj++ {
			n := p.FramesInMajor(bt, maj)
			start := device.MakeFAR(bt, maj, 0)
			t.Run(fmt.Sprintf("bt%d-major%d", bt, maj), func(t *testing.T) {
				// The whole column, its first frame, its last frame, and —
				// when a next column exists — the crossing into it.
				checkRun(t, FrameRun{Start: start, N: n})
				checkRun(t, FrameRun{Start: start, N: 1})
				last := device.MakeFAR(bt, maj, n-1)
				checkRun(t, FrameRun{Start: last, N: 1})
				if _, ok := p.NextFAR(last); ok {
					checkRun(t, FrameRun{Start: last, N: 2})
				}
			})
		}
	}
	t.Run("full-device", func(t *testing.T) {
		checkRun(t, FrameRun{Start: p.FirstFAR(), N: p.TotalFrames()})
	})
}
