package bitstream

import (
	"testing"

	"repro/internal/device"
	"repro/internal/frames"
)

func TestReadbackRoundTrip(t *testing.T) {
	mem := randomMemory(t, "XCV50", 11)
	p := mem.Part
	rg := frames.Region{R1: 0, C1: 3, R2: p.Rows - 1, C2: 7}
	runs := RunsForFARs(p, rg.FARs(p))
	got, err := ReadbackFrames(mem, runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(runs) {
		t.Fatalf("readback returned %d runs, want %d", len(got), len(runs))
	}
	for ri, run := range runs {
		far := run.Start
		for k := 0; k < run.N; k++ {
			want := mem.Frame(far)
			for w := range want {
				if got[ri][k][w] != want[w] {
					t.Fatalf("run %d frame %d word %d: %#x != %#x", ri, k, w, got[ri][k][w], want[w])
				}
			}
			if k < run.N-1 {
				far, _ = p.NextFAR(far)
			}
		}
	}
}

func TestReadbackMultipleRuns(t *testing.T) {
	mem := randomMemory(t, "XCV50", 12)
	// Two disjoint single-frame runs.
	f1 := device.MakeFAR(device.BlockCLB, 2, 5)
	f2 := device.MakeFAR(device.BlockCLB, 9, 40)
	runs := []FrameRun{{Start: f1, N: 1}, {Start: f2, N: 1}}
	got, err := ReadbackFrames(mem, runs)
	if err != nil {
		t.Fatal(err)
	}
	for i, far := range []device.FAR{f1, f2} {
		want := mem.Frame(far)
		for w := range want {
			if got[i][0][w] != want[w] {
				t.Fatalf("run %d word %d mismatch", i, w)
			}
		}
	}
}

func TestReadbackRequestValidation(t *testing.T) {
	p := device.MustByName("XCV50")
	if _, err := WriteReadbackRequest(p, nil); err == nil {
		t.Fatal("empty request accepted")
	}
	if _, err := WriteReadbackRequest(p, []FrameRun{{Start: p.FirstFAR(), N: 0}}); err == nil {
		t.Fatal("zero-length run accepted")
	}
	if _, err := WriteReadbackRequest(p, []FrameRun{{Start: device.MakeFAR(7, 0, 0), N: 1}}); err == nil {
		t.Fatal("invalid FAR accepted")
	}
}

func TestExecuteReadbackRejectsOverrun(t *testing.T) {
	mem := frames.New(device.MustByName("XCV50"))
	p := mem.Part
	last, err := p.FARAt(p.TotalFrames() - 1)
	if err != nil {
		t.Fatal(err)
	}
	req, err := WriteReadbackRequest(p, []FrameRun{{Start: last, N: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteReadback(mem, req); err == nil {
		t.Fatal("overrunning readback accepted")
	}
}

func TestExecuteReadbackRejectsGarbage(t *testing.T) {
	mem := frames.New(device.MustByName("XCV50"))
	if _, err := ExecuteReadback(mem, []byte{1, 2, 3}); err == nil {
		t.Fatal("misaligned request accepted")
	}
	// A write bitstream is a valid packet stream with no reads: should
	// execute and return no data.
	out, err := ExecuteReadback(mem, WriteFull(mem))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatal("write stream produced readback data")
	}
}

func TestParseReadbackLengthChecks(t *testing.T) {
	p := device.MustByName("XCV50")
	runs := []FrameRun{{Start: p.FirstFAR(), N: 2}}
	if _, err := ParseReadback(p, runs, make([]uint32, p.FrameWords())); err == nil {
		t.Fatal("short data accepted")
	}
	if _, err := ParseReadback(p, runs, make([]uint32, 5*p.FrameWords())); err == nil {
		t.Fatal("long data accepted")
	}
	if _, err := ParseReadback(p, runs, make([]uint32, 3*p.FrameWords())); err != nil {
		t.Fatal(err)
	}
}
