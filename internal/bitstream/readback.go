package bitstream

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/frames"
)

// Configuration readback: the inverse data path of configuration, as real
// Virtex devices provide through the FDRO register. A readback request is a
// packet stream (sync, FAR write, CMD RCFG, FDRO read); executing it against
// a device's configuration memory produces the frame data, with one pipeline
// pad frame leading the payload (mirroring the write path's trailing pad).

// WriteReadbackRequest builds the packet stream requesting the given frame
// runs. Total read length per run is (N+1) frames: pad + payload.
func WriteReadbackRequest(p *device.Part, runs []FrameRun) ([]byte, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("bitstream: readback request with no frames")
	}
	var b builder
	b.header()
	b.cmd(CmdRCRC)
	for _, run := range runs {
		if run.N <= 0 {
			return nil, fmt.Errorf("bitstream: empty readback run at %v", run.Start)
		}
		if !p.ValidFAR(run.Start) {
			return nil, fmt.Errorf("bitstream: readback run starts at invalid %v", run.Start)
		}
		b.t1(RegFAR, uint32(run.Start))
		b.cmd(CmdRCFG)
		words := (run.N + 1) * p.FrameWords()
		if words <= t1CountMask {
			b.raw(type1Header(OpRead, RegFDRO, words))
		} else {
			b.raw(type1Header(OpRead, RegFDRO, 0))
			b.raw(type2Header(OpRead, words))
		}
	}
	b.cmd(CmdDESYNCH)
	b.nop(2)
	return wordsToBytes(b.words), nil
}

// ExecuteReadback runs a readback request against a configuration memory and
// returns the raw read words (pads included), as the device would shift out.
func ExecuteReadback(mem *frames.Memory, request []byte) ([]uint32, error) {
	words, err := BytesToWords(request)
	if err != nil {
		return nil, err
	}
	p := mem.Part
	fw := p.FrameWords()
	var out []uint32
	synced := false
	lastReg := -1
	var far device.FAR
	var cmd uint32
	i := 0
	for i < len(words) {
		w := words[i]
		if !synced {
			i++
			if w == SyncWord {
				synced = true
			}
			continue
		}
		h, err := DecodeHeader(w, lastReg)
		if err != nil {
			return nil, err
		}
		if h.Type == PacketType1 {
			lastReg = h.Reg
		}
		i++
		switch h.Op {
		case OpNOP:
		case OpWrite:
			if i+h.Count > len(words) {
				return nil, fmt.Errorf("bitstream: truncated readback request (%d payload words missing)",
					i+h.Count-len(words))
			}
			data := words[i : i+h.Count]
			i += h.Count
			switch h.Reg {
			case RegFAR:
				if len(data) == 1 {
					f := device.FAR(data[0])
					if !p.ValidFAR(f) {
						return nil, fmt.Errorf("bitstream: readback FAR %v invalid", f)
					}
					far = f
				}
			case RegCMD:
				if len(data) == 1 {
					cmd = data[0]
					if cmd == CmdDESYNCH {
						synced = false
						lastReg = -1
					}
				}
			}
		case OpRead:
			if h.Type == PacketType1 && h.Count == 0 {
				// Register select for a following type-2 read.
				continue
			}
			if h.Reg != RegFDRO {
				return nil, fmt.Errorf("bitstream: read of register %s unsupported", RegName(h.Reg))
			}
			if cmd != CmdRCFG {
				return nil, fmt.Errorf("bitstream: FDRO read without RCFG")
			}
			if h.Count%fw != 0 || h.Count < 2*fw {
				return nil, fmt.Errorf("bitstream: FDRO read of %d words (frame length %d)", h.Count, fw)
			}
			// Pipeline pad frame first, then payload frames with FAR
			// auto-increment.
			out = append(out, make([]uint32, fw)...)
			for k := 0; k < h.Count/fw-1; k++ {
				if !p.ValidFAR(far) {
					return nil, fmt.Errorf("bitstream: readback past end of device")
				}
				out = append(out, mem.Frame(far)...)
				if k < h.Count/fw-2 {
					next, ok := p.NextFAR(far)
					if !ok {
						return nil, fmt.Errorf("bitstream: readback past end of device")
					}
					far = next
				}
			}
		}
	}
	return out, nil
}

// ParseReadback splits raw readback words into per-run frame payloads,
// stripping each run's leading pad frame.
func ParseReadback(p *device.Part, runs []FrameRun, raw []uint32) ([][][]uint32, error) {
	fw := p.FrameWords()
	var out [][][]uint32
	off := 0
	for _, run := range runs {
		need := (run.N + 1) * fw
		if off+need > len(raw) {
			return nil, fmt.Errorf("bitstream: readback data short (%d words, need %d)", len(raw), off+need)
		}
		off += fw // discard pad frame
		framesOut := make([][]uint32, run.N)
		for k := 0; k < run.N; k++ {
			framesOut[k] = raw[off : off+fw]
			off += fw
		}
		out = append(out, framesOut)
	}
	if off != len(raw) {
		return nil, fmt.Errorf("bitstream: %d trailing readback words", len(raw)-off)
	}
	return out, nil
}

// ReadbackFrames is the convenience path: request, execute and parse in one
// call, returning the frames for each requested run.
func ReadbackFrames(mem *frames.Memory, runs []FrameRun) ([][][]uint32, error) {
	req, err := WriteReadbackRequest(mem.Part, runs)
	if err != nil {
		return nil, err
	}
	raw, err := ExecuteReadback(mem, req)
	if err != nil {
		return nil, err
	}
	return ParseReadback(mem.Part, runs, raw)
}
