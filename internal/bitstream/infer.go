package bitstream

import (
	"fmt"

	"repro/internal/device"
)

// InferPart identifies the Virtex part a bitstream targets from its FLR
// (frame length register) write — frame lengths are distinct across the
// family, so the header pins down the device.
func InferPart(bs []byte) (*device.Part, error) {
	pis, err := Inspect(bs)
	if err != nil {
		return nil, err
	}
	for _, pi := range pis {
		if pi.Reg == RegFLR && pi.Op == OpWrite && pi.Count == 1 {
			words := int(pi.First) + 1
			for _, p := range device.All() {
				if p.FrameWords() == words {
					return p, nil
				}
			}
			return nil, fmt.Errorf("bitstream: FLR %d matches no known part", pi.First)
		}
	}
	return nil, fmt.Errorf("bitstream: no FLR write found; cannot identify part")
}
