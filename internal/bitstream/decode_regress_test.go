package bitstream

import (
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/frames"
)

// Regression tests for decode-side hardening: truncated streams, zero-count
// type-2 packets and type-2 packets with no register select must produce
// descriptive errors instead of over-reading or silently succeeding.

// w builds a word stream from the given words.
func streamOf(words ...uint32) []byte { return wordsToBytes(words) }

func TestDecodeHeaderRejectsMalformedType2(t *testing.T) {
	// Type-2 without a preceding type-1 register select.
	if _, err := DecodeHeader(type2Header(OpWrite, 8), -1); err == nil {
		t.Fatal("type-2 with no register select decoded without error")
	} else if !strings.Contains(err.Error(), "register select") {
		t.Fatalf("undescriptive error: %v", err)
	}
	// Type-2 with a zero word count.
	if _, err := DecodeHeader(type2Header(OpWrite, 0), RegFDRI); err == nil {
		t.Fatal("zero-count type-2 decoded without error")
	} else if !strings.Contains(err.Error(), "zero word count") {
		t.Fatalf("undescriptive error: %v", err)
	}
	// The legal form still decodes.
	h, err := DecodeHeader(type2Header(OpWrite, 8), RegFDRI)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != PacketType2 || h.Reg != RegFDRI || h.Count != 8 {
		t.Fatalf("decoded %+v", h)
	}
}

func TestInspectMutatedGoldenStreams(t *testing.T) {
	src := randomMemory(t, "XCV50", 41)
	golden := WriteFull(src)

	// Locate the FDRI packet (type 1, count 0 select followed by type 2 on
	// XCV50 full streams the count exceeds the type-1 field, so the stream
	// carries select + type-2).
	pis, err := Inspect(golden)
	if err != nil {
		t.Fatalf("golden stream does not inspect: %v", err)
	}
	fdriOff := -1
	for _, pi := range pis {
		if pi.Reg == RegFDRI && pi.Type == PacketType2 {
			fdriOff = pi.Offset
		}
	}
	if fdriOff < 0 {
		t.Fatal("golden stream has no type-2 FDRI packet")
	}

	mutate := func(wordOff int, val uint32) []byte {
		bs := append([]byte(nil), golden...)
		copy(bs[4*wordOff:], streamOf(val))
		return bs
	}

	cases := []struct {
		name string
		bs   []byte
		want string // substring of the expected error
	}{
		{"truncated-mid-payload", golden[:4*(fdriOff+10)], "truncated packet"},
		{"zero-count-type2", mutate(fdriOff, type2Header(OpWrite, 0)), "zero word count"},
		{"type2-loses-select", mutate(fdriOff-1, type1Header(OpNOP, 0, 0)), ""},
		{"reserved-packet-type", mutate(fdriOff, 7<<hdrTypeShift), "bad packet header"},
	}
	// A NOP in place of the select leaves lastReg at the preceding packet's
	// register, so the type-2 still decodes; starting a fresh stream with a
	// bare type-2 must not.
	bare := streamOf(DummyWord, SyncWord, type2Header(OpWrite, 4), 0, 0, 0, 0)
	cases = append(cases, struct {
		name string
		bs   []byte
		want string
	}{"type2-first-packet", bare, "register select"})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Inspect(tc.bs)
			if tc.want == "" {
				return // only checking no panic / tolerated decode
			}
			if err == nil {
				t.Fatalf("Inspect accepted a %s stream", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// The port VM must reject the same streams.
	for _, tc := range cases {
		if tc.want == "" {
			continue
		}
		t.Run("apply-"+tc.name, func(t *testing.T) {
			mem := frames.New(src.Part)
			if _, err := Apply(mem, tc.bs); err == nil {
				t.Fatalf("Apply accepted a %s stream", tc.name)
			}
		})
	}
}

func TestInspectTruncationNeverOverReads(t *testing.T) {
	src := randomMemory(t, "XCV50", 42)
	golden := WriteFull(src)
	// Every word-aligned truncation either inspects cleanly (cut in the
	// pre-sync header) or errors; none may panic or hang.
	for cut := 0; cut <= len(golden) && cut < 4096; cut += 4 {
		Inspect(golden[:cut])
	}
	// And a word-aligned cut mid-payload reports how much is missing.
	_, err := Inspect(golden[:4*(len(golden)/8)])
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("mid-payload truncation error = %v", err)
	}
}

func TestCompressedRejectsDegenerateRuns(t *testing.T) {
	mem := randomMemory(t, "XCV50", 43)
	p := mem.Part

	if _, err := WritePartialCompressed(mem, nil); err == nil {
		t.Fatal("compressed partial with no runs accepted")
	}
	// A zero-length run must be rejected, not silently dropped: before the
	// fix this produced a frame-less stream that decoded as a no-op.
	_, err := WritePartialCompressed(mem, []FrameRun{{Start: p.FirstFAR(), N: 0}})
	if err == nil {
		t.Fatal("compressed partial with a zero-length run accepted")
	}
	if !strings.Contains(err.Error(), "empty frame run") {
		t.Fatalf("undescriptive error: %v", err)
	}
	if _, err := WritePartialCompressed(mem, []FrameRun{{Start: p.FirstFAR(), N: -3}}); err == nil {
		t.Fatal("compressed partial with a negative run accepted")
	}
}

func TestCompressedRoundTripDegenerateContent(t *testing.T) {
	p := device.MustByName("XCV50")

	check := func(t *testing.T, src *frames.Memory, runs []FrameRun) {
		t.Helper()
		bs, err := WritePartialCompressed(src, runs)
		if err != nil {
			t.Fatal(err)
		}
		got := frames.New(p)
		if _, err := Apply(got, bs); err != nil {
			t.Fatal(err)
		}
		want := frames.New(p)
		for _, run := range runs {
			far := run.Start
			for k := 0; k < run.N; k++ {
				if err := want.SetFrame(far, src.Frame(far)); err != nil {
					t.Fatal(err)
				}
				if k < run.N-1 {
					far, _ = p.NextFAR(far)
				}
			}
		}
		if !got.Equal(want) {
			t.Fatal("compressed round trip lost state")
		}
	}

	t.Run("all-zero-frames", func(t *testing.T) {
		// Every frame identical (all zero): one FDRI emission + MFWR chain.
		check(t, frames.New(p), []FrameRun{{Start: p.FirstFAR(), N: 12}})
	})
	t.Run("single-frame", func(t *testing.T) {
		src := randomMemory(t, "XCV50", 44)
		check(t, src, []FrameRun{{Start: device.MakeFAR(0, 3, 7), N: 1}})
	})
	t.Run("two-identical-frames", func(t *testing.T) {
		// Below the MFWR threshold: must fall back to plain runs.
		src := frames.New(p)
		check(t, src, []FrameRun{{Start: device.MakeFAR(0, 2, 0), N: 2}})
	})
	t.Run("mixed", func(t *testing.T) {
		src := randomMemory(t, "XCV50", 45)
		check(t, src, []FrameRun{
			{Start: device.MakeFAR(0, 1, 0), N: device.FramesCLBCol},
			{Start: device.MakeFAR(1, 0, 0), N: 4},
		})
	})
}
