package bitstream

import (
	"testing"

	"repro/internal/device"
	"repro/internal/frames"
)

func TestCompressedPartialRoundTrip(t *testing.T) {
	src := randomMemory(t, "XCV50", 21)
	p := src.Part
	rg := frames.Region{R1: 0, C1: 2, R2: p.Rows - 1, C2: 9}
	runs := RunsForFARs(p, rg.FARs(p))

	compressed, err := WritePartialCompressed(src, runs)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := WritePartial(src, runs)
	if err != nil {
		t.Fatal(err)
	}

	// Apply both to independent copies of the same base and compare.
	base := randomMemory(t, "XCV50", 22)
	viaPlain, viaComp := base.Clone(), base.Clone()
	sp, err := Apply(viaPlain, plain)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Apply(viaComp, compressed)
	if err != nil {
		t.Fatal(err)
	}
	if !viaPlain.Equal(viaComp) {
		t.Fatal("compressed partial produced different state than plain partial")
	}
	if sp.FramesWritten != sc.FramesWritten {
		t.Fatalf("frames written: plain %d, compressed %d", sp.FramesWritten, sc.FramesWritten)
	}
}

func TestCompressedSmallerOnSparseContent(t *testing.T) {
	// A sparsely used region has many identical (mostly zero) frames: the
	// compressed form must be much smaller.
	p := device.MustByName("XCV50")
	mem := frames.New(p)
	// Configure only a handful of CLBs in an 8-column region.
	for i := 0; i < 6; i++ {
		mem.SetBit(p.CLBBit(i, 2+i%3, 10*i+3), true)
	}
	rg := frames.Region{R1: 0, C1: 2, R2: p.Rows - 1, C2: 9}
	runs := RunsForFARs(p, rg.FARs(p))
	plain, err := WritePartial(mem, runs)
	if err != nil {
		t.Fatal(err)
	}
	compressed, err := WritePartialCompressed(mem, runs)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(len(compressed)) / float64(len(plain)); ratio > 0.35 {
		t.Fatalf("compression ratio %.2f too weak for sparse content (%d vs %d bytes)",
			ratio, len(compressed), len(plain))
	}
	// And still correct.
	a, b := frames.New(p), frames.New(p)
	if _, err := Apply(a, plain); err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(b, compressed); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("compressed/plain disagree")
	}
}

func TestCompressedNoWorseThanModestOverheadOnDenseContent(t *testing.T) {
	// Fully random frames (no duplicates): compression must degrade
	// gracefully to roughly the plain encoding.
	src := randomMemory(t, "XCV50", 23)
	p := src.Part
	// Make every frame of the region distinct.
	rg := frames.Region{R1: 0, C1: 0, R2: p.Rows - 1, C2: 3}
	for i, far := range rg.FARs(p) {
		f := src.Frame(far)
		f[0] = uint32(0xABC00000 + i)
	}
	runs := RunsForFARs(p, rg.FARs(p))
	plain, err := WritePartial(src, runs)
	if err != nil {
		t.Fatal(err)
	}
	compressed, err := WritePartialCompressed(src, runs)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(compressed)) > 1.1*float64(len(plain)) {
		t.Fatalf("compression overhead too high on dense content: %d vs %d", len(compressed), len(plain))
	}
}

func TestMFWRRequiresPriorFrame(t *testing.T) {
	p := device.MustByName("XCV50")
	mem := frames.New(p)
	var b builder
	b.header()
	b.cmd(CmdRCRC)
	b.t1(RegFLR, uint32(p.FrameWords()-1))
	b.cmd(CmdWCFG)
	b.t1(RegMFWR, uint32(p.FirstFAR()))
	b.writeCRC()
	if _, err := Apply(mem, wordsToBytes(b.words)); err == nil {
		t.Fatal("MFWR before FDRI accepted")
	}
}

func TestMFWRValidation(t *testing.T) {
	src := randomMemory(t, "XCV50", 24)
	p := src.Part
	var b builder
	b.header()
	b.cmd(CmdRCRC)
	b.t1(RegFLR, uint32(p.FrameWords()-1))
	b.t1(RegFAR, uint32(p.FirstFAR()))
	b.cmd(CmdWCFG)
	if err := b.fdri(src, FrameRun{Start: p.FirstFAR(), N: 1}); err != nil {
		t.Fatal(err)
	}
	b.t1(RegMFWR, uint32(device.MakeFAR(7, 0, 0))) // invalid FAR
	b.writeCRC()
	mem := frames.New(p)
	if _, err := Apply(mem, wordsToBytes(b.words)); err == nil {
		t.Fatal("MFWR to invalid FAR accepted")
	}
}
