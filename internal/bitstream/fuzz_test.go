package bitstream

import (
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/frames"
)

// seedMemory is randomMemory without the *testing.T, usable from fuzz seed
// setup.
func seedMemory(partName string, seed int64) *frames.Memory {
	p := device.MustByName(partName)
	m := frames.New(p)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 2000; i++ {
		m.SetBit(p.CLBBit(rng.Intn(p.Rows), rng.Intn(p.Cols), rng.Intn(device.CLBLocalBits)), true)
	}
	return m
}

// fuzzSeeds adds one of every stream shape the writer can produce, plus a few
// deliberately broken ones.
func fuzzSeeds(f *testing.F) {
	m := seedMemory("XCV50", 99)
	p := m.Part
	full := WriteFull(m)
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add(full[:37]) // unaligned truncation
	runs := []FrameRun{{Start: device.MakeFAR(0, 2, 0), N: device.FramesCLBCol}}
	if bs, err := WritePartial(m, runs); err == nil {
		f.Add(bs)
	}
	if bs, err := WritePartialCompressed(frames.New(p), runs); err == nil {
		f.Add(bs)
	}
	if bs, err := WriteReadbackRequest(p, runs); err == nil {
		f.Add(bs)
	}
	f.Add([]byte{})
	f.Add(streamOf(DummyWord, SyncWord, 7<<hdrTypeShift))
	f.Add(streamOf(DummyWord, SyncWord, type2Header(OpWrite, 4), 1, 2, 3, 4))
}

// FuzzInspect requires Inspect to terminate without panicking on arbitrary
// bytes and, when it accepts a stream, to report packet offsets inside it.
func FuzzInspect(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		pis, err := Inspect(data)
		if err != nil {
			return
		}
		for _, pi := range pis {
			if pi.Offset < 0 || 4*pi.Offset >= len(data) {
				t.Fatalf("packet offset %d outside the %d-byte stream", pi.Offset, len(data))
			}
		}
	})
}

// FuzzApply requires the port VM to terminate without panicking and to keep
// its stats consistent with the device model on arbitrary bytes.
func FuzzApply(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		mem := frames.New(device.MustByName("XCV50"))
		stats, err := Apply(mem, data)
		if err != nil {
			return
		}
		if stats.FramesWritten < 0 {
			t.Fatalf("negative FramesWritten %d", stats.FramesWritten)
		}
	})
}
