package bitstream

// The configuration logic maintains a 16-bit running CRC over every register
// write (register address and data word), as the real Virtex does. A write
// to the CRC register compares the accumulated value against the written
// value; mismatch aborts configuration. The CmdRCRC command resets it.
//
// Polynomial: CRC-16/IBM (x^16 + x^15 + x^2 + 1, poly 0x8005), bit-serial,
// fed with the 4 low bits of the register address followed by the 32 data
// bits, LSB first.

const crcPoly = 0x8005

// crcUpdate folds one register write into the running CRC.
func crcUpdate(crc uint16, reg int, word uint32) uint16 {
	crc = crcFeed(crc, uint32(reg), 4)
	return crcFeed(crc, word, 32)
}

func crcFeed(crc uint16, v uint32, nbits int) uint16 {
	for i := 0; i < nbits; i++ {
		bit := uint16(v>>uint(i)) & 1
		top := (crc >> 15) & 1
		crc <<= 1
		if top^bit == 1 {
			crc ^= crcPoly
		}
	}
	return crc
}
