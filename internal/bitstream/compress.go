package bitstream

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/frames"
)

// Compressed partial bitstreams: a forward-port of the Virtex-II MFWR
// (multiple frame write) optimisation onto the Virtex protocol. Partial
// bitstreams for column regions carry many identical frames (unused minors
// are all-zero); the MFWR register writes the configuration logic's
// last-committed frame to an explicitly addressed FAR without resending the
// payload, so each repeated frame costs two words instead of a full frame.
//
// The writer groups the requested frames by content: each group's payload is
// sent once through FDRI, then replicated with one MFWR write per extra
// frame. Groups too small to profit are coalesced into ordinary FDRI runs.

// RegMFWR is the multiple-frame-write register (an extension register; the
// 2002-era Virtex protocol reserves the slot).
const RegMFWR = 10

// mfwrThreshold is the duplicate-group size at which MFWR replication beats
// plain runs (a broken run costs roughly a frame of overhead).
const mfwrThreshold = 3

// WritePartialCompressed serialises the frame runs as a compressed partial
// bitstream. Decoding requires a port that implements RegMFWR (this
// package's Port does); WritePartial remains the baseline-compatible form.
func WritePartialCompressed(mem *frames.Memory, runs []FrameRun) ([]byte, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("bitstream: compressed partial with no frames")
	}
	p := mem.Part

	// Expand runs to an ordered FAR list and group by frame content.
	var fars []device.FAR
	for _, run := range runs {
		if run.N <= 0 {
			// Match WritePartial: a zero/negative run would otherwise fall out
			// of the expansion and yield a frame-less "valid" stream.
			return nil, fmt.Errorf("bitstream: empty frame run at %v", run.Start)
		}
		far := run.Start
		for k := 0; k < run.N; k++ {
			if !p.ValidFAR(far) {
				return nil, fmt.Errorf("bitstream: run of %d frames from %v overruns device", run.N, run.Start)
			}
			fars = append(fars, far)
			if k < run.N-1 {
				next, ok := p.NextFAR(far)
				if !ok {
					return nil, fmt.Errorf("bitstream: run of %d frames from %v overruns device", run.N, run.Start)
				}
				far = next
			}
		}
	}
	groups := map[string][]device.FAR{}
	for _, far := range fars {
		key := frameKey(mem.Frame(far))
		groups[key] = append(groups[key], far)
	}

	// Upper bound: every frame plus one pad frame per FDRI emission, plus
	// per-frame packet overhead.
	b := newBuilder((len(fars)+len(groups)+len(runs))*p.FrameWords() + 4*len(fars) + 64)
	b.header()
	b.cmd(CmdRCRC)
	b.t1(RegFLR, uint32(p.FrameWords()-1))

	// Replicated groups first (deterministic order: by first FAR).
	replicated := map[device.FAR]bool{}
	var leaders []device.FAR
	byLeader := map[device.FAR][]device.FAR{}
	for _, g := range groups {
		if len(g) >= mfwrThreshold {
			leaders = append(leaders, g[0])
			byLeader[g[0]] = g
		}
	}
	sortFARs(p, leaders)
	for _, leader := range leaders {
		g := byLeader[leader]
		b.t1(RegFAR, uint32(leader))
		b.cmd(CmdWCFG)
		if err := b.fdri(mem, FrameRun{Start: leader, N: 1}); err != nil {
			return nil, err
		}
		replicated[leader] = true
		for _, far := range g[1:] {
			b.t1(RegMFWR, uint32(far))
			replicated[far] = true
		}
	}

	// Remaining frames as plain contiguous runs.
	var rest []device.FAR
	for _, far := range fars {
		if !replicated[far] {
			rest = append(rest, far)
		}
	}
	for _, run := range RunsForFARs(p, rest) {
		b.t1(RegFAR, uint32(run.Start))
		b.cmd(CmdWCFG)
		if err := b.fdri(mem, run); err != nil {
			return nil, err
		}
	}

	b.cmd(CmdLFRM)
	b.writeCRC()
	b.cmd(CmdDESYNCH)
	b.nop(4)
	return b.finish(), nil
}

func frameKey(words []uint32) string {
	buf := make([]byte, 4*len(words))
	for i, w := range words {
		buf[4*i] = byte(w >> 24)
		buf[4*i+1] = byte(w >> 16)
		buf[4*i+2] = byte(w >> 8)
		buf[4*i+3] = byte(w)
	}
	return string(buf)
}

func sortFARs(p *device.Part, fars []device.FAR) {
	for i := 1; i < len(fars); i++ {
		for j := i; j > 0 && p.FrameIndex(fars[j-1]) > p.FrameIndex(fars[j]); j-- {
			fars[j-1], fars[j] = fars[j], fars[j-1]
		}
	}
}
