// Package bitstream implements the Virtex packet-based configuration
// protocol: a codec that serialises configuration memory into full or
// partial bitstreams, and a configuration-port virtual machine that applies
// bitstreams to configuration memory the way the device's configuration
// logic does (sync word, type-1/type-2 packets, FAR auto-increment, frame
// pipelining with a trailing pad frame, and a running CRC).
//
// The packet structure follows the documented Virtex protocol (XAPP151);
// exact field widths are fixed by this package and used consistently by the
// writer and the port.
package bitstream

import "fmt"

// SyncWord marks the start of packet processing, as on the real device.
const SyncWord = 0xAA995566

// DummyWord pads the bitstream header before the sync word.
const DummyWord = 0xFFFFFFFF

// Packet header encoding:
//
//	type 1: [31:29]=001 [28:27]=op [26:13]=register [10:0]=word count
//	type 2: [31:29]=010 [28:27]=op [26:0]=word count (register from the
//	        preceding type-1 header, as on the real device)
const (
	hdrTypeShift = 29
	hdrOpShift   = 27
	hdrRegShift  = 13
	hdrOpMask    = 0x3
	hdrRegMask   = 0x3FFF
	t1CountMask  = 0x7FF
	t2CountMask  = 0x7FFFFFF
)

// Packet types. A type-1 packet addresses a register directly; a type-2
// packet extends the word count and inherits the register from the
// immediately preceding type-1 header.
const (
	PacketType1 = 1
	PacketType2 = 2
)

// Packet opcodes.
const (
	OpNOP   = 0
	OpRead  = 1
	OpWrite = 2
)

// Configuration registers.
const (
	RegCRC  = 0  // CRC check value
	RegFAR  = 1  // frame address
	RegFDRI = 2  // frame data input
	RegFDRO = 3  // frame data output (readback)
	RegCMD  = 4  // command
	RegCTL  = 5  // control
	RegMASK = 6  // control write mask
	RegSTAT = 7  // status (read only)
	RegLOUT = 8  // legacy data out
	RegCOR  = 9  // configuration options
	RegFLR  = 11 // frame length
)

var regNames = map[int]string{
	RegCRC: "CRC", RegFAR: "FAR", RegFDRI: "FDRI", RegFDRO: "FDRO",
	RegCMD: "CMD", RegCTL: "CTL", RegMASK: "MASK", RegSTAT: "STAT",
	RegLOUT: "LOUT", RegCOR: "COR", RegFLR: "FLR", RegMFWR: "MFWR",
}

// RegName returns the register mnemonic.
func RegName(reg int) string {
	if n, ok := regNames[reg]; ok {
		return n
	}
	return fmt.Sprintf("REG%d", reg)
}

// CMD register command codes.
const (
	CmdNULL    = 0
	CmdWCFG    = 1 // write configuration (enable FDRI frame writes)
	CmdLFRM    = 3 // last frame
	CmdRCFG    = 4 // read configuration
	CmdSTART   = 5 // begin start-up sequence
	CmdRCAP    = 6
	CmdRCRC    = 7 // reset CRC
	CmdAGHIGH  = 8
	CmdSWITCH  = 9
	CmdDESYNCH = 13 // leave packet processing
)

var cmdNames = map[uint32]string{
	CmdNULL: "NULL", CmdWCFG: "WCFG", CmdLFRM: "LFRM", CmdRCFG: "RCFG",
	CmdSTART: "START", CmdRCAP: "RCAP", CmdRCRC: "RCRC", CmdAGHIGH: "AGHIGH",
	CmdSWITCH: "SWITCH", CmdDESYNCH: "DESYNCH",
}

// CmdName returns the command mnemonic.
func CmdName(cmd uint32) string {
	if n, ok := cmdNames[cmd]; ok {
		return n
	}
	return fmt.Sprintf("CMD%d", cmd)
}

// type1Header builds a type-1 packet header word.
func type1Header(op, reg, count int) uint32 {
	return uint32(PacketType1)<<hdrTypeShift |
		uint32(op&hdrOpMask)<<hdrOpShift |
		uint32(reg&hdrRegMask)<<hdrRegShift |
		uint32(count&t1CountMask)
}

// type2Header builds a type-2 packet header word.
func type2Header(op, count int) uint32 {
	return uint32(PacketType2)<<hdrTypeShift |
		uint32(op&hdrOpMask)<<hdrOpShift |
		uint32(count&t2CountMask)
}

// Header describes a decoded packet header: the packet type, opcode, target
// register and payload word count. For a type-2 packet Reg is inherited from
// the preceding type-1 register select.
type Header struct {
	Type, Op, Reg, Count int
}

// DecodeHeader decodes one packet header word. prevReg is the register
// selected by the most recent type-1 header (-1 if none since sync): a
// type-2 header without one, or with a zero word count, is malformed — the
// device would latch data into an undefined register or stall — and decodes
// to a descriptive error rather than silently succeeding.
func DecodeHeader(w uint32, prevReg int) (Header, error) {
	typ := int(w >> hdrTypeShift)
	op := int(w>>hdrOpShift) & hdrOpMask
	switch typ {
	case PacketType1:
		return Header{PacketType1, op, int(w>>hdrRegShift) & hdrRegMask, int(w & t1CountMask)}, nil
	case PacketType2:
		if prevReg < 0 {
			return Header{}, fmt.Errorf("bitstream: type-2 packet %#08x without a preceding type-1 register select", w)
		}
		if w&t2CountMask == 0 {
			return Header{}, fmt.Errorf("bitstream: type-2 packet %#08x with zero word count", w)
		}
		return Header{PacketType2, op, prevReg, int(w & t2CountMask)}, nil
	default:
		return Header{}, fmt.Errorf("bitstream: bad packet header %#08x (type %d)", w, typ)
	}
}
