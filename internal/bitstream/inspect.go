package bitstream

import (
	"fmt"
	"strings"
)

// PacketInfo summarises one decoded packet for inspection tools.
type PacketInfo struct {
	Offset int // word offset of the header
	Type   int
	Op     int
	Reg    int
	Count  int
	// First holds the first data word (e.g. the CMD code or FAR value) for
	// short packets.
	First uint32
}

func (pi PacketInfo) String() string {
	op := [4]string{"NOP", "READ", "WRITE", "RSVD"}[pi.Op]
	s := fmt.Sprintf("@%-6d T%d %-5s %-4s count=%d", pi.Offset, pi.Type, op, RegName(pi.Reg), pi.Count)
	if pi.Op == OpWrite && pi.Count >= 1 {
		switch pi.Reg {
		case RegCMD:
			s += " " + CmdName(pi.First)
		case RegFAR, RegCRC, RegFLR:
			s += fmt.Sprintf(" %#08x", pi.First)
		}
	}
	return s
}

// Inspect decodes a bitstream without applying it and returns the packet
// list. It tolerates unknown registers (it only summarises).
func Inspect(bs []byte) ([]PacketInfo, error) {
	words, err := BytesToWords(bs)
	if err != nil {
		return nil, err
	}
	var out []PacketInfo
	synced := false
	lastReg := -1
	i := 0
	for i < len(words) {
		w := words[i]
		if !synced {
			if w == SyncWord {
				synced = true
			}
			i++
			continue
		}
		h, err := decodeHeader(w, lastReg)
		if err != nil {
			return out, fmt.Errorf("at word %d: %w", i, err)
		}
		pi := PacketInfo{Offset: i, Type: h.typ, Op: h.op, Reg: h.reg, Count: h.count}
		if h.typ == packetType1 {
			lastReg = h.reg
		}
		i++
		if h.op == OpWrite {
			if i+h.count > len(words) {
				return out, fmt.Errorf("at word %d: truncated packet", pi.Offset)
			}
			if h.count >= 1 {
				pi.First = words[i]
			}
			if h.reg == RegCMD && h.count == 1 && words[i] == CmdDESYNCH {
				synced = false
			}
			i += h.count
		}
		out = append(out, pi)
	}
	return out, nil
}

// Dump renders a human-readable packet listing.
func Dump(bs []byte) (string, error) {
	pis, err := Inspect(bs)
	var b strings.Builder
	fmt.Fprintf(&b, "bitstream: %d bytes, %d words\n", len(bs), len(bs)/4)
	for _, pi := range pis {
		fmt.Fprintln(&b, pi)
	}
	if err != nil {
		fmt.Fprintf(&b, "DECODE ERROR: %v\n", err)
	}
	return b.String(), err
}
