package bitstream

import (
	"fmt"
	"strings"
)

// PacketInfo summarises one decoded packet for inspection tools.
type PacketInfo struct {
	Offset int // word offset of the header
	Type   int
	Op     int
	Reg    int
	Count  int
	// First holds the first data word (e.g. the CMD code or FAR value) for
	// short packets.
	First uint32
}

func (pi PacketInfo) String() string {
	op := [4]string{"NOP", "READ", "WRITE", "RSVD"}[pi.Op]
	s := fmt.Sprintf("@%-6d T%d %-5s %-4s count=%d", pi.Offset, pi.Type, op, RegName(pi.Reg), pi.Count)
	if pi.Op == OpWrite && pi.Count >= 1 {
		switch pi.Reg {
		case RegCMD:
			s += " " + CmdName(pi.First)
		case RegFAR, RegCRC, RegFLR:
			s += fmt.Sprintf(" %#08x", pi.First)
		}
	}
	return s
}

// Inspect decodes a bitstream without applying it and returns the packet
// list. It tolerates unknown registers (it only summarises).
func Inspect(bs []byte) ([]PacketInfo, error) {
	words, err := BytesToWords(bs)
	if err != nil {
		return nil, err
	}
	var out []PacketInfo
	synced := false
	lastReg := -1
	i := 0
	for i < len(words) {
		w := words[i]
		if !synced {
			if w == SyncWord {
				synced = true
			}
			i++
			continue
		}
		h, err := DecodeHeader(w, lastReg)
		if err != nil {
			return out, fmt.Errorf("at word %d: %w", i, err)
		}
		pi := PacketInfo{Offset: i, Type: h.Type, Op: h.Op, Reg: h.Reg, Count: h.Count}
		if h.Type == PacketType1 {
			lastReg = h.Reg
		}
		i++
		if h.Op == OpWrite {
			if i+h.Count > len(words) {
				return out, fmt.Errorf("at word %d: truncated packet (%d payload words missing)",
					pi.Offset, i+h.Count-len(words))
			}
			if h.Count >= 1 {
				pi.First = words[i]
			}
			if h.Reg == RegCMD && h.Count == 1 && words[i] == CmdDESYNCH {
				synced = false
			}
			i += h.Count
		}
		out = append(out, pi)
	}
	return out, nil
}

// Dump renders a human-readable packet listing.
func Dump(bs []byte) (string, error) {
	pis, err := Inspect(bs)
	var b strings.Builder
	fmt.Fprintf(&b, "bitstream: %d bytes, %d words\n", len(bs), len(bs)/4)
	for _, pi := range pis {
		fmt.Fprintln(&b, pi)
	}
	if err != nil {
		fmt.Fprintf(&b, "DECODE ERROR: %v\n", err)
	}
	return b.String(), err
}
