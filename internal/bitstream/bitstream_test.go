package bitstream

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/frames"
)

func randomMemory(t *testing.T, partName string, seed int64) *frames.Memory {
	t.Helper()
	p := device.MustByName(partName)
	m := frames.New(p)
	rng := rand.New(rand.NewSource(seed))
	// Sprinkle bits across random CLBs.
	for i := 0; i < 2000; i++ {
		bc := p.CLBBit(rng.Intn(p.Rows), rng.Intn(p.Cols), rng.Intn(device.CLBLocalBits))
		m.SetBit(bc, true)
	}
	return m
}

func TestFullRoundTrip(t *testing.T) {
	src := randomMemory(t, "XCV50", 1)
	bs := WriteFull(src)
	dst := frames.New(src.Part)
	stats, err := Apply(dst, bs)
	if err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(src) {
		t.Fatal("full bitstream round trip lost state")
	}
	if stats.FramesWritten != src.Part.TotalFrames() {
		t.Fatalf("frames written = %d, want %d", stats.FramesWritten, src.Part.TotalFrames())
	}
	if !stats.Started {
		t.Fatal("full bitstream should issue START")
	}
	if stats.CRCChecks != 1 {
		t.Fatalf("CRC checks = %d, want 1", stats.CRCChecks)
	}
}

func TestFullBitstreamSizeMatchesDatasheetScale(t *testing.T) {
	// A full bitstream is dominated by the frame payload; overhead is a few
	// dozen words. Check total size is payload + pad frame + small overhead.
	for _, name := range []string{"XCV50", "XCV300"} {
		p := device.MustByName(name)
		m := frames.New(p)
		bs := WriteFull(m)
		payload := (p.TotalFrames() + 1) * p.FrameWords() * 4
		overhead := len(bs) - payload
		if overhead < 0 || overhead > 200 {
			t.Errorf("%s: bitstream %d bytes, payload %d, overhead %d", name, len(bs), payload, overhead)
		}
	}
}

func TestPartialRoundTrip(t *testing.T) {
	src := randomMemory(t, "XCV50", 2)
	p := src.Part

	// Start from a different base state; apply a partial for columns 4..6.
	base := randomMemory(t, "XCV50", 3)
	rg := frames.Region{R1: 0, C1: 4, R2: p.Rows - 1, C2: 6}
	fars := rg.FARs(p)
	partial, err := WritePartialForFARs(src, fars)
	if err != nil {
		t.Fatal(err)
	}
	want := base.Clone()
	if err := want.CopyFrames(src, fars); err != nil {
		t.Fatal(err)
	}
	stats, err := Apply(base, partial)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FramesWritten != len(fars) {
		t.Fatalf("partial wrote %d frames, want %d", stats.FramesWritten, len(fars))
	}
	if stats.Started {
		t.Fatal("partial bitstream must not issue START")
	}
	if !base.Equal(want) {
		t.Fatal("partial application changed frames outside the region or missed frames inside")
	}
}

func TestPartialSmallerThanFull(t *testing.T) {
	src := randomMemory(t, "XCV300", 4)
	p := src.Part
	full := WriteFull(src)
	rg := frames.Region{R1: 0, C1: 0, R2: p.Rows - 1, C2: p.Cols/3 - 1}
	partial, err := WritePartialForFARs(src, rg.FARs(p))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(partial)) / float64(len(full))
	if ratio > 0.40 || ratio < 0.25 {
		t.Fatalf("1/3-region partial is %.2f of full (want ~1/3)", ratio)
	}
}

func TestRunsForFARs(t *testing.T) {
	p := device.MustByName("XCV50")
	f := func(idx []uint16) bool {
		if len(idx) == 0 {
			return true
		}
		fars := make([]device.FAR, len(idx))
		covered := map[int]bool{}
		for i, v := range idx {
			fi := int(v) % p.TotalFrames()
			far, err := p.FARAt(fi)
			if err != nil {
				return false
			}
			fars[i] = far
			covered[fi] = true
		}
		runs := RunsForFARs(p, fars)
		// Runs must cover exactly the input set, contiguously, sorted.
		total := 0
		prevEnd := -1
		for _, r := range runs {
			start := p.FrameIndex(r.Start)
			if start <= prevEnd {
				return false // overlapping or unsorted
			}
			if start == prevEnd+1 && prevEnd >= 0 {
				return false // should have been merged
			}
			for k := 0; k < r.N; k++ {
				if !covered[start+k] {
					return false
				}
			}
			total += r.N
			prevEnd = start + r.N - 1
		}
		return total == len(covered)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCRCDetectsCorruption(t *testing.T) {
	src := randomMemory(t, "XCV50", 5)
	bs := WriteFull(src)
	// Flip a bit in the middle of the frame payload.
	bs[len(bs)/2] ^= 0x10
	dst := frames.New(src.Part)
	if _, err := Apply(dst, bs); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupted bitstream applied without CRC error: %v", err)
	}
}

func TestApplyRejectsWrongPart(t *testing.T) {
	src := frames.New(device.MustByName("XCV50"))
	bs := WriteFull(src)
	dst := frames.New(device.MustByName("XCV100"))
	if _, err := Apply(dst, bs); err == nil {
		t.Fatal("bitstream for XCV50 applied to XCV100")
	}
}

func TestApplyRejectsGarbage(t *testing.T) {
	dst := frames.New(device.MustByName("XCV50"))
	if _, err := Apply(dst, []byte{1, 2, 3}); err == nil {
		t.Fatal("non-word-aligned bitstream accepted")
	}
	if _, err := Apply(dst, []byte{0, 0, 0, 1, 0, 0, 0, 2}); err == nil {
		t.Fatal("stream without sync accepted")
	}
	// Truncated: valid prefix of a real stream.
	src := frames.New(device.MustByName("XCV50"))
	bs := WriteFull(src)
	if _, err := Apply(dst, bs[:len(bs)/2-2]); err == nil {
		t.Fatal("truncated bitstream accepted")
	}
}

func TestPartialRejectsEmpty(t *testing.T) {
	m := frames.New(device.MustByName("XCV50"))
	if _, err := WritePartial(m, nil); err == nil {
		t.Fatal("empty partial accepted")
	}
	if _, err := WritePartial(m, []FrameRun{{Start: m.Part.FirstFAR(), N: 0}}); err == nil {
		t.Fatal("zero-length run accepted")
	}
}

func TestPartialRunOverrun(t *testing.T) {
	m := frames.New(device.MustByName("XCV50"))
	last, err := m.Part.FARAt(m.Part.TotalFrames() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WritePartial(m, []FrameRun{{Start: last, N: 2}}); err == nil {
		t.Fatal("overrunning run accepted")
	}
}

func TestInspectAndDump(t *testing.T) {
	src := randomMemory(t, "XCV50", 6)
	bs := WriteFull(src)
	pis, err := Inspect(bs)
	if err != nil {
		t.Fatal(err)
	}
	var sawFDRI, sawStart bool
	for _, pi := range pis {
		if pi.Reg == RegFDRI && pi.Op == OpWrite && pi.Count > 0 {
			sawFDRI = true
		}
		if pi.Reg == RegCMD && pi.First == CmdSTART {
			sawStart = true
		}
	}
	if !sawFDRI || !sawStart {
		t.Fatalf("inspect missed packets (FDRI=%v START=%v)", sawFDRI, sawStart)
	}
	out, err := Dump(bs)
	if err != nil || !strings.Contains(out, "WCFG") {
		t.Fatalf("dump output unexpected: %v", err)
	}
}

func TestCRCUpdateDiffusion(t *testing.T) {
	// Distinct single-word writes should (near-)always produce distinct CRCs.
	f := func(a, b uint32) bool {
		if a == b {
			return true
		}
		return crcUpdate(0, RegFDRI, a) != crcUpdate(0, RegFDRI, b) ||
			crcUpdate(crcUpdate(0, RegFDRI, a), RegFDRI, b) !=
				crcUpdate(crcUpdate(0, RegFDRI, b), RegFDRI, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestApplyNeverPanicsOnMutations: randomly corrupted bitstreams must fail
// cleanly (or no-op), never panic — the configuration port's untrusted
// input path.
func TestApplyNeverPanicsOnMutations(t *testing.T) {
	src := randomMemory(t, "XCV50", 31)
	valid := WriteFull(src)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		bs := append([]byte(nil), valid...)
		for i := 0; i < 1+rng.Intn(6); i++ {
			switch rng.Intn(3) {
			case 0:
				bs[rng.Intn(len(bs))] ^= byte(1 + rng.Intn(255))
			case 1:
				bs = bs[:rng.Intn(len(bs))&^3] // word-aligned truncate
				if len(bs) == 0 {
					bs = []byte{0, 0, 0, 0}
				}
			case 2:
				bs = append(bs, byte(rng.Intn(256)), 0, 0, 0)
			}
		}
		dst := frames.New(src.Part)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: Apply panicked: %v", trial, r)
				}
			}()
			_, _ = Apply(dst, bs)
		}()
	}
}

// TestInspectNeverPanicsOnMutations mirrors the same property for the
// non-applying decoder.
func TestInspectNeverPanicsOnMutations(t *testing.T) {
	src := randomMemory(t, "XCV50", 32)
	valid := WriteFull(src)
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 200; trial++ {
		bs := append([]byte(nil), valid...)
		for i := 0; i < 4; i++ {
			bs[rng.Intn(len(bs))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: Inspect panicked: %v", trial, r)
				}
			}()
			_, _ = Inspect(bs)
		}()
	}
}
