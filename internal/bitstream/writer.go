package bitstream

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/obs"
)

// FrameRun is a contiguous range of frames in device order: N frames
// starting at Start.
type FrameRun struct {
	Start device.FAR
	N     int
}

// RunsForFARs coalesces a list of frame addresses (any order, duplicates
// allowed) into maximal contiguous runs in device order.
func RunsForFARs(p *device.Part, fars []device.FAR) []FrameRun {
	if len(fars) == 0 {
		return nil
	}
	seen := make(map[int]bool, len(fars))
	idx := make([]int, 0, len(fars))
	for _, f := range fars {
		i := p.FrameIndex(f)
		if !seen[i] {
			seen[i] = true
			idx = append(idx, i)
		}
	}
	sortInts(idx)
	var runs []FrameRun
	runStart, runLen := idx[0], 1
	flush := func() {
		far, err := p.FARAt(runStart)
		if err != nil {
			panic(err) // indices came from FrameIndex, cannot be invalid
		}
		runs = append(runs, FrameRun{Start: far, N: runLen})
	}
	for _, i := range idx[1:] {
		if i == runStart+runLen {
			runLen++
			continue
		}
		flush()
		runStart, runLen = i, 1
	}
	flush()
	return runs
}

func sortInts(a []int) {
	// Insertion sort: run lists are short; avoids pulling in sort for one call.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// builder accumulates packet words, maintaining the same running CRC the
// device will compute, so the trailing CRC write always matches.
type builder struct {
	words   []uint32
	crc     uint16
	lastReg int
	// pool holds the slot the word buffer came from, when the builder was
	// made by newBuilder; finish returns the buffer there. A zero-value
	// builder (pool nil) still works and simply allocates.
	pool *[]uint32
	// fars is per-builder scratch for fdri's run validation, reused across
	// runs so multi-run partial bitstreams do not allocate per run.
	fars []device.FAR
}

// Emission metrics (always on; see internal/obs): total bytes produced and
// the word-buffer pool's reuse rate — a reuse is a Get whose recycled
// buffer was already large enough, an alloc is a Get that had to grow it.
var (
	mEmissions  = obs.GetCounter("bitstream.emissions")
	mBytesOut   = obs.GetCounter("bitstream.bytes_emitted")
	mPoolReuses = obs.GetCounter("bitstream.pool_reuses")
	mPoolAllocs = obs.GetCounter("bitstream.pool_allocs")
)

// wordsPool recycles packet-word buffers across emissions and applications.
// Bitstream emission is on the per-variant hot path of the experiment farms
// (one partial bitstream per CAD run), so the multi-hundred-KiB word buffers
// are reused rather than reallocated per call.
var wordsPool = sync.Pool{New: func() any { return new([]uint32) }}

// newBuilder returns a builder whose word buffer comes from the pool, grown
// to at least capHint words so emission appends never reallocate.
func newBuilder(capHint int) builder {
	slot := wordsPool.Get().(*[]uint32)
	buf := *slot
	if cap(buf) < capHint {
		buf = make([]uint32, 0, capHint)
		mPoolAllocs.Inc()
	} else {
		mPoolReuses.Inc()
	}
	return builder{words: buf[:0], pool: slot}
}

// finish serialises the accumulated words to bytes and recycles the word
// buffer. The builder must not be used afterwards.
func (b *builder) finish() []byte {
	out := wordsToBytes(b.words)
	mEmissions.Inc()
	mBytesOut.Add(int64(len(out)))
	if b.pool != nil {
		*b.pool = b.words[:0]
		wordsPool.Put(b.pool)
		b.words, b.pool = nil, nil
	}
	return out
}

func (b *builder) raw(w uint32) { b.words = append(b.words, w) }

func (b *builder) fold(reg int, data ...uint32) {
	for _, w := range data {
		b.crc = crcUpdate(b.crc, reg, w)
	}
}

// t1 emits a type-1 write packet.
func (b *builder) t1(reg int, data ...uint32) {
	b.raw(type1Header(OpWrite, reg, len(data)))
	b.words = append(b.words, data...)
	b.fold(reg, data...)
	b.lastReg = reg
}

func (b *builder) cmd(c uint32) {
	b.t1(RegCMD, c)
	if c == CmdRCRC {
		b.crc = 0
	}
}

// writeCRC emits the CRC check packet (which resets the running CRC).
func (b *builder) writeCRC() {
	b.raw(type1Header(OpWrite, RegCRC, 1))
	b.raw(uint32(b.crc))
	b.crc = 0
}

func (b *builder) nop(n int) {
	for i := 0; i < n; i++ {
		b.raw(type1Header(OpNOP, 0, 0))
	}
}

func (b *builder) header() {
	b.raw(DummyWord)
	b.raw(DummyWord)
	b.raw(SyncWord)
}

// fdri emits the frame data for a run: the frames' payloads followed by one
// zero pad frame (the device's frame pipeline discards the final frame, so
// N+1 frames of data configure N frames). The frames stream straight from
// the configuration memory into the packet buffer — the run is validated
// up front (so errors never leave a half-emitted packet) and no temporary
// payload slice is built.
func (b *builder) fdri(mem *frames.Memory, run FrameRun) error {
	p := mem.Part
	fw := p.FrameWords()
	if cap(b.fars) < run.N {
		b.fars = make([]device.FAR, 0, run.N)
	}
	b.fars = b.fars[:0]
	far := run.Start
	for i := 0; i < run.N; i++ {
		if !p.ValidFAR(far) {
			return fmt.Errorf("bitstream: run of %d frames from %v overruns device", run.N, run.Start)
		}
		b.fars = append(b.fars, far)
		if i < run.N-1 {
			next, ok := p.NextFAR(far)
			if !ok {
				return fmt.Errorf("bitstream: run of %d frames from %v overruns device", run.N, run.Start)
			}
			far = next
		}
	}
	count := (run.N + 1) * fw
	if count <= t1CountMask {
		b.raw(type1Header(OpWrite, RegFDRI, count))
	} else {
		b.raw(type1Header(OpWrite, RegFDRI, 0))
		b.raw(type2Header(OpWrite, count))
	}
	b.lastReg = RegFDRI
	for _, f := range b.fars {
		frame := mem.Frame(f)
		b.words = append(b.words, frame...)
		for _, w := range frame {
			b.crc = crcUpdate(b.crc, RegFDRI, w)
		}
	}
	for i := 0; i < fw; i++ { // pad frame
		b.words = append(b.words, 0)
		b.crc = crcUpdate(b.crc, RegFDRI, 0)
	}
	return nil
}

// WriteFull serialises the complete configuration memory as a full
// bitstream, the product of a conventional bitgen run.
func WriteFull(mem *frames.Memory) []byte {
	p := mem.Part
	b := newBuilder((p.TotalFrames()+1)*p.FrameWords() + 64)
	b.header()
	b.cmd(CmdRCRC)
	b.t1(RegFLR, uint32(p.FrameWords()-1))
	b.t1(RegCOR, 0)
	b.t1(RegMASK, 0xFFFFFFFF)
	b.t1(RegCTL, 0)
	b.t1(RegFAR, uint32(p.FirstFAR()))
	b.cmd(CmdWCFG)
	if err := b.fdri(mem, FrameRun{Start: p.FirstFAR(), N: p.TotalFrames()}); err != nil {
		panic(err) // full-device run is always valid
	}
	b.cmd(CmdLFRM)
	b.writeCRC()
	b.cmd(CmdSTART)
	b.cmd(CmdDESYNCH)
	b.nop(4)
	return b.finish()
}

// WritePartial serialises only the given frame runs as a partial bitstream:
// the stream a JPG-style tool downloads to reconfigure part of an already
// running device. No start-up sequence is issued.
func WritePartial(mem *frames.Memory, runs []FrameRun) ([]byte, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("bitstream: partial bitstream with no frames")
	}
	p := mem.Part
	capHint := 64
	for _, run := range runs {
		capHint += (run.N+1)*p.FrameWords() + 8
	}
	b := newBuilder(capHint)
	b.header()
	b.cmd(CmdRCRC)
	b.t1(RegFLR, uint32(p.FrameWords()-1))
	for _, run := range runs {
		if run.N <= 0 {
			return nil, fmt.Errorf("bitstream: empty frame run at %v", run.Start)
		}
		b.t1(RegFAR, uint32(run.Start))
		b.cmd(CmdWCFG)
		if err := b.fdri(mem, run); err != nil {
			return nil, err
		}
	}
	b.cmd(CmdLFRM)
	b.writeCRC()
	b.cmd(CmdDESYNCH)
	b.nop(4)
	return b.finish(), nil
}

// WritePartialForFARs is WritePartial over an uncoalesced frame list.
func WritePartialForFARs(mem *frames.Memory, fars []device.FAR) ([]byte, error) {
	return WritePartial(mem, RunsForFARs(mem.Part, fars))
}

func wordsToBytes(words []uint32) []byte {
	out := make([]byte, 4*len(words))
	for i, w := range words {
		binary.BigEndian.PutUint32(out[4*i:], w)
	}
	return out
}

// BytesToWords converts a bitstream byte slice to big-endian words.
func BytesToWords(bs []byte) ([]uint32, error) {
	if len(bs)%4 != 0 {
		return nil, fmt.Errorf("bitstream: length %d not a multiple of 4", len(bs))
	}
	words := make([]uint32, len(bs)/4)
	for i := range words {
		words[i] = binary.BigEndian.Uint32(bs[4*i:])
	}
	return words, nil
}
