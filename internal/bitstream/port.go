package bitstream

import (
	"encoding/binary"
	"fmt"

	"repro/internal/device"
	"repro/internal/frames"
)

// Port is the configuration-port virtual machine: it consumes bitstream
// words exactly as the device's configuration logic does and applies frame
// writes to a configuration memory. It is the engine behind the simulated
// board (internal/xhwif) and behind offline bitstream application.
type Port struct {
	Mem   *frames.Memory
	Stats Stats

	synced   bool
	desynced bool // saw DESYNCH: trailing pad words are ignored until re-sync
	started  bool
	crc      uint16
	cmd      uint32
	far      device.FAR
	lastReg  int
	ctl      uint32
	mask     uint32
	cor      uint32
	flr      uint32
	// lastFrame holds the most recently committed FDRI frame, the payload
	// MFWR replicates.
	lastFrame []uint32
}

// Stats accumulates what a bitstream did when applied.
type Stats struct {
	Words         int // total words consumed
	Packets       int // packets processed after sync
	FramesWritten int // frames committed to configuration memory
	CRCChecks     int // successful CRC register comparisons
	Started       bool
}

// NewPort returns a port writing into mem.
func NewPort(mem *frames.Memory) *Port {
	return &Port{Mem: mem, lastReg: -1}
}

// Apply decodes and applies a complete bitstream to mem, returning the
// port statistics. mem is modified in place; on error it may be partially
// written (as on real hardware). The decoded-word buffer is recycled via
// the package word pool: Apply sits on the project-initialisation and
// simulated-download hot paths, where a fresh multi-hundred-KiB decode
// buffer per call would dominate allocation.
func Apply(mem *frames.Memory, bs []byte) (Stats, error) {
	if len(bs)%4 != 0 {
		return Stats{}, fmt.Errorf("bitstream: length %d not a multiple of 4", len(bs))
	}
	slot := wordsPool.Get().(*[]uint32)
	words := *slot
	if cap(words) < len(bs)/4 {
		words = make([]uint32, len(bs)/4)
	} else {
		words = words[:len(bs)/4]
	}
	for i := range words {
		words[i] = binary.BigEndian.Uint32(bs[4*i:])
	}
	p := NewPort(mem)
	err := p.Feed(words) // Feed does not retain words: frames are copied out
	*slot = words[:0]
	wordsPool.Put(slot)
	if err != nil {
		return p.Stats, err
	}
	return p.Stats, nil
}

// Feed consumes bitstream words.
func (pt *Port) Feed(words []uint32) error {
	i := 0
	for i < len(words) {
		w := words[i]
		pt.Stats.Words++
		if !pt.synced {
			i++
			if w == SyncWord {
				pt.synced = true
				pt.desynced = false
			} else if w != DummyWord && !pt.desynced {
				return fmt.Errorf("bitstream: word %#08x before sync (offset %d)", w, i-1)
			}
			continue
		}
		h, err := DecodeHeader(w, pt.lastReg)
		if err != nil {
			return err
		}
		i++
		pt.Stats.Packets++
		if h.Type == PacketType1 {
			pt.lastReg = h.Reg
		}
		switch h.Op {
		case OpNOP:
			continue
		case OpRead:
			return fmt.Errorf("bitstream: read packets are not part of download streams")
		case OpWrite:
			if i+h.Count > len(words) {
				return fmt.Errorf("bitstream: truncated packet (%d words missing)", i+h.Count-len(words))
			}
			if h.Type == PacketType1 && h.Count == 0 {
				// Register select for a following type-2 packet.
				continue
			}
			data := words[i : i+h.Count]
			i += h.Count
			pt.Stats.Words += h.Count
			if err := pt.writeReg(h.Reg, data); err != nil {
				return err
			}
		default:
			return fmt.Errorf("bitstream: reserved opcode %d", h.Op)
		}
	}
	return nil
}

func (pt *Port) writeReg(reg int, data []uint32) error {
	if reg != RegCRC {
		for _, w := range data {
			pt.crc = crcUpdate(pt.crc, reg, w)
		}
	}
	switch reg {
	case RegCRC:
		if len(data) != 1 {
			return fmt.Errorf("bitstream: CRC write of %d words", len(data))
		}
		if uint32(pt.crc) != data[0] {
			return fmt.Errorf("bitstream: CRC mismatch (device %#04x, stream %#04x)", pt.crc, data[0])
		}
		pt.crc = 0
		pt.Stats.CRCChecks++

	case RegCMD:
		if len(data) != 1 {
			return fmt.Errorf("bitstream: CMD write of %d words", len(data))
		}
		pt.cmd = data[0]
		switch pt.cmd {
		case CmdRCRC:
			pt.crc = 0
		case CmdSTART:
			pt.started = true
			pt.Stats.Started = true
		case CmdDESYNCH:
			pt.synced = false
			pt.desynced = true
			pt.lastReg = -1
		}

	case RegFAR:
		if len(data) != 1 {
			return fmt.Errorf("bitstream: FAR write of %d words", len(data))
		}
		f := device.FAR(data[0])
		if !pt.Mem.Part.ValidFAR(f) {
			return fmt.Errorf("bitstream: FAR %v invalid for %s", f, pt.Mem.Part.Name)
		}
		pt.far = f

	case RegFLR:
		if len(data) != 1 {
			return fmt.Errorf("bitstream: FLR write of %d words", len(data))
		}
		pt.flr = data[0]
		if want := uint32(pt.Mem.Part.FrameWords() - 1); pt.flr != want {
			return fmt.Errorf("bitstream: FLR %d does not match %s (want %d) — bitstream for a different part?",
				pt.flr, pt.Mem.Part.Name, want)
		}

	case RegFDRI:
		return pt.writeFrames(data)

	case RegMFWR:
		// Multiple frame write: commit the last FDRI-committed frame to an
		// explicitly addressed FAR (the compressed-bitstream extension).
		if len(data) != 1 {
			return fmt.Errorf("bitstream: MFWR write of %d words", len(data))
		}
		if pt.cmd != CmdWCFG {
			return fmt.Errorf("bitstream: MFWR without WCFG")
		}
		if pt.lastFrame == nil {
			return fmt.Errorf("bitstream: MFWR before any FDRI frame")
		}
		f := device.FAR(data[0])
		if !pt.Mem.Part.ValidFAR(f) {
			return fmt.Errorf("bitstream: MFWR to invalid %v", f)
		}
		if err := pt.Mem.SetFrame(f, pt.lastFrame); err != nil {
			return err
		}
		pt.Stats.FramesWritten++

	case RegCTL:
		if len(data) == 1 {
			pt.ctl = (pt.ctl &^ pt.mask) | (data[0] & pt.mask)
		}
	case RegMASK:
		if len(data) == 1 {
			pt.mask = data[0]
		}
	case RegCOR:
		if len(data) == 1 {
			pt.cor = data[0]
		}
	case RegLOUT:
		// legacy daisy-chain output: ignored
	default:
		return fmt.Errorf("bitstream: write to unknown register %d", reg)
	}
	return nil
}

// writeFrames commits FDRI data: the frame pipeline writes frame k when
// frame k+1 shifts in, so M frames of data configure M-1 frames and the
// final (pad) frame is discarded.
func (pt *Port) writeFrames(data []uint32) error {
	if pt.cmd != CmdWCFG {
		return fmt.Errorf("bitstream: FDRI write without WCFG (cmd=%s)", CmdName(pt.cmd))
	}
	p := pt.Mem.Part
	fw := p.FrameWords()
	if len(data)%fw != 0 {
		return fmt.Errorf("bitstream: FDRI payload %d words, not a multiple of frame length %d", len(data), fw)
	}
	nf := len(data) / fw
	if nf < 2 {
		return fmt.Errorf("bitstream: FDRI payload of %d frame(s); need at least data+pad", nf)
	}
	for k := 0; k < nf-1; k++ {
		if !p.ValidFAR(pt.far) {
			return fmt.Errorf("bitstream: frame write past end of device at frame %d of run", k)
		}
		if err := pt.Mem.SetFrame(pt.far, data[k*fw:(k+1)*fw]); err != nil {
			return err
		}
		pt.Stats.FramesWritten++
		if k < nf-2 {
			next, ok := p.NextFAR(pt.far)
			if !ok {
				return fmt.Errorf("bitstream: frame write past end of device at frame %d of run", k+1)
			}
			pt.far = next
		}
	}
	pt.lastFrame = append(pt.lastFrame[:0], data[(nf-2)*fw:(nf-1)*fw]...)
	return nil
}
