// Package techmap maps Boolean expressions onto networks of 4-input LUTs,
// the technology-mapping stage of the CAD flow. Expressions reference nets
// of a netlist under construction; MapExpr covers an expression with LUT4
// cells and returns the net carrying its value.
package techmap

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// Expr is a Boolean expression tree over nets.
type Expr interface {
	// support accumulates the distinct leaf nets of the expression.
	support(set map[*netlist.Net]bool)
	// eval evaluates the expression under an assignment of leaf nets.
	eval(assign map[*netlist.Net]bool) bool
}

type varExpr struct{ net *netlist.Net }
type constExpr struct{ v bool }
type notExpr struct{ e Expr }
type naryExpr struct {
	op  byte // '&', '|', '^'
	ops []Expr
}

// Var references a net as an expression leaf.
func Var(n *netlist.Net) Expr { return varExpr{n} }

// Const is a constant expression.
func Const(v bool) Expr { return constExpr{v} }

// Not negates an expression.
func Not(e Expr) Expr { return notExpr{e} }

// And, Or and Xor combine expressions (variadic, at least one operand).
func And(es ...Expr) Expr { return naryExpr{'&', es} }
func Or(es ...Expr) Expr  { return naryExpr{'|', es} }
func Xor(es ...Expr) Expr { return naryExpr{'^', es} }

// Eq builds an equality comparator between a net vector and a constant.
func Eq(nets []*netlist.Net, value uint64) Expr {
	terms := make([]Expr, len(nets))
	for i, n := range nets {
		if value>>i&1 == 1 {
			terms[i] = Var(n)
		} else {
			terms[i] = Not(Var(n))
		}
	}
	return And(terms...)
}

// Mux returns sel ? a : b.
func Mux(sel, a, b Expr) Expr {
	return Or(And(sel, a), And(Not(sel), b))
}

func (e varExpr) support(set map[*netlist.Net]bool) { set[e.net] = true }
func (e varExpr) eval(a map[*netlist.Net]bool) bool { return a[e.net] }

func (e constExpr) support(map[*netlist.Net]bool)   {}
func (e constExpr) eval(map[*netlist.Net]bool) bool { return e.v }
func (e notExpr) support(set map[*netlist.Net]bool) { e.e.support(set) }
func (e notExpr) eval(a map[*netlist.Net]bool) bool { return !e.e.eval(a) }
func (e naryExpr) support(set map[*netlist.Net]bool) {
	for _, o := range e.ops {
		o.support(set)
	}
}

func (e naryExpr) eval(a map[*netlist.Net]bool) bool {
	if len(e.ops) == 0 {
		// Identity elements: AND() = true, OR() = XOR() = false.
		return e.op == '&'
	}
	acc := e.ops[0].eval(a)
	for _, o := range e.ops[1:] {
		v := o.eval(a)
		switch e.op {
		case '&':
			acc = acc && v
		case '|':
			acc = acc || v
		case '^':
			acc = acc != v
		}
	}
	return acc
}

// Support returns the expression's distinct leaf nets in deterministic
// (name) order.
func Support(e Expr) []*netlist.Net {
	set := map[*netlist.Net]bool{}
	e.support(set)
	out := make([]*netlist.Net, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TruthTable evaluates an expression with support of at most 4 nets into a
// LUT4 init value: bit i = value when inputs[k] = bit k of i.
func TruthTable(e Expr, inputs []*netlist.Net) (uint16, error) {
	if len(inputs) > 4 {
		return 0, fmt.Errorf("techmap: truth table over %d inputs", len(inputs))
	}
	var tt uint16
	assign := map[*netlist.Net]bool{}
	for i := 0; i < 1<<len(inputs); i++ {
		for k, n := range inputs {
			assign[n] = i>>k&1 == 1
		}
		if e.eval(assign) {
			tt |= 1 << i
		}
	}
	// Unused LUT entries replicate the pattern so the value is independent
	// of floating inputs.
	for w := len(inputs); w < 4; w++ {
		tt |= tt << (1 << w)
	}
	return tt, nil
}
