package techmap

import (
	"fmt"

	"repro/internal/netlist"
)

// Mapper covers expressions with LUT4s inside one design, generating cells
// with a common name prefix so module membership is visible downstream (the
// floorplanner constrains cells by name prefix).
type Mapper struct {
	Design *Design
	// Prefix is prepended to generated cell names, e.g. "u1/".
	Prefix string
	serial int
}

// Design aliases netlist.Design for readability.
type Design = netlist.Design

// NewMapper returns a mapper emitting cells named Prefix + "lut<N>".
func NewMapper(d *Design, prefix string) *Mapper {
	return &Mapper{Design: d, Prefix: prefix}
}

func (m *Mapper) fresh() string {
	m.serial++
	return fmt.Sprintf("%slut%d", m.Prefix, m.serial)
}

// MapExpr covers e with LUT4s and returns the net carrying its value.
// Expressions whose support exceeds 4 nets are decomposed: n-ary operators
// are split into balanced trees of at-most-4-input gates, with operand
// subexpressions mapped first.
func (m *Mapper) MapExpr(name string, e Expr) (*netlist.Net, error) {
	sup := Support(e)
	if len(sup) <= 4 {
		if len(sup) == 0 {
			// Constant: a LUT with a constant table, fed by any net, would
			// need a dummy input; model constants as a 1-input LUT on
			// itself is impossible, so reject — generators tie constants
			// structurally instead.
			return nil, fmt.Errorf("techmap: %q is a constant expression; tie it structurally", name)
		}
		tt, err := TruthTable(e, sup)
		if err != nil {
			return nil, err
		}
		cell, err := m.Design.AddLUT(m.cellName(name), tt, sup...)
		if err != nil {
			return nil, err
		}
		return cell.Out, nil
	}

	switch ex := e.(type) {
	case notExpr:
		inner, err := m.MapExpr(name+"_n", ex.e)
		if err != nil {
			return nil, err
		}
		return m.MapExpr(name, Not(Var(inner)))
	case naryExpr:
		// Map each operand to a net, then reduce with 4-ary gates.
		nets := make([]Expr, 0, len(ex.ops))
		for i, op := range ex.ops {
			opSup := Support(op)
			if len(opSup) <= 4 {
				nets = append(nets, op)
				continue
			}
			n, err := m.MapExpr(fmt.Sprintf("%s_t%d", name, i), op)
			if err != nil {
				return nil, err
			}
			nets = append(nets, Var(n))
		}
		return m.reduce(name, ex.op, nets)
	case varExpr, constExpr:
		return nil, fmt.Errorf("techmap: leaf with support > 4 is impossible")
	default:
		return nil, fmt.Errorf("techmap: unknown expression type %T", e)
	}
}

// reduce combines operand expressions (each with support <= 4) with a tree
// of at-most-4-input gates. Operands that are not plain net references are
// first materialised as LUTs, then the resulting nets are reduced 4 at a
// time, which guarantees progress.
func (m *Mapper) reduce(name string, op byte, ops []Expr) (*netlist.Net, error) {
	nets := make([]*netlist.Net, 0, len(ops))
	for i, o := range ops {
		if v, isVar := o.(varExpr); isVar {
			nets = append(nets, v.net)
			continue
		}
		n, err := m.MapExpr(fmt.Sprintf("%s_o%d", name, i), o)
		if err != nil {
			return nil, err
		}
		nets = append(nets, n)
	}
	for len(nets) > 4 {
		var next []*netlist.Net
		for i := 0; i < len(nets); i += 4 {
			group := nets[i:min(i+4, len(nets))]
			if len(group) == 1 {
				next = append(next, group[0])
				continue
			}
			n, err := m.gate(m.fresh(), op, group)
			if err != nil {
				return nil, err
			}
			next = append(next, n)
		}
		nets = next
	}
	return m.gate(m.cellName(name), op, nets)
}

// gate emits a single LUT computing op over 1..4 nets.
func (m *Mapper) gate(cellName string, op byte, nets []*netlist.Net) (*netlist.Net, error) {
	exprs := make([]Expr, len(nets))
	for i, n := range nets {
		exprs[i] = Var(n)
	}
	e := naryExpr{op, exprs}
	tt, err := TruthTable(e, nets)
	if err != nil {
		return nil, err
	}
	cell, err := m.Design.AddLUT(cellName, tt, nets...)
	if err != nil {
		return nil, err
	}
	return cell.Out, nil
}

func (m *Mapper) cellName(name string) string {
	if name == "" {
		return m.fresh()
	}
	return m.Prefix + name
}

// MapRegistered maps an expression and registers it: a DFF clocked by clock
// captures the LUT network's output. It returns the registered (Q) net.
func (m *Mapper) MapRegistered(name string, e Expr, clock *netlist.Net) (*netlist.Net, error) {
	d, err := m.MapExpr(name+"_d", e)
	if err != nil {
		return nil, err
	}
	ff, err := m.Design.AddDFF(m.Prefix+name, d, clock, nil, nil)
	if err != nil {
		return nil, err
	}
	return ff.Out, nil
}
