package techmap

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// buildInputs creates a design with n input ports a0..a(n-1).
func buildInputs(t *testing.T, n int) (*Design, []*netlist.Net) {
	t.Helper()
	d := netlist.NewDesign("t")
	nets := make([]*netlist.Net, n)
	for i := range nets {
		p, err := d.AddPort(fmt.Sprintf("a%d", i), netlist.In, nil)
		if err != nil {
			t.Fatal(err)
		}
		nets[i] = p.Net
	}
	return d, nets
}

// checkEquivalence exhaustively compares the mapped network against the
// expression over all input assignments.
func checkEquivalence(t *testing.T, d *Design, ins []*netlist.Net, e Expr, out *netlist.Net) {
	t.Helper()
	if _, err := d.AddPort("y", netlist.Out, out); err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	assign := map[*netlist.Net]bool{}
	for v := 0; v < 1<<len(ins); v++ {
		for i := range ins {
			bit := v>>i&1 == 1
			if err := s.SetInput(fmt.Sprintf("a%d", i), bit); err != nil {
				t.Fatal(err)
			}
			assign[ins[i]] = bit
		}
		s.Eval()
		got, err := s.Output("y")
		if err != nil {
			t.Fatal(err)
		}
		if want := e.eval(assign); got != want {
			t.Fatalf("input %0*b: mapped=%v expr=%v", len(ins), v, got, want)
		}
	}
}

func TestMapSmallExpr(t *testing.T) {
	d, ins := buildInputs(t, 3)
	e := Or(And(Var(ins[0]), Var(ins[1])), Not(Var(ins[2])))
	out, err := NewMapper(d, "u/").MapExpr("f", e)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().LUTs; got != 1 {
		t.Fatalf("3-input expression used %d LUTs, want 1", got)
	}
	checkEquivalence(t, d, ins, e, out)
}

func TestMapWideAnd(t *testing.T) {
	d, ins := buildInputs(t, 11)
	terms := make([]Expr, len(ins))
	for i, n := range ins {
		terms[i] = Var(n)
	}
	e := And(terms...)
	out, err := NewMapper(d, "u/").MapExpr("wide", e)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, d, ins, e, out)
}

func TestMapWideXorOfProducts(t *testing.T) {
	d, ins := buildInputs(t, 9)
	e := Xor(
		And(Var(ins[0]), Var(ins[1]), Var(ins[2])),
		And(Var(ins[3]), Not(Var(ins[4])), Var(ins[5])),
		Or(Var(ins[6]), Var(ins[7]), Var(ins[8])),
	)
	out, err := NewMapper(d, "u/").MapExpr("xp", e)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, d, ins, e, out)
}

// randExpr builds a random expression tree over the given nets.
func randExpr(rng *rand.Rand, ins []*netlist.Net, depth int) Expr {
	if depth == 0 || rng.Intn(4) == 0 {
		e := Expr(Var(ins[rng.Intn(len(ins))]))
		if rng.Intn(2) == 0 {
			e = Not(e)
		}
		return e
	}
	k := 2 + rng.Intn(3)
	ops := make([]Expr, k)
	for i := range ops {
		ops[i] = randExpr(rng, ins, depth-1)
	}
	switch rng.Intn(3) {
	case 0:
		return And(ops...)
	case 1:
		return Or(ops...)
	default:
		return Xor(ops...)
	}
}

func TestMapRandomExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(5) // 5..9 inputs: exhaustive check stays cheap
		d, ins := buildInputs(t, n)
		e := randExpr(rng, ins, 3)
		out, err := NewMapper(d, "u/").MapExpr("r", e)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkEquivalence(t, d, ins, e, out)
	}
}

func TestEqAndMux(t *testing.T) {
	d, ins := buildInputs(t, 6)
	e := Mux(Var(ins[5]), Eq(ins[0:4], 0xB), Var(ins[4]))
	out, err := NewMapper(d, "u/").MapExpr("m", e)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, d, ins, e, out)
}

func TestConstantExpressionRejected(t *testing.T) {
	d, _ := buildInputs(t, 1)
	if _, err := NewMapper(d, "").MapExpr("c", Const(true)); err == nil {
		t.Fatal("constant expression mapped")
	}
}

func TestTruthTablePadding(t *testing.T) {
	d, ins := buildInputs(t, 1)
	tt, err := TruthTable(Var(ins[0]), ins[:1])
	if err != nil {
		t.Fatal(err)
	}
	// 1-input identity padded across all 16 entries: 0xAAAA.
	if tt != 0xAAAA {
		t.Fatalf("padded identity table = %04x", tt)
	}
	_ = d
}

func TestTruthTableTooWide(t *testing.T) {
	d, ins := buildInputs(t, 5)
	_ = d
	if _, err := TruthTable(And(Var(ins[0])), ins); err == nil {
		t.Fatal("5-input truth table accepted")
	}
}

func TestMapRegistered(t *testing.T) {
	d, ins := buildInputs(t, 2)
	clkPort, err := d.AddPort("clk", netlist.In, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMapper(d, "u/")
	q, err := m.MapRegistered("r", Xor(Var(ins[0]), Var(ins[1])), clkPort.Net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("q", netlist.Out, q); err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetInput("a0", true); err != nil {
		t.Fatal(err)
	}
	if err := s.SetInput("a1", false); err != nil {
		t.Fatal(err)
	}
	s.Eval()
	if v, _ := s.Output("q"); v {
		t.Fatal("register should still hold init value before clocking")
	}
	s.Step()
	if v, _ := s.Output("q"); !v {
		t.Fatal("register did not capture XOR result")
	}
}

func TestPrefixAppearsInCellNames(t *testing.T) {
	d, ins := buildInputs(t, 2)
	out, err := NewMapper(d, "modA/").MapExpr("f", And(Var(ins[0]), Var(ins[1])))
	if err != nil {
		t.Fatal(err)
	}
	if out.Driver.Cell == nil || out.Driver.Cell.Name != "modA/f" {
		t.Fatalf("mapped cell name = %q", out.Driver.Cell.Name)
	}
}
