// Package extract reconstructs a logical netlist from Virtex configuration
// memory: the inverse of bitgen. It scans slice control bits for LUTs and
// flip-flops, pad mode bits for ports, and active PIPs for nets, and
// rebuilds a netlist.Design that can be simulated. This is the reproduction's
// strongest correctness oracle: a partially reconfigured device is correct
// iff the design extracted from its configuration behaves like the intended
// design — and it is the same bitstream-understanding machinery tools like
// JBitsDiff build on.
package extract

import (
	"fmt"
	"sort"

	"repro/internal/device"
	"repro/internal/frames"
	"repro/internal/jbits"
	"repro/internal/netlist"
)

// Design is the extraction result.
type Design struct {
	Netlist *netlist.Design
	// PortPads maps extracted port names to pads (port names are the pad
	// names, so this is the identity, kept for symmetry with phys.Design).
	PortPads map[string]device.Pad
}

// site identifies a logic element during extraction.
type site struct {
	row, col, slice, le int
}

func (s site) String() string {
	return fmt.Sprintf("%s.S%d.%s", device.TileName(s.row, s.col), s.slice, device.LUTName(s.le))
}

// FromMemory extracts the design configured in mem.
func FromMemory(mem *frames.Memory) (*Design, error) {
	p := mem.Part
	jb := jbits.New(mem)
	nl := netlist.NewDesign("extracted")
	out := &Design{Netlist: nl, PortPads: map[string]device.Pad{}}

	luts := map[site]*netlist.Cell{}
	ffs := map[site]*netlist.Cell{}

	// 1. Logic cells from slice control bits.
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			for s := 0; s < 2; s++ {
				for le := 0; le < 2; le++ {
					mux, ffCtl, initCtl := device.SliceCtlXMUX, device.SliceCtlFFX, device.SliceCtlINITX
					lutSel := device.LUTF
					if le == 1 {
						mux, ffCtl, initCtl = device.SliceCtlYMUX, device.SliceCtlFFY, device.SliceCtlINITY
						lutSel = device.LUTG
					}
					st := site{r, c, s, le}
					if on, err := jb.GetSliceCtl(r, c, s, mux); err != nil {
						return nil, err
					} else if on {
						init, err := jb.GetLUT(r, c, s, lutSel)
						if err != nil {
							return nil, err
						}
						cell, err := nl.NewRawCell(fmt.Sprintf("L_%s", st), netlist.KindLUT4, uint16(init))
						if err != nil {
							return nil, err
						}
						luts[st] = cell
					}
					if on, err := jb.GetSliceCtl(r, c, s, ffCtl); err != nil {
						return nil, err
					} else if on {
						var init uint16
						if v, err := jb.GetSliceCtl(r, c, s, initCtl); err != nil {
							return nil, err
						} else if v {
							init = 1
						}
						cell, err := nl.NewRawCell(fmt.Sprintf("FF_%s", st), netlist.KindDFF, init)
						if err != nil {
							return nil, err
						}
						ffs[st] = cell
					}
				}
			}
		}
	}

	// 2. Ports from pad mode bits.
	type padInfo struct {
		pad   device.Pad
		isIn  bool
		isOut bool
	}
	var pads []padInfo
	for i := 0; i < p.NumPads(); i++ {
		pd := padAt(p, i)
		inUse, err := jb.GetPadMode(pd, device.PadCtlInUse)
		if err != nil {
			return nil, err
		}
		if !inUse {
			continue
		}
		inEn, _ := jb.GetPadMode(pd, device.PadCtlInEn)
		outEn, _ := jb.GetPadMode(pd, device.PadCtlOutEn)
		pads = append(pads, padInfo{pd, inEn, outEn})
	}

	// 3. Active PIP adjacency.
	adj := map[device.NodeID][]device.PIP{}
	activeGlobals := map[int]bool{}
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			active, err := jb.ActivePIPs(r, c)
			if err != nil {
				return nil, err
			}
			for _, pip := range active {
				adj[pip.Src] = append(adj[pip.Src], pip)
				if d := p.DescribeNode(pip.Src); d.Kind == device.NodeGlobal {
					activeGlobals[d.C] = true
				}
			}
		}
	}

	ex := &extractor{
		p: p, nl: nl, adj: adj,
		luts: luts, ffs: ffs,
		claimed: map[device.NodeID]*netlist.Net{},
	}

	// 4. Nets from cell outputs and input pads.
	for _, st := range sortedSites(luts) {
		cell := luts[st]
		node := outNode(p, st, false)
		net := nl.NewNet(cell.Name + "_o")
		if err := nl.BindOutput(cell, net); err != nil {
			return nil, err
		}
		if err := ex.trace(net, node); err != nil {
			return nil, err
		}
	}
	for _, st := range sortedSites(ffs) {
		cell := ffs[st]
		node := outNode(p, st, true)
		net := nl.NewNet(cell.Name + "_q")
		if err := nl.BindOutput(cell, net); err != nil {
			return nil, err
		}
		if err := ex.trace(net, node); err != nil {
			return nil, err
		}
	}
	var clockless []device.Pad // input pads with no fabric fanout: clock candidates
	for _, pi := range pads {
		if pi.isIn {
			node := p.PadNodeI(pi.pad)
			if len(adj[node]) == 0 {
				clockless = append(clockless, pi.pad)
				continue
			}
			net := nl.NewNet(pi.pad.Name() + "_i")
			port, err := nl.AddPort(pi.pad.Name(), netlist.In, net)
			if err != nil {
				return nil, err
			}
			out.PortPads[port.Name] = pi.pad
			if err := ex.trace(net, node); err != nil {
				return nil, err
			}
		}
	}

	// 5. Clock nets: active global lines, each driven by one of the
	// fanout-free input pads (the pad-to-global path is dedicated wiring
	// with no configuration bits, so the pairing is by order).
	globals := make([]int, 0, len(activeGlobals))
	for g := range activeGlobals {
		globals = append(globals, g)
	}
	sort.Ints(globals)
	for i, g := range globals {
		name := fmt.Sprintf("GCLK%d", g)
		var pd device.Pad
		if i < len(clockless) {
			pd = clockless[i]
			name = pd.Name()
		}
		net := nl.NewNet(name + "_i")
		port, err := nl.AddPort(name, netlist.In, net)
		if err != nil {
			return nil, err
		}
		out.PortPads[port.Name] = pd
		if err := ex.trace(net, p.GlobalNode(g)); err != nil {
			return nil, err
		}
	}

	// 6. Output ports read the nets that reached their pads.
	for _, pi := range pads {
		if !pi.isOut {
			continue
		}
		net := ex.claimed[p.PadNodeO(pi.pad)]
		if net == nil {
			return nil, fmt.Errorf("extract: output pad %s driven by no net", pi.pad.Name())
		}
		port, err := nl.AddPort(pi.pad.Name(), netlist.Out, net)
		if err != nil {
			return nil, err
		}
		out.PortPads[port.Name] = pi.pad
	}

	// 7. Internal LUT->FF data connections: an FF whose D pin was not
	// reached through routing takes its paired LUT's output.
	for _, st := range sortedSites(ffs) {
		ff := ffs[st]
		if ff.Inputs[0] != nil {
			continue
		}
		lut := luts[st]
		if lut == nil {
			return nil, fmt.Errorf("extract: FF at %s has neither routed data nor a paired LUT", st)
		}
		if err := nl.BindInput(ff, "D", lut.Out); err != nil {
			return nil, err
		}
	}

	if err := nl.FinishRaw(); err != nil {
		return nil, err
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

type extractor struct {
	p       *device.Part
	nl      *netlist.Design
	adj     map[device.NodeID][]device.PIP
	luts    map[site]*netlist.Cell
	ffs     map[site]*netlist.Cell
	claimed map[device.NodeID]*netlist.Net
}

// trace follows active PIPs from a source node, binding every reached input
// pin and pad to the net.
func (ex *extractor) trace(net *netlist.Net, src device.NodeID) error {
	queue := []device.NodeID{src}
	seen := map[device.NodeID]bool{src: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, pip := range ex.adj[cur] {
			dst := pip.Dst
			if owner := ex.claimed[dst]; owner != nil && owner != net {
				return fmt.Errorf("extract: node %s driven by nets %q and %q",
					ex.p.NodeName(dst), owner.Name, net.Name)
			}
			ex.claimed[dst] = net
			if seen[dst] {
				continue
			}
			seen[dst] = true
			if err := ex.bindIfPin(net, dst); err != nil {
				return err
			}
			queue = append(queue, dst)
		}
	}
	return nil
}

// bindIfPin connects the net to whatever logical pin the node represents.
func (ex *extractor) bindIfPin(net *netlist.Net, node device.NodeID) error {
	d := ex.p.DescribeNode(node)
	if d.Kind != device.NodeWire {
		return nil // pads handled by the claimed map; wires carry on
	}
	w := d.C
	if w < device.WireInPinBase || w >= device.WiresPerTile {
		return nil
	}
	i := w - device.WireInPinBase
	slice, k := i/device.InPinsPerSlice, i%device.InPinsPerSlice
	stF := site{d.A, d.B, slice, 0}
	stG := site{d.A, d.B, slice, 1}
	switch {
	case k >= device.PinF1 && k <= device.PinF4:
		lut := ex.luts[stF]
		if lut == nil {
			return fmt.Errorf("extract: routed input %s feeds no LUT", ex.p.NodeName(node))
		}
		return ex.nl.BindInput(lut, fmt.Sprintf("I%d", k-device.PinF1), net)
	case k >= device.PinG1 && k <= device.PinG4:
		lut := ex.luts[stG]
		if lut == nil {
			return fmt.Errorf("extract: routed input %s feeds no LUT", ex.p.NodeName(node))
		}
		return ex.nl.BindInput(lut, fmt.Sprintf("I%d", k-device.PinG1), net)
	case k == device.PinBX || k == device.PinBY:
		st := stF
		if k == device.PinBY {
			st = stG
		}
		ff := ex.ffs[st]
		if ff == nil {
			return fmt.Errorf("extract: routed data %s feeds no FF", ex.p.NodeName(node))
		}
		return ex.nl.BindInput(ff, "D", net)
	case k == device.PinCLK, k == device.PinCE, k == device.PinSR:
		pin := map[int]string{device.PinCLK: "C", device.PinCE: "CE", device.PinSR: "R"}[k]
		// The control pin is shared by both FFs of the slice.
		bound := false
		for _, st := range []site{stF, stG} {
			if ff := ex.ffs[st]; ff != nil {
				if err := ex.nl.BindInput(ff, pin, net); err != nil {
					return err
				}
				bound = true
			}
		}
		if !bound {
			return fmt.Errorf("extract: routed control %s feeds no FF", ex.p.NodeName(node))
		}
		return nil
	}
	return nil
}

// outNode returns the output node of a logic element's LUT or FF.
func outNode(p *device.Part, st site, isFF bool) device.NodeID {
	pin := device.OutX
	switch {
	case isFF && st.le == 0:
		pin = device.OutXQ
	case isFF && st.le == 1:
		pin = device.OutYQ
	case !isFF && st.le == 1:
		pin = device.OutY
	}
	return p.TileWireNode(st.row, st.col, device.OutWire(st.slice, pin))
}

func sortedSites[V any](m map[site]V) []site {
	keys := make([]site, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.row != b.row {
			return a.row < b.row
		}
		if a.col != b.col {
			return a.col < b.col
		}
		if a.slice != b.slice {
			return a.slice < b.slice
		}
		return a.le < b.le
	})
	return keys
}

// padAt mirrors the device package's pad enumeration order.
func padAt(p *device.Part, i int) device.Pad {
	switch {
	case i < p.Rows:
		return device.Pad{Edge: device.EdgeL, Index: i}
	case i < 2*p.Rows:
		return device.Pad{Edge: device.EdgeR, Index: i - p.Rows}
	case i < 2*p.Rows+p.Cols:
		return device.Pad{Edge: device.EdgeT, Index: i - 2*p.Rows}
	default:
		return device.Pad{Edge: device.EdgeB, Index: i - 2*p.Rows - p.Cols}
	}
}
