package extract

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/bitgen"
	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/phys"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/xhwif"
)

// buildAndExtract implements a generator, runs it through bitgen, and
// extracts the configured design back out of configuration memory.
func buildAndExtract(t *testing.T, gen designs.Generator, seed int64) (*phys.Design, *Design) {
	t.Helper()
	nl, err := designs.Standalone(gen, "d", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	pd, err := place.Place(device.MustByName("XCV50"), nl, place.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := route.Route(pd, route.Options{}); err != nil {
		t.Fatal(err)
	}
	mem, err := bitgen.Generate(pd)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := FromMemory(mem)
	if err != nil {
		t.Fatal(err)
	}
	return pd, ex
}

// portMap translates original port names to extracted port names (pads).
func portMap(pd *phys.Design) map[string]string {
	m := map[string]string{}
	for port, pad := range pd.Ports {
		m[port.Name] = pad.Name()
	}
	return m
}

// compareBehaviour drives both simulators through the same stimulus and
// compares all outputs every cycle.
func compareBehaviour(t *testing.T, pd *phys.Design, ex *Design, cycles int, stim func(cycle int) map[string]bool) {
	t.Helper()
	s1, err := sim.New(pd.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sim.New(ex.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	pm := portMap(pd)
	for cyc := 0; cyc < cycles; cyc++ {
		if stim != nil {
			for name, v := range stim(cyc) {
				if err := s1.SetInput(name, v); err != nil {
					t.Fatal(err)
				}
				if err := s2.SetInput(pm[name], v); err != nil {
					t.Fatal(err)
				}
			}
		}
		s1.Step()
		s2.Step()
		for _, port := range pd.Netlist.Ports {
			if port.Dir != netlist.Out {
				continue
			}
			v1, err := s1.Output(port.Name)
			if err != nil {
				t.Fatal(err)
			}
			v2, err := s2.Output(pm[port.Name])
			if err != nil {
				t.Fatal(err)
			}
			if v1 != v2 {
				t.Fatalf("cycle %d: port %q original=%v extracted=%v", cyc, port.Name, v1, v2)
			}
		}
	}
}

func TestExtractCounterBehaviour(t *testing.T) {
	pd, ex := buildAndExtract(t, designs.Counter{Bits: 5}, 1)
	st1, st2 := pd.Netlist.Stats(), ex.Netlist.Stats()
	if st1.LUTs != st2.LUTs || st1.DFFs != st2.DFFs {
		t.Fatalf("extraction changed cell counts: %+v vs %+v", st1, st2)
	}
	compareBehaviour(t, pd, ex, 80, nil)
}

func TestExtractAdderBehaviour(t *testing.T) {
	pd, ex := buildAndExtract(t, designs.RippleAdder{Bits: 3}, 2)
	compareBehaviour(t, pd, ex, 64, func(cyc int) map[string]bool {
		m := map[string]bool{}
		for i := 0; i < 6; i++ {
			m[fmt.Sprintf("in%d", i)] = cyc>>i&1 == 1
		}
		return m
	})
}

func TestExtractStringMatcherBehaviour(t *testing.T) {
	pd, ex := buildAndExtract(t, designs.StringMatcher{Pattern: "ok"}, 3)
	stream := "look ok okok"
	compareBehaviour(t, pd, ex, len(stream), func(cyc int) map[string]bool {
		m := map[string]bool{}
		for i := 0; i < 8; i++ {
			m[fmt.Sprintf("in%d", i)] = stream[cyc]>>i&1 == 1
		}
		return m
	})
}

// TestPartialReconfigFunctional is the reproduction's key correctness
// experiment (paper claim C4): after JPG partially reconfigures a running
// board, the design extracted from the device behaves as the base design
// with the module swapped — the untouched module keeps working and the
// swapped region implements the new module.
func TestPartialReconfigFunctional(t *testing.T) {
	p := device.MustByName("XCV50")
	base, err := flow.BuildBase(context.Background(), p, []designs.Instance{
		{Prefix: "u1/", Gen: designs.Counter{Bits: 6}},
		{Prefix: "u2/", Gen: designs.SBoxBank{N: 6, Seed: 3}},
	}, flow.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	variant, err := flow.BuildVariant(context.Background(), base, "u1/", designs.LFSR{Bits: 6, Taps: []int{5, 2}}, flow.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	board := xhwif.NewBoard(p)
	if _, err := board.Download(base.Bitstream); err != nil {
		t.Fatal(err)
	}
	proj, err := core.NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	m, err := proj.AddModule("u1_lfsr", variant.XDL, variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := proj.GenerateAndDownload(m, board, core.GenerateOptions{Strict: true}); err != nil {
		t.Fatal(err)
	}

	ex, err := FromMemory(board.Readback())
	if err != nil {
		t.Fatal(err)
	}
	exSim, err := sim.New(ex.Netlist)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: software models of the expected post-reconfig behaviour.
	lfsrRef, err := designs.Standalone(designs.LFSR{Bits: 6, Taps: []int{5, 2}}, "ref1", "u1/")
	if err != nil {
		t.Fatal(err)
	}
	lfsrSim, err := sim.New(lfsrRef)
	if err != nil {
		t.Fatal(err)
	}
	sboxRef, err := designs.Standalone(designs.SBoxBank{N: 6, Seed: 3}, "ref2", "u2/")
	if err != nil {
		t.Fatal(err)
	}
	sboxSim, err := sim.New(sboxRef)
	if err != nil {
		t.Fatal(err)
	}

	pads := base.Pads // base port name -> pad name == extracted port name
	for cyc := 0; cyc < 100; cyc++ {
		addr := uint64(cyc % 16)
		for i := 0; i < 4; i++ {
			bit := addr>>i&1 == 1
			if err := exSim.SetInput(pads[fmt.Sprintf("u2_in%d", i)], bit); err != nil {
				t.Fatal(err)
			}
			if err := sboxSim.SetInput(fmt.Sprintf("in%d", i), bit); err != nil {
				t.Fatal(err)
			}
		}
		exSim.Step()
		lfsrSim.Step()
		sboxSim.Step()
		for i := 0; i < 6; i++ {
			got, err := exSim.Output(pads[fmt.Sprintf("u1_out%d", i)])
			if err != nil {
				t.Fatal(err)
			}
			want, err := lfsrSim.Output(fmt.Sprintf("out%d", i))
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("cycle %d: swapped module u1 bit %d: device=%v reference=%v", cyc, i, got, want)
			}
			got, err = exSim.Output(pads[fmt.Sprintf("u2_out%d", i)])
			if err != nil {
				t.Fatal(err)
			}
			want, err = sboxSim.Output(fmt.Sprintf("out%d", i))
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("cycle %d: untouched module u2 bit %d: device=%v reference=%v", cyc, i, got, want)
			}
		}
	}
}

func TestExtractEmptyMemory(t *testing.T) {
	mem := xhwif.NewBoard(device.MustByName("XCV50")).Readback()
	ex, err := FromMemory(mem)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Netlist.Cells) != 0 || len(ex.Netlist.Ports) != 0 {
		t.Fatal("blank device extracted non-empty design")
	}
}

// TestExtractCEAndResetPaths covers the full CE/SR path: placement control
// bits, fabric routing to CE/SR pins, bitgen, and extraction.
func TestExtractCEAndResetPaths(t *testing.T) {
	nl := netlist.NewDesign("ce")
	clk, _ := nl.AddPort("clk", netlist.In, nil)
	din, _ := nl.AddPort("d", netlist.In, nil)
	ce, _ := nl.AddPort("ce", netlist.In, nil)
	rst, _ := nl.AddPort("rst", netlist.In, nil)
	ff, err := nl.AddDFF("ff", din.Net, clk.Net, ce.Net, rst.Net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddPort("q", netlist.Out, ff.Out); err != nil {
		t.Fatal(err)
	}
	p := device.MustByName("XCV50")
	pd, err := place.Place(p, nl, place.Options{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if err := route.Route(pd, route.Options{}); err != nil {
		t.Fatal(err)
	}
	mem, err := bitgen.Generate(pd)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := FromMemory(mem)
	if err != nil {
		t.Fatal(err)
	}
	// Both simulators run the same CE/reset scenario.
	s1, err := sim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sim.New(ex.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	pm := portMap(pd)
	type step struct{ d, ce, rst bool }
	script := []step{
		{true, true, false},   // load 1
		{false, false, false}, // hold
		{false, true, true},   // reset
		{true, true, false},   // load again
		{false, false, true},  // reset dominates hold? (reset asserted)
	}
	for i, st := range script {
		for _, kv := range []struct {
			name string
			v    bool
		}{{"d", st.d}, {"ce", st.ce}, {"rst", st.rst}} {
			if err := s1.SetInput(kv.name, kv.v); err != nil {
				t.Fatal(err)
			}
			if err := s2.SetInput(pm[kv.name], kv.v); err != nil {
				t.Fatal(err)
			}
		}
		s1.Step()
		s2.Step()
		v1, _ := s1.Output("q")
		v2, err := s2.Output(pm["q"])
		if err != nil {
			t.Fatal(err)
		}
		if v1 != v2 {
			t.Fatalf("step %d (%+v): original=%v extracted=%v", i, st, v1, v2)
		}
	}
}
