package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/flow"
)

// RegionSpec is one reconfigurable region with its interface-compatible
// variants. The first variant is the base design's.
type RegionSpec struct {
	Prefix   string
	Variants []designs.Generator
}

// Fig4Scenario returns the paper's Figure 4 partitioning: three regions with
// 3, 3 and 4 module variants (3 x 3 x 4 = 36 combinations).
func Fig4Scenario() []RegionSpec {
	return []RegionSpec{
		{Prefix: "u1/", Variants: []designs.Generator{
			designs.Counter{Bits: 6},
			designs.LFSR{Bits: 6, Taps: []int{5, 0}},
			designs.LFSR{Bits: 6, Taps: []int{5, 2, 1, 0}},
		}},
		{Prefix: "u2/", Variants: []designs.Generator{
			designs.SBoxBank{N: 8, Seed: 11},
			designs.SBoxBank{N: 8, Seed: 22},
			designs.SBoxBank{N: 8, Seed: 33},
		}},
		{Prefix: "u3/", Variants: []designs.Generator{
			designs.BinaryFIR{Taps: 8, Coeff: 0xB7}, // 6 ones -> 3 output bits
			designs.BinaryFIR{Taps: 8, Coeff: 0x7E}, // 6 ones
			designs.BinaryFIR{Taps: 8, Coeff: 0xDB}, // 6 ones
			designs.BinaryFIR{Taps: 8, Coeff: 0xE7}, // 6 ones
		}},
	}
}

// quickScenario is a shrunken 3 x 3 variant set for fast test runs (9
// combinations vs 6 variants, preserving the combinatorial advantage).
func quickScenario() []RegionSpec {
	full := Fig4Scenario()
	return []RegionSpec{
		{Prefix: "u1/", Variants: full[0].Variants},
		{Prefix: "u2/", Variants: full[1].Variants},
	}
}

// E1 reproduces Figure 4 / §4.1: supporting every combination of module
// variants needs one full CAD run and one complete bitstream per combination
// under the conventional flow, versus one base build plus one small
// constrained run and partial bitstream per variant under the JPG flow.
func E1(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	scenario := Fig4Scenario()
	if cfg.Quick {
		scenario = quickScenario()
	}
	part, err := device.ByName(cfg.Part)
	if err != nil {
		return nil, err
	}

	combos := 1
	variants := 0
	for _, rs := range scenario {
		combos *= len(rs.Variants)
		variants += len(rs.Variants)
	}
	t := &Table{
		ID:    "E1",
		Title: fmt.Sprintf("Figure 4 scenario on %s: %d combinations vs %d partials", part.Name, combos, variants),
		Claim: "conventional flow: one full CAD run + full bitstream per combination (36); " +
			"JPG flow: one base + one partial per variant (10), each partial ~1/3 of a full bitstream",
		Columns: []string{"flow", "CAD runs", "bitstreams", "total bytes", "CAD time", "bytes/switch"},
	}

	// Conventional flow: every combination is a full implementation.
	var convTime time.Duration
	convBytes := 0
	convRuns := 0
	for _, combo := range enumerate(scenario) {
		full, err := flow.BuildFull(part, combo, flow.Options{Seed: cfg.Seed, Effort: cfg.Effort})
		if err != nil {
			return nil, fmt.Errorf("E1 conventional: %w", err)
		}
		convTime += full.Times.Total()
		convBytes += len(full.Bitstream)
		convRuns++
	}

	// JPG flow: one base build, then one constrained variant run + partial
	// bitstream per variant.
	baseInsts := make([]designs.Instance, len(scenario))
	for i, rs := range scenario {
		baseInsts[i] = designs.Instance{Prefix: rs.Prefix, Gen: rs.Variants[0]}
	}
	base, err := flow.BuildBase(part, baseInsts, flow.Options{Seed: cfg.Seed, Effort: cfg.Effort})
	if err != nil {
		return nil, fmt.Errorf("E1 base: %w", err)
	}
	jpgTime := base.Times.Total()
	jpgBytes := len(base.Bitstream)
	jpgRuns := 1
	proj, err := core.NewProject(base.Bitstream)
	if err != nil {
		return nil, err
	}
	partialBytes := 0
	partials := 0
	for _, rs := range scenario {
		for vi, gen := range rs.Variants {
			va, err := flow.BuildVariant(base, rs.Prefix, gen, flow.Options{Seed: cfg.Seed + int64(vi), Effort: cfg.Effort})
			if err != nil {
				return nil, fmt.Errorf("E1 variant %s%s: %w", rs.Prefix, gen.Name(), err)
			}
			jpgTime += va.Times.Total()
			jpgRuns++
			t0 := time.Now()
			m, err := proj.AddModule(rs.Prefix+gen.Name(), va.XDL, va.UCF)
			if err != nil {
				return nil, err
			}
			res, err := proj.GeneratePartial(m, core.GenerateOptions{Strict: true})
			if err != nil {
				return nil, err
			}
			jpgTime += time.Since(t0)
			partialBytes += len(res.Bitstream)
			partials++
		}
	}
	jpgBytes += partialBytes

	t.AddRow("conventional", convRuns, convRuns, convBytes, convTime.Round(time.Millisecond).String(),
		convBytes/convRuns)
	t.AddRow("JPG partial", jpgRuns, 1+partials, jpgBytes, jpgTime.Round(time.Millisecond).String(),
		partialBytes/partials)

	fullAvg := float64(convBytes) / float64(convRuns)
	partAvg := float64(partialBytes) / float64(partials)
	t.Note("CAD runs: %d conventional vs %d JPG (paper: 36 vs 10+1 base)", convRuns, jpgRuns)
	t.Note("average partial bitstream is %.2fx the average full bitstream (paper: ~1/3)", partAvg/fullAvg)
	t.Note("total bytes ratio conventional/JPG = %.2fx", float64(convBytes)/float64(jpgBytes))
	t.Note("total CAD time ratio conventional/JPG = %.2fx", float64(convTime)/float64(jpgTime))
	if convRuns <= jpgRuns {
		t.Note("VERDICT: FAIL (JPG flow did not reduce CAD runs)")
	} else if float64(convBytes) <= float64(jpgBytes) {
		t.Note("VERDICT: FAIL (JPG flow did not reduce bitstream volume)")
	} else {
		t.Note("VERDICT: PASS (shape matches the paper)")
	}
	return t, nil
}

// enumerate expands the cartesian product of variant choices into full
// instance lists.
func enumerate(scenario []RegionSpec) [][]designs.Instance {
	var out [][]designs.Instance
	combo := make([]designs.Instance, len(scenario))
	var rec func(i int)
	rec = func(i int) {
		if i == len(scenario) {
			out = append(out, append([]designs.Instance(nil), combo...))
			return
		}
		for _, gen := range scenario[i].Variants {
			combo[i] = designs.Instance{Prefix: scenario[i].Prefix, Gen: gen}
			rec(i + 1)
		}
	}
	rec(0)
	return out
}
