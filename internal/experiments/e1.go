package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/parallel"
)

// RegionSpec is one reconfigurable region with its interface-compatible
// variants. The first variant is the base design's.
type RegionSpec struct {
	Prefix   string
	Variants []designs.Generator
}

// Fig4Scenario returns the paper's Figure 4 partitioning: three regions with
// 3, 3 and 4 module variants (3 x 3 x 4 = 36 combinations).
func Fig4Scenario() []RegionSpec {
	return []RegionSpec{
		{Prefix: "u1/", Variants: []designs.Generator{
			designs.Counter{Bits: 6},
			designs.LFSR{Bits: 6, Taps: []int{5, 0}},
			designs.LFSR{Bits: 6, Taps: []int{5, 2, 1, 0}},
		}},
		{Prefix: "u2/", Variants: []designs.Generator{
			designs.SBoxBank{N: 8, Seed: 11},
			designs.SBoxBank{N: 8, Seed: 22},
			designs.SBoxBank{N: 8, Seed: 33},
		}},
		{Prefix: "u3/", Variants: []designs.Generator{
			designs.BinaryFIR{Taps: 8, Coeff: 0xB7}, // 6 ones -> 3 output bits
			designs.BinaryFIR{Taps: 8, Coeff: 0x7E}, // 6 ones
			designs.BinaryFIR{Taps: 8, Coeff: 0xDB}, // 6 ones
			designs.BinaryFIR{Taps: 8, Coeff: 0xE7}, // 6 ones
		}},
	}
}

// quickScenario is a shrunken 3 x 3 variant set for fast test runs (9
// combinations vs 6 variants, preserving the combinatorial advantage).
func quickScenario() []RegionSpec {
	full := Fig4Scenario()
	return []RegionSpec{
		{Prefix: "u1/", Variants: full[0].Variants},
		{Prefix: "u2/", Variants: full[1].Variants},
	}
}

// E1 reproduces Figure 4 / §4.1: supporting every combination of module
// variants needs one full CAD run and one complete bitstream per combination
// under the conventional flow, versus one base build plus one small
// constrained run and partial bitstream per variant under the JPG flow.
func E1(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ctx := cfg.ctx()
	scenario := Fig4Scenario()
	if cfg.Quick {
		scenario = quickScenario()
	}
	part, err := device.ByName(cfg.Part)
	if err != nil {
		return nil, err
	}

	combos := 1
	variants := 0
	for _, rs := range scenario {
		combos *= len(rs.Variants)
		variants += len(rs.Variants)
	}
	t := &Table{
		ID:    "E1",
		Title: fmt.Sprintf("Figure 4 scenario on %s: %d combinations vs %d partials", part.Name, combos, variants),
		Claim: "conventional flow: one full CAD run + full bitstream per combination (36); " +
			"JPG flow: one base + one partial per variant (10), each partial ~1/3 of a full bitstream",
		Columns: []string{"flow", "CAD runs", "bitstreams", "total bytes", "CAD time", "bytes/switch"},
	}

	// Conventional flow: every combination is a full implementation. The
	// combinations are independent CAD runs — the axis the paper's 36-vs-10
	// claim counts — so they are farmed through the worker pool and reduced
	// in combination order (sums of integers, so the totals are identical
	// for any worker count).
	type convRun struct {
		total time.Duration
		bytes int
	}
	convResults, err := parallel.MapCtx(ctx, enumerate(scenario), func(ctx context.Context, _ int, combo []designs.Instance) (convRun, error) {
		full, err := flow.BuildFull(ctx, part, combo, cfg.flowOpts(cfg.Seed))
		if err != nil {
			return convRun{}, fmt.Errorf("E1 conventional: %w", err)
		}
		return convRun{total: full.Times.Total(), bytes: len(full.Bitstream)}, nil
	}, cfg.pool()...)
	if err != nil {
		return nil, err
	}
	var convTime time.Duration
	convBytes := 0
	convRuns := 0
	for _, r := range convResults {
		convTime += r.total
		convBytes += r.bytes
		convRuns++
	}

	// JPG flow: one base build, then one constrained variant run + partial
	// bitstream per variant.
	baseInsts := make([]designs.Instance, len(scenario))
	for i, rs := range scenario {
		baseInsts[i] = designs.Instance{Prefix: rs.Prefix, Gen: rs.Variants[0]}
	}
	base, err := flow.BuildBase(ctx, part, baseInsts, cfg.flowOpts(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("E1 base: %w", err)
	}
	jpgTime := base.Times.Total()
	jpgBytes := len(base.Bitstream)
	jpgRuns := 1
	proj, err := core.NewProject(base.Bitstream)
	if err != nil {
		return nil, err
	}
	proj.Cache = cfg.Cache
	// Phase 2: each variant re-implementation is an independent constrained
	// project (each keeps the seed the serial flow gave it), so the batch
	// goes through the variant farm and then through the concurrent partial
	// generator; JPG-tool time is summed per task, as in the serial flow.
	var specs []flow.VariantSpec
	var names []string
	for _, rs := range scenario {
		for vi, gen := range rs.Variants {
			specs = append(specs, flow.VariantSpec{
				Prefix: rs.Prefix, Gen: gen,
				Opts: cfg.flowOpts(cfg.Seed + int64(vi)),
			})
			names = append(names, rs.Prefix+gen.Name())
		}
	}
	vas, err := flow.BuildVariants(ctx, base, specs, cfg.pool()...)
	if err != nil {
		return nil, fmt.Errorf("E1 variants: %w", err)
	}
	mods := make([]*core.Module, len(vas))
	var addTime time.Duration
	for i, va := range vas {
		jpgTime += va.Times.Total()
		jpgRuns++
		t0 := time.Now()
		m, err := proj.AddModule(names[i], va.XDL, va.UCF)
		if err != nil {
			return nil, err
		}
		addTime += time.Since(t0)
		mods[i] = m
	}
	type genRun struct {
		d     time.Duration
		bytes int
	}
	gens, err := parallel.MapCtx(ctx, mods, func(_ context.Context, _ int, m *core.Module) (genRun, error) {
		t0 := time.Now()
		res, err := proj.GeneratePartial(m, cfg.genOpts(core.GenerateOptions{Strict: true}))
		if err != nil {
			return genRun{}, err
		}
		return genRun{d: time.Since(t0), bytes: len(res.Bitstream)}, nil
	}, cfg.pool()...)
	if err != nil {
		return nil, err
	}
	jpgTime += addTime
	partialBytes := 0
	partials := 0
	for _, g := range gens {
		jpgTime += g.d
		partialBytes += g.bytes
		partials++
	}
	jpgBytes += partialBytes

	t.AddRow("conventional", convRuns, convRuns, convBytes, convTime.Round(time.Millisecond).String(),
		convBytes/convRuns)
	t.AddRow("JPG partial", jpgRuns, 1+partials, jpgBytes, jpgTime.Round(time.Millisecond).String(),
		partialBytes/partials)

	fullAvg := float64(convBytes) / float64(convRuns)
	partAvg := float64(partialBytes) / float64(partials)
	t.Note("CAD runs: %d conventional vs %d JPG (paper: 36 vs 10+1 base)", convRuns, jpgRuns)
	t.Note("average partial bitstream is %.2fx the average full bitstream (paper: ~1/3)", partAvg/fullAvg)
	t.Note("total bytes ratio conventional/JPG = %.2fx", float64(convBytes)/float64(jpgBytes))
	t.Note("total CAD time ratio conventional/JPG = %.2fx", float64(convTime)/float64(jpgTime))
	if convRuns <= jpgRuns {
		t.Note("VERDICT: FAIL (JPG flow did not reduce CAD runs)")
	} else if float64(convBytes) <= float64(jpgBytes) {
		t.Note("VERDICT: FAIL (JPG flow did not reduce bitstream volume)")
	} else {
		t.Note("VERDICT: PASS (shape matches the paper)")
	}
	return t, nil
}

// enumerate expands the cartesian product of variant choices into full
// instance lists.
func enumerate(scenario []RegionSpec) [][]designs.Instance {
	var out [][]designs.Instance
	combo := make([]designs.Instance, len(scenario))
	var rec func(i int)
	rec = func(i int) {
		if i == len(scenario) {
			out = append(out, append([]designs.Instance(nil), combo...))
			return
		}
		for _, gen := range scenario[i].Variants {
			combo[i] = designs.Instance{Prefix: scenario[i].Prefix, Gen: gen}
			rec(i + 1)
		}
	}
	rec(0)
	return out
}
