package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/jbitsdiff"
	"repro/internal/parbit"
)

// E6 reproduces the §2.3 related-work comparison: deploying one module
// variant with JPG versus the PARBIT and JBitsDiff methodologies. JPG needs
// only a small constrained CAD run per variant; the bitstream-transforming
// tools each need a complete re-implementation of the full design first.
func E6(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ctx := cfg.ctx()
	part, err := device.ByName(cfg.Part)
	if err != nil {
		return nil, err
	}
	baseGen := designs.Counter{Bits: 6}
	varGen := designs.LFSR{Bits: 6, Taps: []int{5, 2}}
	otherGen := designs.SBoxBank{N: 6, Seed: 3}

	base, err := flow.BuildBase(ctx, part, []designs.Instance{
		{Prefix: "u1/", Gen: baseGen},
		{Prefix: "u2/", Gen: otherGen},
	}, cfg.flowOpts(cfg.Seed))
	if err != nil {
		return nil, err
	}
	rg := base.Regions["u1/"]

	t := &Table{
		ID:    "E6",
		Title: fmt.Sprintf("deploying one module variant: JPG vs PARBIT vs JBitsDiff on %s", part.Name),
		Claim: "JPG derives partials from the module's own CAD run; PARBIT and JBitsDiff " +
			"operate on bitstreams and need a full-design implementation per variant",
		Columns: []string{"tool", "prerequisite CAD", "tool time", "partial bytes", "frames", "functional"},
	}

	check := func(partialBS []byte) string {
		board, err := cfg.board(part)
		if err != nil {
			return "FAIL: " + err.Error()
		}
		if _, err := board.Download(base.Bitstream); err != nil {
			return "FAIL: " + err.Error()
		}
		if _, err := board.Download(partialBS); err != nil {
			return "FAIL: " + err.Error()
		}
		if err := functionalCheck(base, varGen, otherGen, board.Readback()); err != nil {
			return "FAIL: " + err.Error()
		}
		return "PASS"
	}

	// JPG: constrained variant CAD + replay through the base bitstream.
	variant, err := flow.BuildVariant(ctx, base, "u1/", varGen, cfg.flowOpts(cfg.Seed+1))
	if err != nil {
		return nil, err
	}
	proj, err := core.NewProject(base.Bitstream)
	if err != nil {
		return nil, err
	}
	proj.Cache = cfg.Cache
	t0 := time.Now()
	m, err := proj.AddModule("u1_variant", variant.XDL, variant.UCF)
	if err != nil {
		return nil, err
	}
	jpgRes, err := proj.GeneratePartial(m, cfg.genOpts(core.GenerateOptions{Strict: true}))
	if err != nil {
		return nil, err
	}
	jpgTool := time.Since(t0)
	t.AddRow("JPG", fullFmt(variant.Times.Total()), fullFmt(jpgTool),
		len(jpgRes.Bitstream), len(jpgRes.FARs), check(jpgRes.Bitstream))

	// PARBIT and JBitsDiff both need the full design rebuilt with the
	// variant in place, under the same floorplan (their methodology assumes
	// the rebuilt design keeps the original regions and pinout).
	rebuilt, err := flow.BuildBaseWith(ctx, part, []designs.Instance{
		{Prefix: "u1/", Gen: varGen},
		{Prefix: "u2/", Gen: otherGen},
	}, base.Cons, base.Regions, cfg.flowOpts(cfg.Seed))
	if err != nil {
		return nil, err
	}

	t0 = time.Now()
	pbBS, err := parbit.Transform(rebuilt.Bitstream, parbit.Options{
		Part: part.Name, StartCol: rg.C1 + 1, EndCol: rg.C2 + 1,
	})
	if err != nil {
		return nil, err
	}
	pbTool := time.Since(t0)
	t.AddRow("PARBIT", fullFmt(rebuilt.Times.Total()), fullFmt(pbTool),
		len(pbBS), rg.Cols()*device.FramesCLBCol, check(pbBS))

	t0 = time.Now()
	jdCore, err := jbitsdiff.Extract(base.Bitstream, rebuilt.Bitstream)
	if err != nil {
		return nil, err
	}
	jdTool := time.Since(t0)
	t.AddRow("JBitsDiff", fullFmt(rebuilt.Times.Total()), fullFmt(jdTool),
		len(jdCore.Bitstream), len(jdCore.FARs), check(jdCore.Bitstream))

	t.Note("PARBIT/JBitsDiff prerequisite is a full-design CAD run per variant (%.1fx the", float64(rebuilt.Times.Total())/float64(variant.Times.Total()))
	t.Note("module-only run JPG needs); JBitsDiff may also carry frames of other modules")
	t.Note("perturbed by the rebuild — a known hazard of diff-based extraction")
	return t, nil
}
