package experiments

import (
	"testing"

	"repro/internal/cache"
)

// The build cache's contract is the same as the worker pool's: it changes
// only wall-clock, never results. These tests run E1 — the experiment whose
// table carries bitstream bytes and byte ratios, the paper's core numbers —
// with the cache disabled, cold, warm, and shared across worker counts, and
// require byte-identical tables after masking measured wall-clock.

func TestE1DeterministicWithCache(t *testing.T) {
	plain, err := E1(Config{Quick: true, Seed: 3, Workers: 2})
	if err != nil {
		t.Fatalf("E1 uncached: %v", err)
	}
	c := cache.New(cache.Options{NoDisk: true})
	cold, err := E1(Config{Quick: true, Seed: 3, Workers: 2, Cache: c})
	if err != nil {
		t.Fatalf("E1 cold cache: %v", err)
	}
	warm, err := E1(Config{Quick: true, Seed: 3, Workers: 2, Cache: c})
	if err != nil {
		t.Fatalf("E1 warm cache: %v", err)
	}
	ref := maskTimings(plain)
	if got := maskTimings(cold); got != ref {
		t.Fatalf("E1 table differs with a cold cache:\n--- uncached ---\n%s\n--- cold ---\n%s", ref, got)
	}
	if got := maskTimings(warm); got != ref {
		t.Fatalf("E1 table differs with a warm cache:\n--- uncached ---\n%s\n--- warm ---\n%s", ref, got)
	}
	// The warm run must actually have been served by the cache.
	st := c.Stats()
	var hits int64
	for _, s := range st.Stages {
		hits += s.Hits
	}
	if hits == 0 {
		t.Fatalf("warm rerun recorded no cache hits: %+v", st)
	}
}

func TestE1CachedDeterministicAcrossWorkers(t *testing.T) {
	// One cache shared by a serial and a wide run: the wide run is fully
	// warm, and the table must still match the serial one byte for byte.
	c := cache.New(cache.Options{NoDisk: true})
	compareAcrossWorkers(t, "E1+cache", func(cfg Config) (*Table, error) {
		cfg.Cache = c
		return E1(cfg)
	})
}

func TestE1DeterministicWithDiskCache(t *testing.T) {
	plain, err := E1(Config{Quick: true, Seed: 3, Workers: 2})
	if err != nil {
		t.Fatalf("E1 uncached: %v", err)
	}
	dir := t.TempDir()
	// Two separate cache instances over one directory: the second run warms
	// purely from disk, as a fresh process would.
	first, err := E1(Config{Quick: true, Seed: 3, Workers: 2, Cache: cache.New(cache.Options{Dir: dir})})
	if err != nil {
		t.Fatalf("E1 disk cold: %v", err)
	}
	c2 := cache.New(cache.Options{Dir: dir})
	second, err := E1(Config{Quick: true, Seed: 3, Workers: 2, Cache: c2})
	if err != nil {
		t.Fatalf("E1 disk warm: %v", err)
	}
	ref := maskTimings(plain)
	if got := maskTimings(first); got != ref {
		t.Fatalf("E1 table differs with a cold disk cache:\n--- uncached ---\n%s\n--- disk ---\n%s", ref, got)
	}
	if got := maskTimings(second); got != ref {
		t.Fatalf("E1 table differs when warmed from disk:\n--- uncached ---\n%s\n--- disk ---\n%s", ref, got)
	}
	var hits int64
	for _, s := range c2.Stats().Stages {
		hits += s.Hits
	}
	if hits == 0 {
		t.Fatal("fresh cache over a warmed directory recorded no hits")
	}
}
