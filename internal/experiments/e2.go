package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/frames"
)

// E2 reproduces §2.1's size claim: a partial bitstream covering a fraction
// of the device's columns is proportionally smaller than the complete
// bitstream, across the Virtex family.
func E2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	parts := []string{"XCV50", "XCV300", "XCV1000"}
	fractions := []int{8, 6, 4, 3, 2, 1} // denominators: 1/8 .. 1/1
	if cfg.Quick {
		parts = []string{"XCV50"}
		fractions = []int{4, 3, 1}
	}
	t := &Table{
		ID:    "E2",
		Title: "partial vs complete bitstream size by region width and device",
		Claim: "partial bitstream size scales with the reconfigured column fraction " +
			"(a 1/3-width region gives a bitstream about 1/3 the size of a full one)",
		Columns: []string{"part", "cols", "region cols", "fraction", "full bytes", "partial bytes", "ratio"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var worst float64
	for _, name := range parts {
		p, err := device.ByName(name)
		if err != nil {
			return nil, err
		}
		mem := frames.New(p)
		// Populate with arbitrary content; sizes are content-independent.
		for i := 0; i < 200; i++ {
			mem.SetBit(p.CLBBit(rng.Intn(p.Rows), rng.Intn(p.Cols), rng.Intn(device.CLBLocalBits)), true)
		}
		full := bitstream.WriteFull(mem)
		for _, den := range fractions {
			cols := p.Cols / den
			rg := frames.Region{R1: 0, C1: 0, R2: p.Rows - 1, C2: cols - 1}
			partial, err := bitstream.WritePartialForFARs(mem, rg.FARs(p))
			if err != nil {
				return nil, err
			}
			ratio := float64(len(partial)) / float64(len(full))
			frac := float64(cols) / float64(p.Cols)
			t.AddRow(p.Name, p.Cols, cols, fmt.Sprintf("1/%d", den), len(full), len(partial),
				fmt.Sprintf("%.3f", ratio))
			if dev := ratio / frac; dev > worst {
				worst = dev
			}
		}
	}
	t.Note("worst ratio/fraction deviation = %.2fx (1.0 = perfectly proportional; CLB columns carry", worst)
	t.Note("48 of the ~54 frames per column-equivalent, so partials run slightly under proportional)")
	if worst < 1.30 {
		t.Note("VERDICT: PASS (size tracks the column fraction)")
	} else {
		t.Note("VERDICT: FAIL (size does not track the column fraction)")
	}
	return t, nil
}
