// Package experiments regenerates the paper's evaluation: each E* function
// materialises one claim from §2.1/§4.1/Figure 4 as a table (see DESIGN.md's
// experiment index). The functions are deterministic given their config and
// are exercised by cmd/jpgbench and the repository benchmarks.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/flow"
	"repro/internal/parallel"
	"repro/internal/xhwif"
)

// Table is one experiment's result.
type Table struct {
	ID    string // e.g. "E1"
	Title string
	// Claim restates what the paper asserts.
	Claim   string
	Columns []string
	Rows    [][]string
	// Notes carries derived findings (e.g. measured ratios) and the
	// pass/fail verdict against the claim's shape.
	Notes []string
}

// AddRow appends a row (stringifying the cells).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a formatted note.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	b.WriteByte('\n')
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Config tunes experiment scale so unit tests stay fast while jpgbench runs
// the full paper-scale configuration.
type Config struct {
	// Part selects the device for CAD-heavy experiments (default XCV50).
	Part string
	// Seed drives all randomised algorithms.
	Seed int64
	// Effort scales the placer (default 1.0).
	Effort float64
	// Quick shrinks sweeps for test runs.
	Quick bool
	// Workers bounds the pool the experiments farm their independent CAD
	// runs through: 0 selects parallel.DefaultWorkers() (all cores, or
	// $JPG_WORKERS), 1 forces strictly serial execution. Results are
	// byte-identical for any value — only wall-clock changes.
	Workers int
	// Starts runs every placement as this many independently seeded
	// multi-start anneals, keeping the best (see flow.Options.Starts).
	// Unlike Workers it changes which placement wins, so results depend on
	// it — but not on how many workers ran the starts. <= 0 means 1.
	Starts int
	// Verify runs the independent bitstream verifier (internal/bitlint)
	// over every full and partial bitstream the experiments emit, failing
	// the run on any error finding. Execution-only: results are
	// byte-identical with it on or off (see flow.Options.Verify).
	Verify bool
	// Ctx carries the run's observability context (an obs.Collector
	// attached by jpgbench -trace); nil means context.Background().
	// Tracing never changes results — only what gets recorded.
	Ctx context.Context
	// Cache optionally memoizes CAD stage results (see internal/cache):
	// the flow consults it via the run context, core projects directly.
	// Caching never changes results — byte-identical cold, warm or off —
	// only wall-clock, so experiments whose verdicts compare *measured
	// times* (E4/E8/E9) should be given a cold cache or none at all.
	Cache *cache.Cache
	// Faults is a fault-injection spec (see internal/faults.Parse) applied
	// to every board the experiments download to; empty disables injection.
	// With a spec set, boards are wrapped in a ReliableHWIF so the injected
	// faults are retried — experiment *results* stay identical, which is
	// exactly the property CI's faulted run asserts.
	Faults string
	// Retries bounds download attempts per board download (0 selects the
	// xhwif default). Only consulted when the reliability layer is on
	// (Faults set, Retries > 0, or DownloadTimeout > 0).
	Retries int
	// DownloadTimeout bounds one board download end to end, retries
	// included (0 = none).
	DownloadTimeout time.Duration
}

// board builds the HWIF an experiment downloads to: a simulated Board,
// wrapped in a fault injector and a retrying, verifying ReliableHWIF when
// the config asks for them. With no faults and no retry knobs the bare
// board is returned, so the default path is unchanged.
func (c Config) board(p *device.Part) (xhwif.HWIF, error) {
	var hw xhwif.HWIF = xhwif.NewBoard(p)
	if c.Faults != "" {
		spec, err := faults.Parse(c.Faults)
		if err != nil {
			return nil, err
		}
		if spec.Enabled() {
			hw = faults.Wrap(hw, spec)
		}
	}
	if c.Faults != "" || c.Retries > 0 || c.DownloadTimeout > 0 {
		hw = xhwif.NewReliable(hw, xhwif.RetryPolicy{
			MaxAttempts: c.Retries,
			Timeout:     c.DownloadTimeout,
			JitterSeed:  c.Seed,
			Verify:      true,
		})
	}
	return hw, nil
}

// ctx resolves the run context, attaching the config's cache so the flow
// layer sees it.
func (c Config) ctx() context.Context {
	ctx := c.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return cache.With(ctx, c.Cache)
}

// pool renders the config's worker bound as pool options for
// parallel.Map/Do dispatches inside experiments.
func (c Config) pool() []parallel.Option {
	return []parallel.Option{parallel.WithWorkers(c.Workers)}
}

// flowOpts renders the config as flow options for one CAD run with the given
// seed — the single point where experiment knobs (effort, multi-start width,
// pool width) reach the flow layer.
func (c Config) flowOpts(seed int64) flow.Options {
	return flow.Options{Seed: seed, Effort: c.Effort, Starts: c.Starts, Workers: c.Workers, Verify: c.Verify}
}

// genOpts stamps the config's verification knob onto partial-generation
// options — the single point where Config.Verify reaches the core layer.
func (c Config) genOpts(o core.GenerateOptions) core.GenerateOptions {
	o.Verify = c.Verify
	return o
}

// flowOptsEffort is flowOpts with an explicit effort override (used by the
// effort-sweep experiment E8).
func (c Config) flowOptsEffort(seed int64, effort float64) flow.Options {
	o := c.flowOpts(seed)
	o.Effort = effort
	return o
}

func (c Config) withDefaults() Config {
	if c.Part == "" {
		c.Part = "XCV50"
	}
	if c.Effort == 0 {
		c.Effort = 1.0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}
