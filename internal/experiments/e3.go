package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/frames"
)

// E3 reproduces §2.1's reconfiguration-time claim: downloading a partial
// bitstream reconfigures the device proportionally faster than a complete
// download. Times come from the simulated board's SelectMAP model
// (8 bits per 50 MHz configuration clock).
func E3(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	parts := []string{"XCV50", "XCV300", "XCV1000"}
	fractions := []int{8, 4, 3, 2}
	if cfg.Quick {
		parts = []string{"XCV50"}
		fractions = []int{4, 2}
	}
	t := &Table{
		ID:    "E3",
		Title: "reconfiguration time: full vs partial download over SelectMAP @ 50 MHz",
		Claim: "partial reconfiguration time shrinks with bitstream size, making " +
			"run-time module swaps far cheaper than full reconfiguration",
		Columns: []string{"part", "download", "bytes", "frames", "model time", "speedup"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, name := range parts {
		p, err := device.ByName(name)
		if err != nil {
			return nil, err
		}
		mem := frames.New(p)
		for i := 0; i < 200; i++ {
			mem.SetBit(p.CLBBit(rng.Intn(p.Rows), rng.Intn(p.Cols), rng.Intn(device.CLBLocalBits)), true)
		}
		board, err := cfg.board(p)
		if err != nil {
			return nil, err
		}
		full := bitstream.WriteFull(mem)
		dsFull, err := board.Download(full)
		if err != nil {
			return nil, err
		}
		t.AddRow(p.Name, "full", dsFull.Bytes, dsFull.FramesWritten,
			fmtDur(dsFull.ModelTime), "1.0x")
		for _, den := range fractions {
			cols := p.Cols / den
			rg := frames.Region{R1: 0, C1: 0, R2: p.Rows - 1, C2: cols - 1}
			partial, err := bitstream.WritePartialForFARs(mem, rg.FARs(p))
			if err != nil {
				return nil, err
			}
			ds, err := board.Download(partial)
			if err != nil {
				return nil, err
			}
			t.AddRow(p.Name, fmt.Sprintf("partial 1/%d", den), ds.Bytes, ds.FramesWritten,
				fmtDur(ds.ModelTime), fmt.Sprintf("%.1fx", float64(dsFull.ModelTime)/float64(ds.ModelTime)))
		}
	}
	t.Note("times are modelled transfer times (bytes / 50 MHz SelectMAP), as on real hardware")
	t.Note("VERDICT: PASS if each partial's speedup is roughly the inverse of its column fraction")
	return t, nil
}

func fmtDur(d time.Duration) string { return d.Round(time.Microsecond).String() }
