package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/extract"
	"repro/internal/flow"
	"repro/internal/frames"
	"repro/internal/sim"
)

// E5 verifies the paper's correctness premise (§3.2, claim C4): applying a
// JPG partial bitstream on top of the running base design yields a device
// state equivalent to the base with the module swapped — checked both at the
// frame level (nothing outside the module's columns changes) and
// functionally (the design extracted from the reconfigured device behaves
// like the intended variant while the untouched module keeps working).
func E5(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ctx := cfg.ctx()
	part, err := device.ByName(cfg.Part)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E5",
		Title: fmt.Sprintf("partial-reconfiguration equivalence on %s", part.Name),
		Claim: "a partial bitstream written onto the base design reproduces the swapped " +
			"module exactly, leaving the rest of the device untouched",
		Columns: []string{"swap", "partial frames", "frames changed", "outside-region change", "functional"},
	}

	type swap struct {
		name    string
		baseGen designs.Generator
		varGen  designs.Generator
		otherG  designs.Generator
	}
	swaps := []swap{
		{"counter6->lfsr6", designs.Counter{Bits: 6}, designs.LFSR{Bits: 6, Taps: []int{5, 2}}, designs.SBoxBank{N: 6, Seed: 3}},
		{"sbox8->sbox8'", designs.SBoxBank{N: 8, Seed: 1}, designs.SBoxBank{N: 8, Seed: 2}, designs.Counter{Bits: 4}},
		{"fir8->fir8'", designs.BinaryFIR{Taps: 8, Coeff: 0xB7}, designs.BinaryFIR{Taps: 8, Coeff: 0x7E}, designs.LFSR{Bits: 4}},
	}
	if cfg.Quick {
		swaps = swaps[:1]
	}

	allPass := true
	for si, sw := range swaps {
		base, err := flow.BuildBase(ctx, part, []designs.Instance{
			{Prefix: "u1/", Gen: sw.baseGen},
			{Prefix: "u2/", Gen: sw.otherG},
		}, cfg.flowOpts(cfg.Seed+int64(si)))
		if err != nil {
			return nil, fmt.Errorf("E5 %s base: %w", sw.name, err)
		}
		variant, err := flow.BuildVariant(ctx, base, "u1/", sw.varGen, cfg.flowOpts(cfg.Seed+100+int64(si)))
		if err != nil {
			return nil, fmt.Errorf("E5 %s variant: %w", sw.name, err)
		}
		board, err := cfg.board(part)
		if err != nil {
			return nil, err
		}
		if _, err := board.Download(base.Bitstream); err != nil {
			return nil, err
		}
		before := board.Readback()
		proj, err := core.NewProject(base.Bitstream)
		if err != nil {
			return nil, err
		}
		m, err := proj.AddModule(sw.name, variant.XDL, variant.UCF)
		if err != nil {
			return nil, err
		}
		res, _, err := proj.GenerateAndDownload(m, board, cfg.genOpts(core.GenerateOptions{Strict: true}))
		if err != nil {
			return nil, fmt.Errorf("E5 %s: %w", sw.name, err)
		}
		after := board.Readback()

		outside := 0
		diff, err := after.Diff(before)
		if err != nil {
			return nil, err
		}
		for _, far := range diff {
			col, ok := part.CLBColOfMajor(far.Major())
			if !ok || col < res.Region.C1 || col > res.Region.C2 {
				outside++
			}
		}
		functional := "PASS"
		if err := functionalCheck(base, sw.varGen, sw.otherG, after); err != nil {
			functional = "FAIL: " + err.Error()
			allPass = false
		}
		if outside != 0 {
			allPass = false
		}
		t.AddRow(sw.name, len(res.FARs), res.FramesChanged, outside, functional)
	}
	if allPass {
		t.Note("VERDICT: PASS (all swaps equivalent at frame and functional level)")
	} else {
		t.Note("VERDICT: FAIL")
	}
	return t, nil
}

// functionalCheck extracts the reconfigured device's design and co-simulates
// it against software references: u1 must behave like the swapped-in variant
// and u2 like the untouched module.
func functionalCheck(base *flow.BaseBuild, varGen, otherGen designs.Generator, after *frames.Memory) error {
	ex, err := extract.FromMemory(after)
	if err != nil {
		return fmt.Errorf("extract: %w", err)
	}
	devSim, err := sim.New(ex.Netlist)
	if err != nil {
		return fmt.Errorf("extracted design: %w", err)
	}
	refs := map[string]designs.Generator{"u1": varGen, "u2": otherGen}
	refSims := map[string]*sim.Simulator{}
	for inst, gen := range refs {
		nl, err := designs.Standalone(gen, "ref_"+inst, inst+"/")
		if err != nil {
			return err
		}
		s, err := sim.New(nl)
		if err != nil {
			return err
		}
		refSims[inst] = s
	}
	stim := func(cycle, k int, inst string) bool {
		h := cycle*31 + k*7 + int(inst[1])
		return h%3 == 0 || h%5 == 1
	}
	for cyc := 0; cyc < 60; cyc++ {
		for inst, gen := range refs {
			for k := 0; k < gen.NumInputs(); k++ {
				v := stim(cyc, k, inst)
				if err := refSims[inst].SetInput(fmt.Sprintf("in%d", k), v); err != nil {
					return err
				}
				pad := base.Pads[fmt.Sprintf("%s_in%d", inst, k)]
				if err := devSim.SetInput(pad, v); err != nil {
					return fmt.Errorf("device input %s: %w", pad, err)
				}
			}
		}
		devSim.Step()
		for inst, gen := range refs {
			refSims[inst].Step()
			for k := 0; k < gen.NumOutputs(); k++ {
				want, err := refSims[inst].Output(fmt.Sprintf("out%d", k))
				if err != nil {
					return err
				}
				pad := base.Pads[fmt.Sprintf("%s_out%d", inst, k)]
				got, err := devSim.Output(pad)
				if err != nil {
					return fmt.Errorf("device output %s: %w", pad, err)
				}
				if got != want {
					return fmt.Errorf("cycle %d: %s out%d device=%v ref=%v", cyc, inst, k, got, want)
				}
			}
		}
	}
	return nil
}
