package experiments

import (
	"fmt"

	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/flow"
)

// E9 quantifies the guided-reimplementation support (the paper's Figure 2
// "NGD and guide file" step): re-implementing a revised module seeded by its
// previous placement at low effort versus a from-scratch run, measuring CAD
// time and placement stability.
func E9(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ctx := cfg.ctx()
	part, err := device.ByName(cfg.Part)
	if err != nil {
		return nil, err
	}
	base, err := flow.BuildBase(ctx, part, []designs.Instance{
		{Prefix: "u1/", Gen: designs.SBoxBank{N: 10, Seed: 5}},
		{Prefix: "u2/", Gen: designs.Counter{Bits: 6}},
	}, cfg.flowOpts(cfg.Seed))
	if err != nil {
		return nil, err
	}
	original, err := flow.BuildVariant(ctx, base, "u1/", designs.SBoxBank{N: 10, Seed: 7}, cfg.flowOpts(cfg.Seed+1))
	if err != nil {
		return nil, err
	}
	// The "revision": same structure, new LUT contents.
	revised := designs.SBoxBank{N: 10, Seed: 8}

	// The from-scratch and guided re-implementations are independent
	// projects; run them as a two-spec variant farm (each with its own
	// seed, as before).
	built, err := flow.BuildVariants(ctx, base, []flow.VariantSpec{
		{Prefix: "u1/", Gen: revised, Opts: cfg.flowOpts(cfg.Seed + 2)},
		{Prefix: "u1/", Gen: revised, Opts: flow.Options{
			Seed: cfg.Seed + 3, Effort: 0.05, Guide: flow.GuideFrom(original),
			Workers: cfg.Workers,
		}},
	}, cfg.pool()...)
	if err != nil {
		return nil, err
	}
	scratch, guided := built[0], built[1]

	kept := func(a *flow.Artifacts) string {
		n, total := 0, 0
		for c2, s2 := range a.Phys.Cells {
			total++
			if c1, ok := original.Phys.Netlist.Cell(c2.Name); ok && original.Phys.Cells[c1] == s2 {
				n++
			}
		}
		return fmt.Sprintf("%d/%d", n, total)
	}

	t := &Table{
		ID:    "E9",
		Title: fmt.Sprintf("guided re-implementation of a revised module on %s", part.Name),
		Claim: "guide files let a module revision re-implement incrementally: far less CAD " +
			"time and a placement that stays where the previous version was",
		Columns: []string{"run", "place time", "route time", "sites kept", "routed PIPs"},
	}
	t.AddRow("from scratch", fullFmt(scratch.Times.Place), fullFmt(scratch.Times.Route),
		kept(scratch), scratch.Phys.RoutedPIPCount())
	t.AddRow("guided, low effort", fullFmt(guided.Times.Place), fullFmt(guided.Times.Route),
		kept(guided), guided.Phys.RoutedPIPCount())

	guidedKept, scratchKept := 0, 0
	fmt.Sscanf(kept(guided), "%d/", &guidedKept)
	fmt.Sscanf(kept(scratch), "%d/", &scratchKept)
	speedup := float64(scratch.Times.Place) / float64(guided.Times.Place)
	t.Note("guided placement is %.1fx faster and keeps %d sites (scratch keeps %d by chance)",
		speedup, guidedKept, scratchKept)
	if guidedKept > scratchKept && speedup > 1.5 {
		t.Note("VERDICT: PASS")
	} else {
		t.Note("VERDICT: MIXED (guide effect below threshold on this seed)")
	}
	return t, nil
}
