package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/netlist"
)

// initEditGen wraps a generator and applies INIT edits after building, so the
// conventional flow can implement an edited netlist from scratch.
type initEditGen struct {
	designs.Generator
	edits map[string]uint16
}

func (g initEditGen) Build(d *netlist.Design, prefix string, clk *netlist.Net,
	ins []*netlist.Net) ([]*netlist.Net, error) {
	outs, err := g.Generator.Build(d, prefix, clk, ins)
	if err != nil {
		return nil, err
	}
	for name, init := range g.edits {
		if err := d.SetInit(name, init); err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// EditStormStats is the machine-readable outcome of the E10 edit storm,
// consumed by jpgbench's JSON output and CI's regression gate.
type EditStormStats struct {
	Edits int `json:"edits"`
	// ColdPerEditSec and IncrPerEditSec are the mean edit->partial latencies
	// of the conventional re-run and the incremental engine.
	ColdPerEditSec float64 `json:"cold_per_edit_sec"`
	IncrPerEditSec float64 `json:"incr_per_edit_sec"`
	Speedup        float64 `json:"speedup"`
	// ByteIdentical reports whether every incremental partial matched its
	// from-scratch reference byte for byte.
	ByteIdentical bool `json:"byte_identical"`
	// Splices and Reuses count how edits were absorbed ("reuse" when the
	// random edits happened to be no-ops); Rebuilds must stay zero for an
	// INIT-only storm.
	Splices  int `json:"splices"`
	Reuses   int `json:"reuses"`
	Rebuilds int `json:"rebuilds"`
	// DeltaFrames sums the dirty frames the incremental engine reported —
	// the configuration state the storm actually touched.
	DeltaFrames int `json:"delta_frames"`
}

// E10 measures the delta-driven incremental flow (§2.1's small-change case,
// taken to its limit): a storm of LUT/FF INIT edits inside one region,
// comparing edit->partial latency of a full conventional re-run per edit
// against the incremental engine's diff+splice, with byte-identity checked
// against the from-scratch build after every edit.
func E10(cfg Config) (*Table, error) {
	t, _, err := EditStorm(cfg)
	return t, err
}

// EditStorm runs E10 and also returns its machine-readable stats.
func EditStorm(cfg Config) (*Table, *EditStormStats, error) {
	cfg = cfg.withDefaults()
	ctx := cfg.ctx()
	part, err := device.ByName(cfg.Part)
	if err != nil {
		return nil, nil, err
	}
	nBank, edits := 8, 24
	if cfg.Quick {
		nBank, edits = 6, 6
	}

	base, err := flow.BuildBase(ctx, part, []designs.Instance{
		{Prefix: "u1/", Gen: designs.Counter{Bits: 6}},
		{Prefix: "u2/", Gen: designs.SBoxBank{N: nBank, Seed: 3}},
	}, cfg.flowOpts(cfg.Seed))
	if err != nil {
		return nil, nil, fmt.Errorf("E10 base: %w", err)
	}
	gen := designs.SBoxBank{N: nBank, Seed: 9}
	vopts := cfg.flowOpts(cfg.Seed + 1)
	variant, err := flow.BuildVariant(ctx, base, "u2/", gen, vopts)
	if err != nil {
		return nil, nil, fmt.Errorf("E10 variant: %w", err)
	}

	// Incremental side: one project + edit session, kept alive for the storm.
	proj, err := core.NewProject(base.Bitstream)
	if err != nil {
		return nil, nil, err
	}
	proj.Cache = cfg.Cache
	sess, err := flow.NewVariantEditSession(variant, base.Regions["u2/"], vopts)
	if err != nil {
		return nil, nil, err
	}
	loop := core.NewEditLoop(proj, sess, "u2_storm", cfg.genOpts(core.GenerateOptions{}))

	// Conventional side: every edit re-runs the full variant CAD flow and
	// regenerates the partial in a fresh project, as if no previous result
	// existed.
	coldProj, err := core.NewProject(base.Bitstream)
	if err != nil {
		return nil, nil, err
	}
	coldProj.Cache = cfg.Cache

	rng := rand.New(rand.NewSource(cfg.Seed + 100))
	cur := variant.Netlist
	cum := map[string]uint16{}
	stats := &EditStormStats{Edits: edits, ByteIdentical: true}
	var coldTotal, incrTotal time.Duration
	for i := 0; i < edits; i++ {
		next := cur.Clone()
		for j, n := 0, 1+rng.Intn(3); j < n; j++ {
			var name string
			var init uint16
			if rng.Intn(4) == 0 {
				name = fmt.Sprintf("u2/sq%d", rng.Intn(nBank))
				init = uint16(rng.Intn(2))
			} else {
				name = fmt.Sprintf("u2/sbox%d", rng.Intn(nBank))
				init = uint16(rng.Intn(1 << 16))
			}
			if err := next.SetInit(name, init); err != nil {
				return nil, nil, err
			}
			cum[name] = init
		}

		t0 := time.Now()
		res, err := loop.Edit(ctx, next)
		if err != nil {
			return nil, nil, fmt.Errorf("E10 edit %d: %w", i, err)
		}
		incrTotal += time.Since(t0)
		switch res.Incremental.Stats.Path {
		case "splice":
			stats.Splices++
		case "reuse":
			stats.Reuses++
		default:
			stats.Rebuilds++
		}
		stats.DeltaFrames += res.Incremental.Stats.DirtyFrames

		t0 = time.Now()
		cold, err := flow.BuildVariant(ctx, base, "u2/", initEditGen{gen, cum}, vopts)
		if err != nil {
			return nil, nil, fmt.Errorf("E10 cold build %d: %w", i, err)
		}
		coldMod, err := coldProj.AddModule(fmt.Sprintf("u2_cold@%d", i), cold.XDL, cold.UCF)
		if err != nil {
			return nil, nil, err
		}
		coldRes, err := coldProj.GeneratePartial(coldMod, cfg.genOpts(core.GenerateOptions{}))
		if err != nil {
			return nil, nil, err
		}
		coldTotal += time.Since(t0)

		if !bytes.Equal(res.Partial.Bitstream, coldRes.Bitstream) ||
			!bytes.Equal(res.Incremental.Artifacts.Bitstream, cold.Bitstream) {
			stats.ByteIdentical = false
		}
		cur = next
	}

	stats.ColdPerEditSec = coldTotal.Seconds() / float64(edits)
	stats.IncrPerEditSec = incrTotal.Seconds() / float64(edits)
	if incrTotal > 0 {
		stats.Speedup = float64(coldTotal) / float64(incrTotal)
	}

	t := &Table{
		ID:    "E10",
		Title: fmt.Sprintf("edit storm on %s: %d INIT edits in one region", part.Name, edits),
		Claim: "a netlist edit that changes only LUT/FF INITs needs no new CAD run: diffing " +
			"and splicing the previous implementation yields the same partial bitstream at a " +
			"fraction of the edit->partial latency",
		Columns: []string{"flow", "edits", "total", "per edit", "identical"},
	}
	t.AddRow("conventional re-run", edits, coldTotal.Round(time.Millisecond).String(),
		(coldTotal / time.Duration(edits)).Round(time.Microsecond).String(), "-")
	t.AddRow("incremental splice", edits, incrTotal.Round(time.Millisecond).String(),
		(incrTotal / time.Duration(edits)).Round(time.Microsecond).String(),
		fmt.Sprint(stats.ByteIdentical))

	t.Note("edit->partial speedup = %.1fx (%d spliced / %d reused / %d rebuilt of %d edits, %d dirty frames total)",
		stats.Speedup, stats.Splices, stats.Reuses, stats.Rebuilds, edits, stats.DeltaFrames)
	switch {
	case !stats.ByteIdentical:
		t.Note("VERDICT: FAIL (incremental output diverged from the from-scratch build)")
	case stats.Rebuilds > 0:
		t.Note("VERDICT: FAIL (an INIT-only edit fell back to a rebuild)")
	case stats.Speedup < 5:
		t.Note("VERDICT: MIXED (speedup %.1fx below the 5x bar on this host)", stats.Speedup)
	default:
		t.Note("VERDICT: PASS")
	}
	return t, stats, nil
}
